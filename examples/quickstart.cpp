// Quickstart: the smallest complete BRISK deployment, all in one process.
//
//   1. Start the ISM (BriskManager) on an ephemeral port.
//   2. Create a node (BriskNode), claim a sensor, connect its EXS.
//   3. Instrument a toy loop with BRISK_NOTICE.
//   4. Read the ordered records back from the ISM's shared-memory output
//      and print them as PICL strings.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <thread>

#include "common/time_util.hpp"
#include "core/brisk_manager.hpp"
#include "core/brisk_node.hpp"

int main() {
  using namespace brisk;           // NOLINT
  using namespace brisk::sensors;  // NOLINT

  // --- 1. the manager (ISM + shared-memory output buffer) -------------------
  ManagerConfig manager_config;
  manager_config.ism.select_timeout_us = 2'000;
  manager_config.ism.enable_sync = false;  // one node, nothing to synchronize
  auto manager = BriskManager::create(manager_config);
  if (!manager) {
    std::fprintf(stderr, "manager: %s\n", manager.status().to_string().c_str());
    return 1;
  }
  std::printf("ISM listening on 127.0.0.1:%u\n", manager.value()->port());

  // --- 2. a node: sensors + external sensor ---------------------------------
  NodeConfig node_config;
  node_config.node = 1;
  node_config.exs.select_timeout_us = 2'000;
  node_config.exs.batch_max_age_us = 1'000;
  auto node = BriskNode::create(node_config);
  if (!node) return 1;
  auto sensor = node.value()->make_sensor();
  if (!sensor) return 1;
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  if (!exs) {
    std::fprintf(stderr, "exs: %s\n", exs.status().to_string().c_str());
    return 1;
  }

  // ISM and EXS each run their select() loop; here simply in threads.
  std::thread ism_thread([&] { (void)manager.value()->run_for(1'500'000); });
  std::thread exs_thread([&] { (void)exs.value()->run_for(1'500'000); });

  // --- 3. the instrumented "application" ------------------------------------
  constexpr SensorId kIterationEvent = 1;
  constexpr SensorId kPhaseEvent = 2;
  for (int i = 0; i < 10; ++i) {
    BRISK_NOTICE(sensor.value(), kIterationEvent, x_i32(i), x_f64(i * 0.5));
    if (i % 5 == 0) {
      BRISK_NOTICE(sensor.value(), kPhaseEvent, x_str("phase boundary"), x_ts());
    }
    sleep_micros(10'000);
  }

  // --- 4. consume ordered records --------------------------------------------
  auto consumer = manager.value()->make_consumer();
  if (!consumer) return 1;
  picl::PiclOptions picl_options;
  picl_options.mode = picl::TimestampMode::utc_micros;
  int received = 0;
  const TimeMicros deadline = monotonic_micros() + 2'000'000;
  while (received < 12 && monotonic_micros() < deadline) {
    auto line = consumer.value().poll_picl(picl_options);
    if (!line) break;
    if (!line.value().has_value()) {
      sleep_micros(1'000);
      continue;
    }
    std::printf("PICL: %s\n", line.value()->c_str());
    ++received;
  }

  exs.value()->stop();
  manager.value()->stop();
  exs_thread.join();
  ism_thread.join();
  std::printf("received %d records; done.\n", received);
  return received == 12 ? 0 : 1;
}
