// Distributed pipeline: the paper's motivating scenario — a multi-process
// parallel application whose stages hand work to each other, instrumented
// with causally-related events so the IS can order cross-node interactions
// even with unsynchronized clocks.
//
// Topology (3 forked node processes, loopback TCP to one ISM):
//   producer (node 1)  --work items-->  transformer (node 2)  --> sink (node 3)
//
// Each hand-off is marked X_REASON on the sender and X_CONSEQ on the
// receiver with the work-item id, so BRISK's CRE matcher guarantees the
// receive can never be ordered before its send (tachyon repair) — the
// per-node clocks are deliberately skewed to force tachyons.
//
// Build & run:  ./examples/distributed_pipeline
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "clock/sim_clock.hpp"
#include "common/time_util.hpp"
#include "consumers/trace_stats.hpp"
#include "core/brisk_manager.hpp"
#include "core/brisk_node.hpp"

namespace {

using namespace brisk;           // NOLINT
using namespace brisk::sensors;  // NOLINT

constexpr SensorId kProduce = 10;   // reason: item leaves the producer
constexpr SensorId kTransform = 20; // conseq of produce, reason for sink
constexpr SensorId kConsume = 30;   // conseq of transform
constexpr int kItems = 40;
constexpr TimeMicros kRunBudget = 4'000'000;

struct StageConfig {
  NodeId node;
  TimeMicros clock_skew_us;  // deliberate, to force tachyons
};

/// One pipeline stage in its own process: instruments `kItems` hand-offs.
[[noreturn]] void run_stage(const StageConfig& stage, std::uint16_t ism_port) {
  // Skewed node clock: this is what defeats naive timestamp ordering.
  clk::SimClock clock(clk::SystemClock::instance(), {.initial_offset_us = stage.clock_skew_us});

  NodeConfig config;
  config.node = stage.node;
  config.exs.select_timeout_us = 2'000;
  config.exs.batch_max_age_us = 1'000;
  auto node = BriskNode::create(config, clock);
  if (!node) _exit(10);
  auto sensor = node.value()->make_sensor();
  if (!sensor) _exit(11);
  auto exs = node.value()->connect_exs("127.0.0.1", ism_port);
  if (!exs) _exit(12);

  std::thread exs_thread([&] { (void)exs.value()->run_for(kRunBudget); });

  // The stage's work loop. Real stages would pass data over a queue or
  // socket; the timing (producer first, sink last per item) is emulated
  // with small sleeps — the instrumentation pattern is the point.
  for (int item = 0; item < kItems; ++item) {
    const auto id = static_cast<CausalId>(item);
    switch (stage.node) {
      case 1:  // producer: emit work, mark as reason
        BRISK_NOTICE(sensor.value(), kProduce, x_reason(id), x_i32(item), x_str("produced"));
        sleep_micros(3'000);
        break;
      case 2:  // transformer: receive (conseq), process, forward (reason)
        sleep_micros(1'000);
        BRISK_NOTICE(sensor.value(), kTransform, x_conseq(id), x_reason(id + 1'000),
                     x_i32(item * 2));
        sleep_micros(2'000);
        break;
      case 3:  // sink: receive the transformed item
        sleep_micros(2'000);
        BRISK_NOTICE(sensor.value(), kConsume, x_conseq(id + 1'000), x_i32(item * 2));
        sleep_micros(1'000);
        break;
      default: _exit(13);
    }
  }
  sleep_micros(200'000);  // let the EXS drain the tail
  exs.value()->stop();
  exs_thread.join();
  _exit(0);
}

}  // namespace

int main() {
  ManagerConfig manager_config;
  manager_config.ism.select_timeout_us = 2'000;
  manager_config.ism.sorter.initial_frame_us = 20'000;
  manager_config.ism.cre.hold_timeout_us = 2'000'000;
  manager_config.ism.enable_sync = true;
  manager_config.ism.sync.period_us = 200'000;
  auto manager = BriskManager::create(manager_config);
  if (!manager) {
    std::fprintf(stderr, "manager: %s\n", manager.status().to_string().c_str());
    return 1;
  }
  std::printf("pipeline: ISM on port %u, 3 stage processes, %d items\n",
              manager.value()->port(), kItems);

  const StageConfig stages[3] = {
      {1, -40'000},  // producer clock 40 ms behind
      {2, +25'000},  // transformer 25 ms ahead
      {3, 0},
  };
  std::vector<pid_t> children;
  for (const StageConfig& stage : stages) {
    const pid_t pid = ::fork();
    if (pid < 0) return 1;
    if (pid == 0) run_stage(stage, manager.value()->port());
    children.push_back(pid);
  }

  std::thread ism_thread([&] { (void)manager.value()->run_for(kRunBudget + 500'000); });

  // Consume and analyze the merged, ordered, causally-repaired stream.
  auto consumer = manager.value()->make_consumer();
  if (!consumer) return 1;
  consumers::TraceStats stats;
  std::map<CausalId, TimeMicros> produce_ts;
  int causality_violations = 0;
  int received = 0;
  const TimeMicros deadline = monotonic_micros() + kRunBudget;
  while (received < kItems * 3 && monotonic_micros() < deadline) {
    auto record = consumer.value().poll();
    if (!record) break;
    if (!record.value().has_value()) {
      sleep_micros(2'000);
      continue;
    }
    const sensors::Record& r = *record.value();
    stats.add(r);
    ++received;
    if (auto reason = r.reason_id()) produce_ts[*reason] = r.timestamp;
    if (auto conseq = r.conseq_id()) {
      auto it = produce_ts.find(*conseq);
      if (it != produce_ts.end() && r.timestamp <= it->second) ++causality_violations;
    }
  }

  for (pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  manager.value()->stop();
  ism_thread.join();
  (void)manager.value()->drain();

  std::printf("\n--- delivered trace ---\n%s", stats.report().c_str());
  std::printf("causality violations in delivered order: %d (must be 0)\n",
              causality_violations);
  std::printf("tachyons repaired by the ISM: %llu\n",
              static_cast<unsigned long long>(
                  manager.value()->ism().cre().stats().tachyons_repaired));
  std::printf("extra clock-sync rounds requested: %llu\n",
              static_cast<unsigned long long>(
                  manager.value()->ism().cre().stats().extra_sync_requests));
  return (received == kItems * 3 && causality_violations == 0) ? 0 : 1;
}
