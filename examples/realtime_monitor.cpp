// Real-time monitoring with visual objects: the paper's own application —
// "a real-time system instrumentation and performance visualization
// project" where the ISM passes records "to a list of CORBA-enabled visual
// objects ... as PICL strings".
//
// A simulated periodic real-time task set (3 tasks with different periods,
// occasionally overrunning) is instrumented; the ISM forwards the ordered
// stream to two remote visual objects hosted in a VoRegistry:
//   * "rates"    — a per-sensor event-rate gauge,
//   * "overruns" — a deadline-overrun log window.
//
// Build & run:  ./examples/realtime_monitor
#include <cstdio>
#include <random>
#include <thread>

#include "common/string_util.hpp"
#include "common/time_util.hpp"
#include "core/brisk_manager.hpp"
#include "core/brisk_node.hpp"
#include "vo/vo_channel.hpp"
#include "vo/vo_registry.hpp"

namespace {

using namespace brisk;           // NOLINT
using namespace brisk::sensors;  // NOLINT

constexpr SensorId kJobStart = 1;
constexpr SensorId kJobDone = 2;
constexpr SensorId kOverrun = 3;

/// Visual object: counts renders per sensor id (a rate gauge display).
class RateGauge final : public vo::VisualObject {
 public:
  void render(const std::string& picl_line) override {
    // PICL: "<rectype> <event> ..." — the event id is token 2.
    const std::size_t first_space = picl_line.find(' ');
    if (first_space == std::string::npos) return;
    const std::size_t second_space = picl_line.find(' ', first_space + 1);
    auto event = parse_int(picl_line.substr(first_space + 1, second_space - first_space - 1));
    if (!event) return;
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[static_cast<SensorId>(*event)];
  }
  [[nodiscard]] std::string name() const override { return "rates"; }
  std::map<SensorId, std::uint64_t> counts() {
    std::lock_guard<std::mutex> lock(mutex_);
    return counts_;
  }

 private:
  std::mutex mutex_;
  std::map<SensorId, std::uint64_t> counts_;
};

/// Visual object: keeps the overrun log lines (a scrolling text window).
class OverrunLog final : public vo::VisualObject {
 public:
  void render(const std::string& picl_line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(picl_line);
  }
  [[nodiscard]] std::string name() const override { return "overruns"; }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

}  // namespace

int main() {
  // --- the visualization side: a registry hosting two display objects -------
  auto registry = vo::VoRegistry::start(0);
  if (!registry) return 1;
  auto gauge = std::make_shared<RateGauge>();
  auto overrun_log = std::make_shared<OverrunLog>();
  (void)registry.value()->add_object(gauge);
  (void)registry.value()->add_object(overrun_log);
  std::thread registry_thread([&] { (void)registry.value()->run(2'000); });

  // --- the instrumentation side ------------------------------------------------
  ManagerConfig manager_config;
  manager_config.ism.select_timeout_us = 2'000;
  manager_config.ism.enable_sync = false;
  auto manager = BriskManager::create(manager_config);
  if (!manager) return 1;

  // ISM → visual objects: all records to "rates", overruns also to the log.
  picl::PiclOptions picl_options;
  picl_options.epoch_us = clk::SystemClock::instance().now();
  auto rates_channel = vo::VoChannel::connect("127.0.0.1", registry.value()->port());
  auto log_channel = vo::VoChannel::connect("127.0.0.1", registry.value()->port());
  if (!rates_channel || !log_channel) return 1;
  Status sink_ok = vo::subscribe_visual_objects(
      manager.value()->gateway(),
      std::make_shared<vo::VoChannel>(std::move(rates_channel).value()), {"rates"},
      picl_options);
  if (!sink_ok) return 1;
  auto log_sink = std::make_shared<vo::VoChannel>(std::move(log_channel).value());
  sink_ok = manager.value()->add_sink(
      "overrun-log", std::make_shared<ism::CallbackSink>(
                         [log_sink, picl_options](const sensors::Record& record) {
                           if (record.sensor == kOverrun) {
                             (void)log_sink->render("overruns",
                                                    picl::to_picl_line(record, picl_options));
                           }
                         }));
  if (!sink_ok) return 1;

  NodeConfig node_config;
  node_config.node = 1;
  node_config.exs.select_timeout_us = 2'000;
  node_config.exs.batch_max_age_us = 1'000;
  auto node = BriskNode::create(node_config);
  if (!node) return 1;
  auto sensor = node.value()->make_sensor();
  if (!sensor) return 1;
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  if (!exs) return 1;

  std::thread ism_thread([&] { (void)manager.value()->run_for(3'000'000); });
  std::thread exs_thread([&] { (void)exs.value()->run_for(3'000'000); });

  // --- the "real-time" task set: 3 periodic tasks, jittered runtimes -----------
  struct Task {
    std::int32_t id;
    TimeMicros period_us;
    TimeMicros wcet_us;  // budget; exceeding it is a deadline overrun
    TimeMicros next_release = 0;
  };
  Task tasks[3] = {{1, 20'000, 3'000}, {2, 35'000, 6'000}, {3, 50'000, 9'000}};
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> jitter(0.5, 1.4);  // >1.0 → overrun possible

  const TimeMicros start = monotonic_micros();
  int overruns = 0;
  while (monotonic_micros() - start < 1'000'000) {
    const TimeMicros now = monotonic_micros() - start;
    for (Task& task : tasks) {
      if (now < task.next_release) continue;
      task.next_release += task.period_us;
      BRISK_NOTICE(sensor.value(), kJobStart, x_i32(task.id), x_ts());
      const auto runtime = static_cast<TimeMicros>(jitter(rng) * static_cast<double>(task.wcet_us));
      sleep_micros(runtime / 10);  // scaled down to keep the example fast
      BRISK_NOTICE(sensor.value(), kJobDone, x_i32(task.id), x_i64(runtime));
      if (runtime > task.wcet_us) {
        ++overruns;
        BRISK_NOTICE(sensor.value(), kOverrun, x_i32(task.id), x_i64(runtime),
                     x_i64(task.wcet_us), x_str("deadline overrun"));
      }
    }
    sleep_micros(1'000);
  }

  sleep_micros(300'000);  // drain
  exs.value()->stop();
  manager.value()->stop();
  exs_thread.join();
  ism_thread.join();
  registry.value()->stop();
  registry_thread.join();

  // --- report what the dashboards saw ------------------------------------------
  std::printf("rate gauge (per-sensor render counts):\n");
  for (const auto& [sensor_id, count] : gauge->counts()) {
    std::printf("  sensor %u: %llu renders\n", sensor_id,
                static_cast<unsigned long long>(count));
  }
  std::printf("overrun log: %zu entries (task set produced %d overruns)\n",
              overrun_log->lines().size(), overruns);
  for (const std::string& line : overrun_log->lines()) {
    std::printf("  %s\n", line.c_str());
  }
  const bool ok = !gauge->counts().empty() &&
                  overrun_log->lines().size() == static_cast<std::size_t>(overruns);
  std::printf("%s\n", ok ? "monitoring pipeline delivered everything." : "MISMATCH");
  return ok ? 0 : 1;
}
