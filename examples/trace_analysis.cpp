// Off-line trace analysis: record an instrumented run to a PICL ASCII trace
// file (the ISM's file-system output in Fig. 1), then read it back with the
// PiclReader — the workflow of "extant, independently-built tools ... for
// the analysis of instrumentation data" consuming BRISK traces.
//
// Build & run:  ./examples/trace_analysis [trace.picl]
#include <cstdio>
#include <thread>

#include "common/time_util.hpp"
#include "consumers/trace_stats.hpp"
#include "core/brisk_manager.hpp"
#include "core/brisk_node.hpp"
#include "picl/picl_reader.hpp"

int main(int argc, char** argv) {
  using namespace brisk;           // NOLINT
  using namespace brisk::sensors;  // NOLINT
  const std::string trace_path =
      argc > 1 ? argv[1] : "/tmp/brisk-example-trace-" + std::to_string(::getpid()) + ".picl";

  // --- phase 1: record ---------------------------------------------------------
  {
    ManagerConfig manager_config;
    manager_config.ism.select_timeout_us = 2'000;
    manager_config.ism.enable_sync = false;
    manager_config.picl_trace_path = trace_path;
    manager_config.picl_options.mode = picl::TimestampMode::seconds_from_epoch;
    manager_config.picl_options.epoch_us = clk::SystemClock::instance().now();
    auto manager = BriskManager::create(manager_config);
    if (!manager) {
      std::fprintf(stderr, "manager: %s\n", manager.status().to_string().c_str());
      return 1;
    }

    NodeConfig node_config;
    node_config.node = 1;
    node_config.exs.select_timeout_us = 2'000;
    node_config.exs.batch_max_age_us = 1'000;
    auto node = BriskNode::create(node_config);
    if (!node) return 1;
    auto sensor = node.value()->make_sensor();
    if (!sensor) return 1;
    auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
    if (!exs) return 1;

    std::thread ism_thread([&] { (void)manager.value()->run_for(1'500'000); });
    std::thread exs_thread([&] { (void)exs.value()->run_for(1'500'000); });

    // An "application" with two phases of different event mixes.
    for (int i = 0; i < 100; ++i) {
      BRISK_NOTICE(sensor.value(), 1, x_i32(i), x_str("compute"));
      if (i % 10 == 0) BRISK_NOTICE(sensor.value(), 2, x_i32(i), x_f64(i * 0.1));
      sleep_micros(2'000);
    }
    for (int i = 0; i < 50; ++i) {
      BRISK_NOTICE(sensor.value(), 3, x_u64(static_cast<std::uint64_t>(i) * 4096),
                   x_str("io"));
      sleep_micros(4'000);
    }

    sleep_micros(200'000);
    exs.value()->stop();
    manager.value()->stop();
    exs_thread.join();
    ism_thread.join();
    if (!manager.value()->drain()) return 1;
    std::printf("recorded trace to %s\n", trace_path.c_str());

    // --- phase 2: analyze (a separate tool would do just this part) ------------
    auto reader = picl::PiclReader::open(trace_path, manager_config.picl_options);
    if (!reader) {
      std::fprintf(stderr, "reader: %s\n", reader.status().to_string().c_str());
      return 1;
    }
    consumers::TraceStats stats;
    TimeMicros phase_boundary = 0;
    int count = 0;
    for (;;) {
      auto record = reader.value().next();
      if (!record) {
        std::fprintf(stderr, "parse: %s\n", record.status().to_string().c_str());
        return 1;
      }
      if (!record.value().has_value()) break;
      stats.add(*record.value());
      if (record.value()->sensor == 3 && phase_boundary == 0) {
        phase_boundary = record.value()->timestamp;
      }
      ++count;
    }

    std::printf("\n--- trace summary ---\n%s", stats.report().c_str());
    if (phase_boundary != 0) {
      std::printf("phase 2 (io) began %.3f s into the trace\n",
                  static_cast<double>(phase_boundary - stats.summary().first_ts) / 1e6);
    }
    const bool ok = count == 160 && stats.summary().out_of_order == 0;
    std::printf("%s\n", ok ? "analysis complete." : "UNEXPECTED TRACE SHAPE");
    std::remove(trace_path.c_str());
    return ok ? 0 : 1;
  }
}
