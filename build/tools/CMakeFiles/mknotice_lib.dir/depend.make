# Empty dependencies file for mknotice_lib.
# This may be replaced when dependencies are built.
