file(REMOVE_RECURSE
  "libmknotice_lib.a"
)
