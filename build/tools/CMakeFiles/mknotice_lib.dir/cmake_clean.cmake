file(REMOVE_RECURSE
  "CMakeFiles/mknotice_lib.dir/mknotice/generator.cpp.o"
  "CMakeFiles/mknotice_lib.dir/mknotice/generator.cpp.o.d"
  "libmknotice_lib.a"
  "libmknotice_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mknotice_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
