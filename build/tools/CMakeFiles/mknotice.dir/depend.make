# Empty dependencies file for mknotice.
# This may be replaced when dependencies are built.
