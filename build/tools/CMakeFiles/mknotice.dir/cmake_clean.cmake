file(REMOVE_RECURSE
  "CMakeFiles/mknotice.dir/mknotice/mknotice_main.cpp.o"
  "CMakeFiles/mknotice.dir/mknotice/mknotice_main.cpp.o.d"
  "mknotice"
  "mknotice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mknotice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
