# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_pipeline "/root/repo/build/examples/distributed_pipeline")
set_tests_properties(example_distributed_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_realtime_monitor "/root/repo/build/examples/realtime_monitor")
set_tests_properties(example_realtime_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_analysis "/root/repo/build/examples/trace_analysis")
set_tests_properties(example_trace_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
