file(REMOVE_RECURSE
  "CMakeFiles/distributed_pipeline.dir/distributed_pipeline.cpp.o"
  "CMakeFiles/distributed_pipeline.dir/distributed_pipeline.cpp.o.d"
  "distributed_pipeline"
  "distributed_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
