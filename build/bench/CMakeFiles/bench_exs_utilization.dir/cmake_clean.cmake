file(REMOVE_RECURSE
  "CMakeFiles/bench_exs_utilization.dir/bench_exs_utilization.cpp.o"
  "CMakeFiles/bench_exs_utilization.dir/bench_exs_utilization.cpp.o.d"
  "bench_exs_utilization"
  "bench_exs_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exs_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
