# Empty dependencies file for bench_exs_utilization.
# This may be replaced when dependencies are built.
