# Empty compiler generated dependencies file for bench_notice_cost.
# This may be replaced when dependencies are built.
