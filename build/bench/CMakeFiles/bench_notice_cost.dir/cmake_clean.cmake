file(REMOVE_RECURSE
  "CMakeFiles/bench_notice_cost.dir/bench_notice_cost.cpp.o"
  "CMakeFiles/bench_notice_cost.dir/bench_notice_cost.cpp.o.d"
  "bench_notice_cost"
  "bench_notice_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_notice_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
