file(REMOVE_RECURSE
  "libbrisk.a"
)
