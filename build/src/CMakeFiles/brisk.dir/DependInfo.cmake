
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clock/brisk_sync.cpp" "src/CMakeFiles/brisk.dir/clock/brisk_sync.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/clock/brisk_sync.cpp.o.d"
  "/root/repo/src/clock/clock.cpp" "src/CMakeFiles/brisk.dir/clock/clock.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/clock/clock.cpp.o.d"
  "/root/repo/src/clock/cristian_sync.cpp" "src/CMakeFiles/brisk.dir/clock/cristian_sync.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/clock/cristian_sync.cpp.o.d"
  "/root/repo/src/clock/sim_clock.cpp" "src/CMakeFiles/brisk.dir/clock/sim_clock.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/clock/sim_clock.cpp.o.d"
  "/root/repo/src/clock/skew_estimator.cpp" "src/CMakeFiles/brisk.dir/clock/skew_estimator.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/clock/skew_estimator.cpp.o.d"
  "/root/repo/src/clock/sync_service.cpp" "src/CMakeFiles/brisk.dir/clock/sync_service.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/clock/sync_service.cpp.o.d"
  "/root/repo/src/common/byte_buffer.cpp" "src/CMakeFiles/brisk.dir/common/byte_buffer.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/common/byte_buffer.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/brisk.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/common/error.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/brisk.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/CMakeFiles/brisk.dir/common/string_util.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/common/string_util.cpp.o.d"
  "/root/repo/src/common/time_util.cpp" "src/CMakeFiles/brisk.dir/common/time_util.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/common/time_util.cpp.o.d"
  "/root/repo/src/consumers/perturbation.cpp" "src/CMakeFiles/brisk.dir/consumers/perturbation.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/consumers/perturbation.cpp.o.d"
  "/root/repo/src/consumers/shm_consumer.cpp" "src/CMakeFiles/brisk.dir/consumers/shm_consumer.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/consumers/shm_consumer.cpp.o.d"
  "/root/repo/src/consumers/trace_stats.cpp" "src/CMakeFiles/brisk.dir/consumers/trace_stats.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/consumers/trace_stats.cpp.o.d"
  "/root/repo/src/core/brisk_manager.cpp" "src/CMakeFiles/brisk.dir/core/brisk_manager.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/core/brisk_manager.cpp.o.d"
  "/root/repo/src/core/brisk_node.cpp" "src/CMakeFiles/brisk.dir/core/brisk_node.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/core/brisk_node.cpp.o.d"
  "/root/repo/src/core/knobs.cpp" "src/CMakeFiles/brisk.dir/core/knobs.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/core/knobs.cpp.o.d"
  "/root/repo/src/core/version.cpp" "src/CMakeFiles/brisk.dir/core/version.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/core/version.cpp.o.d"
  "/root/repo/src/ism/cre_matcher.cpp" "src/CMakeFiles/brisk.dir/ism/cre_matcher.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/ism/cre_matcher.cpp.o.d"
  "/root/repo/src/ism/drop_policy.cpp" "src/CMakeFiles/brisk.dir/ism/drop_policy.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/ism/drop_policy.cpp.o.d"
  "/root/repo/src/ism/event_queue.cpp" "src/CMakeFiles/brisk.dir/ism/event_queue.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/ism/event_queue.cpp.o.d"
  "/root/repo/src/ism/ism.cpp" "src/CMakeFiles/brisk.dir/ism/ism.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/ism/ism.cpp.o.d"
  "/root/repo/src/ism/merge_heap.cpp" "src/CMakeFiles/brisk.dir/ism/merge_heap.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/ism/merge_heap.cpp.o.d"
  "/root/repo/src/ism/online_sorter.cpp" "src/CMakeFiles/brisk.dir/ism/online_sorter.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/ism/online_sorter.cpp.o.d"
  "/root/repo/src/ism/output.cpp" "src/CMakeFiles/brisk.dir/ism/output.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/ism/output.cpp.o.d"
  "/root/repo/src/lis/batcher.cpp" "src/CMakeFiles/brisk.dir/lis/batcher.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/lis/batcher.cpp.o.d"
  "/root/repo/src/lis/exs_config.cpp" "src/CMakeFiles/brisk.dir/lis/exs_config.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/lis/exs_config.cpp.o.d"
  "/root/repo/src/lis/external_sensor.cpp" "src/CMakeFiles/brisk.dir/lis/external_sensor.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/lis/external_sensor.cpp.o.d"
  "/root/repo/src/net/event_loop.cpp" "src/CMakeFiles/brisk.dir/net/event_loop.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/net/event_loop.cpp.o.d"
  "/root/repo/src/net/frame.cpp" "src/CMakeFiles/brisk.dir/net/frame.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/net/frame.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/CMakeFiles/brisk.dir/net/socket.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/net/socket.cpp.o.d"
  "/root/repo/src/picl/picl_reader.cpp" "src/CMakeFiles/brisk.dir/picl/picl_reader.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/picl/picl_reader.cpp.o.d"
  "/root/repo/src/picl/picl_record.cpp" "src/CMakeFiles/brisk.dir/picl/picl_record.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/picl/picl_record.cpp.o.d"
  "/root/repo/src/picl/picl_writer.cpp" "src/CMakeFiles/brisk.dir/picl/picl_writer.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/picl/picl_writer.cpp.o.d"
  "/root/repo/src/sensors/field.cpp" "src/CMakeFiles/brisk.dir/sensors/field.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sensors/field.cpp.o.d"
  "/root/repo/src/sensors/profiler.cpp" "src/CMakeFiles/brisk.dir/sensors/profiler.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sensors/profiler.cpp.o.d"
  "/root/repo/src/sensors/record.cpp" "src/CMakeFiles/brisk.dir/sensors/record.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sensors/record.cpp.o.d"
  "/root/repo/src/sensors/record_codec.cpp" "src/CMakeFiles/brisk.dir/sensors/record_codec.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sensors/record_codec.cpp.o.d"
  "/root/repo/src/sensors/sensor.cpp" "src/CMakeFiles/brisk.dir/sensors/sensor.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sensors/sensor.cpp.o.d"
  "/root/repo/src/sensors/sensor_registry.cpp" "src/CMakeFiles/brisk.dir/sensors/sensor_registry.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sensors/sensor_registry.cpp.o.d"
  "/root/repo/src/shm/multi_ring.cpp" "src/CMakeFiles/brisk.dir/shm/multi_ring.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/shm/multi_ring.cpp.o.d"
  "/root/repo/src/shm/ring_buffer.cpp" "src/CMakeFiles/brisk.dir/shm/ring_buffer.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/shm/ring_buffer.cpp.o.d"
  "/root/repo/src/shm/shared_region.cpp" "src/CMakeFiles/brisk.dir/shm/shared_region.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/shm/shared_region.cpp.o.d"
  "/root/repo/src/sim/channel.cpp" "src/CMakeFiles/brisk.dir/sim/channel.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sim/channel.cpp.o.d"
  "/root/repo/src/sim/delayed_stream.cpp" "src/CMakeFiles/brisk.dir/sim/delayed_stream.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sim/delayed_stream.cpp.o.d"
  "/root/repo/src/sim/latency_model.cpp" "src/CMakeFiles/brisk.dir/sim/latency_model.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sim/latency_model.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/brisk.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/sim/workload.cpp.o.d"
  "/root/repo/src/tp/batch.cpp" "src/CMakeFiles/brisk.dir/tp/batch.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/tp/batch.cpp.o.d"
  "/root/repo/src/tp/meta_header.cpp" "src/CMakeFiles/brisk.dir/tp/meta_header.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/tp/meta_header.cpp.o.d"
  "/root/repo/src/tp/wire.cpp" "src/CMakeFiles/brisk.dir/tp/wire.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/tp/wire.cpp.o.d"
  "/root/repo/src/vo/visual_object.cpp" "src/CMakeFiles/brisk.dir/vo/visual_object.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/vo/visual_object.cpp.o.d"
  "/root/repo/src/vo/vo_channel.cpp" "src/CMakeFiles/brisk.dir/vo/vo_channel.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/vo/vo_channel.cpp.o.d"
  "/root/repo/src/vo/vo_registry.cpp" "src/CMakeFiles/brisk.dir/vo/vo_registry.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/vo/vo_registry.cpp.o.d"
  "/root/repo/src/xdr/xdr_decoder.cpp" "src/CMakeFiles/brisk.dir/xdr/xdr_decoder.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/xdr/xdr_decoder.cpp.o.d"
  "/root/repo/src/xdr/xdr_encoder.cpp" "src/CMakeFiles/brisk.dir/xdr/xdr_encoder.cpp.o" "gcc" "src/CMakeFiles/brisk.dir/xdr/xdr_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
