# Empty compiler generated dependencies file for brisk.
# This may be replaced when dependencies are built.
