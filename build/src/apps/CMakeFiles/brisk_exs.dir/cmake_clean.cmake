file(REMOVE_RECURSE
  "CMakeFiles/brisk_exs.dir/brisk_exs_main.cpp.o"
  "CMakeFiles/brisk_exs.dir/brisk_exs_main.cpp.o.d"
  "brisk_exs"
  "brisk_exs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brisk_exs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
