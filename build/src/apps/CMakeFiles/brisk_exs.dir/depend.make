# Empty dependencies file for brisk_exs.
# This may be replaced when dependencies are built.
