# Empty compiler generated dependencies file for brisk_consume.
# This may be replaced when dependencies are built.
