file(REMOVE_RECURSE
  "CMakeFiles/brisk_consume.dir/brisk_consume_main.cpp.o"
  "CMakeFiles/brisk_consume.dir/brisk_consume_main.cpp.o.d"
  "brisk_consume"
  "brisk_consume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brisk_consume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
