file(REMOVE_RECURSE
  "CMakeFiles/brisk_ism.dir/brisk_ism_main.cpp.o"
  "CMakeFiles/brisk_ism.dir/brisk_ism_main.cpp.o.d"
  "brisk_ism"
  "brisk_ism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brisk_ism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
