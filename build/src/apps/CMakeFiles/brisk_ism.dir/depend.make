# Empty dependencies file for brisk_ism.
# This may be replaced when dependencies are built.
