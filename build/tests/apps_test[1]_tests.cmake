add_test([=[AppsTest.ThreeExecutableDeployment]=]  /root/repo/build/tests/apps_test [==[--gtest_filter=AppsTest.ThreeExecutableDeployment]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[AppsTest.ThreeExecutableDeployment]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  apps_test_TESTS AppsTest.ThreeExecutableDeployment)
