file(REMOVE_RECURSE
  "CMakeFiles/picl_test.dir/picl_test.cpp.o"
  "CMakeFiles/picl_test.dir/picl_test.cpp.o.d"
  "picl_test"
  "picl_test.pdb"
  "picl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
