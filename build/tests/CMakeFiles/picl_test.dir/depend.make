# Empty dependencies file for picl_test.
# This may be replaced when dependencies are built.
