file(REMOVE_RECURSE
  "CMakeFiles/consumers_vo_test.dir/consumers_vo_test.cpp.o"
  "CMakeFiles/consumers_vo_test.dir/consumers_vo_test.cpp.o.d"
  "consumers_vo_test"
  "consumers_vo_test.pdb"
  "consumers_vo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consumers_vo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
