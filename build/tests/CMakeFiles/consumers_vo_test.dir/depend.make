# Empty dependencies file for consumers_vo_test.
# This may be replaced when dependencies are built.
