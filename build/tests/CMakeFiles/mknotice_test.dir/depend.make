# Empty dependencies file for mknotice_test.
# This may be replaced when dependencies are built.
