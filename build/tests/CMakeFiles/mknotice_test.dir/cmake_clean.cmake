file(REMOVE_RECURSE
  "CMakeFiles/mknotice_test.dir/mknotice_test.cpp.o"
  "CMakeFiles/mknotice_test.dir/mknotice_test.cpp.o.d"
  "mknotice_test"
  "mknotice_test.pdb"
  "mknotice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mknotice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
