# Empty dependencies file for ism_test.
# This may be replaced when dependencies are built.
