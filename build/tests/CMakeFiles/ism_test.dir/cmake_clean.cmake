file(REMOVE_RECURSE
  "CMakeFiles/ism_test.dir/ism_test.cpp.o"
  "CMakeFiles/ism_test.dir/ism_test.cpp.o.d"
  "ism_test"
  "ism_test.pdb"
  "ism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
