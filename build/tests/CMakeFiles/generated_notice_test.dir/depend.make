# Empty dependencies file for generated_notice_test.
# This may be replaced when dependencies are built.
