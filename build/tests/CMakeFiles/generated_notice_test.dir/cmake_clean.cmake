file(REMOVE_RECURSE
  "CMakeFiles/generated_notice_test.dir/generated_notice_test.cpp.o"
  "CMakeFiles/generated_notice_test.dir/generated_notice_test.cpp.o.d"
  "generated_notice_test"
  "generated_notice_test.pdb"
  "generated_notice_test[1]_tests.cmake"
  "generated_notices.hpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_notice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
