file(REMOVE_RECURSE
  "CMakeFiles/ism_server_test.dir/ism_server_test.cpp.o"
  "CMakeFiles/ism_server_test.dir/ism_server_test.cpp.o.d"
  "ism_server_test"
  "ism_server_test.pdb"
  "ism_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ism_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
