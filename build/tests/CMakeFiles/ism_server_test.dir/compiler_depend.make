# Empty compiler generated dependencies file for ism_server_test.
# This may be replaced when dependencies are built.
