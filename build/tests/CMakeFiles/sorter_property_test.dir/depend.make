# Empty dependencies file for sorter_property_test.
# This may be replaced when dependencies are built.
