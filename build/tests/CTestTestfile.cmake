# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xdr_test[1]_include.cmake")
include("/root/repo/build/tests/shm_test[1]_include.cmake")
include("/root/repo/build/tests/sensors_test[1]_include.cmake")
include("/root/repo/build/tests/tp_test[1]_include.cmake")
include("/root/repo/build/tests/clock_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/lis_test[1]_include.cmake")
include("/root/repo/build/tests/ism_test[1]_include.cmake")
include("/root/repo/build/tests/picl_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/consumers_vo_test[1]_include.cmake")
include("/root/repo/build/tests/mknotice_test[1]_include.cmake")
include("/root/repo/build/tests/generated_notice_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/sorter_property_test[1]_include.cmake")
include("/root/repo/build/tests/ism_server_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_decode_test[1]_include.cmake")
