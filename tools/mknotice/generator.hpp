// mknotice: NOTICE-macro specialization generator.
//
// "A utility tool is provided to create custom NOTICE macros having
// user-defined field types and insert them into the header file. This tool
// effectively supports an on-demand partial evaluation/specialization of
// NOTICE macros that results in smaller and faster code."
//
// Given a sensor spec (name, id, field types), the generator emits a header
// with
//   * a compile-time specialized BRISK_NOTICE_<NAME>(sensor, args...) macro
//     whose argument wrappers are fixed (no dynamic-typing dispatch), and
//   * a register_<name>() helper that records the sensor's signature in the
//     SensorRegistry.
// Specialized macros may use up to 16 fields (the stock dynamic macro stops
// at 8, as in the paper).
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "sensors/field.hpp"

namespace brisk::tools {

struct SensorSpec {
  std::string name;  // C identifier, e.g. "net_send"
  SensorId id = 0;
  std::vector<sensors::FieldType> fields;
  std::string description;
};

/// Parses a spec line: "name id type,type,..." where type is one of
/// i8,u8,i16,u16,i32,u32,i64,u64,f32,f64,char,str,ts,reason,conseq.
/// Lines starting with '#' and blank lines yield Errc::not_found (skip).
Result<SensorSpec> parse_spec_line(const std::string& line);

/// Parses a whole spec file body (one spec per line).
Result<std::vector<SensorSpec>> parse_spec_file(const std::string& content);

/// Emits the generated header for a set of specs.
Result<std::string> generate_header(const std::vector<SensorSpec>& specs,
                                    const std::string& include_guard);

}  // namespace brisk::tools
