// mknotice: generates specialized NOTICE macros from a sensor spec file.
//
// Spec file: one sensor per line, "name id type,type,... [description]",
// e.g.
//   net_send  10  i32,u64,ts    bytes-queued
//   req_done  11  reason,i32
//
// Usage: mknotice --spec sensors.spec --out my_notices.hpp [--guard NAME]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "apps/flag_parser.hpp"
#include "mknotice/generator.hpp"

int main(int argc, char** argv) {
  using namespace brisk;
  apps::FlagParser flags(argc, argv);
  const std::string spec_path = flags.get_string("spec", "");
  const std::string out_path = flags.get_string("out", "");
  std::string guard = flags.get_string("guard", "BRISK_GENERATED_NOTICES_HPP");
  flags.reject_unknown();

  if (spec_path.empty() || out_path.empty()) {
    std::fprintf(stderr, "usage: mknotice --spec <file> --out <header> [--guard NAME]\n");
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "mknotice: cannot open %s\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream content;
  content << in.rdbuf();

  auto specs = tools::parse_spec_file(content.str());
  if (!specs) {
    std::fprintf(stderr, "mknotice: %s\n", specs.status().to_string().c_str());
    return 1;
  }
  auto header = tools::generate_header(specs.value(), guard);
  if (!header) {
    std::fprintf(stderr, "mknotice: %s\n", header.status().to_string().c_str());
    return 1;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "mknotice: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << header.value();
  std::printf("mknotice: wrote %zu sensors to %s\n", specs.value().size(), out_path.c_str());
  return 0;
}
