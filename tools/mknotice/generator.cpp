#include "mknotice/generator.hpp"

#include <cctype>

#include "common/string_util.hpp"

namespace brisk::tools {

using sensors::FieldType;

namespace {

struct TypeInfo {
  const char* spec_name;    // what the spec file says
  const char* wrapper;      // x_* wrapper for the dynamic notice() path
  const char* cpp_arg;      // parameter type for the function path
  bool consumes_argument;   // x_ts() embeds the record's own timestamp
};

const TypeInfo* type_info(FieldType type) noexcept {
  switch (type) {
    case FieldType::x_i8: {
      static constexpr TypeInfo info{"i8", "x_i8", "std::int8_t", true};
      return &info;
    }
    case FieldType::x_u8: {
      static constexpr TypeInfo info{"u8", "x_u8", "std::uint8_t", true};
      return &info;
    }
    case FieldType::x_i16: {
      static constexpr TypeInfo info{"i16", "x_i16", "std::int16_t", true};
      return &info;
    }
    case FieldType::x_u16: {
      static constexpr TypeInfo info{"u16", "x_u16", "std::uint16_t", true};
      return &info;
    }
    case FieldType::x_i32: {
      static constexpr TypeInfo info{"i32", "x_i32", "std::int32_t", true};
      return &info;
    }
    case FieldType::x_u32: {
      static constexpr TypeInfo info{"u32", "x_u32", "std::uint32_t", true};
      return &info;
    }
    case FieldType::x_i64: {
      static constexpr TypeInfo info{"i64", "x_i64", "std::int64_t", true};
      return &info;
    }
    case FieldType::x_u64: {
      static constexpr TypeInfo info{"u64", "x_u64", "std::uint64_t", true};
      return &info;
    }
    case FieldType::x_f32: {
      static constexpr TypeInfo info{"f32", "x_f32", "float", true};
      return &info;
    }
    case FieldType::x_f64: {
      static constexpr TypeInfo info{"f64", "x_f64", "double", true};
      return &info;
    }
    case FieldType::x_char: {
      static constexpr TypeInfo info{"char", "x_char", "char", true};
      return &info;
    }
    case FieldType::x_string: {
      static constexpr TypeInfo info{"str", "x_str", "std::string_view", true};
      return &info;
    }
    case FieldType::x_ts: {
      static constexpr TypeInfo info{"ts", "x_ts", "", false};
      return &info;
    }
    case FieldType::x_reason: {
      static constexpr TypeInfo info{"reason", "x_reason", "::brisk::CausalId", true};
      return &info;
    }
    case FieldType::x_conseq: {
      static constexpr TypeInfo info{"conseq", "x_conseq", "::brisk::CausalId", true};
      return &info;
    }
  }
  return nullptr;
}

Result<FieldType> type_from_spec_name(std::string_view name) {
  for (std::uint8_t raw = 0; raw < sensors::kFieldTypeCount; ++raw) {
    const auto type = static_cast<FieldType>(raw);
    if (name == type_info(type)->spec_name) return type;
  }
  return Status(Errc::invalid_argument, "unknown field type: " + std::string(name));
}

bool valid_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  if (std::isalpha(static_cast<unsigned char>(name[0])) == 0 && name[0] != '_') return false;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') return false;
  }
  return true;
}

std::string upper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

/// Writer-method name for the function (>8 fields) path.
const char* writer_method(FieldType type) noexcept {
  switch (type) {
    case FieldType::x_i8: return "add_i8";
    case FieldType::x_u8: return "add_u8";
    case FieldType::x_i16: return "add_i16";
    case FieldType::x_u16: return "add_u16";
    case FieldType::x_i32: return "add_i32";
    case FieldType::x_u32: return "add_u32";
    case FieldType::x_i64: return "add_i64";
    case FieldType::x_u64: return "add_u64";
    case FieldType::x_f32: return "add_f32";
    case FieldType::x_f64: return "add_f64";
    case FieldType::x_char: return "add_char";
    case FieldType::x_string: return "add_string";
    case FieldType::x_ts: return "add_ts";
    case FieldType::x_reason: return "add_reason";
    case FieldType::x_conseq: return "add_conseq";
  }
  return "";
}

void generate_one(const SensorSpec& spec, std::string& out) {
  const std::string macro_name = "BRISK_NOTICE_" + upper(spec.name);
  const std::string constant = "kSensor_" + spec.name;

  out += "// sensor '" + spec.name + "' (id " + std::to_string(spec.id) + "):";
  for (FieldType t : spec.fields) {
    out += ' ';
    out += sensors::field_type_name(t);
  }
  out += '\n';
  out += "inline constexpr ::brisk::SensorId " + constant + " = " + std::to_string(spec.id) +
         ";\n";

  // Registration helper, carrying the full signature.
  out += "inline ::brisk::Status register_" + spec.name +
         "(::brisk::sensors::SensorRegistry& registry) {\n";
  out += "  return registry.register_sensor({" + constant + ", \"" + spec.name + "\", {";
  for (std::size_t i = 0; i < spec.fields.size(); ++i) {
    if (i != 0) out += ", ";
    out += "::brisk::sensors::FieldType::";
    // enum value names are the lowercase x_* identifiers
    std::string enum_name = sensors::field_type_name(spec.fields[i]);
    for (char& c : enum_name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    out += enum_name;
  }
  out += "}, \"" + escape_ascii(spec.description) + "\"});\n}\n";

  // Count macro arguments (x_ts consumes none).
  std::vector<std::size_t> arg_fields;
  for (std::size_t i = 0; i < spec.fields.size(); ++i) {
    if (type_info(spec.fields[i])->consumes_argument) arg_fields.push_back(i);
  }

  if (spec.fields.size() <= sensors::kDefaultMacroFieldLimit) {
    // Dynamic path: a plain specialization of the stock macro.
    out += "#define " + macro_name + "(sensor_obj";
    for (std::size_t i = 0; i < arg_fields.size(); ++i) out += ", a" + std::to_string(i);
    out += ") \\\n  (sensor_obj).notice(" + constant;
    std::size_t arg = 0;
    for (std::size_t i = 0; i < spec.fields.size(); ++i) {
      out += ", ::brisk::sensors::";
      out += type_info(spec.fields[i])->wrapper;
      out += '(';
      if (type_info(spec.fields[i])->consumes_argument) out += "a" + std::to_string(arg++);
      out += ')';
    }
    out += ")\n";
  } else {
    // Wide path (up to 16 fields): a typed inline function over the
    // allocation-free RecordWriter, aliased by the macro.
    out += "inline bool notice_" + spec.name + "(::brisk::sensors::Sensor& sensor";
    std::size_t arg = 0;
    for (std::size_t i : arg_fields) {
      out += ", " + std::string(type_info(spec.fields[i])->cpp_arg) + " a" +
             std::to_string(arg++);
    }
    out += ") {\n";
    out += "  std::array<std::uint8_t, ::brisk::sensors::kMaxNativeRecordBytes> buf;\n";
    out += "  ::brisk::sensors::RecordWriter writer({buf.data(), buf.size()});\n";
    out += "  const ::brisk::TimeMicros ts = sensor.clock().now();\n";
    out += "  if (!writer.begin(" + constant + ", sensor.next_sequence(), ts)) return false;\n";
    arg = 0;
    for (std::size_t i = 0; i < spec.fields.size(); ++i) {
      const TypeInfo* info = type_info(spec.fields[i]);
      out += "  if (!writer.";
      out += writer_method(spec.fields[i]);
      out += '(';
      if (info->consumes_argument) {
        out += "a" + std::to_string(arg++);
      } else {
        out += "ts";
      }
      out += ")) return false;\n";
    }
    out += "  auto bytes = writer.finish();\n";
    out += "  if (!bytes) return false;\n";
    out += "  return sensor.push_encoded(bytes.value());\n";
    out += "}\n";
    out += "#define " + macro_name + "(sensor_obj";
    for (std::size_t i = 0; i < arg_fields.size(); ++i) out += ", a" + std::to_string(i);
    out += ") \\\n  notice_" + spec.name + "((sensor_obj)";
    for (std::size_t i = 0; i < arg_fields.size(); ++i) out += ", (a" + std::to_string(i) + ")";
    out += ")\n";
  }
  out += '\n';
}

}  // namespace

Result<SensorSpec> parse_spec_line(const std::string& line) {
  const std::string_view content = trim(line);
  if (content.empty() || content.front() == '#') {
    return Status(Errc::not_found, "blank/comment line");
  }
  std::vector<std::string> parts;
  for (const std::string& token : split(std::string(content), ' ')) {
    if (!token.empty()) parts.push_back(token);
  }
  if (parts.size() < 3 || parts.size() > 4) {
    return Status(Errc::malformed, "expected: name id types [description]");
  }
  SensorSpec spec;
  spec.name = parts[0];
  if (!valid_identifier(spec.name)) {
    return Status(Errc::malformed, "sensor name must be a C identifier: " + spec.name);
  }
  auto id = parse_int(parts[1]);
  if (!id || *id < 0 || *id > 0xffff) {
    return Status(Errc::malformed, "sensor id must be 0..65535");
  }
  spec.id = static_cast<SensorId>(*id);
  for (const std::string& type_name : split(parts[2], ',')) {
    auto type = type_from_spec_name(type_name);
    if (!type) return type.status();
    spec.fields.push_back(type.value());
  }
  if (spec.fields.size() > sensors::kMaxFieldsPerRecord) {
    return Status(Errc::malformed, "more than 16 fields");
  }
  if (parts.size() == 4) spec.description = parts[3];
  return spec;
}

Result<std::vector<SensorSpec>> parse_spec_file(const std::string& content) {
  std::vector<SensorSpec> specs;
  for (const std::string& line : split(content, '\n')) {
    auto spec = parse_spec_line(line);
    if (!spec) {
      if (spec.status().code() == Errc::not_found) continue;
      return spec.status();
    }
    specs.push_back(std::move(spec).value());
  }
  return specs;
}

Result<std::string> generate_header(const std::vector<SensorSpec>& specs,
                                    const std::string& include_guard) {
  if (!valid_identifier(include_guard)) {
    return Status(Errc::invalid_argument, "bad include guard");
  }
  std::string out;
  out += "// Generated by mknotice — do not edit.\n";
  out += "#ifndef " + include_guard + "\n";
  out += "#define " + include_guard + "\n\n";
  out += "#include <array>\n#include <cstdint>\n\n";
  out += "#include \"sensors/sensor.hpp\"\n";
  out += "#include \"sensors/sensor_registry.hpp\"\n\n";
  for (const SensorSpec& spec : specs) generate_one(spec, out);
  out += "#endif  // " + include_guard + "\n";
  return out;
}

}  // namespace brisk::tools
