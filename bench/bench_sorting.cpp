// E7 — On-line sorting with artificially delayed event streams.
//
// Paper: "The on-line sorting algorithm was evaluated using streams of
// artificially delayed event records, and by varying four quantitative and
// qualitative parameters. We found that setting the time frame T to be as
// large as the latest late event's lateness is a good strategy for
// latency-critical applications, and that in all other applications a small
// exponent constant for reducing T (i.e., a large T's half-life) helps."
//
// The four varied parameters, as in the paper:
//   1. initial time frame T,
//   2. the decay constant (half-life) of T,
//   3. the lateness distribution of the streams,
//   4. the event rate.
// Metrics: out-of-order emission fraction (ordering quality) and average
// added delay (latency cost) — the trade-off the algorithm navigates.
#include <algorithm>
#include <map>
#include <set>

#include "bench_harness.hpp"
#include "ism/cre_matcher.hpp"
#include "clock/clock.hpp"
#include "ism/online_sorter.hpp"
#include "sim/delayed_stream.hpp"

namespace {

using namespace brisk;  // NOLINT

struct RunResult {
  double out_of_order_fraction = 0.0;
  double avg_delay_ms = 0.0;
  TimeMicros final_frame_us = 0;
};

/// Replays a generated stream through the sorter in simulated time.
RunResult replay(const std::vector<sim::Arrival>& stream, const ism::SorterConfig& config) {
  clk::ManualClock clock(0);
  std::uint64_t emitted = 0;
  std::uint64_t out_of_order = 0;
  TimeMicros last_ts = 0;
  std::uint64_t total_delay = 0;
  ism::OnlineSorter sorter(config, clock, [&](const sensors::Record& record) {
    if (emitted > 0 && record.timestamp < last_ts) ++out_of_order;
    if (record.timestamp > last_ts || emitted == 0) last_ts = record.timestamp;
    total_delay += static_cast<std::uint64_t>(clock.now() - record.timestamp);
    ++emitted;
  });

  for (const sim::Arrival& arrival : stream) {
    // Advance simulated time in 1 ms service steps up to the arrival.
    while (clock.now() + 1'000 <= arrival.arrival_us) {
      clock.advance(1'000);
      sorter.service();
    }
    clock.set(arrival.arrival_us);
    sorter.service();
    (void)sorter.push(arrival.record);
  }
  // Let the tail drain under the normal release rule.
  for (int i = 0; i < 10'000 && sorter.pending() > 0; ++i) {
    clock.advance(1'000);
    sorter.service();
  }

  RunResult result;
  result.out_of_order_fraction =
      emitted == 0 ? 0.0 : static_cast<double>(out_of_order) / static_cast<double>(emitted);
  result.avg_delay_ms =
      emitted == 0 ? 0.0 : static_cast<double>(total_delay) / static_cast<double>(emitted) / 1e3;
  result.final_frame_us = sorter.current_frame();
  return result;
}

sim::DelayedStreamConfig base_stream_config() {
  sim::DelayedStreamConfig config;
  config.nodes = 4;
  config.events_per_sec_per_node = 2'000.0;
  config.duration_us = 2'000'000;
  config.distribution = sim::LatenessDistribution::exponential;
  config.base_delay_us = 300;
  config.spread_us = 3'000;
  config.seed = 17;
  return config;
}

}  // namespace

int main() {
  bench::heading("E7: on-line sorting on artificially delayed streams (4-parameter sweep)",
                 "T ~= max lateness is best for latency-critical use; a large "
                 "half-life (small decay exponent) helps elsewhere");

  // ---- parameter 1: initial time frame T (fixed, no adaptation) ------------
  {
    auto stream_config = base_stream_config();
    auto stream = sim::generate_delayed_stream(stream_config);
    const TimeMicros oracle = sim::max_cross_node_lateness(stream);
    bench::row("-- sweep 1: fixed time frame T (oracle max lateness = %lld us) --",
               static_cast<long long>(oracle));
    bench::row("%14s %16s %16s", "T(us)", "out-of-order(%)", "avg delay(ms)");
    for (TimeMicros frame :
         {TimeMicros{0}, TimeMicros{1'000}, oracle / 4, oracle / 2, oracle, oracle * 2}) {
      ism::SorterConfig config;
      config.initial_frame_us = frame;
      config.adaptive = false;
      auto result = replay(stream, config);
      bench::row("%14lld %16.3f %16.2f", static_cast<long long>(frame),
                 100.0 * result.out_of_order_fraction, result.avg_delay_ms);
    }
    bench::row("shape check: disorder ~0 once T >= oracle; delay grows with T");
  }

  // ---- parameter 2: decay half-life of the adaptive T -----------------------
  {
    auto stream_config = base_stream_config();
    stream_config.distribution = sim::LatenessDistribution::bursty;
    stream_config.burst_probability = 0.005;
    stream_config.burst_extra_us = 20'000;
    stream_config.duration_us = 4'000'000;
    auto stream = sim::generate_delayed_stream(stream_config);
    bench::row("-- sweep 2: adaptive T decay half-life (bursty stream) --");
    bench::row("%16s %16s %16s %14s", "half-life(s)", "out-of-order(%)", "avg delay(ms)",
               "final T(us)");
    for (double half_life : {0.05, 0.25, 1.0, 4.0, 16.0}) {
      ism::SorterConfig config;
      config.initial_frame_us = 1'000;
      config.min_frame_us = 0;
      config.decay_half_life_s = half_life;
      auto result = replay(stream, config);
      bench::row("%16.2f %16.3f %16.2f %14lld", half_life,
                 100.0 * result.out_of_order_fraction, result.avg_delay_ms,
                 static_cast<long long>(result.final_frame_us));
    }
    bench::row("shape check: larger half-life keeps ordering across bursts (paper's");
    bench::row("             finding); smaller half-life trades order for latency");
  }

  // ---- parameter 3: lateness distribution ------------------------------------
  {
    bench::row("-- sweep 3: lateness distribution (adaptive T, 1 s half-life) --");
    bench::row("%14s %14s %16s %16s", "distribution", "oracle(us)", "out-of-order(%)",
               "avg delay(ms)");
    for (auto distribution :
         {sim::LatenessDistribution::none, sim::LatenessDistribution::uniform,
          sim::LatenessDistribution::exponential, sim::LatenessDistribution::bursty}) {
      auto stream_config = base_stream_config();
      stream_config.distribution = distribution;
      auto stream = sim::generate_delayed_stream(stream_config);
      ism::SorterConfig config;
      config.initial_frame_us = 1'000;
      config.decay_half_life_s = 1.0;
      auto result = replay(stream, config);
      bench::row("%14s %14lld %16.3f %16.2f",
                 sim::lateness_distribution_name(distribution),
                 static_cast<long long>(sim::max_cross_node_lateness(stream)),
                 100.0 * result.out_of_order_fraction, result.avg_delay_ms);
    }
    bench::row("shape check: adaptation tracks rare large tails well (exponential);");
    bench::row("             dense bounded disorder (uniform) undershoots because the");
    bench::row("             emission-observed lateness underestimates the needed window");
  }

  // ---- CRE / tachyon repair under clock skew --------------------------------------
  // Causally-paired streams (reason on node 0, consequence on node 1 whose
  // clock lags by `skew`): with skew > the true propagation delay the raw
  // timestamps invert (tachyons). The CRE matcher must deliver zero causal
  // inversions regardless of skew; without it, inversions grow with skew.
  {
    bench::row("-- CRE matching: causal inversions at the output vs node clock skew --");
    bench::row("%12s %14s %18s %20s", "skew(us)", "pairs", "inversions (raw)",
               "inversions (CRE on)");
    for (TimeMicros skew : {TimeMicros{0}, TimeMicros{500}, TimeMicros{2'000},
                            TimeMicros{10'000}}) {
      constexpr int kPairs = 500;
      constexpr TimeMicros kTrueDelay = 300;  // reason → conseq propagation
      // Build the arrival sequence: reason (node 0, true ts), then conseq
      // (node 1, ts skewed into the past).
      struct Event {
        sensors::Record record;
        TimeMicros arrival;
      };
      std::vector<Event> events;
      events.reserve(2 * kPairs);
      for (int pair = 0; pair < kPairs; ++pair) {
        const TimeMicros t = 1'000 + static_cast<TimeMicros>(pair) * 1'000;
        sensors::Record reason;
        reason.node = 0;
        reason.sensor = 1;
        reason.timestamp = t;
        reason.fields = {sensors::Field::reason(static_cast<CausalId>(pair))};
        events.push_back({std::move(reason), t + 200});
        sensors::Record conseq;
        conseq.node = 1;
        conseq.sensor = 2;
        conseq.timestamp = t + kTrueDelay - skew;  // skewed clock
        conseq.fields = {sensors::Field::conseq(static_cast<CausalId>(pair))};
        events.push_back({std::move(conseq), t + kTrueDelay + 200});
      }
      std::sort(events.begin(), events.end(),
                [](const Event& a, const Event& b) { return a.arrival < b.arrival; });

      auto run = [&](bool use_cre) {
        clk::ManualClock clock(0);
        std::map<CausalId, TimeMicros> reason_emit_ts;
        std::set<CausalId> conseq_before_reason;
        int inversions = 0;
        ism::SorterConfig sorter_config;
        sorter_config.initial_frame_us = 2'000;
        ism::OnlineSorter sorter(sorter_config, clock, [&](const sensors::Record& r) {
          // An inversion is either a consequence delivered before its
          // reason, or delivered after it with a timestamp that does not
          // exceed the reason's.
          if (auto id = r.reason_id()) {
            reason_emit_ts[*id] = r.timestamp;
            if (conseq_before_reason.count(*id) != 0) ++inversions;
          }
          if (auto id = r.conseq_id()) {
            auto it = reason_emit_ts.find(*id);
            if (it == reason_emit_ts.end()) {
              conseq_before_reason.insert(*id);
            } else if (r.timestamp <= it->second) {
              ++inversions;
            }
          }
        });
        ism::CreMatcher matcher({.hold_timeout_us = 1'000'000, .repair_margin_us = 1},
                                clock, [] {});
        std::vector<sensors::Record> ready;
        for (const Event& event : events) {
          clock.set(event.arrival);
          sorter.service();
          ready.clear();
          if (use_cre) {
            matcher.process(event.record, ready);
          } else {
            ready.push_back(event.record);
          }
          for (auto& r : ready) (void)sorter.push(std::move(r));
        }
        clock.advance(2'000'000);
        sorter.service();
        sorter.flush_all();
        return inversions;
      };

      bench::row("%12lld %14d %18d %20d", static_cast<long long>(skew), kPairs,
                 run(false), run(true));
    }
    bench::row("shape check: CRE holds causal order at every skew; raw timestamps");
    bench::row("             invert as soon as skew exceeds the true propagation delay");
  }

  // ---- parameter 4: event rate -------------------------------------------------
  {
    bench::row("-- sweep 4: event rate per node (adaptive T) --");
    bench::row("%14s %16s %16s", "rate(ev/s)", "out-of-order(%)", "avg delay(ms)");
    for (double rate : {200.0, 1'000.0, 5'000.0, 20'000.0}) {
      auto stream_config = base_stream_config();
      stream_config.events_per_sec_per_node = rate;
      auto stream = sim::generate_delayed_stream(stream_config);
      ism::SorterConfig config;
      config.initial_frame_us = 1'000;
      config.decay_half_life_s = 1.0;
      auto result = replay(stream, config);
      bench::row("%14.0f %16.3f %16.2f", rate, 100.0 * result.out_of_order_fraction,
                 result.avg_delay_ms);
    }
    bench::row("shape check: higher rates densify timestamps -> adaptation matters more");
  }
  return 0;
}
