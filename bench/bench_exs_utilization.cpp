// E2 — EXS CPU utilization while sharing a CPU with the target application.
//
// Paper: "The CPU utilization of the EXS on a Sun workstation where it
// shares the CPU with the target system was shown negligible (under 1%) at
// event rates of up to 38,000 per second."
//
// Setup: the paced looping application (6-int NOTICEs) runs in a worker
// thread; the EXS loop runs in the main thread so its thread-CPU clock
// isolates exactly the external sensor's work; the ISM runs in a third
// thread and is excluded from the measurement. Sweep the event rate and
// report the EXS CPU fraction.
#include <thread>

#include "bench_harness.hpp"
#include "common/time_util.hpp"
#include "sim/workload.hpp"

int main() {
  using namespace brisk;  // NOLINT
  bench::heading("E2: EXS CPU utilization vs target event rate",
                 "EXS utilization negligible (<1%) at rates up to 38,000 ev/s");

  bench::row("%10s %14s %14s %12s %14s", "rate(ev/s)", "achieved(ev/s)", "forwarded",
             "exs_cpu(%)", "exs_cpu(us/ev)");

  for (double rate : {1'000.0, 5'000.0, 10'000.0, 20'000.0, 38'000.0, 60'000.0}) {
    auto manager = BriskManager::create(bench::bench_manager_config());
    if (!manager) {
      std::fprintf(stderr, "manager: %s\n", manager.status().to_string().c_str());
      return 1;
    }
    auto node = BriskNode::create(bench::bench_node_config(1));
    if (!node) return 1;
    auto sensor = node.value()->make_sensor();
    if (!sensor) return 1;
    auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
    if (!exs) return 1;

    constexpr TimeMicros kDuration = 1'000'000;
    std::thread ism_thread([&] { (void)manager.value()->run_for(kDuration + 400'000); });
    sim::WorkloadResult workload{};
    std::thread app_thread([&] {
      sim::WorkloadConfig config;
      config.events_per_sec = rate;
      config.duration_us = kDuration;
      workload = sim::run_looping_workload(sensor.value(), config);
    });

    // Main thread IS the external sensor: measure its CPU.
    const TimeMicros cpu_before = thread_cpu_micros();
    const TimeMicros wall_before = monotonic_micros();
    (void)exs.value()->run_for(kDuration + 200'000);
    const TimeMicros exs_cpu = thread_cpu_micros() - cpu_before;
    const TimeMicros wall = monotonic_micros() - wall_before;

    app_thread.join();
    exs.value()->stop();
    manager.value()->stop();
    ism_thread.join();

    const auto stats = exs.value()->core().stats();
    const double cpu_pct = 100.0 * static_cast<double>(exs_cpu) / static_cast<double>(wall);
    const double us_per_event =
        stats.records_forwarded == 0
            ? 0.0
            : static_cast<double>(exs_cpu) / static_cast<double>(stats.records_forwarded);
    bench::row("%10.0f %14.0f %14llu %12.2f %14.3f", rate, workload.achieved_rate_per_sec(),
               static_cast<unsigned long long>(stats.records_forwarded), cpu_pct, us_per_event);
  }
  bench::row("shape check: utilization grows ~linearly with rate and stays small");
  return 0;
}
