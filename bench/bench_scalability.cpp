// E5 — Distributed operation: aggregate throughput vs number of EXS nodes.
//
// Paper: "The CPU demand by the ISM was the bottleneck for achieving high
// event throughput, but the ISM was able to maintain the maximum aggregate
// event throughput almost constant with up to 8 EXS nodes."
//
// Setup: N forked node processes (per the reproduction plan, local
// processes emulate the paper's workstations), each running a saturating
// looping application thread plus its external sensor, all shipping to one
// ISM in the parent. Report aggregate delivered events/s and the ISM
// process CPU share.
#include <sys/wait.h>
#include <unistd.h>

#include <thread>

#include "bench_harness.hpp"
#include "common/time_util.hpp"
#include "sim/workload.hpp"

namespace {

using namespace brisk;  // NOLINT

constexpr TimeMicros kDuration = 1'200'000;
// Offered load per node. The paper ran one workstation per node plus a
// dedicated ISM host; on a single-CPU reproduction an all-out saturating
// producer per node would starve the ISM of cycles the paper's testbed gave
// it for free. A fixed paced rate per node (well below one core, far above
// 1/8 of the ISM's capacity) keeps nodes cheap — like remote machines — so
// the ISM is the genuine bottleneck as N grows.
constexpr double kOfferedPerNode = 200'000.0;

/// Child process body: one complete LIS (application + EXS).
[[noreturn]] void run_node(NodeId node_id, std::uint16_t ism_port) {
  auto node = BriskNode::create(bench::bench_node_config(node_id));
  if (!node) _exit(10);
  auto sensor = node.value()->make_sensor();
  if (!sensor) _exit(11);
  auto exs = node.value()->connect_exs("127.0.0.1", ism_port);
  if (!exs) _exit(12);

  std::thread app([&] {
    sim::WorkloadConfig config;
    config.events_per_sec = kOfferedPerNode;
    config.duration_us = kDuration;
    (void)sim::run_looping_workload(sensor.value(), config);
  });
  (void)exs.value()->run_for(kDuration + 200'000);
  app.join();
  (void)exs.value()->core().flush();
  _exit(0);
}

}  // namespace

int main() {
  bench::heading("E5: aggregate throughput vs number of EXS nodes (forked processes, paced offered load)",
                 "ISM CPU is the bottleneck; aggregate ~constant up to 8 nodes");
  bench::row("%6s %16s %18s %14s %16s", "nodes", "offered(ev/s)", "aggregate(ev/s)", "ism_cpu(%)", "ev/ism_cpu_ms");

  for (int nodes : {1, 2, 4, 8}) {
    auto manager_config = bench::bench_manager_config();
    manager_config.ism.sorter.max_pending = 1u << 22;
    auto manager = BriskManager::create(manager_config);
    if (!manager) {
      std::fprintf(stderr, "manager: %s\n", manager.status().to_string().c_str());
      return 1;
    }

    std::vector<pid_t> children;
    for (int n = 0; n < nodes; ++n) {
      const pid_t pid = ::fork();
      if (pid < 0) return 1;
      if (pid == 0) run_node(static_cast<NodeId>(n + 1), manager.value()->port());
      children.push_back(pid);
    }

    const TimeMicros cpu_before = process_cpu_micros();
    const TimeMicros wall_before = monotonic_micros();
    (void)manager.value()->run_for(kDuration + 600'000);
    const TimeMicros ism_cpu = process_cpu_micros() - cpu_before;
    // Production lasts kDuration; the extra 600 ms only drains the tail, so
    // rate is records over the production window.
    const double wall_s = static_cast<double>(kDuration) / 1e6;
    manager.value()->stop();

    for (pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }

    const auto& stats = manager.value()->ism().stats();
    const double aggregate = static_cast<double>(stats.records_received) / wall_s;
    const double cpu_pct =
        100.0 * static_cast<double>(ism_cpu) / static_cast<double>(monotonic_micros() - wall_before);
    const double per_cpu_ms =
        ism_cpu == 0 ? 0.0
                     : static_cast<double>(stats.records_received) /
                           (static_cast<double>(ism_cpu) / 1e3);
    bench::row("%6d %16.0f %18.0f %14.1f %16.1f", nodes, kOfferedPerNode * nodes, aggregate, cpu_pct, per_cpu_ms);
  }
  bench::row("shape check: aggregate roughly flat as nodes grow; ISM CPU saturates");
  return 0;
}
