// E1 — "Simple metrics": CPU time of an average NOTICE macro.
//
// Paper: "The CPU time taken by an average NOTICE varied from 3.6 to 18.6
// microseconds on three different platforms." The paper's spread comes from
// platform differences; we reproduce the *shape* with implementation
// variants on one platform: the dynamic 6-int NOTICE of the evaluation
// workload, cheaper/narrower records, the mknotice-specialized writer path
// (which must be at least as fast as the dynamic macro), strings, and the
// downstream per-record costs (transcode to XDR wire) for context.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "clock/clock.hpp"
#include "sensors/record_codec.hpp"
#include "sensors/sensor.hpp"
#include "shm/ring_buffer.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_encoder.hpp"

namespace {

using namespace brisk;       // NOLINT
using namespace brisk::sensors;  // NOLINT

/// Fixture: a big ring + a sensor + a drain step so the ring never fills.
struct Rig {
  std::vector<std::uint8_t> memory;
  shm::RingBuffer ring;
  Sensor sensor;

  Rig()
      : memory(shm::RingBuffer::region_size(1u << 22)),
        ring(init_ring(memory)),
        sensor(ring, clk::SystemClock::instance()) {}

  static shm::RingBuffer init_ring(std::vector<std::uint8_t>& memory) {
    auto ring = shm::RingBuffer::init(memory.data(), 1u << 22);
    if (!ring) std::abort();
    return ring.value();
  }

  std::vector<std::uint8_t> scratch;
  void drain_if_needed() {
    if (ring.bytes_used() > (1u << 21)) {
      scratch.clear();
      while (ring.try_pop(scratch)) scratch.clear();
    }
  }
};

void BM_Notice_6xI32(benchmark::State& state) {
  Rig rig;
  std::int32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BRISK_NOTICE(rig.sensor, 1, x_i32(i), x_i32(i + 1), x_i32(i + 2),
                                          x_i32(i + 3), x_i32(i + 4), x_i32(i + 5)));
    ++i;
    rig.drain_if_needed();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Notice_6xI32);

void BM_Notice_1xI32(benchmark::State& state) {
  Rig rig;
  std::int32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BRISK_NOTICE(rig.sensor, 1, x_i32(i++)));
    rig.drain_if_needed();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Notice_1xI32);

void BM_Notice_NoFields(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BRISK_NOTICE(rig.sensor, 1));
    rig.drain_if_needed();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Notice_NoFields);

void BM_Notice_8Mixed(benchmark::State& state) {
  Rig rig;
  std::int32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BRISK_NOTICE(rig.sensor, 1, x_i32(i), x_u64(i), x_f64(0.5), x_ts(),
                                          x_i16(-1), x_u8(2), x_char('x'), x_reason(7)));
    ++i;
    rig.drain_if_needed();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Notice_8Mixed);

void BM_Notice_String16(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BRISK_NOTICE(rig.sensor, 1, x_str("sixteen bytes ok")));
    rig.drain_if_needed();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Notice_String16);

// The mknotice-specialized path: fixed shape, RecordWriter straight into
// the stack buffer, push_encoded (what generated wide macros do).
void BM_Notice_Specialized6xI32(benchmark::State& state) {
  Rig rig;
  std::int32_t i = 0;
  for (auto _ : state) {
    std::array<std::uint8_t, kMaxNativeRecordBytes> buf;
    RecordWriter writer({buf.data(), buf.size()});
    const TimeMicros ts = rig.sensor.clock().now();
    bool ok = writer.begin(1, rig.sensor.next_sequence(), ts) && writer.add_i32(i) &&
              writer.add_i32(i + 1) && writer.add_i32(i + 2) && writer.add_i32(i + 3) &&
              writer.add_i32(i + 4) && writer.add_i32(i + 5);
    auto bytes = writer.finish();
    ok = ok && bytes.is_ok() && rig.sensor.push_encoded(bytes.value());
    benchmark::DoNotOptimize(ok);
    ++i;
    rig.drain_if_needed();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Notice_Specialized6xI32);

// Downstream per-record cost the EXS pays: native → XDR wire transcode of
// the paper's 40-byte record.
void BM_Transcode_6xI32(benchmark::State& state) {
  Record record;
  record.sensor = 1;
  record.timestamp = 1'700'000'000'000'000LL;
  for (int i = 0; i < 6; ++i) record.fields.push_back(Field::i32(i));
  auto native = encode_native(record);
  if (!native) std::abort();

  ByteBuffer out(1u << 20);
  for (auto _ : state) {
    if (out.size() > (1u << 19)) out.clear();
    xdr::Encoder enc(out);
    benchmark::DoNotOptimize(tp::transcode_native_record(native.value().view(), enc, 123));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Transcode_6xI32);

// Raw ring push+pop round trip (the memory path NOTICE rides on).
void BM_RingPushPop40B(benchmark::State& state) {
  std::vector<std::uint8_t> memory(shm::RingBuffer::region_size(1u << 20));
  auto ring = shm::RingBuffer::init(memory.data(), 1u << 20);
  if (!ring) std::abort();
  std::array<std::uint8_t, 40> payload{};
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.value().try_push({payload.data(), payload.size()}));
    out.clear();
    benchmark::DoNotOptimize(ring.value().try_pop(out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingPushPop40B);

}  // namespace

BENCHMARK_MAIN();
