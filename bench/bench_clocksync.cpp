// E6 — Clock synchronization quality over a 10-minute run with 5 s rounds.
//
// Paper: "The clock synchronization algorithm was able to keep EXS clocks
// (8 of them, using 5 s polling period over 10 minutes) within [tens of]
// microseconds under light working conditions, and most of the time under
// 200 microseconds at times when disturbances of various sources in the LAN
// interfered with it."
//
// Setup (simulated; see DESIGN.md substitutions): 8 SimClocks with ±50 ms
// initial offsets and ±100 ppm drift, polled through a latency model that
// is quiet for minutes 0–4, disturbed (20% spike probability) for minutes
// 4–7, and quiet again for minutes 7–10. We report the ground-truth max
// pairwise skew of the ensemble per minute, for both the BRISK modified
// algorithm and the Cristian baseline.
#include <memory>
#include <vector>

#include "bench_harness.hpp"
#include "clock/brisk_sync.hpp"
#include "clock/cristian_sync.hpp"
#include "clock/sim_clock.hpp"
#include "sim/channel.hpp"

namespace {

using namespace brisk;  // NOLINT

struct World {
  clk::ManualClock reference{0};
  sim::LatencyModel model;
  sim::SimSyncTransport transport;
  std::vector<std::unique_ptr<clk::SimClock>> clocks;

  explicit World(std::uint64_t seed)
      : model({.base_us = 150, .jitter_us = 30, .spike_us = 5'000, .seed = seed}),
        transport(reference, reference, model) {
    const TimeMicros offsets[8] = {-50'000, 31'000, -12'000, 44'000, 5'000, -27'000, 18'000, -41'000};
    // Relative oscillator drift of same-model workstations is a few ppm;
    // ±100 ppm would impose a ~1 ms dispersion floor per 5 s round that no
    // algorithm could beat (the paper reports tens of µs).
    const double drifts[8] = {4.0, -4.8, 1.7, -2.5, 0.6, 3.4, -1.1, 5.0};
    for (int i = 0; i < 8; ++i) {
      clocks.push_back(std::make_unique<clk::SimClock>(
          reference, clk::SimClockConfig{.initial_offset_us = offsets[i],
                                         .drift_ppm = drifts[i],
                                         .read_jitter_us = 2,
                                         .seed = seed + static_cast<std::uint64_t>(i)}));
      transport.add_slave(clocks.back().get());
    }
  }
};

struct SyncSeries {
  std::vector<TimeMicros> per_minute_max;  // worst skew sample each minute
  std::vector<TimeMicros> all_samples;     // one per 5 s round
};

/// Runs 10 simulated minutes of 5 s rounds, sampling the ground-truth
/// ensemble dispersion after every round.
template <typename Algorithm>
SyncSeries run_10_minutes(World& world, Algorithm& algorithm) {
  SyncSeries series;
  TimeMicros worst_this_minute = 0;
  for (int round = 1; round <= 120; ++round) {  // 120 × 5 s = 10 min
    const TimeMicros minute = (static_cast<TimeMicros>(round) * 5) / 60;
    world.model.set_spike_probability(minute >= 4 && minute < 7 ? 0.20 : 0.0);
    (void)algorithm.run_round(world.transport);
    world.reference.advance(5'000'000);
    const TimeMicros skew = world.transport.max_pairwise_skew();
    series.all_samples.push_back(skew);
    if (skew > worst_this_minute) worst_this_minute = skew;
    if (round % 12 == 0) {  // minute boundary
      series.per_minute_max.push_back(worst_this_minute);
      worst_this_minute = 0;
    }
  }
  return series;
}

/// Fraction of the disturbed-phase samples (rounds 49..84, minutes 5-7)
/// with dispersion at or under `bound`.
double disturbed_fraction_within(const SyncSeries& series, TimeMicros bound) {
  int within = 0;
  int total = 0;
  for (std::size_t round = 48; round < 84 && round < series.all_samples.size(); ++round) {
    ++total;
    if (series.all_samples[round] <= bound) ++within;
  }
  return total == 0 ? 0.0 : static_cast<double>(within) / total;
}

}  // namespace

int main() {
  bench::heading("E6: clock sync quality, 8 nodes, 5 s rounds, 10 minutes (simulated)",
                 "within tens of us quiet; mostly <200 us under LAN disturbances");

  World brisk_world(101);
  clk::BriskSync brisk_sync(
      {.polls_per_round = 4, .avg_threshold_us = 100, .conservative_fraction = 0.7});
  auto brisk_series = run_10_minutes(brisk_world, brisk_sync);

  World cristian_world(101);
  clk::CristianSync cristian_sync({.polls_per_round = 4});
  auto cristian_series = run_10_minutes(cristian_world, cristian_sync);

  bench::row("%8s %12s %22s %24s", "minute", "phase", "brisk max skew(us)",
             "cristian max skew(us)");
  for (std::size_t minute = 0; minute < brisk_series.per_minute_max.size(); ++minute) {
    const bool disturbed = minute >= 4 && minute < 7;
    bench::row("%8zu %12s %22lld %24lld", minute + 1, disturbed ? "disturbed" : "quiet",
               static_cast<long long>(brisk_series.per_minute_max[minute]),
               static_cast<long long>(cristian_series.per_minute_max[minute]));
  }

  // Summary rows matching the paper's two regimes (skip minute 1: both
  // algorithms are still burning down the ±50 ms initial offsets).
  TimeMicros quiet_worst = 0;
  for (std::size_t minute = 1; minute < brisk_series.per_minute_max.size(); ++minute) {
    const bool disturbed = minute >= 4 && minute < 7;
    if (!disturbed && brisk_series.per_minute_max[minute] > quiet_worst) {
      quiet_worst = brisk_series.per_minute_max[minute];
    }
  }
  bench::row("BRISK quiet-phase worst skew: %lld us (paper: tens of us)",
             static_cast<long long>(quiet_worst));
  bench::row("BRISK disturbed phase: %.0f%% of rounds within 200 us "
             "(paper: 'most of the time under 200 us')",
             100.0 * disturbed_fraction_within(brisk_series, 200));
  bench::row("shape check: quiet regime tens-of-us-scale; disturbed mostly <200 us with");
  bench::row("             rare spike-driven excursions; BRISK never drags the ensemble");
  bench::row("             toward the master clock");
  return 0;
}
