// E8 — Ablations of the design knobs DESIGN.md calls out.
//
// Not a paper table: each row isolates one BRISK design decision and
// measures what it buys.
//   A. Compressed meta header: wire bytes/record vs a naive dynamic
//      encoding (one XDR type word per field) — "minimizing the slack in
//      instrumentation data messages is important".
//   B. Batching: delivered throughput with batch size 1 vs 256 on loopback.
//   C. Conservative correction fraction (0.7) vs full correction below the
//      threshold: convergence speed vs overshoot safety under noise.
//   D. Polls per round (Cristian's probabilistic filtering): sync quality
//      with 1 vs 4 vs 8 samples per slave.
#include <memory>
#include <thread>

#include "bench_harness.hpp"
#include "clock/brisk_sync.hpp"
#include "clock/sim_clock.hpp"
#include "common/time_util.hpp"
#include "sim/channel.hpp"
#include "sim/workload.hpp"
#include "tp/wire.hpp"

namespace {

using namespace brisk;  // NOLINT

/// Wire size of a record under a naive dynamic encoding: i64 timestamp +
/// u32 sensor id + u32 field count + per field (u32 type tag + payload).
std::size_t naive_wire_size(const sensors::Record& record) {
  std::size_t size = 8 + 4 + 4;
  for (const auto& field : record.fields) {
    size += 4;  // type tag word
    if (field.type() == sensors::FieldType::x_string) {
      size += xdr::Encoder::opaque_wire_size(field.as_string().size());
    } else {
      size += sensors::xdr_payload_size(field.type());
    }
  }
  return size;
}

struct SyncWorld {
  clk::ManualClock reference{0};
  sim::LatencyModel model;
  sim::SimSyncTransport transport;
  std::vector<std::unique_ptr<clk::SimClock>> clocks;

  SyncWorld(TimeMicros jitter, std::uint64_t seed, TimeMicros offset_scale = 30'000)
      : model({.base_us = 150, .jitter_us = jitter, .seed = seed}),
        transport(reference, reference, model) {
    const double shape[4] = {-1.0, 0.4, -0.17, 0.83};
    for (int i = 0; i < 4; ++i) {
      clocks.push_back(std::make_unique<clk::SimClock>(
          reference,
          clk::SimClockConfig{
              .initial_offset_us =
                  static_cast<TimeMicros>(shape[i] * static_cast<double>(offset_scale)),
              .drift_ppm = 0.0,
              .seed = seed + static_cast<std::uint64_t>(i)}));
      transport.add_slave(clocks.back().get());
    }
  }

  /// How far the ensemble's mean has crept forward (clocks only advance).
  [[nodiscard]] TimeMicros mean_creep() const {
    TimeMicros total = 0;
    for (const auto& clock : clocks) total += clock->total_adjustment();
    return total / static_cast<TimeMicros>(clocks.size());
  }
};

/// Rounds until the ensemble agrees within `target_us` (cap 50).
int rounds_to_converge(SyncWorld& world, clk::BriskSync& sync, TimeMicros target_us) {
  for (int round = 1; round <= 50; ++round) {
    (void)sync.run_round(world.transport);
    world.reference.advance(1'000'000);
    if (world.transport.max_pairwise_skew() <= target_us) return round;
  }
  return -1;
}

}  // namespace

int main() {
  bench::heading("E8: ablations of BRISK design choices", "(design-knob study, not a paper table)");

  // ---- A: compressed meta header ------------------------------------------------
  {
    bench::row("-- A: compressed meta header vs naive dynamic encoding --");
    bench::row("%10s %18s %16s %12s", "fields", "compressed(B)", "naive(B)", "saved(%)");
    for (int nfields : {1, 4, 6, 8, 12, 16}) {
      sensors::Record record;
      record.sensor = 1;
      for (int i = 0; i < nfields; ++i) record.fields.push_back(sensors::Field::i32(i));
      const std::size_t compressed = tp::record_wire_size(record);
      const std::size_t naive = naive_wire_size(record);
      bench::row("%10d %18zu %16zu %12.1f", nfields, compressed, naive,
                 100.0 * (1.0 - static_cast<double>(compressed) / static_cast<double>(naive)));
    }
    bench::row("shape check: the 6-int record is 40 B compressed (paper) vs 64 B naive");
  }

  // ---- B: batching --------------------------------------------------------------
  {
    bench::row("-- B: batching (batch_max_records 1 vs 256, saturated loopback) --");
    bench::row("%14s %18s %14s", "batch", "delivered(ev/s)", "batches");
    for (std::uint32_t batch : {1u, 256u}) {
      auto manager = BriskManager::create(bench::bench_manager_config());
      if (!manager) return 1;
      auto node_config = bench::bench_node_config(1);
      node_config.exs.batch_max_records = batch;
      auto node = BriskNode::create(node_config);
      if (!node) return 1;
      auto sensor = node.value()->make_sensor();
      if (!sensor) return 1;
      auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
      if (!exs) return 1;

      constexpr TimeMicros kDuration = 800'000;
      std::thread ism_thread([&] { (void)manager.value()->run_for(kDuration + 300'000); });
      std::thread app_thread([&] {
        sim::WorkloadConfig config;
        config.duration_us = kDuration;
        (void)sim::run_looping_workload(sensor.value(), config);
      });
      const TimeMicros wall_before = monotonic_micros();
      (void)exs.value()->run_for(kDuration + 200'000);
      const double wall_s = static_cast<double>(monotonic_micros() - wall_before) / 1e6;
      app_thread.join();
      exs.value()->stop();
      manager.value()->stop();
      ism_thread.join();

      bench::row("%14u %18.0f %14llu", batch,
                 static_cast<double>(manager.value()->ism().stats().records_received) / wall_s,
                 static_cast<unsigned long long>(exs.value()->core().stats().batches_sent));
    }
    bench::row("shape check: per-record frames collapse throughput vs batched transfer");
  }

  // ---- C: conservative fraction --------------------------------------------------
  {
    // Sub-threshold regime: small offsets, a high threshold so the fraction
    // always applies, and a run long enough to expose the cost/benefit:
    // full correction (1.0) closes skew faster per round but chases every
    // noisy estimate, so the forward-only ensemble creeps further ahead.
    bench::row("-- C: correction fraction below threshold (0.7 conservative vs 1.0) --");
    bench::row("%12s %12s %26s %18s %16s", "fraction", "jitter(us)",
               "rounds to <=150us agree", "final skew(us)", "creep(us)");
    for (double fraction : {0.7, 1.0}) {
      for (TimeMicros jitter : {TimeMicros{20}, TimeMicros{300}}) {
        SyncWorld world(jitter, 77, /*offset_scale=*/800);
        clk::BriskSync sync({.polls_per_round = 4,
                             .avg_threshold_us = 1'000'000,
                             .conservative_fraction = fraction});
        const int rounds = rounds_to_converge(world, sync, 150);
        // Keep running 30 more rounds at agreement to measure creep.
        for (int extra = 0; extra < 30; ++extra) {
          (void)sync.run_round(world.transport);
          world.reference.advance(1'000'000);
        }
        bench::row("%12.1f %12lld %26d %18lld %16lld", fraction,
                   static_cast<long long>(jitter), rounds,
                   static_cast<long long>(world.transport.max_pairwise_skew()),
                   static_cast<long long>(world.mean_creep()));
      }
    }
    bench::row("shape check: 1.0 reaches agreement in fewer/equal rounds; 0.7 creeps");
    bench::row("             the (forward-only) ensemble less under noise");
  }

  // ---- D: polls per round ----------------------------------------------------------
  {
    bench::row("-- D: polls per round (min-RTT filtering of noisy samples) --");
    bench::row("%10s %26s %22s", "polls", "rounds to <=500us agree", "final skew(us)");
    for (std::size_t polls : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      SyncWorld world(600, 123);  // heavy jitter to make filtering matter
      clk::BriskSync sync({.polls_per_round = polls, .avg_threshold_us = 100});
      const int rounds = rounds_to_converge(world, sync, 500);
      bench::row("%10zu %26d %22lld", polls, rounds,
                 static_cast<long long>(world.transport.max_pairwise_skew()));
    }
    bench::row("shape check: more polls -> tighter skew estimates under jitter");
  }
  return 0;
}
