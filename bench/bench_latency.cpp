// E4 — Event delivery latency and its select()-timeout floor.
//
// Paper: "the worst-case lower bound was found to depend on waiting select
// system calls, which can delay an event record for up to 40 ms."
//
// Setup: a single event is injected at a random phase relative to the
// EXS/ISM select cycles; latency = NOTICE call → record visible to the
// consumer. Sweeping the select timeout shows the worst case tracking it,
// exactly the paper's mechanism (the 40 ms row uses the paper's timeout).
#include <cstring>
#include <random>
#include <thread>
#include <vector>

#include "bench_harness.hpp"
#include "common/time_util.hpp"

int main(int argc, char** argv) {
  using namespace brisk;  // NOLINT
  // --smoke (ci.sh): one short timeout, few samples, tracing on for every
  // record — proves the annotated path delivers without the minute-long
  // sweep. Pass = every injected event arrives.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    bench::heading("E4 (smoke): single-event delivery, tracing on",
                   "short run; pass = all events delivered");
  } else {
    bench::heading("E4: single-event delivery latency vs select() timeout",
                   "worst case bounded by waiting select calls: up to 40 ms");
  }

  bench::row("%18s %12s %12s %12s", "select_timeout(ms)", "min(ms)", "avg(ms)", "max(ms)");

  const std::vector<TimeMicros> timeouts =
      smoke ? std::vector<TimeMicros>{2'000}
            : std::vector<TimeMicros>{2'000, 10'000, 20'000, 40'000};
  std::mt19937_64 rng(7);
  for (TimeMicros select_timeout : timeouts) {
    auto manager_config = bench::bench_manager_config();
    manager_config.ism.select_timeout_us = select_timeout;
    manager_config.ism.sorter.initial_frame_us = 0;
    manager_config.ism.sorter.min_frame_us = 0;
    manager_config.ism.sorter.adaptive = false;
    auto manager = BriskManager::create(manager_config);
    if (!manager) return 1;
    auto consumer = manager.value()->make_consumer();
    if (!consumer) return 1;

    auto node_config = bench::bench_node_config(1);
    node_config.exs.select_timeout_us = select_timeout;
    node_config.exs.batch_max_age_us = 0;  // latency-critical setting
    if (smoke) node_config.trace_sample_rate = 1.0;  // annotate every record
    auto node = BriskNode::create(node_config);
    if (!node) return 1;
    auto sensor = node.value()->make_sensor();
    if (!sensor) return 1;
    auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
    if (!exs) return 1;

    const int kSamples = smoke ? 8 : 40;
    const TimeMicros run_budget =
        static_cast<TimeMicros>(kSamples + 5) * (select_timeout * 3 + 30'000);
    std::thread ism_thread([&] { (void)manager.value()->run_for(run_budget); });
    std::thread exs_thread([&] { (void)exs.value()->run_for(run_budget); });

    TimeMicros min_latency = 0;
    TimeMicros max_latency = 0;
    double total = 0;
    int collected = 0;
    std::uniform_int_distribution<TimeMicros> phase(0, select_timeout);
    for (int i = 0; i < kSamples; ++i) {
      sleep_micros(phase(rng));  // random phase vs the select cycles
      const TimeMicros sent = monotonic_micros();
      if (!sensor.value().notice(1, sensors::x_i32(i))) continue;
      // Busy-poll the consumer for this one record.
      for (;;) {
        auto polled = consumer.value().poll();
        if (!polled.is_ok()) break;
        if (polled.value().has_value()) break;
        if (monotonic_micros() - sent > select_timeout * 4 + 500'000) break;
        sleep_micros(100);
      }
      const TimeMicros latency = monotonic_micros() - sent;
      if (collected == 0 || latency < min_latency) min_latency = latency;
      if (latency > max_latency) max_latency = latency;
      total += static_cast<double>(latency);
      ++collected;
    }
    exs.value()->stop();
    manager.value()->stop();
    exs_thread.join();
    ism_thread.join();

    bench::row("%18.1f %12.2f %12.2f %12.2f", static_cast<double>(select_timeout) / 1e3,
               static_cast<double>(min_latency) / 1e3,
               collected == 0 ? 0.0 : total / collected / 1e3,
               static_cast<double>(max_latency) / 1e3);
    if (smoke && collected == 0) {
      bench::row("smoke FAILED: no traced event was delivered");
      return 1;
    }
  }
  bench::row(smoke ? "smoke ok: traced events delivered end-to-end"
                   : "shape check: worst-case latency tracks the select timeout");
  return 0;
}
