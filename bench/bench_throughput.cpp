// E3 — Maximum EXS → ISM event throughput and the 40-byte wire record.
//
// Paper: "the maximum throughput achieved between an EXS and ISM was 90,000
// events per second", with six-int records of exactly 40 bytes in the
// XDR-based transfer protocol.
//
// Setup: one node saturates (unpaced looping application), one EXS ships to
// one ISM over loopback TCP. We report the record wire size (must be
// exactly 40) and the delivered event rate for several batching settings —
// batching is the knob the paper's number depends on.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_harness.hpp"
#include "clock/clock.hpp"
#include "common/time_util.hpp"
#include "ism/output.hpp"
#include "consumers/gateway_client.hpp"
#include "net/poller.hpp"
#include "sensors/event_record.hpp"
#include "sensors/metrics_record.hpp"
#include "sim/workload.hpp"
#include "tp/wire.hpp"

namespace {

// Shortened by --smoke (the ci.sh regression gate) so the binary doubles as
// a fast does-it-still-run check without a separate harness.
brisk::TimeMicros g_sweep_duration = 1'000'000;

/// Child process body for the ingest sweep: one saturating LIS.
[[noreturn]] void run_sweep_node(brisk::NodeId node_id, std::uint16_t ism_port) {
  using namespace brisk;  // NOLINT
  auto node_config = bench::bench_node_config(node_id);
  node_config.exs.batch_max_records = 256;
  node_config.exs.batch_max_bytes = 1u << 20;
  auto node = BriskNode::create(node_config);
  if (!node) _exit(10);
  auto sensor = node.value()->make_sensor();
  if (!sensor) _exit(11);
  auto exs = node.value()->connect_exs("127.0.0.1", ism_port);
  if (!exs) _exit(12);
  std::thread app([&] {
    sim::WorkloadConfig config;
    config.events_per_sec = 0.0;  // saturate
    config.duration_us = g_sweep_duration;
    (void)sim::run_looping_workload(sensor.value(), config);
  });
  (void)exs.value()->run_for(g_sweep_duration + 200'000);
  app.join();
  _exit(0);
}

/// Child process body for the metrics-heavy federation cell: a *paced*
/// sender whose interesting traffic is its own 0xFF01 self-instrumentation
/// at a 50 ms interval — the aggregation win is measured on those records,
/// so the data plane must not be the bottleneck.
[[noreturn]] void run_metrics_node(brisk::NodeId node_id, std::uint16_t ism_port) {
  using namespace brisk;  // NOLINT
  auto node_config = bench::bench_node_config(node_id);
  node_config.exs.batch_max_records = 256;
  node_config.exs.batch_max_bytes = 1u << 20;
  node_config.exs.metrics_interval_us = 50'000;
  auto node = BriskNode::create(node_config);
  if (!node) _exit(10);
  auto sensor = node.value()->make_sensor();
  if (!sensor) _exit(11);
  auto exs = node.value()->connect_exs("127.0.0.1", ism_port);
  if (!exs) _exit(12);
  std::thread app([&] {
    sim::WorkloadConfig config;
    config.events_per_sec = 2'000;
    config.duration_us = g_sweep_duration;
    (void)sim::run_looping_workload(sensor.value(), config);
  });
  (void)exs.value()->run_for(g_sweep_duration + 200'000);
  app.join();
  _exit(0);
}

/// Ordering-configuration sweep: saturated senders with the epoll ingest
/// path held fixed, across sorter-shard count x reader-thread count. Rate is
/// the record count through the full ordering pipeline (k-way merge + CRE),
/// drained at the end so every submitted record is counted.
int shard_sweep(int senders) {
  using namespace brisk;  // NOLINT
  bench::row("ordering sweep: %d saturated sender processes, epoll, batch_records=256",
             senders);
  bench::row("%8s %16s %16s %12s %14s %10s", "shards", "reader_threads", "delivered(ev/s)",
             "inversions", "submit_stalls", "run_len");
  struct ShardConfig {
    std::size_t shards;
    std::size_t readers;
  };
  std::vector<ShardConfig> grid;
  if (senders <= 2) {
    grid = {{2, 2}};  // --smoke: one sharded config, just prove the path runs
  } else {
    for (std::size_t readers : {std::size_t{0}, std::size_t{4}}) {
      for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        grid.push_back({shards, readers});
      }
    }
  }
  for (const ShardConfig& cfg : grid) {
    auto manager_config = bench::bench_manager_config();
    manager_config.ism.sorter.max_pending = 1u << 22;
    manager_config.ism.poller = net::PollerBackend::epoll;
    manager_config.ism.reader_threads = cfg.readers;
    manager_config.ism.sorter_shards = cfg.shards;
    manager_config.ism.shard_queue_records = 1u << 14;
    auto manager = BriskManager::create(manager_config);
    if (!manager) return 1;

    std::vector<pid_t> children;
    for (int n = 0; n < senders; ++n) {
      const pid_t pid = ::fork();
      if (pid < 0) return 1;
      if (pid == 0) run_sweep_node(static_cast<NodeId>(n + 1), manager.value()->port());
      children.push_back(pid);
    }

    (void)manager.value()->run_for(g_sweep_duration + 600'000);
    manager.value()->stop();
    for (pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    (void)manager.value()->drain();

    const auto pipeline_stats = manager.value()->ism().pipeline().stats();
    const double rate = static_cast<double>(pipeline_stats.merged) /
                        (static_cast<double>(g_sweep_duration) / 1e6);
    // run_len: average records released per watermark-front scan — the
    // merge-side batching win (1.0 would mean one scan per record).
    const double run_len =
        pipeline_stats.merge_runs == 0
            ? 0.0
            : static_cast<double>(pipeline_stats.merged) /
                  static_cast<double>(pipeline_stats.merge_runs);
    bench::row("%8zu %16zu %16.0f %12llu %14llu %10.1f", cfg.shards, cfg.readers, rate,
               static_cast<unsigned long long>(pipeline_stats.merge_inversions),
               static_cast<unsigned long long>(pipeline_stats.submit_stalls), run_len);
  }
  bench::row("shape check: shards>=2 beats shards=1 once ingest feeds from reader threads");
  return 0;
}

/// Tracing-overhead check: one saturated single-node run per sample rate,
/// all in-process (forked senders would add scheduler noise that swamps a
/// few percent). Reports the delivered-rate delta of 1% sampling.
int trace_overhead(brisk::TimeMicros duration) {
  using namespace brisk;  // NOLINT
  bench::row("trace overhead: saturated single node, batch_records=256");
  bench::row("%18s %16s", "trace_sample_rate", "delivered(ev/s)");
  double rates[2] = {0.0, 0.0};
  const double sample_rates[2] = {0.0, 0.01};
  for (int pass = 0; pass < 2; ++pass) {
    auto manager_config = bench::bench_manager_config();
    manager_config.ism.sorter.max_pending = 1u << 22;
    auto manager = BriskManager::create(manager_config);
    if (!manager) return 1;
    auto node_config = bench::bench_node_config(1);
    node_config.exs.batch_max_records = 256;
    node_config.exs.batch_max_bytes = 1u << 20;
    node_config.trace_sample_rate = sample_rates[pass];
    auto node = BriskNode::create(node_config);
    if (!node) return 1;
    auto sensor = node.value()->make_sensor();
    if (!sensor) return 1;
    auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
    if (!exs) return 1;

    std::thread ism_thread([&] { (void)manager.value()->run_for(duration + 500'000); });
    std::thread app_thread([&] {
      sim::WorkloadConfig config;
      config.events_per_sec = 0.0;  // saturate
      config.duration_us = duration;
      (void)sim::run_looping_workload(sensor.value(), config);
    });
    const TimeMicros wall_before = monotonic_micros();
    (void)exs.value()->run_for(duration + 300'000);
    const double wall_s = static_cast<double>(monotonic_micros() - wall_before) / 1e6;
    app_thread.join();
    exs.value()->stop();
    manager.value()->stop();
    ism_thread.join();

    const auto& ism_stats = manager.value()->ism().stats();
    rates[pass] = static_cast<double>(ism_stats.records_received) / wall_s;
    bench::row("%18.2f %16.0f", sample_rates[pass], rates[pass]);
  }
  if (rates[0] > 0) {
    bench::row("overhead at 1%% sampling: %+.1f%% (acceptance: < 3%%)",
               (rates[0] - rates[1]) / rates[0] * 100.0);
  }
  return 0;
}

/// Credit flow-control sweep: delivered vs offered load with drop counts,
/// credits off vs on, against a throttled ISM (one reader thread feeding a
/// tiny ingest lane, so a full lane pauses the socket and the TCP window
/// pushes back). Credits off: the overdriven EXS blasts into the blocked
/// socket, its write stalls starve ring draining, and records drop at the
/// rings. Credits on: the shrunken window parks batches in the replay
/// buffer instead, draining continues, and nothing is lost.
int flow_sweep(bool smoke) {
  using namespace brisk;  // NOLINT
  const TimeMicros duration = smoke ? 1'000'000 : 2'000'000;
  bench::row("flow-control sweep: 1 paced sender, throttled ISM "
             "(1 reader thread, ingest_queue_frames=4, 40ms cycle)");
  bench::row("%14s %8s %16s %16s %12s %14s %14s %8s", "offered(ev/s)", "window",
             "generated(ev/s)", "delivered(ev/s)", "ring_drops", "replay_evicts",
             "paced_batches", "grants");
  const std::vector<double> offered =
      smoke ? std::vector<double>{240'000} : std::vector<double>{30'000, 120'000, 240'000};
  bool smoke_ok = true;
  for (double rate : offered) {
    for (std::uint32_t window : {0u, 8192u}) {
      auto manager_config = bench::bench_manager_config();
      manager_config.ism.sorter.max_pending = 1u << 22;
      manager_config.ism.select_timeout_us = 40'000;  // the drain-rate throttle
      manager_config.ism.reader_threads = 1;
      manager_config.ism.ingest_queue_frames = 4;
      manager_config.ism.ack_period_us = 20'000;
      manager_config.ism.credit_window_records = window;
      manager_config.ism.credit_replenish_us = 5'000;
      auto manager = BriskManager::create(manager_config);
      if (!manager) return 1;
      auto node_config = bench::bench_node_config(1);
      node_config.ring_capacity = 64 * 1024;  // a short cushion once sends stall
      node_config.exs.batch_max_records = 16;
      node_config.exs.batch_max_bytes = 1u << 20;
      node_config.exs.replay_buffer_batches = 1u << 15;
      auto node = BriskNode::create(node_config);
      if (!node) return 1;
      auto sensor = node.value()->make_sensor();
      if (!sensor) return 1;
      auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
      if (!exs) return 1;

      std::thread ism_thread([&] { (void)manager.value()->run_for(duration + 500'000); });
      sim::WorkloadResult workload{};
      std::thread app_thread([&] {
        sim::WorkloadConfig config;
        config.events_per_sec = rate;
        config.duration_us = duration;
        workload = sim::run_looping_workload(sensor.value(), config);
      });
      const TimeMicros wall_before = monotonic_micros();
      (void)exs.value()->run_for(duration + 300'000);
      const double wall_s = static_cast<double>(monotonic_micros() - wall_before) / 1e6;
      app_thread.join();
      exs.value()->stop();
      manager.value()->stop();
      ism_thread.join();

      const auto& ism_stats = manager.value()->ism().stats();
      const auto exs_stats = exs.value()->core().stats();
      bench::row("%14.0f %8u %16.0f %16.0f %12llu %14llu %14llu %8llu", rate, window,
                 workload.achieved_rate_per_sec(),
                 static_cast<double>(ism_stats.records_received) / wall_s,
                 static_cast<unsigned long long>(exs_stats.ring_drops_seen),
                 static_cast<unsigned long long>(exs_stats.replay_evictions),
                 static_cast<unsigned long long>(exs_stats.paced_batches),
                 static_cast<unsigned long long>(exs_stats.credit_grants_received));
      if (smoke && window > 0 && exs_stats.ring_drops_seen != 0) smoke_ok = false;
    }
  }
  bench::row("shape check: at overload, window>0 rows lose nothing at the rings "
             "(parked batches absorb the excess); window=0 rows drop");
  return smoke_ok ? 0 : 1;
}

/// Consumer fan-out sweep: a saturated single-node transfer with N TCP
/// gateway subscribers attached (mixed filters: full stream, 1-in-16
/// sampled, sensor- and node-scoped, plus an aggregate subscriber per
/// eight), against the 0-subscriber baseline. The number that matters is
/// the ISM's delivered rate: the gateway's lane decouples TCP fan-out from
/// the merge, so attaching subscribers must not tax the pipeline by more
/// than the accept()-side copy. Acceptance: <= 15% delivered-throughput
/// cost at 16 mixed-filter subscribers.
int fanout_sweep(bool smoke) {
  using namespace brisk;  // NOLINT
  const TimeMicros duration = smoke ? 300'000 : 1'000'000;
  bench::row("fan-out sweep: saturated single node, N TCP gateway subscribers "
             "(mixed filters), batch_records=256");
  bench::row("%12s %16s %12s %16s %12s %12s", "subscribers", "delivered(ev/s)",
             "vs_baseline", "fanout(rec)", "sub_drops", "lane_drops");
  double baseline = 0.0;
  bool smoke_ok = true;
  const std::vector<int> cells =
      smoke ? std::vector<int>{0, 16} : std::vector<int>{0, 1, 4, 16};
  for (int subs : cells) {
    auto manager_config = bench::bench_manager_config();
    manager_config.ism.sorter.max_pending = 1u << 22;
    if (subs > 0) {
      manager_config.gateway.tcp_enabled = true;
      manager_config.gateway.consumer_port = 0;
      manager_config.gateway.lane_records = 1u << 15;
      manager_config.gateway.queue_records = 1u << 15;
      manager_config.gateway.max_queue_records = 1u << 16;
    }
    auto manager = BriskManager::create(manager_config);
    if (!manager) return 1;
    auto node_config = bench::bench_node_config(1);
    node_config.exs.batch_max_records = 256;
    node_config.exs.batch_max_bytes = 1u << 20;
    auto node = BriskNode::create(node_config);
    if (!node) return 1;
    auto sensor = node.value()->make_sensor();
    if (!sensor) return 1;
    auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
    if (!exs) return 1;

    // Subscribers attach before the workload starts (the listener is live
    // from manager creation) and poll until the run is over.
    std::atomic<bool> readers_stop{false};
    std::atomic<std::uint64_t> fanout_records{0};
    std::vector<std::thread> readers;
    static const char* kFilters[4] = {"", "sample=16", "sensor=1-8", "node=1"};
    for (int i = 0; i < subs; ++i) {
      readers.emplace_back([&, i] {
        consumers::GatewayClient::Options opt;
        opt.name = "bench-" + std::to_string(i);
        opt.filter = kFilters[i % 4];
        opt.queue_records = 1u << 15;
        const bool agg = (i % 8) == 7;  // one aggregate reader per eight
        if (agg) {
          opt.kind = tp::SubscriptionKind::aggregate;
          opt.agg_window_us = 100'000;
        }
        auto client = consumers::GatewayClient::connect(
            "127.0.0.1", manager.value()->consumer_port(), opt);
        if (!client.is_ok()) return;
        while (!readers_stop.load(std::memory_order_acquire)) {
          bool got = false;
          if (agg) {
            auto polled = client.value().poll_agg();
            if (!polled.is_ok()) break;
            got = polled.value().has_value();
          } else {
            auto polled = client.value().poll();
            if (!polled.is_ok()) break;
            got = polled.value().has_value();
          }
          if (got) {
            fanout_records.fetch_add(1, std::memory_order_relaxed);
          } else {
            sleep_micros(200);
          }
        }
      });
    }

    std::thread ism_thread([&] { (void)manager.value()->run_for(duration + 500'000); });
    std::thread app_thread([&] {
      sim::WorkloadConfig config;
      config.events_per_sec = 0.0;  // saturate
      config.duration_us = duration;
      (void)sim::run_looping_workload(sensor.value(), config);
    });
    const TimeMicros wall_before = monotonic_micros();
    (void)exs.value()->run_for(duration + 300'000);
    const double wall_s = static_cast<double>(monotonic_micros() - wall_before) / 1e6;
    app_thread.join();
    exs.value()->stop();
    manager.value()->stop();
    ism_thread.join();

    std::uint64_t sub_drops = 0;
    std::uint64_t lane_drops = 0;
    if (subs > 0) {
      for (const auto& s : manager.value()->gateway().subscriber_stats()) {
        if (s.tcp) sub_drops += s.dropped;
      }
      lane_drops = manager.value()->gateway().stats().lane_drops;
    }
    readers_stop.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    const auto& ism_stats = manager.value()->ism().stats();
    const double rate = static_cast<double>(ism_stats.records_received) / wall_s;
    if (subs == 0) baseline = rate;
    const double ratio = baseline > 0 ? rate / baseline : 0.0;
    bench::row("%12d %16.0f %11.0f%% %16llu %12llu %12llu", subs, rate, ratio * 100.0,
               static_cast<unsigned long long>(fanout_records.load()),
               static_cast<unsigned long long>(sub_drops),
               static_cast<unsigned long long>(lane_drops));
    if (smoke && subs > 0 && fanout_records.load() == 0) smoke_ok = false;
  }
  bench::row("acceptance: the 16-subscriber row stays >= 85%% of baseline "
             "(lane-decoupled fan-out; the merge never waits on a consumer)");
  return smoke_ok ? 0 : 1;
}

}  // namespace

/// Federation sweep (E9): the same saturated sender processes delivered
/// through a flat ISM vs a 2-level relay tree (2 and 4 relays). Delivered
/// rate is the root pipeline's merged count over the workload duration;
/// end-to-end latency is sampled at the root sink as sink-arrival minus
/// record timestamp (same host, sync off, so the timebases agree — the
/// tree pays one extra batch+hop of latency for its fan-in relief).
int federation_sweep(int senders) {
  using namespace brisk;  // NOLINT
  bench::row("federation sweep: %d saturated sender processes, epoll, "
             "4 root readers / 2 shards; relays: 2 readers / 2 shards",
             senders);
  bench::row("%12s %8s %16s %13s %13s %14s", "topology", "relays", "delivered(ev/s)",
             "e2e_p50(us)", "e2e_p99(us)", "egress_stalls");
  struct Topo {
    const char* name;
    int relays;
  };
  for (const Topo& topo : {Topo{"flat", 0}, Topo{"tree", 2}, Topo{"tree", 4}}) {
    auto root_config = bench::bench_manager_config();
    root_config.ism.sorter.max_pending = 1u << 22;
    root_config.ism.poller = net::PollerBackend::epoll;
    root_config.ism.reader_threads = 4;
    root_config.ism.sorter_shards = 2;
    root_config.ism.shard_queue_records = 1u << 14;
    auto root = BriskManager::create(root_config);
    if (!root) return 1;

    // Sample 1-in-64 deliveries; the mutex is uncontended at that rate.
    std::mutex sample_mutex;
    std::vector<TimeMicros> samples;
    std::atomic<std::uint64_t> seen{0};
    auto sink = std::make_shared<ism::CallbackSink>([&](const sensors::Record& r) {
      if ((seen.fetch_add(1, std::memory_order_relaxed) & 63) != 0) return;
      const TimeMicros delay = clk::SystemClock::instance().now() - r.timestamp;
      std::lock_guard<std::mutex> lock(sample_mutex);
      samples.push_back(delay);
    });
    if (!root.value()->add_sink("bench-e2e", sink).ok()) return 1;
    std::thread root_thread([&] { (void)root.value()->run(); });

    std::vector<std::unique_ptr<BriskManager>> relays;
    std::vector<std::thread> relay_threads;
    for (int r = 0; r < topo.relays; ++r) {
      auto relay_config = bench::bench_manager_config();
      relay_config.ism.sorter.max_pending = 1u << 22;
      relay_config.ism.poller = net::PollerBackend::epoll;
      relay_config.ism.reader_threads = 2;
      relay_config.ism.sorter_shards = 2;
      relay_config.ism.shard_queue_records = 1u << 14;
      relay_config.relay_enabled = true;
      relay_config.relay.parent_port = root.value()->port();
      relay_config.relay.relay_node = static_cast<NodeId>(1000 + r);
      relay_config.relay.batch_max_age_us = 2'000;
      relay_config.relay.idle_watermark_period_us = 20'000;
      auto relay = BriskManager::create(relay_config);
      if (!relay) return 1;
      relays.push_back(std::move(relay).value());
      relay_threads.emplace_back([m = relays.back().get()] { (void)m->run(); });
    }

    std::vector<pid_t> children;
    for (int n = 0; n < senders; ++n) {
      const std::uint16_t port =
          topo.relays == 0
              ? root.value()->port()
              : relays[static_cast<std::size_t>(n) % relays.size()]->port();
      const pid_t pid = ::fork();
      if (pid < 0) return 1;
      if (pid == 0) run_sweep_node(static_cast<NodeId>(n + 1), port);
      children.push_back(pid);
    }
    for (pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }

    std::uint64_t egress_stalls = 0;
    for (std::size_t r = 0; r < relays.size(); ++r) {
      relays[r]->stop();
      relay_threads[r].join();
      (void)relays[r]->drain();  // ships + waits for the root's acks
      egress_stalls += relays[r]->relay()->stats().queue_stalls;
    }
    root.value()->stop();
    root_thread.join();
    (void)root.value()->drain();

    const auto pipeline_stats = root.value()->ism().pipeline().stats();
    const double rate = static_cast<double>(pipeline_stats.merged) /
                        (static_cast<double>(g_sweep_duration) / 1e6);
    std::sort(samples.begin(), samples.end());
    const TimeMicros p50 = samples.empty() ? 0 : samples[samples.size() / 2];
    const TimeMicros p99 = samples.empty() ? 0 : samples[samples.size() * 99 / 100];
    bench::row("%12s %8d %16.0f %13lld %13lld %14llu", topo.name, topo.relays, rate,
               static_cast<long long>(p50), static_cast<long long>(p99),
               static_cast<unsigned long long>(egress_stalls));
  }
  bench::row("shape check: tree delivers the full workload; the extra hop adds "
             "one batch-seal of latency");
  return 0;
}

/// Metrics-heavy federation cell: the same 2-level tree, but the traffic
/// that matters is self-instrumentation — paced senders emitting 0xFF01
/// snapshots every 50 ms behind 2 relays, with --relay-aggregate-metrics
/// off vs on. The root sink counts reserved records by sensor id; with
/// aggregation on, per-node subtree snapshots collapse into one aggregated
/// snapshot per relay per flush period, while 0xFF03 events pass through
/// unmerged in both cells. Acceptance: >= 2x fewer 0xFF01 records at the
/// root with aggregation on.
int metrics_aggregation_sweep(int senders) {
  using namespace brisk;  // NOLINT
  bench::row("metrics-heavy federation: %d paced senders (2k ev/s, metrics every 50ms), "
             "2 relays, flush period 50ms",
             senders);
  bench::row("%12s %16s %12s %12s %14s", "aggregate", "delivered(ev/s)", "ff01@root",
             "ff03@root", "egress_stalls");
  std::uint64_t ff01_counts[2] = {0, 0};
  int pass = 0;
  for (bool aggregate : {false, true}) {
    auto root_config = bench::bench_manager_config();
    root_config.ism.sorter.max_pending = 1u << 22;
    root_config.ism.poller = net::PollerBackend::epoll;
    root_config.ism.reader_threads = 4;
    root_config.ism.sorter_shards = 2;
    root_config.ism.shard_queue_records = 1u << 14;
    auto root = BriskManager::create(root_config);
    if (!root) return 1;

    std::atomic<std::uint64_t> ff01{0};
    std::atomic<std::uint64_t> ff03{0};
    auto sink = std::make_shared<ism::CallbackSink>([&](const sensors::Record& r) {
      if (r.sensor == sensors::kMetricsSensorId) {
        ff01.fetch_add(1, std::memory_order_relaxed);
      } else if (r.sensor == sensors::kEventSensorId) {
        ff03.fetch_add(1, std::memory_order_relaxed);
      }
    });
    if (!root.value()->add_sink("bench-ff01", sink).ok()) return 1;
    std::thread root_thread([&] { (void)root.value()->run(); });

    std::vector<std::unique_ptr<BriskManager>> relays;
    std::vector<std::thread> relay_threads;
    for (int r = 0; r < 2; ++r) {
      auto relay_config = bench::bench_manager_config();
      relay_config.ism.sorter.max_pending = 1u << 22;
      relay_config.ism.poller = net::PollerBackend::epoll;
      relay_config.ism.reader_threads = 2;
      relay_config.ism.sorter_shards = 2;
      relay_config.ism.shard_queue_records = 1u << 14;
      relay_config.relay_enabled = true;
      relay_config.relay.parent_port = root.value()->port();
      relay_config.relay.relay_node = static_cast<NodeId>(1000 + r);
      relay_config.relay.batch_max_age_us = 2'000;
      relay_config.relay.idle_watermark_period_us = 20'000;
      relay_config.relay.aggregate_metrics = aggregate;
      relay_config.relay.metrics_flush_period_us = 50'000;
      auto relay = BriskManager::create(relay_config);
      if (!relay) return 1;
      relays.push_back(std::move(relay).value());
      relay_threads.emplace_back([m = relays.back().get()] { (void)m->run(); });
    }

    std::vector<pid_t> children;
    for (int n = 0; n < senders; ++n) {
      const std::uint16_t port = relays[static_cast<std::size_t>(n) % 2]->port();
      const pid_t pid = ::fork();
      if (pid < 0) return 1;
      if (pid == 0) run_metrics_node(static_cast<NodeId>(n + 1), port);
      children.push_back(pid);
    }
    for (pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }

    std::uint64_t egress_stalls = 0;
    for (std::size_t r = 0; r < relays.size(); ++r) {
      relays[r]->stop();
      relay_threads[r].join();
      (void)relays[r]->drain();  // forces the final aggregated flush upstream
      egress_stalls += relays[r]->relay()->stats().queue_stalls;
    }
    root.value()->stop();
    root_thread.join();
    (void)root.value()->drain();

    const auto pipeline_stats = root.value()->ism().pipeline().stats();
    const double rate = static_cast<double>(pipeline_stats.merged) /
                        (static_cast<double>(g_sweep_duration) / 1e6);
    bench::row("%12s %16.0f %12llu %12llu %14llu", aggregate ? "on" : "off", rate,
               static_cast<unsigned long long>(ff01.load()),
               static_cast<unsigned long long>(ff03.load()),
               static_cast<unsigned long long>(egress_stalls));
    ff01_counts[pass++] = ff01.load();
  }
  const double reduction =
      ff01_counts[1] > 0
          ? static_cast<double>(ff01_counts[0]) / static_cast<double>(ff01_counts[1])
          : 0.0;
  bench::row("0xFF01 reduction at root: %.1fx (acceptance: >= 2x with aggregation on)",
             reduction);
  return reduction >= 2.0 ? 0 : 1;
}

int main(int argc, char** argv) {
  using namespace brisk;  // NOLINT
  // --smoke (ci.sh): skip the minute-long sweeps, run one short sharded
  // config end-to-end to catch ordering-pipeline regressions cheaply.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // --metrics-agg: just the metrics-heavy federation cell (agg off vs on),
  // exits nonzero if the 0xFF01 reduction at the root falls under 2x.
  if (argc > 1 && std::strcmp(argv[1], "--metrics-agg") == 0) {
    g_sweep_duration = 2'000'000;
    bench::heading("E-obs: in-tree metrics aggregation at the relay tier",
                   "16 metrics-heavy senders, 2 relays; pass = >= 2x fewer 0xFF01 at root");
    return metrics_aggregation_sweep(16);
  }
  if (smoke) {
    g_sweep_duration = 200'000;
    bench::heading("E3 (smoke): sharded ordering pipeline end-to-end",
                   "short saturated run, shards=2; pass = nonzero delivery");
    if (int rc = shard_sweep(2); rc != 0) return rc;
    if (int rc = trace_overhead(400'000); rc != 0) return rc;
    if (int rc = flow_sweep(true); rc != 0) return rc;
    return fanout_sweep(true);
  }

  bench::heading("E3: max EXS->ISM throughput (saturated sender, loopback TCP)",
                 "max throughput 90,000 ev/s; 40-byte XDR records");

  // Wire-size check first: the paper's six-int record.
  sensors::Record probe;
  probe.sensor = 1;
  probe.timestamp = 1'700'000'000'000'000LL;
  for (int i = 0; i < 6; ++i) probe.fields.push_back(sensors::Field::i32(i));
  bench::row("six-int record wire size: %zu bytes (paper: 40)", tp::record_wire_size(probe));

  bench::row("%14s %16s %16s %14s", "batch_records", "generated(ev/s)", "delivered(ev/s)",
             "ring_drops");

  for (std::uint32_t batch_records : {1u, 16u, 64u, 256u, 1024u}) {
    auto manager_config = bench::bench_manager_config();
    manager_config.ism.sorter.max_pending = 1u << 22;
    auto manager = BriskManager::create(manager_config);
    if (!manager) return 1;
    auto node_config = bench::bench_node_config(1);
    node_config.exs.batch_max_records = batch_records;
    node_config.exs.batch_max_bytes = 1u << 20;
    auto node = BriskNode::create(node_config);
    if (!node) return 1;
    auto sensor = node.value()->make_sensor();
    if (!sensor) return 1;
    auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
    if (!exs) return 1;

    constexpr TimeMicros kDuration = 1'000'000;
    std::thread ism_thread([&] { (void)manager.value()->run_for(kDuration + 500'000); });
    sim::WorkloadResult workload{};
    std::thread app_thread([&] {
      sim::WorkloadConfig config;
      config.events_per_sec = 0.0;  // saturate
      config.duration_us = kDuration;
      workload = sim::run_looping_workload(sensor.value(), config);
    });
    const TimeMicros wall_before = monotonic_micros();
    (void)exs.value()->run_for(kDuration + 300'000);
    const double wall_s =
        static_cast<double>(monotonic_micros() - wall_before) / 1e6;

    app_thread.join();
    exs.value()->stop();
    manager.value()->stop();
    ism_thread.join();

    const auto& ism_stats = manager.value()->ism().stats();
    const auto exs_stats = exs.value()->core().stats();
    bench::row("%14u %16.0f %16.0f %14llu", batch_records, workload.achieved_rate_per_sec(),
               static_cast<double>(ism_stats.records_received) / wall_s,
               static_cast<unsigned long long>(exs_stats.ring_drops_seen));
  }
  bench::row("shape check: throughput rises steeply with batching, then saturates");

  // Ingest-configuration sweep: the same saturated transfer, now with four
  // sender processes, across poller backend x ISM reader-thread count.
  // Reader threads take socket reads + XDR batch decode off the ordering
  // thread and hand work over in drained-lane batches rather than one
  // readiness dispatch at a time — that pipelining wins even on a single
  // CPU, and on a multi-core ISM host the decode itself parallelizes too.
  bench::row("ingest sweep: 4 saturated sender processes, batch_records=256");
  bench::row("%10s %16s %14s %16s", "poller", "reader_threads", "pump", "delivered(ev/s)");
  struct IngestConfig {
    net::PollerBackend poller;
    std::size_t readers;
    bool readiness_pump = true;
  };
  std::vector<IngestConfig> ingest_configs{
      {net::PollerBackend::select, 0},       {net::PollerBackend::select, 4},
      {net::PollerBackend::epoll, 0},        {net::PollerBackend::epoll, 4},
      {net::PollerBackend::select, 0, false}, {net::PollerBackend::epoll, 0, false}};
  if (net::uring_available()) {
    ingest_configs.push_back({net::PollerBackend::uring, 0});
    ingest_configs.push_back({net::PollerBackend::uring, 4});
    ingest_configs.push_back({net::PollerBackend::uring, 0, false});
  }
  for (IngestConfig cfg : ingest_configs) {
    auto manager_config = bench::bench_manager_config();
    manager_config.ism.sorter.max_pending = 1u << 22;
    manager_config.ism.poller = cfg.poller;
    manager_config.ism.reader_threads = cfg.readers;
    manager_config.ism.readiness_pump = cfg.readiness_pump;
    auto manager = BriskManager::create(manager_config);
    if (!manager) return 1;

    std::vector<pid_t> children;
    for (int n = 0; n < 4; ++n) {
      const pid_t pid = ::fork();
      if (pid < 0) return 1;
      if (pid == 0) run_sweep_node(static_cast<NodeId>(n + 1), manager.value()->port());
      children.push_back(pid);
    }

    (void)manager.value()->run_for(g_sweep_duration + 600'000);
    manager.value()->stop();
    for (pid_t pid : children) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }

    const auto& ism_stats = manager.value()->ism().stats();
    const double rate =
        static_cast<double>(ism_stats.records_received) / (static_cast<double>(g_sweep_duration) / 1e6);
    bench::row("%10s %16zu %14s %16.0f", net::to_string(cfg.poller), cfg.readers,
               cfg.readiness_pump ? "readiness" : "walk", rate);
  }
  bench::row("shape check: threaded epoll >= single-threaded select on multi-core ISM hosts");
  bench::row("shape check: readiness pump >= legacy walk (no per-cycle empty-outbox scan)");

  if (int rc = trace_overhead(1'000'000); rc != 0) return rc;

  if (int rc = flow_sweep(false); rc != 0) return rc;

  if (int rc = fanout_sweep(false); rc != 0) return rc;

  // Sorter-shard sweep: same saturated senders, epoll throughout, varying
  // the ordering-stage parallelism instead of the ingest parallelism.
  if (int rc = shard_sweep(4); rc != 0) return rc;

  // Federation sweep: flat fan-in vs a 2-level relay tree for the same
  // sender population.
  if (int rc = federation_sweep(16); rc != 0) return rc;

  // Metrics-heavy federation cell: relay-tier 0xFF01 aggregation off vs on.
  return metrics_aggregation_sweep(16);
}
