// Shared helpers for the experiment harness binaries (E2–E8): a tiny table
// printer that produces the paper-style rows, and pipeline assembly
// shortcuts used by several experiments.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

#include "core/brisk_manager.hpp"
#include "core/brisk_node.hpp"

namespace brisk::bench {

inline void heading(const char* experiment, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

inline void row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

/// Manager config tuned for loopback experiments: short select timeouts so
/// seconds-long runs drive plenty of cycles.
inline ManagerConfig bench_manager_config() {
  ManagerConfig config;
  config.ism.select_timeout_us = 2'000;
  config.ism.sorter.initial_frame_us = 5'000;
  config.ism.sorter.min_frame_us = 1'000;
  config.ism.enable_sync = false;
  config.output_ring_capacity = 8u << 20;
  return config;
}

inline NodeConfig bench_node_config(NodeId node) {
  NodeConfig config;
  config.node = node;
  config.ring_capacity = 4u << 20;
  config.exs.select_timeout_us = 2'000;
  config.exs.batch_max_age_us = 2'000;
  config.exs.batch_max_records = 512;
  config.exs.batch_max_bytes = 64 * 1024;
  config.exs.drain_burst = 4096;
  return config;
}

}  // namespace brisk::bench
