// Property tests of credit-based flow control on the TP wire.
//
// A seeded schedule drives a real ExsCore (rings → batcher → replay buffer →
// paced sends) against a model ISM that mirrors the server's credit
// arithmetic: cursor-based admission with dedupe, a drained-record counter,
// and grants of `window − (admitted − drained)` piggybacked on its acks.
// EXS→ISM data frames pass through a sim::FaultInjector, so batches drop
// and duplicate mid-stream; the link also hard-disconnects and reconnects.
// For every seed the invariants must hold:
//  * the EXS never has more unacked records in flight than the granted
//    window (modulo the single-oversized-batch progress guarantee),
//  * a zero or shrunken window never deadlocks the stream — once the model
//    drains, replenishing grants always pump the parked batches out,
//  * go-back-N replay after loss or reconnect respects the window in force
//    when it runs, and
//  * the admitted record stream is exactly the produced stream — and
//    byte-identical to a no-credit baseline run of the same schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "clock/clock.hpp"
#include "lis/external_sensor.hpp"
#include "sensors/sensor.hpp"
#include "sim/fault_injector.hpp"
#include "tp/batch.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::lis {
namespace {

struct FlowParam {
  std::uint64_t seed = 1;
  /// Model-ISM record window; 0 = credits off (the baseline shape).
  std::uint32_t window_records = 0;
  std::uint64_t window_bytes = 0;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

std::string param_name(const ::testing::TestParamInfo<FlowParam>& info) {
  const FlowParam& p = info.param;
  std::string name = "seed" + std::to_string(p.seed) + "_w" +
                     std::to_string(p.window_records);
  if (p.window_bytes > 0) name += "_b" + std::to_string(p.window_bytes);
  if (p.drop_probability > 0 || p.duplicate_probability > 0) name += "_faulty";
  return name;
}

/// The ISM side, reduced to what flow control observes: the batch_seq
/// cursor with dedupe/hole handling, per-record admission and drain
/// counting, and ack/grant construction exactly as ism.cpp builds them.
class ModelIsm {
 public:
  ModelIsm(std::uint32_t window_records, std::uint64_t window_bytes)
      : window_records_(window_records), window_bytes_(window_bytes) {}

  /// Feeds one EXS→ISM frame. Returns frames to deliver back to the EXS
  /// (the hello_ack reply; data and heartbeat produce nothing).
  std::vector<ByteBuffer> on_frame(ByteSpan payload) {
    std::vector<ByteBuffer> replies;
    xdr::Decoder dec(payload);
    auto type = tp::peek_type(dec);
    EXPECT_TRUE(type.is_ok());
    if (!type.is_ok()) return replies;
    switch (type.value()) {
      case tp::MsgType::hello: {
        auto hello = tp::decode_hello(dec);
        EXPECT_TRUE(hello.is_ok());
        if (hello.is_ok()) {
          EXPECT_EQ(hello.value().version, tp::kProtocolVersion);
          incarnation_ = hello.value().incarnation;
          replies.push_back(make_ack(tp::MsgType::hello_ack));
        }
        break;
      }
      case tp::MsgType::data_batch: {
        auto batch = tp::decode_batch(dec);
        EXPECT_TRUE(batch.is_ok()) << batch.status().to_string();
        if (batch.is_ok()) admit(batch.value());
        break;
      }
      default:
        break;  // heartbeats and sync frames carry nothing the model tracks
    }
    return replies;
  }

  [[nodiscard]] ByteBuffer make_ack(tp::MsgType type) {
    ByteBuffer out;
    xdr::Encoder enc(out);
    tp::put_type(type, enc);
    std::optional<tp::CreditGrant> credit;
    if (window_records_ > 0) {
      // The server's arithmetic: configured window minus in-pipeline
      // backlog, clamped at zero.
      const std::uint64_t backlog = admitted_ - drained_;
      tp::CreditGrant grant;
      grant.incarnation = incarnation_;
      grant.window_records =
          backlog < window_records_
              ? window_records_ - static_cast<std::uint32_t>(backlog)
              : 0;
      grant.window_bytes = window_bytes_;
      credit = grant;
      last_granted_ = grant.window_records;
    }
    if (type == tp::MsgType::hello_ack) {
      tp::HelloAck ack;
      ack.incarnation = incarnation_;
      ack.next_expected_seq = cursor_;
      ack.credit = credit;
      tp::encode_hello_ack(ack, enc);
    } else {
      tp::BatchAck ack;
      ack.next_expected_seq = cursor_;
      ack.credit = credit;
      tp::encode_batch_ack(ack, enc);
    }
    return out;
  }

  /// The pipeline drains up to `count` admitted records.
  void drain(std::uint64_t count) {
    drained_ = std::min(admitted_, drained_ + count);
  }
  void drain_all() { drained_ = admitted_; }

  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint32_t last_granted() const noexcept { return last_granted_; }
  [[nodiscard]] std::uint64_t duplicates() const noexcept { return duplicates_; }
  /// Payload values of admitted records, in admission order — the stream
  /// the downstream sorter would see from this node.
  [[nodiscard]] const std::vector<std::int32_t>& stream() const noexcept {
    return stream_;
  }

 private:
  void admit(const tp::Batch& batch) {
    const std::uint32_t seq = batch.header.batch_seq;
    if (seq != cursor_) {
      // Below the cursor: a replayed duplicate, dropped. Above: a hole the
      // stuck-ack resend will fill; drop and wait (the model never
      // gap-skips — the test sizes the replay buffer so nothing is ever
      // evicted, and asserts that).
      if (seq < cursor_) ++duplicates_;
      return;
    }
    cursor_ = seq + 1;
    for (const sensors::Record& record : batch.records) {
      ++admitted_;
      ASSERT_FALSE(record.fields.empty());
      stream_.push_back(static_cast<std::int32_t>(record.fields[0].as_signed()));
    }
  }

  std::uint32_t window_records_;
  std::uint64_t window_bytes_;
  std::uint64_t incarnation_ = 0;
  std::uint32_t cursor_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint32_t last_granted_ = 0;
  std::vector<std::int32_t> stream_;
};

struct RunResult {
  std::vector<std::int32_t> produced;
  std::vector<std::int32_t> admitted;
  ExsStats stats;
  std::uint64_t model_duplicates = 0;
  bool drained_clean = false;  // the drain phase emptied the replay buffer
};

class FlowControlProperty : public ::testing::TestWithParam<FlowParam> {
 protected:
  static constexpr std::uint32_t kSteps = 600;

  /// Replays the seeded schedule. `window_records == 0` runs the no-credit
  /// baseline: the model sends plain v2-shaped acks and the EXS never
  /// enters paced mode.
  static RunResult run(const FlowParam& param, std::uint32_t window_records) {
    RunResult result;
    std::vector<std::uint8_t> memory(shm::MultiRing::region_size(2, 256 * 1024));
    auto rings = shm::MultiRing::init(memory.data(), 2, 256 * 1024);
    EXPECT_TRUE(rings.is_ok());
    clk::ManualClock clock(1'000'000);

    ExsConfig config;
    config.node = 7;
    config.incarnation = 42;
    config.batch_max_age_us = 0;  // flush every cycle
    config.batch_max_records = 16;
    // Large enough that the schedule can never evict: evictions are
    // declared loss, and this suite asserts zero loss.
    config.replay_buffer_batches = 4096;

    ModelIsm model(window_records, param.window_bytes);
    sim::FaultPlan plan;
    plan.seed = param.seed * 7919 + 1;
    plan.drop_probability = param.drop_probability;
    plan.duplicate_probability = param.duplicate_probability;
    plan.spare_control_frames = true;
    sim::FaultInjector injector(plan);

    std::vector<ByteBuffer> wire;  // EXS→model frames awaiting delivery
    ExsCore core(config, rings.value(), clock, [&wire](ByteBuffer payload) {
      wire.push_back(std::move(payload));
      return Status::ok();
    });

    bool connected = true;
    std::uint64_t frame_index = 0;
    std::int32_t next_value = 0;

    // Delivering an ack can make the core pump parked batches, which lands
    // more frames on the wire — loop until quiescent.
    auto pump_wire = [&] {
      while (!wire.empty()) {
        std::vector<ByteBuffer> frames = std::move(wire);
        wire.clear();
        for (ByteBuffer& frame : frames) {
          if (!connected) continue;  // lost with the link; replay covers it
          const net::FaultDecision fate =
              injector.decide(frame_index++, frame.view());
          const int copies = fate.action == net::FaultAction::drop        ? 0
                             : fate.action == net::FaultAction::duplicate ? 2
                                                                          : 1;
          for (int i = 0; i < copies; ++i) {
            for (ByteBuffer& reply : model.on_frame(frame.view())) {
              EXPECT_TRUE(core.handle_frame(reply.view()));
            }
          }
        }
      }
    };

    auto check_window = [&] {
      if (!core.pacing()) return;
      // The window invariant: sent-but-unacked records never exceed the
      // granted window. The one exception is the progress guarantee — a
      // batch bigger than the whole window ships alone — which the batch
      // record cap bounds at batch_max_records.
      const std::uint64_t bound = std::max<std::uint64_t>(
          core.stats().credit_window_records, config.batch_max_records);
      EXPECT_LE(core.outstanding_records(), bound);
    };

    auto ring = rings.value().claim_slot();
    EXPECT_TRUE(ring.is_ok());
    sensors::Sensor sensor(ring.value(), clock);

    EXPECT_TRUE(core.send_hello());
    pump_wire();

    std::mt19937_64 rng(param.seed);
    for (std::uint32_t step = 0; step < kSteps; ++step) {
      const double roll = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
      if (roll < 0.45) {
        // Produce and forward a burst.
        const std::uint32_t burst = 1 + static_cast<std::uint32_t>(rng() % 8);
        for (std::uint32_t i = 0; i < burst; ++i) {
          EXPECT_TRUE(sensor.notice(1, sensors::x_i32(next_value)));
          result.produced.push_back(next_value);
          ++next_value;
        }
        EXPECT_TRUE(core.drain_rings().is_ok());
        EXPECT_TRUE(core.flush());
      } else if (roll < 0.65) {
        // The pipeline drains some backlog.
        model.drain(1 + rng() % 32);
      } else if (roll < 0.85) {
        // Periodic ack (with grant when credits are on).
        if (connected) {
          ByteBuffer ack = model.make_ack(tp::MsgType::batch_ack);
          EXPECT_TRUE(core.handle_frame(ack.view()));
        }
      } else if (roll < 0.90) {
        if (connected) {
          connected = false;
          core.on_disconnect();
        }
      } else if (roll < 0.95) {
        if (!connected) {
          connected = true;
          EXPECT_TRUE(core.on_reconnected());
        }
      } else {
        clock.advance(1'000 + rng() % 10'000);
      }
      pump_wire();
      check_window();
    }

    // Drain phase: reconnect if down, then let the model drain fully and
    // ack until everything parked or unacked has pumped out. A broken
    // replenish path (the zero-window deadlock) leaves the replay buffer
    // non-empty and fails the assertions below.
    if (!connected) {
      connected = true;
      EXPECT_TRUE(core.on_reconnected());
      pump_wire();
    }
    EXPECT_TRUE(core.flush());
    pump_wire();
    for (int i = 0; i < 1'000 && !core.replay().empty(); ++i) {
      model.drain_all();
      ByteBuffer ack = model.make_ack(tp::MsgType::batch_ack);
      EXPECT_TRUE(core.handle_frame(ack.view()));
      pump_wire();
      check_window();
      clock.advance(1'000);
    }
    result.drained_clean = core.replay().empty();
    result.admitted = model.stream();
    result.stats = core.stats();
    result.model_duplicates = model.duplicates();
    return result;
  }
};

TEST_P(FlowControlProperty, StreamSurvivesWindowsFaultsAndReconnects) {
  const FlowParam& param = GetParam();
  RunResult result = run(param, param.window_records);
  EXPECT_TRUE(result.drained_clean) << "replay buffer never emptied: a "
                                       "window stayed closed (replenish "
                                       "deadlock) or a resend never came";
  EXPECT_EQ(result.stats.replay_evictions, 0u)
      << "schedule overran the replay buffer; loss assertions are void";
  // No loss, no duplication, no reordering: the admitted stream is exactly
  // the produced stream.
  ASSERT_EQ(result.admitted.size(), result.produced.size());
  EXPECT_EQ(result.admitted, result.produced);
  if (param.window_records > 0) {
    EXPECT_GT(result.stats.credit_grants_received, 0u);
    EXPECT_EQ(result.stats.credit_window_bytes, param.window_bytes);
    if (param.window_records <= 8) {
      // A window this small against 8-record bursts must have parked
      // batches — if it never did, the pacer was not actually in the path.
      EXPECT_GT(result.stats.paced_batches, 0u);
    }
  } else {
    EXPECT_EQ(result.stats.credit_grants_received, 0u);
    EXPECT_EQ(result.stats.paced_batches, 0u);
  }
}

TEST_P(FlowControlProperty, SortedOutputMatchesNoCreditBaseline) {
  const FlowParam& param = GetParam();
  if (param.window_records == 0) GTEST_SKIP() << "is the baseline";
  RunResult with = run(param, param.window_records);
  RunResult without = run(param, 0);
  // Credits pace *when* batches move, never *what* arrives: the admitted
  // stream must be byte-identical to the uncontrolled run of the same
  // schedule.
  EXPECT_TRUE(with.drained_clean);
  EXPECT_TRUE(without.drained_clean);
  EXPECT_EQ(with.admitted, without.admitted);
  EXPECT_EQ(with.produced, without.produced)
      << "schedules diverged; the comparison is meaningless";
}

TEST_P(FlowControlProperty, ReplayAfterReconnectRespectsReopenedWindow) {
  const FlowParam& param = GetParam();
  if (param.window_records == 0) GTEST_SKIP() << "needs credits";
  // A dedicated deterministic scenario on top of the randomized ones:
  // build up unacked batches, drop the link, shrink the window, and watch
  // the go-back-N replay obey the smaller grant.
  std::vector<std::uint8_t> memory(shm::MultiRing::region_size(1, 64 * 1024));
  auto rings = shm::MultiRing::init(memory.data(), 1, 64 * 1024);
  ASSERT_TRUE(rings.is_ok());
  clk::ManualClock clock(1'000'000);
  ExsConfig config;
  config.node = 7;
  config.incarnation = 42;
  config.batch_max_age_us = 0;
  config.batch_max_records = 4;
  config.replay_buffer_batches = 256;
  std::vector<ByteBuffer> wire;
  ExsCore core(config, rings.value(), clock, [&wire](ByteBuffer payload) {
    wire.push_back(std::move(payload));
    return Status::ok();
  });
  auto ring = rings.value().claim_slot();
  ASSERT_TRUE(ring.is_ok());
  sensors::Sensor sensor(ring.value(), clock);

  auto deliver_ack = [&](tp::MsgType type, std::uint32_t cursor,
                         std::uint32_t window) {
    ByteBuffer out;
    xdr::Encoder enc(out);
    tp::put_type(type, enc);
    tp::CreditGrant grant;
    grant.incarnation = config.incarnation;
    grant.window_records = window;
    if (type == tp::MsgType::hello_ack) {
      tp::HelloAck ack;
      ack.incarnation = config.incarnation;
      ack.next_expected_seq = cursor;
      ack.credit = grant;
      tp::encode_hello_ack(ack, enc);
    } else {
      tp::BatchAck ack;
      ack.next_expected_seq = cursor;
      ack.credit = grant;
      tp::encode_batch_ack(ack, enc);
    }
    ASSERT_TRUE(core.handle_frame(out.view()));
  };

  ASSERT_TRUE(core.send_hello());
  wire.clear();
  deliver_ack(tp::MsgType::hello_ack, 0, 64);
  ASSERT_TRUE(core.pacing());

  // Six batches of 4 records, all sent (window 64), none acked.
  for (int batch = 0; batch < 6; ++batch) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(sensor.notice(1, sensors::x_i32(i)));
    ASSERT_TRUE(core.drain_rings().is_ok());
    ASSERT_TRUE(core.flush());
  }
  EXPECT_EQ(core.outstanding_records(), 24u);

  // Link drops; the session reopens with a window of 8 records.
  core.on_disconnect();
  wire.clear();
  ASSERT_TRUE(core.on_reconnected());
  deliver_ack(tp::MsgType::hello_ack, 0, 8);

  // Go-back-N replayed from seq 0, but only as far as the 8-record window
  // allows: two 4-record batches, not all six.
  EXPECT_EQ(core.outstanding_records(), 8u);
  std::size_t replayed_batches = 0;
  for (const ByteBuffer& frame : wire) {
    xdr::Decoder dec(frame.view());
    auto type = tp::peek_type(dec);
    ASSERT_TRUE(type.is_ok());
    if (type.value() == tp::MsgType::data_batch) ++replayed_batches;
  }
  EXPECT_EQ(replayed_batches, 2u);

  // Acking the replayed pair reopens room for the next pair.
  deliver_ack(tp::MsgType::batch_ack, 2, 8);
  EXPECT_EQ(core.outstanding_records(), 8u);
  // And walking the cursor forward drains the rest.
  deliver_ack(tp::MsgType::batch_ack, 4, 8);
  deliver_ack(tp::MsgType::batch_ack, 6, 8);
  EXPECT_TRUE(core.replay().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, FlowControlProperty,
    ::testing::Values(
        // Clean link, assorted windows (0 = baseline shape).
        FlowParam{1, 0, 0, 0.0, 0.0},
        FlowParam{1, 8, 0, 0.0, 0.0},
        FlowParam{2, 32, 0, 0.0, 0.0},
        FlowParam{3, 8, 4'096, 0.0, 0.0},
        // Tiny window under heavy production: lots of zero-window stalls.
        FlowParam{4, 2, 0, 0.0, 0.0},
        // Faulty link: dropped and duplicated data batches.
        FlowParam{5, 8, 0, 0.10, 0.05},
        FlowParam{6, 32, 2'048, 0.10, 0.05},
        FlowParam{7, 2, 0, 0.15, 0.10}),
    param_name);

}  // namespace
}  // namespace brisk::lis
