// PICL trace format tests: line rendering in both timestamp modes, lossless
// round trips for every field type, reader robustness (comments, blanks,
// malformed lines), and writer/reader file round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "picl/picl_reader.hpp"
#include "picl/picl_record.hpp"
#include "picl/picl_writer.hpp"

namespace brisk::picl {
namespace {

using sensors::Field;
using sensors::Record;

std::string temp_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("brisk-picl-" + tag + "-" + std::to_string(::getpid()) + ".picl"))
      .string();
}

Record sample_record() {
  Record record;
  record.node = 3;
  record.sensor = 42;
  record.timestamp = 2'000'500;
  record.fields = {Field::i32(-7), Field::str("hello world"), Field::f64(0.5)};
  return record;
}

// ---- line format -----------------------------------------------------------------

TEST(PiclLineTest, SecondsModeRendering) {
  PiclOptions options{TimestampMode::seconds_from_epoch, 2'000'000};
  const std::string line = to_picl_line(sample_record(), options);
  // rectype=2 event=42 time=0.000500 node=3 nfields=3 ...
  EXPECT_EQ(line.rfind("2 42 0.000500 3 3 ", 0), 0u) << line;
  EXPECT_NE(line.find("X_I32=-7"), std::string::npos);
  EXPECT_NE(line.find("X_STRING=\"hello world\""), std::string::npos);
}

TEST(PiclLineTest, UtcModeRendering) {
  PiclOptions options{TimestampMode::utc_micros, 0};
  const std::string line = to_picl_line(sample_record(), options);
  EXPECT_EQ(line.rfind("2 42 2000500 3 3 ", 0), 0u) << line;
}

TEST(PiclLineTest, RoundTripSecondsMode) {
  PiclOptions options{TimestampMode::seconds_from_epoch, 2'000'000};
  auto decoded = from_picl_line(to_picl_line(sample_record(), options), options);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  Record expected = sample_record();
  expected.sequence = 0;
  EXPECT_EQ(decoded.value(), expected);
}

TEST(PiclLineTest, RoundTripUtcMode) {
  PiclOptions options{TimestampMode::utc_micros, 0};
  auto decoded = from_picl_line(to_picl_line(sample_record(), options), options);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().timestamp, 2'000'500);
}

TEST(PiclLineTest, RoundTripEveryFieldType) {
  Record record;
  record.node = 1;
  record.sensor = 2;
  record.timestamp = 1'000;
  record.fields = {Field::i8(-8),     Field::u8(250),   Field::i16(-300),
                   Field::u16(50'000), Field::i32(-5),   Field::u32(4'000'000'000u),
                   Field::i64(-1LL << 40),               Field::u64(1ULL << 50),
                   Field::f32(1.5f),  Field::f64(-2.25), Field::ch('x'),
                   Field::str("a\"b\\c d"),              Field::ts(99),
                   Field::reason(7),  Field::conseq(8)};
  PiclOptions options{TimestampMode::utc_micros, 0};
  auto decoded = from_picl_line(to_picl_line(record, options), options);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), record);
}

TEST(PiclLineTest, NegativeSecondsTimestamp) {
  Record record = sample_record();
  record.timestamp = 1'999'000;  // 1 ms before the epoch
  PiclOptions options{TimestampMode::seconds_from_epoch, 2'000'000};
  const std::string line = to_picl_line(record, options);
  EXPECT_NE(line.find("-0.001000"), std::string::npos);
  auto decoded = from_picl_line(line, options);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().timestamp, 1'999'000);
}

TEST(PiclLineTest, EmptyFieldsLine) {
  Record record;
  record.sensor = 9;
  record.timestamp = 5;
  PiclOptions options{TimestampMode::utc_micros, 0};
  const std::string line = to_picl_line(record, options);
  EXPECT_EQ(line, "2 9 5 0 0");
  auto decoded = from_picl_line(line, options);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().fields.empty());
}

TEST(PiclLineTest, StringFieldWithSpacesSurvives) {
  Record record;
  record.sensor = 1;
  record.fields = {Field::str("multi word value"), Field::i32(5)};
  PiclOptions options{TimestampMode::utc_micros, 0};
  auto decoded = from_picl_line(to_picl_line(record, options), options);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().fields[0].as_string(), "multi word value");
  EXPECT_EQ(decoded.value().fields[1].as_signed(), 5);
}

TEST(PiclLineTest, MalformedLinesRejected) {
  PiclOptions options{TimestampMode::utc_micros, 0};
  EXPECT_FALSE(from_picl_line("", options).is_ok());
  EXPECT_FALSE(from_picl_line("x 1 2 3 0", options).is_ok()) << "bad rectype";
  EXPECT_FALSE(from_picl_line("2 1 2 3", options).is_ok()) << "missing nfields";
  EXPECT_FALSE(from_picl_line("2 1 2 3 1", options).is_ok()) << "missing field";
  EXPECT_FALSE(from_picl_line("2 1 2 3 1 NOEQUALS", options).is_ok());
  EXPECT_FALSE(from_picl_line("2 1 2 3 1 X_BOGUS=1", options).is_ok());
  EXPECT_FALSE(from_picl_line("2 1 2 3 1 X_I32=zz", options).is_ok());
  EXPECT_FALSE(from_picl_line("2 1 2 3 0 trailing", options).is_ok());
  EXPECT_FALSE(from_picl_line("2 1 2 3 99", options).is_ok()) << "absurd field count";
  EXPECT_FALSE(from_picl_line("2 1 2 3 1 X_STRING=unquoted", options).is_ok());
  EXPECT_FALSE(from_picl_line("2 1 2 3 1 X_U32=-4", options).is_ok()) << "negative unsigned";
}

// ---- writer / reader file round trip ------------------------------------------------

TEST(PiclFileTest, WriteReadBack) {
  const std::string path = temp_path("roundtrip");
  PiclOptions options{TimestampMode::utc_micros, 0};
  {
    auto writer = PiclWriter::open(path, options);
    ASSERT_TRUE(writer.is_ok()) << writer.status().to_string();
    for (int i = 0; i < 25; ++i) {
      Record record = sample_record();
      record.timestamp = 1'000 + i;
      record.sequence = 0;
      ASSERT_TRUE(writer.value().write(record));
    }
    EXPECT_EQ(writer.value().records_written(), 25u);
    ASSERT_TRUE(writer.value().close());
  }
  auto reader = PiclReader::open(path, options);
  ASSERT_TRUE(reader.is_ok());
  auto records = reader.value().read_all();
  ASSERT_TRUE(records.is_ok()) << records.status().to_string();
  ASSERT_EQ(records.value().size(), 25u);
  EXPECT_EQ(records.value()[0].timestamp, 1'000);
  EXPECT_EQ(records.value()[24].timestamp, 1'024);
  std::filesystem::remove(path);
}

TEST(PiclFileTest, ReaderSkipsCommentsAndBlanks) {
  const std::string path = temp_path("comments");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# a comment\n\n2 1 100 0 0\n   \n# another\n2 2 200 1 0\n", f);
    std::fclose(f);
  }
  PiclOptions options{TimestampMode::utc_micros, 0};
  auto reader = PiclReader::open(path, options);
  ASSERT_TRUE(reader.is_ok());
  auto records = reader.value().read_all();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[1].sensor, 2u);
  std::filesystem::remove(path);
}

TEST(PiclFileTest, ReaderReportsMalformedLine) {
  const std::string path = temp_path("bad");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("2 1 100 0 0\ngarbage here\n", f);
    std::fclose(f);
  }
  PiclOptions options{TimestampMode::utc_micros, 0};
  auto reader = PiclReader::open(path, options);
  ASSERT_TRUE(reader.is_ok());
  auto first = reader.value().next();
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(first.value().has_value());
  auto second = reader.value().next();
  EXPECT_FALSE(second.is_ok());
  std::filesystem::remove(path);
}

TEST(PiclFileTest, OpenMissingFileFails) {
  EXPECT_EQ(PiclReader::open("/nonexistent/nope.picl", {}).status().code(), Errc::io_error);
}

TEST(PiclFileTest, WriterClosedRejectsWrites) {
  const std::string path = temp_path("closed");
  auto writer = PiclWriter::open(path, {});
  ASSERT_TRUE(writer.is_ok());
  ASSERT_TRUE(writer.value().close());
  EXPECT_EQ(writer.value().write(sample_record()).code(), Errc::closed);
  EXPECT_EQ(writer.value().close().code(), Errc::closed);
  std::filesystem::remove(path);
}

TEST(PiclFileTest, SecondsModeFileRoundTrip) {
  const std::string path = temp_path("seconds");
  PiclOptions options{TimestampMode::seconds_from_epoch, 1'000'000};
  {
    auto writer = PiclWriter::open(path, options);
    ASSERT_TRUE(writer.is_ok());
    Record record = sample_record();
    record.timestamp = 1'500'000;  // 0.5 s after epoch
    record.sequence = 0;
    ASSERT_TRUE(writer.value().write(record));
    ASSERT_TRUE(writer.value().close());
  }
  auto reader = PiclReader::open(path, options);
  ASSERT_TRUE(reader.is_ok());
  auto records = reader.value().read_all();
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 1u);
  EXPECT_EQ(records.value()[0].timestamp, 1'500'000);
  std::filesystem::remove(path);
}

// A writer dying (or still buffering) mid-line leaves an unterminated tail.
// The reader must hand back every complete record, report a clean
// end-of-stream with partial_tail() set — not an error — and rewind so a
// follow-style consumer picks the record up once the line completes.
TEST(PiclFileTest, TruncatedTrailingLineIsCleanPartialTail) {
  const std::string path = temp_path("truncated");
  PiclOptions options{TimestampMode::utc_micros, 0};
  Record first = sample_record();
  Record second = sample_record();
  second.timestamp += 10;
  const std::string line1 = to_picl_line(first, options);
  const std::string line2 = to_picl_line(second, options);
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "%s\n", line1.c_str());
    // Half of the second record, no newline: the crash point.
    std::fwrite(line2.data(), 1, line2.size() / 2, f);
    std::fclose(f);
  }

  auto reader = PiclReader::open(path, options);
  ASSERT_TRUE(reader.is_ok());
  auto all = reader.value().read_all();
  ASSERT_TRUE(all.is_ok()) << "partial tail must not read as an error: "
                           << all.status().to_string();
  ASSERT_EQ(all.value().size(), 1u);
  EXPECT_EQ(all.value()[0].timestamp, first.timestamp);
  EXPECT_TRUE(reader.value().partial_tail());

  // The writer finishes the line: the same reader (rewound) parses it.
  {
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fwrite(line2.data() + line2.size() / 2, 1, line2.size() - line2.size() / 2, f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  auto next = reader.value().next();
  ASSERT_TRUE(next.is_ok()) << next.status().to_string();
  ASSERT_TRUE(next.value().has_value()) << "completed tail line now parses";
  EXPECT_EQ(next.value()->timestamp, second.timestamp);
  EXPECT_FALSE(reader.value().partial_tail());
  std::filesystem::remove(path);
}

// ---- parameterized: timestamp precision across magnitudes ----------------------------

class PiclTimestampSweep : public ::testing::TestWithParam<TimeMicros> {};

TEST_P(PiclTimestampSweep, SecondsModePreservesMicrosecond) {
  PiclOptions options{TimestampMode::seconds_from_epoch, 1'700'000'000'000'000LL};
  Record record;
  record.sensor = 1;
  record.timestamp = options.epoch_us + GetParam();
  auto decoded = from_picl_line(to_picl_line(record, options), options);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().timestamp, record.timestamp)
      << "timestamps near the epoch must round-trip exactly at %.6f precision";
}

INSTANTIATE_TEST_SUITE_P(Offsets, PiclTimestampSweep,
                         ::testing::Values(0, 1, 999'999, 1'000'000, 59'123'456, 3'600'000'000LL));

}  // namespace
}  // namespace brisk::picl
