// Tests for the hybrid-monitoring emulation (CounterSet + Profiler), the
// perturbation-analysis accounting, and the flag parser used by the BRISK
// executables.
#include <gtest/gtest.h>

#include <thread>

#include "apps/flag_parser.hpp"
#include "clock/clock.hpp"
#include "consumers/perturbation.hpp"
#include "sensors/profiler.hpp"
#include "sensors/record_codec.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk {
namespace {

using sensors::CounterSet;
using sensors::Profiler;
using sensors::ProfilerConfig;
using sensors::Record;
using sensors::SampleMode;

// ---- CounterSet -------------------------------------------------------------------

TEST(CounterSetTest, RegisterAndBump) {
  CounterSet counters;
  auto a = counters.register_counter("sends");
  auto b = counters.register_counter("recvs");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  counters.add(a.value());
  counters.add(a.value(), 5);
  EXPECT_EQ(counters.value(a.value()), 6u);
  EXPECT_EQ(counters.value(b.value()), 0u);
  EXPECT_EQ(counters.name(b.value()), "recvs");
}

TEST(CounterSetTest, RejectsDuplicateAndOverflow) {
  CounterSet counters;
  ASSERT_TRUE(counters.register_counter("x").is_ok());
  EXPECT_EQ(counters.register_counter("x").status().code(), Errc::already_exists);
  for (std::size_t i = 1; i < CounterSet::kMaxCounters; ++i) {
    ASSERT_TRUE(counters.register_counter("c" + std::to_string(i)).is_ok());
  }
  EXPECT_EQ(counters.register_counter("one-too-many").status().code(), Errc::buffer_full);
}

TEST(CounterSetTest, ConcurrentBumpsAreExact) {
  CounterSet counters;
  auto index = counters.register_counter("hits");
  ASSERT_TRUE(index.is_ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counters.add(index.value());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counters.value(index.value()),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---- Profiler ----------------------------------------------------------------------

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(shm::RingBuffer::region_size(256 * 1024));
    auto ring = shm::RingBuffer::init(memory_.data(), 256 * 1024);
    ASSERT_TRUE(ring.is_ok());
    ring_ = ring.value();
    sensor_ = std::make_unique<sensors::Sensor>(ring_, clock_);
  }

  Record pop_record() {
    std::vector<std::uint8_t> bytes;
    EXPECT_TRUE(ring_.try_pop(bytes));
    auto record = sensors::decode_native(ByteSpan{bytes.data(), bytes.size()});
    EXPECT_TRUE(record.is_ok());
    return std::move(record).value();
  }

  std::vector<std::uint8_t> memory_;
  shm::RingBuffer ring_;
  clk::ManualClock clock_{1'000'000};
  std::unique_ptr<sensors::Sensor> sensor_;
};

TEST_F(ProfilerTest, SampleRecordsCarryTsAndCounters) {
  CounterSet counters;
  auto a = counters.register_counter("a");
  auto b = counters.register_counter("b");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  counters.add(a.value(), 3);
  counters.add(b.value(), 7);

  Profiler profiler({.sensor = 99, .period_us = 1'000}, *sensor_, counters, clock_);
  ASSERT_TRUE(profiler.sample_now());
  const Record record = pop_record();
  EXPECT_EQ(record.sensor, 99u);
  auto values = sensors::decode_profile_sample(record);
  ASSERT_TRUE(values.is_ok()) << values.status().to_string();
  EXPECT_EQ(values.value(), (std::vector<std::uint64_t>{3, 7}));
}

TEST_F(ProfilerTest, DeltasModeReportsChanges) {
  CounterSet counters;
  auto a = counters.register_counter("a");
  ASSERT_TRUE(a.is_ok());
  Profiler profiler({.sensor = 1, .period_us = 1'000, .mode = SampleMode::deltas},
                    *sensor_, counters, clock_);
  counters.add(a.value(), 10);
  ASSERT_TRUE(profiler.sample_now());
  counters.add(a.value(), 4);
  ASSERT_TRUE(profiler.sample_now());
  EXPECT_EQ(sensors::decode_profile_sample(pop_record()).value()[0], 10u);
  EXPECT_EQ(sensors::decode_profile_sample(pop_record()).value()[0], 4u);
}

TEST_F(ProfilerTest, AbsoluteModeReportsTotals) {
  CounterSet counters;
  auto a = counters.register_counter("a");
  ASSERT_TRUE(a.is_ok());
  Profiler profiler({.sensor = 1, .period_us = 1'000, .mode = SampleMode::absolute},
                    *sensor_, counters, clock_);
  counters.add(a.value(), 10);
  ASSERT_TRUE(profiler.sample_now());
  counters.add(a.value(), 4);
  ASSERT_TRUE(profiler.sample_now());
  EXPECT_EQ(sensors::decode_profile_sample(pop_record()).value()[0], 10u);
  EXPECT_EQ(sensors::decode_profile_sample(pop_record()).value()[0], 14u);
}

TEST_F(ProfilerTest, MaybeSampleHonorsPeriod) {
  CounterSet counters;
  ASSERT_TRUE(counters.register_counter("a").is_ok());
  Profiler profiler({.sensor = 1, .period_us = 10'000}, *sensor_, counters, clock_);
  EXPECT_FALSE(profiler.maybe_sample());
  clock_.advance(9'999);
  EXPECT_FALSE(profiler.maybe_sample());
  clock_.advance(1);
  EXPECT_TRUE(profiler.maybe_sample());
  EXPECT_FALSE(profiler.maybe_sample()) << "next period starts fresh";
  EXPECT_EQ(profiler.samples_emitted(), 1u);
}

TEST_F(ProfilerTest, DecodeRejectsNonSampleRecords) {
  Record not_a_sample;
  not_a_sample.fields = {sensors::Field::i32(1)};
  EXPECT_EQ(sensors::decode_profile_sample(not_a_sample).status().code(),
            Errc::type_mismatch);
  Record wrong_fields;
  wrong_fields.fields = {sensors::Field::ts(1), sensors::Field::i32(2)};
  EXPECT_EQ(sensors::decode_profile_sample(wrong_fields).status().code(),
            Errc::type_mismatch);
}

// ---- perturbation analysis -----------------------------------------------------------

TEST(PerturbationTest, CalibrationProducesPlausibleCosts) {
  auto calibration = consumers::calibrate_notice_cost(20'000);
  EXPECT_GT(calibration.per_notice_us, 0.0);
  EXPECT_LT(calibration.per_notice_us, 50.0) << "a NOTICE cannot cost 50us on this hardware";
  EXPECT_GT(calibration.per_dropped_us, 0.0);
  EXPECT_EQ(calibration.calibration_iterations, 20'000u);
}

TEST(PerturbationTest, EstimateCombinesCountersAndCosts) {
  sensors::SensorStats stats;
  stats.notices = 1'000;
  stats.records_pushed = 900;
  stats.records_dropped = 100;
  consumers::NoticeCalibration calibration;
  calibration.per_notice_us = 2.0;
  calibration.per_dropped_us = 1.0;
  auto report = consumers::estimate_perturbation(stats, calibration);
  EXPECT_DOUBLE_EQ(report.estimated_overhead_us, 900 * 2.0 + 100 * 1.0);
  EXPECT_DOUBLE_EQ(report.overhead_fraction(19'000), 0.1);
  EXPECT_EQ(report.overhead_fraction(0), 0.0);
  EXPECT_NE(report.to_string().find("notices=1000"), std::string::npos);
}

// ---- flag parser ------------------------------------------------------------------------

apps::FlagParser make_parser(std::vector<std::string> args) {
  static std::vector<std::string> storage;  // keeps c_str()s alive per call
  storage = std::move(args);
  static std::vector<char*> argv;
  argv.clear();
  static std::string program = "test";
  argv.push_back(program.data());
  for (auto& arg : storage) argv.push_back(arg.data());
  return apps::FlagParser(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, KeyEqualsValue) {
  auto parser = make_parser({"--port=7411", "--host=10.0.0.1"});
  EXPECT_EQ(parser.get_int("port", 0), 7411);
  EXPECT_EQ(parser.get_string("host", ""), "10.0.0.1");
}

TEST(FlagParserTest, KeySpaceValue) {
  auto parser = make_parser({"--port", "7411"});
  EXPECT_EQ(parser.get_int("port", 0), 7411);
}

TEST(FlagParserTest, BareBooleanFlag) {
  auto parser = make_parser({"--verbose", "--rate", "2.5"});
  EXPECT_TRUE(parser.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(parser.get_double("rate", 0.0), 2.5);
}

TEST(FlagParserTest, DefaultsWhenAbsent) {
  auto parser = make_parser({});
  EXPECT_EQ(parser.get_int("port", 42), 42);
  EXPECT_EQ(parser.get_string("name", "fallback"), "fallback");
  EXPECT_FALSE(parser.get_bool("verbose", false));
}

}  // namespace
}  // namespace brisk
