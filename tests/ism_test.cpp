// ISM pipeline tests: per-EXS queues, the timestamp merge heap, the
// adaptive on-line sorter (delay window, T raise on out-of-order, exponential
// decay, overflow policies), the CRE matcher (hold, tachyon repair, timeout,
// extra sync rounds), flow control, and the output sinks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "clock/clock.hpp"
#include "ism/cre_matcher.hpp"
#include "ism/drop_policy.hpp"
#include "ism/ingest.hpp"
#include "ism/merge_heap.hpp"
#include "ism/online_sorter.hpp"
#include "ism/output.hpp"
#include "ism/pipeline.hpp"

namespace brisk::ism {
namespace {

using sensors::Field;
using sensors::Record;

Record make_record(NodeId node, TimeMicros ts, SensorId sensor = 1) {
  Record record;
  record.node = node;
  record.sensor = sensor;
  record.timestamp = ts;
  record.fields = {Field::i32(static_cast<std::int32_t>(ts))};
  return record;
}

Record reason_record(NodeId node, TimeMicros ts, CausalId id) {
  Record record = make_record(node, ts, 2);
  record.fields = {Field::reason(id)};
  return record;
}

Record conseq_record(NodeId node, TimeMicros ts, CausalId id) {
  Record record = make_record(node, ts, 3);
  record.fields = {Field::conseq(id)};
  return record;
}

// ---- EventQueue -------------------------------------------------------------------

TEST(EventQueueTest, FifoAndCounters) {
  EventQueue queue(4);
  queue.push(make_record(4, 100), 1'000);
  queue.push(make_record(4, 50), 1'001);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.front().record.timestamp, 100) << "arrival order, not ts order";
  EXPECT_EQ(queue.pop().arrived_at, 1'000);
  EXPECT_EQ(queue.pop().record.timestamp, 50);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.total_received(), 2u);
}

TEST(EventQueueTest, BatchSeqContinuity) {
  EventQueue queue(1);
  EXPECT_TRUE(queue.accept_batch_seq(0));
  EXPECT_TRUE(queue.accept_batch_seq(1));
  EXPECT_FALSE(queue.accept_batch_seq(5)) << "gap detected";
  EXPECT_TRUE(queue.accept_batch_seq(6)) << "resynchronizes after a gap";
}

// ---- MergeHeap --------------------------------------------------------------------

class MergeHeapTest : public ::testing::Test {
 protected:
  EventQueue* add_queue(NodeId node) {
    queues_.push_back(std::make_unique<EventQueue>(node));
    EXPECT_TRUE(heap_.add_queue(queues_.back().get()));
    return queues_.back().get();
  }
  std::vector<std::unique_ptr<EventQueue>> queues_;
  MergeHeap heap_;
};

TEST_F(MergeHeapTest, MergesSortedStreams) {
  EventQueue* q0 = add_queue(0);
  EventQueue* q1 = add_queue(1);
  EventQueue* q2 = add_queue(2);
  for (TimeMicros ts : {10, 40, 70}) q0->push(make_record(0, ts), 0);
  for (TimeMicros ts : {20, 50, 80}) q1->push(make_record(1, ts), 0);
  for (TimeMicros ts : {30, 60, 90}) q2->push(make_record(2, ts), 0);
  heap_.notify_pushed(0);
  heap_.notify_pushed(1);
  heap_.notify_pushed(2);

  std::vector<TimeMicros> merged;
  while (heap_.has_min()) {
    auto popped = heap_.pop_min();
    ASSERT_TRUE(popped.is_ok());
    merged.push_back(popped.value().record.timestamp);
  }
  EXPECT_EQ(merged, (std::vector<TimeMicros>{10, 20, 30, 40, 50, 60, 70, 80, 90}));
}

TEST_F(MergeHeapTest, MinTimestampTracksHeads) {
  EventQueue* q0 = add_queue(0);
  EventQueue* q1 = add_queue(1);
  q0->push(make_record(0, 500), 0);
  heap_.notify_pushed(0);
  EXPECT_EQ(heap_.min_timestamp(), 500);
  q1->push(make_record(1, 100), 0);
  heap_.notify_pushed(1);
  EXPECT_EQ(heap_.min_timestamp(), 100);
}

TEST_F(MergeHeapTest, DuplicateQueueRejected) {
  add_queue(7);
  EventQueue other(7);
  EXPECT_EQ(heap_.add_queue(&other).code(), Errc::already_exists);
}

TEST_F(MergeHeapTest, RemoveQueueDropsItsEntry) {
  EventQueue* q0 = add_queue(0);
  EventQueue* q1 = add_queue(1);
  q0->push(make_record(0, 10), 0);
  q1->push(make_record(1, 20), 0);
  heap_.notify_pushed(0);
  heap_.notify_pushed(1);
  ASSERT_TRUE(heap_.remove_queue(0));
  EXPECT_EQ(heap_.min_timestamp(), 20);
  EXPECT_EQ(heap_.queue_count(), 1u);
}

TEST_F(MergeHeapTest, PopOnEmptyFails) {
  EXPECT_FALSE(heap_.pop_min().is_ok());
  EXPECT_FALSE(heap_.has_min());
}

TEST_F(MergeHeapTest, NotifyPushedIdempotent) {
  EventQueue* q0 = add_queue(0);
  q0->push(make_record(0, 10), 0);
  heap_.notify_pushed(0);
  heap_.notify_pushed(0);
  heap_.notify_pushed(0);
  auto first = heap_.pop_min();
  ASSERT_TRUE(first.is_ok());
  EXPECT_FALSE(heap_.has_min()) << "only one heap entry per queue";
}

TEST_F(MergeHeapTest, EqualTimestampsTieBreakByNode) {
  EventQueue* q0 = add_queue(2);
  EventQueue* q1 = add_queue(1);
  q0->push(make_record(2, 100), 0);
  q1->push(make_record(1, 100), 0);
  heap_.notify_pushed(2);
  heap_.notify_pushed(1);
  auto first = heap_.pop_min();
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value().record.node, 1u) << "deterministic tie break by node id";
}

TEST_F(MergeHeapTest, PendingCountsAllQueues) {
  EventQueue* q0 = add_queue(0);
  EventQueue* q1 = add_queue(1);
  for (int i = 0; i < 3; ++i) q0->push(make_record(0, i), 0);
  q1->push(make_record(1, 9), 0);
  EXPECT_EQ(heap_.pending(), 4u);
}

// ---- OnlineSorter ------------------------------------------------------------------

class SorterTest : public ::testing::Test {
 protected:
  OnlineSorter make_sorter(SorterConfig config) {
    return OnlineSorter(config, clock_, [this](const Record& record) {
      emitted_.push_back(record);
    });
  }
  clk::ManualClock clock_{0};
  std::vector<Record> emitted_;
};

TEST_F(SorterTest, DelaysRecordsForTimeFrame) {
  auto sorter = make_sorter({.initial_frame_us = 1'000, .adaptive = false});
  clock_.set(10'000);
  ASSERT_TRUE(sorter.push(make_record(0, 10'000)));
  sorter.service();
  EXPECT_TRUE(emitted_.empty()) << "within the delay window";
  clock_.set(10'999);
  sorter.service();
  EXPECT_TRUE(emitted_.empty());
  clock_.set(11'000);
  sorter.service();
  ASSERT_EQ(emitted_.size(), 1u) << "released at ts + T";
}

TEST_F(SorterTest, ReordersWithinWindow) {
  auto sorter = make_sorter({.initial_frame_us = 10'000, .adaptive = false});
  clock_.set(100'000);
  // Node 1's record is older but arrives later.
  ASSERT_TRUE(sorter.push(make_record(0, 100'000)));
  ASSERT_TRUE(sorter.push(make_record(1, 99'000)));
  clock_.set(120'000);
  sorter.service();
  ASSERT_EQ(emitted_.size(), 2u);
  EXPECT_EQ(emitted_[0].timestamp, 99'000);
  EXPECT_EQ(emitted_[1].timestamp, 100'000);
  EXPECT_EQ(sorter.stats().out_of_order_emissions, 0u);
}

TEST_F(SorterTest, DetectsOutOfOrderEmissionAndRaisesFrame) {
  auto sorter = make_sorter(
      {.initial_frame_us = 100, .min_frame_us = 100, .max_frame_us = 1'000'000});
  clock_.set(1'000);
  ASSERT_TRUE(sorter.push(make_record(0, 1'000)));
  clock_.set(2'000);
  sorter.service();  // emits ts=1000
  ASSERT_EQ(emitted_.size(), 1u);
  // A record 700 µs older than the last emission arrives late.
  ASSERT_TRUE(sorter.push(make_record(1, 300)));
  clock_.set(3'000);
  sorter.service();
  ASSERT_EQ(emitted_.size(), 2u);
  EXPECT_EQ(sorter.stats().out_of_order_emissions, 1u);
  EXPECT_EQ(sorter.stats().max_lateness_us, 700);
  EXPECT_GE(sorter.current_frame(), 690) << "T raised to ~the observed lateness";
  EXPECT_EQ(sorter.stats().frame_raises, 1u);
}

TEST_F(SorterTest, NonAdaptiveKeepsFrameFixed) {
  auto sorter = make_sorter({.initial_frame_us = 100, .adaptive = false});
  clock_.set(1'000);
  ASSERT_TRUE(sorter.push(make_record(0, 1'000)));
  clock_.set(2'000);
  sorter.service();
  ASSERT_TRUE(sorter.push(make_record(1, 300)));
  clock_.set(3'000);
  sorter.service();
  EXPECT_EQ(sorter.stats().out_of_order_emissions, 1u);
  EXPECT_EQ(sorter.current_frame(), 100) << "fixed T never moves";
  EXPECT_EQ(sorter.stats().frame_raises, 0u);
}

TEST_F(SorterTest, FrameDecaysExponentially) {
  auto sorter = make_sorter({.initial_frame_us = 100'000,
                             .min_frame_us = 1'000,
                             .decay_half_life_s = 1.0});
  // One half-life after construction (t=0): (100000-1000)/2 + 1000 = 50500.
  clock_.set(1'000'000);
  sorter.service();
  EXPECT_NEAR(static_cast<double>(sorter.current_frame()), 50'500.0, 500.0);
  // A second half-life: (100000-1000)/4 + 1000 = 25750.
  clock_.set(2'000'000);
  sorter.service();
  EXPECT_NEAR(static_cast<double>(sorter.current_frame()), 25'750.0, 500.0);
  // Many half-lives: converges to the floor.
  clock_.set(60'000'000);
  sorter.service();
  EXPECT_NEAR(static_cast<double>(sorter.current_frame()), 1'000.0, 50.0);
}

TEST_F(SorterTest, FrameRaiseCappedAtMax) {
  auto sorter = make_sorter(
      {.initial_frame_us = 100, .min_frame_us = 100, .max_frame_us = 5'000});
  clock_.set(1'000'000);
  ASSERT_TRUE(sorter.push(make_record(0, 1'000'000)));
  clock_.set(1'100'000);
  sorter.service();
  ASSERT_TRUE(sorter.push(make_record(1, 10)));  // enormous lateness
  clock_.set(2'000'000);
  sorter.service();
  EXPECT_LE(sorter.current_frame(), 5'000);
}

TEST_F(SorterTest, PerNodeFifoPreservedEvenWhenLate) {
  auto sorter = make_sorter({.initial_frame_us = 1'000});
  clock_.set(10'000);
  ASSERT_TRUE(sorter.push(make_record(0, 10'000)));
  ASSERT_TRUE(sorter.push(make_record(0, 9'000)));  // same node, older ts later
  clock_.set(50'000);
  sorter.service();
  ASSERT_EQ(emitted_.size(), 2u);
  EXPECT_EQ(emitted_[0].timestamp, 10'000) << "queue order within a node wins";
  EXPECT_EQ(emitted_[1].timestamp, 9'000);
}

TEST_F(SorterTest, OverflowEmitEarly) {
  auto sorter = make_sorter({.initial_frame_us = 1'000'000,
                             .max_pending = 10,
                             .overflow = OverflowPolicy::emit_early});
  clock_.set(0);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(sorter.push(make_record(0, i)));
  }
  EXPECT_LE(sorter.pending(), 10u);
  EXPECT_EQ(sorter.stats().overflow_emits, 5u);
  EXPECT_EQ(emitted_.size(), 5u) << "released despite the delay window";
}

TEST_F(SorterTest, OverflowDropNewest) {
  auto sorter = make_sorter({.initial_frame_us = 1'000'000,
                             .max_pending = 10,
                             .overflow = OverflowPolicy::drop_newest});
  clock_.set(0);
  for (int i = 0; i < 15; ++i) ASSERT_TRUE(sorter.push(make_record(0, i)));
  EXPECT_EQ(sorter.pending(), 10u);
  EXPECT_EQ(sorter.stats().overflow_drops, 5u);
  EXPECT_TRUE(emitted_.empty());
}

TEST_F(SorterTest, OverflowDropOldest) {
  auto sorter = make_sorter({.initial_frame_us = 1'000'000,
                             .max_pending = 10,
                             .overflow = OverflowPolicy::drop_oldest});
  clock_.set(0);
  for (int i = 0; i < 15; ++i) ASSERT_TRUE(sorter.push(make_record(0, i)));
  EXPECT_EQ(sorter.pending(), 10u);
  EXPECT_EQ(sorter.stats().overflow_drops, 5u);
  sorter.flush_all();
  ASSERT_EQ(emitted_.size(), 10u);
  EXPECT_EQ(emitted_[0].timestamp, 5) << "the 5 oldest were dropped";
}

TEST_F(SorterTest, FlushAllEmitsEverythingInOrder) {
  auto sorter = make_sorter({.initial_frame_us = 1'000'000'000});
  clock_.set(0);
  ASSERT_TRUE(sorter.push(make_record(0, 30)));
  ASSERT_TRUE(sorter.push(make_record(1, 10)));
  ASSERT_TRUE(sorter.push(make_record(2, 20)));
  sorter.flush_all();
  ASSERT_EQ(emitted_.size(), 3u);
  EXPECT_EQ(emitted_[0].timestamp, 10);
  EXPECT_EQ(emitted_[2].timestamp, 30);
  EXPECT_EQ(sorter.pending(), 0u);
}

TEST_F(SorterTest, TotalDelayAccumulates) {
  auto sorter = make_sorter({.initial_frame_us = 1'000, .adaptive = false});
  clock_.set(10'000);
  ASSERT_TRUE(sorter.push(make_record(0, 10'000)));
  clock_.set(12'000);
  sorter.service();
  EXPECT_EQ(sorter.stats().total_delay_us, 2'000u);
}

TEST_F(SorterTest, NextDueInReflectsWindow) {
  auto sorter = make_sorter({.initial_frame_us = 1'000, .adaptive = false});
  clock_.set(5'000);
  ASSERT_TRUE(sorter.push(make_record(0, 5'000)));
  EXPECT_EQ(sorter.next_due_in(), 1'000);
  clock_.set(6'500);
  EXPECT_LT(sorter.next_due_in(), 0);
}

// ---- CreMatcher -------------------------------------------------------------------

class CreTest : public ::testing::Test {
 protected:
  CreMatcher make_matcher(CreConfig config = {.hold_timeout_us = 10'000,
                                              .repair_margin_us = 1}) {
    return CreMatcher(config, clock_, [this] { ++extra_rounds_; });
  }
  clk::ManualClock clock_{1'000'000};
  int extra_rounds_ = 0;
  std::vector<Record> out_;
};

TEST_F(CreTest, UnmarkedRecordsPassThrough) {
  auto matcher = make_matcher();
  matcher.process(make_record(0, 100), out_);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_EQ(matcher.stats().reasons_seen, 0u);
}

TEST_F(CreTest, ReasonThenConsequenceInOrder) {
  auto matcher = make_matcher();
  matcher.process(reason_record(0, 100, 7), out_);
  matcher.process(conseq_record(1, 200, 7), out_);
  ASSERT_EQ(out_.size(), 2u);
  EXPECT_EQ(out_[1].timestamp, 200) << "correctly ordered pair is untouched";
  EXPECT_EQ(matcher.stats().matched, 1u);
  EXPECT_EQ(matcher.stats().tachyons_repaired, 0u);
  EXPECT_EQ(extra_rounds_, 0);
}

TEST_F(CreTest, TachyonConsequenceAfterReasonIsRepaired) {
  auto matcher = make_matcher();
  matcher.process(reason_record(0, 500, 7), out_);
  matcher.process(conseq_record(1, 400, 7), out_);  // before its reason!
  ASSERT_EQ(out_.size(), 2u);
  EXPECT_EQ(out_[1].timestamp, 501) << "overridden by a larger value";
  EXPECT_EQ(matcher.stats().tachyons_repaired, 1u);
  EXPECT_EQ(extra_rounds_, 1) << "extra clock sync round requested";
}

TEST_F(CreTest, ConsequenceWaitsForReason) {
  auto matcher = make_matcher();
  matcher.process(conseq_record(1, 400, 9), out_);
  EXPECT_TRUE(out_.empty()) << "held until the reason arrives";
  EXPECT_EQ(matcher.held_count(), 1u);

  matcher.process(reason_record(0, 300, 9), out_);
  ASSERT_EQ(out_.size(), 2u) << "released consequence + the reason itself";
  EXPECT_EQ(matcher.held_count(), 0u);
  // conseq ts 400 > reason ts 300: no repair needed.
  EXPECT_EQ(matcher.stats().tachyons_repaired, 0u);
}

TEST_F(CreTest, WaitingTachyonRepairedWhenReasonArrives) {
  auto matcher = make_matcher();
  matcher.process(conseq_record(1, 200, 9), out_);
  matcher.process(reason_record(0, 300, 9), out_);
  ASSERT_EQ(out_.size(), 2u);
  // `out` order is sink order (the matcher runs behind the merge): the
  // reason leaves first, then the released consequence, repaired past it.
  EXPECT_TRUE(out_[0].reason_id().has_value());
  const Record& conseq = out_[1];
  ASSERT_TRUE(conseq.conseq_id().has_value());
  EXPECT_EQ(conseq.timestamp, 301);
  EXPECT_EQ(matcher.stats().tachyons_repaired, 1u);
  EXPECT_EQ(extra_rounds_, 1);
}

TEST_F(CreTest, MultipleConsequencesSameReason) {
  auto matcher = make_matcher();
  matcher.process(conseq_record(1, 100, 5), out_);
  matcher.process(conseq_record(2, 150, 5), out_);
  EXPECT_EQ(matcher.held_count(), 2u);
  matcher.process(reason_record(0, 120, 5), out_);
  ASSERT_EQ(out_.size(), 3u);
  EXPECT_EQ(matcher.stats().matched, 2u);
  EXPECT_EQ(matcher.stats().tachyons_repaired, 1u) << "only the ts=100 conseq is a tachyon";
}

TEST_F(CreTest, HoldTimeoutReleasesUnmatched) {
  auto matcher = make_matcher({.hold_timeout_us = 5'000, .repair_margin_us = 1});
  matcher.process(conseq_record(1, 100, 11), out_);
  EXPECT_TRUE(out_.empty());
  clock_.advance(4'999);
  matcher.service(out_);
  EXPECT_TRUE(out_.empty());
  clock_.advance(1);
  matcher.service(out_);
  ASSERT_EQ(out_.size(), 1u) << "its peer may have been dropped — release";
  EXPECT_EQ(matcher.stats().hold_timeouts, 1u);
  EXPECT_EQ(matcher.held_count(), 0u);
}

TEST_F(CreTest, ReasonTableExpires) {
  auto matcher = make_matcher({.hold_timeout_us = 5'000, .repair_margin_us = 1});
  matcher.process(reason_record(0, 100, 13), out_);
  EXPECT_EQ(matcher.reason_table_size(), 1u);
  clock_.advance(6'000);
  matcher.service(out_);
  EXPECT_EQ(matcher.reason_table_size(), 0u);
  // A consequence arriving after expiry must wait (and eventually time out).
  out_.clear();
  matcher.process(conseq_record(1, 200, 13), out_);
  EXPECT_TRUE(out_.empty());
}

TEST_F(CreTest, RepairMarginConfigurable) {
  auto matcher = make_matcher({.hold_timeout_us = 10'000, .repair_margin_us = 50});
  matcher.process(reason_record(0, 1'000, 3), out_);
  matcher.process(conseq_record(1, 900, 3), out_);
  EXPECT_EQ(out_[1].timestamp, 1'050);
}

TEST_F(CreTest, RecordWithBothMarksActsAsReason) {
  // A record can be the consequence of one chain and the reason of another;
  // our dispatcher routes by the first system field present: reason wins.
  auto matcher = make_matcher();
  Record both = make_record(0, 100);
  both.fields = {Field::reason(21), Field::conseq(22)};
  matcher.process(both, out_);
  EXPECT_EQ(out_.size(), 1u);
  EXPECT_EQ(matcher.stats().reasons_seen, 1u);
}

// ---- TokenBucket -------------------------------------------------------------------

TEST(TokenBucketTest, AdmitsUpToBurst) {
  TokenBucket bucket(1'000.0, 5.0);
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (bucket.admit(1'000'000)) ++admitted;
  }
  EXPECT_EQ(admitted, 5);
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket bucket(1'000.0, 5.0);  // 1 token per ms
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(bucket.admit(1'000'000));
  EXPECT_FALSE(bucket.admit(1'000'000));
  EXPECT_TRUE(bucket.admit(1'002'000)) << "2 ms later there are tokens again";
}

TEST(TokenBucketTest, CapsAtBurst) {
  TokenBucket bucket(1'000'000.0, 3.0);
  ASSERT_TRUE(bucket.admit(0));
  // A long quiet period cannot bank more than `burst` tokens.
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (bucket.admit(100'000'000)) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
}

// ---- output sinks ---------------------------------------------------------------------

TEST(OutputTest, ShmSinkRoundTripsThroughRing) {
  std::vector<std::uint8_t> memory(shm::RingBuffer::region_size(64 * 1024));
  auto ring = shm::RingBuffer::init(memory.data(), 64 * 1024);
  ASSERT_TRUE(ring.is_ok());
  ShmSink sink(ring.value());

  Record record = make_record(9, 1'234, 5);
  ASSERT_TRUE(sink.accept(record));
  EXPECT_EQ(sink.delivered(), 1u);

  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(ring.value().try_pop(bytes));
  auto decoded = decode_output_record(ByteSpan{bytes.data(), bytes.size()});
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().node, 9u);
  EXPECT_EQ(decoded.value().timestamp, 1'234);
}

TEST(OutputTest, ShmSinkCountsDropsWhenRingFull) {
  std::vector<std::uint8_t> memory(shm::RingBuffer::region_size(128));
  auto ring = shm::RingBuffer::init(memory.data(), 128);
  ASSERT_TRUE(ring.is_ok());
  ShmSink sink(ring.value());
  Record record = make_record(1, 1);
  Status last = Status::ok();
  for (int i = 0; i < 20; ++i) last = sink.accept(record);
  EXPECT_EQ(last.code(), Errc::buffer_full);
  EXPECT_GT(sink.dropped(), 0u);
}

TEST(OutputTest, RegistryDeliversToAll) {
  auto counter1 = std::make_shared<int>(0);
  auto counter2 = std::make_shared<int>(0);
  SinkRegistry sinks;
  ASSERT_TRUE(sinks.add("first", std::make_shared<CallbackSink>(
                                     [counter1](const Record&) { ++*counter1; })));
  ASSERT_TRUE(sinks.add("second", std::make_shared<CallbackSink>(
                                      [counter2](const Record&) { ++*counter2; })));
  ASSERT_TRUE(sinks.accept(make_record(0, 1)));
  EXPECT_EQ(*counter1, 1);
  EXPECT_EQ(*counter2, 1);
  EXPECT_EQ(sinks.sink_count(), 2u);
}

TEST(OutputTest, RegistryContinuesPastFailingSink) {
  std::vector<std::uint8_t> memory(shm::RingBuffer::region_size(128));
  auto tiny_ring = shm::RingBuffer::init(memory.data(), 128);
  ASSERT_TRUE(tiny_ring.is_ok());
  auto counter = std::make_shared<int>(0);
  SinkRegistry sinks;
  ASSERT_TRUE(sinks.add(std::make_shared<ShmSink>(tiny_ring.value())));
  ASSERT_TRUE(sinks.add(std::make_shared<CallbackSink>([counter](const Record&) { ++*counter; })));
  Record record = make_record(1, 1);
  for (int i = 0; i < 20; ++i) (void)sinks.accept(record);
  EXPECT_EQ(*counter, 20) << "second sink must see every record";
}

TEST(OutputTest, RegistryRejectsDuplicateNames) {
  SinkRegistry sinks;
  ASSERT_TRUE(sinks.add(std::make_shared<CallbackSink>([](const Record&) {})));
  EXPECT_EQ(sinks.add(std::make_shared<CallbackSink>([](const Record&) {})).code(),
            Errc::already_exists);
  EXPECT_EQ(sinks.sink_count(), 1u);
}

TEST(OutputTest, RegistryFindAndRemoveByName) {
  SinkRegistry sinks;
  ASSERT_TRUE(sinks.add("a", std::make_shared<CallbackSink>([](const Record&) {})));
  ASSERT_TRUE(sinks.add("b", std::make_shared<CallbackSink>([](const Record&) {})));
  EXPECT_NE(sinks.find("a"), nullptr);
  EXPECT_EQ(sinks.find("missing"), nullptr);
  EXPECT_TRUE(sinks.remove("a"));
  EXPECT_FALSE(sinks.remove("a"));
  EXPECT_EQ(sinks.sink_count(), 1u);
  auto names = sinks.names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "b");
}

TEST(OutputTest, EncodeDecodeOutputRecordPreservesNode) {
  Record record = make_record(4'000'000, 77);
  auto encoded = encode_output_record(record);
  ASSERT_TRUE(encoded.is_ok());
  auto decoded = decode_output_record(encoded.value().view());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().node, 4'000'000u);
}

TEST(OutputTest, DecodeOutputRecordRejectsShortBuffer) {
  const std::uint8_t tiny[] = {1, 2};
  EXPECT_EQ(decode_output_record(ByteSpan{tiny, 2}).status().code(), Errc::truncated);
}

// ---- parameterized: decay half-life sweep ------------------------------------------------

class DecaySweep : public ::testing::TestWithParam<double> {};

TEST_P(DecaySweep, LongerHalfLifeDecaysSlower) {
  clk::ManualClock clock(0);
  SorterConfig config{.initial_frame_us = 64'000, .min_frame_us = 0,
                      .decay_half_life_s = GetParam()};
  OnlineSorter sorter(config, clock, [](const Record&) {});
  clock.set(1'000'000);  // 1 s elapsed
  sorter.service();
  const double expected = 64'000.0 * std::exp2(-1.0 / GetParam());
  EXPECT_NEAR(static_cast<double>(sorter.current_frame()), expected, expected * 0.02 + 10);
}

INSTANTIATE_TEST_SUITE_P(HalfLives, DecaySweep, ::testing::Values(0.25, 0.5, 1.0, 2.0, 8.0));

// ---- OrderingPipeline --------------------------------------------------------------

/// Thread-safe capture of everything the pipeline's sink receives (the
/// merger thread delivers when shards > 1).
struct PipelineCapture {
  std::mutex mutex;
  std::vector<Record> records;
  std::atomic<int> tachyons{0};

  OrderingPipeline::SinkFn sink() {
    return [this](const sensors::Record& r) {
      std::lock_guard<std::mutex> lock(mutex);
      records.push_back(r);
    };
  }
  OrderingPipeline::FlushFn flush() {
    return [] {};
  }
  OrderingPipeline::TachyonFn on_tachyon() {
    return [this] { tachyons.fetch_add(1); };
  }
  std::vector<Record> snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return records;
  }
};

TEST(ShardOfNodeTest, StableInRangeAndSpreading) {
  EXPECT_EQ(shard_of_node(12345, 1), 0u);
  std::vector<int> hits(4, 0);
  for (NodeId node = 0; node < 1000; ++node) {
    const std::size_t shard = shard_of_node(node, 4);
    ASSERT_LT(shard, 4u);
    EXPECT_EQ(shard, shard_of_node(node, 4)) << "assignment must be stable";
    ++hits[shard];
  }
  for (int shard_hits : hits) {
    EXPECT_GT(shard_hits, 100) << "striding node ids must spread over all shards";
  }
}

TEST(OrderingPipelineTest, InlineSortsAcrossNodes) {
  clk::ManualClock clock(1'000'000);
  PipelineConfig config;
  config.sorter.initial_frame_us = 10'000;
  config.sorter.adaptive = false;
  PipelineCapture capture;
  OrderingPipeline pipeline(config, clock, capture.sink(), capture.flush(),
                            capture.on_tachyon());
  EXPECT_FALSE(pipeline.threaded());

  ASSERT_TRUE(pipeline.submit(make_record(1, 1'000'300)));
  ASSERT_TRUE(pipeline.submit(make_record(2, 1'000'100)));
  ASSERT_TRUE(pipeline.submit(make_record(1, 1'000'500)));
  pipeline.service();
  EXPECT_TRUE(capture.snapshot().empty()) << "inside the delay window";

  clock.set(1'011'000);
  pipeline.service();
  const auto records = capture.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].timestamp, 1'000'100);
  EXPECT_EQ(records[1].timestamp, 1'000'300);
  EXPECT_EQ(records[2].timestamp, 1'000'500);
  EXPECT_EQ(pipeline.stats().submitted, 3u);
  EXPECT_EQ(pipeline.stats().merged, 3u);
}

TEST(OrderingPipelineTest, RemoveNodeDrainsOutOfBandInline) {
  clk::ManualClock clock(1'000'000);
  PipelineConfig config;
  config.sorter.initial_frame_us = 1'000'000;  // hold everything
  PipelineCapture capture;
  OrderingPipeline pipeline(config, clock, capture.sink(), capture.flush(),
                            capture.on_tachyon());
  ASSERT_TRUE(pipeline.submit(make_record(7, 1'000'010)));
  ASSERT_TRUE(pipeline.submit(make_record(7, 1'000'020)));
  ASSERT_TRUE(pipeline.submit(make_record(7, 1'000'030)));
  ASSERT_TRUE(pipeline.submit(make_record(1, 1'000'001)));

  EXPECT_EQ(pipeline.remove_node(7), 3u);
  auto records = capture.snapshot();
  ASSERT_EQ(records.size(), 3u) << "expired node drains immediately, out of band";
  for (const Record& r : records) EXPECT_EQ(r.node, 7u);
  EXPECT_EQ(pipeline.stats().oob_records, 3u);

  ASSERT_TRUE(pipeline.drain());
  records = capture.snapshot();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.back().node, 1u) << "live node flushed by drain";
}

// The tentpole's determinism claim at unit level: whatever the shard count,
// draining the same per-node FIFO streams yields the same (timestamp, node)
// sequence the single monolithic sorter produces.
TEST(OrderingPipelineTest, DrainOrderIdenticalAcrossShardCounts) {
  constexpr int kNodes = 8;
  constexpr int kPerNode = 25;
  const TimeMicros base = clk::SystemClock::instance().now();

  std::vector<std::vector<std::pair<TimeMicros, NodeId>>> outputs;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    PipelineConfig config;
    config.shards = shards;
    config.shard_queue_records = 64;  // small lanes, exercise the spill paths
    config.sorter.initial_frame_us = 120'000'000;  // hold everything until drain
    config.sorter.max_frame_us = 120'000'000;
    config.sorter.adaptive = false;
    PipelineCapture capture;
    OrderingPipeline pipeline(config, clk::SystemClock::instance(), capture.sink(),
                              capture.flush(), capture.on_tachyon());
    EXPECT_EQ(pipeline.shard_count(), shards);
    EXPECT_EQ(pipeline.threaded(), shards > 1);
    for (int i = 0; i < kPerNode; ++i) {
      for (NodeId node = 1; node <= kNodes; ++node) {
        // Node n owns timestamps n, n + kNodes, ... — all distinct, fully
        // interleaved across nodes (and so across shards).
        ASSERT_TRUE(pipeline.submit(
            make_record(node, base + TimeMicros(node) + TimeMicros(i) * kNodes)));
      }
    }
    ASSERT_TRUE(pipeline.drain());
    std::vector<std::pair<TimeMicros, NodeId>> sequence;
    for (const Record& r : capture.snapshot()) sequence.emplace_back(r.timestamp, r.node);
    EXPECT_EQ(pipeline.stats().merged, std::uint64_t(kNodes) * kPerNode);
    outputs.push_back(std::move(sequence));
  }

  ASSERT_EQ(outputs[0].size(), std::size_t(kNodes) * kPerNode);
  EXPECT_TRUE(std::is_sorted(outputs[0].begin(), outputs[0].end()));
  for (std::size_t m = 1; m < outputs.size(); ++m) {
    EXPECT_EQ(outputs[m], outputs[0]) << "shard count must not change the order";
  }
}

// X_REASON/X_CONSEQ pairs may span shards, which is exactly why the CRE
// matcher sits behind the k-way merge. A tachyon consequence (timestamp
// before its reason) emerges from the merge first, is held globally, and is
// released repaired once the reason passes.
TEST(OrderingPipelineTest, CrossShardTachyonRepairedBehindMerge) {
  constexpr std::size_t kShards = 4;
  // Two nodes that land on different shards.
  const NodeId reason_node = 1;
  NodeId conseq_node = 2;
  while (shard_of_node(conseq_node, kShards) == shard_of_node(reason_node, kShards)) {
    ++conseq_node;
  }
  const TimeMicros base = clk::SystemClock::instance().now();
  PipelineConfig config;
  config.shards = kShards;
  config.sorter.initial_frame_us = 120'000'000;
  config.sorter.max_frame_us = 120'000'000;
  config.sorter.adaptive = false;
  config.cre.repair_margin_us = 1;
  PipelineCapture capture;
  OrderingPipeline pipeline(config, clk::SystemClock::instance(), capture.sink(),
                            capture.flush(), capture.on_tachyon());

  ASSERT_TRUE(pipeline.submit(conseq_record(conseq_node, base - 1'000, 42)));
  ASSERT_TRUE(pipeline.submit(reason_record(reason_node, base, 42)));
  ASSERT_TRUE(pipeline.drain());

  const auto records = capture.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].node, reason_node) << "reason must reach the sink first";
  EXPECT_EQ(records[1].node, conseq_node);
  EXPECT_EQ(records[1].timestamp, base + 1) << "consequence repaired past its reason";
  EXPECT_EQ(pipeline.cre().stats().tachyons_repaired, 1u);
  EXPECT_EQ(capture.tachyons.load(), 1);
}

// ---- least-loaded accept placement ------------------------------------------------

TEST(LeastLoadedReaderTest, PicksMinimumAndBreaksTiesLow) {
  EXPECT_EQ(least_loaded_reader({0}), 0u);
  EXPECT_EQ(least_loaded_reader({3, 1, 2}), 1u);
  EXPECT_EQ(least_loaded_reader({2, 2, 2}), 0u) << "ties go to the lowest index";
  EXPECT_EQ(least_loaded_reader({1, 0, 0}), 1u) << "first minimum wins";
  // The churn scenario round-robin gets wrong: reader 0 kept its long-lived
  // connections while reader 1's all closed — new accepts must land on 1.
  EXPECT_EQ(least_loaded_reader({5, 0}), 1u);
}

TEST(LeastLoadedReaderTest, DrainRatePlacementPrefersColdReaders) {
  // The rate-aware overload places by drained-record rates, not connection
  // counts: the scenario connection counting gets wrong is one chatty node
  // on reader 0 out-weighing three idle ones on reader 1.
  EXPECT_EQ(least_loaded_reader({9000.0, 12.0}, {1, 3}), 1u);
  EXPECT_EQ(least_loaded_reader({0.0, 500.0, 250.0}, {4, 1, 1}), 0u);
  // Equal rates fall back to the connection-count tie-break...
  EXPECT_EQ(least_loaded_reader({100.0, 100.0}, {3, 1}), 1u);
  // ...and a full tie goes to the lowest index, like the legacy overload.
  EXPECT_EQ(least_loaded_reader({100.0, 100.0}, {2, 2}), 0u);
  EXPECT_EQ(least_loaded_reader({0.0}, {0}), 0u);
  // All-idle readers (fresh start): same placement round-robin-from-zero
  // shape as before — first minimum, lowest connection count.
  EXPECT_EQ(least_loaded_reader({0.0, 0.0, 0.0}, {1, 0, 2}), 1u);
}

}  // namespace
}  // namespace brisk::ism
