// Connection-resilience suite: crash, churn, and fault-injection tests of
// the EXS⇄ISM path. Covers the full failure model of DESIGN.md §6:
//  * kill -9 of a brisk_exs child mid-stream + restart (real processes,
//    records ride out the crash in the named shared-memory rings),
//  * ISM-side idle reaping → EXS backoff reconnect → same-incarnation
//    rejoin with replay of unacknowledged batches,
//  * seeded frame faults (drop / stall / truncate) on the outbound link,
//    recovered by the BATCH_ACK go-back-N resend without duplicates,
//  * heartbeats keeping record-free sessions alive,
//  * quarantine expiry draining a crashed node's pending records.
// Labelled `resilience` in ctest; the sanitizer gate runs exactly this
// suite (see BRISK_SANITIZE in the top-level CMakeLists).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/time_util.hpp"
#include "core/brisk_manager.hpp"
#include "core/brisk_node.hpp"
#include "ism/ism.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "shm/shared_region.hpp"
#include "sim/fault_injector.hpp"
#include "tp/batch.hpp"
#include "xdr/xdr_encoder.hpp"

#ifndef BRISK_APPS_DIR
#error "BRISK_APPS_DIR must be defined by the build"
#endif

namespace brisk {
namespace {

using sensors::x_i32;

constexpr SensorId kSensor = 7;

/// Runs a callable in a joined thread for the duration of a scope.
class ScopedThread {
 public:
  template <typename Fn>
  explicit ScopedThread(Fn fn) : thread_(std::move(fn)) {}
  ~ScopedThread() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

/// Runs a cleanup at scope exit — declared after the ScopedThreads so a
/// failing ASSERT still stops the loops before the threads are joined.
struct Stopper {
  std::function<void()> fn;
  ~Stopper() { fn(); }
};

ManagerConfig resilient_manager_config() {
  ManagerConfig config;
  config.ism.select_timeout_us = 2'000;
  config.ism.sorter.initial_frame_us = 5'000;
  config.ism.sorter.min_frame_us = 1'000;
  config.ism.enable_sync = false;
  config.ism.ack_period_us = 20'000;        // fast replay-buffer trimming
  config.ism.gap_skip_timeout_us = 2'000'000;  // resends must win the race
  return config;
}

NodeConfig resilient_node_config(NodeId node) {
  NodeConfig config;
  config.node = node;
  config.exs.select_timeout_us = 2'000;
  config.exs.batch_max_age_us = 1'000;
  config.exs.replay_buffer_batches = 1'024;
  config.exs.reconnect_backoff_base_us = 20'000;
  config.exs.reconnect_backoff_cap_us = 200'000;
  config.exs.heartbeat_period_us = 100'000;
  return config;
}

/// Polls the consumer until `count` records arrived or `timeout` expired.
std::vector<sensors::Record> collect(consumers::ShmConsumer& consumer, std::size_t count,
                                     TimeMicros timeout = 8'000'000) {
  std::vector<sensors::Record> records;
  const TimeMicros deadline = monotonic_micros() + timeout;
  while (records.size() < count && monotonic_micros() < deadline) {
    auto polled = consumer.poll();
    if (!polled.is_ok()) break;
    if (polled.value().has_value()) {
      records.push_back(std::move(*polled.value()));
    } else {
      sleep_micros(500);
    }
  }
  return records;
}

/// Asserts the invariant every resilience scenario must uphold: the node's
/// delivered records carry payload counters `first..first+count-1`, each
/// exactly once, in per-node FIFO order.
void expect_exactly_once_in_order(const std::vector<sensors::Record>& records,
                                  NodeId node, int first, int count) {
  ASSERT_EQ(records.size(), static_cast<std::size_t>(count));
  std::set<long long> counters;
  long long previous = first - 1;
  for (const auto& record : records) {
    EXPECT_EQ(record.node, node);
    ASSERT_FALSE(record.fields.empty());
    const long long value = record.fields[0].as_signed();
    EXPECT_TRUE(counters.insert(value).second) << "duplicate record " << value;
    EXPECT_GT(value, previous) << "per-node FIFO violated at " << value;
    previous = value;
  }
  EXPECT_EQ(*counters.begin(), first);
  EXPECT_EQ(*counters.rbegin(), first + count - 1);
}

// ---- child-process harness (same shape as apps_test) ------------------------

struct ChildProcess {
  pid_t pid = -1;
  int stdout_fd = -1;

  void terminate_and_wait() {
    if (pid <= 0) return;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
  }

  /// SIGKILL: the crash under test. Returns true if the child died by it.
  bool kill_nine() {
    if (pid <= 0) return false;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  }
};

ChildProcess spawn(const std::string& binary, std::vector<std::string> args) {
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  ChildProcess child;
  child.pid = ::fork();
  if (child.pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    static std::string bin_storage;
    bin_storage = binary;
    argv.push_back(bin_storage.data());
    for (auto& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  ::close(pipe_fds[1]);
  child.stdout_fd = pipe_fds[0];
  return child;
}

std::string read_until(ChildProcess& child, const std::string& marker,
                       TimeMicros timeout = 10'000'000) {
  std::string output;
  const TimeMicros deadline = monotonic_micros() + timeout;
  const int flags = ::fcntl(child.stdout_fd, F_GETFL, 0);
  ::fcntl(child.stdout_fd, F_SETFL, flags | O_NONBLOCK);
  while (monotonic_micros() < deadline) {
    char chunk[4096];
    const ssize_t n = ::read(child.stdout_fd, chunk, sizeof chunk);
    if (n > 0) {
      output.append(chunk, static_cast<std::size_t>(n));
      if (output.find(marker) != std::string::npos) break;
    } else if (n == 0) {
      break;
    } else {
      sleep_micros(10'000);
    }
  }
  return output;
}

std::vector<std::string> exs_args(const std::string& shm, std::uint16_t port,
                                  std::vector<std::string> extra = {}) {
  std::vector<std::string> args{"--node", "1", "--shm", shm,
                                "--ism-port", std::to_string(port),
                                "--select-timeout-us", "2000",
                                "--batch-age-us", "1000",
                                "--heartbeat-us", "100000",
                                "--backoff-base-us", "20000"};
  for (auto& arg : extra) args.push_back(std::move(arg));
  return args;
}

/// Attaches the test as "the application" to the region a brisk_exs child
/// created, with a readiness retry loop.
Result<std::unique_ptr<BriskNode>> attach_app(const std::string& shm) {
  NodeConfig config;
  config.node = 1;
  config.shm_name = shm;
  Result<std::unique_ptr<BriskNode>> app = Status(Errc::not_found, "pending");
  const TimeMicros deadline = monotonic_micros() + 5'000'000;
  while (monotonic_micros() < deadline) {
    app = BriskNode::attach(config);
    if (app.is_ok()) break;
    sleep_micros(20'000);
  }
  return app;
}

// ---- satellite (a): kill -9 an EXS mid-stream, restart, output intact -------

TEST(ResilienceTest, KillNineRestartIsGapAndDuplicateFree) {
  const std::string apps_dir = BRISK_APPS_DIR;
  const std::string node_shm = "/brisk-res-kill-" + std::to_string(::getpid());

  auto manager = BriskManager::create(resilient_manager_config());
  ASSERT_TRUE(manager.is_ok()) << manager.status().to_string();
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());
  ScopedThread ism_thread([&] { (void)manager.value()->run_for(25'000'000); });
  Stopper stop_ism{[&] { manager.value()->stop(); }};

  ChildProcess exs = spawn(apps_dir + "/brisk_exs",
                           exs_args(node_shm, manager.value()->port()));
  ASSERT_GT(exs.pid, 0);
  (void)read_until(exs, "node 1");
  Stopper stop_children{[&] { exs.terminate_and_wait(); }};

  auto app = attach_app(node_shm);
  ASSERT_TRUE(app.is_ok()) << app.status().to_string();
  auto sensor = app.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());

  // Phase 1: stream through the first EXS and wait for it to settle, so the
  // crash cannot eat records still sitting in the child's batcher.
  constexpr int kPhase = 250;
  for (int i = 0; i < kPhase; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
  }
  auto first = collect(consumer.value(), kPhase);
  ASSERT_EQ(first.size(), static_cast<std::size_t>(kPhase))
      << "phase 1 must be fully delivered before the crash";

  // The crash: SIGKILL, no cleanup, no BYE. The named region survives.
  ASSERT_TRUE(exs.kill_nine());

  // Phase 2: the application keeps noticing into the orphaned rings.
  for (int i = kPhase; i < 2 * kPhase; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
  }

  // Restart: a fresh incarnation attaches to the same rings and drains the
  // backlog. Its batch sequence restarts at zero; the ISM must reset the
  // cursor instead of dropping the new stream as duplicates.
  ChildProcess restarted = spawn(apps_dir + "/brisk_exs",
                                 exs_args(node_shm, manager.value()->port(), {"--attach"}));
  ASSERT_GT(restarted.pid, 0);
  (void)read_until(restarted, "node 1");
  Stopper stop_restarted{[&] { restarted.terminate_and_wait(); }};

  auto rest = collect(consumer.value(), kPhase);

  std::vector<sensors::Record> all = first;
  all.insert(all.end(), rest.begin(), rest.end());
  expect_exactly_once_in_order(all, 1, 0, 2 * kPhase);

  restarted.terminate_and_wait();
  manager.value()->stop();
  // Joined by scope exit; now the stats are quiescent.
  const auto& stats = manager.value()->ism().stats();
  EXPECT_EQ(stats.batch_seq_gaps, 0u) << "no batches were lost for good";
  EXPECT_EQ(stats.duplicate_batches_dropped, 0u)
      << "a fresh incarnation must not collide with the old cursor";
  EXPECT_GE(stats.connections_accepted, 2u);

  (void)shm::SharedRegion::open_named(node_shm).value().unlink();
}

// ---- tentpole: idle reap → backoff reconnect → rejoin with replay -----------

TEST(ResilienceTest, IdleReapedExsRejoinsAndReplays) {
  auto manager_config = resilient_manager_config();
  manager_config.ism.peer_idle_timeout_us = 150'000;
  auto manager = BriskManager::create(manager_config);
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());

  // No heartbeats: the EXS goes silent between phases, so the ISM must reap
  // it, and the reconnect must resume the same incarnation's session.
  NodeConfig node_config = resilient_node_config(1);
  node_config.exs.heartbeat_period_us = 0;
  auto node = BriskNode::create(node_config);
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok()) << exs.status().to_string();

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(12'000'000); });
  ScopedThread exs_thread([&] { (void)exs.value()->run_for(12'000'000); });
  Stopper stop_all{[&] {
    exs.value()->stop();
    manager.value()->stop();
  }};

  constexpr int kPhase = 100;
  for (int i = 0; i < kPhase; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
  }
  auto first = collect(consumer.value(), kPhase);
  ASSERT_EQ(first.size(), static_cast<std::size_t>(kPhase));

  // Silence. The ISM reaps the mute peer; the EXS notices the EOF and
  // reconnects with backoff.
  TimeMicros deadline = monotonic_micros() + 5'000'000;
  while (monotonic_micros() < deadline &&
         manager.value()->ism().stats().idle_disconnects == 0) {
    sleep_micros(10'000);
  }
  EXPECT_GE(manager.value()->ism().stats().idle_disconnects, 1u);
  deadline = monotonic_micros() + 5'000'000;
  while (monotonic_micros() < deadline && exs.value()->reconnects() == 0) {
    sleep_micros(10'000);
  }
  EXPECT_GE(exs.value()->reconnects(), 1u);

  // Phase 2 must flow through the re-established session, exactly once.
  for (int i = kPhase; i < 2 * kPhase; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
  }
  auto rest = collect(consumer.value(), kPhase);

  exs.value()->stop();
  manager.value()->stop();

  std::vector<sensors::Record> all = first;
  all.insert(all.end(), rest.begin(), rest.end());
  expect_exactly_once_in_order(all, 1, 0, 2 * kPhase);
  EXPECT_GE(manager.value()->ism().stats().rejoins, 1u)
      << "the reconnect must resume the session, not reset it";
  EXPECT_EQ(manager.value()->ism().stats().batch_seq_gaps, 0u);
}

// ---- tentpole: seeded frame faults recovered by ack-driven replay -----------

TEST(ResilienceTest, DroppedFramesAreReplayedExactlyOnce) {
  auto manager = BriskManager::create(resilient_manager_config());
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());
  auto node = BriskNode::create(resilient_node_config(1));
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());

  sim::FaultPlan plan;
  plan.seed = 42;
  plan.drop_probability = 0.1;
  plan.stall_every = 25;
  plan.stall_us = 50'000;
  ASSERT_TRUE(plan.validate());
  sim::FaultInjector injector(plan);
  exs.value()->set_fault_policy(injector.policy());

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(12'000'000); });
  ScopedThread exs_thread([&] { (void)exs.value()->run_for(12'000'000); });
  Stopper stop_all{[&] {
    exs.value()->stop();
    manager.value()->stop();
  }};

  // Paced so the age-based flush produces many distinct frames — more
  // frames, more faults, more replays.
  constexpr int kEvents = 2'000;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
    if (i % 50 == 0) sleep_micros(2'000);
  }
  auto records = collect(consumer.value(), kEvents);

  exs.value()->stop();
  manager.value()->stop();

  expect_exactly_once_in_order(records, 1, 0, kEvents);
  const auto& ism_stats = manager.value()->ism().stats();
  EXPECT_EQ(ism_stats.batch_seq_gaps, 0u) << "every dropped batch must be resent";
  const auto& faults = exs.value()->fault_stats();
  if (faults.dropped > 0) {
    EXPECT_GE(exs.value()->core().stats().batches_replayed, 1u)
        << "drops happened but nothing was ever resent";
    EXPECT_GE(ism_stats.duplicate_batches_dropped + ism_stats.out_of_order_batches_dropped, 1u)
        << "go-back-N resend must have overlapped the live stream";
  }
}

TEST(ResilienceTest, TruncatedFramesForceReconnectWithoutDuplicates) {
  auto manager = BriskManager::create(resilient_manager_config());
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());
  auto node = BriskNode::create(resilient_node_config(1));
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());

  // A truncated frame poisons the byte stream: the ISM hits a decode error,
  // drops the connection, and the EXS must reconnect and replay.
  sim::FaultPlan plan;
  plan.seed = 7;
  plan.truncate_probability = 0.2;
  ASSERT_TRUE(plan.validate());
  sim::FaultInjector injector(plan);
  exs.value()->set_fault_policy(injector.policy());

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(12'000'000); });
  ScopedThread exs_thread([&] { (void)exs.value()->run_for(12'000'000); });
  Stopper stop_all{[&] {
    exs.value()->stop();
    manager.value()->stop();
  }};

  constexpr int kEvents = 1'000;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
    if (i % 50 == 0) sleep_micros(2'000);
  }
  auto records = collect(consumer.value(), kEvents);

  exs.value()->stop();
  manager.value()->stop();

  expect_exactly_once_in_order(records, 1, 0, kEvents);
  if (exs.value()->fault_stats().truncated > 0) {
    EXPECT_GE(exs.value()->reconnects(), 1u)
        << "a poisoned stream must cost the connection";
    EXPECT_GE(manager.value()->ism().stats().protocol_errors, 1u);
    EXPECT_GE(exs.value()->core().stats().batches_replayed, 1u);
  }
}

TEST(ResilienceTest, DroppedAcksStarveExsIntoReconnectWithoutDuplicates) {
  auto manager = BriskManager::create(resilient_manager_config());
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());
  NodeConfig node_config = resilient_node_config(1);
  // With every BATCH_ACK eaten on the ISM side, the only thing that tells
  // the EXS its acks are gone is this silence timeout.
  node_config.exs.ism_silence_timeout_us = 250'000;
  auto node = BriskNode::create(node_config);
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());

  // Reverse-channel loss: the ISM-side FaultySocket drops BATCH_ACK frames
  // (HELLO_ACKs pass, so sessions can re-establish). Bounded so the link
  // heals within the test and the replay buffer gets to drain.
  constexpr std::uint64_t kMaxDroppedAcks = 25;
  std::atomic<std::uint64_t> acks_dropped{0};
  manager.value()->ism().set_fault_policy([&](std::uint64_t, ByteSpan payload) {
    net::FaultDecision decision;
    if (payload.size() >= 4) {
      const std::uint32_t type = (std::uint32_t{payload[0]} << 24) |
                                 (std::uint32_t{payload[1]} << 16) |
                                 (std::uint32_t{payload[2]} << 8) | std::uint32_t{payload[3]};
      if (type == static_cast<std::uint32_t>(tp::MsgType::batch_ack) &&
          acks_dropped.load(std::memory_order_relaxed) < kMaxDroppedAcks) {
        acks_dropped.fetch_add(1, std::memory_order_relaxed);
        decision.action = net::FaultAction::drop;
      }
    }
    return decision;
  });

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(12'000'000); });
  ScopedThread exs_thread([&] { (void)exs.value()->run_for(12'000'000); });
  Stopper stop_all{[&] {
    exs.value()->stop();
    manager.value()->stop();
  }};

  constexpr int kEvents = 1'000;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
    if (i % 50 == 0) sleep_micros(2'000);
  }
  auto records = collect(consumer.value(), kEvents);

  // Data flows EXS→ISM regardless of lost acks, so delivery finishes well
  // before the first 250 ms silence window closes. Keep the loops running
  // until the starved EXS actually tears the link down, reconnects, and the
  // post-fault acks trim its replay buffer back to empty.
  const TimeMicros deadline = monotonic_micros() + 8'000'000;
  while (monotonic_micros() < deadline) {
    const auto stats = exs.value()->core().stats();
    if (exs.value()->reconnects() >= 1 && stats.replay_pending == 0) break;
    sleep_micros(2'000);
  }

  exs.value()->stop();
  manager.value()->stop();

  expect_exactly_once_in_order(records, 1, 0, kEvents);
  EXPECT_GE(acks_dropped.load(), 1u) << "the fault policy never saw a BATCH_ACK";
  EXPECT_GE(exs.value()->reconnects(), 1u)
      << "ack silence must starve the EXS into dropping the half-open link";
  const auto exs_stats = exs.value()->core().stats();
  EXPECT_EQ(exs_stats.replay_pending, 0u)
      << "once acks flow again the replay buffer must drain";
  // The reconnect HELLO_ACK carries the resume cursor, so replays of batches
  // the ISM already sorted must be discarded, never re-delivered.
  EXPECT_EQ(manager.value()->ism().stats().batch_seq_gaps, 0u);
}

// ---- heartbeats vs the idle reaper -----------------------------------------

TEST(ResilienceTest, HeartbeatsKeepIdleLinkAlive) {
  auto manager_config = resilient_manager_config();
  manager_config.ism.peer_idle_timeout_us = 200'000;
  auto manager = BriskManager::create(manager_config);
  ASSERT_TRUE(manager.is_ok());
  NodeConfig node_config = resilient_node_config(1);
  node_config.exs.heartbeat_period_us = 50'000;
  auto node = BriskNode::create(node_config);
  ASSERT_TRUE(node.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());

  {
    ScopedThread ism_thread([&] { (void)manager.value()->run_for(1'500'000); });
    ScopedThread exs_thread([&] { (void)exs.value()->run_for(1'500'000); });
    Stopper stop_all{[&] {
      exs.value()->stop();
      manager.value()->stop();
    }};
    // No records at all: heartbeats are the only traffic.
    sleep_micros(1'200'000);
  }

  EXPECT_EQ(manager.value()->ism().stats().idle_disconnects, 0u)
      << "a heartbeating EXS must never be reaped";
  EXPECT_GE(manager.value()->ism().stats().heartbeats_received, 5u);
  EXPECT_EQ(exs.value()->reconnects(), 0u);
  EXPECT_TRUE(exs.value()->connected());
}

// ---- quarantine: a crashed node's pending records still come out ------------

TEST(ResilienceTest, CrashedSessionQuarantineExpiresAndDrains) {
  ism::IsmConfig config;
  config.select_timeout_us = 2'000;
  config.enable_sync = false;
  config.ack_period_us = 20'000;
  config.peer_idle_timeout_us = 0;  // only the quarantine clock matters here
  config.quarantine_timeout_us = 150'000;
  // A huge fixed frame parks every record in the sorter: only the expiry
  // drain can get them out within the test window.
  config.sorter.initial_frame_us = 10'000'000;
  config.sorter.min_frame_us = 0;
  config.sorter.adaptive = false;

  struct DeliveredLog {
    std::mutex mutex;
    std::vector<sensors::Record> records;
  };
  auto delivered = std::make_shared<DeliveredLog>();
  auto sink = std::make_shared<ism::CallbackSink>([delivered](const sensors::Record& r) {
    std::lock_guard<std::mutex> lock(delivered->mutex);
    delivered->records.push_back(r);
  });
  auto ism = ism::Ism::start(config, clk::SystemClock::instance(), sink);
  ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();

  {
    ScopedThread server([&] { (void)ism.value()->run(); });
    Stopper stop_server{[&] { ism.value()->stop(); }};

    {
      auto socket = net::TcpSocket::connect("127.0.0.1", ism.value()->port());
      ASSERT_TRUE(socket.is_ok());
      ByteBuffer hello;
      xdr::Encoder enc(hello);
      tp::put_type(tp::MsgType::hello, enc);
      tp::encode_hello({5, tp::kProtocolVersion, /*incarnation=*/77}, enc);
      ASSERT_TRUE(net::write_frame(socket.value(), hello.view()));

      tp::BatchBuilder builder(5);
      for (int i = 0; i < 3; ++i) {
        sensors::Record record;
        record.sensor = kSensor;
        record.timestamp = clk::SystemClock::instance().now();
        record.fields = {sensors::Field::i32(i)};
        ASSERT_TRUE(builder.add_record(record));
      }
      ByteBuffer payload = builder.finish();
      ASSERT_TRUE(net::write_frame(socket.value(), payload.view()));
      sleep_micros(100'000);  // let the ISM ingest before the "crash"
    }  // abrupt close, no BYE — the session goes into quarantine

    // Expiry must drain the three parked records out of band.
    const TimeMicros deadline = monotonic_micros() + 3'000'000;
    while (monotonic_micros() < deadline) {
      {
        std::lock_guard<std::mutex> lock(delivered->mutex);
        if (delivered->records.size() >= 3) break;
      }
      sleep_micros(10'000);
    }
  }  // server joined: stats are quiescent

  std::lock_guard<std::mutex> lock(delivered->mutex);
  ASSERT_EQ(delivered->records.size(), 3u);
  const auto& stats = ism.value()->stats();
  EXPECT_GE(stats.sessions_expired, 1u);
  EXPECT_EQ(stats.records_drained_on_expiry, 3u);
  EXPECT_EQ(ism.value()->session_count(), 0u) << "the expired session is forgotten";
}

// ---- satellite demo: 5% drop + 500 ms stalls through the real binaries ------

TEST(ResilienceTest, FaultDemoDropAndStallThroughRealBinaries) {
  const std::string apps_dir = BRISK_APPS_DIR;
  const std::string node_shm = "/brisk-res-demo-" + std::to_string(::getpid());

  auto manager = BriskManager::create(resilient_manager_config());
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());
  ScopedThread ism_thread([&] { (void)manager.value()->run_for(25'000'000); });
  Stopper stop_ism{[&] { manager.value()->stop(); }};

  // The acceptance scenario: 5% frame drop plus a 500 ms stall every 10th
  // frame, injected by the brisk_exs --fault-* flags.
  ChildProcess exs = spawn(
      apps_dir + "/brisk_exs",
      exs_args(node_shm, manager.value()->port(),
               {"--fault-seed", "1", "--fault-drop", "0.05", "--fault-stall-every", "10",
                "--fault-stall-us", "500000"}));
  ASSERT_GT(exs.pid, 0);
  (void)read_until(exs, "node 1");
  Stopper stop_exs{[&] { exs.terminate_and_wait(); }};

  auto app = attach_app(node_shm);
  ASSERT_TRUE(app.is_ok()) << app.status().to_string();
  auto sensor = app.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());

  constexpr int kEvents = 600;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), kSensor, x_i32(i)));
    if (i % 40 == 0) sleep_micros(3'000);
  }
  auto records = collect(consumer.value(), kEvents, /*timeout=*/15'000'000);

  exs.terminate_and_wait();
  manager.value()->stop();

  expect_exactly_once_in_order(records, 1, 0, kEvents);
  EXPECT_EQ(manager.value()->ism().stats().batch_seq_gaps, 0u)
      << "5% drop + stalls must be fully recovered by replay";

  (void)shm::SharedRegion::open_named(node_shm).value().unlink();
}

}  // namespace
}  // namespace brisk
