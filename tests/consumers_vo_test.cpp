// Consumer-side tests: shared-memory consumer, trace statistics, and the
// visual-object framework (registry + channel over real sockets).
#include <gtest/gtest.h>

#include <thread>

#include "consumers/shm_consumer.hpp"
#include "consumers/trace_stats.hpp"
#include "ism/gateway.hpp"
#include "ism/output.hpp"
#include "vo/vo_channel.hpp"
#include "vo/vo_registry.hpp"

namespace brisk {
namespace {

using sensors::Field;
using sensors::Record;

Record make_record(NodeId node, TimeMicros ts, SensorId sensor = 1) {
  Record record;
  record.node = node;
  record.sensor = sensor;
  record.timestamp = ts;
  record.fields = {Field::i32(1)};
  return record;
}

// ---- ShmConsumer ---------------------------------------------------------------------

class ShmConsumerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(shm::RingBuffer::region_size(64 * 1024));
    auto ring = shm::RingBuffer::init(memory_.data(), 64 * 1024);
    ASSERT_TRUE(ring.is_ok());
    ring_ = ring.value();
    sink_ = std::make_unique<ism::ShmSink>(ring_);
    consumer_ = std::make_unique<consumers::ShmConsumer>(ring_);
  }
  std::vector<std::uint8_t> memory_;
  shm::RingBuffer ring_;
  std::unique_ptr<ism::ShmSink> sink_;
  std::unique_ptr<consumers::ShmConsumer> consumer_;
};

TEST_F(ShmConsumerTest, PollEmptyReturnsNullopt) {
  auto record = consumer_->poll();
  ASSERT_TRUE(record.is_ok());
  EXPECT_FALSE(record.value().has_value());
}

TEST_F(ShmConsumerTest, RoundTripThroughOutputRing) {
  ASSERT_TRUE(sink_->accept(make_record(5, 111)));
  auto record = consumer_->poll();
  ASSERT_TRUE(record.is_ok());
  ASSERT_TRUE(record.value().has_value());
  EXPECT_EQ(record.value()->node, 5u);
  EXPECT_EQ(record.value()->timestamp, 111);
  EXPECT_EQ(consumer_->records_consumed(), 1u);
}

TEST_F(ShmConsumerTest, PollAllDrains) {
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(sink_->accept(make_record(1, i)));
  auto records = consumer_->poll_all();
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 10u);
  EXPECT_TRUE(ring_.empty());
}

TEST_F(ShmConsumerTest, PollPiclRendersLine) {
  ASSERT_TRUE(sink_->accept(make_record(2, 333, 7)));
  picl::PiclOptions options{picl::TimestampMode::utc_micros, 0};
  auto line = consumer_->poll_picl(options);
  ASSERT_TRUE(line.is_ok());
  ASSERT_TRUE(line.value().has_value());
  EXPECT_EQ(line.value()->rfind("2 7 333 2 1", 0), 0u) << *line.value();
}

// ---- TraceStats -----------------------------------------------------------------------

TEST(TraceStatsTest, CountsPerNodeAndSensor) {
  consumers::TraceStats stats;
  stats.add(make_record(0, 100, 1));
  stats.add(make_record(0, 200, 2));
  stats.add(make_record(1, 300, 1));
  const auto& s = stats.summary();
  EXPECT_EQ(s.records, 3u);
  EXPECT_EQ(s.per_node.at(0), 2u);
  EXPECT_EQ(s.per_node.at(1), 1u);
  EXPECT_EQ(s.per_sensor.at(1), 2u);
  EXPECT_EQ(s.out_of_order, 0u);
}

TEST(TraceStatsTest, DetectsOutOfOrder) {
  consumers::TraceStats stats;
  stats.add(make_record(0, 100));
  stats.add(make_record(0, 300));
  stats.add(make_record(1, 250));  // backstep of 50
  stats.add(make_record(1, 400));
  const auto& s = stats.summary();
  EXPECT_EQ(s.out_of_order, 1u);
  EXPECT_EQ(s.max_backstep_us, 50);
  EXPECT_NEAR(s.out_of_order_fraction(), 0.25, 1e-9);
}

TEST(TraceStatsTest, RateComputation) {
  consumers::TraceStats stats;
  for (int i = 0; i <= 100; ++i) stats.add(make_record(0, i * 10'000));  // 1 s span
  EXPECT_NEAR(stats.summary().event_rate_per_sec(), 101.0, 1.0);
  EXPECT_NEAR(stats.summary().duration_seconds(), 1.0, 1e-6);
}

TEST(TraceStatsTest, ReportContainsKeyNumbers) {
  consumers::TraceStats stats;
  stats.add(make_record(3, 100, 9));
  const std::string report = stats.report();
  EXPECT_NE(report.find("records: 1"), std::string::npos);
  EXPECT_NE(report.find("3=1"), std::string::npos);
  EXPECT_NE(report.find("9=1"), std::string::npos);
}

TEST(TraceStatsTest, EmptySummaryIsSane) {
  consumers::TraceStats stats;
  EXPECT_EQ(stats.summary().records, 0u);
  EXPECT_EQ(stats.summary().event_rate_per_sec(), 0.0);
  EXPECT_EQ(stats.summary().out_of_order_fraction(), 0.0);
}

// ---- visual objects ---------------------------------------------------------------------

class RecordingObject final : public vo::VisualObject {
 public:
  explicit RecordingObject(std::string name) : name_(std::move(name)) {}
  void render(const std::string& picl_line) override {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(picl_line);
  }
  [[nodiscard]] std::string name() const override { return name_; }
  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::string name_;
  std::mutex mutex_;
  std::vector<std::string> lines_;
};

class VoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto registry = vo::VoRegistry::start(0);
    ASSERT_TRUE(registry.is_ok()) << registry.status().to_string();
    registry_ = std::move(registry).value();
    object_ = std::make_shared<RecordingObject>("gauge");
    ASSERT_TRUE(registry_->add_object(object_));
    server_ = std::thread([this] { (void)registry_->run(2'000); });
  }
  void TearDown() override {
    registry_->stop();
    server_.join();
  }

  std::unique_ptr<vo::VoRegistry> registry_;
  std::shared_ptr<RecordingObject> object_;
  std::thread server_;
};

TEST_F(VoTest, PingRoundTrip) {
  auto channel = vo::VoChannel::connect("127.0.0.1", registry_->port());
  ASSERT_TRUE(channel.is_ok()) << channel.status().to_string();
  auto echoed = channel.value().ping(0xabcd);
  ASSERT_TRUE(echoed.is_ok()) << echoed.status().to_string();
  EXPECT_EQ(echoed.value(), 0xabcdu);
}

TEST_F(VoTest, RenderReachesObject) {
  auto channel = vo::VoChannel::connect("127.0.0.1", registry_->port());
  ASSERT_TRUE(channel.is_ok());
  ASSERT_TRUE(channel.value().render("gauge", "2 1 100 0 0"));
  // Ping forces the one-way render to be processed first (same stream).
  ASSERT_TRUE(channel.value().ping(1).is_ok());
  auto lines = object_->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "2 1 100 0 0");
}

TEST_F(VoTest, UnknownObjectDropped) {
  auto channel = vo::VoChannel::connect("127.0.0.1", registry_->port());
  ASSERT_TRUE(channel.is_ok());
  ASSERT_TRUE(channel.value().render("nope", "2 1 100 0 0"));
  ASSERT_TRUE(channel.value().ping(2).is_ok());
  EXPECT_TRUE(object_->lines().empty());
  EXPECT_EQ(registry_->stats().unknown_object_calls, 1u);
}

TEST_F(VoTest, VoSinkDeliversRecordsAsPicl) {
  auto channel = vo::VoChannel::connect("127.0.0.1", registry_->port());
  ASSERT_TRUE(channel.is_ok());
  picl::PiclOptions options{picl::TimestampMode::utc_micros, 0};
  vo::VoSink sink(std::make_shared<vo::VoChannel>(std::move(channel).value()), "gauge", options);
  ASSERT_TRUE(sink.accept(make_record(4, 555, 8)));
  ASSERT_TRUE(sink.channel().ping(3).is_ok());
  auto lines = object_->lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("2 8 555 4 1", 0), 0u) << lines[0];
}

TEST_F(VoTest, DuplicateObjectNameRejected) {
  EXPECT_EQ(registry_->add_object(std::make_shared<RecordingObject>("gauge")).code(),
            Errc::already_exists);
  EXPECT_EQ(registry_->object_count(), 1u);
}

TEST_F(VoTest, RemoveObject) {
  ASSERT_TRUE(registry_->remove_object("gauge"));
  EXPECT_EQ(registry_->remove_object("gauge").code(), Errc::not_found);
  EXPECT_EQ(registry_->object_count(), 0u);
}

TEST_F(VoTest, MultipleObjectsFanOutViaGateway) {
  // The old VoSink looped over a name list itself; fan-out across objects
  // is the consumer gateway's job now — one subscriber per object, with
  // per-object pushdown filters.
  auto second = std::make_shared<RecordingObject>("log");
  ASSERT_TRUE(registry_->add_object(second));
  auto channel = vo::VoChannel::connect("127.0.0.1", registry_->port());
  ASSERT_TRUE(channel.is_ok());
  picl::PiclOptions options{picl::TimestampMode::utc_micros, 0};

  ism::GatewayConfig config;
  auto gateway = ism::ConsumerGateway::create(config);
  ASSERT_TRUE(gateway.is_ok());
  auto shared = std::make_shared<vo::VoChannel>(std::move(channel).value());
  // "log" only wants node 1; "gauge" takes everything.
  ism::SubscriptionFilter log_filter;
  log_filter.nodes.push_back({1, 1});
  ASSERT_TRUE(vo::subscribe_visual_objects(*gateway.value(), shared, {"gauge"}, options));
  ASSERT_TRUE(
      vo::subscribe_visual_objects(*gateway.value(), shared, {"log"}, options, log_filter));
  ASSERT_TRUE(gateway.value()->accept(make_record(1, 1)));
  ASSERT_TRUE(gateway.value()->accept(make_record(2, 2)));  // node 2: gauge only
  ASSERT_TRUE(shared->ping(4).is_ok());
  EXPECT_EQ(object_->lines().size(), 2u);
  EXPECT_EQ(second->lines().size(), 1u);
}

}  // namespace
}  // namespace brisk
