// End-to-end check of the mknotice toolchain: tests/testdata/sensors.spec is
// run through the mknotice executable at build time (see CMakeLists); the
// generated header is included here and its macros are exercised against a
// live sensor + ring.
#include <gtest/gtest.h>

#include "clock/clock.hpp"
#include "generated_notices.hpp"  // build-generated
#include "sensors/record_codec.hpp"
#include "sensors/sensor_registry.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk {
namespace {

using sensors::FieldType;
using sensors::Record;

class GeneratedNoticeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(shm::RingBuffer::region_size(64 * 1024));
    auto ring = shm::RingBuffer::init(memory_.data(), 64 * 1024);
    ASSERT_TRUE(ring.is_ok());
    ring_ = ring.value();
    sensor_ = std::make_unique<sensors::Sensor>(ring_, clock_);
  }

  Record pop_record() {
    std::vector<std::uint8_t> bytes;
    EXPECT_TRUE(ring_.try_pop(bytes));
    auto record = sensors::decode_native(ByteSpan{bytes.data(), bytes.size()});
    EXPECT_TRUE(record.is_ok()) << record.status().to_string();
    return std::move(record).value();
  }

  std::vector<std::uint8_t> memory_;
  shm::RingBuffer ring_;
  clk::ManualClock clock_{5'000'000};
  std::unique_ptr<sensors::Sensor> sensor_;
};

TEST_F(GeneratedNoticeTest, BasicMacroWritesTypedRecord) {
  ASSERT_TRUE(BRISK_NOTICE_GEN_BASIC(*sensor_, 42, "hello"));
  const Record record = pop_record();
  EXPECT_EQ(record.sensor, kSensor_gen_basic);
  ASSERT_EQ(record.fields.size(), 3u);
  EXPECT_EQ(record.fields[0].as_signed(), 42);
  EXPECT_EQ(record.fields[1].as_string(), "hello");
  EXPECT_EQ(record.fields[2].as_timestamp(), 5'000'000) << "x_ts embeds the record ts";
}

TEST_F(GeneratedNoticeTest, CausalMacro) {
  ASSERT_TRUE(BRISK_NOTICE_GEN_CAUSAL(*sensor_, 77, 5));
  const Record record = pop_record();
  EXPECT_EQ(record.reason_id().value_or(0), 77u);
}

TEST_F(GeneratedNoticeTest, WideMacroUsesWriterPath) {
  ASSERT_TRUE(
      BRISK_NOTICE_GEN_WIDE(*sensor_, 0, 1, 2, 3, 4, 5, 6, 7, 8, 999, "tail", 2.5));
  const Record record = pop_record();
  EXPECT_EQ(record.sensor, kSensor_gen_wide);
  ASSERT_EQ(record.fields.size(), 12u);
  EXPECT_EQ(record.fields[8].as_signed(), 8);
  EXPECT_EQ(record.fields[9].as_unsigned(), 999u);
  EXPECT_EQ(record.fields[10].as_string(), "tail");
  EXPECT_DOUBLE_EQ(record.fields[11].as_double(), 2.5);
}

TEST_F(GeneratedNoticeTest, WideMacroAdvancesSequence) {
  ASSERT_TRUE(
      BRISK_NOTICE_GEN_WIDE(*sensor_, 0, 1, 2, 3, 4, 5, 6, 7, 8, 1, "a", 0.0));
  ASSERT_TRUE(BRISK_NOTICE_GEN_BASIC(*sensor_, 1, "b"));
  EXPECT_EQ(pop_record().sequence, 0u);
  EXPECT_EQ(pop_record().sequence, 1u);
}

TEST_F(GeneratedNoticeTest, RegistrationHelpersPopulateRegistry) {
  sensors::SensorRegistry registry;
  ASSERT_TRUE(register_gen_basic(registry));
  ASSERT_TRUE(register_gen_wide(registry));
  ASSERT_TRUE(register_gen_causal(registry));
  auto info = registry.find(kSensor_gen_basic);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "gen_basic");
  ASSERT_EQ(info->signature.size(), 3u);
  EXPECT_EQ(info->signature[1], FieldType::x_string);

  // Validate a generated record against the generated signature.
  ASSERT_TRUE(BRISK_NOTICE_GEN_BASIC(*sensor_, 1, "x"));
  EXPECT_TRUE(registry.validate(pop_record()));
}

}  // namespace
}  // namespace brisk
