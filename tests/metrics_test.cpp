// Self-instrumentation tests: the MetricsRegistry (owned handles,
// collectors, deterministic snapshot order), the reserved-sensor-id record
// schema and its byte-identical round trips through both output paths (shm
// ring and PICL), and end-to-end emission through a live Ism's ordering
// pipeline at every shard count.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "clock/clock.hpp"
#include "common/time_util.hpp"
#include "ism/ism.hpp"
#include "ism/output.hpp"
#include "metrics/metrics.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "picl/picl_record.hpp"
#include "sensors/metrics_record.hpp"
#include "shm/ring_buffer.hpp"
#include "tp/batch.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk {
namespace {

using metrics::MetricsRegistry;
using metrics::Sample;
using sensors::MetricKind;

// ---- registry --------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterAndGaugeHandles) {
  MetricsRegistry registry;
  metrics::Counter& c = registry.counter("test.counter");
  c.add(2);
  c.increment();
  EXPECT_EQ(c.value(), 3u);
  metrics::Gauge& g = registry.gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7u);
  // Same name returns the same cell.
  registry.counter("test.counter").increment();
  EXPECT_EQ(c.value(), 4u);
  EXPECT_EQ(registry.owned_count(), 2u);
}

TEST(MetricsRegistryTest, SnapshotCoversOwnedAndCollectors) {
  MetricsRegistry registry;
  registry.counter("a").add(5);
  registry.gauge("b").set(7);
  registry.add_collector([](metrics::SnapshotBuilder& out) {
    out.counter("c", 9);
    out.gauge("d", 11);
  });
  const std::vector<Sample> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].name, "a");
  EXPECT_EQ(snap[0].value, 5u);
  EXPECT_EQ(snap[0].kind, MetricKind::counter);
  EXPECT_EQ(snap[1].name, "b");
  EXPECT_EQ(snap[1].value, 7u);
  EXPECT_EQ(snap[1].kind, MetricKind::gauge);
  EXPECT_EQ(snap[2].name, "c");
  EXPECT_EQ(snap[3].name, "d");
  EXPECT_EQ(snap[3].kind, MetricKind::gauge);
}

TEST(MetricsRegistryTest, SnapshotOrderIsStable) {
  MetricsRegistry registry;
  registry.gauge("z");
  registry.counter("a");
  registry.gauge("m");
  auto first = registry.snapshot();
  auto second = registry.snapshot();
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].name, "z");
  EXPECT_EQ(first[1].name, "a");
  EXPECT_EQ(first[2].name, "m");
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name) << "snapshot order must be deterministic";
  }
}

TEST(MetricsRegistryTest, ConcurrentBumpsAreLossless) {
  MetricsRegistry registry;
  metrics::Counter& c = registry.counter("hot");
  constexpr int kThreads = 4;
  constexpr int kBumps = 50'000;
  std::vector<std::thread> bumpers;
  for (int t = 0; t < kThreads; ++t) {
    bumpers.emplace_back([&c] {
      for (int i = 0; i < kBumps; ++i) c.increment();
    });
  }
  for (auto& thread : bumpers) thread.join();
  EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kBumps);
}

// ---- record schema ---------------------------------------------------------------

TEST(MetricsRecordTest, MakeDecodeRoundTrip) {
  const sensors::Record record = sensors::make_metrics_record(
      7, 42, 1'000'000, "ism.records_received", 12345, MetricKind::counter);
  EXPECT_TRUE(sensors::is_metrics_record(record));
  EXPECT_EQ(record.sensor, sensors::kMetricsSensorId);
  EXPECT_EQ(record.node, 7u);
  EXPECT_EQ(record.sequence, 42u);
  auto point = sensors::decode_metrics_record(record);
  ASSERT_TRUE(point.is_ok()) << point.status().to_string();
  EXPECT_EQ(point.value().name, "ism.records_received");
  EXPECT_EQ(point.value().value, 12345u);
  EXPECT_EQ(point.value().kind, MetricKind::counter);

  const sensors::Record gauge = sensors::make_metrics_record(
      1, 0, 0, "ism.sessions", 3, MetricKind::gauge);
  auto gauge_point = sensors::decode_metrics_record(gauge);
  ASSERT_TRUE(gauge_point.is_ok());
  EXPECT_EQ(gauge_point.value().kind, MetricKind::gauge);
}

TEST(MetricsRecordTest, RejectsNonMetricsShapes) {
  sensors::Record plain;
  plain.sensor = 1;
  EXPECT_FALSE(sensors::is_metrics_record(plain));
  EXPECT_EQ(sensors::decode_metrics_record(plain).status().code(), Errc::malformed);

  sensors::Record wrong_fields;
  wrong_fields.sensor = sensors::kMetricsSensorId;
  wrong_fields.fields = {sensors::Field::i32(1)};
  EXPECT_EQ(sensors::decode_metrics_record(wrong_fields).status().code(), Errc::malformed);
}

TEST(MetricsRecordTest, SnapshotToRecordsStampsAndSequences) {
  std::vector<Sample> samples = {
      Sample{"one", 1, MetricKind::counter},
      Sample{"two", 2, MetricKind::gauge},
  };
  SequenceNo sequence = 10;
  auto records = metrics::snapshot_to_records(samples, 99, 5'000, sequence);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(sequence, 12u);
  EXPECT_EQ(records[0].sequence, 10u);
  EXPECT_EQ(records[1].sequence, 11u);
  for (const auto& record : records) {
    EXPECT_EQ(record.node, 99u);
    EXPECT_EQ(record.timestamp, 5'000);
    EXPECT_TRUE(sensors::is_metrics_record(record));
  }
}

// The shm output path: a metrics record pushed through a real ShmSink ring
// must pop byte-identical to its encoding and decode back to an equal
// record — consumers see exactly what the ISM delivered.
TEST(MetricsRecordTest, ShmSinkRoundTripByteIdentical) {
  const sensors::Record record = sensors::make_metrics_record(
      sensors::kIsmMetricsNodeId, 3, 2'000'000, "ism.pipeline.merged", 777,
      MetricKind::counter);
  auto encoded = ism::encode_output_record(record);
  ASSERT_TRUE(encoded.is_ok());

  std::vector<std::uint8_t> memory(shm::RingBuffer::region_size(4096));
  auto ring = shm::RingBuffer::init(memory.data(), 4096);
  ASSERT_TRUE(ring.is_ok());
  ism::ShmSink sink(ring.value());
  ASSERT_TRUE(sink.accept(record));
  EXPECT_EQ(sink.delivered(), 1u);

  std::vector<std::uint8_t> popped;
  ASSERT_TRUE(ring.value().try_pop(popped));
  ASSERT_EQ(popped.size(), encoded.value().size());
  EXPECT_EQ(std::memcmp(popped.data(), encoded.value().data(), popped.size()), 0)
      << "ring payload must be byte-identical to the encoding";

  auto decoded = ism::decode_output_record(ByteSpan{popped.data(), popped.size()});
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), record);
  auto point = sensors::decode_metrics_record(decoded.value());
  ASSERT_TRUE(point.is_ok());
  EXPECT_EQ(point.value().name, "ism.pipeline.merged");
  EXPECT_EQ(point.value().value, 777u);
}

// The PICL path: metric names (dotted strings) must survive the ASCII
// rendering and parse back to the same record.
TEST(MetricsRecordTest, PiclLineRoundTrip) {
  const sensors::Record record = sensors::make_metrics_record(
      5, 0, 3'500'000, "exs.records_forwarded", 424242, MetricKind::counter);
  picl::PiclOptions options{picl::TimestampMode::utc_micros, 0};
  const std::string line = picl::to_picl_line(record, options);
  auto parsed = picl::from_picl_line(line, options);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string() << " line: " << line;
  EXPECT_EQ(parsed.value(), record);
  auto point = sensors::decode_metrics_record(parsed.value());
  ASSERT_TRUE(point.is_ok());
  EXPECT_EQ(point.value().name, "exs.records_forwarded");
  EXPECT_EQ(point.value().value, 424242u);
}

// ---- end to end through a live Ism -----------------------------------------------

/// Shard-count parameterized: metrics records must survive the sharded
/// ordering pipeline (reserved node hashes to one shard; the k-way merge
/// carries them to the sinks) exactly as they do the inline sorter.
class IsmMetricsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IsmMetricsTest, MetricsRecordsFlowThroughOrderingPipeline) {
  ism::IsmConfig config;
  config.select_timeout_us = 2'000;
  config.enable_sync = false;
  config.sorter.initial_frame_us = 0;
  config.sorter.min_frame_us = 0;
  config.sorter.adaptive = false;
  config.sorter_shards = GetParam();
  config.metrics_interval_us = 10'000;

  struct Log {
    std::mutex mutex;
    std::vector<sensors::Record> records;
  };
  auto log = std::make_shared<Log>();
  auto sink = std::make_shared<ism::CallbackSink>([log](const sensors::Record& r) {
    std::lock_guard<std::mutex> lock(log->mutex);
    log->records.push_back(r);
  });
  auto ism = ism::Ism::start(config, clk::SystemClock::instance(), sink);
  ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
  // Owned-handle extension point: a counter bumped through the registry
  // must ride the same snapshots as the bridged daemon stats.
  ism.value()->metrics().counter("test.custom").add(5);
  std::thread server([&] { (void)ism.value()->run(); });

  // One client sends a batch so the ingest counters have real values.
  auto socket = net::TcpSocket::connect("127.0.0.1", ism.value()->port());
  ASSERT_TRUE(socket.is_ok());
  ByteBuffer hello;
  xdr::Encoder hello_enc(hello);
  tp::put_type(tp::MsgType::hello, hello_enc);
  tp::encode_hello({NodeId{4}, tp::kProtocolVersion}, hello_enc);
  ASSERT_TRUE(net::write_frame(socket.value(), hello.view()));
  ASSERT_TRUE(net::read_frame(socket.value()).is_ok()) << "hello_ack";
  tp::BatchBuilder builder{NodeId{4}};
  const TimeMicros base = clk::SystemClock::instance().now();
  for (int i = 0; i < 3; ++i) {
    sensors::Record record;
    record.sensor = 1;
    record.timestamp = base + i;
    record.fields = {sensors::Field::i32(i)};
    ASSERT_TRUE(builder.add_record(record));
  }
  ByteBuffer payload = builder.finish();
  ASSERT_TRUE(net::write_frame(socket.value(), payload.view()));

  // Let several metrics intervals elapse while the daemon runs.
  const TimeMicros deadline = monotonic_micros() + 5'000'000;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(log->mutex);
      std::size_t data = 0;
      for (const auto& r : log->records) {
        if (!sensors::is_metrics_record(r)) ++data;
      }
      if (data >= 3) break;
    }
    ASSERT_LT(monotonic_micros(), deadline) << "data records never delivered";
    sleep_micros(2'000);
  }
  sleep_micros(50'000);
  ism.value()->stop();
  server.join();
  ASSERT_TRUE(ism.value()->drain());  // emits the final snapshot

  std::lock_guard<std::mutex> lock(log->mutex);
  std::vector<sensors::Record> metric_records;
  for (const auto& r : log->records) {
    if (sensors::is_metrics_record(r)) metric_records.push_back(r);
  }
  ASSERT_GE(metric_records.size(), 1u);

  std::map<std::string, std::uint64_t> last_value;
  TimeMicros prev_ts = 0;
  for (const auto& r : metric_records) {
    EXPECT_EQ(r.node, sensors::kIsmMetricsNodeId);
    EXPECT_GE(r.timestamp, prev_ts) << "same-node metrics keep pipeline order";
    prev_ts = r.timestamp;
    auto point = sensors::decode_metrics_record(r);
    ASSERT_TRUE(point.is_ok()) << point.status().to_string();
    last_value[point.value().name] = point.value().value;
  }
  // The unified names: ingest, pipeline, sorter, CRE, and the owned handle.
  for (const char* name :
       {"ism.records_received", "ism.batches_received", "ism.connections_accepted",
        "ism.pipeline.submitted", "ism.pipeline.merged", "ism.sorter.pushed",
        "ism.sessions", "ism.cre.matched", "test.custom"}) {
    EXPECT_TRUE(last_value.count(name)) << "missing metric " << name;
  }
  // Final snapshot reflects the batch this test sent.
  EXPECT_GE(last_value["ism.records_received"], 3u);
  EXPECT_GE(last_value["ism.batches_received"], 1u);
  EXPECT_EQ(last_value["test.custom"], 5u);
  EXPECT_GE(last_value["ism.pipeline.submitted"], 3u);
}

INSTANTIATE_TEST_SUITE_P(Shards, IsmMetricsTest, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "shards" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace brisk
