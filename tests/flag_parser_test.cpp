// Error-path contract tests for the flag layer (src/apps/flag_parser.hpp).
//
// The parser's failure mode is process exit with code 2 (usage errors) or 0
// (--help) — the contract the daemon mains and ci.sh rely on — so the bad
// paths run as gtest death tests: each EXPECT_EXIT forks, runs the parse in
// the child, and checks the exit code plus the stderr diagnostic.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/flag_parser.hpp"

namespace brisk::apps {
namespace {

// argv builder: death-test children re-run parse() from scratch, so plain
// static storage per call is fine (the vectors just have to outlive parse()).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "test_program");
    for (auto& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

FlagRegistry make_registry() {
  FlagRegistry flags("test_program", "flag parser contract test fixture");
  flags.add_int("port", 7411, "TCP port to listen on")
      .add_string("shm", "", "shared-memory ring name")
      .add_double("drop", 0.0, "drop probability")
      .add_bool("verbose", false, "log at info level");
  return flags;
}

void parse(std::vector<std::string> args) {
  Argv argv(std::move(args));
  FlagRegistry flags = make_registry();
  flags.parse(argv.argc(), argv.argv());
}

using FlagParserDeathTest = ::testing::Test;

TEST(FlagParserDeathTest, UnknownFlagExitsTwo) {
  EXPECT_EXIT(parse({"--no-such-flag=1"}), ::testing::ExitedWithCode(2),
              "unknown flag: --no-such-flag");
}

TEST(FlagParserDeathTest, PositionalArgumentExitsTwo) {
  EXPECT_EXIT(parse({"stray"}), ::testing::ExitedWithCode(2),
              "unexpected argument: stray");
}

TEST(FlagParserDeathTest, BadIntegerExitsTwo) {
  EXPECT_EXIT(parse({"--port=eleven"}), ::testing::ExitedWithCode(2),
              "flag --port expects an integer, got 'eleven'");
}

TEST(FlagParserDeathTest, BadDoubleExitsTwo) {
  EXPECT_EXIT(parse({"--drop", "often"}), ::testing::ExitedWithCode(2),
              "flag --drop expects a number, got 'often'");
}

TEST(FlagParserDeathTest, BadBooleanExitsTwo) {
  EXPECT_EXIT(parse({"--verbose=maybe"}), ::testing::ExitedWithCode(2),
              "flag --verbose expects a boolean");
}

// `--port --shm x` leaves --port with the bare-boolean value "true", which
// fails integer type-checking — a missing value is a usage error, not a
// silently-absorbed flag.
TEST(FlagParserDeathTest, MissingValueExitsTwo) {
  EXPECT_EXIT(parse({"--port", "--shm", "x"}), ::testing::ExitedWithCode(2),
              "flag --port expects an integer, got 'true'");
}

TEST(FlagParserDeathTest, HelpExitsZero) {
  EXPECT_EXIT(parse({"--help"}), ::testing::ExitedWithCode(0), "");
}

TEST(FlagParserDeathTest, ReadingUndeclaredFlagExitsTwo) {
  auto read_undeclared = [] {
    FlagRegistry flags = make_registry();
    Argv argv({});
    flags.parse(argv.argc(), argv.argv());
    (void)flags.num("frame-us");  // never declared above
  };
  EXPECT_EXIT(read_undeclared(), ::testing::ExitedWithCode(2),
              "flag --frame-us read but never declared");
}

TEST(FlagParserDeathTest, ReadingWithWrongTypeExitsTwo) {
  auto read_wrong_type = [] {
    FlagRegistry flags = make_registry();
    Argv argv({});
    flags.parse(argv.argc(), argv.argv());
    (void)flags.str("port");  // declared as an integer
  };
  EXPECT_EXIT(read_wrong_type(), ::testing::ExitedWithCode(2),
              "flag --port read with the wrong type");
}

TEST(FlagParserDeathTest, DuplicateDeclarationExitsTwo) {
  auto declare_twice = [] {
    FlagRegistry flags("test_program", "dup");
    flags.add_int("port", 1, "first").add_int("port", 2, "second");
  };
  EXPECT_EXIT(declare_twice(), ::testing::ExitedWithCode(2),
              "flag --port declared twice");
}

// Golden --help text: generated from the declarations, one line per flag,
// with type and default. help_text() is what parse() prints before exit 0.
TEST(FlagRegistryTest, HelpTextGolden) {
  FlagRegistry flags = make_registry();
  const std::string expected =
      "usage: test_program [--flag[=value] ...]\n"
      "  flag parser contract test fixture\n"
      "\n"
      "  --port                    TCP port to listen on [int, default: 7411]\n"
      "  --shm                     shared-memory ring name [string, default: \"\"]\n"
      "  --drop                    drop probability [float, default: 0]\n"
      "  --verbose                 log at info level [bool, default: false]\n"
      "  --help                     print this help and exit\n";
  EXPECT_EQ(flags.help_text(), expected);
}

TEST(FlagRegistryTest, GoodValuesParse) {
  Argv argv({"--port=9000", "--shm", "ring", "--drop=0.25", "--verbose"});
  FlagRegistry flags = make_registry();
  flags.parse(argv.argc(), argv.argv());
  EXPECT_EQ(flags.num("port"), 9000);
  EXPECT_EQ(flags.str("shm"), "ring");
  EXPECT_DOUBLE_EQ(flags.real("drop"), 0.25);
  EXPECT_TRUE(flags.flag("verbose"));
  EXPECT_TRUE(flags.provided("port"));
  EXPECT_FALSE(flags.provided("help"));
}

}  // namespace
}  // namespace brisk::apps
