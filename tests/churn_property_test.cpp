// Property tests of the merge/sort path under randomized, seeded EXS churn:
// nodes join, crash (their pending queue is drained out of band, as the
// ISM's quarantine expiry does), and rejoin while records keep flowing. For
// every seed the invariants must hold: no record is lost or duplicated,
// per-node FIFO survives any number of crashes, the adaptive time frame T
// stays within its configured bounds, and a crashed node's out-of-band
// drain never poisons the global order of the survivors.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "clock/clock.hpp"
#include "ism/online_sorter.hpp"
#include "sim/churn.hpp"

namespace brisk::ism {
namespace {

struct ChurnParam {
  std::uint64_t seed;
  std::uint32_t nodes;
  double toggle_probability;
  TimeMicros max_lag_us;
};

class ChurnProperty : public ::testing::TestWithParam<ChurnParam> {
 protected:
  static sim::ChurnConfig churn_config(const ChurnParam& param) {
    sim::ChurnConfig config;
    config.seed = param.seed;
    config.nodes = param.nodes;
    config.steps = 1'500;
    config.step_us = 1'000;
    config.toggle_probability = param.toggle_probability;
    config.record_probability = 0.6;
    config.max_lag_us = param.max_lag_us;
    return config;
  }

  struct ReplayResult {
    std::vector<sensors::Record> emitted;
    std::uint64_t pushed = 0;
    std::uint64_t drained_out_of_band = 0;
    SorterStats stats;
    std::size_t pending_after_flush = 0;
  };

  /// Replays the churn script against a sorter on a manual clock. A leave
  /// is treated as a crash: the node's queue is removed and drained out of
  /// band, exactly like the ISM's session expiry.
  static ReplayResult replay(const std::vector<sim::ChurnEvent>& events,
                             const SorterConfig& config) {
    clk::ManualClock clock(0);
    ReplayResult result;
    OnlineSorter sorter(config, clock,
                        [&](const sensors::Record& r) { result.emitted.push_back(r); });
    std::map<NodeId, SequenceNo> next_seq;
    for (const sim::ChurnEvent& event : events) {
      while (clock.now() + 1'000 <= event.at) {
        clock.advance(1'000);
        sorter.service();
        EXPECT_GE(sorter.current_frame(), config.min_frame_us);
        EXPECT_LE(sorter.current_frame(), config.max_frame_us);
      }
      clock.set(event.at);
      sorter.service();
      switch (event.kind) {
        case sim::ChurnEvent::Kind::join:
          break;  // queues auto-register on the first record
        case sim::ChurnEvent::Kind::leave:
          result.drained_out_of_band += sorter.remove_node(event.node);
          break;
        case sim::ChurnEvent::Kind::record: {
          sensors::Record record;
          record.node = event.node;
          record.sensor = 1;
          record.timestamp = event.timestamp;
          record.sequence = ++next_seq[event.node];
          EXPECT_TRUE(sorter.push(std::move(record)));
          ++result.pushed;
          break;
        }
      }
    }
    sorter.flush_all();
    result.stats = sorter.stats();
    result.pending_after_flush = sorter.pending();
    return result;
  }
};

TEST_P(ChurnProperty, NoRecordLostOrDuplicatedUnderChurn) {
  auto events = sim::generate_churn(churn_config(GetParam()));
  SorterConfig config;
  config.initial_frame_us = 2'000;
  config.min_frame_us = 100;
  config.max_frame_us = 50'000;
  auto result = replay(events, config);
  ASSERT_EQ(result.emitted.size(), result.pushed);
  EXPECT_EQ(result.stats.pushed, result.stats.emitted);
  EXPECT_EQ(result.pending_after_flush, 0u);
  std::map<NodeId, std::set<SequenceNo>> seen;
  for (const auto& record : result.emitted) {
    EXPECT_TRUE(seen[record.node].insert(record.sequence).second)
        << "duplicate emission node " << record.node << " seq " << record.sequence;
  }
}

TEST_P(ChurnProperty, PerNodeFifoSurvivesCrashes) {
  auto events = sim::generate_churn(churn_config(GetParam()));
  SorterConfig config;
  config.initial_frame_us = 1'500;
  config.min_frame_us = 100;
  config.max_frame_us = 50'000;
  auto result = replay(events, config);
  // The out-of-band drain emits a crashed node's queue in push order, and a
  // rejoin's records are pushed (hence emitted) later — so per-node
  // sequence numbers must rise monotonically across any number of lives.
  std::map<NodeId, SequenceNo> last_seq;
  for (const auto& record : result.emitted) {
    auto it = last_seq.find(record.node);
    if (it != last_seq.end()) {
      EXPECT_GT(record.sequence, it->second)
          << "node " << record.node << " emitted out of its own order";
    }
    last_seq[record.node] = record.sequence;
  }
}

TEST_P(ChurnProperty, FrameStaysBoundedUnderChurn) {
  auto events = sim::generate_churn(churn_config(GetParam()));
  SorterConfig config;
  config.initial_frame_us = 500;
  config.min_frame_us = 100;
  config.max_frame_us = 5'000;
  config.decay_half_life_s = 0.05;
  auto result = replay(events, config);  // per-service bounds checked inside
  EXPECT_EQ(result.stats.pushed, result.stats.emitted);
}

TEST_P(ChurnProperty, CrashDrainDoesNotPoisonSurvivorOrder) {
  auto events = sim::generate_churn(churn_config(GetParam()));
  // With a fixed frame larger than any possible lateness, in-band emissions
  // are totally timestamp-ordered. Out-of-band drains interleave early
  // emissions of a dead node's records — the sorter must exclude them from
  // the order check (and from last-emitted tracking), or every crash would
  // charge a phantom inversion against the survivors.
  SorterConfig config;
  config.adaptive = false;
  config.initial_frame_us = GetParam().max_lag_us + 2'000;
  config.min_frame_us = 0;
  config.max_frame_us = GetParam().max_lag_us + 2'000;
  auto result = replay(events, config);
  EXPECT_EQ(result.stats.out_of_order_emissions, 0u)
      << "crash drains must not count as ordering violations";
  EXPECT_EQ(result.stats.frame_raises, 0u);
  EXPECT_EQ(result.stats.pushed, result.stats.emitted);
}

TEST_P(ChurnProperty, ScriptsAreDeterministicPerSeed) {
  auto config = churn_config(GetParam());
  auto first = sim::generate_churn(config);
  auto second = sim::generate_churn(config);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(static_cast<int>(first[i].kind), static_cast<int>(second[i].kind));
    EXPECT_EQ(first[i].node, second[i].node);
    EXPECT_EQ(first[i].at, second[i].at);
    EXPECT_EQ(first[i].timestamp, second[i].timestamp);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChurnScripts, ChurnProperty,
    ::testing::Values(ChurnParam{1, 4, 0.01, 5'000},   // the default storm
                      ChurnParam{2, 8, 0.02, 3'000},   // wide and busy
                      ChurnParam{3, 2, 0.05, 8'000},   // violent flapping
                      ChurnParam{4, 1, 0.03, 2'000},   // single node lives/dies
                      ChurnParam{5, 6, 0.0, 5'000},    // no churn: plain merge
                      ChurnParam{6, 3, 0.08, 10'000}), // worst-case lag + churn
    [](const ::testing::TestParamInfo<ChurnParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes);
    });

}  // namespace
}  // namespace brisk::ism
