// Consumer-gateway tests: filter parse/pushdown semantics, the new consumer
// wire messages, SinkRegistry mutation-vs-delivery safety, in-process
// subscription equivalence, aggregation windows, and the TCP fan-out path
// with its slow-consumer (drop-oldest + eviction) policy.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/time_util.hpp"
#include "consumers/gateway_client.hpp"
#include "ism/filter.hpp"
#include "ism/gateway.hpp"
#include "ism/output.hpp"
#include "metrics/metrics.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk {
namespace {

using ism::ConsumerGateway;
using ism::GatewayConfig;
using ism::SubscriptionFilter;
using sensors::Field;
using sensors::Record;

Record make_record(NodeId node, SensorId sensor, TimeMicros ts, SequenceNo seq = 0) {
  Record record;
  record.node = node;
  record.sensor = sensor;
  record.sequence = seq;
  record.timestamp = ts;
  record.fields = {Field::i32(7)};
  return record;
}

// ---- SubscriptionFilter ------------------------------------------------------

TEST(SubscriptionFilter, EmptySpecPassesEverything) {
  auto filter = SubscriptionFilter::parse("");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter.value().pass_all());
  EXPECT_TRUE(filter.value().matches(make_record(9, 9, 9)));
  EXPECT_EQ(filter.value().describe(), "");
}

TEST(SubscriptionFilter, ParsesRangesAndContinuationValues) {
  auto filter = SubscriptionFilter::parse("node=1,2,5-8,sensor=100-199,sample=16");
  ASSERT_TRUE(filter.is_ok());
  const SubscriptionFilter& f = filter.value();
  ASSERT_EQ(f.nodes.size(), 3u);
  EXPECT_EQ(f.nodes[0], (SubscriptionFilter::Range{1, 1}));
  EXPECT_EQ(f.nodes[1], (SubscriptionFilter::Range{2, 2}));
  EXPECT_EQ(f.nodes[2], (SubscriptionFilter::Range{5, 8}));
  ASSERT_EQ(f.sensors.size(), 1u);
  EXPECT_EQ(f.sensors[0], (SubscriptionFilter::Range{100, 199}));
  EXPECT_EQ(f.sample_every, 16u);
}

TEST(SubscriptionFilter, DescribeRoundTrips) {
  auto filter = SubscriptionFilter::parse("node=5-8, 1,sensor=100-199,sample=4");
  ASSERT_TRUE(filter.is_ok());
  const std::string spec = filter.value().describe();
  EXPECT_EQ(spec, "node=1,5-8,sensor=100-199,sample=4");
  auto again = SubscriptionFilter::parse(spec);
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value(), filter.value());
}

TEST(SubscriptionFilter, RejectsBadSpecs) {
  EXPECT_FALSE(SubscriptionFilter::parse("bogus=1").is_ok());
  EXPECT_FALSE(SubscriptionFilter::parse("17").is_ok());           // bare value, no key
  EXPECT_FALSE(SubscriptionFilter::parse("node=8-5").is_ok());     // inverted
  EXPECT_FALSE(SubscriptionFilter::parse("node=abc").is_ok());
  EXPECT_FALSE(SubscriptionFilter::parse("sample=0").is_ok());
  EXPECT_FALSE(SubscriptionFilter::parse("node=5000000000").is_ok());  // > uint32
}

TEST(SubscriptionFilter, MatchesConjunction) {
  auto filter = SubscriptionFilter::parse("node=1-2,sensor=10");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_TRUE(filter.value().matches(make_record(1, 10, 0)));
  EXPECT_TRUE(filter.value().matches(make_record(2, 10, 0)));
  EXPECT_FALSE(filter.value().matches(make_record(3, 10, 0)));
  EXPECT_FALSE(filter.value().matches(make_record(1, 11, 0)));
}

TEST(SubscriptionFilter, SamplingIsDeterministicAndRoughlyProportional) {
  auto filter = SubscriptionFilter::parse("sample=8");
  ASSERT_TRUE(filter.is_ok());
  int kept = 0;
  std::vector<bool> first_run;
  for (SequenceNo seq = 0; seq < 4096; ++seq) {
    const bool keep = filter.value().matches(make_record(3, 7, 0, seq));
    first_run.push_back(keep);
    if (keep) ++kept;
  }
  // 1-in-8 with hash jitter: accept a generous band around 512.
  EXPECT_GT(kept, 256);
  EXPECT_LT(kept, 1024);
  for (SequenceNo seq = 0; seq < 4096; ++seq) {
    EXPECT_EQ(filter.value().matches(make_record(3, 7, 0, seq)), first_run[seq]);
  }
}

// The TP wire carries no per-record sequence numbers: every EXS-originated
// record reaches the ISM with sequence == 0. Sampling must still thin such
// a stream proportionally (regression: a hash of the id triple alone kept
// or dropped whole streams).
TEST(SubscriptionFilter, SamplingThinsStreamsWithConstantSequence) {
  auto filter = SubscriptionFilter::parse("sample=8");
  ASSERT_TRUE(filter.is_ok());
  for (NodeId node = 1; node <= 2; ++node) {
    int kept = 0;
    for (TimeMicros ts = 1'000'000; ts < 1'000'000 + 4096; ++ts) {
      if (filter.value().matches(make_record(node, 1, ts, /*seq=*/0))) ++kept;
    }
    EXPECT_GT(kept, 256) << "node " << node;
    EXPECT_LT(kept, 1024) << "node " << node;
  }
}

// ---- consumer wire messages --------------------------------------------------

TEST(ConsumerWire, SubscribeRoundTrip) {
  tp::SubscribeRequest msg;
  msg.name = "dash";
  msg.filter = "node=1,sample=4";
  msg.kind = tp::SubscriptionKind::aggregate;
  msg.queue_records = 512;
  msg.agg_window_us = 250'000;
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  tp::put_type(tp::MsgType::subscribe, enc);
  tp::encode_subscribe(msg, enc);
  xdr::Decoder dec(buf.view());
  auto type = tp::peek_type(dec);
  ASSERT_TRUE(type.is_ok());
  EXPECT_EQ(type.value(), tp::MsgType::subscribe);
  auto back = tp::decode_subscribe(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().name, msg.name);
  EXPECT_EQ(back.value().filter, msg.filter);
  EXPECT_EQ(back.value().kind, msg.kind);
  EXPECT_EQ(back.value().queue_records, msg.queue_records);
  EXPECT_EQ(back.value().agg_window_us, msg.agg_window_us);
  EXPECT_TRUE(dec.exhausted());
}

TEST(ConsumerWire, AckAndUnsubscribeRoundTrip) {
  tp::SubscribeAck ack{true, 42, "ok"};
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  tp::encode_subscribe_ack(ack, enc);
  xdr::Decoder dec(buf.view());
  auto back = tp::decode_subscribe_ack(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value().accepted, true);
  EXPECT_EQ(back.value().subscription_id, 42u);
  EXPECT_EQ(back.value().message, "ok");

  tp::Unsubscribe unsub{42};
  ByteBuffer buf2;
  xdr::Encoder enc2(buf2);
  tp::encode_unsubscribe(unsub, enc2);
  xdr::Decoder dec2(buf2.view());
  auto back2 = tp::decode_unsubscribe(dec2);
  ASSERT_TRUE(back2.is_ok());
  EXPECT_EQ(back2.value().subscription_id, 42u);
}

TEST(ConsumerWire, AggWindowRoundTrip) {
  tp::AggWindow window;
  window.window_start = 1'000'000;
  window.window_end = 2'000'000;
  tp::AggWindow::Key key;
  key.node = 3;
  key.sensor = 17;
  key.count = 120;
  key.gap_buckets = {{15, 40}, {31, 60}, {UINT64_MAX, 20}};
  window.keys.push_back(key);
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  tp::encode_agg_window(window, enc);
  xdr::Decoder dec(buf.view());
  auto back = tp::decode_agg_window(dec);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), window);
}

// ---- SinkRegistry mutation vs delivery (the remove() race regression) --------

class CountingSink final : public ism::Sink {
 public:
  Status accept(const sensors::Record&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return Status::ok();
  }
  [[nodiscard]] const char* name() const noexcept override { return "counting"; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
};

TEST(SinkRegistry, AddRemoveSafeAgainstConcurrentDelivery) {
  // Pre-fix, remove() erased from the same vector accept() was iterating on
  // the merger thread — a use-after-free under churn. The registry now swaps
  // COW snapshots; this hammers delivery while sinks come and go.
  ism::SinkRegistry registry;
  auto stable = std::make_shared<CountingSink>();
  ASSERT_TRUE(registry.add("stable", stable));

  std::atomic<bool> stop{false};
  std::thread delivery([&] {
    const Record record = make_record(1, 1, 1);
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.accept(record);
      (void)registry.flush();
    }
  });
  for (int round = 0; round < 2'000; ++round) {
    const std::string name = "churn-" + std::to_string(round % 7);
    (void)registry.add(name, std::make_shared<CountingSink>());
    (void)registry.remove(name);
  }
  // Under load the delivery thread may not have been scheduled yet; make
  // sure it observed at least one snapshot before stopping.
  const TimeMicros deadline = monotonic_micros() + 10'000'000;
  while (stable->count() == 0 && monotonic_micros() < deadline) sleep_micros(100);
  stop.store(true, std::memory_order_release);
  delivery.join();
  EXPECT_GT(stable->count(), 0u);
  EXPECT_EQ(registry.sink_count(), 1u);
  EXPECT_FALSE(registry.remove("churn-0"));
}

// ---- in-process subscriptions ------------------------------------------------

std::shared_ptr<ConsumerGateway> make_local_gateway() {
  GatewayConfig config;  // tcp disabled
  auto gateway = ConsumerGateway::create(config);
  EXPECT_TRUE(gateway.is_ok());
  return gateway.value();
}

TEST(GatewayLocal, DuplicateNamesRejectedAndUnsubscribeWorks) {
  auto gateway = make_local_gateway();
  ASSERT_TRUE(gateway->subscribe("a", std::make_shared<CountingSink>()));
  EXPECT_EQ(gateway->subscribe("a", std::make_shared<CountingSink>()).code(),
            Errc::already_exists);
  EXPECT_NE(gateway->find("a"), nullptr);
  EXPECT_TRUE(gateway->unsubscribe("a"));
  EXPECT_FALSE(gateway->unsubscribe("a"));
  EXPECT_EQ(gateway->find("a"), nullptr);
  EXPECT_EQ(gateway->subscriber_count(), 0u);
}

TEST(GatewayLocal, FilterPushdownMatchesPostHocFiltering) {
  // The acceptance bar for pushdown: a node-filtered subscriber's stream
  // must equal filtering the full stream after the fact.
  auto gateway = make_local_gateway();
  std::vector<Record> full;
  std::vector<Record> filtered;
  ASSERT_TRUE(gateway->subscribe(
      "all", std::make_shared<ism::CallbackSink>([&](const Record& r) { full.push_back(r); })));
  ism::SubscriptionOptions options;
  auto filter = SubscriptionFilter::parse("node=2,sensor=10-19");
  ASSERT_TRUE(filter.is_ok());
  options.filter = filter.value();
  ASSERT_TRUE(gateway->subscribe(
      "narrow",
      std::make_shared<ism::CallbackSink>([&](const Record& r) { filtered.push_back(r); }),
      options));

  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(gateway->accept(
        make_record(static_cast<NodeId>(i % 4), static_cast<SensorId>(i % 25), i, i)));
  }

  std::vector<Record> post_hoc;
  for (const Record& r : full) {
    if (options.filter.matches(r)) post_hoc.push_back(r);
  }
  ASSERT_EQ(filtered.size(), post_hoc.size());
  for (std::size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_EQ(filtered[i].node, post_hoc[i].node);
    EXPECT_EQ(filtered[i].sensor, post_hoc[i].sensor);
    EXPECT_EQ(filtered[i].timestamp, post_hoc[i].timestamp);
    EXPECT_EQ(filtered[i].sequence, post_hoc[i].sequence);
  }
  EXPECT_FALSE(filtered.empty());
  EXPECT_LT(filtered.size(), full.size());

  const auto stats = gateway->subscriber_stats();
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    if (s.name == "narrow") {
      EXPECT_EQ(s.matched, filtered.size());
      EXPECT_EQ(s.delivered, filtered.size());
    }
  }
}

TEST(GatewayLocal, AggregationWindowsCloseOnRecordTickAndDrain) {
  auto gateway = make_local_gateway();
  std::vector<tp::AggWindow> windows;
  ism::SubscriptionOptions options;
  options.agg_window_us = 1'000;
  ASSERT_TRUE(gateway->subscribe_aggregate(
      "agg", [&](const tp::AggWindow& w) { windows.push_back(w); }, options));

  // Two keys inside [0, 1000), then a record at 1500 closes that window.
  ASSERT_TRUE(gateway->accept(make_record(1, 5, 100)));
  ASSERT_TRUE(gateway->accept(make_record(1, 5, 300)));
  ASSERT_TRUE(gateway->accept(make_record(2, 6, 900)));
  EXPECT_TRUE(windows.empty());
  ASSERT_TRUE(gateway->accept(make_record(1, 5, 1'500)));
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].window_start, 0);
  EXPECT_EQ(windows[0].window_end, 1'000);
  ASSERT_EQ(windows[0].keys.size(), 2u);
  EXPECT_EQ(windows[0].keys[0].node, 1u);       // sorted by (node, sensor)
  EXPECT_EQ(windows[0].keys[0].sensor, 5u);
  EXPECT_EQ(windows[0].keys[0].count, 2u);
  ASSERT_FALSE(windows[0].keys[0].gap_buckets.empty());  // one 200us gap recorded
  EXPECT_EQ(windows[0].keys[1].node, 2u);
  EXPECT_EQ(windows[0].keys[1].count, 1u);

  // tick() below the open window's end must NOT close it; past it must.
  gateway->tick(1'900);
  EXPECT_EQ(windows.size(), 1u);
  gateway->tick(2'000);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].window_start, 1'000);
  EXPECT_EQ(windows[1].keys[0].count, 1u);

  // drain() seals whatever is open.
  ASSERT_TRUE(gateway->accept(make_record(3, 3, 2'100)));
  ASSERT_TRUE(gateway->drain());
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[2].keys[0].node, 3u);
  EXPECT_EQ(gateway->stats().agg_windows, 3u);
}

// ---- TCP fan-out -------------------------------------------------------------

std::shared_ptr<ConsumerGateway> make_tcp_gateway(GatewayConfig config = {}) {
  config.tcp_enabled = true;
  config.consumer_port = 0;
  config.poll_timeout_us = 2'000;
  auto gateway = ConsumerGateway::create(config);
  EXPECT_TRUE(gateway.is_ok());
  return gateway.value();
}

TEST(GatewayTcp, SubscribeStreamReceivesFilteredRecords) {
  auto gateway = make_tcp_gateway();
  ASSERT_GT(gateway->consumer_port(), 0);

  consumers::GatewayClient::Options options;
  options.name = "reader";
  options.filter = "node=1";
  auto client = consumers::GatewayClient::connect("127.0.0.1", gateway->consumer_port(), options);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  EXPECT_GT(client.value().subscription_id(), 0u);

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(gateway->accept(make_record(static_cast<NodeId>(i % 2), 7, i, i)));
  }

  std::vector<Record> got;
  const TimeMicros deadline = monotonic_micros() + 5'000'000;
  while (got.size() < 25 && monotonic_micros() < deadline) {
    auto polled = client.value().poll();
    ASSERT_TRUE(polled.is_ok()) << polled.status().to_string();
    if (polled.value().has_value()) {
      got.push_back(*polled.value());
    } else {
      sleep_micros(1'000);
    }
  }
  ASSERT_EQ(got.size(), 25u);  // node=1 half only, in order
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, 1u);
    EXPECT_EQ(got[i].timestamp, static_cast<TimeMicros>(2 * i + 1));
  }

  // Unsubscribe stops the stream (later records are not delivered).
  ASSERT_TRUE(client.value().unsubscribe());
  const TimeMicros quiesce = monotonic_micros() + 200'000;
  while (monotonic_micros() < quiesce) sleep_micros(5'000);
  ASSERT_TRUE(gateway->accept(make_record(1, 7, 999)));
  sleep_micros(50'000);
  auto after = client.value().poll();
  ASSERT_TRUE(after.is_ok());
  EXPECT_FALSE(after.value().has_value());
}

TEST(GatewayTcp, DuplicateActiveNameRejected) {
  auto gateway = make_tcp_gateway();
  consumers::GatewayClient::Options options;
  options.name = "dup";
  auto first = consumers::GatewayClient::connect("127.0.0.1", gateway->consumer_port(), options);
  ASSERT_TRUE(first.is_ok());
  auto second = consumers::GatewayClient::connect("127.0.0.1", gateway->consumer_port(), options);
  EXPECT_FALSE(second.is_ok());
}

TEST(GatewayTcp, AggregateSubscriptionStreamsWindows) {
  auto gateway = make_tcp_gateway();
  consumers::GatewayClient::Options options;
  options.name = "agg-reader";
  options.kind = tp::SubscriptionKind::aggregate;
  options.agg_window_us = 1'000;
  auto client = consumers::GatewayClient::connect("127.0.0.1", gateway->consumer_port(), options);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();

  ASSERT_TRUE(gateway->accept(make_record(1, 5, 100)));
  ASSERT_TRUE(gateway->accept(make_record(1, 5, 600)));
  ASSERT_TRUE(gateway->accept(make_record(1, 5, 1'700)));  // closes [0, 1000)

  std::optional<tp::AggWindow> window;
  const TimeMicros deadline = monotonic_micros() + 5'000'000;
  while (!window.has_value() && monotonic_micros() < deadline) {
    auto polled = client.value().poll_agg();
    ASSERT_TRUE(polled.is_ok()) << polled.status().to_string();
    if (polled.value().has_value()) {
      window = polled.value();
    } else {
      sleep_micros(1'000);
    }
  }
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->window_start, 0);
  EXPECT_EQ(window->window_end, 1'000);
  ASSERT_EQ(window->keys.size(), 1u);
  EXPECT_EQ(window->keys[0].count, 2u);
}

TEST(GatewayTcp, SlowConsumerSeesDropOldestThenEvictionFastConsumerLosesNothing) {
  GatewayConfig config;
  config.outbox_bytes = 8'192;       // tiny outbox so back-pressure reaches the queue
  config.overrun_grace_us = 100'000; // evict after 100ms of sustained overrun
  auto gateway = make_tcp_gateway(config);

  consumers::GatewayClient::Options slow_options;
  slow_options.name = "slow";
  slow_options.queue_records = 8;
  auto slow = consumers::GatewayClient::connect("127.0.0.1", gateway->consumer_port(),
                                                slow_options);
  ASSERT_TRUE(slow.is_ok());

  consumers::GatewayClient::Options fast_options;
  fast_options.name = "fast";
  fast_options.queue_records = 65'536;
  auto fast = consumers::GatewayClient::connect("127.0.0.1", gateway->consumer_port(),
                                                fast_options);
  ASSERT_TRUE(fast.is_ok());

  // Fat records fill the slow reader's socket buffers quickly; it never
  // polls, so the gateway's outbox jams, its queue overruns (drop-oldest),
  // and after the grace period it is evicted. The fast reader drains
  // everything meanwhile and must not lose a record.
  Record fat = make_record(1, 1, 0);
  fat.fields.clear();
  for (int i = 0; i < 8; ++i) {
    fat.fields.push_back(Field::str(std::string(sensors::kMaxStringFieldBytes, 'x')));
  }

  std::uint64_t pushed = 0;
  std::uint64_t fast_got = 0;
  const TimeMicros deadline = monotonic_micros() + 20'000'000;
  while (gateway->stats().tcp_evicted == 0 && monotonic_micros() < deadline) {
    for (int i = 0; i < 32; ++i) {
      fat.timestamp = static_cast<TimeMicros>(pushed);
      fat.sequence = pushed;
      ASSERT_TRUE(gateway->accept(fat));
      ++pushed;
    }
    for (;;) {
      auto polled = fast.value().poll();
      ASSERT_TRUE(polled.is_ok()) << polled.status().to_string();
      if (!polled.value().has_value()) break;
      EXPECT_EQ(polled.value()->timestamp, static_cast<TimeMicros>(fast_got));
      ++fast_got;
    }
    sleep_micros(1'000);
  }
  EXPECT_EQ(gateway->stats().tcp_evicted, 1u);
  EXPECT_EQ(gateway->stats().lane_drops, 0u);

  // Drain the fast reader to completion: zero loss, strict order.
  const TimeMicros drain_deadline = monotonic_micros() + 10'000'000;
  while (fast_got < pushed && monotonic_micros() < drain_deadline) {
    auto polled = fast.value().poll();
    ASSERT_TRUE(polled.is_ok()) << polled.status().to_string();
    if (!polled.value().has_value()) {
      sleep_micros(1'000);
      continue;
    }
    EXPECT_EQ(polled.value()->timestamp, static_cast<TimeMicros>(fast_got));
    ++fast_got;
  }
  EXPECT_EQ(fast_got, pushed);

  // The slow subscriber's final counters survive its disconnection: records
  // were dropped oldest-first and the drop count is visible — the same
  // numbers register_metrics() exposes as ism.gateway.sub.slow.* in the
  // 0xFF01 stream.
  bool found_slow = false;
  std::uint64_t slow_dropped = 0;
  for (const auto& s : gateway->subscriber_stats()) {
    if (s.name != "slow") continue;
    found_slow = true;
    EXPECT_TRUE(s.tcp);
    EXPECT_FALSE(s.connected);
    EXPECT_GT(s.dropped, 0u);
    slow_dropped = s.dropped;
  }
  ASSERT_TRUE(found_slow);

  metrics::MetricsRegistry registry;
  gateway->register_metrics(registry);
  bool metric_seen = false;
  for (const auto& sample : registry.snapshot()) {
    if (sample.name == "ism.gateway.sub.slow.dropped") {
      metric_seen = true;
      EXPECT_EQ(sample.value, slow_dropped);
    }
  }
  EXPECT_TRUE(metric_seen);

  // The slow client's socket eventually reports the hangup.
  const TimeMicros close_deadline = monotonic_micros() + 5'000'000;
  bool saw_close = false;
  while (!saw_close && monotonic_micros() < close_deadline) {
    auto polled = slow.value().poll();
    if (!polled.is_ok()) {
      EXPECT_EQ(polled.status().code(), Errc::closed);
      saw_close = true;
    }
    // Keep draining queued frames; eviction already happened server-side.
  }
  EXPECT_TRUE(saw_close);
}

TEST(GatewayTcp, DrainFlushesQueuedFramesToConnectedConsumers) {
  auto gateway = make_tcp_gateway();
  consumers::GatewayClient::Options options;
  options.name = "drainer";
  auto client = consumers::GatewayClient::connect("127.0.0.1", gateway->consumer_port(), options);
  ASSERT_TRUE(client.is_ok());

  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(gateway->accept(make_record(1, 1, i, i)));
  }
  ASSERT_TRUE(gateway->drain());

  std::uint64_t got = 0;
  const TimeMicros deadline = monotonic_micros() + 5'000'000;
  while (got < 200 && monotonic_micros() < deadline) {
    auto polled = client.value().poll();
    ASSERT_TRUE(polled.is_ok()) << polled.status().to_string();
    if (polled.value().has_value()) {
      ++got;
    } else {
      sleep_micros(1'000);
    }
  }
  EXPECT_EQ(got, 200u);
}

}  // namespace
}  // namespace brisk
