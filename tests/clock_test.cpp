// Clock substrate and synchronization algorithm tests: SimClock drift
// model, Cristian skew estimation, the baseline Cristian sync, the BRISK
// modified sync (reference election, above-average advancement, 0.7
// conservative fraction), and SyncService round scheduling.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "clock/brisk_sync.hpp"
#include "clock/clock.hpp"
#include "clock/cristian_sync.hpp"
#include "clock/sim_clock.hpp"
#include "clock/skew_estimator.hpp"
#include "clock/sync_service.hpp"
#include "sensors/field.hpp"
#include "sensors/record.hpp"
#include "sim/channel.hpp"

namespace brisk::clk {
namespace {

// ---- clocks ----------------------------------------------------------------------

TEST(ManualClockTest, SetAndAdvance) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(7);
  EXPECT_EQ(clock.now(), 7);
}

TEST(SystemClockTest, TracksWallTime) {
  SystemClock clock;
  const TimeMicros a = clock.now();
  const TimeMicros b = clock.now();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 1'577'836'800'000'000LL);  // after 2020
}

TEST(SimClockTest, InitialOffsetApplied) {
  ManualClock reference(1'000'000);
  SimClock clock(reference, {.initial_offset_us = 2'500});
  EXPECT_EQ(clock.now(), 1'002'500);
  EXPECT_EQ(clock.true_skew(), 2'500);
}

TEST(SimClockTest, DriftAccumulatesWithReferenceTime) {
  ManualClock reference(0);
  SimClock clock(reference, {.initial_offset_us = 0, .drift_ppm = 100.0});
  reference.advance(10'000'000);  // 10 s at +100 ppm → +1000 µs
  EXPECT_EQ(clock.true_skew(), 1'000);
  EXPECT_EQ(clock.now(), 10'001'000);
}

TEST(SimClockTest, NegativeDrift) {
  ManualClock reference(0);
  SimClock clock(reference, {.drift_ppm = -50.0});
  reference.advance(2'000'000);
  EXPECT_EQ(clock.true_skew(), -100);
}

TEST(SimClockTest, AdjustShiftsReadings) {
  ManualClock reference(0);
  SimClock clock(reference, {.initial_offset_us = -700});
  clock.adjust(700);
  EXPECT_EQ(clock.true_skew(), 0);
  EXPECT_EQ(clock.total_adjustment(), 700);
}

TEST(SimClockTest, JitterBoundedAndExcludedFromTrueSkew) {
  ManualClock reference(1'000'000);
  SimClock clock(reference, {.initial_offset_us = 0, .read_jitter_us = 25, .seed = 3});
  for (int i = 0; i < 200; ++i) {
    const TimeMicros delta = clock.now() - reference.now();
    EXPECT_LE(std::llabs(delta), 25);
  }
  EXPECT_EQ(clock.true_skew(), 0);
}

// ---- skew estimation ----------------------------------------------------------------

/// Scripted transport: plays back canned samples.
class ScriptedTransport final : public SyncTransport {
 public:
  std::vector<std::vector<PollSample>> scripts;  // per slave, consumed FIFO
  std::vector<TimeMicros> adjustments;

  [[nodiscard]] std::size_t slave_count() const noexcept override { return scripts.size(); }
  Result<PollSample> poll(std::size_t index) override {
    auto& queue = scripts.at(index);
    if (queue.empty()) return Status(Errc::io_error, "script exhausted");
    PollSample sample = queue.front();
    queue.erase(queue.begin());
    return sample;
  }
  Status adjust(std::size_t index, TimeMicros delta) override {
    adjustments.resize(scripts.size(), 0);
    adjustments.at(index) += delta;
    return Status::ok();
  }
};

TEST(PollSampleTest, SkewEstimateFormula) {
  // Master sends at 1000, slave reads 5000, master receives at 1200:
  // rtt 200, estimate = 5000 − (1000 + 100) = 3900.
  PollSample sample{1'000, 5'000, 1'200};
  EXPECT_EQ(sample.round_trip(), 200);
  EXPECT_EQ(sample.skew_estimate(), 3'900);
}

TEST(SkewEstimatorTest, PicksMinimumRttSample) {
  ScriptedTransport transport;
  transport.scripts = {{
      {0, 1'000, 400},   // rtt 400, estimate 800
      {0, 1'000, 100},   // rtt 100, estimate 950  ← tightest bound
      {0, 1'000, 300},   // rtt 300, estimate 850
  }};
  auto estimate = estimate_skew(transport, 0, 3);
  ASSERT_TRUE(estimate.is_ok());
  EXPECT_EQ(estimate.value().best_rtt, 100);
  EXPECT_EQ(estimate.value().skew, 950);
  EXPECT_EQ(estimate.value().samples, 3u);
}

TEST(SkewEstimatorTest, ToleratesPartialFailures) {
  ScriptedTransport transport;
  transport.scripts = {{{0, 500, 100}}};  // only one sample available
  auto estimate = estimate_skew(transport, 0, 4);
  ASSERT_TRUE(estimate.is_ok());
  EXPECT_EQ(estimate.value().samples, 1u);
}

TEST(SkewEstimatorTest, AllPollsFailedIsError) {
  ScriptedTransport transport;
  transport.scripts = {{}};
  EXPECT_FALSE(estimate_skew(transport, 0, 3).is_ok());
}

TEST(SkewEstimatorTest, ZeroPollsRejected) {
  ScriptedTransport transport;
  transport.scripts = {{}};
  EXPECT_EQ(estimate_skew(transport, 0, 0).status().code(), Errc::invalid_argument);
}

// ---- simulated world helpers -----------------------------------------------------------

struct SimWorld {
  ManualClock reference{0};
  sim::LatencyModel model;
  sim::SimSyncTransport transport;
  std::vector<std::unique_ptr<SimClock>> clocks;

  explicit SimWorld(const sim::LatencyModelConfig& latency = {.base_us = 100,
                                                              .jitter_us = 20,
                                                              .seed = 11})
      : model(latency), transport(reference, reference, model) {}

  SimClock& add_clock(TimeMicros offset, double drift_ppm = 0.0, std::uint64_t seed = 1) {
    clocks.push_back(std::make_unique<SimClock>(
        reference,
        SimClockConfig{.initial_offset_us = offset, .drift_ppm = drift_ppm, .seed = seed}));
    transport.add_slave(clocks.back().get());
    return *clocks.back();
  }
};

// ---- Cristian baseline -------------------------------------------------------------------

TEST(CristianSyncTest, DrivesSlavesTowardMaster) {
  SimWorld world;
  world.add_clock(10'000);
  world.add_clock(-8'000);
  CristianSync sync(CristianConfig{.polls_per_round = 4});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  // After one round both clocks should be within jitter+latency error of
  // the master (0 skew).
  EXPECT_LT(std::llabs(world.clocks[0]->true_skew()), 200);
  EXPECT_LT(std::llabs(world.clocks[1]->true_skew()), 200);
}

TEST(CristianSyncTest, DeadbandLeavesSmallSkewsAlone) {
  SimWorld world(sim::LatencyModelConfig{.base_us = 10, .jitter_us = 0, .seed = 5});
  world.add_clock(50);
  CristianSync sync(CristianConfig{.polls_per_round = 2, .deadband_us = 1'000});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().slaves[0].correction, 0);
  EXPECT_EQ(world.clocks[0]->true_skew(), 50);
}

TEST(CristianSyncTest, ReportsPerSlaveEstimates) {
  SimWorld world(sim::LatencyModelConfig{.base_us = 100, .jitter_us = 0, .seed = 2});
  world.add_clock(5'000);
  CristianSync sync(CristianConfig{.polls_per_round = 1});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report.value().slaves.size(), 1u);
  EXPECT_TRUE(report.value().slaves[0].polled_ok);
  // Symmetric latency → estimate should be exact here.
  EXPECT_EQ(report.value().slaves[0].estimated_skew, 5'000);
  EXPECT_EQ(report.value().reference_slave, -1);
}

// ---- BRISK modified sync --------------------------------------------------------------------

TEST(BriskSyncTest, ElectsMostAheadClockAsReference) {
  SimWorld world(sim::LatencyModelConfig{.base_us = 50, .jitter_us = 0, .seed = 3});
  world.add_clock(1'000);
  world.add_clock(9'000);  // most ahead
  world.add_clock(-2'000);
  BriskSync sync(BriskSyncConfig{.polls_per_round = 2});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().reference_slave, 1);
}

TEST(BriskSyncTest, ReferenceClockIsNeverAdjusted) {
  SimWorld world(sim::LatencyModelConfig{.base_us = 50, .jitter_us = 0, .seed = 3});
  world.add_clock(9'000);
  world.add_clock(0);
  BriskSync sync(BriskSyncConfig{.polls_per_round = 2});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().slaves[0].correction, 0);
  EXPECT_EQ(world.clocks[0]->true_skew(), 9'000) << "reference must not move";
}

TEST(BriskSyncTest, ClocksOnlyAdvanceNeverRetreat) {
  SimWorld world;
  world.add_clock(20'000);
  world.add_clock(-5'000);
  world.add_clock(3'000);
  BriskSync sync(BriskSyncConfig{.polls_per_round = 4});
  for (int round = 0; round < 5; ++round) {
    std::vector<TimeMicros> before;
    before.reserve(world.clocks.size());
    for (auto& c : world.clocks) before.push_back(c->total_adjustment());
    ASSERT_TRUE(sync.run_round(world.transport).is_ok());
    for (std::size_t i = 0; i < world.clocks.size(); ++i) {
      EXPECT_GE(world.clocks[i]->total_adjustment(), before[i])
          << "slave " << i << " round " << round;
    }
    world.reference.advance(100'000);
  }
}

TEST(BriskSyncTest, ConvergesSlavesToEachOtherNotToMaster) {
  // All slaves far ahead of the master; BRISK should bring them together
  // near the most-ahead clock, NOT drag them to the master's 0.
  SimWorld world(sim::LatencyModelConfig{.base_us = 100, .jitter_us = 10, .seed = 17});
  world.add_clock(500'000);
  world.add_clock(520'000);
  world.add_clock(480'000);
  BriskSync sync(BriskSyncConfig{.polls_per_round = 4, .avg_threshold_us = 100});
  for (int round = 0; round < 12; ++round) {
    ASSERT_TRUE(sync.run_round(world.transport).is_ok());
    world.reference.advance(1'000'000);
  }
  EXPECT_LT(world.transport.max_pairwise_skew(), 1'000)
      << "ensemble should agree within ~noise";
  for (auto& c : world.clocks) {
    EXPECT_GT(c->true_skew(), 400'000) << "nobody is pulled toward the master";
  }
}

TEST(BriskSyncTest, ConservativeFractionBelowThreshold) {
  // Two slaves 1000 µs apart with a huge threshold: the laggard's relative
  // skew equals the average (it is the only non-reference slave), so the
  // at-or-above rule moves it by the 0.7 conservative fraction.
  SimWorld world(sim::LatencyModelConfig{.base_us = 10, .jitter_us = 0, .seed = 9});
  world.add_clock(1'000);
  world.add_clock(0);
  BriskSync sync(BriskSyncConfig{
      .polls_per_round = 1, .avg_threshold_us = 1'000'000, .conservative_fraction = 0.7});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().slaves[1].correction, 700);

  SimWorld world3(sim::LatencyModelConfig{.base_us = 10, .jitter_us = 0, .seed = 9});
  world3.add_clock(1'000);
  world3.add_clock(900);   // rel 100 < avg 550 → untouched
  world3.add_clock(0);     // rel 1000 > avg 550 → corrected by 0.7×1000
  BriskSync sync3(BriskSyncConfig{
      .polls_per_round = 1, .avg_threshold_us = 1'000'000, .conservative_fraction = 0.7});
  auto report3 = sync3.run_round(world3.transport);
  ASSERT_TRUE(report3.is_ok());
  EXPECT_EQ(report3.value().slaves[1].correction, 0);
  EXPECT_EQ(report3.value().slaves[2].correction, 700);
}

TEST(BriskSyncTest, FullCorrectionAboveThreshold) {
  SimWorld world(sim::LatencyModelConfig{.base_us = 10, .jitter_us = 0, .seed = 9});
  world.add_clock(10'000);
  world.add_clock(9'500);  // rel 500 < avg 5250
  world.add_clock(0);      // rel 10000 > avg 5250 → full correction
  BriskSync sync(BriskSyncConfig{.polls_per_round = 1, .avg_threshold_us = 100});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().slaves[2].correction, 10'000);
  EXPECT_EQ(world.clocks[2]->true_skew(), 10'000);
}

TEST(BriskSyncTest, SingleSlaveIsStable) {
  SimWorld world;
  world.add_clock(4'000);
  BriskSync sync(BriskSyncConfig{.polls_per_round = 2});
  auto report = sync.run_round(world.transport);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(world.clocks[0]->true_skew(), 4'000) << "nothing to synchronize against";
}

TEST(BriskSyncTest, NoSlavesIsError) {
  SimWorld world;
  BriskSync sync(BriskSyncConfig{});
  EXPECT_FALSE(sync.run_round(world.transport).is_ok());
}

TEST(BriskSyncTest, HandlesDriftingClocksOverManyRounds) {
  SimWorld world(sim::LatencyModelConfig{.base_us = 150, .jitter_us = 30, .seed = 23});
  world.add_clock(0, +80.0, 31);
  world.add_clock(5'000, -40.0, 32);
  world.add_clock(-3'000, +20.0, 33);
  world.add_clock(1'000, -90.0, 34);
  BriskSync sync(BriskSyncConfig{.polls_per_round = 4, .avg_threshold_us = 100});
  // 5 s rounds for 2 simulated minutes.
  for (int round = 0; round < 24; ++round) {
    ASSERT_TRUE(sync.run_round(world.transport).is_ok());
    world.reference.advance(5'000'000);
  }
  // Drift between rounds is ≤ 5 s × 170 ppm ≈ 850 µs; after correction the
  // ensemble must stay within that order of magnitude.
  EXPECT_LT(world.transport.max_pairwise_skew(), 2'000);
}

// ---- SyncService -----------------------------------------------------------------------------

TEST(SyncServiceTest, RunsRoundOnPeriod) {
  SimWorld world;
  world.add_clock(1'000);
  SyncServiceConfig config;
  config.period_us = 5'000'000;
  SyncService service(config, world.transport, world.reference);
  EXPECT_FALSE(service.maybe_run_round()) << "period not elapsed yet";
  world.reference.advance(5'000'001);
  EXPECT_TRUE(service.maybe_run_round());
  EXPECT_EQ(service.rounds_run(), 1u);
  EXPECT_FALSE(service.maybe_run_round()) << "period restarts";
}

TEST(SyncServiceTest, ExtraRoundOnRequest) {
  SimWorld world;
  world.add_clock(1'000);
  SyncServiceConfig config;
  config.period_us = 60'000'000;
  SyncService service(config, world.transport, world.reference);
  service.request_extra_round();
  EXPECT_TRUE(service.maybe_run_round()) << "tachyon-triggered round is immediate";
  EXPECT_EQ(service.extra_rounds_run(), 1u);
  EXPECT_FALSE(service.maybe_run_round());
}

TEST(SyncServiceTest, ObserverSeesReports) {
  SimWorld world;
  world.add_clock(2'000);
  SyncServiceConfig config;
  config.period_us = 1;
  SyncService service(config, world.transport, world.reference);
  int observed = 0;
  service.set_observer([&](const RoundReport& report) {
    ++observed;
    EXPECT_EQ(report.slaves.size(), 1u);
  });
  world.reference.advance(10);
  EXPECT_TRUE(service.maybe_run_round());
  EXPECT_EQ(observed, 1);
}

TEST(SyncServiceTest, CristianAlgorithmSelectable) {
  SimWorld world(sim::LatencyModelConfig{.base_us = 10, .jitter_us = 0, .seed = 4});
  world.add_clock(3'000);
  SyncServiceConfig config;
  config.algorithm = SyncAlgorithm::cristian;
  config.period_us = 1;
  SyncService service(config, world.transport, world.reference);
  world.reference.advance(10);
  ASSERT_TRUE(service.maybe_run_round());
  EXPECT_LT(std::llabs(world.clocks[0]->true_skew()), 100)
      << "cristian pulls the slave to the master";
}

// ---- parameterized: asymmetric latency bounds both algorithms -----------------------------------

class AsymmetrySweep : public ::testing::TestWithParam<TimeMicros> {};

TEST_P(AsymmetrySweep, EnsembleDispersionBoundedByAsymmetry) {
  // With asymmetric network delay the rtt/2 assumption is off by
  // asymmetry/2 per estimate; the ensemble dispersion after sync should
  // stay within a few times that bias, since all slaves share it.
  SimWorld world(sim::LatencyModelConfig{
      .base_us = 100, .jitter_us = 10, .asymmetry_us = GetParam(), .seed = 29});
  world.add_clock(10'000);
  world.add_clock(-10'000);
  world.add_clock(0);
  BriskSync sync(BriskSyncConfig{.polls_per_round = 4, .avg_threshold_us = 100});
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(sync.run_round(world.transport).is_ok());
    world.reference.advance(1'000'000);
  }
  EXPECT_LT(world.transport.max_pairwise_skew(), 500 + GetParam());
}

INSTANTIATE_TEST_SUITE_P(Asymmetries, AsymmetrySweep, ::testing::Values(0, 100, 500, 2'000));

// ---- federated (two-hop) clock composition ------------------------------------------------
//
// In a relay tree each hop estimates skew against its parent independently
// and records are shifted once per hop (relay applies its parent-relative
// correction before forwarding). Cristian's bound says each estimate is
// within rtt/2 of truth, so a two-hop composition must land within the SUM
// of the per-hop bounds — that is the invariant that makes per-hop
// corrections safe to stack instead of requiring every leaf to sync
// directly with the root.

TEST(FederatedSyncTest, TwoHopSkewEstimatesComposeWithinSummedBounds) {
  ManualClock reference{1'000'000};  // the root's timebase is true time here
  sim::LatencyModel model({.base_us = 100, .jitter_us = 20, .seed = 7});
  SimClock relay(reference,
                 SimClockConfig{.initial_offset_us = 3'000, .drift_ppm = 0.0, .seed = 1});
  SimClock leaf(reference,
                SimClockConfig{.initial_offset_us = 5'000, .drift_ppm = 0.0, .seed = 2});

  // Hop 1: the relay polls its leaf EXS (true leaf-vs-relay skew: 2000).
  sim::SimSyncTransport hop1(reference, relay, model);
  hop1.add_slave(&leaf);
  auto est1 = estimate_skew(hop1, 0, 8);
  ASSERT_TRUE(est1.is_ok());
  const TimeMicros bound1 = est1.value().best_rtt / 2;
  EXPECT_LE(std::llabs(est1.value().skew - 2'000), bound1);

  // Hop 2: the root polls the relay (true relay-vs-root skew: 3000).
  sim::SimSyncTransport hop2(reference, reference, model);
  hop2.add_slave(&relay);
  auto est2 = estimate_skew(hop2, 0, 8);
  ASSERT_TRUE(est2.is_ok());
  const TimeMicros bound2 = est2.value().best_rtt / 2;
  EXPECT_LE(std::llabs(est2.value().skew - 3'000), bound2);

  // Composed leaf-vs-root estimate: within the sum of per-hop bounds.
  EXPECT_LE(std::llabs((est1.value().skew + est2.value().skew) - 5'000), bound1 + bound2);

  // A record stamped by the leaf, shifted hop by hop exactly the way the
  // relay tier does it (apply_time_delta at each hop), lands within the
  // summed bound of its true root-time.
  sensors::Record record;
  record.node = 4;
  record.sensor = 1;
  record.timestamp = leaf.now();
  const TimeMicros true_root_time = record.timestamp - 5'000;
  sensors::apply_time_delta(record, -est1.value().skew);  // leaf → relay timebase
  sensors::apply_time_delta(record, -est2.value().skew);  // relay → root timebase
  EXPECT_LE(std::llabs(record.timestamp - true_root_time), bound1 + bound2);
}

TEST(FederatedSyncTest, SequentialTimeDeltasEqualTheirSum) {
  sensors::Record base;
  base.node = 7;
  base.sensor = 2;
  base.sequence = 11;
  base.timestamp = 10'000;
  base.fields = {sensors::Field::u64(99), sensors::Field::ts(4'000),
                 sensors::Field::reason(5)};

  sensors::Record hops = base;
  sensors::apply_time_delta(hops, 250);     // first hop's correction
  sensors::apply_time_delta(hops, -1'750);  // second hop's correction
  sensors::Record flat = base;
  sensors::apply_time_delta(flat, 250 - 1'750);
  EXPECT_EQ(hops, flat) << "per-hop deltas must compose additively";

  // Embedded timestamps shift with the record; everything else is untouched.
  EXPECT_EQ(hops.timestamp, 10'000 + 250 - 1'750);
  EXPECT_EQ(hops.fields[1].as_timestamp(), 4'000 + 250 - 1'750);
  EXPECT_EQ(hops.fields[0].as_unsigned(), 99u);
  EXPECT_EQ(hops.reason_id(), std::optional<CausalId>{5});

  sensors::Record zero = base;
  sensors::apply_time_delta(zero, 0);
  EXPECT_EQ(zero, base) << "zero delta is the identity";
}

}  // namespace
}  // namespace brisk::clk
