// LIS / external-sensor tests: batching-with-latency-control policies and
// the socket-free ExsCore (ring draining, clock-correction application,
// sync slave protocol, hello/bye).
#include <gtest/gtest.h>

#include <cstring>

#include "clock/clock.hpp"
#include "lis/batcher.hpp"
#include "lis/external_sensor.hpp"
#include "tp/replay_buffer.hpp"
#include "sensors/sensor.hpp"
#include "tp/batch.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::lis {
namespace {

using sensors::Field;
using sensors::Record;
using tp::ReplayBuffer;

Record test_record(TimeMicros ts) {
  Record record;
  record.sensor = 1;
  record.timestamp = ts;
  record.fields = {Field::i32(1), Field::i32(2)};
  return record;
}

ByteBuffer native_of(const Record& record) {
  auto encoded = sensors::encode_native(record);
  EXPECT_TRUE(encoded.is_ok());
  return std::move(encoded).value();
}

tp::Batch parse_batch(const ByteBuffer& payload) {
  xdr::Decoder dec(payload.view());
  auto type = tp::peek_type(dec);
  EXPECT_TRUE(type.is_ok());
  EXPECT_EQ(type.value(), tp::MsgType::data_batch);
  auto batch = tp::decode_batch(dec);
  EXPECT_TRUE(batch.is_ok()) << batch.status().to_string();
  return std::move(batch).value();
}

// ---- Batcher ------------------------------------------------------------------------

class BatcherTest : public ::testing::Test {
 protected:
  BatcherTest() { config_.node = 5; }

  Batcher make_batcher() {
    return Batcher(config_, clock_, [this](ByteBuffer payload) {
      sent_.push_back(std::move(payload));
      return Status::ok();
    });
  }

  ExsConfig config_;
  clk::ManualClock clock_{1'000'000};
  std::vector<ByteBuffer> sent_;
};

TEST_F(BatcherTest, FlushAtRecordLimit) {
  config_.batch_max_records = 3;
  config_.batch_max_age_us = 1'000'000'000;
  Batcher batcher = make_batcher();
  auto native = native_of(test_record(10));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batcher.add_native_record(native.view(), 0));
  }
  ASSERT_EQ(sent_.size(), 1u) << "3rd record must trigger the flush";
  EXPECT_EQ(parse_batch(sent_[0]).header.record_count, 3u);
  EXPECT_EQ(batcher.pending_records(), 0u);
}

TEST_F(BatcherTest, FlushAtByteLimit) {
  config_.batch_max_records = 1'000'000;
  config_.batch_max_bytes = 128;
  config_.batch_max_age_us = 1'000'000'000;
  Batcher batcher = make_batcher();
  auto native = native_of(test_record(10));
  for (int i = 0; i < 20 && sent_.empty(); ++i) {
    ASSERT_TRUE(batcher.add_native_record(native.view(), 0));
  }
  ASSERT_FALSE(sent_.empty());
  EXPECT_LE(sent_[0].size(), 128u + 64u) << "batch roughly respects the byte limit";
  EXPECT_GE(parse_batch(sent_[0]).header.record_count, 1u);
}

TEST_F(BatcherTest, AgeBasedFlush) {
  config_.batch_max_age_us = 5'000;
  Batcher batcher = make_batcher();
  auto native = native_of(test_record(10));
  ASSERT_TRUE(batcher.add_native_record(native.view(), 0));
  ASSERT_TRUE(batcher.maybe_flush());
  EXPECT_TRUE(sent_.empty()) << "too young to flush";
  clock_.advance(6'000);
  ASSERT_TRUE(batcher.maybe_flush());
  ASSERT_EQ(sent_.size(), 1u);
}

TEST_F(BatcherTest, EmptyBatchNeverSent) {
  Batcher batcher = make_batcher();
  ASSERT_TRUE(batcher.flush());
  ASSERT_TRUE(batcher.maybe_flush());
  clock_.advance(1'000'000);
  ASSERT_TRUE(batcher.maybe_flush());
  EXPECT_TRUE(sent_.empty());
}

TEST_F(BatcherTest, CorrectionAppliedToRecords) {
  Batcher batcher = make_batcher();
  ASSERT_TRUE(batcher.add_native_record(native_of(test_record(1'000)).view(), 250));
  ASSERT_TRUE(batcher.flush());
  ASSERT_EQ(sent_.size(), 1u);
  EXPECT_EQ(parse_batch(sent_[0]).records[0].timestamp, 1'250);
}

TEST_F(BatcherTest, DropCounterTravelsInHeader) {
  Batcher batcher = make_batcher();
  batcher.set_ring_dropped_total(17);
  ASSERT_TRUE(batcher.add_native_record(native_of(test_record(1)).view(), 0));
  ASSERT_TRUE(batcher.flush());
  EXPECT_EQ(parse_batch(sent_[0]).header.ring_dropped_total, 17u);
}

TEST_F(BatcherTest, StatsTrackBatchesAndBytes) {
  Batcher batcher = make_batcher();
  ASSERT_TRUE(batcher.add_native_record(native_of(test_record(1)).view(), 0));
  ASSERT_TRUE(batcher.flush());
  ASSERT_TRUE(batcher.add_native_record(native_of(test_record(2)).view(), 0));
  ASSERT_TRUE(batcher.flush());
  EXPECT_EQ(batcher.batches_sent(), 2u);
  EXPECT_EQ(batcher.bytes_sent(), sent_[0].size() + sent_[1].size());
}

TEST_F(BatcherTest, BatchSequenceNumbersIncrease) {
  Batcher batcher = make_batcher();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batcher.add_native_record(native_of(test_record(i)).view(), 0));
    ASSERT_TRUE(batcher.flush());
  }
  EXPECT_EQ(parse_batch(sent_[0]).header.batch_seq, 0u);
  EXPECT_EQ(parse_batch(sent_[1]).header.batch_seq, 1u);
  EXPECT_EQ(parse_batch(sent_[2]).header.batch_seq, 2u);
}

// ---- ExsConfig validation --------------------------------------------------------------

TEST(ExsConfigTest, ValidatesKnobs) {
  ExsConfig config;
  EXPECT_TRUE(config.validate());
  config.batch_max_records = 0;
  EXPECT_FALSE(config.validate());
  config = ExsConfig{};
  config.select_timeout_us = 0;
  EXPECT_FALSE(config.validate());
  config = ExsConfig{};
  config.drain_burst = 0;
  EXPECT_FALSE(config.validate());
}

// ---- ExsCore ----------------------------------------------------------------------------

class ExsCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(shm::MultiRing::region_size(4, 64 * 1024));
    auto rings = shm::MultiRing::init(memory_.data(), 4, 64 * 1024);
    ASSERT_TRUE(rings.is_ok());
    rings_ = rings.value();
    config_.node = 3;
    config_.batch_max_age_us = 0;  // flush every cycle
    core_ = std::make_unique<ExsCore>(config_, rings_, clock_, [this](ByteBuffer payload) {
      frames_.push_back(std::move(payload));
      return Status::ok();
    });
  }

  /// Frames of a given type, decoded as batches.
  std::vector<tp::Batch> sent_batches() {
    std::vector<tp::Batch> out;
    for (const ByteBuffer& frame : frames_) {
      xdr::Decoder dec(frame.view());
      auto type = tp::peek_type(dec);
      EXPECT_TRUE(type.is_ok());
      if (type.value() != tp::MsgType::data_batch) continue;
      auto batch = tp::decode_batch(dec);
      EXPECT_TRUE(batch.is_ok());
      out.push_back(std::move(batch).value());
    }
    return out;
  }

  std::vector<std::uint8_t> memory_;
  shm::MultiRing rings_;
  clk::ManualClock clock_{1'000'000};
  ExsConfig config_;
  std::vector<ByteBuffer> frames_;
  std::unique_ptr<ExsCore> core_;
};

TEST_F(ExsCoreTest, HelloCarriesNodeId) {
  ASSERT_TRUE(core_->send_hello());
  ASSERT_EQ(frames_.size(), 1u);
  xdr::Decoder dec(frames_[0].view());
  auto type = tp::peek_type(dec);
  ASSERT_TRUE(type.is_ok());
  EXPECT_EQ(type.value(), tp::MsgType::hello);
  auto hello = tp::decode_hello(dec);
  ASSERT_TRUE(hello.is_ok());
  EXPECT_EQ(hello.value().node, 3u);
  EXPECT_EQ(hello.value().version, tp::kProtocolVersion);
}

TEST_F(ExsCoreTest, DrainsSensorsAcrossSlots) {
  auto ring_a = rings_.claim_slot();
  auto ring_b = rings_.claim_slot();
  ASSERT_TRUE(ring_a.is_ok());
  ASSERT_TRUE(ring_b.is_ok());
  sensors::Sensor sensor_a(ring_a.value(), clock_);
  sensors::Sensor sensor_b(ring_b.value(), clock_);
  ASSERT_TRUE(sensor_a.notice(1, sensors::x_i32(1)));
  ASSERT_TRUE(sensor_b.notice(2, sensors::x_i32(2)));

  auto drained = core_->drain_rings();
  ASSERT_TRUE(drained.is_ok());
  EXPECT_EQ(drained.value(), 2u);
  ASSERT_TRUE(core_->maybe_flush());
  auto batches = sent_batches();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].records.size(), 2u);
}

TEST_F(ExsCoreTest, DrainBurstBoundsWork) {
  config_.drain_burst = 5;
  core_ = std::make_unique<ExsCore>(config_, rings_, clock_, [this](ByteBuffer payload) {
    frames_.push_back(std::move(payload));
    return Status::ok();
  });
  auto ring = rings_.claim_slot();
  ASSERT_TRUE(ring.is_ok());
  sensors::Sensor sensor(ring.value(), clock_);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(sensor.notice(1, sensors::x_i32(i)));
  auto drained = core_->drain_rings();
  ASSERT_TRUE(drained.is_ok());
  EXPECT_EQ(drained.value(), 5u) << "burst limit respected";
}

TEST_F(ExsCoreTest, CorrectionValueAppliedToForwardedTimestamps) {
  // Apply an ADJUST, then forward a record: its timestamp must shift.
  ByteBuffer adjust;
  xdr::Encoder enc(adjust);
  tp::put_type(tp::MsgType::adjust, enc);
  tp::encode_adjust({2'500}, enc);
  ASSERT_TRUE(core_->handle_frame(adjust.view()));
  EXPECT_EQ(core_->correction(), 2'500);

  auto ring = rings_.claim_slot();
  ASSERT_TRUE(ring.is_ok());
  sensors::Sensor sensor(ring.value(), clock_);
  clock_.set(5'000'000);
  ASSERT_TRUE(sensor.notice(1, sensors::x_i32(0)));
  ASSERT_TRUE(core_->drain_rings().is_ok());
  ASSERT_TRUE(core_->flush());
  auto batches = sent_batches();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].records[0].timestamp, 5'002'500);
}

TEST_F(ExsCoreTest, AdjustmentsAccumulate) {
  for (TimeMicros delta : {100, -30, 7}) {
    ByteBuffer adjust;
    xdr::Encoder enc(adjust);
    tp::put_type(tp::MsgType::adjust, enc);
    tp::encode_adjust({delta}, enc);
    ASSERT_TRUE(core_->handle_frame(adjust.view()));
  }
  EXPECT_EQ(core_->correction(), 77);
  EXPECT_EQ(core_->stats().sync_adjustments, 3u);
}

TEST_F(ExsCoreTest, TimeReqAnsweredWithCorrectedClock) {
  ByteBuffer adjust;
  xdr::Encoder enc1(adjust);
  tp::put_type(tp::MsgType::adjust, enc1);
  tp::encode_adjust({1'000}, enc1);
  ASSERT_TRUE(core_->handle_frame(adjust.view()));

  clock_.set(42'000'000);
  ByteBuffer req;
  xdr::Encoder enc2(req);
  tp::put_type(tp::MsgType::time_req, enc2);
  tp::encode_time_req({99}, enc2);
  ASSERT_TRUE(core_->handle_frame(req.view()));

  ASSERT_EQ(frames_.size(), 1u);
  xdr::Decoder dec(frames_[0].view());
  auto type = tp::peek_type(dec);
  ASSERT_TRUE(type.is_ok());
  ASSERT_EQ(type.value(), tp::MsgType::time_resp);
  auto resp = tp::decode_time_resp(dec);
  ASSERT_TRUE(resp.is_ok());
  EXPECT_EQ(resp.value().request_id, 99u);
  EXPECT_EQ(resp.value().slave_time, 42'001'000);
  EXPECT_EQ(core_->stats().sync_polls_answered, 1u);
}

TEST_F(ExsCoreTest, ByeReportsClosed) {
  ByteBuffer bye;
  xdr::Encoder enc(bye);
  tp::put_type(tp::MsgType::bye, enc);
  EXPECT_EQ(core_->handle_frame(bye.view()).code(), Errc::closed);
}

TEST_F(ExsCoreTest, UnexpectedMessageRejected) {
  ByteBuffer hello;
  xdr::Encoder enc(hello);
  tp::put_type(tp::MsgType::hello, enc);
  tp::encode_hello({1, 1}, enc);
  EXPECT_EQ(core_->handle_frame(hello.view()).code(), Errc::malformed);
}

TEST_F(ExsCoreTest, StatsCountForwardedRecords) {
  auto ring = rings_.claim_slot();
  ASSERT_TRUE(ring.is_ok());
  sensors::Sensor sensor(ring.value(), clock_);
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(sensor.notice(1, sensors::x_i32(i)));
  ASSERT_TRUE(core_->drain_rings().is_ok());
  ASSERT_TRUE(core_->flush());
  EXPECT_EQ(core_->stats().records_forwarded, 7u);
  EXPECT_EQ(core_->stats().batches_sent, 1u);
  EXPECT_GT(core_->stats().bytes_sent, 0u);
}

TEST_F(ExsCoreTest, RoundRobinAcrossChattySlots) {
  // One slot with many records, one with few: the few must not starve.
  auto ring_a = rings_.claim_slot();
  auto ring_b = rings_.claim_slot();
  ASSERT_TRUE(ring_a.is_ok());
  ASSERT_TRUE(ring_b.is_ok());
  sensors::Sensor chatty(ring_a.value(), clock_);
  sensors::Sensor quiet(ring_b.value(), clock_);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(chatty.notice(1, sensors::x_i32(i)));
  ASSERT_TRUE(quiet.notice(2, sensors::x_i32(0)));

  config_.drain_burst = 10;
  core_ = std::make_unique<ExsCore>(config_, rings_, clock_, [this](ByteBuffer payload) {
    frames_.push_back(std::move(payload));
    return Status::ok();
  });
  ASSERT_TRUE(core_->drain_rings().is_ok());
  ASSERT_TRUE(core_->flush());
  auto batches = sent_batches();
  ASSERT_EQ(batches.size(), 1u);
  bool saw_quiet = false;
  for (const Record& r : batches[0].records) {
    if (r.sensor == 2) saw_quiet = true;
  }
  EXPECT_TRUE(saw_quiet) << "round-robin must reach the quiet slot within one burst";
}

// ---- ReplayBuffer --------------------------------------------------------------------

/// A synthetic data_batch frame: 12-byte header (type, node, batch_seq as
/// big-endian u32s) padded out to `total_bytes`.
ByteBuffer replay_frame(std::uint32_t batch_seq, std::size_t total_bytes) {
  EXPECT_GE(total_bytes, 12u);
  ByteBuffer frame;
  xdr::Encoder enc(frame);
  enc.put_u32(2);  // MsgType::data_batch
  enc.put_u32(1);  // node
  enc.put_u32(batch_seq);
  const std::vector<std::uint8_t> padding(total_bytes - 12, 0xab);
  frame.append(ByteSpan{padding.data(), padding.size()});
  return frame;
}

TEST(ReplayBufferTest, ByteCapEvictsOldestFirst) {
  ReplayBuffer buffer(/*max_batches=*/100, /*max_bytes=*/1000);
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    ASSERT_TRUE(buffer.retain(replay_frame(seq, 300).view()));
  }
  // 5 x 300 bytes against a 1000-byte cap: the two oldest must have gone.
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.bytes(), 900u);
  EXPECT_EQ(buffer.evictions(), 2u);
  EXPECT_EQ(buffer.entries().front().batch_seq, 2u);
  EXPECT_EQ(buffer.entries().back().batch_seq, 4u);
}

TEST(ReplayBufferTest, JumboBatchDisplacesEverythingYetIsRetained) {
  ReplayBuffer buffer(/*max_batches=*/100, /*max_bytes=*/1000);
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    ASSERT_TRUE(buffer.retain(replay_frame(seq, 300).view()));
  }
  // One batch bigger than the whole cap: everything older is declared lost,
  // but the jumbo itself stays — it is the batch currently in flight.
  ASSERT_TRUE(buffer.retain(replay_frame(3, 2'000).view()));
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.bytes(), 2'000u);
  EXPECT_EQ(buffer.evictions(), 3u);
  EXPECT_EQ(buffer.entries().front().batch_seq, 3u);
}

TEST(ReplayBufferTest, CountCapIndependentOfByteCap) {
  ReplayBuffer buffer(/*max_batches=*/2, /*max_bytes=*/0);
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    ASSERT_TRUE(buffer.retain(replay_frame(seq, 100).view()));
  }
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.evictions(), 1u);
  EXPECT_EQ(buffer.entries().front().batch_seq, 1u);
}

TEST(ReplayBufferTest, AckReleasesBytes) {
  ReplayBuffer buffer(/*max_batches=*/10, /*max_bytes=*/10'000);
  for (std::uint32_t seq = 0; seq < 4; ++seq) {
    ASSERT_TRUE(buffer.retain(replay_frame(seq, 250).view()));
  }
  EXPECT_EQ(buffer.bytes(), 1'000u);
  buffer.ack(/*next_expected=*/3);
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.bytes(), 250u);
  EXPECT_EQ(buffer.evictions(), 0u) << "acked batches are not evictions";
}

}  // namespace
}  // namespace brisk::lis
