// Simulation substrate tests: latency model statistics, delayed-stream
// generator invariants (per-node FIFO, distribution effects, determinism),
// lateness oracle, and the looping-workload driver.
#include <gtest/gtest.h>

#include <algorithm>

#include "clock/clock.hpp"
#include "sensors/sensor.hpp"
#include "sim/delayed_stream.hpp"
#include "sim/latency_model.hpp"
#include "sim/workload.hpp"

namespace brisk::sim {
namespace {

// ---- latency model ------------------------------------------------------------------

TEST(LatencyModelTest, ForwardWithinConfiguredRange) {
  LatencyModel model({.base_us = 100, .jitter_us = 50, .seed = 1});
  for (int i = 0; i < 1000; ++i) {
    const TimeMicros d = model.forward();
    EXPECT_GE(d, 100);
    EXPECT_LE(d, 150);
  }
}

TEST(LatencyModelTest, ReverseAddsAsymmetry) {
  LatencyModel model({.base_us = 100, .jitter_us = 0, .asymmetry_us = 40, .seed = 1});
  EXPECT_EQ(model.forward(), 100);
  EXPECT_EQ(model.reverse(), 140);
}

TEST(LatencyModelTest, SpikesOccurAtConfiguredProbability) {
  LatencyModel model(
      {.base_us = 100, .jitter_us = 0, .spike_probability = 0.3, .spike_us = 10'000, .seed = 7});
  int spikes = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (model.forward() >= 10'000) ++spikes;
  }
  EXPECT_NEAR(spikes, 3'000, 200);
}

TEST(LatencyModelTest, SpikeProbabilitySwitchable) {
  LatencyModel model({.base_us = 100, .jitter_us = 0, .spike_probability = 0.0, .seed = 9});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.forward(), 100);
  model.set_spike_probability(1.0);
  EXPECT_GE(model.forward(), 5'000) << "all messages spike now";
}

TEST(LatencyModelTest, DeterministicUnderSeed) {
  LatencyModel a({.base_us = 10, .jitter_us = 100, .seed = 42});
  LatencyModel b({.base_us = 10, .jitter_us = 100, .seed = 42});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.forward(), b.forward());
}

// ---- delayed stream ------------------------------------------------------------------

DelayedStreamConfig small_config() {
  DelayedStreamConfig config;
  config.nodes = 4;
  config.events_per_sec_per_node = 2'000.0;
  config.duration_us = 500'000;
  config.distribution = LatenessDistribution::exponential;
  config.base_delay_us = 200;
  config.spread_us = 1'000;
  config.seed = 5;
  return config;
}

TEST(DelayedStreamTest, GeneratesExpectedVolume) {
  auto stream = generate_delayed_stream(small_config());
  // 4 nodes × 2000 ev/s × 0.5 s = ~4000 events (Poisson, allow slack).
  EXPECT_GT(stream.size(), 3'000u);
  EXPECT_LT(stream.size(), 5'000u);
}

TEST(DelayedStreamTest, SortedByArrival) {
  auto stream = generate_delayed_stream(small_config());
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_GE(stream[i].arrival_us, stream[i - 1].arrival_us);
  }
}

TEST(DelayedStreamTest, PerNodeFifoInvariant) {
  // Within one node, arrival order must match creation order (the TCP
  // stream guarantee the sorter relies on).
  auto stream = generate_delayed_stream(small_config());
  std::map<NodeId, SequenceNo> last_seq;
  std::map<NodeId, TimeMicros> last_creation;
  for (const Arrival& a : stream) {
    auto it = last_seq.find(a.record.node);
    if (it != last_seq.end()) {
      EXPECT_EQ(a.record.sequence, it->second + 1) << "gapless per-node sequence";
      EXPECT_GE(a.record.timestamp, last_creation[a.record.node]);
    }
    last_seq[a.record.node] = a.record.sequence;
    last_creation[a.record.node] = a.record.timestamp;
  }
}

TEST(DelayedStreamTest, ArrivalNeverBeforeCreationPlusBase) {
  auto stream = generate_delayed_stream(small_config());
  for (const Arrival& a : stream) {
    EXPECT_GE(a.arrival_us, a.record.timestamp + 200);
  }
}

TEST(DelayedStreamTest, DeterministicUnderSeed) {
  auto a = generate_delayed_stream(small_config());
  auto b = generate_delayed_stream(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
    EXPECT_EQ(a[i].record.timestamp, b[i].record.timestamp);
  }
}

TEST(DelayedStreamTest, NoneDistributionKeepsCrossNodeLatenessSmall) {
  auto config = small_config();
  config.distribution = LatenessDistribution::none;
  auto stream = generate_delayed_stream(config);
  // Constant delay → cross-node disorder limited to simultaneous events.
  EXPECT_LE(max_cross_node_lateness(stream), 10);
}

TEST(DelayedStreamTest, BurstyProducesLargeLateness) {
  auto config = small_config();
  config.distribution = LatenessDistribution::bursty;
  config.burst_probability = 0.02;
  config.burst_extra_us = 30'000;
  auto stream = generate_delayed_stream(config);
  EXPECT_GE(max_cross_node_lateness(stream), 20'000)
      << "bursts must create cross-node disorder on their scale";
}

TEST(DelayedStreamTest, SixIntFieldsPerRecord) {
  auto stream = generate_delayed_stream(small_config());
  ASSERT_FALSE(stream.empty());
  EXPECT_EQ(stream[0].record.fields.size(), 6u) << "the paper's 6-int workload";
}

TEST(MaxLatenessTest, OracleOnHandcraftedStream) {
  std::vector<Arrival> stream;
  auto push = [&](NodeId node, TimeMicros ts, TimeMicros arrival) {
    Arrival a;
    a.record.node = node;
    a.record.timestamp = ts;
    a.arrival_us = arrival;
    stream.push_back(a);
  };
  push(0, 100, 110);
  push(1, 300, 310);
  push(0, 150, 320);  // arrives after ts=300 was seen → lateness 150
  push(1, 400, 410);
  EXPECT_EQ(max_cross_node_lateness(stream), 150);
}

TEST(MaxLatenessTest, InOrderStreamHasZero) {
  std::vector<Arrival> stream;
  for (int i = 0; i < 10; ++i) {
    Arrival a;
    a.record.timestamp = i * 100;
    a.arrival_us = i * 100 + 50;
    stream.push_back(a);
  }
  EXPECT_EQ(max_cross_node_lateness(stream), 0);
}

// ---- workload driver ------------------------------------------------------------------

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(shm::RingBuffer::region_size(1 << 20));
    auto ring = shm::RingBuffer::init(memory_.data(), 1 << 20);
    ASSERT_TRUE(ring.is_ok());
    ring_ = ring.value();
    sensor_ = std::make_unique<sensors::Sensor>(ring_, clk::SystemClock::instance());
  }
  std::vector<std::uint8_t> memory_;
  shm::RingBuffer ring_;
  std::unique_ptr<sensors::Sensor> sensor_;
};

TEST_F(WorkloadTest, UnpacedLoopIssuesManyEvents) {
  WorkloadConfig config;
  config.duration_us = 50'000;
  auto result = run_looping_workload(*sensor_, config);
  EXPECT_GT(result.notices_issued, 1'000u) << "an unpaced loop reaches high rates";
  EXPECT_GE(result.elapsed_us, 50'000);
  EXPECT_GT(result.cpu_us, 0);
}

TEST_F(WorkloadTest, PacedLoopApproximatesTargetRate) {
  WorkloadConfig config;
  config.events_per_sec = 10'000.0;
  config.duration_us = 200'000;
  auto result = run_looping_workload(*sensor_, config);
  EXPECT_NEAR(result.achieved_rate_per_sec(), 10'000.0, 2'000.0);
}

TEST_F(WorkloadTest, RecordsAreSixIntNotices) {
  WorkloadConfig config;
  config.sensor = 9;
  config.events_per_sec = 1'000.0;
  config.duration_us = 20'000;
  auto result = run_looping_workload(*sensor_, config);
  ASSERT_GT(result.notices_accepted, 0u);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(ring_.try_pop(bytes));
  auto record = sensors::decode_native(ByteSpan{bytes.data(), bytes.size()});
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().sensor, 9u);
  EXPECT_EQ(record.value().fields.size(), 6u);
  for (const auto& field : record.value().fields) {
    EXPECT_EQ(field.type(), sensors::FieldType::x_i32);
  }
}

// ---- parameterized: every lateness distribution generates a valid stream -----------------

class DistributionSweep : public ::testing::TestWithParam<LatenessDistribution> {};

TEST_P(DistributionSweep, StreamInvariantsHold) {
  auto config = small_config();
  config.distribution = GetParam();
  auto stream = generate_delayed_stream(config);
  ASSERT_FALSE(stream.empty());
  TimeMicros prev_arrival = 0;
  for (const Arrival& a : stream) {
    EXPECT_GE(a.arrival_us, prev_arrival);
    EXPECT_GE(a.arrival_us, a.record.timestamp);
    EXPECT_LT(a.record.timestamp, config.duration_us);
    prev_arrival = a.arrival_us;
  }
}

INSTANTIATE_TEST_SUITE_P(All, DistributionSweep,
                         ::testing::Values(LatenessDistribution::none,
                                           LatenessDistribution::uniform,
                                           LatenessDistribution::exponential,
                                           LatenessDistribution::bursty),
                         [](const auto& info) {
                           return lateness_distribution_name(info.param);
                         });

}  // namespace
}  // namespace brisk::sim
