// Shared-memory substrate tests: SharedRegion lifetimes, RingBuffer SPSC
// semantics (wrap handling, drop-new overflow, concurrent producer/consumer,
// cross-fork visibility), MultiRing slot discipline.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <numeric>
#include <thread>

#include "shm/multi_ring.hpp"
#include "shm/ring_buffer.hpp"
#include "shm/shared_region.hpp"

namespace brisk::shm {
namespace {

std::vector<std::uint8_t> make_record(std::size_t size, std::uint8_t fill) {
  return std::vector<std::uint8_t>(size, fill);
}

ByteSpan span_of(const std::vector<std::uint8_t>& v) { return {v.data(), v.size()}; }

// ---- SharedRegion ---------------------------------------------------------------

TEST(SharedRegionTest, AnonymousIsZeroed) {
  auto region = SharedRegion::create_anonymous(4096);
  ASSERT_TRUE(region.is_ok()) << region.status().to_string();
  const auto* bytes = static_cast<const std::uint8_t*>(region.value().data());
  EXPECT_EQ(std::accumulate(bytes, bytes + 4096, 0), 0);
  EXPECT_EQ(region.value().size(), 4096u);
}

TEST(SharedRegionTest, ZeroSizeRejected) {
  EXPECT_EQ(SharedRegion::create_anonymous(0).status().code(), Errc::invalid_argument);
}

TEST(SharedRegionTest, NamedCreateOpenUnlink) {
  const std::string name = "/brisk-test-" + std::to_string(::getpid());
  auto created = SharedRegion::create_named(name, 8192);
  ASSERT_TRUE(created.is_ok()) << created.status().to_string();
  static_cast<std::uint8_t*>(created.value().data())[100] = 0x5a;

  auto opened = SharedRegion::open_named(name);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value().size(), 8192u);
  EXPECT_EQ(static_cast<std::uint8_t*>(opened.value().data())[100], 0x5a);

  ASSERT_TRUE(created.value().unlink());
  EXPECT_EQ(SharedRegion::open_named(name).status().code(), Errc::not_found);
}

TEST(SharedRegionTest, DuplicateNamedCreateFails) {
  const std::string name = "/brisk-test-dup-" + std::to_string(::getpid());
  auto first = SharedRegion::create_named(name, 4096);
  ASSERT_TRUE(first.is_ok());
  auto second = SharedRegion::create_named(name, 4096);
  EXPECT_EQ(second.status().code(), Errc::already_exists);
  ASSERT_TRUE(first.value().unlink());
}

TEST(SharedRegionTest, BadNameRejected) {
  EXPECT_EQ(SharedRegion::create_named("no-slash", 4096).status().code(),
            Errc::invalid_argument);
  EXPECT_EQ(SharedRegion::open_named("").status().code(), Errc::invalid_argument);
}

TEST(SharedRegionTest, MoveTransfersOwnership) {
  auto region = SharedRegion::create_anonymous(4096);
  ASSERT_TRUE(region.is_ok());
  void* data = region.value().data();
  SharedRegion moved = std::move(region.value());
  EXPECT_EQ(moved.data(), data);
}

// ---- RingBuffer ------------------------------------------------------------------

class RingBufferTest : public ::testing::Test {
 protected:
  void make_ring(std::size_t capacity) {
    memory_.resize(RingBuffer::region_size(capacity));
    auto ring = RingBuffer::init(memory_.data(), capacity);
    ASSERT_TRUE(ring.is_ok()) << ring.status().to_string();
    ring_ = ring.value();
  }
  std::vector<std::uint8_t> memory_;
  RingBuffer ring_;
};

TEST_F(RingBufferTest, PushPopSingle) {
  make_ring(1024);
  auto record = make_record(10, 0xab);
  ASSERT_TRUE(ring_.try_push(span_of(record)));
  EXPECT_FALSE(ring_.empty());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring_.try_pop(out));
  EXPECT_EQ(out, record);
  EXPECT_TRUE(ring_.empty());
}

TEST_F(RingBufferTest, PopOnEmptyReturnsFalse) {
  make_ring(256);
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(ring_.try_pop(out));
  EXPECT_TRUE(out.empty());
}

TEST_F(RingBufferTest, FifoOrderPreserved) {
  make_ring(4096);
  for (std::uint8_t i = 0; i < 50; ++i) {
    auto record = make_record(8 + i % 16, i);
    ASSERT_TRUE(ring_.try_push(span_of(record)));
  }
  for (std::uint8_t i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(ring_.try_pop(out));
    EXPECT_EQ(out.size(), 8u + i % 16);
    EXPECT_EQ(out[0], i);
  }
  EXPECT_TRUE(ring_.empty());
}

TEST_F(RingBufferTest, DropsWhenFullAndCounts) {
  make_ring(128);
  auto record = make_record(40, 1);
  int pushed = 0;
  while (ring_.try_push(span_of(record))) ++pushed;
  EXPECT_GT(pushed, 0);
  EXPECT_EQ(ring_.stats().dropped, 1u);
  EXPECT_FALSE(ring_.try_push(span_of(record)));
  EXPECT_EQ(ring_.stats().dropped, 2u);
}

TEST_F(RingBufferTest, SpaceReclaimedAfterPop) {
  make_ring(128);
  auto record = make_record(40, 2);
  while (ring_.try_push(span_of(record))) {
  }
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring_.try_pop(out));
  EXPECT_TRUE(ring_.try_push(span_of(record))) << "popped space must be reusable";
}

TEST_F(RingBufferTest, OversizedRecordRejected) {
  make_ring(256);
  auto record = make_record(200, 3);  // > capacity/2
  EXPECT_FALSE(ring_.try_push(span_of(record)));
  EXPECT_EQ(ring_.stats().dropped, 1u);
  EXPECT_TRUE(ring_.empty());
}

TEST_F(RingBufferTest, ZeroLengthRecordSupported) {
  make_ring(256);
  ASSERT_TRUE(ring_.try_push(ByteSpan{}));
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring_.try_pop(out));
  EXPECT_TRUE(out.empty());
}

TEST_F(RingBufferTest, WrapAroundManyTimes) {
  // Capacity forces wraps with records that do not divide it evenly; pop to
  // make room whenever a push is rejected, and verify strict FIFO fills.
  make_ring(230);
  std::uint8_t next_push = 0;
  std::uint8_t next_pop = 0;
  std::vector<std::uint8_t> out;
  for (int round = 0; round < 500; ++round) {
    auto record = make_record(17 + round % 29, next_push);
    while (!ring_.try_push(span_of(record))) {
      out.clear();
      ASSERT_TRUE(ring_.try_pop(out));
      EXPECT_EQ(out[0], next_pop);
      ++next_pop;
    }
    ++next_push;
  }
  out.clear();
  while (ring_.try_pop(out)) {
    EXPECT_EQ(out[0], next_pop);
    ++next_pop;
    out.clear();
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST_F(RingBufferTest, NextRecordSizePeeks) {
  make_ring(512);
  EXPECT_EQ(ring_.next_record_size(), 0u);
  auto record = make_record(33, 9);
  ASSERT_TRUE(ring_.try_push(span_of(record)));
  EXPECT_EQ(ring_.next_record_size(), 33u);
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(ring_.try_pop(out));
  EXPECT_EQ(ring_.next_record_size(), 0u);
}

TEST_F(RingBufferTest, StatsAccumulate) {
  make_ring(4096);
  auto record = make_record(16, 0);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring_.try_push(span_of(record)));
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring_.try_pop(out));
  const RingStats stats = ring_.stats();
  EXPECT_EQ(stats.pushed, 10u);
  EXPECT_EQ(stats.popped, 4u);
  EXPECT_EQ(stats.bytes_pushed, 160u);
}

TEST_F(RingBufferTest, AttachValidatesMagic) {
  make_ring(256);
  std::vector<std::uint8_t> garbage(RingBuffer::region_size(256), 0x77);
  EXPECT_EQ(RingBuffer::attach(garbage.data(), garbage.size()).status().code(),
            Errc::malformed);
  EXPECT_TRUE(RingBuffer::attach(memory_.data(), memory_.size()).is_ok());
}

TEST_F(RingBufferTest, AttachRejectsTruncatedRegion) {
  make_ring(256);
  EXPECT_EQ(RingBuffer::attach(memory_.data(), sizeof(RingBuffer::Header) - 1).status().code(),
            Errc::malformed);
  EXPECT_EQ(RingBuffer::attach(memory_.data(), sizeof(RingBuffer::Header) + 10).status().code(),
            Errc::malformed);
}

TEST_F(RingBufferTest, InitRejectsTinyCapacity) {
  std::vector<std::uint8_t> mem(RingBuffer::region_size(16));
  EXPECT_EQ(RingBuffer::init(mem.data(), 16).status().code(), Errc::invalid_argument);
}

TEST_F(RingBufferTest, ConcurrentProducerConsumer) {
  make_ring(8192);
  constexpr int kRecords = 200'000;
  std::atomic<bool> done{false};
  std::uint64_t consumed = 0;
  std::uint64_t checksum = 0;

  std::thread consumer([&] {
    std::vector<std::uint8_t> out;
    while (!done.load(std::memory_order_acquire) || !ring_.empty()) {
      out.clear();
      if (ring_.try_pop(out)) {
        ++consumed;
        checksum += out[0];
      }
    }
  });

  std::uint64_t produced = 0;
  std::uint64_t produced_checksum = 0;
  for (int i = 0; i < kRecords; ++i) {
    auto record = make_record(8 + i % 24, static_cast<std::uint8_t>(i));
    if (ring_.try_push(span_of(record))) {
      ++produced;
      produced_checksum += static_cast<std::uint8_t>(i);
    }
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(consumed, produced);
  EXPECT_EQ(checksum, produced_checksum);
  EXPECT_EQ(ring_.stats().pushed, produced);
  EXPECT_EQ(ring_.stats().dropped + produced, static_cast<std::uint64_t>(kRecords));
}

TEST(RingBufferForkTest, CrossProcessTransfer) {
  auto region = SharedRegion::create_anonymous(RingBuffer::region_size(64 * 1024));
  ASSERT_TRUE(region.is_ok());
  auto ring = RingBuffer::init(region.value().data(), 64 * 1024);
  ASSERT_TRUE(ring.is_ok());
  constexpr int kRecords = 5000;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: producer.
    auto child_ring = RingBuffer::attach(region.value().data(), region.value().size());
    if (!child_ring.is_ok()) _exit(10);
    for (int i = 0; i < kRecords; ++i) {
      std::uint8_t payload[8];
      std::memcpy(payload, &i, 4);
      std::memcpy(payload + 4, &i, 4);
      while (!child_ring.value().try_push(ByteSpan{payload, 8})) {
        // ring full: spin until the parent consumes
      }
    }
    _exit(0);
  }

  // Parent: consumer.
  std::vector<std::uint8_t> out;
  int expected = 0;
  while (expected < kRecords) {
    out.clear();
    if (!ring.value().try_pop(out)) continue;
    int a = 0;
    int b = 0;
    ASSERT_EQ(out.size(), 8u);
    std::memcpy(&a, out.data(), 4);
    std::memcpy(&b, out.data() + 4, 4);
    EXPECT_EQ(a, expected);
    EXPECT_EQ(b, expected);
    ++expected;
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---- parameterized: every record size against every ring capacity ---------------

struct RingSweepParam {
  std::size_t capacity;
  std::size_t record_size;
};

class RingSweep : public ::testing::TestWithParam<RingSweepParam> {};

TEST_P(RingSweep, FillDrainTwiceKeepsIntegrity) {
  const auto [capacity, record_size] = GetParam();
  std::vector<std::uint8_t> memory(RingBuffer::region_size(capacity));
  auto ring = RingBuffer::init(memory.data(), capacity);
  ASSERT_TRUE(ring.is_ok());

  for (int round = 0; round < 2; ++round) {
    std::uint8_t fill = 0;
    std::uint64_t pushed = 0;
    while (true) {
      auto record = make_record(record_size, fill);
      if (!ring.value().try_push(span_of(record))) break;
      ++pushed;
      ++fill;
    }
    ASSERT_GT(pushed, 0u);
    std::vector<std::uint8_t> out;
    std::uint8_t expected = 0;
    std::uint64_t popped = 0;
    while (ring.value().try_pop(out)) {
      ASSERT_EQ(out.size(), record_size);
      if (record_size > 0) {
        EXPECT_EQ(out[0], expected);
      }
      ++expected;
      ++popped;
      out.clear();
    }
    EXPECT_EQ(popped, pushed);
    EXPECT_TRUE(ring.value().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RingSweep,
    ::testing::Values(RingSweepParam{128, 1}, RingSweepParam{128, 7}, RingSweepParam{128, 16},
                      RingSweepParam{256, 40}, RingSweepParam{1024, 40},
                      RingSweepParam{1024, 100}, RingSweepParam{4096, 333},
                      RingSweepParam{65536, 1000}, RingSweepParam{128, 0},
                      RingSweepParam{100, 13}),
    [](const ::testing::TestParamInfo<RingSweepParam>& info) {
      return "cap" + std::to_string(info.param.capacity) + "_rec" +
             std::to_string(info.param.record_size);
    });

// ---- MultiRing -------------------------------------------------------------------

TEST(MultiRingTest, ClaimSlotsUntilExhausted) {
  std::vector<std::uint8_t> memory(MultiRing::region_size(3, 256));
  auto rings = MultiRing::init(memory.data(), 3, 256);
  ASSERT_TRUE(rings.is_ok());
  EXPECT_EQ(rings.value().claimed_slots(), 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(rings.value().claim_slot().is_ok());
  }
  EXPECT_EQ(rings.value().claimed_slots(), 3u);
  EXPECT_EQ(rings.value().claim_slot().status().code(), Errc::buffer_full);
}

TEST(MultiRingTest, SlotsAreIndependent) {
  std::vector<std::uint8_t> memory(MultiRing::region_size(2, 512));
  auto rings = MultiRing::init(memory.data(), 2, 512);
  ASSERT_TRUE(rings.is_ok());
  auto ring0 = rings.value().claim_slot();
  auto ring1 = rings.value().claim_slot();
  ASSERT_TRUE(ring0.is_ok());
  ASSERT_TRUE(ring1.is_ok());

  auto record_a = make_record(8, 0xaa);
  auto record_b = make_record(8, 0xbb);
  ASSERT_TRUE(ring0.value().try_push(span_of(record_a)));
  ASSERT_TRUE(ring1.value().try_push(span_of(record_b)));

  std::vector<std::uint8_t> out;
  auto consumer0 = rings.value().slot(0);
  ASSERT_TRUE(consumer0.is_ok());
  ASSERT_TRUE(consumer0.value().try_pop(out));
  EXPECT_EQ(out[0], 0xaa);
  out.clear();
  auto consumer1 = rings.value().slot(1);
  ASSERT_TRUE(consumer1.is_ok());
  ASSERT_TRUE(consumer1.value().try_pop(out));
  EXPECT_EQ(out[0], 0xbb);
}

TEST(MultiRingTest, SlotOutOfRangeRejected) {
  std::vector<std::uint8_t> memory(MultiRing::region_size(2, 256));
  auto rings = MultiRing::init(memory.data(), 2, 256);
  ASSERT_TRUE(rings.is_ok());
  EXPECT_EQ(rings.value().slot(0).status().code(), Errc::out_of_range)
      << "unclaimed slot must not be readable";
  ASSERT_TRUE(rings.value().claim_slot().is_ok());
  EXPECT_TRUE(rings.value().slot(0).is_ok());
  EXPECT_EQ(rings.value().slot(1).status().code(), Errc::out_of_range);
}

TEST(MultiRingTest, AttachSeesClaims) {
  std::vector<std::uint8_t> memory(MultiRing::region_size(4, 256));
  auto rings = MultiRing::init(memory.data(), 4, 256);
  ASSERT_TRUE(rings.is_ok());
  ASSERT_TRUE(rings.value().claim_slot().is_ok());

  auto attached = MultiRing::attach(memory.data(), memory.size());
  ASSERT_TRUE(attached.is_ok());
  EXPECT_EQ(attached.value().claimed_slots(), 1u);
  EXPECT_EQ(attached.value().slot_count(), 4u);
  EXPECT_EQ(attached.value().ring_capacity(), 256u);
}

TEST(MultiRingTest, AttachValidates) {
  std::vector<std::uint8_t> garbage(1024, 0x13);
  EXPECT_EQ(MultiRing::attach(garbage.data(), garbage.size()).status().code(), Errc::malformed);
  EXPECT_EQ(MultiRing::attach(garbage.data(), 4).status().code(), Errc::malformed);
}

TEST(MultiRingTest, TotalStatsAggregates) {
  std::vector<std::uint8_t> memory(MultiRing::region_size(2, 512));
  auto rings = MultiRing::init(memory.data(), 2, 512);
  ASSERT_TRUE(rings.is_ok());
  auto ring0 = rings.value().claim_slot();
  auto ring1 = rings.value().claim_slot();
  auto record = make_record(10, 1);
  ASSERT_TRUE(ring0.value().try_push(span_of(record)));
  ASSERT_TRUE(ring0.value().try_push(span_of(record)));
  ASSERT_TRUE(ring1.value().try_push(span_of(record)));
  const RingStats stats = rings.value().total_stats();
  EXPECT_EQ(stats.pushed, 3u);
  EXPECT_EQ(stats.bytes_pushed, 30u);
}

TEST(MultiRingTest, ConcurrentClaimsAreUnique) {
  std::vector<std::uint8_t> memory(MultiRing::region_size(8, 256));
  auto rings = MultiRing::init(memory.data(), 8, 256);
  ASSERT_TRUE(rings.is_ok());
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  threads.reserve(12);
  for (int i = 0; i < 12; ++i) {
    threads.emplace_back([&] {
      auto slot = rings.value().claim_slot();
      if (slot.is_ok()) successes.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(successes.load(), 8);
  EXPECT_EQ(rings.value().claimed_slots(), 8u);
}

}  // namespace
}  // namespace brisk::shm
