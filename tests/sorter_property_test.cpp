// Property-based tests of the on-line sorter over randomized delayed
// streams (the generator from src/sim): invariants that must hold for every
// seed, rate, node count and lateness distribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "clock/clock.hpp"
#include "ism/online_sorter.hpp"
#include "sim/delayed_stream.hpp"

namespace brisk::ism {
namespace {

struct PropertyParam {
  std::uint64_t seed;
  std::uint32_t nodes;
  double rate;
  sim::LatenessDistribution distribution;
};

class SorterProperty : public ::testing::TestWithParam<PropertyParam> {
 protected:
  static sim::DelayedStreamConfig stream_config(const PropertyParam& param) {
    sim::DelayedStreamConfig config;
    config.seed = param.seed;
    config.nodes = param.nodes;
    config.events_per_sec_per_node = param.rate;
    config.duration_us = 300'000;
    config.distribution = param.distribution;
    config.base_delay_us = 200;
    config.spread_us = 2'000;
    return config;
  }

  /// Replays the stream; returns emissions in order.
  static std::vector<sensors::Record> replay(const std::vector<sim::Arrival>& stream,
                                             const SorterConfig& config,
                                             OnlineSorter** sorter_out = nullptr) {
    static clk::ManualClock clock(0);
    clock.set(0);
    std::vector<sensors::Record> emitted;
    static std::unique_ptr<OnlineSorter> sorter;
    sorter = std::make_unique<OnlineSorter>(
        config, clock, [&](const sensors::Record& r) { emitted.push_back(r); });
    for (const sim::Arrival& arrival : stream) {
      while (clock.now() + 1'000 <= arrival.arrival_us) {
        clock.advance(1'000);
        sorter->service();
      }
      clock.set(arrival.arrival_us);
      sorter->service();
      EXPECT_TRUE(sorter->push(arrival.record));
    }
    sorter->flush_all();
    if (sorter_out != nullptr) *sorter_out = sorter.get();
    return emitted;
  }
};

TEST_P(SorterProperty, NoRecordLostOrDuplicated) {
  auto stream = sim::generate_delayed_stream(stream_config(GetParam()));
  SorterConfig config;
  config.initial_frame_us = 2'000;
  auto emitted = replay(stream, config);
  ASSERT_EQ(emitted.size(), stream.size());
  // Multiset equality via per-node sequence sets.
  std::map<NodeId, std::set<SequenceNo>> seen;
  for (const auto& record : emitted) {
    EXPECT_TRUE(seen[record.node].insert(record.sequence).second)
        << "duplicate emission node " << record.node << " seq " << record.sequence;
  }
}

TEST_P(SorterProperty, PerNodeFifoAlwaysPreserved) {
  auto stream = sim::generate_delayed_stream(stream_config(GetParam()));
  SorterConfig config;
  config.initial_frame_us = 1'000;
  auto emitted = replay(stream, config);
  std::map<NodeId, SequenceNo> last_seq;
  for (const auto& record : emitted) {
    auto it = last_seq.find(record.node);
    if (it != last_seq.end()) {
      EXPECT_GT(record.sequence, it->second)
          << "node " << record.node << " emitted out of its own order";
    }
    last_seq[record.node] = record.sequence;
  }
}

TEST_P(SorterProperty, LargeFixedFrameYieldsTotalOrder) {
  auto stream = sim::generate_delayed_stream(stream_config(GetParam()));
  // With T ≥ the maximum transport delay actually drawn (exponential tails
  // are unbounded, so measure the realized stream), every record is
  // released at exactly ts + T and the output is totally ordered.
  TimeMicros max_delay = 0;
  for (const sim::Arrival& a : stream) {
    max_delay = std::max(max_delay, a.arrival_us - a.record.timestamp);
  }
  SorterConfig config;
  config.initial_frame_us = max_delay + 1;
  config.max_frame_us = max_delay + 1;
  config.adaptive = false;
  auto emitted = replay(stream, config);
  for (std::size_t i = 1; i < emitted.size(); ++i) {
    EXPECT_GE(emitted[i].timestamp, emitted[i - 1].timestamp)
        << "out-of-order at emission " << i;
  }
}

TEST_P(SorterProperty, FrameStaysWithinConfiguredBounds) {
  auto stream = sim::generate_delayed_stream(stream_config(GetParam()));
  SorterConfig config;
  config.initial_frame_us = 500;
  config.min_frame_us = 100;
  config.max_frame_us = 5'000;
  config.decay_half_life_s = 0.05;
  OnlineSorter* sorter = nullptr;
  (void)replay(stream, config, &sorter);
  ASSERT_NE(sorter, nullptr);
  EXPECT_GE(sorter->current_frame(), config.min_frame_us);
  EXPECT_LE(sorter->current_frame(), config.max_frame_us);
}

TEST_P(SorterProperty, EmissionTimeNeverBeforeArrival) {
  auto stream = sim::generate_delayed_stream(stream_config(GetParam()));
  // Emission happens at or after arrival by construction of the pipeline;
  // verify the sorter can never emit a record it has not been given (the
  // delay accounting in stats would go negative otherwise).
  SorterConfig config;
  config.initial_frame_us = 3'000;
  OnlineSorter* sorter = nullptr;
  auto emitted = replay(stream, config, &sorter);
  ASSERT_NE(sorter, nullptr);
  EXPECT_EQ(sorter->stats().pushed, stream.size());
  EXPECT_EQ(sorter->stats().emitted, emitted.size());
}

INSTANTIATE_TEST_SUITE_P(
    RandomStreams, SorterProperty,
    ::testing::Values(
        PropertyParam{1, 2, 1'000, sim::LatenessDistribution::exponential},
        PropertyParam{2, 4, 2'000, sim::LatenessDistribution::exponential},
        PropertyParam{3, 8, 500, sim::LatenessDistribution::uniform},
        PropertyParam{4, 3, 4'000, sim::LatenessDistribution::bursty},
        PropertyParam{5, 1, 1'000, sim::LatenessDistribution::none},
        PropertyParam{6, 6, 3'000, sim::LatenessDistribution::bursty},
        PropertyParam{7, 5, 800, sim::LatenessDistribution::uniform},
        PropertyParam{8, 2, 10'000, sim::LatenessDistribution::exponential}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.nodes) + "_" +
             sim::lateness_distribution_name(info.param.distribution);
    });

}  // namespace
}  // namespace brisk::ism
