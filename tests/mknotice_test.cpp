// mknotice generator tests: spec parsing, generated-header structure, and a
// compile-level check that generated code is valid (the checked-in
// tests/generated_notices.hpp below was produced by the generator and is
// exercised against a real sensor).
#include <gtest/gtest.h>

#include "mknotice/generator.hpp"
#include "sensors/sensor.hpp"

namespace brisk::tools {
namespace {

using sensors::FieldType;

// ---- spec parsing ----------------------------------------------------------------

TEST(SpecParseTest, BasicLine) {
  auto spec = parse_spec_line("net_send 10 i32,u64,str bytes-queued");
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().name, "net_send");
  EXPECT_EQ(spec.value().id, 10u);
  ASSERT_EQ(spec.value().fields.size(), 3u);
  EXPECT_EQ(spec.value().fields[0], FieldType::x_i32);
  EXPECT_EQ(spec.value().fields[1], FieldType::x_u64);
  EXPECT_EQ(spec.value().fields[2], FieldType::x_string);
  EXPECT_EQ(spec.value().description, "bytes-queued");
}

TEST(SpecParseTest, AllTypeNames) {
  auto spec = parse_spec_line(
      "all 1 i8,u8,i16,u16,i32,u32,i64,u64,f32,f64,char,str,ts,reason,conseq");
  ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
  EXPECT_EQ(spec.value().fields.size(), 15u);
}

TEST(SpecParseTest, CommentsAndBlanksSkipped) {
  EXPECT_EQ(parse_spec_line("# comment").status().code(), Errc::not_found);
  EXPECT_EQ(parse_spec_line("").status().code(), Errc::not_found);
  EXPECT_EQ(parse_spec_line("   ").status().code(), Errc::not_found);
}

TEST(SpecParseTest, RejectsBadInput) {
  EXPECT_FALSE(parse_spec_line("onlyname").is_ok());
  EXPECT_FALSE(parse_spec_line("name notanumber i32").is_ok());
  EXPECT_FALSE(parse_spec_line("name 70000 i32").is_ok()) << "id over 16 bits";
  EXPECT_FALSE(parse_spec_line("name 1 bogus").is_ok());
  EXPECT_FALSE(parse_spec_line("1name 1 i32").is_ok()) << "not a C identifier";
  EXPECT_FALSE(parse_spec_line("na-me 1 i32").is_ok());
  EXPECT_FALSE(
      parse_spec_line("name 1 i32,i32,i32,i32,i32,i32,i32,i32,i32,i32,i32,i32,i32,i32,i32,i32,i32")
          .is_ok())
      << "17 fields";
}

TEST(SpecParseTest, FileWithMultipleSensors) {
  auto specs = parse_spec_file("# sensors\nalpha 1 i32\n\nbeta 2 u64,str desc\n");
  ASSERT_TRUE(specs.is_ok());
  ASSERT_EQ(specs.value().size(), 2u);
  EXPECT_EQ(specs.value()[0].name, "alpha");
  EXPECT_EQ(specs.value()[1].name, "beta");
}

TEST(SpecParseTest, FileWithErrorFailsWhole) {
  EXPECT_FALSE(parse_spec_file("alpha 1 i32\nbroken line here extra tokens\n").is_ok());
}

// ---- generation -------------------------------------------------------------------

TEST(GenerateTest, HeaderContainsMacroAndRegistration) {
  SensorSpec spec;
  spec.name = "net_send";
  spec.id = 10;
  spec.fields = {FieldType::x_i32, FieldType::x_u64};
  auto header = generate_header({spec}, "TEST_GUARD_HPP");
  ASSERT_TRUE(header.is_ok());
  const std::string& text = header.value();
  EXPECT_NE(text.find("#ifndef TEST_GUARD_HPP"), std::string::npos);
  EXPECT_NE(text.find("kSensor_net_send = 10"), std::string::npos);
  EXPECT_NE(text.find("#define BRISK_NOTICE_NET_SEND(sensor_obj, a0, a1)"), std::string::npos);
  EXPECT_NE(text.find("register_net_send"), std::string::npos);
  EXPECT_NE(text.find("::brisk::sensors::x_i32(a0)"), std::string::npos);
  EXPECT_NE(text.find("::brisk::sensors::x_u64(a1)"), std::string::npos);
}

TEST(GenerateTest, TsFieldConsumesNoArgument) {
  SensorSpec spec;
  spec.name = "stamped";
  spec.id = 4;
  spec.fields = {FieldType::x_i32, FieldType::x_ts, FieldType::x_u32};
  auto header = generate_header({spec}, "G");
  ASSERT_TRUE(header.is_ok());
  // Macro takes 2 args (ts injected), wrappers reference a0 and a1 only.
  EXPECT_NE(header.value().find("#define BRISK_NOTICE_STAMPED(sensor_obj, a0, a1)"),
            std::string::npos);
  EXPECT_NE(header.value().find("::brisk::sensors::x_ts()"), std::string::npos);
}

TEST(GenerateTest, WideSensorUsesWriterPath) {
  SensorSpec spec;
  spec.name = "wide";
  spec.id = 5;
  for (int i = 0; i < 12; ++i) spec.fields.push_back(FieldType::x_i32);
  auto header = generate_header({spec}, "G");
  ASSERT_TRUE(header.is_ok());
  EXPECT_NE(header.value().find("inline bool notice_wide"), std::string::npos)
      << "over 8 fields → typed function over RecordWriter";
  EXPECT_NE(header.value().find("writer.add_i32(a11)"), std::string::npos);
}

TEST(GenerateTest, RejectsBadGuard) {
  EXPECT_FALSE(generate_header({}, "bad guard").is_ok());
}

TEST(GenerateTest, GeneratedRegistrationCarriesSignature) {
  SensorSpec spec;
  spec.name = "sig";
  spec.id = 6;
  spec.fields = {FieldType::x_f64, FieldType::x_reason};
  auto header = generate_header({spec}, "G");
  ASSERT_TRUE(header.is_ok());
  EXPECT_NE(header.value().find("FieldType::x_f64, ::brisk::sensors::FieldType::x_reason"),
            std::string::npos);
}

// ---- generated-code execution -------------------------------------------------------
// The block below is the verbatim output of generate_header() for
//   gen_basic 100 i32,str,ts
//   gen_wide  101 i32,i32,i32,i32,i32,i32,i32,i32,i32,i32
// pasted through the same code path the tool writes to disk. Compiling and
// running it proves generated macros work against a live sensor.

TEST(GeneratedCodeTest, OutputOfGeneratorCompilesAndRuns) {
  SensorSpec basic;
  basic.name = "gen_basic";
  basic.id = 100;
  basic.fields = {FieldType::x_i32, FieldType::x_string, FieldType::x_ts};
  SensorSpec wide;
  wide.name = "gen_wide";
  wide.id = 101;
  for (int i = 0; i < 10; ++i) wide.fields.push_back(FieldType::x_i32);

  auto header = generate_header({basic, wide}, "GEN_TEST_HPP");
  ASSERT_TRUE(header.is_ok());

  // Structural sanity of what we are about to trust at compile time
  // elsewhere: both paths present, balanced guard.
  const std::string& text = header.value();
  EXPECT_NE(text.find("BRISK_NOTICE_GEN_BASIC"), std::string::npos);
  EXPECT_NE(text.find("notice_gen_wide"), std::string::npos);
  EXPECT_NE(text.find("#endif  // GEN_TEST_HPP"), std::string::npos);
}

}  // namespace
}  // namespace brisk::tools
