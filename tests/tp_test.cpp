// Transfer protocol tests: compressed meta header packing, record wire
// format (including the paper's 40-byte six-int record), native→wire
// transcoding with clock correction, batch building/decoding, and control
// messages.
#include <gtest/gtest.h>

#include "sensors/record_codec.hpp"
#include "tp/batch.hpp"
#include "tp/meta_header.hpp"
#include "tp/wire.hpp"

namespace brisk::tp {
namespace {

using sensors::Field;
using sensors::FieldType;
using sensors::Record;

// ---- meta header ----------------------------------------------------------------

TEST(MetaHeaderTest, EightFieldsFitInEightBytes) {
  MetaHeader meta;
  meta.sensor_id = 0x1234;
  meta.field_count = 8;
  for (int i = 0; i < 8; ++i) meta.types[i] = FieldType::x_i32;
  EXPECT_FALSE(meta.extended());
  EXPECT_EQ(meta.wire_size(), 8u);

  ByteBuffer buf;
  xdr::Encoder enc(buf);
  encode_meta(meta, enc);
  EXPECT_EQ(buf.size(), 8u);
}

TEST(MetaHeaderTest, SixteenFieldsNeedTwelveBytes) {
  MetaHeader meta;
  meta.field_count = 16;
  for (int i = 0; i < 16; ++i) meta.types[i] = FieldType::x_u8;
  EXPECT_TRUE(meta.extended());
  EXPECT_EQ(meta.wire_size(), 12u);
}

TEST(MetaHeaderTest, RoundTripsAllTypeCombinations) {
  MetaHeader meta;
  meta.sensor_id = 0xffff;
  meta.field_count = 15;
  for (std::uint8_t i = 0; i < 15; ++i) meta.types[i] = static_cast<FieldType>(i);

  ByteBuffer buf;
  xdr::Encoder enc(buf);
  encode_meta(meta, enc);
  xdr::Decoder dec(buf.view());
  auto decoded = decode_meta(dec);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().sensor_id, 0xffff);
  EXPECT_EQ(decoded.value().field_count, 15);
  for (std::uint8_t i = 0; i < 15; ++i) {
    EXPECT_EQ(decoded.value().types[i], static_cast<FieldType>(i)) << "field " << int{i};
  }
}

TEST(MetaHeaderTest, ZeroFieldHeader) {
  MetaHeader meta;
  meta.sensor_id = 7;
  meta.field_count = 0;
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  encode_meta(meta, enc);
  xdr::Decoder dec(buf.view());
  auto decoded = decode_meta(dec);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().field_count, 0);
}

TEST(MetaHeaderTest, RejectsBadNibble) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  enc.put_u32(std::uint32_t{1} << 8);  // sensor 0, 1 field, no flags
  enc.put_u32(0xf0000000);             // nibble 15 = invalid type
  xdr::Decoder dec(buf.view());
  EXPECT_EQ(decode_meta(dec).status().code(), Errc::malformed);
}

TEST(MetaHeaderTest, RejectsInconsistentExtendedFlag) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  enc.put_u32((std::uint32_t{9} << 8) | 0);  // 9 fields but no extended flag
  enc.put_u32(0);
  xdr::Decoder dec(buf.view());
  EXPECT_EQ(decode_meta(dec).status().code(), Errc::malformed);
}

TEST(MetaHeaderTest, RejectsOversizedFieldCount) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  enc.put_u32((std::uint32_t{17} << 8) | 1);
  enc.put_u32(0);
  enc.put_u32(0);
  xdr::Decoder dec(buf.view());
  EXPECT_EQ(decode_meta(dec).status().code(), Errc::malformed);
}

// ---- record wire format -----------------------------------------------------------

Record six_int_record() {
  Record record;
  record.sensor = 1;
  record.timestamp = 1'700'000'000'000'000LL;
  for (int i = 0; i < 6; ++i) record.fields.push_back(Field::i32(i));
  return record;
}

TEST(RecordWireTest, PaperFortyByteRecord) {
  // "Including the time-stamp and type information, each instrumentation
  // data record requires 40 bytes in the XDR-based transfer protocol."
  const Record record = six_int_record();
  EXPECT_EQ(record_wire_size(record), 40u);
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  ASSERT_TRUE(encode_record(record, enc));
  EXPECT_EQ(buf.size(), 40u);
}

TEST(RecordWireTest, WireSizeMatchesEncodedSizeForAllTypes) {
  Record record;
  record.sensor = 2;
  record.timestamp = 5;
  record.fields = {Field::i8(1),      Field::u16(2),    Field::i64(3),
                   Field::f32(4.0f),  Field::f64(5.0),  Field::ch('x'),
                   Field::str("abcde"), Field::ts(6),   Field::reason(7)};
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  ASSERT_TRUE(encode_record(record, enc));
  EXPECT_EQ(buf.size(), record_wire_size(record));
}

TEST(RecordWireTest, RoundTripsEveryFieldType) {
  Record record;
  record.sensor = 999;
  record.timestamp = -5;  // timestamps are signed on the wire
  record.fields = {Field::i8(-8),   Field::u8(250),  Field::i16(-300), Field::u16(50'000),
                   Field::i32(-1),  Field::u32(4'000'000'000u),        Field::i64(-1LL << 60),
                   Field::u64(1ULL << 63),            Field::f32(0.5f), Field::f64(-0.25),
                   Field::ch('@'),  Field::str("s t"), Field::ts(123),  Field::reason(9),
                   Field::conseq(10)};
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  ASSERT_TRUE(encode_record(record, enc));
  xdr::Decoder dec(buf.view());
  auto decoded = decode_record(dec, 4);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  Record expected = record;
  expected.node = 4;
  EXPECT_EQ(decoded.value(), expected);
}

TEST(RecordWireTest, SixteenFieldRecordRoundTrips) {
  Record record;
  record.sensor = 3;
  record.timestamp = 1;
  for (int i = 0; i < 16; ++i) record.fields.push_back(Field::u8(static_cast<std::uint8_t>(i)));
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  ASSERT_TRUE(encode_record(record, enc));
  xdr::Decoder dec(buf.view());
  auto decoded = decode_record(dec, 0);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().fields.size(), 16u);
  EXPECT_EQ(decoded.value().fields[15], Field::u8(15));
}

TEST(RecordWireTest, RejectsSensorIdOver16Bits) {
  Record record;
  record.sensor = 0x10000;
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  EXPECT_EQ(encode_record(record, enc).code(), Errc::invalid_argument);
}

TEST(RecordWireTest, DecodeRejectsTruncation) {
  const Record record = six_int_record();
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  ASSERT_TRUE(encode_record(record, enc));
  for (std::size_t cut : {0u, 4u, 12u, 20u, 39u}) {
    xdr::Decoder dec(buf.view().subspan(0, cut));
    EXPECT_FALSE(decode_record(dec, 0).is_ok()) << "cut at " << cut;
  }
}

// ---- native → wire transcoding ------------------------------------------------------

TEST(TranscodeTest, MatchesDirectEncodingAndAppliesCorrection) {
  Record record;
  record.sensor = 12;
  record.timestamp = 10'000;
  record.fields = {Field::i32(-4), Field::str("abc"), Field::ts(20'000), Field::u64(9)};

  auto native = sensors::encode_native(record);
  ASSERT_TRUE(native.is_ok());

  ByteBuffer transcoded;
  xdr::Encoder enc1(transcoded);
  ASSERT_TRUE(transcode_native_record(native.value().view(), enc1, 500));

  Record corrected = record;
  corrected.timestamp += 500;
  corrected.fields[2] = Field::ts(20'500);
  ByteBuffer direct;
  xdr::Encoder enc2(direct);
  ASSERT_TRUE(encode_record(corrected, enc2));

  EXPECT_EQ(transcoded.hex(), direct.hex());
}

TEST(TranscodeTest, AllFieldTypesSurviveTranscode) {
  Record record;
  record.sensor = 31;
  record.timestamp = 77;
  record.fields = {Field::i8(-1),  Field::u8(2),    Field::i16(-3),  Field::u16(4),
                   Field::i32(-5), Field::u32(6),   Field::i64(-7),  Field::u64(8),
                   Field::f32(1.5f), Field::f64(2.5), Field::ch('c'), Field::str("zz"),
                   Field::ts(99),  Field::reason(1), Field::conseq(2)};
  auto native = sensors::encode_native(record);
  ASSERT_TRUE(native.is_ok());
  ByteBuffer wire;
  xdr::Encoder enc(wire);
  ASSERT_TRUE(transcode_native_record(native.value().view(), enc, 0));
  xdr::Decoder dec(wire.view());
  auto decoded = decode_record(dec, record.node);
  ASSERT_TRUE(decoded.is_ok());
  Record expected = record;
  expected.sequence = 0;  // sequence does not cross the wire
  EXPECT_EQ(decoded.value(), expected);
}

TEST(TranscodeTest, RejectsCorruptNative) {
  std::vector<std::uint8_t> garbage(30, 0xcd);
  ByteBuffer wire;
  xdr::Encoder enc(wire);
  EXPECT_FALSE(transcode_native_record({garbage.data(), garbage.size()}, enc, 0));
}

// ---- batches ------------------------------------------------------------------------

TEST(BatchTest, BuildAndDecode) {
  BatchBuilder builder(7);
  builder.set_ring_dropped_total(3);
  for (int i = 0; i < 5; ++i) {
    Record record = six_int_record();
    record.timestamp += i;
    ASSERT_TRUE(builder.add_record(record));
  }
  EXPECT_EQ(builder.record_count(), 5u);
  ByteBuffer payload = builder.finish();

  xdr::Decoder dec(payload.view());
  auto type = peek_type(dec);
  ASSERT_TRUE(type.is_ok());
  EXPECT_EQ(type.value(), MsgType::data_batch);
  auto batch = decode_batch(dec);
  ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();
  EXPECT_EQ(batch.value().header.node, 7u);
  EXPECT_EQ(batch.value().header.batch_seq, 0u);
  EXPECT_EQ(batch.value().header.record_count, 5u);
  EXPECT_EQ(batch.value().header.ring_dropped_total, 3u);
  ASSERT_EQ(batch.value().records.size(), 5u);
  EXPECT_EQ(batch.value().records[4].timestamp, six_int_record().timestamp + 4);
  EXPECT_EQ(batch.value().records[0].node, 7u);
}

TEST(BatchTest, BatchSeqIncrementsAcrossFinishes) {
  BatchBuilder builder(1);
  ASSERT_TRUE(builder.add_record(six_int_record()));
  ByteBuffer first = builder.finish();
  ASSERT_TRUE(builder.add_record(six_int_record()));
  ByteBuffer second = builder.finish();

  xdr::Decoder dec1(first.view());
  ASSERT_TRUE(peek_type(dec1).is_ok());
  xdr::Decoder dec2(second.view());
  ASSERT_TRUE(peek_type(dec2).is_ok());
  EXPECT_EQ(decode_batch(dec1).value().header.batch_seq, 0u);
  EXPECT_EQ(decode_batch(dec2).value().header.batch_seq, 1u);
}

TEST(BatchTest, EmptyBatchDecodes) {
  BatchBuilder builder(2);
  ByteBuffer payload = builder.finish();
  xdr::Decoder dec(payload.view());
  ASSERT_TRUE(peek_type(dec).is_ok());
  auto batch = decode_batch(dec);
  ASSERT_TRUE(batch.is_ok());
  EXPECT_TRUE(batch.value().records.empty());
}

TEST(BatchTest, AddNativeRecordAppliesCorrection) {
  Record record = six_int_record();
  auto native = sensors::encode_native(record);
  ASSERT_TRUE(native.is_ok());
  BatchBuilder builder(3);
  ASSERT_TRUE(builder.add_native_record(native.value().view(), 1'000));
  ByteBuffer payload = builder.finish();
  xdr::Decoder dec(payload.view());
  ASSERT_TRUE(peek_type(dec).is_ok());
  auto batch = decode_batch(dec);
  ASSERT_TRUE(batch.is_ok());
  EXPECT_EQ(batch.value().records[0].timestamp, record.timestamp + 1'000);
}

TEST(BatchTest, RejectsTrailingBytes) {
  BatchBuilder builder(1);
  ASSERT_TRUE(builder.add_record(six_int_record()));
  ByteBuffer payload = builder.finish();
  std::vector<std::uint8_t> bytes(payload.view().begin(), payload.view().end());
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  xdr::Decoder dec(ByteSpan{bytes.data(), bytes.size()});
  ASSERT_TRUE(peek_type(dec).is_ok());
  EXPECT_EQ(decode_batch(dec).status().code(), Errc::malformed);
}

TEST(BatchTest, RejectsAbsurdRecordCount) {
  ByteBuffer payload;
  xdr::Encoder enc(payload);
  put_type(MsgType::data_batch, enc);
  enc.put_u32(1);           // node
  enc.put_u32(0);           // seq
  enc.put_u32(1'000'000);   // claimed count
  enc.put_u64(0);           // drops
  xdr::Decoder dec(payload.view());
  ASSERT_TRUE(peek_type(dec).is_ok());
  EXPECT_EQ(decode_batch(dec).status().code(), Errc::malformed);
}

// ---- control messages -----------------------------------------------------------------

template <typename T, typename EncodeFn, typename DecodeFn>
T control_round_trip(const T& msg, MsgType type, EncodeFn encode, DecodeFn decode) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  put_type(type, enc);
  encode(msg, enc);
  xdr::Decoder dec(buf.view());
  auto peeked = peek_type(dec);
  EXPECT_TRUE(peeked.is_ok());
  EXPECT_EQ(peeked.value(), type);
  auto decoded = decode(dec);
  EXPECT_TRUE(decoded.is_ok());
  return decoded.value();
}

TEST(ControlMessageTest, HelloRoundTrip) {
  Hello msg{42, kProtocolVersion};
  Hello decoded = control_round_trip(msg, MsgType::hello, encode_hello, decode_hello);
  EXPECT_EQ(decoded.node, 42u);
  EXPECT_EQ(decoded.version, kProtocolVersion);
}

TEST(ControlMessageTest, TimeReqRoundTrip) {
  TimeReq decoded =
      control_round_trip(TimeReq{77}, MsgType::time_req, encode_time_req, decode_time_req);
  EXPECT_EQ(decoded.request_id, 77u);
}

TEST(ControlMessageTest, TimeRespRoundTrip) {
  TimeResp decoded = control_round_trip(TimeResp{5, -123'456'789}, MsgType::time_resp,
                                        encode_time_resp, decode_time_resp);
  EXPECT_EQ(decoded.request_id, 5u);
  EXPECT_EQ(decoded.slave_time, -123'456'789);
}

TEST(ControlMessageTest, AdjustRoundTrip) {
  Adjust decoded =
      control_round_trip(Adjust{-999}, MsgType::adjust, encode_adjust, decode_adjust);
  EXPECT_EQ(decoded.delta, -999);
}

TEST(ControlMessageTest, PeekRejectsUnknownType) {
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  enc.put_u32(99);
  xdr::Decoder dec(buf.view());
  EXPECT_EQ(peek_type(dec).status().code(), Errc::malformed);
}

// ---- parameterized: wire size formula across field counts ------------------------------

class RecordSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RecordSizeSweep, IntFieldsCost4BytesEachPlusHeaders) {
  Record record;
  record.sensor = 1;
  const int n = GetParam();
  for (int i = 0; i < n; ++i) record.fields.push_back(Field::i32(i));
  const std::size_t meta = n <= 8 ? 8u : 12u;
  EXPECT_EQ(record_wire_size(record), 8u + meta + 4u * static_cast<std::size_t>(n));
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  ASSERT_TRUE(encode_record(record, enc));
  EXPECT_EQ(buf.size(), record_wire_size(record));
}

INSTANTIATE_TEST_SUITE_P(Counts, RecordSizeSweep, ::testing::Range(0, 17));

}  // namespace
}  // namespace brisk::tp
