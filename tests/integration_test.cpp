// Integration tests: the whole BRISK pipeline assembled through the public
// API — sensors → shared-memory rings → external sensor (thread) → TCP/XDR
// transfer protocol → ISM (thread) → on-line sorting / CRE matching →
// shared-memory consumer — plus clock synchronization over real sockets and
// named-shm attach between "processes".
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "clock/sim_clock.hpp"
#include "common/time_util.hpp"
#include "consumers/trace_stats.hpp"
#include "core/brisk_manager.hpp"
#include "core/brisk_node.hpp"
#include "picl/picl_reader.hpp"

namespace brisk {
namespace {

using sensors::x_conseq;
using sensors::x_i32;
using sensors::x_reason;
using sensors::x_str;

/// Runs a callable in a joined thread for the duration of a scope.
class ScopedThread {
 public:
  template <typename Fn>
  explicit ScopedThread(Fn fn) : thread_(std::move(fn)) {}
  ~ScopedThread() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

ManagerConfig fast_manager_config() {
  ManagerConfig config;
  config.ism.select_timeout_us = 2'000;
  config.ism.sorter.initial_frame_us = 5'000;
  config.ism.sorter.min_frame_us = 1'000;
  config.ism.enable_sync = false;
  return config;
}

NodeConfig fast_node_config(NodeId node) {
  NodeConfig config;
  config.node = node;
  config.exs.select_timeout_us = 2'000;
  config.exs.batch_max_age_us = 1'000;
  return config;
}

/// Polls the consumer until `count` records arrived or `timeout` expired.
std::vector<sensors::Record> collect(consumers::ShmConsumer& consumer, std::size_t count,
                                     TimeMicros timeout = 5'000'000) {
  std::vector<sensors::Record> records;
  const TimeMicros deadline = monotonic_micros() + timeout;
  while (records.size() < count && monotonic_micros() < deadline) {
    auto polled = consumer.poll();
    if (!polled.is_ok()) break;
    if (polled.value().has_value()) {
      records.push_back(std::move(*polled.value()));
    } else {
      sleep_micros(500);
    }
  }
  return records;
}

TEST(IntegrationTest, SingleNodeEndToEnd) {
  auto manager = BriskManager::create(fast_manager_config());
  ASSERT_TRUE(manager.is_ok()) << manager.status().to_string();
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());

  auto node = BriskNode::create(fast_node_config(1));
  ASSERT_TRUE(node.is_ok()) << node.status().to_string();
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok()) << exs.status().to_string();

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(3'000'000); });
  ScopedThread exs_thread([&] { (void)exs.value()->run_for(3'000'000); });

  constexpr int kEvents = 500;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), 7, x_i32(i), x_i32(i * 2)));
  }

  auto records = collect(consumer.value(), kEvents);
  exs.value()->stop();
  manager.value()->stop();

  ASSERT_EQ(records.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_EQ(records[i].node, 1u);
    EXPECT_EQ(records[i].sensor, 7u);
    EXPECT_EQ(records[i].fields[0].as_signed(), i) << "FIFO per node preserved";
  }
  consumers::TraceStats stats;
  for (const auto& record : records) stats.add(record);
  EXPECT_EQ(stats.summary().out_of_order, 0u);
}

TEST(IntegrationTest, MultiNodeMergeIsTimestampOrdered) {
  auto manager_config = fast_manager_config();
  manager_config.ism.sorter.initial_frame_us = 50'000;  // generous window
  auto manager = BriskManager::create(manager_config);
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());

  constexpr int kNodes = 4;
  constexpr int kPerNode = 200;
  std::vector<std::unique_ptr<BriskNode>> nodes;
  std::vector<sensors::Sensor> node_sensors;
  std::vector<std::unique_ptr<lis::ExternalSensor>> exses;
  for (int n = 0; n < kNodes; ++n) {
    auto node = BriskNode::create(fast_node_config(static_cast<NodeId>(n)));
    ASSERT_TRUE(node.is_ok());
    auto sensor = node.value()->make_sensor();
    ASSERT_TRUE(sensor.is_ok());
    auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
    ASSERT_TRUE(exs.is_ok());
    nodes.push_back(std::move(node).value());
    node_sensors.push_back(std::move(sensor).value());
    exses.push_back(std::move(exs).value());
  }

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(6'000'000); });
  std::vector<std::unique_ptr<ScopedThread>> exs_threads;
  for (auto& exs : exses) {
    exs_threads.push_back(
        std::make_unique<ScopedThread>([&exs] { (void)exs->run_for(6'000'000); }));
  }

  // Interleave notices across nodes so merge actually has work to do.
  for (int i = 0; i < kPerNode; ++i) {
    for (int n = 0; n < kNodes; ++n) {
      ASSERT_TRUE(node_sensors[static_cast<std::size_t>(n)].notice(1, x_i32(i)));
    }
  }

  auto records = collect(consumer.value(), kNodes * kPerNode);
  for (auto& exs : exses) exs->stop();
  manager.value()->stop();

  ASSERT_EQ(records.size(), static_cast<std::size_t>(kNodes) * kPerNode);
  consumers::TraceStats stats;
  for (const auto& record : records) stats.add(record);
  EXPECT_EQ(stats.summary().out_of_order, 0u)
      << "50 ms window must absorb loopback transport disorder";
  // Every node contributed its full share.
  for (int n = 0; n < kNodes; ++n) {
    EXPECT_EQ(stats.summary().per_node.at(static_cast<NodeId>(n)),
              static_cast<std::uint64_t>(kPerNode));
  }
}

TEST(IntegrationTest, CausalTachyonRepairedEndToEnd) {
  auto manager_config = fast_manager_config();
  manager_config.ism.cre.hold_timeout_us = 2'000'000;
  auto manager = BriskManager::create(manager_config);
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());

  auto node_a = BriskNode::create(fast_node_config(1));
  auto node_b = BriskNode::create(fast_node_config(2));
  ASSERT_TRUE(node_a.is_ok());
  ASSERT_TRUE(node_b.is_ok());
  auto sensor_a = node_a.value()->make_sensor();
  auto sensor_b = node_b.value()->make_sensor();
  ASSERT_TRUE(sensor_a.is_ok());
  ASSERT_TRUE(sensor_b.is_ok());
  auto exs_a = node_a.value()->connect_exs("127.0.0.1", manager.value()->port());
  auto exs_b = node_b.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs_a.is_ok());
  ASSERT_TRUE(exs_b.is_ok());

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(4'000'000); });
  ScopedThread exs_a_thread([&] { (void)exs_a.value()->run_for(4'000'000); });
  ScopedThread exs_b_thread([&] { (void)exs_b.value()->run_for(4'000'000); });

  // The consequence is NOTICEd *before* its reason, so its timestamp is
  // smaller — a tachyon once both reach the ISM. BRISK must override the
  // consequence timestamp with reason + margin.
  ASSERT_TRUE(sensor_b.value().notice(20, x_conseq(555), x_str("consequence")));
  sleep_micros(20'000);
  ASSERT_TRUE(sensor_a.value().notice(10, x_reason(555), x_str("reason")));

  auto records = collect(consumer.value(), 2);
  exs_a.value()->stop();
  exs_b.value()->stop();
  manager.value()->stop();

  ASSERT_EQ(records.size(), 2u);
  const sensors::Record* reason = nullptr;
  const sensors::Record* conseq = nullptr;
  for (const auto& record : records) {
    if (record.reason_id().has_value()) reason = &record;
    if (record.conseq_id().has_value()) conseq = &record;
  }
  ASSERT_NE(reason, nullptr);
  ASSERT_NE(conseq, nullptr);
  EXPECT_GT(conseq->timestamp, reason->timestamp)
      << "tachyon must be repaired: consequence ordered after its reason";
  EXPECT_EQ(manager.value()->ism().cre().stats().tachyons_repaired, 1u);
}

TEST(IntegrationTest, ClockSyncAlignsSkewedNodesOverSockets) {
  auto manager_config = fast_manager_config();
  manager_config.ism.enable_sync = true;
  manager_config.ism.sync.period_us = 100'000;  // fast rounds for the test
  manager_config.ism.sync.brisk.polls_per_round = 3;
  manager_config.ism.sync_poll_timeout_us = 500'000;
  auto manager = BriskManager::create(manager_config);
  ASSERT_TRUE(manager.is_ok());

  // Two nodes whose clocks disagree by 70 ms.
  clk::SimClock clock_a(clk::SystemClock::instance(), {.initial_offset_us = -50'000});
  clk::SimClock clock_b(clk::SystemClock::instance(), {.initial_offset_us = 20'000});

  auto node_a = BriskNode::create(fast_node_config(1), clock_a);
  auto node_b = BriskNode::create(fast_node_config(2), clock_b);
  ASSERT_TRUE(node_a.is_ok());
  ASSERT_TRUE(node_b.is_ok());
  auto exs_a = node_a.value()->connect_exs("127.0.0.1", manager.value()->port());
  auto exs_b = node_b.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs_a.is_ok());
  ASSERT_TRUE(exs_b.is_ok());

  ScopedThread ism_thread([&] { (void)manager.value()->run_for(2'500'000); });
  ScopedThread exs_a_thread([&] { (void)exs_a.value()->run_for(2'500'000); });
  ScopedThread exs_b_thread([&] { (void)exs_b.value()->run_for(2'500'000); });

  // Wait for several sync rounds.
  const TimeMicros deadline = monotonic_micros() + 2'000'000;
  while (monotonic_micros() < deadline) {
    if (exs_a.value()->core().correction() != 0) break;
    sleep_micros(10'000);
  }
  sleep_micros(300'000);  // let another round settle

  exs_a.value()->stop();
  exs_b.value()->stop();
  manager.value()->stop();

  // Corrected clocks = offset + correction must now agree within loopback
  // noise; node A (behind by 70 ms) must have been advanced.
  const TimeMicros corrected_a = -50'000 + exs_a.value()->core().correction();
  const TimeMicros corrected_b = 20'000 + exs_b.value()->core().correction();
  EXPECT_GT(exs_a.value()->core().correction(), 60'000) << "laggard must close the 70 ms gap";
  EXPECT_LT(std::abs(corrected_a - corrected_b), 5'000)
      << "ensemble agreement within a few ms on loopback";
  // The most-ahead clock is the reference and essentially never moves; once
  // converged, loopback jitter may elect either node and nudge the other by
  // a few microseconds, so "never" is asserted as "negligibly".
  EXPECT_LT(exs_b.value()->core().correction(), 1'000)
      << "reference clock must not be dragged";
}

TEST(IntegrationTest, PiclTraceFileWrittenByManager) {
  const std::string path = "/tmp/brisk-integration-" + std::to_string(::getpid()) + ".picl";
  auto manager_config = fast_manager_config();
  manager_config.picl_trace_path = path;
  manager_config.picl_options.mode = picl::TimestampMode::utc_micros;
  auto manager = BriskManager::create(manager_config);
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());

  auto node = BriskNode::create(fast_node_config(3));
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());

  {
    ScopedThread ism_thread([&] { (void)manager.value()->run_for(2'000'000); });
    ScopedThread exs_thread([&] { (void)exs.value()->run_for(2'000'000); });
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(sensor.value().notice(4, x_i32(i)));
    }
    auto records = collect(consumer.value(), 50);
    EXPECT_EQ(records.size(), 50u);
    exs.value()->stop();
    manager.value()->stop();
  }
  ASSERT_TRUE(manager.value()->drain());

  auto reader = picl::PiclReader::open(path, manager_config.picl_options);
  ASSERT_TRUE(reader.is_ok());
  auto records = reader.value().read_all();
  ASSERT_TRUE(records.is_ok()) << records.status().to_string();
  EXPECT_EQ(records.value().size(), 50u);
  EXPECT_EQ(records.value()[0].node, 3u);
  std::remove(path.c_str());
}

TEST(IntegrationTest, NamedShmAttachAcrossHandles) {
  // The application and the EXS normally live in different processes and
  // meet through a named region; emulate with two BriskNode handles.
  NodeConfig config = fast_node_config(9);
  config.shm_name = "/brisk-itest-" + std::to_string(::getpid());
  auto creator = BriskNode::create(config);
  ASSERT_TRUE(creator.is_ok()) << creator.status().to_string();

  auto attacher = BriskNode::attach(config);
  ASSERT_TRUE(attacher.is_ok()) << attacher.status().to_string();

  auto sensor = attacher.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  ASSERT_TRUE(sensor.value().notice(1, x_i32(42)));

  // The creator's view of the rings sees the record.
  EXPECT_EQ(creator.value()->rings().claimed_slots(), 1u);
  auto ring = creator.value()->rings().slot(0);
  ASSERT_TRUE(ring.is_ok());
  std::vector<std::uint8_t> bytes;
  EXPECT_TRUE(ring.value().try_pop(bytes));

  // Cleanup the name.
  shm::SharedRegion::open_named(config.shm_name).value().unlink();
}

TEST(IntegrationTest, IsmStatsAccount) {
  auto manager = BriskManager::create(fast_manager_config());
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());
  auto node = BriskNode::create(fast_node_config(1));
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());

  {
    ScopedThread ism_thread([&] { (void)manager.value()->run_for(2'000'000); });
    ScopedThread exs_thread([&] { (void)exs.value()->run_for(2'000'000); });
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(sensor.value().notice(1, x_i32(i)));
    auto records = collect(consumer.value(), 100);
    EXPECT_EQ(records.size(), 100u);
    exs.value()->stop();
    manager.value()->stop();
  }

  const auto& stats = manager.value()->ism().stats();
  EXPECT_EQ(stats.records_received, 100u);
  EXPECT_GE(stats.batches_received, 1u);
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_GT(stats.bytes_received, 100u * 20);
  EXPECT_EQ(stats.protocol_errors, 0u);

  const auto exs_stats = exs.value()->core().stats();
  EXPECT_EQ(exs_stats.records_forwarded, 100u);
  EXPECT_EQ(exs_stats.ring_drops_seen, 0u);
  EXPECT_EQ(stats.batch_seq_gaps, 0u) << "TCP stream guarantees batch continuity";
}

TEST(IntegrationTest, RingOverflowDropsReachIsmAccounting) {
  auto manager = BriskManager::create(fast_manager_config());
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());

  // A deliberately tiny ring with nobody draining it yet.
  NodeConfig node_config = fast_node_config(1);
  node_config.ring_capacity = 2'048;
  auto node = BriskNode::create(node_config);
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());

  // Overflow before the EXS even starts: guaranteed drops.
  std::uint64_t accepted = 0;
  for (int i = 0; i < 10'000; ++i) {
    if (sensor.value().notice(1, x_i32(i))) ++accepted;
  }
  ASSERT_GT(accepted, 0u);
  ASSERT_GT(sensor.value().stats().records_dropped, 0u);

  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());
  {
    ScopedThread ism_thread([&] { (void)manager.value()->run_for(1'500'000); });
    ScopedThread exs_thread([&] { (void)exs.value()->run_for(1'500'000); });
    auto records = collect(consumer.value(), accepted);
    EXPECT_EQ(records.size(), accepted) << "everything the ring accepted is delivered";
    exs.value()->stop();
    manager.value()->stop();
  }

  // The drop counter crossed the whole pipeline: ring → EXS → batch header
  // → ISM accounting.
  EXPECT_EQ(exs.value()->core().stats().ring_drops_seen,
            sensor.value().stats().records_dropped);
  EXPECT_EQ(manager.value()->ism().stats().ring_drops_reported,
            sensor.value().stats().records_dropped);
}

TEST(IntegrationTest, FlowControlShedsExcessLoad) {
  auto manager_config = fast_manager_config();
  manager_config.ism.flow_control_rate_per_sec = 1'000.0;  // far below offered
  manager_config.ism.flow_control_burst = 50.0;
  auto manager = BriskManager::create(manager_config);
  ASSERT_TRUE(manager.is_ok());
  auto consumer = manager.value()->make_consumer();
  ASSERT_TRUE(consumer.is_ok());
  auto node = BriskNode::create(fast_node_config(1));
  ASSERT_TRUE(node.is_ok());
  auto sensor = node.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());
  auto exs = node.value()->connect_exs("127.0.0.1", manager.value()->port());
  ASSERT_TRUE(exs.is_ok());

  constexpr int kOffered = 5'000;
  {
    ScopedThread ism_thread([&] { (void)manager.value()->run_for(1'500'000); });
    ScopedThread exs_thread([&] { (void)exs.value()->run_for(1'500'000); });
    for (int i = 0; i < kOffered; ++i) {
      (void)sensor.value().notice(1, x_i32(i));
    }
    // Wait out the run; everything the bucket admits should be delivered.
    sleep_micros(1'600'000);
    exs.value()->stop();
    manager.value()->stop();
  }

  const auto& stats = manager.value()->ism().stats();
  EXPECT_EQ(stats.records_received,
            stats.flow_control_drops + manager.value()->ism().sorter_stats().pushed);
  EXPECT_GT(stats.flow_control_drops, 0u) << "the bucket must have rejected load";
  EXPECT_LT(manager.value()->ism().sorter_stats().pushed,
            static_cast<std::uint64_t>(kOffered))
      << "admitted stream must be bounded by the configured rate";
}

TEST(IntegrationTest, ConfigValidationRejectsBadKnobs) {
  ManagerConfig bad_manager;
  bad_manager.output_ring_capacity = 10;
  EXPECT_FALSE(BriskManager::create(bad_manager).is_ok());

  NodeConfig bad_node;
  bad_node.sensor_slots = 0;
  EXPECT_FALSE(BriskNode::create(bad_node).is_ok());

  NodeConfig no_name;
  EXPECT_EQ(BriskNode::attach(no_name).status().code(), Errc::invalid_argument);
}

TEST(IntegrationTest, DescribeRendersKnobs) {
  const std::string node_desc = describe(fast_node_config(7));
  EXPECT_NE(node_desc.find("node = 7"), std::string::npos);
  EXPECT_NE(node_desc.find("exs.select_timeout_us = 2000"), std::string::npos);
  const std::string manager_desc = describe(fast_manager_config());
  EXPECT_NE(manager_desc.find("sync.algorithm = \"brisk\""), std::string::npos);
  EXPECT_NE(manager_desc.find("sorter.initial_frame_us = 5000"), std::string::npos);
}

}  // namespace
}  // namespace brisk
