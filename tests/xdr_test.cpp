// XDR codec tests: golden wire bytes (RFC 4506 discipline), round trips,
// truncation/malformed-input handling, and parameterized round-trip sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::xdr {
namespace {

ByteBuffer encode(const std::function<void(Encoder&)>& fn) {
  ByteBuffer buf;
  Encoder enc(buf);
  fn(enc);
  return buf;
}

// ---- golden wire bytes ---------------------------------------------------------

TEST(XdrEncoderTest, U32IsBigEndian) {
  auto buf = encode([](Encoder& e) { e.put_u32(0x01020304); });
  EXPECT_EQ(buf.hex(), "01020304");
}

TEST(XdrEncoderTest, I32NegativeTwosComplement) {
  auto buf = encode([](Encoder& e) { e.put_i32(-1); });
  EXPECT_EQ(buf.hex(), "ffffffff");
}

TEST(XdrEncoderTest, U64IsBigEndian) {
  auto buf = encode([](Encoder& e) { e.put_u64(0x0102030405060708ULL); });
  EXPECT_EQ(buf.hex(), "0102030405060708");
}

TEST(XdrEncoderTest, BoolIsFourBytes) {
  auto buf = encode([](Encoder& e) {
    e.put_bool(true);
    e.put_bool(false);
  });
  EXPECT_EQ(buf.hex(), "0000000100000000");
}

TEST(XdrEncoderTest, StringPadsToFourBytes) {
  // "hi" → length 2, bytes, 2 bytes zero padding.
  auto buf = encode([](Encoder& e) { e.put_string("hi"); });
  EXPECT_EQ(buf.hex(), "0000000268690000");
}

TEST(XdrEncoderTest, StringMultipleOfFourHasNoPadding) {
  auto buf = encode([](Encoder& e) { e.put_string("1234"); });
  EXPECT_EQ(buf.size(), 8u);
}

TEST(XdrEncoderTest, EmptyStringIsJustLength) {
  auto buf = encode([](Encoder& e) { e.put_string(""); });
  EXPECT_EQ(buf.hex(), "00000000");
}

TEST(XdrEncoderTest, F32KnownBits) {
  // 1.0f = 0x3f800000
  auto buf = encode([](Encoder& e) { e.put_f32(1.0f); });
  EXPECT_EQ(buf.hex(), "3f800000");
}

TEST(XdrEncoderTest, F64KnownBits) {
  // -2.0 = 0xc000000000000000
  auto buf = encode([](Encoder& e) { e.put_f64(-2.0); });
  EXPECT_EQ(buf.hex(), "c000000000000000");
}

TEST(XdrEncoderTest, OpaqueFixedNoLengthWord) {
  const std::uint8_t raw[] = {0xde, 0xad, 0xbe};
  auto buf = encode([&](Encoder& e) { e.put_opaque_fixed(ByteSpan{raw, 3}); });
  EXPECT_EQ(buf.hex(), "deadbe00");
}

TEST(XdrEncoderTest, PadHelpers) {
  EXPECT_EQ(Encoder::pad_of(0), 0u);
  EXPECT_EQ(Encoder::pad_of(1), 3u);
  EXPECT_EQ(Encoder::pad_of(4), 0u);
  EXPECT_EQ(Encoder::pad_of(5), 3u);
  EXPECT_EQ(Encoder::opaque_wire_size(0), 4u);
  EXPECT_EQ(Encoder::opaque_wire_size(5), 12u);
}

TEST(XdrEncoderTest, BytesWrittenTracks) {
  ByteBuffer buf;
  Encoder enc(buf);
  enc.put_u32(1);
  enc.put_string("abc");
  EXPECT_EQ(enc.bytes_written(), 4u + 8u);
  EXPECT_EQ(buf.size(), enc.bytes_written());
}

// ---- decode golden -------------------------------------------------------------

TEST(XdrDecoderTest, RejectsTruncatedU32) {
  const std::uint8_t raw[] = {1, 2, 3};
  Decoder dec(ByteSpan{raw, 3});
  EXPECT_EQ(dec.get_u32().status().code(), Errc::truncated);
}

TEST(XdrDecoderTest, RejectsBoolOutOfRange) {
  auto buf = encode([](Encoder& e) { e.put_u32(2); });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_bool().status().code(), Errc::malformed);
}

TEST(XdrDecoderTest, RejectsOversizedOpaque) {
  auto buf = encode([](Encoder& e) { e.put_u32(1'000'000); });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_opaque(1024).status().code(), Errc::malformed);
}

TEST(XdrDecoderTest, RejectsOpaqueBodyTruncation) {
  auto buf = encode([](Encoder& e) { e.put_u32(64); });  // declares 64, provides 0
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_opaque().status().code(), Errc::truncated);
}

TEST(XdrDecoderTest, SkipAndExhausted) {
  auto buf = encode([](Encoder& e) {
    e.put_u32(1);
    e.put_u32(2);
  });
  Decoder dec(buf.view());
  ASSERT_TRUE(dec.skip(4));
  EXPECT_EQ(dec.get_u32().value(), 2u);
  EXPECT_TRUE(dec.exhausted());
  EXPECT_EQ(dec.skip(1).code(), Errc::truncated);
}

TEST(XdrDecoderTest, StringConsumesPadding) {
  auto buf = encode([](Encoder& e) {
    e.put_string("abc");
    e.put_u32(77);
  });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_string().value(), "abc");
  EXPECT_EQ(dec.get_u32().value(), 77u);
}

// ---- round trips ----------------------------------------------------------------

TEST(XdrRoundTrip, MixedSequence) {
  auto buf = encode([](Encoder& e) {
    e.put_i32(-123);
    e.put_u64(std::numeric_limits<std::uint64_t>::max());
    e.put_string("brisk");
    e.put_f64(3.14159);
    e.put_bool(true);
  });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_i32().value(), -123);
  EXPECT_EQ(dec.get_u64().value(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(dec.get_string().value(), "brisk");
  EXPECT_DOUBLE_EQ(dec.get_f64().value(), 3.14159);
  EXPECT_TRUE(dec.get_bool().value());
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrRoundTrip, I64Extremes) {
  auto buf = encode([](Encoder& e) {
    e.put_i64(std::numeric_limits<std::int64_t>::min());
    e.put_i64(std::numeric_limits<std::int64_t>::max());
    e.put_i64(0);
  });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_i64().value(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(dec.get_i64().value(), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(dec.get_i64().value(), 0);
}

TEST(XdrRoundTrip, FloatSpecials) {
  auto buf = encode([](Encoder& e) {
    e.put_f32(std::numeric_limits<float>::infinity());
    e.put_f64(-std::numeric_limits<double>::infinity());
    e.put_f32(std::numeric_limits<float>::denorm_min());
  });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_f32().value(), std::numeric_limits<float>::infinity());
  EXPECT_EQ(dec.get_f64().value(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(dec.get_f32().value(), std::numeric_limits<float>::denorm_min());
}

TEST(XdrRoundTrip, NanSurvives) {
  auto buf = encode([](Encoder& e) { e.put_f64(std::numeric_limits<double>::quiet_NaN()); });
  Decoder dec(buf.view());
  EXPECT_TRUE(std::isnan(dec.get_f64().value()));
}

TEST(XdrRoundTrip, OpaqueWithEmbeddedZeros) {
  const std::uint8_t raw[] = {0, 1, 0, 2, 0};
  auto buf = encode([&](Encoder& e) { e.put_opaque(ByteSpan{raw, 5}); });
  Decoder dec(buf.view());
  auto out = dec.get_opaque();
  ASSERT_TRUE(out.is_ok());
  ASSERT_EQ(out.value().size(), 5u);
  EXPECT_EQ(out.value()[3], 2);
  EXPECT_TRUE(dec.exhausted()) << "padding must be consumed";
}

// ---- parameterized sweeps ---------------------------------------------------------

class XdrU32Sweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(XdrU32Sweep, RoundTrips) {
  auto buf = encode([&](Encoder& e) { e.put_u32(GetParam()); });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_u32().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, XdrU32Sweep,
                         ::testing::Values(0u, 1u, 0x7fu, 0x80u, 0xffu, 0x100u, 0xffffu,
                                           0x10000u, 0x7fffffffu, 0x80000000u, 0xffffffffu));

class XdrStringSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(XdrStringSweep, RoundTripsAllPaddingCases) {
  std::string text(GetParam(), 'x');
  for (std::size_t i = 0; i < text.size(); ++i) text[i] = static_cast<char>('a' + i % 26);
  auto buf = encode([&](Encoder& e) { e.put_string(text); });
  // Wire size is always 4-byte aligned.
  EXPECT_EQ(buf.size() % 4, 0u);
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_string().value(), text);
  EXPECT_TRUE(dec.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Lengths, XdrStringSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7, 8, 63, 64, 65, 255, 1024));

class XdrF64Sweep : public ::testing::TestWithParam<double> {};

TEST_P(XdrF64Sweep, RoundTripsExactly) {
  auto buf = encode([&](Encoder& e) { e.put_f64(GetParam()); });
  Decoder dec(buf.view());
  EXPECT_EQ(dec.get_f64().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, XdrF64Sweep,
                         ::testing::Values(0.0, -0.0, 1.0, -1.5, 1e-300, 1e300, 3.141592653589793,
                                           std::numeric_limits<double>::epsilon()));

}  // namespace
}  // namespace brisk::xdr
