// Fleet observability layer: the 0xFF03 event record schema, the diagnostic
// flight recorder, the relay-tier metrics aggregator, the sorter's disorder
// instrumentation, and the consumer-side health rollup.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "clock/clock.hpp"
#include "consumers/health.hpp"
#include "ism/online_sorter.hpp"
#include "ism/relay_aggregator.hpp"
#include "metrics/flight_recorder.hpp"
#include "sensors/event_record.hpp"
#include "sensors/metrics_record.hpp"

namespace brisk {
namespace {

using sensors::EventKind;

// ---- 0xFF03 event record codec ----------------------------------------------

TEST(EventRecordTest, RoundTrip) {
  const sensors::Record record = sensors::make_event_record(
      7, 42, 1'000'000, EventKind::zero_window_grant, 9, 128, 999'500);
  EXPECT_TRUE(sensors::is_event_record(record));
  EXPECT_EQ(record.sensor, sensors::kEventSensorId);
  EXPECT_EQ(record.timestamp, 1'000'000);
  auto point = sensors::decode_event_record(record);
  ASSERT_TRUE(point.is_ok()) << point.status().to_string();
  EXPECT_EQ(point.value().kind, EventKind::zero_window_grant);
  EXPECT_EQ(point.value().subject, 9u);
  EXPECT_EQ(point.value().value, 128u);
  EXPECT_EQ(point.value().at, 999'500);
}

TEST(EventRecordTest, RejectsWrongSensorAndSchema) {
  sensors::Record plain;
  plain.sensor = 7;
  EXPECT_FALSE(sensors::decode_event_record(plain).is_ok());

  sensors::Record truncated = sensors::make_event_record(
      1, 0, 0, EventKind::session_reaped, 0, 0, 0);
  truncated.fields.pop_back();
  EXPECT_FALSE(sensors::decode_event_record(truncated).is_ok());

  sensors::Record bad_kind = sensors::make_event_record(
      1, 0, 0, EventKind::session_reaped, 0, 0, 0);
  bad_kind.fields[0] = sensors::Field::u8(sensors::kMaxEventKind + 1);
  EXPECT_FALSE(sensors::decode_event_record(bad_kind).is_ok());
}

TEST(EventRecordTest, EveryKindHasAToken) {
  for (std::uint8_t k = 0; k <= sensors::kMaxEventKind; ++k) {
    const char* token = sensors::event_kind_token(static_cast<EventKind>(k));
    ASSERT_NE(token, nullptr);
    EXPECT_STRNE(token, "unknown") << "kind " << static_cast<int>(k);
  }
}

// ---- flight recorder --------------------------------------------------------

TEST(FlightRecorderTest, KeepsEventsInOrder) {
  metrics::FlightRecorder ring("test", 16);
  ring.record(EventKind::session_rejoined, 1, 10, 100);
  ring.record(EventKind::reconnect, 2, 20, 200);
  ring.record(EventKind::lane_drop, 3, 30, 300);
  EXPECT_EQ(ring.total_recorded(), 3u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::session_rejoined);
  EXPECT_EQ(events[1].subject, 2u);
  EXPECT_EQ(events[2].value, 30u);
  EXPECT_EQ(events[2].at, 300);
}

TEST(FlightRecorderTest, WrapsKeepingNewest) {
  metrics::FlightRecorder ring("test", 8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record(EventKind::queue_drop, i, i, static_cast<TimeMicros>(i));
  }
  EXPECT_EQ(ring.total_recorded(), 20u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].subject, 12 + i);  // the 8 newest of 20
  }
}

TEST(FlightRecorderTest, DrainNewIsExactlyOnce) {
  metrics::FlightRecorder ring("test", 16);
  std::uint64_t cursor = 0;
  ring.record(EventKind::watermark_stall, 1, 0, 0);
  ring.record(EventKind::watermark_stall, 2, 0, 0);
  EXPECT_EQ(ring.drain_new(cursor).size(), 2u);
  EXPECT_TRUE(ring.drain_new(cursor).empty());
  ring.record(EventKind::watermark_stall, 3, 0, 0);
  const auto more = ring.drain_new(cursor);
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].subject, 3u);
}

TEST(FlightRecorderTest, DrainSkipsOverwrittenHistory) {
  metrics::FlightRecorder ring("test", 4);
  std::uint64_t cursor = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(EventKind::batch_gap, i, 0, 0);
  }
  const auto events = ring.drain_new(cursor);
  ASSERT_EQ(events.size(), 4u);  // 6 oldest were overwritten before the read
  EXPECT_EQ(events.front().subject, 6u);
  EXPECT_EQ(events.back().subject, 9u);
  EXPECT_EQ(cursor, 10u);
}

TEST(FlightRecorderTest, ConcurrentWritersNeverYieldTornEvents) {
  metrics::FlightRecorder ring("test", 64);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5'000;
  std::atomic<bool> stop{false};
  // A reader hammering snapshot() while writers wrap the ring: any event it
  // returns must be internally consistent (subject == value == at).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const metrics::FlightEvent& event : ring.snapshot()) {
        ASSERT_EQ(event.subject, event.value);
        ASSERT_EQ(static_cast<TimeMicros>(event.subject), event.at);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t tag = static_cast<std::uint64_t>(t) * kPerThread + i;
        ring.record(EventKind::lane_drop, tag, tag, static_cast<TimeMicros>(tag));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.total_recorded(), kThreads * kPerThread);
}

TEST(FlightRecorderTest, DumpRequestIsConsumedOnce) {
  (void)metrics::consume_flight_dump_request();  // clear any leftover state
  EXPECT_FALSE(metrics::consume_flight_dump_request());
  metrics::request_flight_dump();
  EXPECT_TRUE(metrics::consume_flight_dump_request());
  EXPECT_FALSE(metrics::consume_flight_dump_request());
}

TEST(FlightRecorderTest, DumpWritesEveryRegisteredRecorder) {
  metrics::FlightRecorder ring("dump-me", 8);
  ring.record(EventKind::session_expired, 5, 7, 1'234);
  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* out = open_memstream(&buffer, &size);
  ASSERT_NE(out, nullptr);
  metrics::dump_flight_recorders(out);
  std::fclose(out);
  const std::string text(buffer, size);
  std::free(buffer);
  EXPECT_NE(text.find("dump-me"), std::string::npos);
  EXPECT_NE(text.find("expire"), std::string::npos);
}

// ---- relay aggregator -------------------------------------------------------

sensors::Record metric(NodeId node, TimeMicros ts, std::string_view name,
                       std::uint64_t value,
                       sensors::MetricKind kind = sensors::MetricKind::counter) {
  static SequenceNo seq = 0;
  return sensors::make_metrics_record(node, seq++, ts, name, value, kind);
}

/// Decodes a flush into name -> (value, kind), asserting every record is a
/// well-formed 0xFF01 stamped with the relay's identity.
std::map<std::string, std::pair<std::uint64_t, sensors::MetricKind>> decode_flush(
    const std::vector<sensors::Record>& records, NodeId relay, TimeMicros flush_ts) {
  std::map<std::string, std::pair<std::uint64_t, sensors::MetricKind>> out;
  for (const sensors::Record& record : records) {
    EXPECT_EQ(record.node, relay);
    EXPECT_EQ(record.timestamp, flush_ts);
    auto point = sensors::decode_metrics_record(record);
    EXPECT_TRUE(point.is_ok()) << point.status().to_string();
    if (point) out[point.value().name] = {point.value().value, point.value().kind};
  }
  return out;
}

TEST(RelayAggregationTest, CountersSumLatestPerNode) {
  ism::RelayAggregator agg(1000, 0);
  agg.absorb(metric(1, 100, "exs.records_forwarded", 50));
  agg.absorb(metric(1, 200, "exs.records_forwarded", 70));  // newer snapshot wins
  agg.absorb(metric(2, 150, "exs.records_forwarded", 30));
  const auto rows = decode_flush(agg.flush(500, 0), 1000, 500);
  ASSERT_TRUE(rows.count("agg.exs.records_forwarded"));
  EXPECT_EQ(rows.at("agg.exs.records_forwarded").first, 100u);
  EXPECT_EQ(rows.at("agg.exs.records_forwarded").second, sensors::MetricKind::counter);
}

TEST(RelayAggregationTest, GaugesSumToSubtreeLevel) {
  ism::RelayAggregator agg(1000, 0);
  agg.absorb(metric(1, 100, "exs.replay_pending", 8, sensors::MetricKind::gauge));
  agg.absorb(metric(1, 200, "exs.replay_pending", 2, sensors::MetricKind::gauge));
  agg.absorb(metric(2, 150, "exs.replay_pending", 5, sensors::MetricKind::gauge));
  const auto rows = decode_flush(agg.flush(500, 0), 1000, 500);
  EXPECT_EQ(rows.at("agg.exs.replay_pending").first, 7u);  // 2 + 5, latest per node
  EXPECT_EQ(rows.at("agg.exs.replay_pending").second, sensors::MetricKind::gauge);
}

TEST(RelayAggregationTest, HistogramBucketsMergeBucketwise) {
  ism::RelayAggregator agg(1000, 0);
  agg.absorb(metric(1, 100, "lat.a_to_b.le_100", 4, sensors::MetricKind::histogram_bucket));
  agg.absorb(metric(2, 110, "lat.a_to_b.le_100", 6, sensors::MetricKind::histogram_bucket));
  agg.absorb(metric(2, 110, "lat.a_to_b.le_inf", 1, sensors::MetricKind::histogram_bucket));
  const auto rows = decode_flush(agg.flush(500, 0), 1000, 500);
  EXPECT_EQ(rows.at("agg.lat.a_to_b.le_100").first, 10u);
  EXPECT_EQ(rows.at("agg.lat.a_to_b.le_inf").first, 1u);
  EXPECT_EQ(rows.at("agg.lat.a_to_b.le_100").second, sensors::MetricKind::histogram_bucket);
}

TEST(RelayAggregationTest, TagsPopulationAndPerNodeWatermarks) {
  ism::RelayAggregator agg(1000, 0);
  agg.absorb(metric(1, 100, "exs.records_forwarded", 1));
  agg.absorb(metric(1, 900, "exs.records_forwarded", 2));
  agg.absorb(metric(7, 400, "exs.records_forwarded", 3));
  EXPECT_EQ(agg.max_absorbed_ts(), 900);
  const auto rows = decode_flush(agg.flush(900, 0), 1000, 900);
  EXPECT_EQ(rows.at("agg.nodes").first, 2u);
  EXPECT_EQ(rows.at("agg.nodes").second, sensors::MetricKind::gauge);
  EXPECT_EQ(rows.at("agg.node.1.watermark_us").first, 900u);
  EXPECT_EQ(rows.at("agg.node.7.watermark_us").first, 400u);
}

TEST(RelayAggregationTest, StateIsCumulativeAcrossFlushes) {
  ism::RelayAggregator agg(1000, 0);
  agg.absorb(metric(1, 100, "exs.records_forwarded", 5));
  EXPECT_TRUE(agg.pending());
  (void)agg.flush(100, 0);
  EXPECT_FALSE(agg.pending());
  agg.absorb(metric(2, 200, "exs.records_forwarded", 7));
  const auto rows = decode_flush(agg.flush(200, 0), 1000, 200);
  // Node 1's latest survives the first flush: counters stay monotone.
  EXPECT_EQ(rows.at("agg.exs.records_forwarded").first, 12u);
  EXPECT_EQ(agg.flushes(), 2u);
}

TEST(RelayAggregationTest, DueRespectsPeriodAndPendingState) {
  ism::RelayAggregator agg(1000, 1'000'000);
  EXPECT_FALSE(agg.due(5'000'000));  // nothing absorbed
  agg.absorb(metric(1, 100, "exs.records_forwarded", 1));
  EXPECT_FALSE(agg.due(500'000));  // period not elapsed
  EXPECT_TRUE(agg.due(1'000'001));
  (void)agg.flush(100, 1'000'001);
  EXPECT_FALSE(agg.due(1'500'000));  // nothing pending after the flush
}

TEST(RelayAggregationTest, CountsMalformedAndIgnoresThem) {
  ism::RelayAggregator agg(1000, 0);
  sensors::Record bogus;
  bogus.node = 1;
  bogus.sensor = sensors::kMetricsSensorId;  // reserved id, garbage payload
  agg.absorb(bogus);
  EXPECT_EQ(agg.malformed(), 1u);
  EXPECT_TRUE(agg.empty());
  EXPECT_TRUE(agg.flush(0, 0).empty());
}

// ---- sorter disorder instrumentation ----------------------------------------

TEST(SorterDisorderTest, LateArrivalsCountAndFeedTheHistogram) {
  clk::ManualClock clock(0);
  ism::SorterConfig config;
  config.initial_frame_us = 1'000;
  config.min_frame_us = 1'000;
  config.max_frame_us = 1'000;
  config.adaptive = false;
  std::vector<sensors::Record> emitted;
  ism::OnlineSorter sorter(config, clock,
                           [&](sensors::Record r) { emitted.push_back(std::move(r)); });

  sensors::Record first;
  first.node = 1;
  first.sensor = 7;
  first.timestamp = 1'000;
  ASSERT_TRUE(sorter.push(first).ok());
  clock.set(10'000);  // well past the delay window
  sorter.service();
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(sorter.stats().late_drops, 0u);

  sensors::Record late;
  late.node = 2;
  late.sensor = 7;
  late.timestamp = 400;  // behind the emitted frontier: reordering loss
  ASSERT_TRUE(sorter.push(late).ok());
  EXPECT_EQ(sorter.stats().late_drops, 1u);
  clock.set(20'000);
  sorter.service();
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(sorter.stats().out_of_order_emissions, 1u);
  EXPECT_EQ(sorter.disorder().total(), 1u);  // lateness of 600us, recorded once
}

// ---- health rollup ----------------------------------------------------------

consumers::HealthRollup::Options tight_health() {
  consumers::HealthRollup::Options options;
  options.stale_after_us = 1'000'000;
  options.departed_after_us = 3'000'000;
  return options;
}

const consumers::HealthRow* find_node(const std::vector<consumers::HealthRow>& rows,
                                      NodeId node) {
  for (const consumers::HealthRow& row : rows) {
    if (row.node == node) return &row;
  }
  return nullptr;
}

TEST(HealthRollupTest, AgesThroughLiveStaleDeparted) {
  consumers::HealthRollup health(tight_health());
  health.observe(metric(1, 100, "exs.records_forwarded", 1), 1'000'000);
  const auto live_rows = health.rows(1'500'000);
  const auto* live = find_node(live_rows, 1);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->state, consumers::NodeHealth::live);
  const auto stale_rows = health.rows(2'500'000);
  const auto* stale = find_node(stale_rows, 1);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->state, consumers::NodeHealth::stale);
  const auto departed_rows = health.rows(5'000'000);
  const auto* departed = find_node(departed_rows, 1);
  ASSERT_NE(departed, nullptr);
  EXPECT_EQ(departed->state, consumers::NodeHealth::departed);
}

TEST(HealthRollupTest, ExplicitExpiryDepartsAndRejoinRevives) {
  consumers::HealthRollup health(tight_health());
  health.observe(metric(2, 100, "exs.records_forwarded", 1), 1'000'000);
  health.observe(sensors::make_event_record(sensors::kIsmMetricsNodeId, 0, 200,
                                            EventKind::session_expired, 2, 0, 150),
                 1'100'000);
  const auto gone_rows = health.rows(1'200'000);
  const auto* gone = find_node(gone_rows, 2);
  ASSERT_NE(gone, nullptr);
  EXPECT_EQ(gone->state, consumers::NodeHealth::departed);
  health.observe(sensors::make_event_record(sensors::kIsmMetricsNodeId, 1, 300,
                                            EventKind::session_rejoined, 2, 0, 250),
                 1'300'000);
  const auto back_rows = health.rows(1'400'000);
  const auto* back = find_node(back_rows, 2);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->state, consumers::NodeHealth::live);
}

TEST(HealthRollupTest, AggregateWatermarkVouchesForSubtreeNode) {
  consumers::HealthRollup health(tight_health());
  // The relay (node 1000) reports node 5's watermark; node 5's own records
  // were absorbed upstream and never reach this consumer.
  health.observe(metric(1000, 700, "agg.node.5.watermark_us", 650,
                        sensors::MetricKind::gauge),
                 1'000'000);
  const auto rows = health.rows(1'100'000);
  const auto* relay = find_node(rows, 1000);
  const auto* subtree = find_node(rows, 5);
  ASSERT_NE(relay, nullptr);
  ASSERT_NE(subtree, nullptr);
  EXPECT_EQ(subtree->state, consumers::NodeHealth::live);
  EXPECT_TRUE(subtree->via_aggregate);
  EXPECT_FALSE(relay->via_aggregate);
}

TEST(HealthRollupTest, FrozenAggregateWatermarkGoesStaleDespiteFreshGauges) {
  consumers::HealthRollup health(tight_health());
  // Node 5 died, but the relay's aggregator state is cumulative: it keeps
  // re-flushing agg.node.5.watermark_us with the frozen value. The gauge
  // arrivals keep node 5's last-seen age near zero, so only the watermark
  // falling behind the advancing frontier can expose the death.
  for (int flush = 0; flush < 5; ++flush) {
    const TimeMicros flush_ts = 1'000'000 + flush * 1'000'000;
    const TimeMicros now = 10'000'000 + flush * 1'000'000;
    health.observe(metric(1000, flush_ts, "agg.node.5.watermark_us", 900'000,
                          sensors::MetricKind::gauge),
                   now);
    // A live node keeps the fleet frontier moving.
    health.observe(metric(1, flush_ts, "exs.records_forwarded", 1), now);
  }
  const auto rows = health.rows(14'000'100);
  const auto* dead = find_node(rows, 5);
  const auto* alive = find_node(rows, 1);
  ASSERT_NE(dead, nullptr);
  ASSERT_NE(alive, nullptr);
  EXPECT_TRUE(dead->via_aggregate);
  EXPECT_EQ(dead->state, consumers::NodeHealth::departed);  // lag 4.1s > 3s
  EXPECT_EQ(alive->state, consumers::NodeHealth::live);
}

TEST(HealthRollupTest, PressureEventsCountAgainstTheirSubject) {
  consumers::HealthRollup health(tight_health());
  const NodeId ism = sensors::kIsmMetricsNodeId;
  health.observe(sensors::make_event_record(ism, 0, 100, EventKind::zero_window_grant,
                                            3, 64, 90),
                 1'000'000);
  health.observe(sensors::make_event_record(ism, 1, 110, EventKind::watermark_stall,
                                            3, 4096, 100),
                 1'000'000);
  health.observe(sensors::make_event_record(ism, 2, 120, EventKind::reconnect, 3, 1, 110),
                 1'000'000);
  health.observe(sensors::make_event_record(ism, 3, 130, EventKind::queue_drop, 3, 256, 120),
                 1'000'000);
  const auto rows = health.rows(1'100'000);
  const auto* row = find_node(rows, 3);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->zero_windows, 1u);
  EXPECT_EQ(row->stalls, 1u);
  EXPECT_EQ(row->reconnects, 1u);
  EXPECT_EQ(row->drops, 1u);
  EXPECT_EQ(row->events, 4u);
}

TEST(HealthRollupTest, DropSeriesUseLatestCumulativeValue) {
  consumers::HealthRollup health(tight_health());
  health.observe(metric(4, 100, "exs.ring_drops_seen", 5), 1'000'000);
  health.observe(metric(4, 200, "exs.ring_drops_seen", 9), 1'000'100);
  health.observe(metric(4, 200, "sort.late_drops", 2), 1'000'200);
  const auto rows = health.rows(1'100'000);
  const auto* row = find_node(rows, 4);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->drops, 11u);  // 9 (latest, not 5+9) + 2
}

TEST(HealthRollupTest, WatermarkLagTrailsTheFleetFrontier) {
  consumers::HealthRollup health(tight_health());
  health.observe(metric(1, 5'000, "exs.records_forwarded", 1), 1'000'000);
  health.observe(metric(2, 1'000, "exs.records_forwarded", 1), 1'000'000);
  const auto rows = health.rows(1'000'500);
  EXPECT_EQ(find_node(rows, 1)->watermark_lag_us, 0);
  EXPECT_EQ(find_node(rows, 2)->watermark_lag_us, 4'000);
}

}  // namespace
}  // namespace brisk
