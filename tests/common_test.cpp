// Unit tests for the common substrate: Status/Result, ByteBuffer,
// string utilities, time utilities, logging.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/byte_buffer.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/spsc_queue.hpp"
#include "common/string_util.hpp"
#include "common/time_util.hpp"

namespace brisk {
namespace {

// ---- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.is_ok());
  EXPECT_TRUE(static_cast<bool>(st));
  EXPECT_EQ(st.code(), Errc::ok);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st(Errc::timeout, "waited 5s");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::timeout);
  EXPECT_EQ(st.message(), "waited 5s");
  EXPECT_EQ(st.to_string(), "timeout: waited 5s");
}

TEST(StatusTest, ToStringWithoutMessage) {
  EXPECT_EQ(Status(Errc::closed).to_string(), "closed");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int raw = 0; raw <= static_cast<int>(Errc::internal); ++raw) {
    EXPECT_STRNE(errc_name(static_cast<Errc>(raw)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Errc::not_found, "gone");
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), Errc::not_found);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

// ---- ByteBuffer --------------------------------------------------------------

TEST(ByteBufferTest, AppendAndView) {
  ByteBuffer buf;
  const std::uint8_t bytes[] = {1, 2, 3};
  buf.append(ByteSpan{bytes, 3});
  EXPECT_EQ(buf.size(), 3u);
  EXPECT_EQ(buf.view()[1], 2);
}

TEST(ByteBufferTest, ReadAdvancesCursor) {
  ByteBuffer buf;
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  buf.append(ByteSpan{bytes, 4});
  std::uint8_t out[2];
  ASSERT_TRUE(buf.read(out, 2));
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(buf.remaining(), 2u);
  ASSERT_TRUE(buf.read(out, 2));
  EXPECT_EQ(out[1], 4);
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBufferTest, ReadPastEndIsTruncated) {
  ByteBuffer buf;
  buf.push_back(9);
  std::uint8_t out[4];
  Status st = buf.read(out, 4);
  EXPECT_EQ(st.code(), Errc::truncated);
  EXPECT_EQ(buf.remaining(), 1u) << "failed read must not consume";
}

TEST(ByteBufferTest, ReadViewSharesStorage) {
  ByteBuffer buf;
  const std::uint8_t bytes[] = {5, 6, 7};
  buf.append(ByteSpan{bytes, 3});
  auto view = buf.read_view(2);
  ASSERT_TRUE(view.is_ok());
  EXPECT_EQ(view.value()[0], 5);
  EXPECT_EQ(buf.remaining(), 1u);
}

TEST(ByteBufferTest, OverwriteInRange) {
  ByteBuffer buf;
  buf.append_zeros(4);
  const std::uint8_t patch[] = {0xaa, 0xbb};
  ASSERT_TRUE(buf.overwrite(1, ByteSpan{patch, 2}));
  EXPECT_EQ(buf.view()[1], 0xaa);
  EXPECT_EQ(buf.view()[2], 0xbb);
  EXPECT_EQ(buf.view()[3], 0x00);
}

TEST(ByteBufferTest, OverwritePastEndFails) {
  ByteBuffer buf;
  buf.append_zeros(2);
  const std::uint8_t patch[] = {1, 2, 3};
  EXPECT_EQ(buf.overwrite(0, ByteSpan{patch, 3}).code(), Errc::out_of_range);
}

TEST(ByteBufferTest, SkipAndSeek) {
  ByteBuffer buf;
  buf.append_zeros(10);
  ASSERT_TRUE(buf.skip(4));
  EXPECT_EQ(buf.read_position(), 4u);
  buf.seek(100);  // clamps
  EXPECT_EQ(buf.read_position(), 10u);
  buf.seek(0);
  EXPECT_EQ(buf.remaining(), 10u);
}

TEST(ByteBufferTest, ClearResetsCursor) {
  ByteBuffer buf;
  buf.append_zeros(5);
  ASSERT_TRUE(buf.skip(3));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.read_position(), 0u);
}

TEST(ByteBufferTest, HexDump) {
  ByteBuffer buf;
  buf.push_back(0x0f);
  buf.push_back(0xa0);
  EXPECT_EQ(buf.hex(), "0fa0");
}

TEST(ByteBufferTest, TakeMovesStorage) {
  ByteBuffer buf;
  buf.push_back(1);
  auto vec = std::move(buf).take();
  EXPECT_EQ(vec.size(), 1u);
}

// ---- string_util --------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitPreservesEmptyTokens) {
  auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> items{"one", "two", "three"};
  EXPECT_EQ(join(items, "-"), "one-two-three");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringUtilTest, ParseIntStrict) {
  EXPECT_EQ(parse_int("42").value_or(0), 42);
  EXPECT_EQ(parse_int("-7").value_or(0), -7);
  EXPECT_FALSE(parse_int("42x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4 2").has_value());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value_or(0), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value_or(0), -1000.0);
  EXPECT_FALSE(parse_double("3.5z").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(StringUtilTest, EscapeRoundTrip) {
  const std::string original = "line1\nline2\t\"quoted\" back\\slash \x01";
  const std::string escaped = escape_ascii(original);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  auto back = unescape_ascii(escaped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, original);
}

TEST(StringUtilTest, EscapeControlCharsAsHex) {
  EXPECT_EQ(escape_ascii(std::string(1, '\x02')), "\\x02");
  EXPECT_EQ(escape_ascii(std::string(1, '\x7f')), "\\x7f");
}

TEST(StringUtilTest, UnescapeRejectsMalformed) {
  EXPECT_FALSE(unescape_ascii("bad\\").has_value());
  EXPECT_FALSE(unescape_ascii("\\q").has_value());
  EXPECT_FALSE(unescape_ascii("\\x1").has_value());
  EXPECT_FALSE(unescape_ascii("\\xzz").has_value());
}

// ---- time_util ----------------------------------------------------------------

TEST(TimeUtilTest, WallClockLooksLikeRecentUtc) {
  const TimeMicros t = wall_time_micros();
  // After 2020-01-01 and before 2100-01-01 (in microseconds).
  EXPECT_GT(t, 1'577'836'800'000'000LL);
  EXPECT_LT(t, 4'102'444'800'000'000LL);
}

TEST(TimeUtilTest, MonotonicNeverDecreases) {
  TimeMicros prev = monotonic_micros();
  for (int i = 0; i < 1000; ++i) {
    const TimeMicros now = monotonic_micros();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(TimeUtilTest, SleepAdvancesMonotonic) {
  const TimeMicros before = monotonic_micros();
  sleep_micros(2'000);
  EXPECT_GE(monotonic_micros() - before, 1'500);
}

TEST(TimeUtilTest, CpuClockAdvancesUnderWork) {
  const TimeMicros before = thread_cpu_micros();
  double sink = 0;
  for (int i = 0; i < 2'000'000; ++i) sink += static_cast<double>(i) * 0.5;
  // Keep the loop observable so the optimizer cannot delete it.
  ASSERT_GT(sink, 0.0);
  EXPECT_GT(thread_cpu_micros(), before);
}

TEST(TimeUtilTest, FormatMicros) {
  EXPECT_EQ(format_micros(1'500'000), "1.500000");
  EXPECT_EQ(format_micros(0), "0.000000");
  EXPECT_EQ(format_micros(-2'000'001), "-2.000001");
}

// ---- logging -------------------------------------------------------------------

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logging::set_level(LogLevel::debug);
    Logging::set_sink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
  }
  void TearDown() override {
    Logging::set_sink(nullptr);
    Logging::set_level(LogLevel::warn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, EmitsThroughSink) {
  BRISK_LOG_INFO << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::info);
  EXPECT_EQ(captured_[0].second, "hello 42");
}

TEST_F(LoggingTest, LevelFiltersBelowThreshold) {
  Logging::set_level(LogLevel::error);
  BRISK_LOG_DEBUG << "nope";
  BRISK_LOG_WARN << "nope";
  BRISK_LOG_ERROR << "yes";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "yes");
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logging::set_level(LogLevel::off);
  BRISK_LOG_ERROR << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelTest, Names) {
  EXPECT_STREQ(log_level_name(LogLevel::debug), "debug");
  EXPECT_STREQ(log_level_name(LogLevel::error), "error");
}

// ---- SPSC queue -----------------------------------------------------------------------

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> queue(5);
  EXPECT_EQ(queue.capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
}

TEST(SpscQueueTest, PushPopRoundTrip) {
  SpscQueue<int> queue(4);
  EXPECT_TRUE(queue.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(int(i)));
  EXPECT_FALSE(queue.try_push(99)) << "queue is full";
  EXPECT_EQ(queue.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(queue.try_pop(out)) << "queue is empty";
}

TEST(SpscQueueTest, MoveOnlyPayloads) {
  SpscQueue<std::unique_ptr<int>> queue(2);
  EXPECT_TRUE(queue.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscQueueTest, ConcurrentProducerConsumerPreservesOrder) {
  SpscQueue<std::uint32_t> queue(64);
  constexpr std::uint32_t kCount = 20'000;
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kCount;) {
      if (queue.try_push(std::uint32_t(i))) ++i;
    }
  });
  std::uint32_t expected = 0;
  while (expected < kCount) {
    std::uint32_t out = 0;
    if (!queue.try_pop(out)) continue;
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace brisk
