// Hierarchical ISM federation tests.
//
// The load-bearing property: a 2-level relay tree must produce output
// byte-identical to a flat deployment of the same nodes — the relay tier
// re-batches its post-merge ordered stream onto an upstream link, the root
// merges relay lanes with its own sorter shards, and CRE matching happens
// exactly once, at the root. The determinism grid runs the same workload
// through both topologies across root ingest configurations (inline and
// threaded readers x 1 and 4 sorter shards) and compares encoded records
// byte for byte, including a cross-relay tachyon the root must repair.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "clock/clock.hpp"
#include "common/time_util.hpp"
#include "ism/ism.hpp"
#include "ism/output.hpp"
#include "ism/relay.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sensors/event_record.hpp"
#include "sensors/field.hpp"
#include "sensors/metrics_record.hpp"
#include "tp/batch.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::ism {
namespace {

constexpr CausalId kCausalPair = 42;

struct GridMode {
  std::size_t reader_threads = 0;
  std::size_t sorter_shards = 1;
};

std::string grid_mode_name(const ::testing::TestParamInfo<GridMode>& info) {
  return (info.param.reader_threads == 0 ? std::string("inline") : std::string("threaded")) +
         "_shards" + std::to_string(info.param.sorter_shards);
}

/// A sorter frame far larger than the test runtime: nothing is released
/// until drain(), so the output is the fully sorted stream regardless of
/// scheduling — the comparison isolates topology, not timing.
IsmConfig make_ism_config(std::size_t reader_threads, std::size_t sorter_shards) {
  IsmConfig config;
  config.select_timeout_us = 2'000;
  config.enable_sync = false;
  config.sorter.initial_frame_us = 120'000'000;
  config.sorter.min_frame_us = 120'000'000;
  config.sorter.max_frame_us = 120'000'000;
  config.sorter.adaptive = false;
  config.reader_threads = reader_threads;
  config.sorter_shards = sorter_shards;
  return config;
}

struct DeliveredLog {
  std::mutex mutex;
  std::vector<sensors::Record> records;
  void add(const sensors::Record& r) {
    std::lock_guard<std::mutex> lock(mutex);
    records.push_back(r);
  }
  std::vector<sensors::Record> snapshot() {
    std::lock_guard<std::mutex> lock(mutex);
    return records;
  }
};

/// The workload: four nodes, globally unique timestamps (so the sorted
/// order is total and any divergence is a real ordering difference), plus
/// one causal pair whose reason and consequence live on nodes that land
/// behind *different* relays in the tree runs — and whose consequence is a
/// tachyon the root's CRE matcher must repair.
std::map<NodeId, std::vector<sensors::Record>> make_workload(TimeMicros base) {
  std::map<NodeId, std::vector<sensors::Record>> by_node;
  const NodeId nodes[] = {1, 2, 3, 4};
  std::uint64_t seq = 0;
  for (std::size_t n = 0; n < 4; ++n) {
    for (std::size_t i = 0; i < 25; ++i) {
      sensors::Record record;
      record.node = nodes[n];
      record.sensor = 7;
      record.sequence = seq;
      // (seq * 733) mod 1009 is a permutation (733 and 1009 coprime), so
      // all 100 offsets are distinct; x100 spreads them over ~100ms.
      record.timestamp = base + static_cast<TimeMicros>((seq * 733) % 1009) * 100;
      record.fields.push_back(sensors::Field::u64(seq));
      by_node[nodes[n]].push_back(std::move(record));
      ++seq;
    }
  }
  // Reason on node 1, tachyonic consequence on node 3 (different relay).
  sensors::Record& reason = by_node[1][5];
  reason.fields.push_back(sensors::Field::reason(kCausalPair));
  sensors::Record& conseq = by_node[3][7];
  conseq.fields.push_back(sensors::Field::conseq(kCausalPair));
  conseq.timestamp = reason.timestamp - 1;  // unique: all others are x100
  return by_node;
}

Status send_hello(net::TcpSocket& socket, NodeId node) {
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::hello, enc);
  tp::encode_hello({node, tp::kProtocolVersion, 1, 0}, enc);
  return net::write_frame(socket, out.view());
}

Status send_bye(net::TcpSocket& socket) {
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::bye, enc);
  return net::write_frame(socket, out.view());
}

/// Plays one node's records at the given ISM port: hello, one data batch,
/// bye, then drains the socket until the server closes it. The server
/// processes frames in order and closes on BYE, so EOF proves every record
/// was admitted — and the drain consumes the hello_ack/acks the server
/// sent, so our close is a clean FIN rather than an RST that could destroy
/// the batch still queued in the server's receive buffer.
void play_node(std::uint16_t port, NodeId node,
               const std::vector<sensors::Record>& records) {
  auto socket = net::TcpSocket::connect("127.0.0.1", port);
  ASSERT_TRUE(socket.is_ok()) << socket.status().to_string();
  ASSERT_TRUE(send_hello(socket.value(), node).ok());
  tp::BatchBuilder builder(node);
  for (const sensors::Record& record : records) {
    ASSERT_TRUE(builder.add_record(record).ok());
  }
  ByteBuffer payload = builder.finish();
  ASSERT_TRUE(net::write_frame(socket.value(), payload.view()).ok());
  ASSERT_TRUE(send_bye(socket.value()).ok());
  ASSERT_TRUE(socket.value().set_nonblocking(true).ok());
  const TimeMicros deadline = monotonic_micros() + 5'000'000;
  std::uint8_t chunk[512];
  while (monotonic_micros() < deadline) {
    auto n = socket.value().read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() != Errc::would_block) return;  // reset == closed
      sleep_micros(2'000);
      continue;
    }
    if (n.value() == 0) return;  // orderly EOF
  }
  FAIL() << "server did not close node " << node << "'s connection after BYE";
}

bool wait_for_received(const Ism& ism, std::uint64_t count,
                       TimeMicros timeout = 5'000'000) {
  const TimeMicros deadline = monotonic_micros() + timeout;
  while (monotonic_micros() < deadline) {
    if (ism.stats().records_received >= count) return true;
    sleep_micros(2'000);
  }
  return false;
}

std::vector<std::string> encode_all(const std::vector<sensors::Record>& records) {
  std::vector<std::string> out;
  out.reserve(records.size());
  for (const sensors::Record& record : records) {
    auto bytes = encode_output_record(record);
    EXPECT_TRUE(bytes.is_ok()) << bytes.status().to_string();
    if (!bytes) continue;
    out.emplace_back(reinterpret_cast<const char*>(bytes.value().data()),
                     bytes.value().size());
  }
  return out;
}

/// Flat deployment: every node connects straight to one ISM.
std::vector<sensors::Record> run_flat(
    const GridMode& mode, const std::map<NodeId, std::vector<sensors::Record>>& workload,
    std::size_t total) {
  auto log = std::make_shared<DeliveredLog>();
  auto sink = std::make_shared<CallbackSink>(
      [log](const sensors::Record& r) { log->add(r); });
  auto ism = Ism::start(make_ism_config(mode.reader_threads, mode.sorter_shards),
                        clk::SystemClock::instance(), sink);
  EXPECT_TRUE(ism.is_ok()) << ism.status().to_string();
  if (!ism) return {};
  std::thread server([&] { (void)ism.value()->run(); });
  for (const auto& [node, records] : workload) {
    play_node(ism.value()->port(), node, records);
  }
  EXPECT_TRUE(wait_for_received(*ism.value(), total));
  ism.value()->stop();
  server.join();
  EXPECT_TRUE(ism.value()->drain().ok());
  return log->snapshot();
}

/// 2-level tree: nodes split across `relay_count` relay ISMs, each of which
/// forwards its ordered output to the root over a RelayEgress.
std::vector<sensors::Record> run_tree(
    const GridMode& mode, const std::map<NodeId, std::vector<sensors::Record>>& workload,
    std::size_t total, std::size_t relay_count) {
  auto log = std::make_shared<DeliveredLog>();
  auto sink = std::make_shared<CallbackSink>(
      [log](const sensors::Record& r) { log->add(r); });
  auto root = Ism::start(make_ism_config(mode.reader_threads, mode.sorter_shards),
                         clk::SystemClock::instance(), sink);
  EXPECT_TRUE(root.is_ok()) << root.status().to_string();
  if (!root) return {};
  std::thread root_thread([&] { (void)root.value()->run(); });

  struct RelayNode {
    std::shared_ptr<RelayEgress> egress;
    std::unique_ptr<Ism> ism;
    std::thread thread;
    std::uint64_t expected = 0;
  };
  std::vector<RelayNode> relays(relay_count);
  for (std::size_t r = 0; r < relay_count; ++r) {
    RelayConfig relay_config;
    relay_config.parent_port = root.value()->port();
    relay_config.relay_node = static_cast<NodeId>(1000 + r);
    relay_config.idle_watermark_period_us = 20'000;
    auto egress = RelayEgress::connect(relay_config, clk::SystemClock::instance());
    EXPECT_TRUE(egress.is_ok()) << egress.status().to_string();
    if (!egress) return {};
    relays[r].egress = std::move(egress).value();
    IsmConfig relay_ism = make_ism_config(0, 1);
    relay_ism.cre.forward_only = true;  // matching happens once, at the root
    auto ism = Ism::start(relay_ism, clk::SystemClock::instance(), relays[r].egress);
    EXPECT_TRUE(ism.is_ok()) << ism.status().to_string();
    if (!ism) return {};
    relays[r].ism = std::move(ism).value();
    relays[r].thread = std::thread([ism = relays[r].ism.get()] { (void)ism->run(); });
  }

  std::size_t index = 0;
  for (const auto& [node, records] : workload) {
    RelayNode& relay = relays[index++ % relay_count];
    relay.expected += records.size();
    play_node(relay.ism->port(), node, records);
  }
  for (RelayNode& relay : relays) {
    EXPECT_TRUE(wait_for_received(*relay.ism, relay.expected));
    relay.ism->stop();
    relay.thread.join();
    // Drains the relay pipeline into the egress, ships the batches, waits
    // for the root's acks, and says BYE.
    EXPECT_TRUE(relay.ism->drain().ok());
    EXPECT_EQ(relay.egress->stats().records_forwarded, relay.expected);
  }
  EXPECT_TRUE(wait_for_received(*root.value(), total));
  root.value()->stop();
  root_thread.join();
  EXPECT_TRUE(root.value()->drain().ok());
  return log->snapshot();
}

// ---- relay metrics aggregation ----------------------------------------------

struct TreeMetricsOptions {
  bool aggregate_metrics = false;
  /// Relay-ISM self-snapshot cadence (0 = the relays emit no local metrics).
  TimeMicros relay_metrics_interval_us = 0;
};

/// The determinism workload plus reserved-sensor traffic per node: two
/// 0xFF01 snapshot records and one 0xFF03 event, all timestamped past the
/// data records so the reserved stream rides the same sorted tail in every
/// run.
std::map<NodeId, std::vector<sensors::Record>> make_observability_workload(TimeMicros base) {
  auto by_node = make_workload(base);
  std::uint64_t seq = 5'000;
  for (auto& [node, records] : by_node) {
    const TimeMicros ts = base + 200'000 + static_cast<TimeMicros>(node) * 10;
    records.push_back(sensors::make_metrics_record(node, seq++, ts, "exs.records_forwarded",
                                                   100 + node, sensors::MetricKind::counter));
    records.push_back(sensors::make_metrics_record(node, seq++, ts + 1, "exs.replay_pending",
                                                   node, sensors::MetricKind::gauge));
    records.push_back(sensors::make_event_record(node, seq++, ts + 2,
                                                 sensors::EventKind::reconnect, node, 1, ts));
  }
  return by_node;
}

/// run_tree minus the forwarded-count invariant (aggregation absorbs subtree
/// 0xFF01 records, so forwarded != played), plus the aggregation knobs. The
/// relay flush period is an hour: the only aggregated snapshot is the one the
/// drain forces, which keeps the output deterministic.
std::vector<sensors::Record> run_metrics_tree(
    const std::map<NodeId, std::vector<sensors::Record>>& workload, std::size_t relay_count,
    const TreeMetricsOptions& options) {
  auto log = std::make_shared<DeliveredLog>();
  auto sink = std::make_shared<CallbackSink>(
      [log](const sensors::Record& r) { log->add(r); });
  auto root = Ism::start(make_ism_config(0, 1), clk::SystemClock::instance(), sink);
  EXPECT_TRUE(root.is_ok()) << root.status().to_string();
  if (!root) return {};
  std::thread root_thread([&] { (void)root.value()->run(); });

  struct RelayNode {
    std::shared_ptr<RelayEgress> egress;
    std::unique_ptr<Ism> ism;
    std::thread thread;
    std::uint64_t expected = 0;
  };
  std::vector<RelayNode> relays(relay_count);
  for (std::size_t r = 0; r < relay_count; ++r) {
    RelayConfig relay_config;
    relay_config.parent_port = root.value()->port();
    relay_config.relay_node = static_cast<NodeId>(1000 + r);
    relay_config.idle_watermark_period_us = 20'000;
    relay_config.aggregate_metrics = options.aggregate_metrics;
    relay_config.metrics_flush_period_us = 3'600'000'000;
    auto egress = RelayEgress::connect(relay_config, clk::SystemClock::instance());
    EXPECT_TRUE(egress.is_ok()) << egress.status().to_string();
    if (!egress) return {};
    relays[r].egress = std::move(egress).value();
    IsmConfig relay_ism = make_ism_config(0, 1);
    relay_ism.cre.forward_only = true;
    relay_ism.metrics_interval_us = options.relay_metrics_interval_us;
    auto ism = Ism::start(relay_ism, clk::SystemClock::instance(), relays[r].egress);
    EXPECT_TRUE(ism.is_ok()) << ism.status().to_string();
    if (!ism) return {};
    relays[r].ism = std::move(ism).value();
    relays[r].thread = std::thread([ism = relays[r].ism.get()] { (void)ism->run(); });
  }

  std::size_t index = 0;
  for (const auto& [node, records] : workload) {
    RelayNode& relay = relays[index++ % relay_count];
    relay.expected += records.size();
    play_node(relay.ism->port(), node, records);
  }
  for (RelayNode& relay : relays) {
    EXPECT_TRUE(wait_for_received(*relay.ism, relay.expected));
    relay.ism->stop();
    relay.thread.join();
    // The drain forces the aggregator's final flush and waits for the
    // root's acks, so everything shipped is admitted before we stop the
    // root.
    EXPECT_TRUE(relay.ism->drain().ok());
  }
  root.value()->stop();
  root_thread.join();
  EXPECT_TRUE(root.value()->drain().ok());
  return log->snapshot();
}

std::vector<sensors::Record> non_reserved(const std::vector<sensors::Record>& records) {
  std::vector<sensors::Record> out;
  for (const sensors::Record& record : records) {
    if (record.sensor < sensors::kReservedSensorIdBase) out.push_back(record);
  }
  return out;
}

TEST(RelayFederationAggregationTest, NonReservedOutputByteIdenticalWithAggregationOnAndOff) {
  const TimeMicros base = clk::SystemClock::instance().now();
  const auto workload = make_observability_workload(base);

  const auto passthrough = run_metrics_tree(workload, 2, {false, 0});
  const auto aggregated = run_metrics_tree(workload, 2, {true, 0});

  // The knob must be invisible to ordinary sensor output.
  const auto flat_bytes = encode_all(non_reserved(passthrough));
  const auto tree_bytes = encode_all(non_reserved(aggregated));
  ASSERT_EQ(flat_bytes.size(), tree_bytes.size());
  for (std::size_t i = 0; i < flat_bytes.size(); ++i) {
    ASSERT_EQ(flat_bytes[i], tree_bytes[i]) << "first divergence at record " << i;
  }

  // Pass-through ships every subtree snapshot record; aggregation absorbs
  // them all and forwards agg.* rows instead.
  std::size_t off_child_metrics = 0;
  for (const sensors::Record& record : passthrough) {
    if (sensors::is_metrics_record(record) && record.node <= 4) ++off_child_metrics;
  }
  EXPECT_EQ(off_child_metrics, 8u);  // 2 snapshot records x 4 nodes

  std::size_t on_child_metrics = 0;
  std::map<NodeId, std::uint64_t> agg_forwarded;
  for (const sensors::Record& record : aggregated) {
    if (!sensors::is_metrics_record(record)) continue;
    if (record.node <= 4) {
      ++on_child_metrics;
      continue;
    }
    auto point = sensors::decode_metrics_record(record);
    ASSERT_TRUE(point.is_ok());
    if (point.value().name == "agg.exs.records_forwarded") {
      agg_forwarded[record.node] = point.value().value;
    }
  }
  EXPECT_EQ(on_child_metrics, 0u);
  // Workload assignment alternates: relay 1000 gets nodes 1 and 3, relay
  // 1001 gets 2 and 4; the counters are 100+node, so the subtree sums pin
  // the merge.
  ASSERT_TRUE(agg_forwarded.count(1000));
  ASSERT_TRUE(agg_forwarded.count(1001));
  EXPECT_EQ(agg_forwarded[1000], 204u);
  EXPECT_EQ(agg_forwarded[1001], 206u);

  // 0xFF03 events are never absorbed: the sealed drain batch delivers them
  // in both modes.
  for (const auto* run : {&passthrough, &aggregated}) {
    std::size_t events = 0;
    for (const sensors::Record& record : *run) {
      if (sensors::is_event_record(record) && record.node <= 4) ++events;
    }
    EXPECT_EQ(events, 4u);
  }
}

TEST(RelayFederationAggregationTest, RootSeesRelayLocalAndAggregatedRows) {
  const TimeMicros base = clk::SystemClock::instance().now();
  const auto workload = make_observability_workload(base);
  // Fast relay self-snapshots: the relays' own 0xFF01 records (re-stamped to
  // the relay node id) must pass through the aggregator untouched and land
  // next to the subtree's agg.* rows.
  const auto output = run_metrics_tree(workload, 2, {true, 50'000});

  std::map<NodeId, std::size_t> local_rows;
  std::map<NodeId, std::size_t> agg_rows;
  std::map<NodeId, std::uint64_t> agg_nodes;
  for (const sensors::Record& record : output) {
    if (!sensors::is_metrics_record(record) || record.node < 1000) continue;
    auto point = sensors::decode_metrics_record(record);
    ASSERT_TRUE(point.is_ok());
    if (point.value().name.rfind("agg.", 0) == 0) {
      ++agg_rows[record.node];
      if (point.value().name == "agg.nodes") agg_nodes[record.node] = point.value().value;
    } else {
      ++local_rows[record.node];
    }
  }
  for (NodeId relay : {NodeId{1000}, NodeId{1001}}) {
    SCOPED_TRACE("relay " + std::to_string(relay));
    EXPECT_GT(local_rows[relay], 0u) << "relay-local snapshot rows missing";
    EXPECT_GT(agg_rows[relay], 0u) << "aggregated subtree rows missing";
    EXPECT_EQ(agg_nodes[relay], 2u);  // two children behind each relay
  }
}

class RelayFederationTest : public ::testing::TestWithParam<GridMode> {};

TEST_P(RelayFederationTest, TreeOutputByteIdenticalToFlat) {
  const TimeMicros base = clk::SystemClock::instance().now();
  const auto workload = make_workload(base);
  std::size_t total = 0;
  for (const auto& [node, records] : workload) total += records.size();

  const std::vector<sensors::Record> flat = run_flat(GetParam(), workload, total);
  ASSERT_EQ(flat.size(), total);
  for (std::size_t relay_count : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE("relay_count=" + std::to_string(relay_count));
    const std::vector<sensors::Record> tree =
        run_tree(GetParam(), workload, total, relay_count);
    ASSERT_EQ(tree.size(), total);
    const std::vector<std::string> flat_bytes = encode_all(flat);
    const std::vector<std::string> tree_bytes = encode_all(tree);
    ASSERT_EQ(flat_bytes.size(), tree_bytes.size());
    for (std::size_t i = 0; i < flat_bytes.size(); ++i) {
      ASSERT_EQ(flat_bytes[i], tree_bytes[i])
          << "first divergence at record " << i << ":\n  flat: " << flat[i].to_string()
          << "\n  tree: " << tree[i].to_string();
    }
  }
}

TEST_P(RelayFederationTest, CrossRelayTachyonRepairedAtRoot) {
  const TimeMicros base = clk::SystemClock::instance().now();
  const auto workload = make_workload(base);
  std::size_t total = 0;
  for (const auto& [node, records] : workload) total += records.size();

  const std::vector<sensors::Record> tree = run_tree(GetParam(), workload, total, 2);
  ASSERT_EQ(tree.size(), total);
  std::size_t reason_index = total;
  std::size_t conseq_index = total;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree[i].reason_id() == std::optional<CausalId>{kCausalPair}) reason_index = i;
    if (tree[i].conseq_id() == std::optional<CausalId>{kCausalPair}) conseq_index = i;
  }
  ASSERT_LT(reason_index, total);
  ASSERT_LT(conseq_index, total);
  // Reason precedes its consequence at the root even though the tachyonic
  // consequence's original timestamp was smaller, and the repair bumped the
  // consequence past the reason.
  EXPECT_LT(reason_index, conseq_index);
  EXPECT_GT(tree[conseq_index].timestamp, tree[reason_index].timestamp);
}

INSTANTIATE_TEST_SUITE_P(Grid, RelayFederationTest,
                         ::testing::Values(GridMode{0, 1}, GridMode{0, 4}, GridMode{2, 1},
                                           GridMode{2, 4}),
                         grid_mode_name);

// ---- reader-pool rebalancing decision ---------------------------------------

TEST(ReaderMigrationTest, NoMigrationWhenBalanced) {
  const auto plan = plan_reader_migration({100.0, 90.0}, {3, 3}, 2.0, 1.0);
  EXPECT_FALSE(plan.imbalanced);
}

TEST(ReaderMigrationTest, DetectsSustainedImbalanceSourceAndTarget) {
  const auto plan = plan_reader_migration({10.0, 500.0, 40.0}, {2, 4, 3}, 2.0, 1.0);
  ASSERT_TRUE(plan.imbalanced);
  EXPECT_EQ(plan.from, 1u);
  EXPECT_EQ(plan.to, 0u);
}

TEST(ReaderMigrationTest, NearZeroTrafficNeverTriggers) {
  // 0.4 vs 0.01 is a >2x ratio but under the min-rate floor: noise.
  const auto plan = plan_reader_migration({0.4, 0.01}, {4, 4}, 2.0, 1.0);
  EXPECT_FALSE(plan.imbalanced);
}

TEST(ReaderMigrationTest, SingleConnectionReaderIsNotStripped) {
  // Moving the busiest reader's only connection just relocates the hot spot.
  const auto plan = plan_reader_migration({500.0, 10.0}, {1, 4}, 2.0, 1.0);
  EXPECT_FALSE(plan.imbalanced);
}

TEST(ReaderMigrationTest, PicksConnectionClosestToHalfTheGap) {
  // Gap 400 → target 200: the 180-rate connection levels the pool best.
  const int fd = pick_connection_to_move({{7, 390.0}, {8, 180.0}, {9, 30.0}}, 400.0);
  EXPECT_EQ(fd, 8);
}

TEST(ReaderMigrationTest, IdleConnectionsAreNeverMoved) {
  EXPECT_EQ(pick_connection_to_move({{7, 0.0}, {8, 0.0}}, 400.0), -1);
  EXPECT_EQ(pick_connection_to_move({}, 400.0), -1);
}

}  // namespace
}  // namespace brisk::ism
