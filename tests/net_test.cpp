// Networking tests: TCP listener/socket round trips and the frame codec
// (blocking and incremental under arbitrary fragmentation). Poller backends
// are covered by poller_test.cpp, parameterized over select and epoll.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/time_util.hpp"
#include "net/faulty_socket.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace brisk::net {
namespace {

// ---- sockets ---------------------------------------------------------------------

TEST(TcpSocketTest, ListenConnectRoundTrip) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  EXPECT_GT(listener.value().port(), 0);

  auto client = TcpSocket::connect("127.0.0.1", listener.value().port());
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  auto server = listener.value().accept();
  ASSERT_TRUE(server.is_ok()) << server.status().to_string();

  const std::uint8_t message[] = {'p', 'i', 'n', 'g'};
  ASSERT_TRUE(client.value().write_all(ByteSpan{message, 4}));
  std::uint8_t received[4];
  auto n = server.value().read_some(MutableByteSpan{received, 4});
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 4u);
  EXPECT_EQ(std::memcmp(received, message, 4), 0);
}

TEST(TcpSocketTest, LocalhostAliasResolves) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.is_ok());
  EXPECT_TRUE(TcpSocket::connect("localhost", listener.value().port()).is_ok());
}

TEST(TcpSocketTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, then close the listener so nothing listens.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.is_ok());
    dead_port = listener.value().port();
  }
  EXPECT_FALSE(TcpSocket::connect("127.0.0.1", dead_port).is_ok());
}

TEST(TcpSocketTest, BadAddressRejected) {
  EXPECT_EQ(TcpSocket::connect("not-an-ip", 80).status().code(), Errc::invalid_argument);
}

TEST(TcpSocketTest, ReadAfterPeerCloseReturnsZero) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  pair.value().first.close();
  std::uint8_t buf[8];
  auto n = pair.value().second.read_some(MutableByteSpan{buf, 8});
  ASSERT_TRUE(n.is_ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(TcpSocketTest, NonblockingReadWouldBlock) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(pair.value().second.set_nonblocking(true));
  std::uint8_t buf[8];
  auto n = pair.value().second.read_some(MutableByteSpan{buf, 8});
  EXPECT_EQ(n.status().code(), Errc::would_block);
}

TEST(TcpSocketTest, WriteToClosedPeerReportsClosed) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  pair.value().second.close();
  std::vector<std::uint8_t> big(1 << 20, 0x42);
  // First writes may land in the kernel buffer; eventually EPIPE.
  Status st = Status::ok();
  for (int i = 0; i < 64 && st.is_ok(); ++i) {
    st = pair.value().first.write_all(ByteSpan{big.data(), big.size()});
  }
  EXPECT_EQ(st.code(), Errc::closed);
}

TEST(FdHandleTest, MoveSemantics) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  TcpSocket a = std::move(pair.value().first);
  EXPECT_TRUE(a.valid());
  TcpSocket b = std::move(a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from is checked
}

// ---- frames -----------------------------------------------------------------------

TEST(FrameTest, WriteReadRoundTrip) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(write_frame(pair.value().first, ByteSpan{payload, 5}));
  auto frame = read_frame(pair.value().second);
  ASSERT_TRUE(frame.is_ok()) << frame.status().to_string();
  ASSERT_EQ(frame.value().size(), 5u);
  EXPECT_EQ(frame.value().view()[4], 5);
}

TEST(FrameTest, EmptyFrameAllowed) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(write_frame(pair.value().first, ByteSpan{}));
  auto frame = read_frame(pair.value().second);
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(frame.value().size(), 0u);
}

TEST(FrameTest, MultipleFramesInOrder) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(write_frame(pair.value().first, ByteSpan{&i, 1}));
  }
  for (std::uint8_t i = 0; i < 10; ++i) {
    auto frame = read_frame(pair.value().second);
    ASSERT_TRUE(frame.is_ok());
    EXPECT_EQ(frame.value().view()[0], i);
  }
}

TEST(FrameTest, EofMidHeaderReportsClosed) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  const std::uint8_t partial[] = {0, 0};
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{partial, 2}));
  pair.value().first.close();
  EXPECT_EQ(read_frame(pair.value().second).status().code(), Errc::closed);
}

TEST(FrameTest, OversizedFrameRejected) {
  EXPECT_EQ(kMaxFrameBytes, 16u << 20);
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  std::vector<std::uint8_t> big(kMaxFrameBytes + 1);
  EXPECT_EQ(write_frame(pair.value().first, ByteSpan{big.data(), big.size()}).code(),
            Errc::invalid_argument);
}

TEST(FrameReaderTest, ReassemblesByteByByte) {
  // Build two frames and feed them one byte at a time.
  ByteBuffer wire;
  {
    const std::uint8_t a[] = {0, 0, 0, 3, 'a', 'b', 'c'};
    const std::uint8_t b[] = {0, 0, 0, 1, 'z'};
    wire.append(a, sizeof a);
    wire.append(b, sizeof b);
  }
  FrameReader reader;
  std::vector<std::string> frames;
  for (std::uint8_t byte : wire.view()) {
    reader.feed(ByteSpan{&byte, 1});
    for (;;) {
      auto frame = reader.next();
      ASSERT_TRUE(frame.is_ok());
      if (!frame.value().has_value()) break;
      frames.emplace_back(reinterpret_cast<const char*>(frame.value()->data()),
                          frame.value()->size());
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "abc");
  EXPECT_EQ(frames[1], "z");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(FrameReaderTest, HandlesFrameSplitAcrossFeeds) {
  FrameReader reader;
  const std::uint8_t part1[] = {0, 0, 0, 4, 'w', 'x'};
  const std::uint8_t part2[] = {'y', 'z', 0, 0, 0, 0};  // rest + an empty frame
  reader.feed(ByteSpan{part1, sizeof part1});
  auto frame = reader.next();
  ASSERT_TRUE(frame.is_ok());
  EXPECT_FALSE(frame.value().has_value()) << "incomplete frame must wait";
  reader.feed(ByteSpan{part2, sizeof part2});
  frame = reader.next();
  ASSERT_TRUE(frame.is_ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(frame.value()->size(), 4u);
  frame = reader.next();
  ASSERT_TRUE(frame.is_ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(frame.value()->size(), 0u);
}

TEST(FrameReaderTest, RejectsOversizedDeclaredLength) {
  FrameReader reader;
  const std::uint8_t evil[] = {0xff, 0xff, 0xff, 0xff};
  reader.feed(ByteSpan{evil, 4});
  EXPECT_EQ(reader.next().status().code(), Errc::malformed);
}

// ---- FrameSendBuffer -------------------------------------------------------------

/// Shrinks the kernel send buffer as far as the OS allows, so a handful of
/// kilobytes saturates it and write_some returns short counts.
void shrink_send_buffer(TcpSocket& socket) {
  const int tiny = 1;  // the kernel clamps this up to its minimum
  ASSERT_EQ(::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDBUF, &tiny, sizeof tiny), 0);
}

// Regression for the ISM short-write desync: with a saturated kernel send
// buffer, frames pumped through the outbox must reach the peer intact and
// in order — never a declared length followed by a partial body.
TEST(FrameSendBufferTest, ShortWritesNeverTearFrames) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  TcpSocket& writer = pair.value().first;
  TcpSocket& reader_sock = pair.value().second;
  shrink_send_buffer(writer);
  ASSERT_TRUE(writer.set_nonblocking(true));
  ASSERT_TRUE(reader_sock.set_nonblocking(true));

  constexpr int kFrames = 32;
  constexpr std::size_t kFrameBytes = 16 * 1024;  // each frame >> SO_SNDBUF
  std::vector<std::vector<std::uint8_t>> sent;
  for (int f = 0; f < kFrames; ++f) {
    std::vector<std::uint8_t> payload(kFrameBytes);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>((f * 31 + i) & 0xff);
    }
    sent.push_back(std::move(payload));
  }

  FrameSendBuffer outbox(64u << 20);
  FrameReader frame_reader;
  std::vector<ByteBuffer> received;
  std::size_t next_enqueue = 0;
  std::uint8_t chunk[2048];  // slow reader: small sips force many short writes
  const TimeMicros deadline = monotonic_micros() + 10'000'000;
  while (received.size() < kFrames) {
    ASSERT_LT(monotonic_micros(), deadline) << "transfer stalled";
    if (next_enqueue < sent.size()) {
      ASSERT_TRUE(outbox.enqueue_frame(
          ByteSpan{sent[next_enqueue].data(), sent[next_enqueue].size()}));
      ++next_enqueue;
    }
    ASSERT_TRUE(outbox.pump(writer));
    auto n = reader_sock.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (n.is_ok() && n.value() > 0) {
      frame_reader.feed(ByteSpan{chunk, n.value()});
      for (;;) {
        auto frame = frame_reader.next();
        ASSERT_TRUE(frame.is_ok());
        if (!frame.value().has_value()) break;
        received.push_back(std::move(*frame.value()));
      }
    }
  }
  ASSERT_EQ(received.size(), std::size_t{kFrames});
  for (int f = 0; f < kFrames; ++f) {
    ASSERT_EQ(received[f].size(), sent[f].size()) << "frame " << f;
    EXPECT_EQ(std::memcmp(received[f].data(), sent[f].data(), sent[f].size()), 0)
        << "frame " << f << " corrupted in flight";
  }
  EXPECT_TRUE(outbox.empty());
}

TEST(FrameSendBufferTest, PendingBytesSurviveWouldBlock) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  TcpSocket& writer = pair.value().first;
  TcpSocket& reader_sock = pair.value().second;
  shrink_send_buffer(writer);
  ASSERT_TRUE(writer.set_nonblocking(true));

  std::vector<std::uint8_t> payload(1u << 20, 0xAB);
  FrameSendBuffer outbox;
  ASSERT_TRUE(outbox.enqueue_frame(ByteSpan{payload.data(), payload.size()}));
  // The peer reads nothing: pumping must park the remainder, not fail.
  ASSERT_TRUE(outbox.pump(writer));
  EXPECT_GT(outbox.pending_bytes(), 0u) << "kernel buffer cannot hold 1 MiB";

  // Drain the peer and keep pumping: everything eventually flushes.
  ASSERT_TRUE(reader_sock.set_nonblocking(true));
  std::uint8_t chunk[16 * 1024];
  std::size_t drained = 0;
  const TimeMicros deadline = monotonic_micros() + 10'000'000;
  while ((!outbox.empty() || drained < payload.size() + 4) &&
         monotonic_micros() < deadline) {
    ASSERT_TRUE(outbox.pump(writer));
    auto n = reader_sock.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (n.is_ok()) drained += n.value();
  }
  EXPECT_TRUE(outbox.empty());
  EXPECT_EQ(drained, payload.size() + 4);
}

TEST(FrameSendBufferTest, CapReportsBufferFull) {
  FrameSendBuffer outbox(1024);
  std::vector<std::uint8_t> payload(600, 0x11);
  ASSERT_TRUE(outbox.enqueue_frame(ByteSpan{payload.data(), payload.size()}));
  EXPECT_EQ(outbox.enqueue_frame(ByteSpan{payload.data(), payload.size()}).code(),
            Errc::buffer_full)
      << "second frame would exceed the cap";
  EXPECT_EQ(outbox.pending_bytes(), 604u) << "rejected frame leaves no residue";
}

TEST(FrameSendBufferTest, OversizedFrameRejected) {
  FrameSendBuffer outbox(64u << 20);
  std::vector<std::uint8_t> huge(kMaxFrameBytes + 1, 0);
  EXPECT_EQ(outbox.enqueue_frame(ByteSpan{huge.data(), huge.size()}).code(),
            Errc::invalid_argument);
}

// The outbox-based FaultySocket path must keep its fault semantics: pass
// delivers intact, truncate still produces a deliberately torn frame.
TEST(FrameSendBufferTest, FaultySocketOutboxPassAndTruncate) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  TcpSocket& writer = pair.value().first;
  TcpSocket& reader_sock = pair.value().second;
  ASSERT_TRUE(writer.set_nonblocking(true));

  FaultySocket faulty([](std::uint64_t frame_index, ByteSpan) {
    if (frame_index == 1) return FaultDecision{FaultAction::truncate, 2, 0};
    return FaultDecision{};
  });
  FrameSendBuffer outbox;
  const std::uint8_t first[] = {'o', 'k', 'a', 'y'};
  const std::uint8_t second[] = {'t', 'o', 'r', 'n'};
  ASSERT_TRUE(faulty.write_frame(writer, outbox, ByteSpan{first, 4}));
  ASSERT_TRUE(faulty.write_frame(writer, outbox, ByteSpan{second, 4}));
  while (!outbox.empty()) ASSERT_TRUE(outbox.pump(writer));
  EXPECT_EQ(faulty.stats().truncated, 1u);

  auto intact = read_frame(reader_sock);
  ASSERT_TRUE(intact.is_ok());
  ASSERT_EQ(intact.value().size(), 4u);
  EXPECT_EQ(std::memcmp(intact.value().data(), first, 4), 0);
  // The torn frame: header declares 4 bytes, only 2 follow, then EOF.
  writer.close();
  std::uint8_t tail[64];
  std::size_t got = 0;
  for (;;) {
    auto n = reader_sock.read_some(MutableByteSpan{tail + got, sizeof tail - got});
    if (!n.is_ok() || n.value() == 0) break;
    got += n.value();
  }
  EXPECT_EQ(got, 6u) << "length prefix + truncated body only";
}

}  // namespace
}  // namespace brisk::net
