// Poller backend parity suite: every readiness-dispatch scenario runs
// against SelectPoller, EpollPoller, and (when the kernel provides it)
// UringPoller so backends cannot drift apart. Includes the >FD_SETSIZE
// smoke test that motivates the non-select backends: select() cannot watch
// descriptors at or beyond FD_SETSIZE, epoll and io_uring dispatch them
// fine. On kernels without io_uring the uring parameter is simply not
// generated and the uring-specific tests skip.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/time_util.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "net/wakeup.hpp"

namespace brisk::net {
namespace {

class PollerTest : public ::testing::TestWithParam<PollerBackend> {
 protected:
  [[nodiscard]] std::unique_ptr<Poller> make() const { return make_poller(GetParam()); }
};

TEST_P(PollerTest, ReportsBackendName) {
  auto loop = make();
  EXPECT_STREQ(loop->backend_name(), to_string(GetParam()));
}

TEST_P(PollerTest, DispatchesReadableFd) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), [&](int, Readiness) { ++fired; }));

  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 1);
  EXPECT_EQ(fired, 1);
}

TEST_P(PollerTest, ReadableCallbackSeesReadableMask) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  Readiness seen = Readiness::none;
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), Readiness::readable,
                          [&](int, Readiness ready) { seen = ready; }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_TRUE(any(seen & Readiness::readable));
  EXPECT_FALSE(any(seen & Readiness::writable)) << "mask must honour the declared interest";
}

TEST_P(PollerTest, WritableInterestFiresOnIdleSocket) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  Readiness seen = Readiness::none;
  // A fresh socket with an empty send buffer is immediately writable.
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), Readiness::writable,
                          [&](int, Readiness ready) { seen = ready; }));
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 1);
  EXPECT_TRUE(any(seen & Readiness::writable));
}

TEST_P(PollerTest, WatchUpsertsInterest) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  const int fd = pair.value().second.fd();
  int write_fired = 0;
  ASSERT_TRUE(loop->watch(fd, Readiness::writable, [&](int, Readiness) { ++write_fired; }));
  // Re-watching the same fd replaces interest and callback in place.
  int read_fired = 0;
  ASSERT_TRUE(loop->watch(fd, Readiness::readable, [&](int, Readiness) { ++read_fired; }));
  EXPECT_EQ(loop->watched_count(), 1u);
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(write_fired, 0);
  EXPECT_EQ(read_fired, 1);
}

TEST_P(PollerTest, TimeoutFiresIdleOnly) {
  auto loop = make();
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), [](int, Readiness) { FAIL() << "nothing readable"; }));
  int idles = 0;
  loop->set_idle([&] { ++idles; });
  const TimeMicros start = monotonic_micros();
  auto handled = loop->poll_once(20'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 0);
  EXPECT_EQ(idles, 1);
  EXPECT_GE(monotonic_micros() - start, 15'000) << "backend must have waited";
}

TEST_P(PollerTest, UnwatchStopsDispatch) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), [&](int, Readiness) { ++fired; }));
  ASSERT_TRUE(loop->unwatch(pair.value().second.fd()));
  EXPECT_EQ(loop->watched_count(), 0u);
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  auto handled = loop->poll_once(1'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(fired, 0);
}

TEST_P(PollerTest, CallbackMayUnwatchSelf) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  const int fd = pair.value().second.fd();
  ASSERT_TRUE(loop->watch(fd, [&](int ready_fd, Readiness) { ASSERT_TRUE(loop->unwatch(ready_fd)); }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(10'000).is_ok());
  EXPECT_EQ(loop->watched_count(), 0u);
}

TEST_P(PollerTest, CallbackMayUnwatchSibling) {
  auto pair1 = socket_pair();
  auto pair2 = socket_pair();
  ASSERT_TRUE(pair1.is_ok());
  ASSERT_TRUE(pair2.is_ok());
  auto loop = make();
  const int fd1 = pair1.value().second.fd();
  const int fd2 = pair2.value().second.fd();
  int sibling_fired = 0;
  // Both fds become readable in the same cycle; whichever callback runs
  // first unwatches the other. The dispatcher must tolerate that.
  ASSERT_TRUE(loop->watch(fd1, [&](int, Readiness) { (void)loop->unwatch(fd2); }));
  ASSERT_TRUE(loop->watch(fd2, [&](int, Readiness) {
    ++sibling_fired;
    (void)loop->unwatch(fd1);
  }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair1.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(pair2.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(loop->watched_count(), 1u) << "exactly one unwatch must have stuck";
  EXPECT_LE(sibling_fired, 1);
}

TEST_P(PollerTest, StopEndsRun) {
  auto loop = make();
  int idles = 0;
  loop->set_idle([&] {
    if (++idles == 3) loop->stop();
  });
  ASSERT_TRUE(loop->run(1'000));
  EXPECT_EQ(idles, 3);
  EXPECT_TRUE(loop->stopped());
}

TEST_P(PollerTest, RejectsInvalidWatch) {
  auto loop = make();
  EXPECT_EQ(loop->watch(-1, [](int, Readiness) {}).code(), Errc::invalid_argument);
  EXPECT_EQ(loop->watch(10, nullptr).code(), Errc::invalid_argument);
  EXPECT_EQ(loop->unwatch(10).code(), Errc::not_found);
}

TEST_P(PollerTest, MultipleFdsAllDispatch) {
  auto pair1 = socket_pair();
  auto pair2 = socket_pair();
  ASSERT_TRUE(pair1.is_ok());
  ASSERT_TRUE(pair2.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(pair1.value().second.fd(), [&](int, Readiness) { ++fired; }));
  ASSERT_TRUE(loop->watch(pair2.value().second.fd(), [&](int, Readiness) { ++fired; }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair1.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(pair2.value().first.write_all(ByteSpan{&byte, 1}));
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 2);
  EXPECT_EQ(fired, 2);
}

TEST_P(PollerTest, WakeupPipeSignalsPoller) {
  auto wakeup = WakeupPipe::create();
  ASSERT_TRUE(wakeup.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(wakeup.value().fd(), [&](int, Readiness) {
    ++fired;
    wakeup.value().drain();
  }));
  wakeup.value().signal();
  wakeup.value().signal();  // coalesces: one readable event, drained once
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(fired, 1);
  // After the drain the pipe is quiet again.
  handled = loop->poll_once(1'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 0);
}

// The divergence test: descriptors at or beyond FD_SETSIZE (1024) are out
// of reach for select() but fine for epoll. This is the capacity ceiling
// that makes the backend pluggable in the first place.
TEST_P(PollerTest, DescriptorBeyondSelectRange) {
  struct rlimit lim{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
  const rlim_t needed = FD_SETSIZE + 16;
  if (lim.rlim_cur < needed) {
    struct rlimit raised = lim;
    raised.rlim_cur = raised.rlim_max < needed ? raised.rlim_max : needed;
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0 || raised.rlim_cur < needed) {
      GTEST_SKIP() << "RLIMIT_NOFILE too low to exercise fds beyond FD_SETSIZE";
    }
  }
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  const int high_fd = ::fcntl(pair.value().second.fd(), F_DUPFD, FD_SETSIZE);
  ASSERT_GE(high_fd, FD_SETSIZE);

  auto loop = make();
  int fired = 0;
  Status watched = loop->watch(high_fd, [&](int, Readiness) { ++fired; });
  if (GetParam() == PollerBackend::select) {
    EXPECT_EQ(watched.code(), Errc::invalid_argument)
        << "select cannot represent fds >= FD_SETSIZE and must say so";
  } else {
    ASSERT_TRUE(watched) << watched.to_string();
    const std::uint8_t byte = 1;
    ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
    auto handled = loop->poll_once(100'000);
    ASSERT_TRUE(handled.is_ok());
    EXPECT_EQ(fired, 1) << "epoll must dispatch descriptors beyond FD_SETSIZE";
    ASSERT_TRUE(loop->unwatch(high_fd));
  }
  ::close(high_fd);
}

// Rapid watch/unwatch cycles must leave no stale dispatch behind: only the
// registration alive at poll time may fire. For the uring backend this also
// exercises SQ-ring overflow (the churn queues far more than one ring's
// worth of registrations between polls, forcing mid-cycle flushes).
TEST_P(PollerTest, WatchUnwatchChurnDispatchesLatestOnly) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  const int fd = pair.value().second.fd();
  int stale = 0;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(loop->watch(fd, [&](int, Readiness) { ++stale; }));
    ASSERT_TRUE(loop->unwatch(fd));
  }
  int fresh = 0;
  ASSERT_TRUE(loop->watch(fd, [&](int, Readiness) { ++fresh; }));
  EXPECT_EQ(loop->watched_count(), 1u);
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(stale, 0) << "an unwatched registration must never dispatch";
  EXPECT_EQ(fresh, 1);
  // A second churn burst with polls interleaved: still only the live
  // registration dispatches.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(loop->watch(fd, [&](int, Readiness) { ++stale; }));
    ASSERT_TRUE(loop->poll_once(0).is_ok());
    ASSERT_TRUE(loop->unwatch(fd));
    ASSERT_TRUE(loop->poll_once(0).is_ok());
  }
  ASSERT_TRUE(loop->watch(fd, [&](int, Readiness) { ++fresh; }));
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(fresh, 2);
}

// Combined interest reports both sides in one callback, and downgrading the
// interest stops the dropped side from firing. Also checks level-triggered
// parity: unread data must keep reporting readable on subsequent polls.
TEST_P(PollerTest, ReadableWritableInterplay) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  const int fd = pair.value().second.fd();
  Readiness seen = Readiness::none;
  ASSERT_TRUE(loop->watch(fd, Readiness::readable | Readiness::writable,
                          [&](int, Readiness ready) { seen = ready; }));
  // Idle socket: writable only.
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_TRUE(any(seen & Readiness::writable));
  EXPECT_FALSE(any(seen & Readiness::readable));
  // With a byte pending both sides are ready; one dispatch carries both.
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  seen = Readiness::none;
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 1);
  EXPECT_TRUE(any(seen & Readiness::readable));
  EXPECT_TRUE(any(seen & Readiness::writable));
  // Downgrade to readable-only; the byte is still unread, so the backend
  // must keep reporting readable (level-triggered), never writable.
  ASSERT_TRUE(loop->watch(fd, Readiness::readable, [&](int, Readiness ready) { seen = ready; }));
  seen = Readiness::none;
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_TRUE(any(seen & Readiness::readable));
  EXPECT_FALSE(any(seen & Readiness::writable));
  // Drain the byte: quiet again.
  std::uint8_t sink = 0;
  ASSERT_TRUE(pair.value().second.read_some(MutableByteSpan{&sink, 1}).is_ok());
  handled = loop->poll_once(1'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 0);
}

// A peer hangup must wake a watcher that subscribed to writable only —
// the shape of the readiness-driven outbox pump, where a connection with a
// full send buffer watches writable and the peer dies. All backends route
// HUP/ERR through the declared interest.
TEST_P(PollerTest, HupWakesWriteOnlyWatcher) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  TcpSocket writer = std::move(pair.value().second);
  ASSERT_TRUE(writer.set_nonblocking(true));
  // Shrink the send buffer and fill it so the socket is NOT writable.
  const int small = 4096;
  ASSERT_EQ(::setsockopt(writer.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small)), 0);
  std::vector<std::uint8_t> chunk(64 * 1024, 0xab);
  while (true) {
    auto wrote = writer.write_some(ByteSpan{chunk.data(), chunk.size()});
    if (!wrote.is_ok() || wrote.value() == 0) break;
  }
  int fired = 0;
  ASSERT_TRUE(loop->watch(writer.fd(), Readiness::writable, [&](int, Readiness ready) {
    ++fired;
    EXPECT_TRUE(any(ready & Readiness::writable));
  }));
  // Buffer full, peer alive: no writable event.
  auto handled = loop->poll_once(20'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(fired, 0) << "socket with a full send buffer must not report writable";
  // Peer closes with unread data: the kernel raises HUP/ERR and the
  // write-only watcher must wake so the owner can reap the connection.
  pair.value().first.close();
  handled = loop->poll_once(1'000'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(fired, 1) << "hangup must wake a write-only watcher";
}

// The fixed dispatch path pins the callback through a stable handle, so a
// callback replacing ITSELF mid-dispatch (re-watch with new interest) must
// not die with the registration it came from.
TEST_P(PollerTest, CallbackMayRewatchSelf) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  const int fd = pair.value().second.fd();
  int old_fired = 0;
  int new_fired = 0;
  ASSERT_TRUE(loop->watch(fd, [&, fd](int, Readiness) {
    ++old_fired;
    // Replaces this very callback while it runs.
    ASSERT_TRUE(loop->watch(fd, [&](int, Readiness) { ++new_fired; }));
  }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(old_fired, 1);
  // The byte is still unread: the replacement callback fires now.
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(old_fired, 1);
  EXPECT_EQ(new_fired, 1);
}

std::vector<PollerBackend> parity_backends() {
  std::vector<PollerBackend> backends{PollerBackend::select, PollerBackend::epoll};
  // Generated at test-registration time: on kernels without io_uring the
  // uring parameter simply does not exist (ci.sh keys off this).
  if (uring_available()) backends.push_back(PollerBackend::uring);
  return backends;
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerTest, ::testing::ValuesIn(parity_backends()),
                         [](const ::testing::TestParamInfo<PollerBackend>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(PollerFactoryTest, ParseBackendNames) {
  auto select_backend = parse_poller_backend("select");
  ASSERT_TRUE(select_backend.is_ok());
  EXPECT_EQ(select_backend.value(), PollerBackend::select);
  auto epoll_backend = parse_poller_backend("epoll");
  ASSERT_TRUE(epoll_backend.is_ok());
  EXPECT_EQ(epoll_backend.value(), PollerBackend::epoll);
  auto uring_backend = parse_poller_backend("uring");
  ASSERT_TRUE(uring_backend.is_ok());
  EXPECT_EQ(uring_backend.value(), PollerBackend::uring);
  EXPECT_EQ(parse_poller_backend("kqueue").status().code(), Errc::invalid_argument);
}

// Regression for the unwatch ordering bug: EPOLL_CTL_DEL used to run AFTER
// the bookkeeping erase, so a genuine ctl failure returned an error with
// entries_ already mutated and the kernel still watching. Reproduce a real
// ctl failure by closing the watched socket and re-pointing its fd number
// at a regular file: epoll_ctl rejects regular files with EPERM (checked
// before the not-registered lookup), which is not in the tolerated
// EBADF/ENOENT set.
TEST(EpollPollerTest, UnwatchFailureLeavesEntryRegistered) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  EpollPoller loop;
  const int fd = pair.value().second.fd();
  ASSERT_TRUE(loop.watch(fd, [](int, Readiness) {}));
  ASSERT_EQ(loop.watched_count(), 1u);

  const int file_fd = ::open("/dev/null", O_RDONLY);
  // /dev/null polls fine; use an actual regular file.
  ::close(file_fd);
  char tmpl[] = "/tmp/brisk_poller_unwatch_XXXXXX";
  const int reg_fd = ::mkstemp(tmpl);
  ASSERT_GE(reg_fd, 0);
  ::unlink(tmpl);
  // Close the socket out from under the poller and land the regular file on
  // the same descriptor number.
  pair.value().second.close();
  ASSERT_EQ(::dup2(reg_fd, fd), fd);
  ::close(reg_fd);

  Status st = loop.unwatch(fd);
  EXPECT_EQ(st.code(), Errc::io_error) << st.to_string();
  EXPECT_EQ(loop.watched_count(), 1u)
      << "failed unwatch must leave the poller's bookkeeping untouched";

  // Once the offending fd is gone the same unwatch succeeds (EBADF is a
  // tolerated shape of "already deregistered") and the entry goes with it.
  ::close(fd);
  EXPECT_TRUE(loop.unwatch(fd));
  EXPECT_EQ(loop.watched_count(), 0u);
}

// --- io_uring-specific coverage (names matter: ci.sh's TSan stage matches
// on "UringPoller"). Each test skips cleanly when the kernel lacks io_uring.

TEST(UringPollerTest, FactoryFallsBackWhenUnavailable) {
  auto loop = make_poller(PollerBackend::uring);
  ASSERT_NE(loop, nullptr) << "make_poller(uring) must always construct something";
  if (uring_available()) {
    EXPECT_STREQ(loop->backend_name(), "uring");
  } else {
    EXPECT_STREQ(loop->backend_name(), "epoll") << "fallback must land on epoll";
  }
}

TEST(UringPollerTest, BatchedRegistrationsDispatchInOneCycle) {
  if (!uring_available()) GTEST_SKIP() << "no io_uring on this kernel";
  auto loop = make_uring_poller();
  ASSERT_NE(loop, nullptr);
  // All registrations queue as SQEs and submit with the first poll's single
  // io_uring_enter; every ready fd must dispatch in that same cycle.
  constexpr int kPairs = 32;
  std::vector<Result<std::pair<TcpSocket, TcpSocket>>> pairs;
  int fired = 0;
  for (int i = 0; i < kPairs; ++i) {
    pairs.push_back(socket_pair());
    ASSERT_TRUE(pairs.back().is_ok());
    ASSERT_TRUE(loop->watch(pairs.back().value().second.fd(), [&](int, Readiness) { ++fired; }));
  }
  const std::uint8_t byte = 1;
  for (auto& p : pairs) ASSERT_TRUE(p.value().first.write_all(ByteSpan{&byte, 1}));
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), kPairs);
  EXPECT_EQ(fired, kPairs);
}

TEST(UringPollerTest, StaleCompletionAfterRewatchIsDropped) {
  if (!uring_available()) GTEST_SKIP() << "no io_uring on this kernel";
  auto loop = make_uring_poller();
  ASSERT_NE(loop, nullptr);
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  const int fd = pair.value().second.fd();
  // Make the fd ready, poll so the kernel has completed the first
  // registration, then re-watch before dispatching again: the completion
  // belonging to the first generation must not reach the second callback
  // twice or the first callback at all after replacement.
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  int first_cb = 0;
  ASSERT_TRUE(loop->watch(fd, [&](int, Readiness) { ++first_cb; }));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(first_cb, 1);
  int second_cb = 0;
  ASSERT_TRUE(loop->watch(fd, [&](int, Readiness) { ++second_cb; }));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(first_cb, 1) << "replaced callback must not fire again";
  EXPECT_EQ(second_cb, 1);
}

TEST(UringPollerTest, AvailabilityProbeIsStable) {
  // Whatever the kernel supports, the probe must agree with itself and with
  // the factory across calls (it is consulted by tests and ci.sh).
  const bool first = uring_available();
  EXPECT_EQ(first, uring_available());
  if (first) {
    EXPECT_NE(make_uring_poller(), nullptr);
  } else {
    EXPECT_EQ(make_uring_poller(), nullptr);
  }
}

}  // namespace
}  // namespace brisk::net
