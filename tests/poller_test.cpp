// Poller backend parity suite: every readiness-dispatch scenario runs
// against both SelectPoller and EpollPoller so backends cannot drift apart.
// Includes the >FD_SETSIZE smoke test that motivates epoll: select() cannot
// watch descriptors at or beyond FD_SETSIZE, epoll dispatches them fine.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <memory>

#include "common/time_util.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "net/wakeup.hpp"

namespace brisk::net {
namespace {

class PollerTest : public ::testing::TestWithParam<PollerBackend> {
 protected:
  [[nodiscard]] std::unique_ptr<Poller> make() const { return make_poller(GetParam()); }
};

TEST_P(PollerTest, ReportsBackendName) {
  auto loop = make();
  EXPECT_STREQ(loop->backend_name(), to_string(GetParam()));
}

TEST_P(PollerTest, DispatchesReadableFd) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), [&](int, Readiness) { ++fired; }));

  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 1);
  EXPECT_EQ(fired, 1);
}

TEST_P(PollerTest, ReadableCallbackSeesReadableMask) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  Readiness seen = Readiness::none;
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), Readiness::readable,
                          [&](int, Readiness ready) { seen = ready; }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_TRUE(any(seen & Readiness::readable));
  EXPECT_FALSE(any(seen & Readiness::writable)) << "mask must honour the declared interest";
}

TEST_P(PollerTest, WritableInterestFiresOnIdleSocket) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  Readiness seen = Readiness::none;
  // A fresh socket with an empty send buffer is immediately writable.
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), Readiness::writable,
                          [&](int, Readiness ready) { seen = ready; }));
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 1);
  EXPECT_TRUE(any(seen & Readiness::writable));
}

TEST_P(PollerTest, WatchUpsertsInterest) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  const int fd = pair.value().second.fd();
  int write_fired = 0;
  ASSERT_TRUE(loop->watch(fd, Readiness::writable, [&](int, Readiness) { ++write_fired; }));
  // Re-watching the same fd replaces interest and callback in place.
  int read_fired = 0;
  ASSERT_TRUE(loop->watch(fd, Readiness::readable, [&](int, Readiness) { ++read_fired; }));
  EXPECT_EQ(loop->watched_count(), 1u);
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(write_fired, 0);
  EXPECT_EQ(read_fired, 1);
}

TEST_P(PollerTest, TimeoutFiresIdleOnly) {
  auto loop = make();
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), [](int, Readiness) { FAIL() << "nothing readable"; }));
  int idles = 0;
  loop->set_idle([&] { ++idles; });
  const TimeMicros start = monotonic_micros();
  auto handled = loop->poll_once(20'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 0);
  EXPECT_EQ(idles, 1);
  EXPECT_GE(monotonic_micros() - start, 15'000) << "backend must have waited";
}

TEST_P(PollerTest, UnwatchStopsDispatch) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(pair.value().second.fd(), [&](int, Readiness) { ++fired; }));
  ASSERT_TRUE(loop->unwatch(pair.value().second.fd()));
  EXPECT_EQ(loop->watched_count(), 0u);
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  auto handled = loop->poll_once(1'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(fired, 0);
}

TEST_P(PollerTest, CallbackMayUnwatchSelf) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  auto loop = make();
  const int fd = pair.value().second.fd();
  ASSERT_TRUE(loop->watch(fd, [&](int ready_fd, Readiness) { ASSERT_TRUE(loop->unwatch(ready_fd)); }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(10'000).is_ok());
  EXPECT_EQ(loop->watched_count(), 0u);
}

TEST_P(PollerTest, CallbackMayUnwatchSibling) {
  auto pair1 = socket_pair();
  auto pair2 = socket_pair();
  ASSERT_TRUE(pair1.is_ok());
  ASSERT_TRUE(pair2.is_ok());
  auto loop = make();
  const int fd1 = pair1.value().second.fd();
  const int fd2 = pair2.value().second.fd();
  int sibling_fired = 0;
  // Both fds become readable in the same cycle; whichever callback runs
  // first unwatches the other. The dispatcher must tolerate that.
  ASSERT_TRUE(loop->watch(fd1, [&](int, Readiness) { (void)loop->unwatch(fd2); }));
  ASSERT_TRUE(loop->watch(fd2, [&](int, Readiness) {
    ++sibling_fired;
    (void)loop->unwatch(fd1);
  }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair1.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(pair2.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(loop->poll_once(100'000).is_ok());
  EXPECT_EQ(loop->watched_count(), 1u) << "exactly one unwatch must have stuck";
  EXPECT_LE(sibling_fired, 1);
}

TEST_P(PollerTest, StopEndsRun) {
  auto loop = make();
  int idles = 0;
  loop->set_idle([&] {
    if (++idles == 3) loop->stop();
  });
  ASSERT_TRUE(loop->run(1'000));
  EXPECT_EQ(idles, 3);
  EXPECT_TRUE(loop->stopped());
}

TEST_P(PollerTest, RejectsInvalidWatch) {
  auto loop = make();
  EXPECT_EQ(loop->watch(-1, [](int, Readiness) {}).code(), Errc::invalid_argument);
  EXPECT_EQ(loop->watch(10, nullptr).code(), Errc::invalid_argument);
  EXPECT_EQ(loop->unwatch(10).code(), Errc::not_found);
}

TEST_P(PollerTest, MultipleFdsAllDispatch) {
  auto pair1 = socket_pair();
  auto pair2 = socket_pair();
  ASSERT_TRUE(pair1.is_ok());
  ASSERT_TRUE(pair2.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(pair1.value().second.fd(), [&](int, Readiness) { ++fired; }));
  ASSERT_TRUE(loop->watch(pair2.value().second.fd(), [&](int, Readiness) { ++fired; }));
  const std::uint8_t byte = 1;
  ASSERT_TRUE(pair1.value().first.write_all(ByteSpan{&byte, 1}));
  ASSERT_TRUE(pair2.value().first.write_all(ByteSpan{&byte, 1}));
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 2);
  EXPECT_EQ(fired, 2);
}

TEST_P(PollerTest, WakeupPipeSignalsPoller) {
  auto wakeup = WakeupPipe::create();
  ASSERT_TRUE(wakeup.is_ok());
  auto loop = make();
  int fired = 0;
  ASSERT_TRUE(loop->watch(wakeup.value().fd(), [&](int, Readiness) {
    ++fired;
    wakeup.value().drain();
  }));
  wakeup.value().signal();
  wakeup.value().signal();  // coalesces: one readable event, drained once
  auto handled = loop->poll_once(100'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(fired, 1);
  // After the drain the pipe is quiet again.
  handled = loop->poll_once(1'000);
  ASSERT_TRUE(handled.is_ok());
  EXPECT_EQ(handled.value(), 0);
}

// The divergence test: descriptors at or beyond FD_SETSIZE (1024) are out
// of reach for select() but fine for epoll. This is the capacity ceiling
// that makes the backend pluggable in the first place.
TEST_P(PollerTest, DescriptorBeyondSelectRange) {
  struct rlimit lim{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
  const rlim_t needed = FD_SETSIZE + 16;
  if (lim.rlim_cur < needed) {
    struct rlimit raised = lim;
    raised.rlim_cur = raised.rlim_max < needed ? raised.rlim_max : needed;
    if (::setrlimit(RLIMIT_NOFILE, &raised) != 0 || raised.rlim_cur < needed) {
      GTEST_SKIP() << "RLIMIT_NOFILE too low to exercise fds beyond FD_SETSIZE";
    }
  }
  auto pair = socket_pair();
  ASSERT_TRUE(pair.is_ok());
  const int high_fd = ::fcntl(pair.value().second.fd(), F_DUPFD, FD_SETSIZE);
  ASSERT_GE(high_fd, FD_SETSIZE);

  auto loop = make();
  int fired = 0;
  Status watched = loop->watch(high_fd, [&](int, Readiness) { ++fired; });
  if (GetParam() == PollerBackend::select) {
    EXPECT_EQ(watched.code(), Errc::invalid_argument)
        << "select cannot represent fds >= FD_SETSIZE and must say so";
  } else {
    ASSERT_TRUE(watched) << watched.to_string();
    const std::uint8_t byte = 1;
    ASSERT_TRUE(pair.value().first.write_all(ByteSpan{&byte, 1}));
    auto handled = loop->poll_once(100'000);
    ASSERT_TRUE(handled.is_ok());
    EXPECT_EQ(fired, 1) << "epoll must dispatch descriptors beyond FD_SETSIZE";
    ASSERT_TRUE(loop->unwatch(high_fd));
  }
  ::close(high_fd);
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerTest,
                         ::testing::Values(PollerBackend::select, PollerBackend::epoll),
                         [](const ::testing::TestParamInfo<PollerBackend>& info) {
                           return std::string(to_string(info.param));
                         });

TEST(PollerFactoryTest, ParseBackendNames) {
  auto select_backend = parse_poller_backend("select");
  ASSERT_TRUE(select_backend.is_ok());
  EXPECT_EQ(select_backend.value(), PollerBackend::select);
  auto epoll_backend = parse_poller_backend("epoll");
  ASSERT_TRUE(epoll_backend.is_ok());
  EXPECT_EQ(epoll_backend.value(), PollerBackend::epoll);
  EXPECT_EQ(parse_poller_backend("kqueue").status().code(), Errc::invalid_argument);
}

}  // namespace
}  // namespace brisk::net
