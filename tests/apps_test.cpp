// Executable-level end-to-end test: launches the real brisk_ism, brisk_exs
// and brisk_consume binaries (the deployment a user runs), attaches to the
// EXS's named shared-memory region as "the application", and verifies
// records flow NOTICE → ring → EXS process → TCP → ISM process → named
// output shm → consumer process.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/time_util.hpp"
#include "core/brisk_node.hpp"
#include "shm/shared_region.hpp"

#ifndef BRISK_APPS_DIR
#error "BRISK_APPS_DIR must be defined by the build"
#endif

namespace brisk {
namespace {

using sensors::x_i32;

struct ChildProcess {
  pid_t pid = -1;
  int stdout_fd = -1;

  void terminate_and_wait() {
    if (pid <= 0) return;
    ::kill(pid, SIGTERM);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    if (stdout_fd >= 0) {
      ::close(stdout_fd);
      stdout_fd = -1;
    }
  }
};

/// Spawns `binary args...` with stdout captured in a pipe.
ChildProcess spawn(const std::string& binary, std::vector<std::string> args) {
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  ChildProcess child;
  child.pid = ::fork();
  if (child.pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    static std::string bin_storage;
    bin_storage = binary;
    argv.push_back(bin_storage.data());
    for (auto& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  ::close(pipe_fds[1]);
  child.stdout_fd = pipe_fds[0];
  return child;
}

/// Reads the child's stdout until `marker` appears (or timeout); returns
/// everything read so far.
std::string read_until(ChildProcess& child, const std::string& marker,
                       TimeMicros timeout = 10'000'000) {
  std::string output;
  const TimeMicros deadline = monotonic_micros() + timeout;
  const int flags = ::fcntl(child.stdout_fd, F_GETFL, 0);
  ::fcntl(child.stdout_fd, F_SETFL, flags | O_NONBLOCK);
  while (monotonic_micros() < deadline) {
    char chunk[4096];
    const ssize_t n = ::read(child.stdout_fd, chunk, sizeof chunk);
    if (n > 0) {
      output.append(chunk, static_cast<std::size_t>(n));
      if (output.find(marker) != std::string::npos) break;
    } else if (n == 0) {
      break;  // child closed stdout
    } else {
      sleep_micros(10'000);
    }
  }
  return output;
}

TEST(AppsTest, ThreeExecutableDeployment) {
  const std::string apps_dir = BRISK_APPS_DIR;
  const std::string suffix = std::to_string(::getpid());
  const std::string node_shm = "/brisk-apps-node-" + suffix;
  const std::string out_shm = "/brisk-apps-out-" + suffix;

  // --- brisk_ism -------------------------------------------------------------
  ChildProcess ism = spawn(apps_dir + "/brisk_ism",
                           {"--port", "0", "--shm", out_shm, "--select-timeout-us", "2000",
                            "--sync-period-us", "200000"});
  ASSERT_GT(ism.pid, 0);
  const std::string ism_banner = read_until(ism, "listening on 127.0.0.1:");
  const std::size_t port_pos = ism_banner.find("listening on 127.0.0.1:");
  ASSERT_NE(port_pos, std::string::npos) << "ism banner: " << ism_banner;
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(ism_banner.c_str() + port_pos + std::strlen("listening on 127.0.0.1:"),
                   nullptr, 10));
  ASSERT_GT(port, 0);

  // --- brisk_exs (creates the node's named region) -----------------------------
  ChildProcess exs = spawn(apps_dir + "/brisk_exs",
                           {"--node", "1", "--shm", node_shm, "--ism-port",
                            std::to_string(port), "--select-timeout-us", "2000",
                            "--batch-age-us", "1000"});
  ASSERT_GT(exs.pid, 0);
  (void)read_until(exs, "node 1");

  // --- the instrumented application: attach to the EXS's region ----------------
  NodeConfig node_config;
  node_config.node = 1;
  node_config.shm_name = node_shm;
  Result<std::unique_ptr<BriskNode>> app = Status(Errc::not_found, "pending");
  const TimeMicros deadline = monotonic_micros() + 5'000'000;
  while (monotonic_micros() < deadline) {
    app = BriskNode::attach(node_config);
    if (app.is_ok()) break;
    sleep_micros(20'000);
  }
  ASSERT_TRUE(app.is_ok()) << app.status().to_string();
  auto sensor = app.value()->make_sensor();
  ASSERT_TRUE(sensor.is_ok());

  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(BRISK_NOTICE(sensor.value(), 7, x_i32(i)));
  }

  // --- brisk_consume: drains the ISM's named output region ---------------------
  ChildProcess consume = spawn(apps_dir + "/brisk_consume",
                               {"--shm", out_shm, "--mode", "picl", "--max-records",
                                std::to_string(kEvents), "--idle-exit-ms", "8000"});
  ASSERT_GT(consume.pid, 0);
  const std::string picl_output = read_until(consume, "X_I32=" + std::to_string(kEvents - 1));
  int status = 0;
  ASSERT_EQ(::waitpid(consume.pid, &status, 0), consume.pid);
  consume.pid = -1;
  ::close(consume.stdout_fd);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // Every record made it through, in per-node order.
  int lines = 0;
  for (char c : picl_output) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, kEvents) << picl_output.substr(0, 400);
  EXPECT_NE(picl_output.find("X_I32=0"), std::string::npos);

  exs.terminate_and_wait();
  ism.terminate_and_wait();
  (void)shm::SharedRegion::open_named(node_shm).value().unlink();
  // brisk_ism owns the output region; it does not unlink on SIGTERM, so
  // clean up here to keep the namespace tidy across test runs.
  auto out_region = shm::SharedRegion::open_named(out_shm);
  if (out_region.is_ok()) (void)out_region.value().unlink();
}

}  // namespace
}  // namespace brisk
