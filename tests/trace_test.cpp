// End-to-end tracing tests: histogram bucket/percentile math, concurrent
// recording, merge associativity, the trace-annotation codecs (native tail,
// wire extension, transcode slot patching), span-export records, the
// latency recorder, and byte compatibility of untraced records with the
// pre-trace formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "metrics/latency.hpp"
#include "metrics/metrics.hpp"
#include "sensors/record_codec.hpp"
#include "sensors/trace.hpp"
#include "sensors/trace_record.hpp"
#include "tp/batch.hpp"
#include "tp/wire.hpp"

namespace brisk {
namespace {

using sensors::Field;
using sensors::Record;
using sensors::TraceAnnotation;
using sensors::TraceStage;
using sensors::TraceStamp;

// ---- histogram math ---------------------------------------------------------

TEST(TraceHistogramTest, LinearBucketsAreExact) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(metrics::Histogram::bucket_index(v), v);
    EXPECT_EQ(metrics::Histogram::bucket_bound(v), v);
  }
}

TEST(TraceHistogramTest, BoundsAreMonotoneAndConsistent) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < metrics::Histogram::kBucketCount; ++i) {
    const std::uint64_t bound = metrics::Histogram::bucket_bound(i);
    if (i > 0) {
      EXPECT_GT(bound, prev) << "bucket " << i;
      // Every bound value must land in its own bucket, and the first value
      // past the previous bound must land at or after this bucket.
      EXPECT_EQ(metrics::Histogram::bucket_index(bound), i) << "bucket " << i;
      EXPECT_EQ(metrics::Histogram::bucket_index(prev + 1), i) << "bucket " << i;
    }
    prev = bound;
  }
  EXPECT_EQ(metrics::Histogram::bucket_bound(metrics::Histogram::kBucketCount - 1),
            UINT64_MAX);
}

TEST(TraceHistogramTest, SubBucketRelativeErrorStaysUnderQuarter) {
  // Values stay under the ~16.7s top of the covered range; beyond that the
  // overflow bucket absorbs everything and error is unbounded by design.
  for (std::uint64_t v : {100u, 1'000u, 65'000u, 1'000'000u, 10'000'000u}) {
    const std::size_t idx = metrics::Histogram::bucket_index(v);
    const std::uint64_t bound = metrics::Histogram::bucket_bound(idx);
    ASSERT_GE(bound, v);
    EXPECT_LE(static_cast<double>(bound - v), 0.25 * static_cast<double>(v))
        << "value " << v;
  }
}

TEST(TraceHistogramTest, PercentilesFromRebuiltBuckets) {
  metrics::Histogram h;
  // 100 samples at ~10us, 10 at ~1000us, 1 at ~100000us.
  for (int i = 0; i < 100; ++i) h.record(10);
  for (int i = 0; i < 10; ++i) h.record(1'000);
  h.record(100'000);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  for (std::size_t i = 0; i < metrics::Histogram::kBucketCount; ++i) {
    if (h.bucket_count_at(i) > 0) {
      buckets.emplace_back(metrics::Histogram::bucket_bound(i), h.bucket_count_at(i));
    }
  }
  EXPECT_EQ(metrics::histogram_percentile(buckets, 0.50), 10u);
  const std::uint64_t p99 = metrics::histogram_percentile(buckets, 0.99);
  EXPECT_GE(p99, 1'000u);
  EXPECT_LE(p99, 1'280u);  // 25% bucket error headroom
  EXPECT_GE(metrics::histogram_percentile(buckets, 1.00), 100'000u);
  EXPECT_EQ(metrics::histogram_percentile({}, 0.5), 0u);
}

TEST(TraceHistogramTest, MergeIsAssociative) {
  metrics::Histogram a;
  metrics::Histogram b;
  metrics::Histogram c;
  std::uint64_t v = 1;
  for (int i = 0; i < 300; ++i) {
    v = v * 2862933555777941757ull + 3037000493ull;  // LCG
    const std::uint64_t sample = v % 1'000'000;
    if (i % 3 == 0) a.record(sample);
    if (i % 3 == 1) b.record(sample);
    if (i % 3 == 2) c.record(sample);
  }
  // (a + b) + c
  metrics::Histogram left;
  left.merge_from(a);
  left.merge_from(b);
  left.merge_from(c);
  // a + (b + c)
  metrics::Histogram bc;
  bc.merge_from(b);
  bc.merge_from(c);
  metrics::Histogram right;
  right.merge_from(a);
  right.merge_from(bc);
  for (std::size_t i = 0; i < metrics::Histogram::kBucketCount; ++i) {
    EXPECT_EQ(left.bucket_count_at(i), right.bucket_count_at(i)) << "bucket " << i;
  }
  EXPECT_EQ(left.total(), 300u);
}

TEST(TraceHistogramTest, ConcurrentRecordKeepsEverySample) {
  metrics::Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * 1'000 + (i & 0x3ff)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.total(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(TraceHistogramTest, BucketNameRoundTrip) {
  std::string base;
  std::uint64_t bound = 0;
  ASSERT_TRUE(metrics::parse_histogram_bucket_name(
      metrics::histogram_bucket_name("lat.end_to_end", 1'234), base, bound));
  EXPECT_EQ(base, "lat.end_to_end");
  EXPECT_EQ(bound, 1'234u);
  ASSERT_TRUE(metrics::parse_histogram_bucket_name(
      metrics::histogram_bucket_name("x", UINT64_MAX), base, bound));
  EXPECT_EQ(base, "x");
  EXPECT_EQ(bound, UINT64_MAX);
  EXPECT_FALSE(metrics::parse_histogram_bucket_name("plain.counter", base, bound));
  EXPECT_FALSE(metrics::parse_histogram_bucket_name("bad.le_12x", base, bound));
}

// ---- sampling ---------------------------------------------------------------

TEST(TraceSamplingTest, RateEdgesAndDeterminism) {
  EXPECT_FALSE(sensors::trace_sampled(1, 2, 3, 0.0));
  EXPECT_FALSE(sensors::trace_sampled(1, 2, 3, -1.0));
  EXPECT_TRUE(sensors::trace_sampled(1, 2, 3, 1.0));
  EXPECT_TRUE(sensors::trace_sampled(1, 2, 3, 2.0));
  // Deterministic: the same (node, sensor, sequence) always decides the same
  // way — the determinism grid depends on this.
  for (SequenceNo seq = 0; seq < 100; ++seq) {
    EXPECT_EQ(sensors::trace_sampled(1, 2, seq, 0.25),
              sensors::trace_sampled(1, 2, seq, 0.25));
  }
  EXPECT_EQ(sensors::make_trace_id(1, 2, 3), sensors::make_trace_id(1, 2, 3));
  EXPECT_NE(sensors::make_trace_id(1, 2, 3), sensors::make_trace_id(1, 2, 4));
}

TEST(TraceSamplingTest, RateApproximatesFraction) {
  int hits = 0;
  for (SequenceNo seq = 0; seq < 10'000; ++seq) {
    if (sensors::trace_sampled(3, 7, seq, 0.5)) ++hits;
  }
  EXPECT_GT(hits, 4'000);
  EXPECT_LT(hits, 6'000);
}

TEST(TraceSamplingTest, AnnotationStampCapAndFind) {
  TraceAnnotation annotation;
  annotation.trace_id = 42;
  for (std::size_t i = 0; i < sensors::kMaxTraceStamps + 5; ++i) {
    annotation.stamp(TraceStage::cre_pass, static_cast<TimeMicros>(i));
  }
  EXPECT_EQ(annotation.stamps.size(), sensors::kMaxTraceStamps);
  const TraceStamp* found = annotation.find(TraceStage::cre_pass);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->at, static_cast<TimeMicros>(sensors::kMaxTraceStamps - 1));
  EXPECT_EQ(annotation.find(TraceStage::tp_send), nullptr);
}

// ---- native codec -----------------------------------------------------------

Record sample_record() {
  Record record;
  record.sensor = 9;
  record.sequence = 5;
  record.timestamp = 1'000'000;
  record.fields.push_back(Field::i32(-7));
  record.fields.push_back(Field::u64(123456789ull));
  return record;
}

TEST(TraceNativeCodecTest, AnnotationRoundTrips) {
  Record record = sample_record();
  record.trace = TraceAnnotation{0xdeadbeefcafe1234ull,
                                 {{TraceStage::ring_enqueue, 1'000'000},
                                  {TraceStage::exs_drain, 1'000'050}}};
  auto encoded = sensors::encode_native(record);
  ASSERT_TRUE(encoded.is_ok()) << encoded.status().to_string();
  auto decoded = sensors::decode_native(encoded.value().view());
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), record);
}

TEST(TraceNativeCodecTest, UntracedEncodingIsByteCompatible) {
  // A record without an annotation must encode exactly as before the trace
  // extension existed: no tail, flags byte zero.
  Record record = sample_record();
  auto encoded = sensors::encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  Record traced = record;
  traced.trace = TraceAnnotation{1, {{TraceStage::ring_enqueue, 5}}};
  auto traced_encoded = sensors::encode_native(traced);
  ASSERT_TRUE(traced_encoded.is_ok());
  // The traced encoding is a strict extension: same prefix, tail appended.
  ASSERT_GT(traced_encoded.value().size(), encoded.value().size());
  for (std::size_t i = 0; i < encoded.value().size(); ++i) {
    if (i == sensors::kNativeFlagsOffset) {
      EXPECT_EQ(encoded.value().view()[i], 0);
      EXPECT_EQ(traced_encoded.value().view()[i], sensors::kNativeFlagTrace);
    } else {
      EXPECT_EQ(encoded.value().view()[i], traced_encoded.value().view()[i]) << "byte " << i;
    }
  }
  EXPECT_FALSE(sensors::native_trace_present(encoded.value().view()));
  EXPECT_TRUE(sensors::native_trace_present(traced_encoded.value().view()));
}

TEST(TraceNativeCodecTest, UnknownFlagBitsRejected) {
  Record record = sample_record();
  auto encoded = sensors::encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  ByteBuffer bytes = std::move(encoded).value();
  std::vector<std::uint8_t> raw(bytes.view().begin(), bytes.view().end());
  raw[sensors::kNativeFlagsOffset] = 0x80;
  auto decoded = sensors::decode_native({raw.data(), raw.size()});
  EXPECT_FALSE(decoded.is_ok());
}

TEST(TraceNativeCodecTest, WriterTraceAndLateStamp) {
  std::vector<std::uint8_t> buf(sensors::kMaxNativeRecordBytes);
  sensors::RecordWriter writer({buf.data(), buf.size()});
  ASSERT_TRUE(writer.begin(3, 1, 500));
  ASSERT_TRUE(writer.add_i32(11));
  ASSERT_TRUE(writer.begin_trace(77));
  ASSERT_TRUE(writer.add_trace_stamp(TraceStage::ring_enqueue, 500));
  auto finished = writer.finish();
  ASSERT_TRUE(finished.is_ok()) << finished.status().to_string();

  std::vector<std::uint8_t> native(finished.value().begin(), finished.value().end());
  ASSERT_TRUE(sensors::native_trace_present({native.data(), native.size()}));
  Status st = sensors::stamp_native_trace(native, TraceStage::exs_drain, 650);
  ASSERT_TRUE(st.is_ok()) << st.to_string();

  auto decoded = sensors::decode_native({native.data(), native.size()});
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  ASSERT_TRUE(decoded.value().trace.has_value());
  EXPECT_EQ(decoded.value().trace->trace_id, 77u);
  ASSERT_EQ(decoded.value().trace->stamps.size(), 2u);
  EXPECT_EQ(decoded.value().trace->stamps[0], (TraceStamp{TraceStage::ring_enqueue, 500}));
  EXPECT_EQ(decoded.value().trace->stamps[1], (TraceStamp{TraceStage::exs_drain, 650}));
}

TEST(TraceNativeCodecTest, StampOnUntracedRecordIsANoOp) {
  Record record = sample_record();
  auto encoded = sensors::encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> native(encoded.value().view().begin(),
                                   encoded.value().view().end());
  const std::vector<std::uint8_t> before = native;
  Status st = sensors::stamp_native_trace(native, TraceStage::exs_drain, 650);
  EXPECT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(native, before);
}

TEST(TraceNativeCodecTest, PatchTimestampsShiftsStamps) {
  Record record = sample_record();
  record.trace = TraceAnnotation{9, {{TraceStage::ring_enqueue, 1'000'000}}};
  auto encoded = sensors::encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> native(encoded.value().view().begin(),
                                   encoded.value().view().end());
  Status st = sensors::patch_native_timestamps({native.data(), native.size()}, 250);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  auto decoded = sensors::decode_native({native.data(), native.size()});
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().timestamp, 1'000'250);
  ASSERT_TRUE(decoded.value().trace.has_value());
  EXPECT_EQ(decoded.value().trace->stamps[0].at, 1'000'250);
}

// ---- wire codec -------------------------------------------------------------

TEST(TraceWireCodecTest, AnnotationRoundTrips) {
  Record record = sample_record();
  record.trace = TraceAnnotation{0x1122334455667788ull,
                                 {{TraceStage::ring_enqueue, 1'000'000},
                                  {TraceStage::ism_ingest, 1'002'000}}};
  ByteBuffer buf;
  xdr::Encoder enc(buf);
  Status st = tp::encode_record(record, enc);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(buf.size(), tp::record_wire_size(record));
  xdr::Decoder dec(buf.view());
  auto decoded = tp::decode_record(dec, record.node);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  // Sequence numbers are a batch-level concern and never ride the wire.
  Record expected = record;
  expected.sequence = 0;
  EXPECT_EQ(decoded.value(), expected);
}

TEST(TraceWireCodecTest, UntracedRecordCarriesNoTraceBytes) {
  Record record = sample_record();
  ByteBuffer untraced;
  xdr::Encoder enc(untraced);
  ASSERT_TRUE(tp::encode_record(record, enc).is_ok());
  Record traced = record;
  traced.trace = TraceAnnotation{1, {{TraceStage::ring_enqueue, 5}}};
  ByteBuffer with_trace;
  xdr::Encoder enc2(with_trace);
  ASSERT_TRUE(tp::encode_record(traced, enc2).is_ok());
  EXPECT_GT(with_trace.size(), untraced.size());
  xdr::Decoder dec(untraced.view());
  auto decoded = tp::decode_record(dec, 0);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_FALSE(decoded.value().trace.has_value());
}

TEST(TraceWireCodecTest, TranscodeAddsSealAndSendSlots) {
  std::vector<std::uint8_t> buf(sensors::kMaxNativeRecordBytes);
  sensors::RecordWriter writer({buf.data(), buf.size()});
  ASSERT_TRUE(writer.begin(3, 1, 500));
  ASSERT_TRUE(writer.add_i32(11));
  ASSERT_TRUE(writer.begin_trace(77));
  ASSERT_TRUE(writer.add_trace_stamp(TraceStage::ring_enqueue, 500));
  auto native = writer.finish();
  ASSERT_TRUE(native.is_ok());

  ByteBuffer wire;
  xdr::Encoder enc(wire);
  tp::TraceStampSlots slots;
  Status st = tp::transcode_native_record(native.value(), enc, 100, &slots);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_TRUE(slots.traced);

  xdr::Decoder dec(wire.view());
  auto decoded = tp::decode_record(dec, 3);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  ASSERT_TRUE(decoded.value().trace.has_value());
  ASSERT_EQ(decoded.value().trace->stamps.size(), 3u);
  // The clock correction applies to the node-side stamp; the placeholder
  // seal/send stamps are zero until the batcher patches them.
  EXPECT_EQ(decoded.value().trace->stamps[0], (TraceStamp{TraceStage::ring_enqueue, 600}));
  EXPECT_EQ(decoded.value().trace->stamps[1], (TraceStamp{TraceStage::batch_seal, 0}));
  EXPECT_EQ(decoded.value().trace->stamps[2], (TraceStamp{TraceStage::tp_send, 0}));
}

TEST(TraceWireCodecTest, BatchPatchFillsSealAndSend) {
  std::vector<std::uint8_t> buf(sensors::kMaxNativeRecordBytes);
  sensors::RecordWriter writer({buf.data(), buf.size()});
  ASSERT_TRUE(writer.begin(3, 1, 500));
  ASSERT_TRUE(writer.add_i32(11));
  ASSERT_TRUE(writer.begin_trace(77));
  ASSERT_TRUE(writer.add_trace_stamp(TraceStage::ring_enqueue, 500));
  auto native = writer.finish();
  ASSERT_TRUE(native.is_ok());

  tp::BatchBuilder builder(3);
  // An untraced record ahead of the traced one exercises the absolute-offset
  // bookkeeping (slot offsets are relative to the record, not the batch).
  Record plain = sample_record();
  auto plain_native = sensors::encode_native(plain);
  ASSERT_TRUE(plain_native.is_ok());
  ASSERT_TRUE(builder.add_native_record(plain_native.value().view(), 100).is_ok());
  ASSERT_TRUE(builder.add_native_record(native.value(), 100).is_ok());
  builder.patch_trace_stamps(1'500, 1'600);
  ByteBuffer payload = builder.finish();

  xdr::Decoder dec(payload.view());
  ASSERT_TRUE(tp::peek_type(dec).is_ok());
  auto batch = tp::decode_batch(dec);
  ASSERT_TRUE(batch.is_ok()) << batch.status().to_string();
  ASSERT_EQ(batch.value().records.size(), 2u);
  EXPECT_FALSE(batch.value().records[0].trace.has_value());
  const Record& traced = batch.value().records[1];
  ASSERT_TRUE(traced.trace.has_value());
  ASSERT_EQ(traced.trace->stamps.size(), 3u);
  EXPECT_EQ(traced.trace->stamps[1], (TraceStamp{TraceStage::batch_seal, 1'500}));
  EXPECT_EQ(traced.trace->stamps[2], (TraceStamp{TraceStage::tp_send, 1'600}));
}

// ---- span-export records ----------------------------------------------------

TEST(TraceRecordTest, RoundTripsAndDedupes) {
  TraceAnnotation annotation;
  annotation.trace_id = 0xabcdef;
  annotation.stamp(TraceStage::ring_enqueue, 100);
  annotation.stamp(TraceStage::exs_drain, 200);
  annotation.stamp(TraceStage::exs_drain, 250);  // last wins
  annotation.stamp(TraceStage::sink_delivery, 900);

  Record record = sensors::make_trace_record(4, 17, 100, annotation);
  EXPECT_TRUE(sensors::is_trace_record(record));
  EXPECT_EQ(record.node, 4u);
  EXPECT_EQ(record.sequence, 17u);
  EXPECT_EQ(record.sensor, sensors::kTraceSensorId);

  auto decoded = sensors::decode_trace_record(record);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().trace_id, 0xabcdefu);
  ASSERT_EQ(decoded.value().stamps.size(), 3u);
  EXPECT_EQ(decoded.value().stamps[0], (TraceStamp{TraceStage::ring_enqueue, 100}));
  EXPECT_EQ(decoded.value().stamps[1], (TraceStamp{TraceStage::exs_drain, 250}));
  EXPECT_EQ(decoded.value().stamps[2], (TraceStamp{TraceStage::sink_delivery, 900}));
}

TEST(TraceRecordTest, SurvivesWireRoundTrip) {
  TraceAnnotation annotation;
  annotation.trace_id = 1;
  annotation.stamp(TraceStage::ring_enqueue, 100);
  annotation.stamp(TraceStage::sink_delivery, 900);
  Record record = sensors::make_trace_record(4, 0, 100, annotation);

  ByteBuffer buf;
  xdr::Encoder enc(buf);
  ASSERT_TRUE(tp::encode_record(record, enc).is_ok());
  xdr::Decoder dec(buf.view());
  auto decoded = tp::decode_record(dec, 4);
  ASSERT_TRUE(decoded.is_ok());
  auto span = sensors::decode_trace_record(decoded.value());
  ASSERT_TRUE(span.is_ok()) << span.status().to_string();
  EXPECT_EQ(span.value(), annotation);
}

TEST(TraceRecordTest, RejectsNonTraceRecords) {
  EXPECT_FALSE(sensors::decode_trace_record(sample_record()).is_ok());
}

// ---- latency recorder -------------------------------------------------------

TEST(TraceLatencyMetricsTest, ObserveFeedsEveryPresentPair) {
  metrics::MetricsRegistry registry;
  metrics::LatencyRecorder recorder(registry);

  TraceAnnotation annotation;
  annotation.trace_id = 5;
  TimeMicros at = 1'000;
  for (std::size_t s = 0; s < sensors::kTraceStageCount; ++s) {
    annotation.stamp(static_cast<TraceStage>(s), at);
    at += 100;
  }
  recorder.observe(annotation);

  auto samples = registry.snapshot();
  std::size_t series_seen = 0;
  for (const auto& pair : metrics::kLatencyPairs) {
    bool found = false;
    for (const auto& sample : samples) {
      std::string base;
      std::uint64_t bound = 0;
      if (sample.kind == metrics::MetricKind::histogram_bucket &&
          metrics::parse_histogram_bucket_name(sample.name, base, bound) &&
          base == pair.name) {
        EXPECT_GT(sample.value, 0u);
        EXPECT_GT(bound, 0u) << "clamped floor keeps p50 non-zero";
        found = true;
      }
    }
    EXPECT_TRUE(found) << pair.name;
    if (found) ++series_seen;
  }
  EXPECT_EQ(series_seen, metrics::kLatencyPairs.size());
}

TEST(TraceLatencyMetricsTest, MissingStagesAndClampedSpans) {
  metrics::MetricsRegistry registry;
  metrics::LatencyRecorder recorder(registry);

  // Only ring + sink present, and the sink stamp is *earlier* (cross-node
  // clock skew): the end-to-end span clamps to the 1us floor.
  TraceAnnotation annotation;
  annotation.trace_id = 6;
  annotation.stamp(TraceStage::ring_enqueue, 2'000);
  annotation.stamp(TraceStage::sink_delivery, 1'000);
  recorder.observe(annotation);

  auto samples = registry.snapshot();
  std::uint64_t end_to_end_total = 0;
  std::uint64_t clamped = 0;
  bool adjacent_pairs_seen = false;
  for (const auto& sample : samples) {
    std::string base;
    std::uint64_t bound = 0;
    if (sample.kind == metrics::MetricKind::histogram_bucket &&
        metrics::parse_histogram_bucket_name(sample.name, base, bound)) {
      if (base == "lat.end_to_end") end_to_end_total += sample.value;
      if (base != "lat.end_to_end") adjacent_pairs_seen = true;
    }
    if (sample.name == "lat.clamped_spans") clamped = sample.value;
  }
  EXPECT_EQ(end_to_end_total, 1u);
  EXPECT_EQ(clamped, 1u);
  EXPECT_FALSE(adjacent_pairs_seen) << "pairs with missing stamps must not record";
}

}  // namespace
}  // namespace brisk
