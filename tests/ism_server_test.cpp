// ISM server protocol-robustness tests: a raw TCP client speaks crafted
// (including malformed) transfer-protocol frames at a live Ism and verifies
// the server's dispositions — drop the connection on protocol violations,
// tolerate benign oddities, never crash.
#include <gtest/gtest.h>

#include <thread>

#include "clock/clock.hpp"
#include "common/time_util.hpp"
#include "ism/ism.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "tp/batch.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::ism {
namespace {

class IsmServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IsmConfig config;
    config.select_timeout_us = 2'000;
    config.enable_sync = false;
    config.sorter.initial_frame_us = 0;
    config.sorter.min_frame_us = 0;
    config.sorter.adaptive = false;
    delivered_ = std::make_shared<DeliveredLog>();
    auto delivered = delivered_;
    auto sink = std::make_shared<CallbackSink>(
        [delivered](const sensors::Record& r) { delivered->add(r); });
    auto ism = Ism::start(config, clk::SystemClock::instance(), sink);
    ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
    ism_ = std::move(ism).value();
    server_ = std::thread([this] { (void)ism_->run(); });
  }

  void TearDown() override {
    ism_->stop();
    server_.join();
  }

  net::TcpSocket connect() {
    auto socket = net::TcpSocket::connect("127.0.0.1", ism_->port());
    EXPECT_TRUE(socket.is_ok());
    return std::move(socket).value();
  }

  static Status send_hello(net::TcpSocket& socket, NodeId node,
                           std::uint32_t version = tp::kProtocolVersion) {
    ByteBuffer out;
    xdr::Encoder enc(out);
    tp::put_type(tp::MsgType::hello, enc);
    tp::encode_hello({node, version}, enc);
    return net::write_frame(socket, out.view());
  }

  /// True if the server closed the connection (EOF within the deadline).
  static bool connection_closed(net::TcpSocket& socket, TimeMicros timeout = 2'000'000) {
    const TimeMicros deadline = monotonic_micros() + timeout;
    (void)socket.set_nonblocking(true);
    std::uint8_t chunk[256];
    while (monotonic_micros() < deadline) {
      auto n = socket.read_some(MutableByteSpan{chunk, sizeof chunk});
      if (!n) {
        if (n.status().code() == Errc::would_block) {
          sleep_micros(5'000);
          continue;
        }
        return true;  // reset counts as closed
      }
      if (n.value() == 0) return true;
      // Server sent something (e.g. a sync poll) — keep draining.
    }
    return false;
  }

  /// Mutex-guarded record log shared with the server thread's sink.
  struct DeliveredLog {
    std::mutex mutex;
    std::vector<sensors::Record> records;
    void add(const sensors::Record& r) {
      std::lock_guard<std::mutex> lock(mutex);
      records.push_back(r);
    }
    std::size_t size() {
      std::lock_guard<std::mutex> lock(mutex);
      return records.size();
    }
    sensors::Record at(std::size_t i) {
      std::lock_guard<std::mutex> lock(mutex);
      return records.at(i);
    }
  };

  bool wait_for_delivery(std::size_t count, TimeMicros timeout = 2'000'000) {
    const TimeMicros deadline = monotonic_micros() + timeout;
    while (monotonic_micros() < deadline) {
      if (delivered_->size() >= count) return true;
      sleep_micros(2'000);
    }
    return false;
  }

  std::unique_ptr<Ism> ism_;
  std::shared_ptr<DeliveredLog> delivered_;
  std::thread server_;
};

TEST_F(IsmServerTest, WellFormedSessionDelivers) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 5));
  tp::BatchBuilder builder(5);
  sensors::Record record;
  record.sensor = 1;
  record.timestamp = 42;
  record.fields = {sensors::Field::i32(7)};
  ASSERT_TRUE(builder.add_record(record));
  ByteBuffer payload = builder.finish();
  ASSERT_TRUE(net::write_frame(socket, payload.view()));
  EXPECT_TRUE(wait_for_delivery(1));
  EXPECT_EQ(delivered_->at(0).node, 5u);
}

TEST_F(IsmServerTest, BatchBeforeHelloDropsConnection) {
  auto socket = connect();
  tp::BatchBuilder builder(1);
  ByteBuffer payload = builder.finish();
  ASSERT_TRUE(net::write_frame(socket, payload.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_F(IsmServerTest, VersionMismatchDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 1, /*version=*/999));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_F(IsmServerTest, DuplicateNodeIdRejected) {
  auto first = connect();
  ASSERT_TRUE(send_hello(first, 7));
  auto second = connect();
  ASSERT_TRUE(send_hello(second, 7));
  EXPECT_TRUE(connection_closed(second));
  EXPECT_FALSE(connection_closed(first, 200'000)) << "original connection survives";
}

TEST_F(IsmServerTest, NodeIdReusableAfterDisconnect) {
  {
    auto socket = connect();
    ASSERT_TRUE(send_hello(socket, 9));
    sleep_micros(50'000);
  }  // closed
  sleep_micros(100'000);
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 9));
  EXPECT_FALSE(connection_closed(socket, 300'000)) << "id freed by the disconnect";
}

TEST_F(IsmServerTest, UnknownMessageTypeDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 2));
  ByteBuffer garbage;
  xdr::Encoder enc(garbage);
  enc.put_u32(99);  // not a MsgType
  ASSERT_TRUE(net::write_frame(socket, garbage.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_F(IsmServerTest, TruncatedBatchDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 3));
  ByteBuffer bad;
  xdr::Encoder enc(bad);
  tp::put_type(tp::MsgType::data_batch, enc);
  enc.put_u32(3);  // node, then nothing else
  ASSERT_TRUE(net::write_frame(socket, bad.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_F(IsmServerTest, OversizedFrameHeaderDropsConnection) {
  auto socket = connect();
  const std::uint8_t evil[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(socket.write_all(ByteSpan{evil, 4}));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_F(IsmServerTest, UnsolicitedTimeRespTolerated) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 4));
  ByteBuffer resp;
  xdr::Encoder enc(resp);
  tp::put_type(tp::MsgType::time_resp, enc);
  tp::encode_time_resp({12345, 67890}, enc);
  ASSERT_TRUE(net::write_frame(socket, resp.view()));
  EXPECT_FALSE(connection_closed(socket, 300'000)) << "stale responses are ignored";
}

TEST_F(IsmServerTest, ByeClosesGracefully) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 6));
  ByteBuffer bye;
  xdr::Encoder enc(bye);
  tp::put_type(tp::MsgType::bye, enc);
  ASSERT_TRUE(net::write_frame(socket, bye.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_F(IsmServerTest, EmptyFrameDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(net::write_frame(socket, ByteSpan{}));
  EXPECT_TRUE(connection_closed(socket));
}

}  // namespace
}  // namespace brisk::ism
