// ISM server protocol-robustness tests: a raw TCP client speaks crafted
// (including malformed) transfer-protocol frames at a live Ism and verifies
// the server's dispositions — drop the connection on protocol violations,
// tolerate benign oddities, never crash.
//
// The whole suite is parameterized over the ingest configuration (poller
// backend x inline/threaded readers) so every disposition holds in all
// deployment shapes, and a determinism test checks the sorted output is
// identical whichever configuration ran it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>

#include <thread>
#include <vector>

#include "clock/clock.hpp"
#include "common/time_util.hpp"
#include "ism/ism.hpp"
#include "net/frame.hpp"
#include "net/poller.hpp"
#include "net/socket.hpp"
#include "sensors/metrics_record.hpp"
#include "sensors/trace.hpp"
#include "sensors/trace_record.hpp"
#include "tp/batch.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::ism {
namespace {

/// One ingest deployment shape: which poller, how many reader threads, how
/// many ordering shards.
struct IngestMode {
  net::PollerBackend poller = net::PollerBackend::select;
  std::size_t reader_threads = 0;
  std::size_t sorter_shards = 1;
  bool readiness_pump = true;
};

std::string ingest_mode_name(const ::testing::TestParamInfo<IngestMode>& info) {
  std::string name = net::to_string(info.param.poller);
  name += info.param.reader_threads == 0 ? "_inline" : "_threaded";
  if (info.param.sorter_shards > 1) {
    name += "_shards" + std::to_string(info.param.sorter_shards);
  }
  if (!info.param.readiness_pump) name += "_legacypump";
  return name;
}

/// Backends every parameterized suite runs against; io_uring joins only when
/// the running kernel actually supports it (the factory otherwise falls back
/// to epoll, which the grid already covers).
std::vector<net::PollerBackend> ingest_backends() {
  std::vector<net::PollerBackend> backends{net::PollerBackend::select,
                                           net::PollerBackend::epoll};
  if (net::uring_available()) backends.push_back(net::PollerBackend::uring);
  return backends;
}

std::vector<IngestMode> ingest_modes() {
  std::vector<IngestMode> modes{
      IngestMode{net::PollerBackend::select, 0},
      IngestMode{net::PollerBackend::select, 2},
      IngestMode{net::PollerBackend::epoll, 0},
      IngestMode{net::PollerBackend::epoll, 2},
      IngestMode{net::PollerBackend::select, 2, 2},
      IngestMode{net::PollerBackend::epoll, 0, 2},
      IngestMode{net::PollerBackend::epoll, 0, 1, false},
  };
  if (net::uring_available()) {
    modes.push_back(IngestMode{net::PollerBackend::uring, 0});
    modes.push_back(IngestMode{net::PollerBackend::uring, 2, 2});
  }
  return modes;
}

class IsmServerTest : public ::testing::TestWithParam<IngestMode> {
 protected:
  void SetUp() override {
    IsmConfig config;
    config.select_timeout_us = 2'000;
    config.enable_sync = false;
    config.sorter.initial_frame_us = 0;
    config.sorter.min_frame_us = 0;
    config.sorter.adaptive = false;
    config.poller = GetParam().poller;
    config.reader_threads = GetParam().reader_threads;
    config.sorter_shards = GetParam().sorter_shards;
    config.readiness_pump = GetParam().readiness_pump;
    delivered_ = std::make_shared<DeliveredLog>();
    auto delivered = delivered_;
    auto sink = std::make_shared<CallbackSink>(
        [delivered](const sensors::Record& r) { delivered->add(r); });
    auto ism = Ism::start(config, clk::SystemClock::instance(), sink);
    ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
    ism_ = std::move(ism).value();
    server_ = std::thread([this] { (void)ism_->run(); });
  }

  void TearDown() override {
    ism_->stop();
    server_.join();
  }

  net::TcpSocket connect() {
    auto socket = net::TcpSocket::connect("127.0.0.1", ism_->port());
    EXPECT_TRUE(socket.is_ok());
    return std::move(socket).value();
  }

  static Status send_hello(net::TcpSocket& socket, NodeId node,
                           std::uint32_t version = tp::kProtocolVersion) {
    ByteBuffer out;
    xdr::Encoder enc(out);
    tp::put_type(tp::MsgType::hello, enc);
    tp::encode_hello({node, version}, enc);
    return net::write_frame(socket, out.view());
  }

  /// True if the server closed the connection (EOF within the deadline).
  static bool connection_closed(net::TcpSocket& socket, TimeMicros timeout = 2'000'000) {
    const TimeMicros deadline = monotonic_micros() + timeout;
    (void)socket.set_nonblocking(true);
    std::uint8_t chunk[256];
    while (monotonic_micros() < deadline) {
      auto n = socket.read_some(MutableByteSpan{chunk, sizeof chunk});
      if (!n) {
        if (n.status().code() == Errc::would_block) {
          sleep_micros(5'000);
          continue;
        }
        return true;  // reset counts as closed
      }
      if (n.value() == 0) return true;
      // Server sent something (e.g. a sync poll) — keep draining.
    }
    return false;
  }

  /// Mutex-guarded record log shared with the server thread's sink.
  struct DeliveredLog {
    std::mutex mutex;
    std::vector<sensors::Record> records;
    void add(const sensors::Record& r) {
      std::lock_guard<std::mutex> lock(mutex);
      records.push_back(r);
    }
    std::size_t size() {
      std::lock_guard<std::mutex> lock(mutex);
      return records.size();
    }
    sensors::Record at(std::size_t i) {
      std::lock_guard<std::mutex> lock(mutex);
      return records.at(i);
    }
  };

  bool wait_for_delivery(std::size_t count, TimeMicros timeout = 2'000'000) {
    const TimeMicros deadline = monotonic_micros() + timeout;
    while (monotonic_micros() < deadline) {
      if (delivered_->size() >= count) return true;
      sleep_micros(2'000);
    }
    return false;
  }

  std::unique_ptr<Ism> ism_;
  std::shared_ptr<DeliveredLog> delivered_;
  std::thread server_;
};

TEST_P(IsmServerTest, WellFormedSessionDelivers) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 5));
  tp::BatchBuilder builder(5);
  sensors::Record record;
  record.sensor = 1;
  record.timestamp = 42;
  record.fields = {sensors::Field::i32(7)};
  ASSERT_TRUE(builder.add_record(record));
  ByteBuffer payload = builder.finish();
  ASSERT_TRUE(net::write_frame(socket, payload.view()));
  EXPECT_TRUE(wait_for_delivery(1));
  EXPECT_EQ(delivered_->at(0).node, 5u);
}

TEST_P(IsmServerTest, BatchBeforeHelloDropsConnection) {
  auto socket = connect();
  tp::BatchBuilder builder(1);
  ByteBuffer payload = builder.finish();
  ASSERT_TRUE(net::write_frame(socket, payload.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_P(IsmServerTest, VersionMismatchDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 1, /*version=*/999));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_P(IsmServerTest, DuplicateNodeIdRejected) {
  auto first = connect();
  ASSERT_TRUE(send_hello(first, 7));
  // Wait for the HELLO_ACK: with parallel reader threads there is no
  // cross-connection ordering, so the session must be established before
  // the usurper shows up (a real EXS gates on the ack the same way).
  ASSERT_TRUE(net::read_frame(first).is_ok());
  auto second = connect();
  ASSERT_TRUE(send_hello(second, 7));
  EXPECT_TRUE(connection_closed(second));
  EXPECT_FALSE(connection_closed(first, 200'000)) << "original connection survives";
}

TEST_P(IsmServerTest, NodeIdReusableAfterDisconnect) {
  {
    auto socket = connect();
    ASSERT_TRUE(send_hello(socket, 9));
    sleep_micros(50'000);
  }  // closed
  sleep_micros(100'000);
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 9));
  EXPECT_FALSE(connection_closed(socket, 300'000)) << "id freed by the disconnect";
}

TEST_P(IsmServerTest, UnknownMessageTypeDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 2));
  ByteBuffer garbage;
  xdr::Encoder enc(garbage);
  enc.put_u32(99);  // not a MsgType
  ASSERT_TRUE(net::write_frame(socket, garbage.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_P(IsmServerTest, TruncatedBatchDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 3));
  ByteBuffer bad;
  xdr::Encoder enc(bad);
  tp::put_type(tp::MsgType::data_batch, enc);
  enc.put_u32(3);  // node, then nothing else
  ASSERT_TRUE(net::write_frame(socket, bad.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_P(IsmServerTest, OversizedFrameHeaderDropsConnection) {
  auto socket = connect();
  const std::uint8_t evil[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(socket.write_all(ByteSpan{evil, 4}));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_P(IsmServerTest, UnsolicitedTimeRespTolerated) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 4));
  ByteBuffer resp;
  xdr::Encoder enc(resp);
  tp::put_type(tp::MsgType::time_resp, enc);
  tp::encode_time_resp({12345, 67890}, enc);
  ASSERT_TRUE(net::write_frame(socket, resp.view()));
  EXPECT_FALSE(connection_closed(socket, 300'000)) << "stale responses are ignored";
}

TEST_P(IsmServerTest, ByeClosesGracefully) {
  auto socket = connect();
  ASSERT_TRUE(send_hello(socket, 6));
  ByteBuffer bye;
  xdr::Encoder enc(bye);
  tp::put_type(tp::MsgType::bye, enc);
  ASSERT_TRUE(net::write_frame(socket, bye.view()));
  EXPECT_TRUE(connection_closed(socket));
}

TEST_P(IsmServerTest, EmptyFrameDropsConnection) {
  auto socket = connect();
  ASSERT_TRUE(net::write_frame(socket, ByteSpan{}));
  EXPECT_TRUE(connection_closed(socket));
}

INSTANTIATE_TEST_SUITE_P(IngestModes, IsmServerTest, ::testing::ValuesIn(ingest_modes()),
                         ingest_mode_name);

// ---- outbox stall classification -------------------------------------------------------
//
// Regression for the pump-error handling bug where *any* failed outbox send
// closed the connection: Errc::buffer_full is a transient overload signal
// (the peer stopped reading and both the kernel buffer and the outbox cap
// filled), not a dead socket. An overloaded-but-alive peer must keep its
// connection through the stall grace period and, once it resumes reading,
// receive every deferred ack as an intact frame. Only
// outbox_stall_timeout_us = 0 restores the legacy reap-on-first-rejection
// behaviour — the companion test below proves the same traffic shape really
// does wedge the outbox (so the survival test is not vacuously green).

/// Client socket whose receive buffer is clamped to the kernel minimum
/// *before* connect, so the server-side kernel send buffer + outbox fill
/// after a few hundred acks instead of megabytes.
net::TcpSocket connect_tiny_rcvbuf(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int tiny = 1;  // clamped up to the kernel's floor — still a few KiB
  EXPECT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny), 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  return net::TcpSocket{net::FdHandle{fd}};
}

/// ISM tuned so a non-reading peer wedges its outbox within ~1 s: tiny
/// server-side SO_SNDBUF, tiny outbox cap, acks every millisecond.
IsmConfig stall_config(TimeMicros stall_timeout_us) {
  IsmConfig config;
  config.select_timeout_us = 1'000;
  config.enable_sync = false;
  config.sorter.initial_frame_us = 0;
  config.sorter.min_frame_us = 0;
  config.sorter.adaptive = false;
  config.ack_period_us = 1'000;
  config.sndbuf_bytes = 4'096;  // kernel clamps up to its floor
  config.outbox_bytes = 512;
  config.outbox_stall_timeout_us = stall_timeout_us;
  return config;
}

TEST(IsmOutboxStallTest, OverloadedPeerSurvivesGracePeriodAndFramesNeverTear) {
  auto sink = std::make_shared<CallbackSink>([](const sensors::Record&) {});
  auto ism = Ism::start(stall_config(/*stall_timeout_us=*/60'000'000),
                        clk::SystemClock::instance(), sink);
  ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
  std::thread server([&] { (void)ism.value()->run(); });

  net::TcpSocket client = connect_tiny_rcvbuf(ism.value()->port());
  ASSERT_TRUE(client.valid());
  ByteBuffer hello;
  xdr::Encoder enc(hello);
  tp::put_type(tp::MsgType::hello, enc);
  tp::encode_hello({NodeId(7), tp::kProtocolVersion}, enc);
  ASSERT_TRUE(net::write_frame(client, hello.view()));
  ASSERT_TRUE(net::read_frame(client).is_ok()) << "hello_ack";

  // Stop reading: millisecond acks fill the kernel buffers, then the 512-byte
  // outbox, and every further sweep sees Errc::buffer_full. Within the 60 s
  // grace the server must classify that as transient and keep the session.
  sleep_micros(2'000'000);
  EXPECT_EQ(ism.value()->connected_nodes(), 1u)
      << "buffer_full during the grace period must not reap the connection";

  // Resume reading: each deferred ack must arrive as one intact frame (a
  // torn frame would desync the length-prefixed stream and fail the parse).
  int intact_acks = 0;
  for (int i = 0; i < 40; ++i) {
    auto frame = net::read_frame(client);
    ASSERT_TRUE(frame.is_ok()) << "torn or corrupt frame after stall: "
                               << frame.status().to_string();
    xdr::Decoder dec(frame.value().view());
    auto type = tp::peek_type(dec);
    ASSERT_TRUE(type.is_ok());
    ASSERT_EQ(type.value(), tp::MsgType::batch_ack);
    ++intact_acks;
  }
  EXPECT_EQ(intact_acks, 40);
  EXPECT_EQ(ism.value()->connected_nodes(), 1u);

  ism.value()->stop();
  server.join();
}

TEST(IsmOutboxStallTest, ZeroGraceReapsWedgedPeer) {
  // Same traffic shape, legacy classification: the first buffer_full is
  // fatal. This closing proves the survival test above really stalled.
  auto sink = std::make_shared<CallbackSink>([](const sensors::Record&) {});
  auto ism = Ism::start(stall_config(/*stall_timeout_us=*/0),
                        clk::SystemClock::instance(), sink);
  ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
  std::thread server([&] { (void)ism.value()->run(); });

  net::TcpSocket client = connect_tiny_rcvbuf(ism.value()->port());
  ASSERT_TRUE(client.valid());
  ByteBuffer hello;
  xdr::Encoder enc(hello);
  tp::put_type(tp::MsgType::hello, enc);
  tp::encode_hello({NodeId(9), tp::kProtocolVersion}, enc);
  ASSERT_TRUE(net::write_frame(client, hello.view()));
  ASSERT_TRUE(net::read_frame(client).is_ok()) << "hello_ack";

  // Never read again; the wedged outbox must reap the session promptly.
  const TimeMicros deadline = monotonic_micros() + 8'000'000;
  while (ism.value()->connected_nodes() > 0 && monotonic_micros() < deadline) {
    sleep_micros(10'000);
  }
  EXPECT_EQ(ism.value()->connected_nodes(), 0u)
      << "outbox_stall_timeout_us=0 must reap on the first buffer_full";

  ism.value()->stop();
  server.join();
}

// Acceptance: the sorted + CRE-ordered output stream must be byte-identical
// whichever poller backend, reader-thread count, and ordering-shard count
// ran it — the k-way merge over per-node-disjoint shard streams reproduces
// the monolithic sorter's (timestamp, node) order exactly. Uses a frame
// window wide enough to hold everything until drain, so ordering is decided
// purely by record timestamps, never by arrival interleaving.
//
// Self-instrumentation runs during every config: the ISM's own metrics
// records ride the ordering pipeline alongside the data stream and are
// filtered out of the comparison — their presence must never perturb the
// sorted data order.
TEST(IsmIngestDeterminismTest, SortedOutputIdenticalAcrossConfigs) {
  std::vector<IngestMode> modes;
  for (net::PollerBackend poller : ingest_backends()) {
    for (std::size_t readers : {std::size_t{0}, std::size_t{2}}) {
      for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        modes.push_back(IngestMode{poller, readers, shards});
      }
    }
  }
  // The legacy periodic-walk pump must order identically to readiness mode.
  modes.push_back(IngestMode{net::PollerBackend::epoll, 2, 2, false});
  constexpr int kNodes = 3;
  constexpr int kRecordsPerNode = 40;
  // Timestamps sit near the current wall clock: the sorter releases a
  // record once `now >= timestamp + frame`, so a wide frame over recent
  // timestamps holds everything until the explicit drain — emission order
  // is then decided purely by timestamps, never by arrival interleaving.
  const TimeMicros base = clk::SystemClock::instance().now();

  std::vector<std::vector<std::pair<TimeMicros, NodeId>>> outputs;
  for (const IngestMode& mode : modes) {
    IsmConfig config;
    config.select_timeout_us = 2'000;
    config.enable_sync = false;
    config.sorter.adaptive = false;
    config.sorter.initial_frame_us = 120'000'000;  // hold everything until drain
    config.sorter.max_frame_us = 120'000'000;
    config.poller = mode.poller;
    config.reader_threads = mode.reader_threads;
    config.sorter_shards = mode.sorter_shards;
    config.readiness_pump = mode.readiness_pump;
    config.metrics_interval_us = 5'000;  // self-instrumentation on

    auto order = std::make_shared<std::vector<std::pair<TimeMicros, NodeId>>>();
    auto metrics_seen = std::make_shared<std::size_t>(0);
    auto mutex = std::make_shared<std::mutex>();
    auto sink = std::make_shared<CallbackSink>(
        [order, metrics_seen, mutex](const sensors::Record& r) {
          std::lock_guard<std::mutex> lock(*mutex);
          if (sensors::is_metrics_record(r)) {
            ++*metrics_seen;
            return;
          }
          order->emplace_back(r.timestamp, r.node);
        });
    auto ism = Ism::start(config, clk::SystemClock::instance(), sink);
    ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
    std::thread server([&] { (void)ism.value()->run(); });

    // Establish every session first (gated on the HELLO_ACK): the sorter
    // only holds records while other live nodes might still contribute
    // earlier timestamps, so no node may come and go before the rest join.
    std::vector<net::TcpSocket> clients;
    for (int n = 1; n <= kNodes; ++n) {
      auto socket = net::TcpSocket::connect("127.0.0.1", ism.value()->port());
      ASSERT_TRUE(socket.is_ok());
      clients.push_back(std::move(socket).value());
      net::TcpSocket& client = clients.back();
      ByteBuffer hello;
      xdr::Encoder hello_enc(hello);
      tp::put_type(tp::MsgType::hello, hello_enc);
      tp::encode_hello({NodeId(n), tp::kProtocolVersion}, hello_enc);
      ASSERT_TRUE(net::write_frame(client, hello.view()));
      ASSERT_TRUE(net::read_frame(client).is_ok()) << "hello_ack";
    }
    // Each node sends records whose timestamps interleave with the other
    // nodes' (node n owns timestamps n, n+kNodes, n+2*kNodes, ...).
    for (int n = 1; n <= kNodes; ++n) {
      net::TcpSocket& client = clients[std::size_t(n) - 1];
      tp::BatchBuilder builder{NodeId(n)};
      for (int i = 0; i < kRecordsPerNode; ++i) {
        sensors::Record record;
        record.sensor = 1;
        record.timestamp = base + TimeMicros(n) + TimeMicros(i) * kNodes;
        record.fields = {sensors::Field::i32(i)};
        // A causal pair spanning nodes (and so, when sharded, shards): node
        // 1's last record is the reason, node 2's last the consequence —
        // the global CRE pass must order them identically in every config.
        if (i == kRecordsPerNode - 1 && n == 1) {
          record.fields.push_back(sensors::Field::reason(77));
        }
        if (i == kRecordsPerNode - 1 && n == 2) {
          record.fields.push_back(sensors::Field::conseq(77));
        }
        ASSERT_TRUE(builder.add_record(record));
      }
      ByteBuffer payload = builder.finish();
      ASSERT_TRUE(net::write_frame(client, payload.view()));
      ByteBuffer bye;
      xdr::Encoder bye_enc(bye);
      tp::put_type(tp::MsgType::bye, bye_enc);
      ASSERT_TRUE(net::write_frame(client, bye.view()));
    }
    // The server closing each connection proves it consumed everything the
    // client sent before the bye (per-connection FIFO ordering).
    for (net::TcpSocket& client : clients) {
      const TimeMicros deadline = monotonic_micros() + 5'000'000;
      (void)client.set_nonblocking(true);
      bool closed = false;
      std::uint8_t chunk[256];
      while (!closed && monotonic_micros() < deadline) {
        auto n = client.read_some(MutableByteSpan{chunk, sizeof chunk});
        if (!n) {
          if (n.status().code() == Errc::would_block) {
            sleep_micros(2'000);
            continue;
          }
          closed = true;
        } else if (n.value() == 0) {
          closed = true;
        }
      }
      ASSERT_TRUE(closed) << "server must close the session after bye";
    }
    ism.value()->stop();
    server.join();
    ASSERT_TRUE(ism.value()->drain());
    std::lock_guard<std::mutex> lock(*mutex);
    EXPECT_GE(*metrics_seen, 1u)
        << "every config emits at least one metrics record (drain snapshots)";
    outputs.push_back(*order);
  }

  ASSERT_EQ(outputs[0].size(), std::size_t(kNodes) * kRecordsPerNode);
  for (std::size_t i = 1; i < outputs[0].size(); ++i) {
    EXPECT_LT(outputs[0][i - 1].first, outputs[0][i].first) << "output is timestamp-sorted";
  }
  for (std::size_t m = 1; m < outputs.size(); ++m) {
    EXPECT_EQ(outputs[m], outputs[0])
        << "config " << m << " produced a different record stream";
  }
}

// Acceptance (flow control): credit grants are control-plane only — they
// ride ack frames and throttle the sender, so switching them on must not
// perturb the sorted data stream in any reader/shard topology. Grid:
// credits {off, window 8} × reader threads {1, 4} × ordering shards {1, 4},
// all compared byte-for-byte against each other.
TEST(IsmIngestDeterminismTest, CreditGrantsLeaveSortedOutputByteIdentical) {
  struct CreditMode {
    std::uint32_t credit_records = 0;
    std::size_t readers = 1;
    std::size_t shards = 1;
  };
  std::vector<CreditMode> modes;
  for (std::uint32_t credits : {0u, 8u}) {
    for (std::size_t readers : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        modes.push_back(CreditMode{credits, readers, shards});
      }
    }
  }
  constexpr int kNodes = 3;
  constexpr int kRecordsPerNode = 32;
  const TimeMicros base = clk::SystemClock::instance().now();

  std::vector<std::vector<std::pair<TimeMicros, NodeId>>> outputs;
  for (const CreditMode& mode : modes) {
    IsmConfig config;
    config.select_timeout_us = 2'000;
    config.enable_sync = false;
    config.sorter.adaptive = false;
    config.sorter.initial_frame_us = 120'000'000;  // hold everything until drain
    config.sorter.max_frame_us = 120'000'000;
    config.reader_threads = mode.readers;
    config.sorter_shards = mode.shards;
    config.credit_window_records = mode.credit_records;
    config.credit_replenish_us = 5'000;  // re-grant aggressively mid-run

    auto order = std::make_shared<std::vector<std::pair<TimeMicros, NodeId>>>();
    auto mutex = std::make_shared<std::mutex>();
    auto sink = std::make_shared<CallbackSink>(
        [order, mutex](const sensors::Record& r) {
          std::lock_guard<std::mutex> lock(*mutex);
          if (sensors::is_metrics_record(r)) return;
          order->emplace_back(r.timestamp, r.node);
        });
    auto ism = Ism::start(config, clk::SystemClock::instance(), sink);
    ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
    std::thread server([&] { (void)ism.value()->run(); });

    std::vector<net::TcpSocket> clients;
    for (int n = 1; n <= kNodes; ++n) {
      auto socket = net::TcpSocket::connect("127.0.0.1", ism.value()->port());
      ASSERT_TRUE(socket.is_ok());
      clients.push_back(std::move(socket).value());
      net::TcpSocket& client = clients.back();
      ByteBuffer hello;
      xdr::Encoder hello_enc(hello);
      tp::put_type(tp::MsgType::hello, hello_enc);
      tp::encode_hello({NodeId(n), tp::kProtocolVersion}, hello_enc);
      ASSERT_TRUE(net::write_frame(client, hello.view()));
      ASSERT_TRUE(net::read_frame(client).is_ok()) << "hello_ack";
    }
    for (int n = 1; n <= kNodes; ++n) {
      net::TcpSocket& client = clients[std::size_t(n) - 1];
      tp::BatchBuilder builder{NodeId(n)};
      for (int i = 0; i < kRecordsPerNode; ++i) {
        sensors::Record record;
        record.sensor = 1;
        record.timestamp = base + TimeMicros(n) + TimeMicros(i) * kNodes;
        record.fields = {sensors::Field::i32(i)};
        ASSERT_TRUE(builder.add_record(record));
      }
      ByteBuffer payload = builder.finish();
      ASSERT_TRUE(net::write_frame(client, payload.view()));
      ByteBuffer bye;
      xdr::Encoder bye_enc(bye);
      tp::put_type(tp::MsgType::bye, bye_enc);
      ASSERT_TRUE(net::write_frame(client, bye.view()));
    }
    for (net::TcpSocket& client : clients) {
      const TimeMicros deadline = monotonic_micros() + 5'000'000;
      (void)client.set_nonblocking(true);
      bool closed = false;
      std::uint8_t chunk[256];
      while (!closed && monotonic_micros() < deadline) {
        auto n = client.read_some(MutableByteSpan{chunk, sizeof chunk});
        if (!n) {
          if (n.status().code() == Errc::would_block) {
            sleep_micros(2'000);
            continue;
          }
          closed = true;
        } else if (n.value() == 0) {
          closed = true;
        }
      }
      ASSERT_TRUE(closed) << "server must close the session after bye";
    }
    ism.value()->stop();
    server.join();
    ASSERT_TRUE(ism.value()->drain());

    const IsmStats stats = ism.value()->stats();
    if (mode.credit_records > 0) {
      EXPECT_GT(stats.credit_grants_sent, 0u)
          << "v3 peers must receive grants when credits are configured";
    } else {
      EXPECT_EQ(stats.credit_grants_sent, 0u)
          << "credits off must keep acks v2-shaped";
    }

    std::lock_guard<std::mutex> lock(*mutex);
    outputs.push_back(*order);
  }

  ASSERT_EQ(outputs[0].size(), std::size_t(kNodes) * kRecordsPerNode);
  for (std::size_t i = 1; i < outputs[0].size(); ++i) {
    EXPECT_LT(outputs[0][i - 1].first, outputs[0][i].first) << "output is timestamp-sorted";
  }
  for (std::size_t m = 1; m < outputs.size(); ++m) {
    EXPECT_EQ(outputs[m], outputs[0])
        << "credit/reader/shard config " << m << " produced a different record stream";
  }
}

// Acceptance: tracing must be invisible to the data stream. The ISM strips
// annotations at sink delivery, so the delivered data records — full
// decoded form, not just the (timestamp, node) order — are identical with
// tracing off, tracing on inline, and tracing on across four shards. The
// traced runs additionally emit span-export records for every annotation.
TEST(IsmIngestDeterminismTest, TracingLeavesSortedOutputByteIdentical) {
  struct TraceMode {
    bool traced = false;
    std::size_t shards = 1;
  };
  const std::vector<TraceMode> modes = {{false, 1}, {true, 1}, {true, 4}};
  constexpr int kNodes = 2;
  constexpr int kRecordsPerNode = 30;
  const TimeMicros base = clk::SystemClock::instance().now();

  std::vector<std::vector<sensors::Record>> data_streams;
  std::vector<std::size_t> trace_counts;
  for (const TraceMode& mode : modes) {
    IsmConfig config;
    config.select_timeout_us = 2'000;
    config.enable_sync = false;
    config.sorter.adaptive = false;
    config.sorter.initial_frame_us = 120'000'000;
    config.sorter.max_frame_us = 120'000'000;
    config.sorter_shards = mode.shards;

    auto data = std::make_shared<std::vector<sensors::Record>>();
    auto traces = std::make_shared<std::size_t>(0);
    auto mutex = std::make_shared<std::mutex>();
    auto sink = std::make_shared<CallbackSink>(
        [data, traces, mutex](const sensors::Record& r) {
          std::lock_guard<std::mutex> lock(*mutex);
          if (sensors::is_trace_record(r)) {
            ++*traces;
            return;
          }
          if (r.sensor >= sensors::kReservedSensorIdBase) return;
          data->push_back(r);
        });
    auto ism = Ism::start(config, clk::SystemClock::instance(), sink);
    ASSERT_TRUE(ism.is_ok()) << ism.status().to_string();
    std::thread server([&] { (void)ism.value()->run(); });

    std::vector<net::TcpSocket> clients;
    for (int n = 1; n <= kNodes; ++n) {
      auto socket = net::TcpSocket::connect("127.0.0.1", ism.value()->port());
      ASSERT_TRUE(socket.is_ok());
      clients.push_back(std::move(socket).value());
      ByteBuffer hello;
      xdr::Encoder hello_enc(hello);
      tp::put_type(tp::MsgType::hello, hello_enc);
      tp::encode_hello({NodeId(n), tp::kProtocolVersion}, hello_enc);
      ASSERT_TRUE(net::write_frame(clients.back(), hello.view()));
      ASSERT_TRUE(net::read_frame(clients.back()).is_ok()) << "hello_ack";
    }
    for (int n = 1; n <= kNodes; ++n) {
      net::TcpSocket& client = clients[std::size_t(n) - 1];
      tp::BatchBuilder builder{NodeId(n)};
      for (int i = 0; i < kRecordsPerNode; ++i) {
        sensors::Record record;
        record.sensor = 1;
        record.sequence = SequenceNo(i);
        record.timestamp = base + TimeMicros(n) + TimeMicros(i) * kNodes;
        record.fields = {sensors::Field::i32(i)};
        // The same records every run; the traced runs annotate the sampled
        // half exactly as an EXS with --trace-sample-rate 0.5 would.
        if (mode.traced && sensors::trace_sampled(NodeId(n), 1, SequenceNo(i), 0.5)) {
          sensors::TraceAnnotation annotation;
          annotation.trace_id = sensors::make_trace_id(NodeId(n), 1, SequenceNo(i));
          annotation.stamp(sensors::TraceStage::ring_enqueue, record.timestamp);
          record.trace = annotation;
        }
        ASSERT_TRUE(builder.add_record(record));
      }
      ByteBuffer payload = builder.finish();
      ASSERT_TRUE(net::write_frame(client, payload.view()));
      ByteBuffer bye;
      xdr::Encoder bye_enc(bye);
      tp::put_type(tp::MsgType::bye, bye_enc);
      ASSERT_TRUE(net::write_frame(client, bye.view()));
    }
    for (net::TcpSocket& client : clients) {
      const TimeMicros deadline = monotonic_micros() + 5'000'000;
      (void)client.set_nonblocking(true);
      bool closed = false;
      std::uint8_t chunk[256];
      while (!closed && monotonic_micros() < deadline) {
        auto n = client.read_some(MutableByteSpan{chunk, sizeof chunk});
        if (!n) {
          if (n.status().code() == Errc::would_block) {
            sleep_micros(2'000);
            continue;
          }
          closed = true;
        } else if (n.value() == 0) {
          closed = true;
        }
      }
      ASSERT_TRUE(closed) << "server must close the session after bye";
    }
    ism.value()->stop();
    server.join();
    ASSERT_TRUE(ism.value()->drain());
    std::lock_guard<std::mutex> lock(*mutex);
    data_streams.push_back(*data);
    trace_counts.push_back(*traces);
  }

  ASSERT_EQ(data_streams[0].size(), std::size_t(kNodes) * kRecordsPerNode);
  EXPECT_EQ(trace_counts[0], 0u);
  std::size_t expected_traces = 0;
  for (int n = 1; n <= kNodes; ++n) {
    for (int i = 0; i < kRecordsPerNode; ++i) {
      if (sensors::trace_sampled(NodeId(n), 1, SequenceNo(i), 0.5)) ++expected_traces;
    }
  }
  ASSERT_GT(expected_traces, 0u);
  for (std::size_t m = 1; m < data_streams.size(); ++m) {
    EXPECT_EQ(data_streams[m], data_streams[0])
        << "traced config " << m << " perturbed the data stream";
    EXPECT_EQ(trace_counts[m], expected_traces)
        << "every annotated record must produce one span-export record";
  }
}

}  // namespace
}  // namespace brisk::ism
