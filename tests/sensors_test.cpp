// Sensor layer tests: field types, Record helpers, the native record codec
// (round trips, malformed input, timestamp patching), the RecordWriter fast
// path, the Sensor/NOTICE macro, and the SensorRegistry.
#include <gtest/gtest.h>

#include <limits>

#include "clock/clock.hpp"
#include "sensors/record_codec.hpp"
#include "sensors/sensor.hpp"
#include "sensors/sensor_registry.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk::sensors {
namespace {

// ---- field types ---------------------------------------------------------------

TEST(FieldTypeTest, PaperRequiresAtLeastTenBasicPlusThreeSystemTypes) {
  int basic = 0;
  int system = 0;
  for (std::uint8_t raw = 0; raw < kFieldTypeCount; ++raw) {
    if (is_system_type(static_cast<FieldType>(raw))) ++system;
    else ++basic;
  }
  EXPECT_GE(basic, 10) << "paper: 'over ten basic types'";
  EXPECT_EQ(system, 3) << "paper: X_TS, X_REASON, X_CONSEQ";
}

TEST(FieldTypeTest, TagsFitInFourBitsForMetaCompression) {
  EXPECT_LE(kFieldTypeCount, 16);
}

TEST(FieldTypeTest, ValidityBoundary) {
  EXPECT_TRUE(field_type_valid(0));
  EXPECT_TRUE(field_type_valid(kFieldTypeCount - 1));
  EXPECT_FALSE(field_type_valid(kFieldTypeCount));
  EXPECT_FALSE(field_type_valid(0xff));
}

TEST(FieldTypeTest, NamesAreUnique) {
  std::set<std::string> names;
  for (std::uint8_t raw = 0; raw < kFieldTypeCount; ++raw) {
    names.insert(field_type_name(static_cast<FieldType>(raw)));
  }
  EXPECT_EQ(names.size(), kFieldTypeCount);
}

TEST(FieldTest, AccessorsConvert) {
  EXPECT_EQ(Field::i32(-5).as_signed(), -5);
  EXPECT_EQ(Field::u64(7).as_unsigned(), 7u);
  EXPECT_DOUBLE_EQ(Field::f64(2.5).as_double(), 2.5);
  EXPECT_EQ(Field::str("abc").as_string(), "abc");
  EXPECT_EQ(Field::ts(1'000'000).as_timestamp(), 1'000'000);
  EXPECT_EQ(Field::reason(42).as_causal_id(), 42u);
  EXPECT_EQ(Field::i32(9).as_double(), 9.0);
  EXPECT_EQ(Field::f64(3.7).as_signed(), 3);
}

TEST(FieldTest, EqualityRespectsTypeAndValue) {
  EXPECT_EQ(Field::i32(1), Field::i32(1));
  EXPECT_FALSE(Field::i32(1) == Field::i64(1));
  EXPECT_FALSE(Field::i32(1) == Field::i32(2));
  EXPECT_EQ(Field::str("x"), Field::str("x"));
}

TEST(FieldTest, ToStringRendering) {
  EXPECT_EQ(Field::i32(-3).to_string(), "-3");
  EXPECT_EQ(Field::u8(255).to_string(), "255");
  EXPECT_EQ(Field::ch('Q').to_string(), "Q");
  EXPECT_EQ(Field::str("a b").to_string(), "\"a b\"");
}

// ---- Record helpers ---------------------------------------------------------------

TEST(RecordTest, FindFieldAndCausalIds) {
  Record record;
  record.fields = {Field::i32(1), Field::reason(10), Field::ts(99)};
  EXPECT_NE(record.find_field(FieldType::x_reason), nullptr);
  EXPECT_EQ(record.find_field(FieldType::x_conseq), nullptr);
  EXPECT_EQ(record.reason_id().value_or(0), 10u);
  EXPECT_FALSE(record.conseq_id().has_value());
}

TEST(RecordTest, ToStringContainsStructure) {
  Record record;
  record.node = 3;
  record.sensor = 7;
  record.sequence = 11;
  record.timestamp = 1234;
  record.fields = {Field::i32(5)};
  const std::string rendered = record.to_string();
  EXPECT_NE(rendered.find("3:7#11"), std::string::npos);
  EXPECT_NE(rendered.find("X_I32=5"), std::string::npos);
}

// ---- native codec round trips ------------------------------------------------------

Record make_full_record() {
  Record record;
  record.node = 2;
  record.sensor = 300;
  record.sequence = 12345678901234ULL;
  record.timestamp = 1'700'000'000'000'000LL;
  record.fields = {
      Field::i8(-8),
      Field::u8(200),
      Field::i16(-30'000),
      Field::u16(60'000),
      Field::i32(std::numeric_limits<std::int32_t>::min()),
      Field::u32(std::numeric_limits<std::uint32_t>::max()),
      Field::i64(std::numeric_limits<std::int64_t>::min()),
      Field::u64(std::numeric_limits<std::uint64_t>::max()),
      Field::f32(1.5f),
      Field::f64(-2.25),
      Field::ch('z'),
      Field::str("hello world"),
      Field::ts(1'700'000'000'000'001LL),
      Field::reason(77),
      Field::conseq(88),
  };
  return record;
}

TEST(NativeCodecTest, RoundTripsEveryFieldType) {
  const Record original = make_full_record();
  auto encoded = encode_native(original);
  ASSERT_TRUE(encoded.is_ok()) << encoded.status().to_string();
  auto decoded = decode_native(encoded.value().view(), original.node);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value(), original);
}

TEST(NativeCodecTest, EmptyFieldsRecord) {
  Record record;
  record.sensor = 1;
  record.sequence = 2;
  record.timestamp = 3;
  auto encoded = encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  EXPECT_EQ(encoded.value().size(), kNativeHeaderBytes);
  auto decoded = decode_native(encoded.value().view());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().fields.empty());
}

TEST(NativeCodecTest, RejectsTruncatedHeader) {
  const std::uint8_t raw[10] = {};
  EXPECT_EQ(decode_native(ByteSpan{raw, 10}).status().code(), Errc::truncated);
}

TEST(NativeCodecTest, RejectsBadTypeTag) {
  Record record;
  record.fields = {Field::i32(1)};
  auto encoded = encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> bytes(encoded.value().view().begin(), encoded.value().view().end());
  bytes[kNativeHeaderBytes] = 0xee;  // corrupt the field type
  EXPECT_EQ(decode_native(ByteSpan{bytes.data(), bytes.size()}).status().code(),
            Errc::malformed);
}

TEST(NativeCodecTest, RejectsTruncatedFieldBody) {
  Record record;
  record.fields = {Field::i64(5)};
  auto encoded = encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  auto view = encoded.value().view();
  EXPECT_EQ(decode_native(view.subspan(0, view.size() - 3)).status().code(), Errc::truncated);
}

TEST(NativeCodecTest, RejectsTrailingGarbage) {
  Record record;
  record.fields = {Field::i32(5)};
  auto encoded = encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> bytes(encoded.value().view().begin(), encoded.value().view().end());
  bytes.push_back(0);
  EXPECT_EQ(decode_native(ByteSpan{bytes.data(), bytes.size()}).status().code(),
            Errc::malformed);
}

TEST(NativeCodecTest, PatchTimestampsShiftsHeaderAndTsFields) {
  Record record;
  record.timestamp = 1000;
  record.fields = {Field::i32(7), Field::ts(2000), Field::str("keep"), Field::ts(3000)};
  auto encoded = encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> bytes(encoded.value().view().begin(), encoded.value().view().end());
  ASSERT_TRUE(patch_native_timestamps({bytes.data(), bytes.size()}, 500));
  auto decoded = decode_native(ByteSpan{bytes.data(), bytes.size()});
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().timestamp, 1500);
  EXPECT_EQ(decoded.value().fields[1].as_timestamp(), 2500);
  EXPECT_EQ(decoded.value().fields[3].as_timestamp(), 3500);
  EXPECT_EQ(decoded.value().fields[0].as_signed(), 7) << "non-ts fields untouched";
  EXPECT_EQ(decoded.value().fields[2].as_string(), "keep");
}

TEST(NativeCodecTest, PatchWithNegativeDelta) {
  Record record;
  record.timestamp = 1000;
  auto encoded = encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> bytes(encoded.value().view().begin(), encoded.value().view().end());
  ASSERT_TRUE(patch_native_timestamps({bytes.data(), bytes.size()}, -300));
  auto decoded = decode_native(ByteSpan{bytes.data(), bytes.size()});
  EXPECT_EQ(decoded.value().timestamp, 700);
}

// ---- RecordWriter fast path ---------------------------------------------------------

TEST(RecordWriterTest, FailsOnTinyBuffer) {
  std::uint8_t buf[8];
  RecordWriter writer({buf, sizeof buf});
  EXPECT_FALSE(writer.begin(1, 0, 0));
  EXPECT_FALSE(writer.finish().is_ok());
}

TEST(RecordWriterTest, EnforcesFieldLimit) {
  std::uint8_t buf[4096];
  RecordWriter writer({buf, sizeof buf});
  ASSERT_TRUE(writer.begin(1, 0, 0));
  for (std::size_t i = 0; i < kMaxFieldsPerRecord; ++i) {
    ASSERT_TRUE(writer.add_i32(static_cast<std::int32_t>(i)));
  }
  EXPECT_FALSE(writer.add_i32(99)) << "17th field must be rejected";
  EXPECT_FALSE(writer.finish().is_ok()) << "failure is sticky";
}

TEST(RecordWriterTest, RejectsOverlongString) {
  std::uint8_t buf[4096];
  RecordWriter writer({buf, sizeof buf});
  ASSERT_TRUE(writer.begin(1, 0, 0));
  EXPECT_FALSE(writer.add_string(std::string(kMaxStringFieldBytes + 1, 'a')));
}

TEST(RecordWriterTest, MaxLengthStringAccepted) {
  std::uint8_t buf[4096];
  RecordWriter writer({buf, sizeof buf});
  ASSERT_TRUE(writer.begin(1, 0, 0));
  EXPECT_TRUE(writer.add_string(std::string(kMaxStringFieldBytes, 'a')));
  auto bytes = writer.finish();
  ASSERT_TRUE(bytes.is_ok());
  auto decoded = decode_native(bytes.value());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().fields[0].as_string().size(), kMaxStringFieldBytes);
}

TEST(RecordWriterTest, ReusableAfterFinish) {
  std::uint8_t buf[256];
  RecordWriter writer({buf, sizeof buf});
  ASSERT_TRUE(writer.begin(1, 0, 10));
  ASSERT_TRUE(writer.add_i32(1));
  ASSERT_TRUE(writer.finish().is_ok());
  ASSERT_TRUE(writer.begin(2, 1, 20));
  ASSERT_TRUE(writer.add_i64(2));
  auto bytes = writer.finish();
  ASSERT_TRUE(bytes.is_ok());
  auto decoded = decode_native(bytes.value());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().sensor, 2u);
  EXPECT_EQ(decoded.value().timestamp, 20);
}

// ---- Sensor / NOTICE macro -----------------------------------------------------------

class SensorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    memory_.resize(shm::RingBuffer::region_size(64 * 1024));
    auto ring = shm::RingBuffer::init(memory_.data(), 64 * 1024);
    ASSERT_TRUE(ring.is_ok());
    ring_ = ring.value();
    sensor_ = std::make_unique<Sensor>(ring_, clock_);
  }

  Record pop_record() {
    std::vector<std::uint8_t> bytes;
    EXPECT_TRUE(ring_.try_pop(bytes));
    auto record = decode_native(ByteSpan{bytes.data(), bytes.size()});
    EXPECT_TRUE(record.is_ok()) << record.status().to_string();
    return std::move(record).value();
  }

  std::vector<std::uint8_t> memory_;
  shm::RingBuffer ring_;
  clk::ManualClock clock_{1'000'000};
  std::unique_ptr<Sensor> sensor_;
};

TEST_F(SensorTest, NoticeWritesTimestampedRecord) {
  clock_.set(5'000'000);
  ASSERT_TRUE(BRISK_NOTICE(*sensor_, 42, x_i32(1), x_i32(2)));
  const Record record = pop_record();
  EXPECT_EQ(record.sensor, 42u);
  EXPECT_EQ(record.sequence, 0u);
  EXPECT_EQ(record.timestamp, 5'000'000);
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0], Field::i32(1));
}

TEST_F(SensorTest, SequenceNumbersIncrement) {
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(sensor_->notice(1, x_i32(i)));
  for (SequenceNo i = 0; i < 5; ++i) EXPECT_EQ(pop_record().sequence, i);
}

TEST_F(SensorTest, AllWrapperTypes) {
  ASSERT_TRUE(sensor_->notice(9, x_i8(-1), x_u8(2), x_i16(-3), x_u16(4), x_f32(1.5f),
                              x_str("s"), x_reason(7), x_conseq(8)));
  const Record record = pop_record();
  ASSERT_EQ(record.fields.size(), 8u);
  EXPECT_EQ(record.fields[0], Field::i8(-1));
  EXPECT_EQ(record.fields[4], Field::f32(1.5f));
  EXPECT_EQ(record.fields[5], Field::str("s"));
  EXPECT_EQ(record.reason_id().value_or(0), 7u);
  EXPECT_EQ(record.conseq_id().value_or(0), 8u);
}

TEST_F(SensorTest, EmbeddedTsUsesRecordTimestamp) {
  clock_.set(7'777'777);
  ASSERT_TRUE(sensor_->notice(1, x_ts()));
  const Record record = pop_record();
  EXPECT_EQ(record.fields[0].as_timestamp(), 7'777'777);
}

TEST_F(SensorTest, ExplicitTsValue) {
  ASSERT_TRUE(sensor_->notice(1, x_ts(123'456)));
  EXPECT_EQ(pop_record().fields[0].as_timestamp(), 123'456);
}

TEST_F(SensorTest, DropsCountedWhenRingFull) {
  // Fill the ring with nobody consuming.
  std::uint64_t accepted = 0;
  while (sensor_->notice(1, x_i64(0), x_i64(1), x_i64(2))) ++accepted;
  EXPECT_GT(accepted, 0u);
  EXPECT_EQ(sensor_->stats().records_dropped, 1u);
  EXPECT_EQ(sensor_->stats().records_pushed, accepted);
  EXPECT_EQ(sensor_->stats().notices, accepted + 1);
}

TEST_F(SensorTest, NoticeWithNoFields) {
  ASSERT_TRUE(sensor_->notice(5));
  const Record record = pop_record();
  EXPECT_EQ(record.sensor, 5u);
  EXPECT_TRUE(record.fields.empty());
}

TEST_F(SensorTest, PushEncodedBypass) {
  std::uint8_t buf[256];
  RecordWriter writer({buf, sizeof buf});
  ASSERT_TRUE(writer.begin(77, 0, 42));
  ASSERT_TRUE(writer.add_u64(5));
  auto bytes = writer.finish();
  ASSERT_TRUE(bytes.is_ok());
  ASSERT_TRUE(sensor_->push_encoded(bytes.value()));
  const Record record = pop_record();
  EXPECT_EQ(record.sensor, 77u);
  EXPECT_EQ(record.fields[0], Field::u64(5));
}

#ifdef BRISK_DISABLE_NOTICE
#error test must compile with NOTICE enabled
#endif

// ---- SensorRegistry ---------------------------------------------------------------

TEST(SensorRegistryTest, RegisterAndFind) {
  SensorRegistry registry;
  ASSERT_TRUE(registry.register_sensor({1, "alpha", {FieldType::x_i32}, "first"}));
  auto found = registry.find(1);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->name, "alpha");
  EXPECT_FALSE(registry.find(2).has_value());
  EXPECT_TRUE(registry.find_by_name("alpha").has_value());
  EXPECT_FALSE(registry.find_by_name("beta").has_value());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SensorRegistryTest, IdempotentReRegistration) {
  SensorRegistry registry;
  SensorInfo info{3, "gamma", {FieldType::x_f64}, ""};
  ASSERT_TRUE(registry.register_sensor(info));
  EXPECT_TRUE(registry.register_sensor(info)) << "same definition is fine";
  info.name = "delta";
  EXPECT_EQ(registry.register_sensor(info).code(), Errc::already_exists);
}

TEST(SensorRegistryTest, ValidateSignature) {
  SensorRegistry registry;
  ASSERT_TRUE(
      registry.register_sensor({5, "typed", {FieldType::x_i32, FieldType::x_string}, ""}));
  Record good;
  good.sensor = 5;
  good.fields = {Field::i32(1), Field::str("x")};
  EXPECT_TRUE(registry.validate(good));

  Record wrong_count = good;
  wrong_count.fields.pop_back();
  EXPECT_EQ(registry.validate(wrong_count).code(), Errc::type_mismatch);

  Record wrong_type = good;
  wrong_type.fields[0] = Field::f32(1.0f);
  EXPECT_EQ(registry.validate(wrong_type).code(), Errc::type_mismatch);

  Record unknown;
  unknown.sensor = 999;
  EXPECT_TRUE(registry.validate(unknown)) << "unknown sensors validate trivially";
}

TEST(SensorRegistryTest, EmptySignatureIsDynamic) {
  SensorRegistry registry;
  ASSERT_TRUE(registry.register_sensor({6, "dyn", {}, ""}));
  Record record;
  record.sensor = 6;
  record.fields = {Field::i32(1), Field::f64(2.0)};
  EXPECT_TRUE(registry.validate(record));
}

}  // namespace
}  // namespace brisk::sensors
