// Robustness ("fuzz-lite") tests: every decoder in the system is fed
// random bytes, truncations of valid messages, and single-byte corruptions.
// The invariant under test is total: decoders return an error Status or a
// value — never crash, never read out of bounds (run under ASan to get the
// full benefit), never loop forever.
#include <gtest/gtest.h>

#include <random>

#include "ism/output.hpp"
#include "net/frame.hpp"
#include "picl/picl_record.hpp"
#include "sensors/record_codec.hpp"
#include "tp/batch.hpp"
#include "tp/meta_header.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"

namespace brisk {
namespace {

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::vector<std::uint8_t> out(len_dist(rng));
  for (auto& b : out) b = static_cast<std::uint8_t>(byte_dist(rng));
  return out;
}

ByteBuffer valid_batch_payload() {
  tp::BatchBuilder builder(3);
  sensors::Record record;
  record.sensor = 9;
  record.timestamp = 1'000;
  record.fields = {sensors::Field::i32(1), sensors::Field::str("abc"),
                   sensors::Field::ts(2'000), sensors::Field::reason(4)};
  EXPECT_TRUE(builder.add_record(record));
  EXPECT_TRUE(builder.add_record(record));
  return builder.finish();
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, RandomBytesNeverCrashDecoders) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 2'000; ++i) {
    auto bytes = random_bytes(rng, 256);
    const ByteSpan view{bytes.data(), bytes.size()};

    (void)sensors::decode_native(view);

    xdr::Decoder meta_dec(view);
    (void)tp::decode_meta(meta_dec);

    xdr::Decoder record_dec(view);
    (void)tp::decode_record(record_dec, 0);

    xdr::Decoder batch_dec(view);
    auto type = tp::peek_type(batch_dec);
    if (type.is_ok() && type.value() == tp::MsgType::data_batch) {
      (void)tp::decode_batch(batch_dec);
    }

    (void)ism::decode_output_record(view);

    net::FrameReader reader;
    reader.feed(view);
    for (int rounds = 0; rounds < 8; ++rounds) {
      auto frame = reader.next();
      if (!frame.is_ok() || !frame.value().has_value()) break;
    }
  }
}

TEST_P(FuzzSeed, TruncationsOfValidBatchAlwaysError) {
  ByteBuffer payload = valid_batch_payload();
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    xdr::Decoder dec(payload.view().subspan(0, cut));
    auto type = tp::peek_type(dec);
    if (!type.is_ok()) continue;
    auto batch = tp::decode_batch(dec);
    EXPECT_FALSE(batch.is_ok()) << "truncation at " << cut << " decoded successfully";
  }
}

TEST_P(FuzzSeed, SingleByteCorruptionNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  ByteBuffer payload = valid_batch_payload();
  std::vector<std::uint8_t> bytes(payload.view().begin(), payload.view().end());
  std::uniform_int_distribution<std::size_t> pos_dist(0, bytes.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 500; ++i) {
    auto mutated = bytes;
    mutated[pos_dist(rng)] = static_cast<std::uint8_t>(byte_dist(rng));
    xdr::Decoder dec(ByteSpan{mutated.data(), mutated.size()});
    auto type = tp::peek_type(dec);
    if (!type.is_ok() || type.value() != tp::MsgType::data_batch) continue;
    auto batch = tp::decode_batch(dec);  // may succeed or fail; must not crash
    if (batch.is_ok()) {
      EXPECT_LE(batch.value().records.size(), 2u)
          << "corruption cannot invent records beyond the declared count";
    }
  }
}

TEST_P(FuzzSeed, RandomPiclLinesNeverCrashParser) {
  std::mt19937_64 rng(GetParam() * 131 + 1);
  std::uniform_int_distribution<int> char_dist(32, 126);
  std::uniform_int_distribution<std::size_t> len_dist(0, 120);
  picl::PiclOptions options{picl::TimestampMode::utc_micros, 0};
  for (int i = 0; i < 2'000; ++i) {
    std::string line(len_dist(rng), ' ');
    for (auto& c : line) c = static_cast<char>(char_dist(rng));
    (void)picl::from_picl_line(line, options);
  }
}

TEST_P(FuzzSeed, CorruptedNativeRecordPatchNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 17 + 3);
  sensors::Record record;
  record.sensor = 1;
  record.timestamp = 99;
  record.fields = {sensors::Field::str("payload"), sensors::Field::ts(5)};
  auto encoded = sensors::encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> bytes(encoded.value().view().begin(),
                                  encoded.value().view().end());
  std::uniform_int_distribution<std::size_t> pos_dist(0, bytes.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 500; ++i) {
    auto mutated = bytes;
    mutated[pos_dist(rng)] = static_cast<std::uint8_t>(byte_dist(rng));
    (void)sensors::patch_native_timestamps({mutated.data(), mutated.size()}, 1'000);
    ByteBuffer wire;
    xdr::Encoder enc(wire);
    (void)tp::transcode_native_record({mutated.data(), mutated.size()}, enc, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace brisk
