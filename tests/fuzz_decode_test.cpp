// Robustness ("fuzz-lite") tests: every decoder in the system is fed
// random bytes, truncations of valid messages, and single-byte corruptions.
// The invariant under test is total: decoders return an error Status or a
// value — never crash, never read out of bounds (run under ASan to get the
// full benefit), never loop forever.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "clock/clock.hpp"
#include "ism/output.hpp"
#include "lis/external_sensor.hpp"
#include "net/frame.hpp"
#include "sensors/sensor.hpp"
#include "picl/picl_record.hpp"
#include "sensors/record_codec.hpp"
#include "sim/fault_injector.hpp"
#include "tp/batch.hpp"
#include "tp/meta_header.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"

namespace brisk {
namespace {

std::vector<std::uint8_t> random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::vector<std::uint8_t> out(len_dist(rng));
  for (auto& b : out) b = static_cast<std::uint8_t>(byte_dist(rng));
  return out;
}

ByteBuffer valid_batch_payload() {
  tp::BatchBuilder builder(3);
  sensors::Record record;
  record.sensor = 9;
  record.timestamp = 1'000;
  record.fields = {sensors::Field::i32(1), sensors::Field::str("abc"),
                   sensors::Field::ts(2'000), sensors::Field::reason(4)};
  EXPECT_TRUE(builder.add_record(record));
  EXPECT_TRUE(builder.add_record(record));
  return builder.finish();
}

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeed, RandomBytesNeverCrashDecoders) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 2'000; ++i) {
    auto bytes = random_bytes(rng, 256);
    const ByteSpan view{bytes.data(), bytes.size()};

    (void)sensors::decode_native(view);

    xdr::Decoder meta_dec(view);
    (void)tp::decode_meta(meta_dec);

    xdr::Decoder record_dec(view);
    (void)tp::decode_record(record_dec, 0);

    xdr::Decoder batch_dec(view);
    auto type = tp::peek_type(batch_dec);
    if (type.is_ok() && type.value() == tp::MsgType::data_batch) {
      (void)tp::decode_batch(batch_dec);
    }

    (void)ism::decode_output_record(view);

    net::FrameReader reader;
    reader.feed(view);
    for (int rounds = 0; rounds < 8; ++rounds) {
      auto frame = reader.next();
      if (!frame.is_ok() || !frame.value().has_value()) break;
    }
  }
}

TEST_P(FuzzSeed, TruncationsOfValidBatchAlwaysError) {
  ByteBuffer payload = valid_batch_payload();
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    xdr::Decoder dec(payload.view().subspan(0, cut));
    auto type = tp::peek_type(dec);
    if (!type.is_ok()) continue;
    auto batch = tp::decode_batch(dec);
    EXPECT_FALSE(batch.is_ok()) << "truncation at " << cut << " decoded successfully";
  }
}

TEST_P(FuzzSeed, SingleByteCorruptionNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  ByteBuffer payload = valid_batch_payload();
  std::vector<std::uint8_t> bytes(payload.view().begin(), payload.view().end());
  std::uniform_int_distribution<std::size_t> pos_dist(0, bytes.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 500; ++i) {
    auto mutated = bytes;
    mutated[pos_dist(rng)] = static_cast<std::uint8_t>(byte_dist(rng));
    xdr::Decoder dec(ByteSpan{mutated.data(), mutated.size()});
    auto type = tp::peek_type(dec);
    if (!type.is_ok() || type.value() != tp::MsgType::data_batch) continue;
    auto batch = tp::decode_batch(dec);  // may succeed or fail; must not crash
    if (batch.is_ok()) {
      EXPECT_LE(batch.value().records.size(), 2u)
          << "corruption cannot invent records beyond the declared count";
    }
  }
}

TEST_P(FuzzSeed, RandomPiclLinesNeverCrashParser) {
  std::mt19937_64 rng(GetParam() * 131 + 1);
  std::uniform_int_distribution<int> char_dist(32, 126);
  std::uniform_int_distribution<std::size_t> len_dist(0, 120);
  picl::PiclOptions options{picl::TimestampMode::utc_micros, 0};
  for (int i = 0; i < 2'000; ++i) {
    std::string line(len_dist(rng), ' ');
    for (auto& c : line) c = static_cast<char>(char_dist(rng));
    (void)picl::from_picl_line(line, options);
  }
}

TEST_P(FuzzSeed, CorruptedNativeRecordPatchNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 17 + 3);
  sensors::Record record;
  record.sensor = 1;
  record.timestamp = 99;
  record.fields = {sensors::Field::str("payload"), sensors::Field::ts(5)};
  auto encoded = sensors::encode_native(record);
  ASSERT_TRUE(encoded.is_ok());
  std::vector<std::uint8_t> bytes(encoded.value().view().begin(),
                                  encoded.value().view().end());
  std::uniform_int_distribution<std::size_t> pos_dist(0, bytes.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 500; ++i) {
    auto mutated = bytes;
    mutated[pos_dist(rng)] = static_cast<std::uint8_t>(byte_dist(rng));
    (void)sensors::patch_native_timestamps({mutated.data(), mutated.size()}, 1'000);
    ByteBuffer wire;
    xdr::Encoder enc(wire);
    (void)tp::transcode_native_record({mutated.data(), mutated.size()}, enc, 0);
  }
}

// ---- session-resilience codecs (protocol v2 shape, no credit tail) ----------

TEST_P(FuzzSeed, ResilienceControlMessagesRoundTrip) {
  std::mt19937_64 rng(GetParam() * 97 + 11);
  for (int i = 0; i < 500; ++i) {
    const tp::Hello hello{static_cast<NodeId>(rng()), tp::kProtocolVersion, rng()};
    ByteBuffer hello_wire;
    xdr::Encoder hello_enc(hello_wire);
    tp::put_type(tp::MsgType::hello, hello_enc);
    tp::encode_hello(hello, hello_enc);
    xdr::Decoder hello_dec(hello_wire.view());
    ASSERT_TRUE(tp::peek_type(hello_dec).is_ok());
    auto hello_back = tp::decode_hello(hello_dec);
    ASSERT_TRUE(hello_back.is_ok());
    EXPECT_EQ(hello_back.value().node, hello.node);
    EXPECT_EQ(hello_back.value().incarnation, hello.incarnation);

    const tp::HelloAck ack{rng(), static_cast<std::uint32_t>(rng()), {}};
    ByteBuffer ack_wire;
    xdr::Encoder ack_enc(ack_wire);
    tp::put_type(tp::MsgType::hello_ack, ack_enc);
    tp::encode_hello_ack(ack, ack_enc);
    xdr::Decoder ack_dec(ack_wire.view());
    ASSERT_TRUE(tp::peek_type(ack_dec).is_ok());
    auto ack_back = tp::decode_hello_ack(ack_dec);
    ASSERT_TRUE(ack_back.is_ok());
    EXPECT_EQ(ack_back.value().incarnation, ack.incarnation);
    EXPECT_EQ(ack_back.value().next_expected_seq, ack.next_expected_seq);
    EXPECT_FALSE(ack_back.value().credit.has_value());

    const tp::BatchAck batch_ack{static_cast<std::uint32_t>(rng()), {}};
    ByteBuffer batch_wire;
    xdr::Encoder batch_enc(batch_wire);
    tp::put_type(tp::MsgType::batch_ack, batch_enc);
    tp::encode_batch_ack(batch_ack, batch_enc);
    xdr::Decoder batch_dec(batch_wire.view());
    ASSERT_TRUE(tp::peek_type(batch_dec).is_ok());
    auto batch_back = tp::decode_batch_ack(batch_dec);
    ASSERT_TRUE(batch_back.is_ok());
    EXPECT_EQ(batch_back.value().next_expected_seq, batch_ack.next_expected_seq);
    EXPECT_FALSE(batch_back.value().credit.has_value());
  }
}

TEST_P(FuzzSeed, TruncatedResilienceControlMessagesAlwaysError) {
  ByteBuffer hello_wire;
  xdr::Encoder hello_enc(hello_wire);
  tp::put_type(tp::MsgType::hello, hello_enc);
  tp::encode_hello({42, tp::kProtocolVersion, 0x1122334455667788ull}, hello_enc);
  for (std::size_t cut = 0; cut < hello_wire.size(); ++cut) {
    xdr::Decoder dec(hello_wire.view().subspan(0, cut));
    if (!tp::peek_type(dec).is_ok()) continue;
    EXPECT_FALSE(tp::decode_hello(dec).is_ok()) << "hello cut at " << cut;
  }

  ByteBuffer ack_wire;
  xdr::Encoder ack_enc(ack_wire);
  tp::put_type(tp::MsgType::hello_ack, ack_enc);
  tp::encode_hello_ack({0x99aabbccddeeff00ull, 7, {}}, ack_enc);
  for (std::size_t cut = 0; cut < ack_wire.size(); ++cut) {
    xdr::Decoder dec(ack_wire.view().subspan(0, cut));
    if (!tp::peek_type(dec).is_ok()) continue;
    EXPECT_FALSE(tp::decode_hello_ack(dec).is_ok()) << "hello_ack cut at " << cut;
  }

  ByteBuffer batch_wire;
  xdr::Encoder batch_enc(batch_wire);
  tp::put_type(tp::MsgType::batch_ack, batch_enc);
  tp::encode_batch_ack({12345, {}}, batch_enc);
  for (std::size_t cut = 0; cut < batch_wire.size(); ++cut) {
    xdr::Decoder dec(batch_wire.view().subspan(0, cut));
    if (!tp::peek_type(dec).is_ok()) continue;
    EXPECT_FALSE(tp::decode_batch_ack(dec).is_ok()) << "batch_ack cut at " << cut;
  }
}

// ---- credit-grant ack extension (protocol v3) -------------------------------

tp::CreditGrant random_grant(std::mt19937_64& rng) {
  tp::CreditGrant grant;
  grant.incarnation = rng();
  grant.window_records = static_cast<std::uint32_t>(rng());
  grant.window_bytes = rng();
  return grant;
}

ByteBuffer encode_ack_frame(tp::MsgType type, std::uint64_t incarnation,
                            std::uint32_t next_expected,
                            const std::optional<tp::CreditGrant>& credit) {
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(type, enc);
  if (type == tp::MsgType::hello_ack) {
    tp::HelloAck ack;
    ack.incarnation = incarnation;
    ack.next_expected_seq = next_expected;
    ack.credit = credit;
    tp::encode_hello_ack(ack, enc);
  } else {
    tp::BatchAck ack;
    ack.next_expected_seq = next_expected;
    ack.credit = credit;
    tp::encode_batch_ack(ack, enc);
  }
  return out;
}

TEST_P(FuzzSeed, CreditGrantAcksRoundTrip) {
  std::mt19937_64 rng(GetParam() * 193 + 29);
  for (int i = 0; i < 500; ++i) {
    const tp::CreditGrant grant = random_grant(rng);

    const ByteBuffer hello_wire = encode_ack_frame(
        tp::MsgType::hello_ack, rng(), static_cast<std::uint32_t>(rng()), grant);
    xdr::Decoder hello_dec(hello_wire.view());
    ASSERT_TRUE(tp::peek_type(hello_dec).is_ok());
    auto hello_back = tp::decode_hello_ack(hello_dec);
    ASSERT_TRUE(hello_back.is_ok());
    ASSERT_TRUE(hello_back.value().credit.has_value());
    EXPECT_EQ(hello_back.value().credit->incarnation, grant.incarnation);
    EXPECT_EQ(hello_back.value().credit->window_records, grant.window_records);
    EXPECT_EQ(hello_back.value().credit->window_bytes, grant.window_bytes);

    const ByteBuffer batch_wire = encode_ack_frame(
        tp::MsgType::batch_ack, 0, static_cast<std::uint32_t>(rng()), grant);
    xdr::Decoder batch_dec(batch_wire.view());
    ASSERT_TRUE(tp::peek_type(batch_dec).is_ok());
    auto batch_back = tp::decode_batch_ack(batch_dec);
    ASSERT_TRUE(batch_back.is_ok());
    ASSERT_TRUE(batch_back.value().credit.has_value());
    EXPECT_EQ(batch_back.value().credit->incarnation, grant.incarnation);
    EXPECT_EQ(batch_back.value().credit->window_records, grant.window_records);
    EXPECT_EQ(batch_back.value().credit->window_bytes, grant.window_bytes);
  }
}

// A cut anywhere inside the credit tail must error — a partial grant never
// silently decodes as "no grant". The one legal short read is the exact v2
// boundary, where the decoder is cleanly exhausted and credit is nullopt.
TEST_P(FuzzSeed, TruncatedCreditGrantsAlwaysErrorNeverVanish) {
  std::mt19937_64 rng(GetParam() * 211 + 17);
  const tp::CreditGrant grant = random_grant(rng);
  const std::uint64_t incarnation = rng();
  const std::uint32_t cursor = static_cast<std::uint32_t>(rng());

  struct Case {
    tp::MsgType type;
    const char* name;
  };
  for (const Case& c : {Case{tp::MsgType::hello_ack, "hello_ack"},
                        Case{tp::MsgType::batch_ack, "batch_ack"}}) {
    const ByteBuffer base =
        encode_ack_frame(c.type, incarnation, cursor, std::nullopt);
    const ByteBuffer full = encode_ack_frame(c.type, incarnation, cursor, grant);
    ASSERT_GT(full.size(), base.size());

    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      xdr::Decoder dec(full.view().subspan(0, cut));
      if (!tp::peek_type(dec).is_ok()) continue;
      if (c.type == tp::MsgType::hello_ack) {
        auto back = tp::decode_hello_ack(dec);
        if (cut == base.size()) {
          ASSERT_TRUE(back.is_ok()) << c.name << " cut at v2 boundary " << cut;
          EXPECT_FALSE(back.value().credit.has_value());
        } else {
          EXPECT_FALSE(back.is_ok()) << c.name << " cut at " << cut;
        }
      } else {
        auto back = tp::decode_batch_ack(dec);
        if (cut == base.size()) {
          ASSERT_TRUE(back.is_ok()) << c.name << " cut at v2 boundary " << cut;
          EXPECT_FALSE(back.value().credit.has_value());
        } else {
          EXPECT_FALSE(back.is_ok()) << c.name << " cut at " << cut;
        }
      }
    }
  }
}

// ---- credit grants against a live ExsCore session ---------------------------
//
// The decoder rejecting malformed grants is half the story; the session must
// also survive them. These drive a real ExsCore (rings → batcher → replay →
// paced sends) and assert hostile grants neither crash it nor tear the
// session: sends keep flowing afterwards.

struct ExsSession {
  explicit ExsSession(std::uint32_t batch_max_records = 4)
      : memory(shm::MultiRing::region_size(1, 64 * 1024)), clock(1'000'000) {
    auto rings = shm::MultiRing::init(memory.data(), 1, 64 * 1024);
    EXPECT_TRUE(rings.is_ok());
    lis::ExsConfig config;
    config.node = 3;
    config.incarnation = kIncarnation;
    config.batch_max_age_us = 0;  // flush on demand
    config.batch_max_records = batch_max_records;
    config.replay_buffer_batches = 64;
    core = std::make_unique<lis::ExsCore>(config, rings.value(), clock,
                                          [this](ByteBuffer payload) {
                                            sent.push_back(std::move(payload));
                                            return Status::ok();
                                          });
    auto ring = rings.value().claim_slot();
    EXPECT_TRUE(ring.is_ok());
    sensor = std::make_unique<sensors::Sensor>(ring.value(), clock);
  }

  /// Produces `count` records and pushes them through drain → flush.
  void produce(std::uint32_t count) {
    for (std::uint32_t i = 0; i < count; ++i) {
      EXPECT_TRUE(sensor->notice(1, sensors::x_i32(static_cast<std::int32_t>(i))));
    }
    EXPECT_TRUE(core->drain_rings().is_ok());
    EXPECT_TRUE(core->flush());
  }

  [[nodiscard]] std::size_t data_frames_sent() const {
    std::size_t n = 0;
    for (const ByteBuffer& frame : sent) {
      xdr::Decoder dec(frame.view());
      auto type = tp::peek_type(dec);
      if (type.is_ok() && type.value() == tp::MsgType::data_batch) ++n;
    }
    return n;
  }

  static constexpr std::uint64_t kIncarnation = 77;

  std::vector<std::uint8_t> memory;
  clk::ManualClock clock;
  std::vector<ByteBuffer> sent;
  std::unique_ptr<lis::ExsCore> core;
  std::unique_ptr<sensors::Sensor> sensor;
};

TEST(CreditGrantSessionTest, UnknownIncarnationGrantIsIgnoredNotFatal) {
  ExsSession s;
  EXPECT_TRUE(s.core->send_hello());
  // The ack itself names our incarnation (session resumes) but the grant
  // inside it belongs to a dead one — apply nothing, tear nothing.
  tp::CreditGrant foreign;
  foreign.incarnation = ExsSession::kIncarnation + 1;
  foreign.window_records = 1;
  foreign.window_bytes = 16;
  const ByteBuffer ack = encode_ack_frame(tp::MsgType::hello_ack,
                                          ExsSession::kIncarnation, 0, foreign);
  EXPECT_TRUE(s.core->handle_frame(ack.view()));
  EXPECT_FALSE(s.core->pacing());
  EXPECT_EQ(s.core->stats().credit_grants_received, 0u);

  // The session still works: batches flow unpaced.
  s.produce(4);
  EXPECT_EQ(s.data_frames_sent(), 1u);
}

TEST(CreditGrantSessionTest, WindowShrinkingBelowInFlightParksNewSendsOnly) {
  ExsSession s;
  EXPECT_TRUE(s.core->send_hello());
  tp::CreditGrant wide;
  wide.incarnation = ExsSession::kIncarnation;
  wide.window_records = 64;
  const ByteBuffer open = encode_ack_frame(tp::MsgType::hello_ack,
                                           ExsSession::kIncarnation, 0, wide);
  ASSERT_TRUE(s.core->handle_frame(open.view()));
  ASSERT_TRUE(s.core->pacing());

  s.produce(8);  // two 4-record batches, both within the window
  EXPECT_EQ(s.data_frames_sent(), 2u);
  EXPECT_EQ(s.core->outstanding_records(), 8u);

  // The ISM acks batch 0 but shrinks the window below what is still in
  // flight. Nothing retroactive happens — in-flight stays in flight — but
  // new batches park. (The ack cursor must advance: a repeated cursor is
  // the stuck-ack signal and legitimately triggers a go-back-N resend.)
  tp::CreditGrant narrow = wide;
  narrow.window_records = 2;
  const ByteBuffer shrink = encode_ack_frame(tp::MsgType::batch_ack,
                                             ExsSession::kIncarnation, 1, narrow);
  ASSERT_TRUE(s.core->handle_frame(shrink.view()));
  EXPECT_EQ(s.core->stats().credit_window_records, 2u);
  EXPECT_EQ(s.core->outstanding_records(), 4u);

  s.produce(2);
  EXPECT_EQ(s.data_frames_sent(), 2u) << "batch must park under a full window";
  EXPECT_EQ(s.core->outstanding_records(), 4u);

  // Ack the second batch and re-open the window: the parked batch pumps out.
  tp::CreditGrant reopened = wide;
  const ByteBuffer drain = encode_ack_frame(tp::MsgType::batch_ack,
                                            ExsSession::kIncarnation, 2, reopened);
  ASSERT_TRUE(s.core->handle_frame(drain.view()));
  EXPECT_EQ(s.data_frames_sent(), 3u);
  EXPECT_EQ(s.core->outstanding_records(), 2u);
}

TEST(CreditGrantSessionTest, TruncatedGrantFramesErrorWithoutTearingSession) {
  ExsSession s;
  EXPECT_TRUE(s.core->send_hello());
  tp::CreditGrant grant;
  grant.incarnation = ExsSession::kIncarnation;
  grant.window_records = 16;
  const ByteBuffer open = encode_ack_frame(tp::MsgType::hello_ack,
                                           ExsSession::kIncarnation, 0, grant);
  ASSERT_TRUE(s.core->handle_frame(open.view()));
  ASSERT_TRUE(s.core->pacing());
  s.produce(4);
  ASSERT_EQ(s.data_frames_sent(), 1u);

  // Every truncation of a grant-bearing batch_ack (other than the clean v2
  // boundary) must surface an error status — and leave the session usable.
  const ByteBuffer base = encode_ack_frame(tp::MsgType::batch_ack,
                                           ExsSession::kIncarnation, 1,
                                           std::nullopt);
  const ByteBuffer full =
      encode_ack_frame(tp::MsgType::batch_ack, ExsSession::kIncarnation, 1, grant);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    if (cut == base.size()) continue;  // legal v2-shaped ack
    const Status st = s.core->handle_frame(full.view().subspan(0, cut));
    EXPECT_FALSE(st) << "cut at " << cut << " decoded as a valid frame";
  }
  EXPECT_TRUE(s.core->pacing()) << "pacing state must survive garbage frames";

  // An intact ack afterwards still drives the session forward.
  ASSERT_TRUE(s.core->handle_frame(full.view()));
  s.produce(4);
  EXPECT_GE(s.data_frames_sent(), 2u);
}

// ---- fault-injected frame streams -------------------------------------------

void append_framed(std::vector<std::uint8_t>& stream, ByteSpan payload,
                   std::size_t body_bytes) {
  // The length prefix always declares the FULL payload size — a truncated
  // frame lies about its length, exactly like FaultySocket on the wire.
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  stream.push_back(static_cast<std::uint8_t>(len >> 24));
  stream.push_back(static_cast<std::uint8_t>(len >> 16));
  stream.push_back(static_cast<std::uint8_t>(len >> 8));
  stream.push_back(static_cast<std::uint8_t>(len));
  stream.insert(stream.end(), payload.begin(), payload.begin() + body_bytes);
}

TEST_P(FuzzSeed, FaultInjectedFrameStreamNeverCrashesDecoders) {
  sim::FaultPlan plan;
  plan.seed = GetParam();
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.2;
  plan.truncate_probability = 0.2;
  plan.spare_control_frames = false;  // maul everything, handshake included
  ASSERT_TRUE(plan.validate().is_ok());
  sim::FaultInjector injector(plan);

  // A realistic frame mix: batches interleaved with v2 control messages.
  std::vector<ByteBuffer> frames;
  for (int i = 0; i < 120; ++i) {
    ByteBuffer payload;
    xdr::Encoder enc(payload);
    switch (i % 4) {
      case 0:
        payload = valid_batch_payload();
        break;
      case 1:
        tp::put_type(tp::MsgType::hello, enc);
        tp::encode_hello({static_cast<NodeId>(i), tp::kProtocolVersion,
                          static_cast<std::uint64_t>(i) * 31},
                         enc);
        break;
      case 2: {
        tp::put_type(tp::MsgType::batch_ack, enc);
        tp::BatchAck ack;
        ack.next_expected_seq = static_cast<std::uint32_t>(i);
        if (i % 8 == 2) {  // half the acks carry a v3 credit tail
          ack.credit = tp::CreditGrant{static_cast<std::uint64_t>(i) * 31,
                                       static_cast<std::uint32_t>(i), 4096};
        }
        tp::encode_batch_ack(ack, enc);
        break;
      }
      default:
        tp::put_type(tp::MsgType::heartbeat, enc);
        break;
    }
    frames.push_back(std::move(payload));
  }

  // Assemble the byte stream the receiver would actually observe.
  std::vector<std::uint8_t> stream;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const ByteSpan payload = frames[i].view();
    const net::FaultDecision decision = injector.decide(i, payload);
    switch (decision.action) {
      case net::FaultAction::drop:
        break;
      case net::FaultAction::duplicate:
        append_framed(stream, payload, payload.size());
        append_framed(stream, payload, payload.size());
        break;
      case net::FaultAction::truncate:
        append_framed(stream, payload,
                      decision.truncate_to < payload.size() ? decision.truncate_to
                                                            : payload.size());
        break;
      case net::FaultAction::pass:
      case net::FaultAction::stall:  // timing-only on a byte stream
        append_framed(stream, payload, payload.size());
        break;
    }
  }

  // Feed it in randomly-sized chunks; decode whatever frames survive.
  std::mt19937_64 rng(GetParam() * 13 + 5);
  std::uniform_int_distribution<std::size_t> chunk_dist(1, 400);
  net::FrameReader reader;
  std::size_t offset = 0;
  bool stream_poisoned = false;
  while (offset < stream.size() && !stream_poisoned) {
    const std::size_t n = std::min(chunk_dist(rng), stream.size() - offset);
    reader.feed(ByteSpan{stream.data() + offset, n});
    offset += n;
    for (;;) {
      auto frame = reader.next();
      if (!frame.is_ok()) {
        stream_poisoned = true;  // a truncation desynced the framing: the
        break;                   // receiver would now drop the connection
      }
      if (!frame.value().has_value()) break;
      const ByteSpan view = frame.value()->view();
      xdr::Decoder dec(view);
      auto type = tp::peek_type(dec);
      if (!type.is_ok()) continue;
      switch (type.value()) {
        case tp::MsgType::data_batch:
          (void)tp::decode_batch(dec);
          break;
        case tp::MsgType::hello:
          (void)tp::decode_hello(dec);
          break;
        case tp::MsgType::hello_ack:
          (void)tp::decode_hello_ack(dec);
          break;
        case tp::MsgType::batch_ack:
          (void)tp::decode_batch_ack(dec);
          break;
        default:
          break;
      }
    }
  }
}

TEST_P(FuzzSeed, FaultInjectorIsDeterministicPerSeed) {
  sim::FaultPlan plan;
  plan.seed = GetParam() * 7 + 1;
  plan.drop_probability = 0.15;
  plan.duplicate_probability = 0.15;
  plan.truncate_probability = 0.15;
  plan.stall_probability = 0.1;
  plan.stall_us = 1'000;
  plan.stall_every = 16;
  ASSERT_TRUE(plan.validate().is_ok());
  sim::FaultInjector first(plan);
  sim::FaultInjector second(plan);

  std::mt19937_64 rng(GetParam());
  const ByteBuffer batch = valid_batch_payload();
  for (std::uint64_t i = 0; i < 1'000; ++i) {
    // Alternate data batches with random control-ish payloads.
    auto noise = random_bytes(rng, 64);
    const ByteSpan payload =
        (i % 2 == 0) ? batch.view() : ByteSpan{noise.data(), noise.size()};
    const net::FaultDecision a = first.decide(i, payload);
    const net::FaultDecision b = second.decide(i, payload);
    EXPECT_EQ(static_cast<int>(a.action), static_cast<int>(b.action)) << "frame " << i;
    EXPECT_EQ(a.truncate_to, b.truncate_to);
    EXPECT_EQ(a.stall_us, b.stall_us);
  }
}

// ---- federation wire (ordered-stream hello, relay frames) -------------------

ByteBuffer valid_relay_batch_payload() {
  tp::RelayBatchBuilder builder(1000);
  sensors::Record record;
  record.node = 3;  // origin node travels per record on a relay stream
  record.sensor = 9;
  record.timestamp = 5'000;
  record.fields = {sensors::Field::i32(1), sensors::Field::str("abc"),
                   sensors::Field::conseq(4)};
  EXPECT_TRUE(builder.add_record(record));
  record.node = 4;
  record.timestamp = 5'001;
  EXPECT_TRUE(builder.add_record(record));
  builder.set_watermark(5'001);
  return builder.finish();
}

ByteBuffer valid_relay_watermark_payload() {
  ByteBuffer out;
  xdr::Encoder enc(out);
  tp::put_type(tp::MsgType::relay_watermark, enc);
  tp::encode_relay_watermark({1000, 123'456}, enc);
  return out;
}

// A cut anywhere inside the capability tail must error — a torn capability
// word never silently decodes as "no capabilities" (the parent would then
// treat an ordered relay stream as an unsorted EXS stream and break the
// merge's watermark contract). The one legal short read is the exact
// capability-free boundary.
TEST(FederationWireTest, HelloCapabilityTailTruncationNeverVanishes) {
  ByteBuffer base_wire;
  xdr::Encoder base_enc(base_wire);
  tp::put_type(tp::MsgType::hello, base_enc);
  tp::encode_hello({1000, tp::kProtocolVersion, 77, 0}, base_enc);

  ByteBuffer full_wire;
  xdr::Encoder full_enc(full_wire);
  tp::put_type(tp::MsgType::hello, full_enc);
  tp::encode_hello({1000, tp::kProtocolVersion, 77, tp::kCapabilityOrderedStream},
                   full_enc);
  ASSERT_GT(full_wire.size(), base_wire.size());

  for (std::size_t cut = 0; cut <= full_wire.size(); ++cut) {
    xdr::Decoder dec(full_wire.view().subspan(0, cut));
    if (!tp::peek_type(dec).is_ok()) continue;
    auto back = tp::decode_hello(dec);
    if (cut == base_wire.size()) {
      ASSERT_TRUE(back.is_ok()) << "capability-free boundary at " << cut;
      EXPECT_EQ(back.value().capabilities, 0u);
    } else if (cut == full_wire.size()) {
      ASSERT_TRUE(back.is_ok());
      EXPECT_EQ(back.value().capabilities, tp::kCapabilityOrderedStream);
    } else {
      EXPECT_FALSE(back.is_ok()) << "hello cut at " << cut;
    }
  }
}

TEST(FederationWireTest, UnknownHelloCapabilityBitsAreRejected) {
  for (const std::uint32_t capabilities :
       {std::uint32_t{1} << 1, std::uint32_t{1} << 31,
        tp::kCapabilityOrderedStream | (std::uint32_t{1} << 5), ~std::uint32_t{0}}) {
    ByteBuffer wire;
    xdr::Encoder enc(wire);
    tp::put_type(tp::MsgType::hello, enc);
    tp::encode_hello({1000, tp::kProtocolVersion, 77, capabilities}, enc);
    xdr::Decoder dec(wire.view());
    ASSERT_TRUE(tp::peek_type(dec).is_ok());
    auto back = tp::decode_hello(dec);
    ASSERT_FALSE(back.is_ok()) << "capabilities 0x" << std::hex << capabilities;
    EXPECT_EQ(back.status().code(), Errc::malformed);
  }
}

TEST(FederationWireTest, RelayBatchTruncationsAlwaysError) {
  const ByteBuffer payload = valid_relay_batch_payload();
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    xdr::Decoder dec(payload.view().subspan(0, cut));
    if (!tp::peek_type(dec).is_ok()) continue;
    EXPECT_FALSE(tp::decode_relay_batch(dec).is_ok())
        << "relay_batch cut at " << cut << " decoded successfully";
  }
  xdr::Decoder dec(payload.view());
  ASSERT_TRUE(tp::peek_type(dec).is_ok());
  auto batch = tp::decode_relay_batch(dec);
  ASSERT_TRUE(batch.is_ok());
  EXPECT_EQ(batch.value().header.relay_node, 1000u);
  EXPECT_EQ(batch.value().header.watermark, 5'001);
  ASSERT_EQ(batch.value().records.size(), 2u);
  EXPECT_EQ(batch.value().records[0].node, 3u);
  EXPECT_EQ(batch.value().records[1].node, 4u);
}

TEST(FederationWireTest, RelayWatermarkTruncationsAlwaysError) {
  const ByteBuffer payload = valid_relay_watermark_payload();
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    xdr::Decoder dec(payload.view().subspan(0, cut));
    if (!tp::peek_type(dec).is_ok()) continue;
    EXPECT_FALSE(tp::decode_relay_watermark(dec).is_ok())
        << "relay_watermark cut at " << cut << " decoded successfully";
  }
  xdr::Decoder dec(payload.view());
  ASSERT_TRUE(tp::peek_type(dec).is_ok());
  auto wm = tp::decode_relay_watermark(dec);
  ASSERT_TRUE(wm.is_ok());
  EXPECT_EQ(wm.value().relay_node, 1000u);
  EXPECT_EQ(wm.value().watermark, 123'456);
}

TEST_P(FuzzSeed, RelayFramesSurviveSingleByteCorruption) {
  std::mt19937_64 rng(GetParam() * 41 + 13);
  for (const ByteBuffer& payload :
       {valid_relay_batch_payload(), valid_relay_watermark_payload()}) {
    std::vector<std::uint8_t> bytes(payload.view().begin(), payload.view().end());
    std::uniform_int_distribution<std::size_t> pos_dist(0, bytes.size() - 1);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    for (int i = 0; i < 500; ++i) {
      auto mutated = bytes;
      mutated[pos_dist(rng)] = static_cast<std::uint8_t>(byte_dist(rng));
      xdr::Decoder dec(ByteSpan{mutated.data(), mutated.size()});
      auto type = tp::peek_type(dec);
      if (!type.is_ok()) continue;
      if (type.value() == tp::MsgType::relay_batch) {
        auto batch = tp::decode_relay_batch(dec);  // may fail; must not crash
        if (batch.is_ok()) {
          EXPECT_LE(batch.value().records.size(), 2u)
              << "corruption cannot invent records beyond the declared count";
        }
      } else if (type.value() == tp::MsgType::relay_watermark) {
        (void)tp::decode_relay_watermark(dec);
      }
    }
  }
}

// Relay-forwarded frames mixed into a torn byte stream: frames that survive
// the fault injector decode or error cleanly, and a lying length prefix
// poisons only the framing layer — never the decoders.
TEST_P(FuzzSeed, TornRelayFrameStreamNeverCrashesDecoders) {
  sim::FaultPlan plan;
  plan.seed = GetParam() * 53 + 9;
  plan.drop_probability = 0.2;
  plan.duplicate_probability = 0.2;
  plan.truncate_probability = 0.25;
  plan.spare_control_frames = false;
  ASSERT_TRUE(plan.validate().is_ok());
  sim::FaultInjector injector(plan);

  std::vector<ByteBuffer> frames;
  for (int i = 0; i < 120; ++i) {
    ByteBuffer payload;
    xdr::Encoder enc(payload);
    switch (i % 3) {
      case 0:
        payload = valid_relay_batch_payload();
        break;
      case 1:
        tp::put_type(tp::MsgType::relay_watermark, enc);
        tp::encode_relay_watermark({1000, static_cast<TimeMicros>(i) * 997}, enc);
        break;
      default:
        tp::put_type(tp::MsgType::hello, enc);
        tp::encode_hello({static_cast<NodeId>(1000 + i), tp::kProtocolVersion,
                          static_cast<std::uint64_t>(i) * 31,
                          tp::kCapabilityOrderedStream},
                         enc);
        break;
    }
    frames.push_back(std::move(payload));
  }

  std::vector<std::uint8_t> stream;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const ByteSpan payload = frames[i].view();
    const net::FaultDecision decision = injector.decide(i, payload);
    switch (decision.action) {
      case net::FaultAction::drop:
        break;
      case net::FaultAction::duplicate:
        append_framed(stream, payload, payload.size());
        append_framed(stream, payload, payload.size());
        break;
      case net::FaultAction::truncate:
        append_framed(stream, payload,
                      decision.truncate_to < payload.size() ? decision.truncate_to
                                                            : payload.size());
        break;
      case net::FaultAction::pass:
      case net::FaultAction::stall:
        append_framed(stream, payload, payload.size());
        break;
    }
  }

  std::mt19937_64 rng(GetParam() * 19 + 3);
  std::uniform_int_distribution<std::size_t> chunk_dist(1, 400);
  net::FrameReader reader;
  std::size_t offset = 0;
  bool stream_poisoned = false;
  while (offset < stream.size() && !stream_poisoned) {
    const std::size_t n = std::min(chunk_dist(rng), stream.size() - offset);
    reader.feed(ByteSpan{stream.data() + offset, n});
    offset += n;
    for (;;) {
      auto frame = reader.next();
      if (!frame.is_ok()) {
        stream_poisoned = true;
        break;
      }
      if (!frame.value().has_value()) break;
      xdr::Decoder dec(frame.value()->view());
      auto type = tp::peek_type(dec);
      if (!type.is_ok()) continue;
      switch (type.value()) {
        case tp::MsgType::relay_batch:
          (void)tp::decode_relay_batch(dec);
          break;
        case tp::MsgType::relay_watermark:
          (void)tp::decode_relay_watermark(dec);
          break;
        case tp::MsgType::hello:
          (void)tp::decode_hello(dec);
          break;
        default:
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed, ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace brisk
