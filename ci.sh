#!/usr/bin/env bash
# CI gate for BRISK. Five stages, any failure aborts the run:
#   1. tier-1: release-ish build + the full ctest suite
#   2. determinism: the ingest/ordering determinism grid run explicitly —
#      one test body covering {select, epoll} x reader threads x sorter
#      shards {1,2,4}, asserting byte-identical sorted output (the full
#      suite runs it too; this stage keeps it visible and un-trimmable)
#   3. bench smoke: a short saturated bench_throughput run with the sharded
#      ordering pipeline (shards=2) — catches pipeline wiring regressions
#      that unit tests with tame inputs miss
#   4. resilience: the crash/churn/fault-injection label on the same build
#   5. sanitize: a separate ASan+UBSan tree running the resilience label,
#      which is where lifetime and data-race-adjacent bugs actually surface
#
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/5] tier-1 build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "==> [2/5] determinism grid (select + epoll, shards 1/2/4)"
ctest --test-dir build --output-on-failure --no-tests=error -R 'IsmIngestDeterminismTest'

echo "==> [3/5] bench smoke: sharded ordering pipeline"
./build/bench/bench_throughput --smoke

echo "==> [4/5] resilience label"
ctest --test-dir build --output-on-failure -L resilience

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "==> [5/5] sanitizer stage skipped (--skip-sanitize)"
  exit 0
fi

echo "==> [5/5] ASan+UBSan build + resilience label"
cmake -B build-asan -S . -DBRISK_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$JOBS"
ctest --test-dir build-asan --output-on-failure -L resilience

echo "==> CI green"
