#!/usr/bin/env bash
# CI gate for BRISK. Twelve stages, any failure aborts the run:
#   1. tier-1: release-ish build + the full ctest suite
#   2. determinism + poller parity: the ingest/ordering determinism grid
#      run explicitly — one test body covering {select, epoll, and uring
#      when the kernel has io_uring} x reader threads x sorter shards
#      {1,2,4}, asserting byte-identical sorted output with
#      self-instrumentation enabled — plus the poller parity suite across
#      the same backends. io_uring support is detected at runtime; without
#      it the stage prints an explicit skip line and covers select + epoll
#   3. bench smoke: a short saturated bench_throughput run with the sharded
#      ordering pipeline (shards=2) plus the tracing-overhead check, and a
#      bench_latency --smoke pass proving annotated records deliver —
#      catches pipeline wiring regressions that unit tests with tame
#      inputs miss
#   4. metrics smoke: a real daemon pair (brisk_ism + brisk_exs) with
#      --metrics-interval on, then brisk_consume --metrics against the shm
#      ring — one decoded ISM metrics record must appear in the table
#   5. latency smoke: ISM + two traced EXS daemons with synthetic
#      workloads, then brisk_consume --mode latency — every stage-pair
#      histogram must report, and --trace-out must emit a Chrome trace
#      JSON with spans from both nodes
#   6. flow-control smoke: an overdriven brisk_exs (300k ev/s) against a
#      brisk_ism whose ordering thread is periodically stalled (outbound
#      fault injection) with tiny ingest lanes — with credit grants off the
#      EXS blasts into the blocked socket, its writes stall, and records
#      drop at the rings (must be nonzero); with --ism-credit-records on,
#      the pacer parks batches in the replay buffer instead and ring drops
#      must be exactly zero
#   7. fan-out smoke: ISM with --consumer-port on, one EXS (workload +
#      tracing + metrics), three brisk_consume subscribers over TCP with
#      disjoint pushdown filters (workload sensors / 0xFF01 metrics /
#      0xFF02 spans) — each stream must be non-empty and contain only its
#      own sensor ids (zero cross-contamination through the gateway)
#   8. relay smoke: the same 4-node workload run flat (4 EXS → 1 ISM) and
#      as a 2-level tree (4 EXS → 2 relay ISMs → root ISM) through the
#      real binaries — both outputs must carry records from all 4 origin
#      nodes and be globally timestamp-sorted, and the tree's node set
#      must match the flat run's (byte-identity across the determinism
#      grid is proven in-process by relay_federation_test in stage 1)
#   9. health smoke: an aggregating 2-relay tree (4 EXS → 2 relay ISMs
#      with --relay-aggregate-metrics → root ISM), one EXS killed -9
#      mid-run — brisk_consume --mode health --json at the root must
#      report the dead node stale/departed (its aggregate watermark
#      freezes while the fleet frontier advances) and every survivor live
#  10. resilience: the crash/churn/fault-injection label on the same build
#  11. sanitize: a separate ASan+UBSan tree running the resilience label
#      (including the flow-control property suite), which is where lifetime
#      and data-race-adjacent bugs actually surface
#  12. tsan: a TSan tree over the threaded ingest/ordering/metrics/trace
#      tests plus the flow-control property suite, the consumer-gateway
#      suite, the federation suite (relay lanes, reader migration,
#      two-hop sync, metrics aggregation), the flight-recorder and
#      health-rollup suites, and the io_uring poller suite — the
#      cross-thread stats counters, the credit drained-record cells, the
#      relay lane cells, and the gateway's fan-out thread must stay clean
#      on the whole grid
#
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/12] tier-1 build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "==> [2/12] determinism grid + poller parity (all backends, shards 1/2/4, metrics on)"
# The parity and determinism suites instantiate their uring cases at runtime
# (net::uring_available()); probe the same detection here so the log says
# explicitly which grid actually ran.
if ./build/tests/poller_test --gtest_list_tests 2>/dev/null | grep -q 'uring'; then
  echo "io_uring detected: parity + determinism grids include --poller uring"
else
  echo "skipped: no io_uring on this kernel (grids cover select + epoll only)"
fi
ctest --test-dir build --output-on-failure --no-tests=error \
  -R 'IsmIngestDeterminismTest|PollerTest'

echo "==> [3/12] bench smoke: sharded ordering pipeline + traced delivery"
./build/bench/bench_throughput --smoke
./build/bench/bench_latency --smoke

echo "==> [4/12] metrics smoke: daemon pair + brisk_consume --metrics"
METRICS_SHM_OUT="/brisk-ci-metrics-out-$$"
METRICS_SHM_NODE="/brisk-ci-metrics-node-$$"
ISM_PID=""
EXS_PID=""
cleanup_metrics_smoke() {
  [[ -n "$EXS_PID" ]] && kill "$EXS_PID" 2>/dev/null || true
  [[ -n "$ISM_PID" ]] && kill "$ISM_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "/dev/shm${METRICS_SHM_OUT}" "/dev/shm${METRICS_SHM_NODE}" 2>/dev/null || true
}
trap cleanup_metrics_smoke EXIT
ISM_LOG="$(mktemp)"
./build/src/apps/brisk_ism --port 0 --shm "$METRICS_SHM_OUT" \
  --metrics-interval 1 --stats-interval 1 >"$ISM_LOG" 2>&1 &
ISM_PID=$!
ISM_PORT=""
for _ in $(seq 1 50); do
  ISM_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$ISM_LOG" | head -1)"
  [[ -n "$ISM_PORT" ]] && break
  sleep 0.1
done
[[ -n "$ISM_PORT" ]] || { echo "metrics smoke: ISM never reported its port" >&2; cat "$ISM_LOG" >&2; exit 1; }
./build/src/apps/brisk_exs --node 1 --shm "$METRICS_SHM_NODE" \
  --ism-host 127.0.0.1 --ism-port "$ISM_PORT" --metrics-interval 1 >/dev/null 2>&1 &
EXS_PID=$!
sleep 3  # a few metrics intervals
# The daemons keep emitting, so the consumer never goes idle: bound it with
# timeout — SIGTERM lands in its signal handler, which prints the final table.
METRICS_OUT="$(timeout 6 ./build/src/apps/brisk_consume --shm "$METRICS_SHM_OUT" --metrics \
  --idle-exit-ms 0 || true)"
echo "$METRICS_OUT" | grep -q 'ism\.records_received' \
  || { echo "metrics smoke: no decoded ISM metrics record in consumer table" >&2; \
       echo "$METRICS_OUT" >&2; exit 1; }
echo "$METRICS_OUT" | grep 'ism\.records_received' | head -1
cleanup_metrics_smoke
trap - EXIT

echo "==> [5/12] latency smoke: traced daemon trio + brisk_consume --mode latency"
LAT_SHM_OUT="/brisk-ci-lat-out-$$"
LAT_SHM_NODE1="/brisk-ci-lat-node1-$$"
LAT_SHM_NODE2="/brisk-ci-lat-node2-$$"
LAT_TRACE_JSON="$(mktemp --suffix=.json)"
ISM_PID=""
EXS1_PID=""
EXS2_PID=""
cleanup_latency_smoke() {
  [[ -n "$EXS1_PID" ]] && kill "$EXS1_PID" 2>/dev/null || true
  [[ -n "$EXS2_PID" ]] && kill "$EXS2_PID" 2>/dev/null || true
  [[ -n "$ISM_PID" ]] && kill "$ISM_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "/dev/shm${LAT_SHM_OUT}" "/dev/shm${LAT_SHM_NODE1}" \
        "/dev/shm${LAT_SHM_NODE2}" "$LAT_TRACE_JSON" 2>/dev/null || true
}
trap cleanup_latency_smoke EXIT
ISM_LOG="$(mktemp)"
./build/src/apps/brisk_ism --port 0 --shm "$LAT_SHM_OUT" \
  --metrics-interval 1 --stats-interval 1 >"$ISM_LOG" 2>&1 &
ISM_PID=$!
ISM_PORT=""
for _ in $(seq 1 50); do
  ISM_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$ISM_LOG" | head -1)"
  [[ -n "$ISM_PORT" ]] && break
  sleep 0.1
done
[[ -n "$ISM_PORT" ]] || { echo "latency smoke: ISM never reported its port" >&2; cat "$ISM_LOG" >&2; exit 1; }
# Two traced nodes: the Chrome trace must show spans from both pids.
./build/src/apps/brisk_exs --node 1 --shm "$LAT_SHM_NODE1" \
  --ism-host 127.0.0.1 --ism-port "$ISM_PORT" \
  --workload-rate 200 --trace-sample-rate 1.0 >/dev/null 2>&1 &
EXS1_PID=$!
./build/src/apps/brisk_exs --node 2 --shm "$LAT_SHM_NODE2" \
  --ism-host 127.0.0.1 --ism-port "$ISM_PORT" \
  --workload-rate 200 --trace-sample-rate 1.0 >/dev/null 2>&1 &
EXS2_PID=$!
sleep 4  # a few metrics intervals with traced records flowing
LATENCY_OUT="$(timeout 6 ./build/src/apps/brisk_consume --shm "$LAT_SHM_OUT" \
  --mode latency --trace-out "$LAT_TRACE_JSON" --idle-exit-ms 0 || true)"
for pair in lat.ring_to_drain lat.drain_to_seal lat.seal_to_send \
            lat.send_to_ingest lat.ingest_to_sort lat.sort_to_merge \
            lat.merge_to_cre lat.cre_to_sink lat.end_to_end; do
  echo "$LATENCY_OUT" | grep -q "$pair" \
    || { echo "latency smoke: stage pair $pair missing from --mode latency table" >&2; \
         echo "$LATENCY_OUT" >&2; exit 1; }
done
echo "$LATENCY_OUT" | grep 'lat\.end_to_end' | head -1
python3 - "$LAT_TRACE_JSON" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
assert spans, "no trace spans in Chrome trace JSON"
pids = {e["pid"] for e in spans}
assert {1, 2} <= pids, f"expected spans from both nodes, got pids {sorted(pids)}"
print(f"latency smoke: {len(spans)} spans from nodes {sorted(pids)}")
PYEOF
cleanup_latency_smoke
trap - EXIT

echo "==> [6/12] flow-control smoke: overdriven EXS vs stalled ISM, credits off/on"
FC_SHM_OUT="/brisk-ci-fc-out-$$"
FC_SHM_NODE="/brisk-ci-fc-node-$$"
ISM_PID=""
EXS_PID=""
cleanup_fc_smoke() {
  [[ -n "$EXS_PID" ]] && kill "$EXS_PID" 2>/dev/null || true
  [[ -n "$ISM_PID" ]] && kill "$ISM_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "/dev/shm${FC_SHM_OUT}" "/dev/shm${FC_SHM_NODE}" 2>/dev/null || true
}
trap cleanup_fc_smoke EXIT
# One overdriven run; $1 = extra ISM flags (credit knobs). Sets FC_DROPS to
# the EXS's final ring-drop count. The ISM's ordering thread sleeps 100ms
# around every second outbound ack (fault injection), so its socket reads
# pause and the TCP window pushes back on the EXS — the "ISM at half the
# offered load" shape without needing a slow machine.
run_fc_pair() {
  ISM_LOG="$(mktemp)"
  # shellcheck disable=SC2086  # $1 is deliberately word-split flag args
  ./build/src/apps/brisk_ism --port 0 --shm "$FC_SHM_OUT" \
    --ism-reader-threads 1 --ingest-queue-frames 4 --select-timeout-us 10000 \
    --ack-period-us 20000 --fault-stall-every 2 --fault-stall-us 100000 \
    $1 >"$ISM_LOG" 2>&1 &
  ISM_PID=$!
  ISM_PORT=""
  for _ in $(seq 1 50); do
    ISM_PORT="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$ISM_LOG" | head -1)"
    [[ -n "$ISM_PORT" ]] && break
    sleep 0.1
  done
  [[ -n "$ISM_PORT" ]] || { echo "flow smoke: ISM never reported its port" >&2; cat "$ISM_LOG" >&2; exit 1; }
  EXS_OUT="$(mktemp)"
  ./build/src/apps/brisk_exs --node 1 --shm "$FC_SHM_NODE" \
    --ism-host 127.0.0.1 --ism-port "$ISM_PORT" \
    --workload-rate 300000 --batch-records 16 --batch-age-us 2000 \
    --ring-bytes 1048576 --replay-batches 65536 --select-timeout-us 2000 \
    >"$EXS_OUT" 2>&1 &
  EXS_PID=$!
  sleep 4
  kill "$EXS_PID" 2>/dev/null || true
  wait "$EXS_PID" 2>/dev/null || true
  EXS_PID=""
  kill "$ISM_PID" 2>/dev/null || true
  wait "$ISM_PID" 2>/dev/null || true
  ISM_PID=""
  rm -f "/dev/shm${FC_SHM_OUT}" "/dev/shm${FC_SHM_NODE}" 2>/dev/null || true
  grep 'ring drops' "$EXS_OUT" || { echo "flow smoke: no EXS stats line" >&2; cat "$EXS_OUT" >&2; exit 1; }
  FC_DROPS="$(sed -n 's/.*(\([0-9][0-9]*\) ring drops).*/\1/p' "$EXS_OUT" | head -1)"
}
run_fc_pair ""
[[ "$FC_DROPS" -gt 0 ]] \
  || { echo "flow smoke: expected ring drops with credits OFF, got $FC_DROPS" >&2; exit 1; }
run_fc_pair "--ism-credit-records 8192 --credit-replenish-us 5000"
[[ "$FC_DROPS" -eq 0 ]] \
  || { echo "flow smoke: expected ZERO ring drops with credits ON, got $FC_DROPS" >&2; exit 1; }
echo "flow smoke: credits off drops, credits on loses nothing at the rings"
cleanup_fc_smoke
trap - EXIT

echo "==> [7/12] fan-out smoke: gateway + 3 disjoint TCP subscribers"
FAN_SHM_OUT="/brisk-ci-fan-out-$$"
FAN_SHM_NODE="/brisk-ci-fan-node-$$"
ISM_PID=""
EXS_PID=""
cleanup_fanout_smoke() {
  [[ -n "$EXS_PID" ]] && kill "$EXS_PID" 2>/dev/null || true
  [[ -n "$ISM_PID" ]] && kill "$ISM_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "/dev/shm${FAN_SHM_OUT}" "/dev/shm${FAN_SHM_NODE}" 2>/dev/null || true
}
trap cleanup_fanout_smoke EXIT
ISM_LOG="$(mktemp)"
./build/src/apps/brisk_ism --port 0 --shm "$FAN_SHM_OUT" --consumer-port 0 \
  --metrics-interval 1 >"$ISM_LOG" 2>&1 &
ISM_PID=$!
ISM_PORT=""
CONSUMER_PORT=""
for _ in $(seq 1 50); do
  ISM_PORT="$(sed -n 's/.*brisk_ism .* listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$ISM_LOG" | head -1)"
  CONSUMER_PORT="$(sed -n 's/.*consumer gateway listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$ISM_LOG" | head -1)"
  [[ -n "$ISM_PORT" && -n "$CONSUMER_PORT" ]] && break
  sleep 0.1
done
[[ -n "$ISM_PORT" && -n "$CONSUMER_PORT" ]] \
  || { echo "fan-out smoke: ISM never reported its ports" >&2; cat "$ISM_LOG" >&2; exit 1; }
# One traced node emitting workload sensors (1..), 0xFF01 metrics, 0xFF02 spans.
./build/src/apps/brisk_exs --node 1 --shm "$FAN_SHM_NODE" \
  --ism-host 127.0.0.1 --ism-port "$ISM_PORT" \
  --workload-rate 500 --trace-sample-rate 1.0 --metrics-interval 1 >/dev/null 2>&1 &
EXS_PID=$!
# Three subscribers, disjoint sensor filters: workload / metrics / spans.
FAN_WK="$(mktemp)"; FAN_MX="$(mktemp)"; FAN_SP="$(mktemp)"
timeout 6 ./build/src/apps/brisk_consume --connect "127.0.0.1:$CONSUMER_PORT" \
  --filter 'sensor=0-99' --sub-name ci-workload --idle-exit-ms 0 >"$FAN_WK" 2>/dev/null &
WK_PID=$!
timeout 6 ./build/src/apps/brisk_consume --connect "127.0.0.1:$CONSUMER_PORT" \
  --filter 'sensor=65281' --sub-name ci-metrics --idle-exit-ms 0 >"$FAN_MX" 2>/dev/null &
MX_PID=$!
timeout 6 ./build/src/apps/brisk_consume --connect "127.0.0.1:$CONSUMER_PORT" \
  --filter 'sensor=65282' --sub-name ci-spans --idle-exit-ms 0 >"$FAN_SP" 2>/dev/null &
SP_PID=$!
wait "$WK_PID" "$MX_PID" "$SP_PID" 2>/dev/null || true
cleanup_fanout_smoke
trap - EXIT
# Each stream must be non-empty, and PICL field 2 (the sensor/event id)
# must never stray outside the subscriber's own filter.
check_fanout_stream() {  # $1 = file, $2 = label, $3 = awk predicate over $2
  [[ -s "$1" ]] || { echo "fan-out smoke: $2 stream is empty" >&2; exit 1; }
  BAD="$(awk "!($3)" "$1" | head -3)"
  [[ -z "$BAD" ]] \
    || { echo "fan-out smoke: $2 stream contaminated:" >&2; echo "$BAD" >&2; exit 1; }
}
check_fanout_stream "$FAN_WK" workload '$2 >= 0 && $2 <= 99'
check_fanout_stream "$FAN_MX" metrics '$2 == 65281'
check_fanout_stream "$FAN_SP" spans '$2 == 65282'
echo "fan-out smoke: $(wc -l <"$FAN_WK") workload / $(wc -l <"$FAN_MX") metrics / $(wc -l <"$FAN_SP") span lines, disjoint"
rm -f "$FAN_WK" "$FAN_MX" "$FAN_SP"

echo "==> [8/12] relay smoke: flat vs 2-level relay tree through the real binaries"
RELAY_DIR="$(mktemp -d)"
RELAY_ISM_PIDS=()
RELAY_EXS_PIDS=()
RELAY_SHMS=()
cleanup_relay_smoke() {
  for pid in "${RELAY_EXS_PIDS[@]:-}" "${RELAY_ISM_PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  for shm in "${RELAY_SHMS[@]:-}"; do rm -f "/dev/shm${shm}" 2>/dev/null || true; done
  rm -rf "$RELAY_DIR"
}
trap cleanup_relay_smoke EXIT
# Every ISM holds a fixed 2 s sorter frame: the sorted-output claim below
# is only sound for records the sorter could still see together, and a
# live ramp-up (nodes connecting at different times) would otherwise let
# early records release before late-connecting peers' older ones arrive.
RELAY_FRAME_FLAGS="--frame-us 2000000 --min-frame-us 2000000 --adaptive=false"
# Starts a brisk_ism ($1 = log file, rest = flags), waits for its port and
# leaves it in RELAY_PORT. NOT safe to call via $(...): the pid bookkeeping
# must happen in this shell, or the kill loops iterate an empty array and
# every ISM leaks past the stage.
start_ism() {
  local log="$1"; shift
  # shellcheck disable=SC2086  # frame flags deliberately word-split
  ./build/src/apps/brisk_ism --port 0 $RELAY_FRAME_FLAGS "$@" >"$log" 2>&1 &
  RELAY_ISM_PIDS+=("$!")
  RELAY_PORT=""
  for _ in $(seq 1 50); do
    RELAY_PORT="$(sed -n 's/.*brisk_ism .* listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
    [[ -n "$RELAY_PORT" ]] && break
    sleep 0.1
  done
  [[ -n "$RELAY_PORT" ]] \
    || { echo "relay smoke: ISM never reported its port" >&2; cat "$log" >&2; exit 1; }
}
# Runs the 4-node workload against topology $1 (flat|tree) and leaves the
# root's PICL output in $RELAY_DIR/$1.picl.
run_relay_topology() {
  local topo="$1"
  local root_shm="/brisk-ci-relay-${topo}-root-$$"
  RELAY_SHMS+=("$root_shm")
  local root_port
  start_ism "$RELAY_DIR/$topo-root.log" --shm "$root_shm"
  root_port="$RELAY_PORT"
  local exs_ports=()
  if [[ "$topo" == tree ]]; then
    # Both relays are connected to the root (RelayEgress requires the
    # initial connect to succeed before the port banner prints) before any
    # EXS starts, so the root's merge is gated by both lanes from the
    # first record on.
    for r in 0 1; do
      local relay_shm="/brisk-ci-relay-${topo}-r${r}-$$"
      RELAY_SHMS+=("$relay_shm")
      local relay_port
      start_ism "$RELAY_DIR/$topo-relay$r.log" --shm "$relay_shm" \
        --relay-to "127.0.0.1:$root_port" --relay-node "$((1000 + r))" \
        --relay-batch-age-us 2000 --relay-idle-wm-us 20000
      relay_port="$RELAY_PORT"
      exs_ports+=("$relay_port" "$relay_port")
    done
  else
    exs_ports=("$root_port" "$root_port" "$root_port" "$root_port")
  fi
  for node in 1 2 3 4; do
    local node_shm="/brisk-ci-relay-${topo}-node${node}-$$"
    RELAY_SHMS+=("$node_shm")
    ./build/src/apps/brisk_exs --node "$node" --shm "$node_shm" \
      --ism-host 127.0.0.1 --ism-port "${exs_ports[$((node - 1))]}" \
      --workload-rate 300 >/dev/null 2>&1 &
    RELAY_EXS_PIDS+=("$!")
  done
  sleep 4
  for pid in "${RELAY_EXS_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait "${RELAY_EXS_PIDS[@]}" 2>/dev/null || true
  RELAY_EXS_PIDS=()
  sleep 3  # let the 2 s sorter frames flush the held records downstream
  for pid in "${RELAY_ISM_PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait "${RELAY_ISM_PIDS[@]}" 2>/dev/null || true
  RELAY_ISM_PIDS=()
  timeout 6 ./build/src/apps/brisk_consume --shm "$root_shm" \
    --idle-exit-ms 300 >"$RELAY_DIR/$topo.picl" 2>/dev/null || true
  [[ -s "$RELAY_DIR/$topo.picl" ]] \
    || { echo "relay smoke: $topo run delivered no output" >&2; exit 1; }
  # Globally timestamp-sorted (PICL field 3), records from all 4 nodes
  # (field 4) — the merge invariants, through the real daemons.
  awk 'prev != "" && $3 + 0 < prev + 0 { print "unsorted at line " NR; exit 1 } { prev = $3 }' \
    "$RELAY_DIR/$topo.picl" \
    || { echo "relay smoke: $topo output is not timestamp-sorted" >&2; exit 1; }
  for node in 1 2 3 4; do
    awk -v n="$node" '$4 == n { found = 1 } END { exit !found }' "$RELAY_DIR/$topo.picl" \
      || { echo "relay smoke: $topo output has no records from node $node" >&2; exit 1; }
  done
}
run_relay_topology flat
run_relay_topology tree
# The tree must deliver the same set of origin nodes the flat run did.
FLAT_NODES="$(awk '{ print $4 }' "$RELAY_DIR/flat.picl" | sort -un | tr '\n' ' ')"
TREE_NODES="$(awk '{ print $4 }' "$RELAY_DIR/tree.picl" | sort -un | tr '\n' ' ')"
[[ "$FLAT_NODES" == "$TREE_NODES" ]] \
  || { echo "relay smoke: node sets differ (flat: $FLAT_NODES vs tree: $TREE_NODES)" >&2; exit 1; }
echo "relay smoke: flat $(wc -l <"$RELAY_DIR/flat.picl") / tree $(wc -l <"$RELAY_DIR/tree.picl") sorted records, nodes $TREE_NODES"
cleanup_relay_smoke
trap - EXIT

echo "==> [9/12] health smoke: aggregating relay tree, one EXS killed mid-run"
HEALTH_DIR="$(mktemp -d)"
HEALTH_ISM_PIDS=()
HEALTH_EXS_PIDS=()
HEALTH_SHMS=()
cleanup_health_smoke() {
  for pid in "${HEALTH_EXS_PIDS[@]:-}" "${HEALTH_ISM_PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  for shm in "${HEALTH_SHMS[@]:-}"; do rm -f "/dev/shm${shm}" 2>/dev/null || true; done
  rm -rf "$HEALTH_DIR"
}
trap cleanup_health_smoke EXIT
# Starts a brisk_ism ($1 = log file, rest = flags), waits for its port and
# leaves it in HEALTH_PORT. NOT safe to call via $(...): the pid bookkeeping
# must happen in this shell or cleanup never sees the daemon.
health_start_ism() {
  local log="$1"; shift
  ./build/src/apps/brisk_ism --port 0 "$@" >"$log" 2>&1 &
  HEALTH_ISM_PIDS+=("$!")
  HEALTH_PORT=""
  for _ in $(seq 1 50); do
    HEALTH_PORT="$(sed -n 's/.*brisk_ism .* listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log" | head -1)"
    [[ -n "$HEALTH_PORT" ]] && break
    sleep 0.1
  done
  [[ -n "$HEALTH_PORT" ]] \
    || { echo "health smoke: ISM never reported its port" >&2; cat "$log" >&2; exit 1; }
}
HEALTH_ROOT_SHM="/brisk-ci-health-root-$$"
HEALTH_SHMS+=("$HEALTH_ROOT_SHM")
health_start_ism "$HEALTH_DIR/root.log" --shm "$HEALTH_ROOT_SHM" --metrics-interval 1
HEALTH_ROOT_PORT="$HEALTH_PORT"
# Two aggregating relays: per-node 0xFF01 snapshots are absorbed below the
# root, so the dead node is only observable through its agg.node.<id>
# watermark gauge — exactly the path the health rollup must handle. A short
# quarantine makes the relay's 0xFF03 session_expired land inside the run.
HEALTH_RELAY_PORTS=()
for r in 0 1; do
  relay_shm="/brisk-ci-health-r${r}-$$"
  HEALTH_SHMS+=("$relay_shm")
  health_start_ism "$HEALTH_DIR/relay$r.log" --shm "$relay_shm" \
    --relay-to "127.0.0.1:$HEALTH_ROOT_PORT" --relay-node "$((1000 + r))" \
    --relay-aggregate-metrics --relay-batch-age-us 2000 --relay-idle-wm-us 20000 \
    --metrics-interval 1 --quarantine-us 1000000
  HEALTH_RELAY_PORTS+=("$HEALTH_PORT")
done
# Nodes 1,2 behind relay 0; nodes 3,4 behind relay 1. Node 3 is the victim.
VICTIM_PID=""
for node in 1 2 3 4; do
  node_shm="/brisk-ci-health-node${node}-$$"
  HEALTH_SHMS+=("$node_shm")
  ./build/src/apps/brisk_exs --node "$node" --shm "$node_shm" \
    --ism-host 127.0.0.1 --ism-port "${HEALTH_RELAY_PORTS[$(((node - 1) / 2))]}" \
    --workload-rate 200 --metrics-interval 1 >/dev/null 2>&1 &
  if [[ "$node" == 3 ]]; then VICTIM_PID=$!; else HEALTH_EXS_PIDS+=("$!"); fi
done
sleep 4
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
sleep 5  # let node 3's evidence age past the 3x departed threshold
timeout 8 ./build/src/apps/brisk_consume --shm "$HEALTH_ROOT_SHM" \
  --mode health --json --health-stale-ms 1000 --idle-exit-ms 0 \
  >"$HEALTH_DIR/health.json" 2>/dev/null || true
[[ -s "$HEALTH_DIR/health.json" ]] \
  || { echo "health smoke: no health output" >&2; exit 1; }
python3 - "$HEALTH_DIR/health.json" <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [line for line in f if line.strip()]
doc = json.loads(lines[-1])
states = {n["node"]: n["state"] for n in doc["nodes"]}
dead = states.get(3)
assert dead in ("stale", "departed"), f"dead node 3 reported {dead!r} in {states}"
for node in (1, 2, 4):
    assert states.get(node) == "live", f"survivor {node} reported {states.get(node)!r} in {states}"
print(f"health smoke: node 3 {dead}, survivors live "
      f"({doc['metric_records']} metric records, {doc['event_records']} events)")
PYEOF
cleanup_health_smoke
trap - EXIT

echo "==> [10/12] resilience label"
ctest --test-dir build --output-on-failure -L resilience

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "==> [11/12] sanitizer stages skipped (--skip-sanitize)"
  exit 0
fi

echo "==> [11/12] ASan+UBSan build + resilience label"
cmake -B build-asan -S . -DBRISK_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$JOBS"
ctest --test-dir build-asan --output-on-failure -L resilience

echo "==> [12/12] TSan build + ingest/ordering/metrics/trace/gateway/federation tests"
cmake -B build-tsan -S . -DBRISK_SANITIZE=thread >/dev/null
cmake --build build-tsan -j"$JOBS"
ctest --test-dir build-tsan --output-on-failure --no-tests=error -j"$JOBS" \
  -R 'IsmServerTest|IsmIngestDeterminismTest|OrderingPipelineTest|Metrics|Trace|FlowControl|CreditGrant|Gateway|SinkRegistry|RelayFederation|ReaderMigration|FederatedSync|UringPoller|FlightRecorder|HealthRollup|RelayAggregation'

echo "==> CI green"
