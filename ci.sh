#!/usr/bin/env bash
# CI gate for BRISK. Three stages, any failure aborts the run:
#   1. tier-1: release-ish build + the full ctest suite
#   2. resilience: the crash/churn/fault-injection label on the same build
#   3. sanitize: a separate ASan+UBSan tree running the resilience label,
#      which is where lifetime and data-race-adjacent bugs actually surface
#
# Usage: ./ci.sh [--skip-sanitize]
set -euo pipefail
cd "$(dirname "$0")"

SKIP_SANITIZE=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitize) SKIP_SANITIZE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "==> [1/3] tier-1 build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "==> [2/3] resilience label"
ctest --test-dir build --output-on-failure -L resilience

if [[ "$SKIP_SANITIZE" == 1 ]]; then
  echo "==> [3/3] sanitizer stage skipped (--skip-sanitize)"
  exit 0
fi

echo "==> [3/3] ASan+UBSan build + resilience label"
cmake -B build-asan -S . -DBRISK_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j"$JOBS"
ctest --test-dir build-asan --output-on-failure -L resilience

echo "==> CI green"
