#include "xdr/xdr_encoder.hpp"

#include <bit>
#include <cstring>

namespace brisk::xdr {

void Encoder::put_u32(std::uint32_t value) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(value >> 24),
      static_cast<std::uint8_t>(value >> 16),
      static_cast<std::uint8_t>(value >> 8),
      static_cast<std::uint8_t>(value),
  };
  out_.append(bytes, sizeof bytes);
  written_ += 4;
}

void Encoder::put_u64(std::uint64_t value) {
  put_u32(static_cast<std::uint32_t>(value >> 32));
  put_u32(static_cast<std::uint32_t>(value));
}

void Encoder::put_f32(float value) {
  static_assert(sizeof(float) == 4, "XDR requires IEEE-754 single precision");
  put_u32(std::bit_cast<std::uint32_t>(value));
}

void Encoder::put_f64(double value) {
  static_assert(sizeof(double) == 8, "XDR requires IEEE-754 double precision");
  put_u64(std::bit_cast<std::uint64_t>(value));
}

void Encoder::put_opaque(ByteSpan bytes) {
  put_u32(static_cast<std::uint32_t>(bytes.size()));
  put_opaque_fixed(bytes);
}

void Encoder::put_opaque_fixed(ByteSpan bytes) {
  out_.append(bytes);
  const std::size_t pad = pad_of(bytes.size());
  out_.append_zeros(pad);
  written_ += bytes.size() + pad;
}

void Encoder::put_string(std::string_view text) {
  put_opaque(ByteSpan{reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

}  // namespace brisk::xdr
