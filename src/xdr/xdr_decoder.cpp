#include "xdr/xdr_decoder.hpp"

#include <bit>

#include "xdr/xdr_encoder.hpp"

namespace brisk::xdr {

Result<std::uint32_t> Decoder::get_u32() noexcept {
  if (remaining() < 4) return Status(Errc::truncated, "u32");
  const std::uint8_t* p = input_.data() + pos_;
  pos_ += 4;
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

Result<std::int32_t> Decoder::get_i32() noexcept {
  auto r = get_u32();
  if (!r) return r.status();
  return static_cast<std::int32_t>(r.value());
}

Result<std::uint64_t> Decoder::get_u64() noexcept {
  auto hi = get_u32();
  if (!hi) return hi.status();
  auto lo = get_u32();
  if (!lo) return lo.status();
  return (std::uint64_t{hi.value()} << 32) | std::uint64_t{lo.value()};
}

Result<std::int64_t> Decoder::get_i64() noexcept {
  auto r = get_u64();
  if (!r) return r.status();
  return static_cast<std::int64_t>(r.value());
}

Result<bool> Decoder::get_bool() noexcept {
  auto r = get_u32();
  if (!r) return r.status();
  if (r.value() > 1) return Status(Errc::malformed, "bool out of range");
  return r.value() == 1;
}

Result<float> Decoder::get_f32() noexcept {
  auto r = get_u32();
  if (!r) return r.status();
  return std::bit_cast<float>(r.value());
}

Result<double> Decoder::get_f64() noexcept {
  auto r = get_u64();
  if (!r) return r.status();
  return std::bit_cast<double>(r.value());
}

Result<ByteSpan> Decoder::get_opaque(std::size_t max_len) noexcept {
  auto len = get_u32();
  if (!len) return len.status();
  if (len.value() > max_len) return Status(Errc::malformed, "opaque length exceeds bound");
  return get_opaque_fixed(len.value());
}

Result<ByteSpan> Decoder::get_opaque_fixed(std::size_t len) noexcept {
  const std::size_t padded = len + Encoder::pad_of(len);
  if (remaining() < padded) return Status(Errc::truncated, "opaque body");
  ByteSpan view{input_.data() + pos_, len};
  pos_ += padded;
  return view;
}

Result<std::string> Decoder::get_string(std::size_t max_len) {
  auto bytes = get_opaque(max_len);
  if (!bytes) return bytes.status();
  return std::string(reinterpret_cast<const char*>(bytes.value().data()), bytes.value().size());
}

Status Decoder::skip(std::size_t len) noexcept {
  if (remaining() < len) return Status(Errc::truncated, "skip");
  pos_ += len;
  return Status::ok();
}

}  // namespace brisk::xdr
