// XDR decoder: the inverse of xdr::Encoder. Every accessor validates
// remaining length and returns a typed Result; malformed or truncated input
// can never read out of bounds.
#pragma once

#include <cstdint>
#include <string>

#include "common/byte_buffer.hpp"

namespace brisk::xdr {

class Decoder {
 public:
  /// Decodes from a view; the underlying bytes must outlive the decoder.
  explicit Decoder(ByteSpan input) noexcept : input_(input) {}

  Result<std::uint32_t> get_u32() noexcept;
  Result<std::int32_t> get_i32() noexcept;
  Result<std::uint64_t> get_u64() noexcept;
  Result<std::int64_t> get_i64() noexcept;
  Result<bool> get_bool() noexcept;
  Result<float> get_f32() noexcept;
  Result<double> get_f64() noexcept;

  /// Variable-length opaque (u32 length + payload + padding). `max_len`
  /// bounds the declared length to defend against hostile headers.
  Result<ByteSpan> get_opaque(std::size_t max_len = 1 << 20) noexcept;
  /// Fixed-length opaque of a known size (payload + padding).
  Result<ByteSpan> get_opaque_fixed(std::size_t len) noexcept;
  Result<std::string> get_string(std::size_t max_len = 1 << 20);

  [[nodiscard]] std::size_t remaining() const noexcept { return input_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == input_.size(); }
  Status skip(std::size_t len) noexcept;

 private:
  ByteSpan input_;
  std::size_t pos_ = 0;
};

}  // namespace brisk::xdr
