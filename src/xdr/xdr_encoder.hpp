// XDR (External Data Representation, RFC 4506) encoder.
//
// The paper builds BRISK's transfer protocol on XDR so that the IS works in
// heterogeneous environments. We implement the subset BRISK needs from
// scratch: all quantities big-endian, every item padded to a 4-byte
// boundary. Unlike rpcgen-style static typing, BRISK sends dynamically
// typed records with a meta-information header (see src/tp/meta_header.*);
// this encoder supplies the primitive wire discipline.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/byte_buffer.hpp"

namespace brisk::xdr {

class Encoder {
 public:
  /// Encodes into an external buffer; appends, never truncates.
  explicit Encoder(ByteBuffer& out) : out_(out) {}

  void put_u32(std::uint32_t value);
  void put_i32(std::int32_t value) { put_u32(static_cast<std::uint32_t>(value)); }
  void put_u64(std::uint64_t value);
  void put_i64(std::int64_t value) { put_u64(static_cast<std::uint64_t>(value)); }
  void put_bool(bool value) { put_u32(value ? 1 : 0); }
  void put_f32(float value);
  void put_f64(double value);

  /// Variable-length opaque: u32 length + bytes + zero padding to 4 bytes.
  void put_opaque(ByteSpan bytes);
  /// Fixed-length opaque: bytes + zero padding to 4 bytes (no length word).
  void put_opaque_fixed(ByteSpan bytes);
  /// XDR string: identical wire format to variable opaque.
  void put_string(std::string_view text);

  /// Bytes written through this encoder so far.
  [[nodiscard]] std::size_t bytes_written() const noexcept { return written_; }

  /// Padding needed to bring `size` to a 4-byte boundary.
  static std::size_t pad_of(std::size_t size) noexcept { return (4 - size % 4) % 4; }
  /// Size of a variable-length opaque/string on the wire, incl. length word.
  static std::size_t opaque_wire_size(std::size_t payload) noexcept {
    return 4 + payload + pad_of(payload);
  }

 private:
  ByteBuffer& out_;
  std::size_t written_ = 0;
};

}  // namespace brisk::xdr
