#include "clock/skew_estimator.hpp"

namespace brisk::clk {

Result<SkewEstimate> estimate_skew(SyncTransport& transport, std::size_t slave,
                                   std::size_t polls_per_round) {
  if (polls_per_round == 0) return Status(Errc::invalid_argument, "polls_per_round == 0");
  SkewEstimate best;
  Status last_error = Status::ok();
  for (std::size_t i = 0; i < polls_per_round; ++i) {
    auto sample = transport.poll(slave);
    if (!sample) {
      last_error = sample.status();
      continue;
    }
    const PollSample& s = sample.value();
    if (best.samples == 0 || s.round_trip() < best.best_rtt) {
      best.skew = s.skew_estimate();
      best.best_rtt = s.round_trip();
    }
    ++best.samples;
  }
  if (best.samples == 0) {
    return last_error.is_ok() ? Status(Errc::io_error, "all polls failed") : last_error;
  }
  return best;
}

}  // namespace brisk::clk
