#include "clock/clock.hpp"

#include "common/time_util.hpp"

namespace brisk::clk {

TimeMicros SystemClock::now() noexcept { return wall_time_micros(); }

SystemClock& SystemClock::instance() noexcept {
  static SystemClock clock;
  return clock;
}

}  // namespace brisk::clk
