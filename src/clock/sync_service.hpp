// Round scheduling for the master side of clock synchronization.
//
// The ISM runs a "clock sync loop" (Fig. 1): a round every `period`, plus
// on-demand extra rounds requested by the on-line sorter when it detects a
// tachyon among causally-related events ("an extra round of the clock
// synchronization algorithm is invoked immediately").
#pragma once

#include <functional>
#include <memory>
#include <variant>
#include <vector>

#include "clock/brisk_sync.hpp"
#include "clock/clock.hpp"
#include "clock/cristian_sync.hpp"

namespace brisk::clk {

enum class SyncAlgorithm { brisk, cristian };

struct SyncServiceConfig {
  SyncAlgorithm algorithm = SyncAlgorithm::brisk;
  TimeMicros period_us = 5'000'000;  // the paper evaluates 5 s rounds
  BriskSyncConfig brisk;
  CristianConfig cristian;
};

/// Drives rounds against a SyncTransport based on a clock, without owning a
/// thread: callers (the ISM event loop, the simulation driver) call
/// `maybe_run_round(now)` whenever convenient and `request_extra_round()`
/// from the CRE matcher.
class SyncService {
 public:
  using RoundObserver = std::function<void(const RoundReport&)>;

  SyncService(SyncServiceConfig config, SyncTransport& transport, Clock& clock);

  /// Runs a round if the period elapsed or an extra round is pending.
  /// Returns true if a round ran.
  bool maybe_run_round();

  /// Unconditionally runs a round now.
  Result<RoundReport> run_round_now();

  /// Called on tachyon detection; the next maybe_run_round() fires.
  void request_extra_round() noexcept { extra_round_pending_ = true; }

  void set_observer(RoundObserver observer) { observer_ = std::move(observer); }

  [[nodiscard]] std::uint64_t rounds_run() const noexcept { return rounds_run_; }
  [[nodiscard]] std::uint64_t extra_rounds_run() const noexcept { return extra_rounds_run_; }
  /// Time of the next scheduled round (for event-loop timeout computation).
  [[nodiscard]] TimeMicros next_round_at() const noexcept { return next_round_at_; }

 private:
  SyncServiceConfig config_;
  SyncTransport& transport_;
  Clock& clock_;
  BriskSync brisk_;
  CristianSync cristian_;
  RoundObserver observer_;
  TimeMicros next_round_at_;
  bool extra_round_pending_ = false;
  std::uint64_t rounds_run_ = 0;
  std::uint64_t extra_rounds_run_ = 0;
};

}  // namespace brisk::clk
