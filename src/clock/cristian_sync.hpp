// Baseline: Cristian's centralized (probabilistic) clock synchronization.
//
// "In the Cristian's algorithm, a master polls slaves periodically, in
// so-called rounds. In each round, it queries each slave for its current
// time ... This is repeated a number of times for each slave to average the
// results. At the end of each round, the master sends the time differences
// to the slaves to adjust their clocks."
//
// Here every slave is driven toward the *master* clock: after a round, a
// slave whose estimated skew is s is adjusted by −s. This is the comparator
// the paper's modified algorithm (brisk_sync.hpp) is evaluated against.
#pragma once

#include <vector>

#include "clock/skew_estimator.hpp"

namespace brisk::clk {

struct CristianConfig {
  std::size_t polls_per_round = 4;
  /// Skews at or below this magnitude are left alone (avoids chasing noise).
  TimeMicros deadband_us = 0;
};

struct SlaveRoundReport {
  std::size_t slave = 0;
  TimeMicros estimated_skew = 0;
  TimeMicros best_rtt = 0;
  TimeMicros correction = 0;  // what was applied to the slave clock
  bool polled_ok = false;
};

struct RoundReport {
  std::vector<SlaveRoundReport> slaves;
  /// Index into `slaves` of the elected reference clock (BRISK algorithm
  /// only; -1 for Cristian).
  int reference_slave = -1;
};

class CristianSync {
 public:
  explicit CristianSync(CristianConfig config) : config_(config) {}

  /// Runs one round over all slaves; returns per-slave estimates and the
  /// corrections applied.
  Result<RoundReport> run_round(SyncTransport& transport);

 private:
  CristianConfig config_;
};

}  // namespace brisk::clk
