// Simulated node clock with configurable initial offset, frequency drift
// and read jitter.
//
// The paper evaluates clock synchronization on eight Sun workstations whose
// oscillators drift apart over a 10-minute run. We cannot assume a fleet of
// drifting machines, so SimClock reproduces the phenomenon: it derives its
// reading from a reference ("true time") clock, applies
//     reading = true + offset + drift_ppm * elapsed / 1e6 + jitter
// and exposes the ground-truth skew so experiments can score sync quality
// exactly rather than estimate it.
#pragma once

#include <cstdint>
#include <random>

#include "clock/clock.hpp"

namespace brisk::clk {

struct SimClockConfig {
  TimeMicros initial_offset_us = 0;  // reading minus true time at epoch
  double drift_ppm = 0.0;            // microseconds gained per second, /1e6
  TimeMicros read_jitter_us = 0;     // uniform ±jitter added per reading
  std::uint64_t seed = 1;            // jitter RNG seed
};

class SimClock final : public Clock {
 public:
  /// `reference` supplies true time and must outlive the SimClock.
  SimClock(Clock& reference, const SimClockConfig& config);

  /// Reading of this (skewed) clock.
  TimeMicros now() noexcept override;

  /// Applies a synchronization correction: all subsequent readings shift by
  /// `delta`. (On a slave node this models updating the EXS correction
  /// value.)
  void adjust(TimeMicros delta) noexcept { adjustment_ += delta; }

  /// Ground truth: reading − true time at the current reference instant,
  /// excluding read jitter. Only the evaluation harness looks at this.
  [[nodiscard]] TimeMicros true_skew() noexcept;

  [[nodiscard]] TimeMicros total_adjustment() const noexcept { return adjustment_; }
  [[nodiscard]] const SimClockConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] TimeMicros skew_at(TimeMicros true_now) const noexcept;

  Clock& reference_;
  SimClockConfig config_;
  TimeMicros epoch_;            // reference time at construction
  TimeMicros adjustment_ = 0;   // cumulative sync corrections
  std::mt19937_64 rng_;
};

}  // namespace brisk::clk
