// Clock abstraction. Every BRISK component that reads time does so through
// Clock so that tests and the clock-synchronization experiments can run on
// simulated clocks with controlled drift (see sim_clock.hpp) while
// production uses the realtime clock, exactly as the paper's sensors use
// gettimeofday.
#pragma once

#include "common/types.hpp"

namespace brisk::clk {

class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds of UTC (for SimClock: of its own skewed
  /// timebase).
  virtual TimeMicros now() noexcept = 0;
};

/// The realtime clock (CLOCK_REALTIME; the paper's gettimeofday).
class SystemClock final : public Clock {
 public:
  TimeMicros now() noexcept override;
  /// Process-wide instance, for call sites without injection plumbing.
  static SystemClock& instance() noexcept;
};

/// A clock advanced explicitly by the test/simulation driver. Determinism
/// anchor for every time-dependent unit test.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeMicros start = 0) noexcept : now_(start) {}
  TimeMicros now() noexcept override { return now_; }
  void set(TimeMicros t) noexcept { now_ = t; }
  void advance(TimeMicros delta) noexcept { now_ += delta; }

 private:
  TimeMicros now_;
};

}  // namespace brisk::clk
