#include "clock/sync_service.hpp"

#include "common/logging.hpp"

namespace brisk::clk {

SyncService::SyncService(SyncServiceConfig config, SyncTransport& transport, Clock& clock)
    : config_(config),
      transport_(transport),
      clock_(clock),
      brisk_(config.brisk),
      cristian_(config.cristian),
      next_round_at_(clock.now() + config.period_us) {}

bool SyncService::maybe_run_round() {
  const TimeMicros now = clock_.now();
  const bool periodic_due = now >= next_round_at_;
  if (!periodic_due && !extra_round_pending_) return false;
  if (extra_round_pending_ && !periodic_due) ++extra_rounds_run_;
  extra_round_pending_ = false;
  auto report = run_round_now();
  if (!report) {
    BRISK_LOG_WARN << "clock sync round failed: " << report.status().to_string();
  }
  next_round_at_ = now + config_.period_us;
  return true;
}

Result<RoundReport> SyncService::run_round_now() {
  ++rounds_run_;
  Result<RoundReport> report =
      config_.algorithm == SyncAlgorithm::brisk ? brisk_.run_round(transport_)
                                                : cristian_.run_round(transport_);
  if (report && observer_) observer_(report.value());
  return report;
}

}  // namespace brisk::clk
