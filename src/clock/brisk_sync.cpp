#include "clock/brisk_sync.hpp"

namespace brisk::clk {

Result<RoundReport> BriskSync::run_round(SyncTransport& transport) {
  RoundReport report;
  const std::size_t n = transport.slave_count();
  report.slaves.reserve(n);

  // Phase 1: estimate every slave's skew relative to the master clock —
  // the master is only a common reference point here.
  for (std::size_t i = 0; i < n; ++i) {
    SlaveRoundReport slave;
    slave.slave = i;
    auto estimate = estimate_skew(transport, i, config_.polls_per_round);
    if (estimate) {
      slave.polled_ok = true;
      slave.estimated_skew = estimate.value().skew;
      slave.best_rtt = estimate.value().best_rtt;
    }
    report.slaves.push_back(slave);
  }

  // Phase 2: elect the most-ahead clock as the reference.
  int ref = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (!report.slaves[i].polled_ok) continue;
    if (ref < 0 ||
        report.slaves[i].estimated_skew > report.slaves[static_cast<std::size_t>(ref)].estimated_skew) {
      ref = static_cast<int>(i);
    }
  }
  if (ref < 0) return Status(Errc::io_error, "no slave reachable this round");
  report.reference_slave = ref;
  const TimeMicros ref_skew = report.slaves[static_cast<std::size_t>(ref)].estimated_skew;

  // Phase 3: relative skews of the other clocks behind the reference, and
  // their average.
  TimeMicros total_rel = 0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!report.slaves[i].polled_ok || static_cast<int>(i) == ref) continue;
    total_rel += ref_skew - report.slaves[i].estimated_skew;
    ++counted;
  }
  if (counted == 0) return report;  // nothing to synchronize against
  const TimeMicros avg_rel = total_rel / static_cast<TimeMicros>(counted);

  // Phase 4: advance only the clocks whose relative skew is at or above the
  // average — full correction above the threshold, a conservative fraction
  // below it. ("At or above" rather than the paper's strict "above": with
  // two slaves the lone laggard IS the average and a strict comparison
  // would never converge; ties at the average are exactly as safe to move
  // as skews just over it.)
  for (std::size_t i = 0; i < n; ++i) {
    SlaveRoundReport& slave = report.slaves[i];
    if (!slave.polled_ok || static_cast<int>(i) == ref) continue;
    const TimeMicros rel = ref_skew - slave.estimated_skew;
    if (rel < avg_rel || rel <= 0) continue;
    const TimeMicros correction =
        avg_rel > config_.avg_threshold_us
            ? rel
            : static_cast<TimeMicros>(config_.conservative_fraction * static_cast<double>(rel));
    if (correction <= 0) continue;
    Status st = transport.adjust(i, correction);
    if (st) slave.correction = correction;
  }
  return report;
}

}  // namespace brisk::clk
