#include "clock/sim_clock.hpp"

namespace brisk::clk {

SimClock::SimClock(Clock& reference, const SimClockConfig& config)
    : reference_(reference), config_(config), epoch_(reference.now()), rng_(config.seed) {}

TimeMicros SimClock::skew_at(TimeMicros true_now) const noexcept {
  const TimeMicros elapsed = true_now - epoch_;
  const auto drift = static_cast<TimeMicros>(config_.drift_ppm * static_cast<double>(elapsed) / 1e6);
  return config_.initial_offset_us + drift + adjustment_;
}

TimeMicros SimClock::now() noexcept {
  const TimeMicros true_now = reference_.now();
  TimeMicros jitter = 0;
  if (config_.read_jitter_us > 0) {
    std::uniform_int_distribution<TimeMicros> dist(-config_.read_jitter_us,
                                                   config_.read_jitter_us);
    jitter = dist(rng_);
  }
  return true_now + skew_at(true_now) + jitter;
}

TimeMicros SimClock::true_skew() noexcept { return skew_at(reference_.now()); }

}  // namespace brisk::clk
