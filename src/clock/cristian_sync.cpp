#include "clock/cristian_sync.hpp"

#include <cstdlib>

namespace brisk::clk {

Result<RoundReport> CristianSync::run_round(SyncTransport& transport) {
  RoundReport report;
  const std::size_t n = transport.slave_count();
  report.slaves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SlaveRoundReport slave;
    slave.slave = i;
    auto estimate = estimate_skew(transport, i, config_.polls_per_round);
    if (estimate) {
      slave.polled_ok = true;
      slave.estimated_skew = estimate.value().skew;
      slave.best_rtt = estimate.value().best_rtt;
      if (std::llabs(slave.estimated_skew) > config_.deadband_us) {
        slave.correction = -slave.estimated_skew;
        Status st = transport.adjust(i, slave.correction);
        if (!st) slave.correction = 0;
      }
    }
    report.slaves.push_back(slave);
  }
  return report;
}

}  // namespace brisk::clk
