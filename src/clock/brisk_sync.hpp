// BRISK's modified Cristian synchronization (Section 3.3 of the paper).
//
// Differences from the baseline:
//  * The master (ISM) clock is only a *common reference point* for
//    computing relative skews — EXS clocks are synchronized to each other,
//    not to the ISM. ("it is important that the EXS clocks be as close to
//    each other as possible, while it is not necessary for them to be close
//    to the ISM clock")
//  * The EXS clock with the maximum positive skew relative to the ISM (the
//    most-ahead clock) is elected as the reference; every other clock's
//    relative skew is its (absolute) distance behind the reference.
//  * Only clocks whose relative skew is ABOVE the average are advanced —
//    conservative against network noise, so a noisy estimate cannot
//    erroneously promote another clock as the fastest.
//  * Correction value: the full relative skew when the average skew is
//    above a small threshold; otherwise a fixed fraction of it (0.7 in the
//    paper's implementation) — again conservative, since the clocks can
//    never be perfectly synchronized. The price is potentially slower
//    convergence; the gain is no overshoot (clocks only ever move forward,
//    at the cost of a small positive drift of the ensemble).
#pragma once

#include "clock/cristian_sync.hpp"
#include "clock/skew_estimator.hpp"

namespace brisk::clk {

struct BriskSyncConfig {
  std::size_t polls_per_round = 4;
  /// The "small threshold" on the average relative skew.
  TimeMicros avg_threshold_us = 100;
  /// The "fixed portion" applied below the threshold.
  double conservative_fraction = 0.7;
};

class BriskSync {
 public:
  explicit BriskSync(BriskSyncConfig config) : config_(config) {}

  /// One synchronization round. Reports the elected reference slave, the
  /// per-slave relative skews and the corrections applied.
  Result<RoundReport> run_round(SyncTransport& transport);

  [[nodiscard]] const BriskSyncConfig& config() const noexcept { return config_; }

 private:
  BriskSyncConfig config_;
};

}  // namespace brisk::clk
