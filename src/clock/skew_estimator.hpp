// Skew estimation from poll samples — the measurement primitive both
// synchronization algorithms (Cristian baseline and the BRISK modification)
// are built on.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace brisk::clk {

/// One master→slave time poll: the master records its clock when the query
/// leaves (`local_send`) and when the answer returns (`local_recv`); the
/// slave reports its clock reading `remote_time` taken while serving the
/// query.
struct PollSample {
  TimeMicros local_send = 0;
  TimeMicros remote_time = 0;
  TimeMicros local_recv = 0;

  [[nodiscard]] TimeMicros round_trip() const noexcept { return local_recv - local_send; }

  /// Cristian's estimate of (slave clock − master clock), assuming the
  /// reply took half the round trip: remote_time − (local_send + rtt/2).
  [[nodiscard]] TimeMicros skew_estimate() const noexcept {
    return remote_time - (local_send + round_trip() / 2);
  }
};

/// How the master abstracts "poll slave i / adjust slave i". Implemented
/// over real sockets by ism::Ism + the transfer protocol, and over
/// simulated clocks + latency models by sim::SimSyncTransport.
class SyncTransport {
 public:
  virtual ~SyncTransport() = default;
  [[nodiscard]] virtual std::size_t slave_count() const noexcept = 0;
  /// One time poll of slave `index`.
  virtual Result<PollSample> poll(std::size_t index) = 0;
  /// Tells slave `index` to shift its clock (its correction value) by
  /// `delta` microseconds (positive = advance).
  virtual Status adjust(std::size_t index, TimeMicros delta) = 0;
};

/// Combines `polls_per_round` samples into one skew estimate. Following
/// Cristian's probabilistic argument, the sample with the smallest round
/// trip bounds the error tightest, so we take the minimum-RTT sample's
/// estimate (not a plain average, which LAN noise would corrupt).
struct SkewEstimate {
  TimeMicros skew = 0;        // estimated slave − master clock difference
  TimeMicros best_rtt = 0;    // round trip of the chosen sample
  std::size_t samples = 0;    // samples that succeeded
};

Result<SkewEstimate> estimate_skew(SyncTransport& transport, std::size_t slave,
                                   std::size_t polls_per_round);

}  // namespace brisk::clk
