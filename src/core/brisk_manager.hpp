// BriskManager: the manager-side facade of the public API.
//
// Owns the ISM, its shared-memory output ring, and the optional PICL trace
// sink; hands out consumers attached to the output ring.
//
//   brisk::ManagerConfig cfg;
//   auto manager = brisk::BriskManager::create(cfg);
//   std::uint16_t port = manager.value()->port();   // give this to the EXSes
//   auto consumer = manager.value()->make_consumer();
//   ... manager.value()->run() in the ISM process/thread ...
#pragma once

#include <memory>

#include "consumers/shm_consumer.hpp"
#include "core/knobs.hpp"
#include "ism/ism.hpp"
#include "shm/shared_region.hpp"

namespace brisk {

class BriskManager {
 public:
  static Result<std::unique_ptr<BriskManager>> create(
      const ManagerConfig& config, clk::Clock& clock = clk::SystemClock::instance());

  /// Registers an extra output sink (e.g. a vo::VoSink) under its own
  /// name() before records flow. Fails on a duplicate name.
  Status add_sink(std::shared_ptr<ism::Sink> sink) { return sinks_->add(std::move(sink)); }
  /// Registers under an explicit name (several sinks of one kind).
  Status add_sink(std::string name, std::shared_ptr<ism::Sink> sink) {
    return sinks_->add(std::move(name), std::move(sink));
  }
  [[nodiscard]] ism::SinkRegistry& sinks() noexcept { return *sinks_; }

  [[nodiscard]] std::uint16_t port() const noexcept { return ism_->port(); }
  [[nodiscard]] ism::Ism& ism() noexcept { return *ism_; }

  /// A consumer attached to the shared-memory output ring.
  Result<consumers::ShmConsumer> make_consumer();

  Status run() { return ism_->run(); }
  Status run_for(TimeMicros duration) { return ism_->run_for(duration); }
  void stop() noexcept { ism_->stop(); }
  Status drain() { return ism_->drain(); }

  [[nodiscard]] const ManagerConfig& config() const noexcept { return config_; }

 private:
  BriskManager(ManagerConfig config, shm::SharedRegion output_region,
               shm::RingBuffer output_ring, std::shared_ptr<ism::SinkRegistry> sinks)
      : config_(std::move(config)),
        output_region_(std::move(output_region)),
        output_ring_(output_ring),
        sinks_(std::move(sinks)) {}

  ManagerConfig config_;
  shm::SharedRegion output_region_;
  shm::RingBuffer output_ring_;
  std::shared_ptr<ism::SinkRegistry> sinks_;
  std::unique_ptr<ism::Ism> ism_;
};

}  // namespace brisk
