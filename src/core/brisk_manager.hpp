// BriskManager: the manager-side facade of the public API.
//
// Owns the ISM, its consumer gateway, the shared-memory output ring, and
// the optional PICL trace sink; hands out consumers attached to the output
// ring or subscribed over the gateway's TCP port.
//
//   brisk::ManagerConfig cfg;
//   auto manager = brisk::BriskManager::create(cfg);
//   std::uint16_t port = manager.value()->port();   // give this to the EXSes
//   auto consumer = manager.value()->make_consumer();
//   ... manager.value()->run() in the ISM process/thread ...
#pragma once

#include <memory>

#include "consumers/shm_consumer.hpp"
#include "core/knobs.hpp"
#include "ism/gateway.hpp"
#include "ism/ism.hpp"
#include "shm/shared_region.hpp"

namespace brisk {

class BriskManager {
 public:
  static Result<std::unique_ptr<BriskManager>> create(
      const ManagerConfig& config, clk::Clock& clock = clk::SystemClock::instance());

  /// Registers an extra output path as an unfiltered gateway subscriber
  /// (e.g. a vo::VoSink) under its own name(). Fails on a duplicate name.
  Status add_sink(std::shared_ptr<ism::Sink> sink) {
    if (!sink) return Status(Errc::invalid_argument, "null sink");
    std::string name = sink->name();
    return gateway_->subscribe(std::move(name), std::move(sink));
  }
  /// Registers under an explicit name, optionally with a filter.
  Status add_sink(std::string name, std::shared_ptr<ism::Sink> sink,
                  ism::SubscriptionOptions options = {}) {
    return gateway_->subscribe(std::move(name), std::move(sink), std::move(options));
  }
  /// The subscription gateway: per-subscriber filters, aggregation
  /// subscriptions, and (when enabled) the TCP consumer port.
  [[nodiscard]] ism::ConsumerGateway& gateway() noexcept { return *gateway_; }

  [[nodiscard]] std::uint16_t port() const noexcept { return ism_->port(); }
  /// TCP consumer port (0 when the gateway listener is disabled).
  [[nodiscard]] std::uint16_t consumer_port() const noexcept {
    return gateway_->consumer_port();
  }
  [[nodiscard]] ism::Ism& ism() noexcept { return *ism_; }
  /// The upstream relay egress when this manager runs as a relay tier
  /// (config.relay_enabled); null otherwise.
  [[nodiscard]] const std::shared_ptr<ism::RelayEgress>& relay() const noexcept {
    return relay_;
  }

  /// A consumer attached to the shared-memory output ring.
  Result<consumers::ShmConsumer> make_consumer();

  Status run() { return ism_->run(); }
  Status run_for(TimeMicros duration) { return ism_->run_for(duration); }
  void stop() noexcept { ism_->stop(); }
  Status drain() { return ism_->drain(); }

  [[nodiscard]] const ManagerConfig& config() const noexcept { return config_; }

 private:
  BriskManager(ManagerConfig config, shm::SharedRegion output_region,
               shm::RingBuffer output_ring, std::shared_ptr<ism::ConsumerGateway> gateway)
      : config_(std::move(config)),
        output_region_(std::move(output_region)),
        output_ring_(output_ring),
        gateway_(std::move(gateway)) {}

  ManagerConfig config_;
  shm::SharedRegion output_region_;
  shm::RingBuffer output_ring_;
  std::shared_ptr<ism::ConsumerGateway> gateway_;
  std::shared_ptr<ism::RelayEgress> relay_;
  std::unique_ptr<ism::Ism> ism_;
};

}  // namespace brisk
