#include "core/brisk_manager.hpp"

namespace brisk {

Result<std::unique_ptr<BriskManager>> BriskManager::create(const ManagerConfig& config,
                                                           clk::Clock& clock) {
  Status valid = config.validate();
  if (!valid) return valid;
  ManagerConfig effective = config;
  if (effective.relay_enabled) {
    // A relay tier must not match CRE pairs locally: a consequence whose
    // reason lives behind a sibling relay would time out unrepaired and the
    // root's output would diverge from a flat deployment. Matching runs
    // exactly once, at the root.
    effective.ism.cre.forward_only = true;
  }

  const std::size_t bytes = shm::RingBuffer::region_size(effective.output_ring_capacity);
  auto region = effective.output_shm_name.empty()
                    ? shm::SharedRegion::create_anonymous(bytes)
                    : shm::SharedRegion::create_named(effective.output_shm_name, bytes);
  if (!region) return region.status();
  auto ring = shm::RingBuffer::init(region.value().data(), effective.output_ring_capacity);
  if (!ring) return ring.status();

  auto gateway = ism::ConsumerGateway::create(effective.gateway);
  if (!gateway) return gateway.status();
  // The classic output paths are built-in, unfiltered subscribers.
  Status st = gateway.value()->subscribe("shm", std::make_shared<ism::ShmSink>(ring.value()));
  if (!st) return st;
  if (!effective.picl_trace_path.empty()) {
    auto writer = picl::PiclWriter::open(effective.picl_trace_path, effective.picl_options);
    if (!writer) return writer.status();
    st = gateway.value()->subscribe(
        "picl", std::make_shared<ism::PiclFileSink>(std::move(writer).value()));
    if (!st) return st;
  }

  auto manager = std::unique_ptr<BriskManager>(new BriskManager(
      effective, std::move(region).value(), ring.value(), std::move(gateway).value()));
  if (effective.relay_enabled) {
    // Upstream egress rides the gateway like any other sink: it sees the
    // same post-merge, post-CRE ordered stream the shm ring sees, plus the
    // gateway's tick/drain propagation.
    auto relay = ism::RelayEgress::connect(effective.relay, clock);
    if (!relay) return relay.status();
    manager->relay_ = std::move(relay).value();
    st = manager->gateway_->subscribe("relay", manager->relay_);
    if (!st) return st;
  }
  auto ism = ism::Ism::start(effective.ism, clock, manager->gateway_);
  if (!ism) return ism.status();
  manager->ism_ = std::move(ism).value();
  manager->gateway_->register_metrics(manager->ism_->metrics());
  // One ring per daemon: gateway and relay events land in the ISM's flight
  // recorder so a single SIGUSR1 dump (or 0xFF03 drain) covers the process.
  manager->gateway_->set_flight_recorder(&manager->ism_->flight());
  if (manager->relay_) {
    manager->relay_->set_flight_recorder(&manager->ism_->flight());
  }
  return manager;
}

Result<consumers::ShmConsumer> BriskManager::make_consumer() {
  // Re-attach so the consumer has its own cursor view... the ring is SPSC:
  // the single consumer is whoever reads; multiple consumers would race.
  // Hand out the one ring; callers coordinate (typically exactly one tool).
  return consumers::ShmConsumer(output_ring_);
}

}  // namespace brisk
