#include "core/brisk_manager.hpp"

namespace brisk {

Result<std::unique_ptr<BriskManager>> BriskManager::create(const ManagerConfig& config,
                                                           clk::Clock& clock) {
  Status valid = config.validate();
  if (!valid) return valid;

  const std::size_t bytes = shm::RingBuffer::region_size(config.output_ring_capacity);
  auto region = config.output_shm_name.empty()
                    ? shm::SharedRegion::create_anonymous(bytes)
                    : shm::SharedRegion::create_named(config.output_shm_name, bytes);
  if (!region) return region.status();
  auto ring = shm::RingBuffer::init(region.value().data(), config.output_ring_capacity);
  if (!ring) return ring.status();

  auto gateway = ism::ConsumerGateway::create(config.gateway);
  if (!gateway) return gateway.status();
  // The classic output paths are built-in, unfiltered subscribers.
  Status st = gateway.value()->subscribe("shm", std::make_shared<ism::ShmSink>(ring.value()));
  if (!st) return st;
  if (!config.picl_trace_path.empty()) {
    auto writer = picl::PiclWriter::open(config.picl_trace_path, config.picl_options);
    if (!writer) return writer.status();
    st = gateway.value()->subscribe(
        "picl", std::make_shared<ism::PiclFileSink>(std::move(writer).value()));
    if (!st) return st;
  }

  auto manager = std::unique_ptr<BriskManager>(new BriskManager(
      config, std::move(region).value(), ring.value(), std::move(gateway).value()));
  auto ism = ism::Ism::start(config.ism, clock, manager->gateway_);
  if (!ism) return ism.status();
  manager->ism_ = std::move(ism).value();
  manager->gateway_->register_metrics(manager->ism_->metrics());
  return manager;
}

Result<consumers::ShmConsumer> BriskManager::make_consumer() {
  // Re-attach so the consumer has its own cursor view... the ring is SPSC:
  // the single consumer is whoever reads; multiple consumers would race.
  // Hand out the one ring; callers coordinate (typically exactly one tool).
  return consumers::ShmConsumer(output_ring_);
}

}  // namespace brisk
