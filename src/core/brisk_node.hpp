// BriskNode: the node-side facade of the public API.
//
// One BriskNode per node of the target system. It owns the shared-memory
// ring directory, hands out internal sensors to application code, and
// starts the external sensor that ships everything to the ISM:
//
//   brisk::NodeConfig cfg;            // knobs
//   auto node = brisk::BriskNode::create(cfg);
//   auto sensor = node.value()->make_sensor();
//   BRISK_NOTICE(sensor.value(), kMyEvent, brisk::sensors::x_i32(v));
//   auto exs = node.value()->connect_exs("127.0.0.1", ism_port);
//   ... exs.value()->run() in the EXS process/thread ...
#pragma once

#include <memory>

#include "clock/clock.hpp"
#include "core/knobs.hpp"
#include "lis/external_sensor.hpp"
#include "sensors/sensor.hpp"
#include "shm/multi_ring.hpp"
#include "shm/shared_region.hpp"

namespace brisk {

class BriskNode {
 public:
  /// Creates the node's shared region (named if config.shm_name is set,
  /// anonymous otherwise) and formats the ring directory in it.
  static Result<std::unique_ptr<BriskNode>> create(const NodeConfig& config,
                                                   clk::Clock& clock = clk::SystemClock::instance());

  /// Attaches to an existing named node region from another process (the
  /// instrumented application attaching to the region brisk_exs created).
  static Result<std::unique_ptr<BriskNode>> attach(const NodeConfig& config,
                                                   clk::Clock& clock = clk::SystemClock::instance());

  /// Claims a producer slot and binds a Sensor to it. One per producer
  /// (process or thread); at most config.sensor_slots total.
  Result<sensors::Sensor> make_sensor();

  /// Connects the external sensor to the ISM. Call from the process that
  /// will run the EXS loop.
  Result<std::unique_ptr<lis::ExternalSensor>> connect_exs(const std::string& ism_host,
                                                           std::uint16_t ism_port);

  [[nodiscard]] shm::MultiRing& rings() noexcept { return rings_; }
  [[nodiscard]] const NodeConfig& config() const noexcept { return config_; }
  [[nodiscard]] clk::Clock& clock() noexcept { return clock_; }

 private:
  BriskNode(NodeConfig config, clk::Clock& clock, shm::SharedRegion region, shm::MultiRing rings)
      : config_(std::move(config)),
        clock_(clock),
        region_(std::move(region)),
        rings_(rings) {}

  NodeConfig config_;
  clk::Clock& clock_;
  shm::SharedRegion region_;
  shm::MultiRing rings_;
};

}  // namespace brisk
