// The collected tuning knobs of a BRISK deployment.
//
// "we added tuning knobs to many of BRISK's subsystems, so that users can
// trade-off among the various simple and complex IS performance metrics" —
// NodeConfig gathers the LIS-side knobs, ManagerConfig the ISM-side ones,
// and describe() renders any configuration for logs and experiment records.
#pragma once

#include <string>

#include "clock/sync_service.hpp"
#include "ism/gateway.hpp"
#include "ism/ism.hpp"
#include "ism/relay.hpp"
#include "lis/exs_config.hpp"

namespace brisk {

struct NodeConfig {
  NodeId node = 0;
  /// Producer slots in the node's ring directory (max concurrent user
  /// processes/threads using internal sensors on this node).
  std::uint32_t sensor_slots = 8;
  /// Data bytes per producer ring.
  std::uint32_t ring_capacity = 1u << 20;
  /// Name for a POSIX shm segment ("/brisk-node-3") so independently
  /// started executables can attach; empty = anonymous (fork-shared).
  std::string shm_name;
  /// Fraction of records carrying an end-to-end trace annotation (0 = off,
  /// 1 = every record). Applied per-record by sensors this node creates.
  double trace_sample_rate = 0.0;
  lis::ExsConfig exs;

  [[nodiscard]] Status validate() const;
};

struct ManagerConfig {
  ism::IsmConfig ism;
  /// Data bytes of the shared-memory output ring consumers read.
  std::uint32_t output_ring_capacity = 1u << 20;
  /// Name for the output shm segment; empty = anonymous (fork-shared).
  std::string output_shm_name;
  /// Optional PICL ASCII trace file ("" = disabled).
  std::string picl_trace_path;
  picl::PiclOptions picl_options;
  /// Consumer subscription gateway (tcp_enabled starts the TCP listener;
  /// the in-process side is always on — the shm ring and PICL sink are
  /// built-in subscribers).
  ism::GatewayConfig gateway;
  /// Federation: when enabled this ISM is a *relay* — its post-merge,
  /// post-CRE ordered output is re-batched onto an upstream link to the
  /// parent ISM (relay.parent_host:parent_port), and local CRE matching is
  /// switched to forward-only so matching happens exactly once, at the root.
  bool relay_enabled = false;
  ism::RelayConfig relay;

  [[nodiscard]] Status validate() const;
};

/// Human-readable knob dump (one "key = value" per line).
std::string describe(const NodeConfig& config);
std::string describe(const ManagerConfig& config);

}  // namespace brisk
