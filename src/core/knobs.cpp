#include "core/knobs.hpp"

#include <cinttypes>
#include <cstdio>

namespace brisk {
namespace {

void line(std::string& out, const char* key, long long value) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s = %lld\n", key, value);
  out += buf;
}

void line(std::string& out, const char* key, double value) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s = %g\n", key, value);
  out += buf;
}

void line(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += " = \"";
  out += value;
  out += "\"\n";
}

}  // namespace

Status NodeConfig::validate() const {
  if (sensor_slots == 0) return Status(Errc::invalid_argument, "sensor_slots == 0");
  if (ring_capacity < 1024) return Status(Errc::invalid_argument, "ring_capacity < 1024");
  if (trace_sample_rate < 0.0 || trace_sample_rate > 1.0) {
    return Status(Errc::invalid_argument, "trace_sample_rate outside [0, 1]");
  }
  return exs.validate();
}

Status ManagerConfig::validate() const {
  if (output_ring_capacity < 1024) {
    return Status(Errc::invalid_argument, "output_ring_capacity < 1024");
  }
  if (ism.select_timeout_us <= 0) {
    return Status(Errc::invalid_argument, "ism.select_timeout_us <= 0");
  }
  if (ism.sorter.min_frame_us < 0 || ism.sorter.max_frame_us < ism.sorter.min_frame_us) {
    return Status(Errc::invalid_argument, "sorter frame bounds inverted");
  }
  if (ism.peer_idle_timeout_us < 0) {
    return Status(Errc::invalid_argument, "negative ism.peer_idle_timeout_us");
  }
  if (ism.quarantine_timeout_us < 0) {
    return Status(Errc::invalid_argument, "negative ism.quarantine_timeout_us");
  }
  if (ism.ack_period_us < 0) {
    return Status(Errc::invalid_argument, "negative ism.ack_period_us");
  }
  if (ism.gap_skip_timeout_us < 0) {
    return Status(Errc::invalid_argument, "negative ism.gap_skip_timeout_us");
  }
  if (ism.reader_threads > 64) {
    return Status(Errc::invalid_argument, "ism.reader_threads > 64");
  }
  if (ism.reader_threads > 0 && ism.ingest_queue_frames < 2) {
    return Status(Errc::invalid_argument, "ism.ingest_queue_frames < 2");
  }
  if (ism.sorter_shards < 1 || ism.sorter_shards > 64) {
    return Status(Errc::invalid_argument, "ism.sorter_shards outside [1, 64]");
  }
  if (ism.sorter_shards > 1 && ism.shard_queue_records < 2) {
    return Status(Errc::invalid_argument, "ism.shard_queue_records < 2");
  }
  if (ism.stats_interval_us < 0) {
    return Status(Errc::invalid_argument, "negative ism.stats_interval_us");
  }
  Status gw = gateway.validate();
  if (!gw) return gw;
  if (relay_enabled) {
    if (relay.parent_port == 0) {
      return Status(Errc::invalid_argument, "relay.parent_port == 0");
    }
    if (relay.relay_node == 0) {
      return Status(Errc::invalid_argument, "relay.relay_node == 0");
    }
    if (relay.queue_records < 2 || relay.batch_max_records == 0) {
      return Status(Errc::invalid_argument, "relay queue/batch sizes too small");
    }
  }
  return Status::ok();
}

std::string describe(const NodeConfig& config) {
  std::string out = "[brisk.node]\n";
  line(out, "node", static_cast<long long>(config.node));
  line(out, "sensor_slots", static_cast<long long>(config.sensor_slots));
  line(out, "ring_capacity", static_cast<long long>(config.ring_capacity));
  line(out, "shm_name", config.shm_name);
  line(out, "trace_sample_rate", config.trace_sample_rate);
  line(out, "exs.batch_max_records", static_cast<long long>(config.exs.batch_max_records));
  line(out, "exs.batch_max_bytes", static_cast<long long>(config.exs.batch_max_bytes));
  line(out, "exs.batch_max_age_us", static_cast<long long>(config.exs.batch_max_age_us));
  line(out, "exs.drain_burst", static_cast<long long>(config.exs.drain_burst));
  line(out, "exs.select_timeout_us", static_cast<long long>(config.exs.select_timeout_us));
  line(out, "exs.poller", std::string(net::to_string(config.exs.poller)));
  line(out, "exs.replay_buffer_batches",
       static_cast<long long>(config.exs.replay_buffer_batches));
  line(out, "exs.replay_buffer_bytes",
       static_cast<long long>(config.exs.replay_buffer_bytes));
  line(out, "exs.reconnect_backoff_base_us",
       static_cast<long long>(config.exs.reconnect_backoff_base_us));
  line(out, "exs.reconnect_backoff_cap_us",
       static_cast<long long>(config.exs.reconnect_backoff_cap_us));
  line(out, "exs.reconnect_jitter", config.exs.reconnect_jitter);
  line(out, "exs.max_reconnect_attempts",
       static_cast<long long>(config.exs.max_reconnect_attempts));
  line(out, "exs.heartbeat_period_us", static_cast<long long>(config.exs.heartbeat_period_us));
  line(out, "exs.ism_silence_timeout_us",
       static_cast<long long>(config.exs.ism_silence_timeout_us));
  return out;
}

std::string describe(const ManagerConfig& config) {
  std::string out = "[brisk.manager]\n";
  line(out, "ism.port", static_cast<long long>(config.ism.port));
  line(out, "ism.select_timeout_us", static_cast<long long>(config.ism.select_timeout_us));
  line(out, "ism.poller", std::string(net::to_string(config.ism.poller)));
  line(out, "ism.readiness_pump", static_cast<long long>(config.ism.readiness_pump ? 1 : 0));
  line(out, "ism.outbox_stall_timeout_us",
       static_cast<long long>(config.ism.outbox_stall_timeout_us));
  line(out, "ism.reader_threads", static_cast<long long>(config.ism.reader_threads));
  line(out, "ism.ingest_queue_frames",
       static_cast<long long>(config.ism.ingest_queue_frames));
  line(out, "ism.sorter_shards", static_cast<long long>(config.ism.sorter_shards));
  line(out, "ism.shard_queue_records",
       static_cast<long long>(config.ism.shard_queue_records));
  line(out, "ism.stats_interval_us", static_cast<long long>(config.ism.stats_interval_us));
  line(out, "sorter.initial_frame_us", static_cast<long long>(config.ism.sorter.initial_frame_us));
  line(out, "sorter.min_frame_us", static_cast<long long>(config.ism.sorter.min_frame_us));
  line(out, "sorter.max_frame_us", static_cast<long long>(config.ism.sorter.max_frame_us));
  line(out, "sorter.decay_half_life_s", config.ism.sorter.decay_half_life_s);
  line(out, "sorter.adaptive", static_cast<long long>(config.ism.sorter.adaptive ? 1 : 0));
  line(out, "sorter.max_pending", static_cast<long long>(config.ism.sorter.max_pending));
  line(out, "cre.hold_timeout_us", static_cast<long long>(config.ism.cre.hold_timeout_us));
  line(out, "sync.enable", static_cast<long long>(config.ism.enable_sync ? 1 : 0));
  line(out, "sync.period_us", static_cast<long long>(config.ism.sync.period_us));
  line(out, "sync.algorithm",
       std::string(config.ism.sync.algorithm == clk::SyncAlgorithm::brisk ? "brisk" : "cristian"));
  line(out, "sync.brisk.polls_per_round",
       static_cast<long long>(config.ism.sync.brisk.polls_per_round));
  line(out, "sync.brisk.avg_threshold_us",
       static_cast<long long>(config.ism.sync.brisk.avg_threshold_us));
  line(out, "sync.brisk.conservative_fraction", config.ism.sync.brisk.conservative_fraction);
  line(out, "ism.peer_idle_timeout_us",
       static_cast<long long>(config.ism.peer_idle_timeout_us));
  line(out, "ism.quarantine_timeout_us",
       static_cast<long long>(config.ism.quarantine_timeout_us));
  line(out, "ism.ack_period_us", static_cast<long long>(config.ism.ack_period_us));
  line(out, "ism.gap_skip_timeout_us",
       static_cast<long long>(config.ism.gap_skip_timeout_us));
  line(out, "output_ring_capacity", static_cast<long long>(config.output_ring_capacity));
  line(out, "output_shm_name", config.output_shm_name);
  line(out, "picl_trace_path", config.picl_trace_path);
  line(out, "relay.enabled", static_cast<long long>(config.relay_enabled ? 1 : 0));
  if (config.relay_enabled) {
    line(out, "relay.parent", config.relay.parent_host + ":" +
                                  std::to_string(config.relay.parent_port));
    line(out, "relay.node", static_cast<long long>(config.relay.relay_node));
    line(out, "relay.queue_records", static_cast<long long>(config.relay.queue_records));
    line(out, "relay.batch_max_records",
         static_cast<long long>(config.relay.batch_max_records));
    line(out, "relay.batch_max_age_us",
         static_cast<long long>(config.relay.batch_max_age_us));
    line(out, "relay.idle_watermark_period_us",
         static_cast<long long>(config.relay.idle_watermark_period_us));
    line(out, "relay.aggregate_metrics",
         static_cast<long long>(config.relay.aggregate_metrics ? 1 : 0));
    if (config.relay.aggregate_metrics) {
      line(out, "relay.metrics_flush_period_us",
           static_cast<long long>(config.relay.metrics_flush_period_us));
    }
  }
  line(out, "gateway.tcp_enabled", static_cast<long long>(config.gateway.tcp_enabled ? 1 : 0));
  if (config.gateway.tcp_enabled) {
    line(out, "gateway.consumer_port", static_cast<long long>(config.gateway.consumer_port));
    line(out, "gateway.poller", std::string(net::to_string(config.gateway.poller)));
    line(out, "gateway.lane_records", static_cast<long long>(config.gateway.lane_records));
    line(out, "gateway.queue_records", static_cast<long long>(config.gateway.queue_records));
    line(out, "gateway.max_queue_records",
         static_cast<long long>(config.gateway.max_queue_records));
    line(out, "gateway.outbox_bytes", static_cast<long long>(config.gateway.outbox_bytes));
    line(out, "gateway.overrun_grace_us",
         static_cast<long long>(config.gateway.overrun_grace_us));
    line(out, "gateway.agg_window_us", static_cast<long long>(config.gateway.agg_window_us));
    line(out, "gateway.max_subscribers",
         static_cast<long long>(config.gateway.max_subscribers));
  }
  return out;
}

}  // namespace brisk
