// Library version, mirroring the paper's "first public version ...
// BRISK-1.0" lineage.
#pragma once

namespace brisk {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

/// "1.0.0"
const char* version_string() noexcept;

}  // namespace brisk
