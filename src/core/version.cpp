#include "core/version.hpp"

namespace brisk {

const char* version_string() noexcept { return "1.0.0"; }

}  // namespace brisk
