#include "core/brisk_node.hpp"

namespace brisk {

Result<std::unique_ptr<BriskNode>> BriskNode::create(const NodeConfig& config,
                                                     clk::Clock& clock) {
  Status valid = config.validate();
  if (!valid) return valid;
  const std::size_t bytes =
      shm::MultiRing::region_size(config.sensor_slots, config.ring_capacity);
  auto region = config.shm_name.empty()
                    ? shm::SharedRegion::create_anonymous(bytes)
                    : shm::SharedRegion::create_named(config.shm_name, bytes);
  if (!region) return region.status();
  auto rings =
      shm::MultiRing::init(region.value().data(), config.sensor_slots, config.ring_capacity);
  if (!rings) return rings.status();
  return std::unique_ptr<BriskNode>(
      new BriskNode(config, clock, std::move(region).value(), rings.value()));
}

Result<std::unique_ptr<BriskNode>> BriskNode::attach(const NodeConfig& config,
                                                     clk::Clock& clock) {
  if (config.shm_name.empty()) {
    return Status(Errc::invalid_argument, "attach requires a named shm region");
  }
  auto region = shm::SharedRegion::open_named(config.shm_name);
  if (!region) return region.status();
  auto rings = shm::MultiRing::attach(region.value().data(), region.value().size());
  if (!rings) return rings.status();
  return std::unique_ptr<BriskNode>(
      new BriskNode(config, clock, std::move(region).value(), rings.value()));
}

Result<sensors::Sensor> BriskNode::make_sensor() {
  auto ring = rings_.claim_slot();
  if (!ring) return ring.status();
  return sensors::Sensor(ring.value(), clock_, config_.node, config_.trace_sample_rate);
}

Result<std::unique_ptr<lis::ExternalSensor>> BriskNode::connect_exs(const std::string& ism_host,
                                                                    std::uint16_t ism_port) {
  lis::ExsConfig exs_config = config_.exs;
  exs_config.node = config_.node;
  return lis::ExternalSensor::connect(exs_config, rings_, clock_, ism_host, ism_port);
}

}  // namespace brisk
