#include "tp/upstream_link.hpp"

#include <algorithm>

namespace brisk::tp {

UpstreamLink::UpstreamLink(const LinkConfig& config, clk::Clock& clock, FrameSink sink)
    : config_(config),
      clock_(clock),
      sink_(std::move(sink)),
      replay_(config.replay_batches, config.replay_bytes) {}

Status UpstreamLink::send_hello() {
  if (config_.replay_batches > 0) awaiting_ack_ = true;
  ByteBuffer out;
  xdr::Encoder enc(out);
  put_type(MsgType::hello, enc);
  encode_hello({config_.node, kProtocolVersion, config_.incarnation, config_.capabilities},
               enc);
  return sink_(std::move(out));
}

Status UpstreamLink::send_heartbeat() {
  ByteBuffer out;
  xdr::Encoder enc(out);
  put_type(MsgType::heartbeat, enc);
  ++heartbeats_sent_;
  return sink_(std::move(out));
}

Status UpstreamLink::ship_batch(ByteBuffer payload) {
  if (config_.replay_batches > 0) {
    Status st = replay_.retain(payload.view());
    if (!st) return st;
    if (credit_active_) {
      // Paced mode: every send goes through the window gate, in sequence
      // order. A batch the window cannot take right now simply waits in the
      // replay buffer — the next replenishing grant pumps it out.
      const std::uint32_t seq = replay_.entries().back().batch_seq;
      st = pump_sends();
      if (!st) return st;
      if (link_ready_ && !awaiting_ack_ && next_unsent_seq_ <= seq) ++paced_batches_;
      return Status::ok();
    }
    // Link down or session not yet acknowledged: the batch stays in the
    // replay buffer and goes out — in sequence order — on the next
    // HELLO_ACK. Sending it now would let a fresh batch overtake older
    // unacked ones and the peer would discard the replays as duplicates.
    if (!link_ready_ || awaiting_ack_) return Status::ok();
    if (!replay_.empty()) {
      const ReplayBuffer::Entry& newest = replay_.entries().back();
      next_unsent_seq_ = newest.batch_seq + 1;
      if (send_high_water_ < next_unsent_seq_) send_high_water_ = next_unsent_seq_;
    }
  } else if (!link_ready_) {
    return Status::ok();  // replay disabled: the batch is simply lost
  }
  return sink_(std::move(payload));
}

Status UpstreamLink::resend_unacked() {
  if (credit_active_) {
    // Go-back-N under pacing: everything unacked becomes unsent again and
    // re-ships through the window gate — the replay respects whatever
    // window the reopened session granted, not the pre-loss one.
    rewind_unsent();
    return pump_sends();
  }
  for (const auto& entry : replay_.entries()) {
    ByteBuffer copy;
    copy.append(entry.frame.view());
    Status st = sink_(std::move(copy));
    if (!st) return st;
    ++batches_replayed_;
  }
  if (!replay_.empty()) {
    next_unsent_seq_ = replay_.entries().back().batch_seq + 1;
    if (send_high_water_ < next_unsent_seq_) send_high_water_ = next_unsent_seq_;
  }
  return Status::ok();
}

std::uint64_t UpstreamLink::outstanding_records() const noexcept {
  std::uint64_t records = 0;
  for (const auto& entry : replay_.entries()) {
    if (entry.batch_seq >= next_unsent_seq_) break;
    records += entry.record_count;
  }
  return records;
}

std::uint64_t UpstreamLink::outstanding_bytes() const noexcept {
  std::uint64_t bytes = 0;
  for (const auto& entry : replay_.entries()) {
    if (entry.batch_seq >= next_unsent_seq_) break;
    bytes += entry.frame.size();
  }
  return bytes;
}

void UpstreamLink::rewind_unsent() noexcept {
  next_unsent_seq_ = replay_.empty() ? next_unsent_seq_ : replay_.entries().front().batch_seq;
}

void UpstreamLink::begin_stall() noexcept {
  if (stall_started_at_ == 0) stall_started_at_ = clock_.now();
}

void UpstreamLink::end_stall() noexcept {
  if (stall_started_at_ != 0) {
    const TimeMicros now = clock_.now();
    if (now > stall_started_at_) credit_stalled_us_ += now - stall_started_at_;
    stall_started_at_ = 0;
  }
}

Status UpstreamLink::pump_sends() {
  if (!link_ready_ || awaiting_ack_) return Status::ok();
  const auto& entries = replay_.entries();
  if (entries.empty()) {
    end_stall();
    return Status::ok();
  }
  // Evictions may have removed unsent entries from the front; the oldest
  // batch still buffered is the oldest that can ever be sent.
  if (next_unsent_seq_ < entries.front().batch_seq) {
    next_unsent_seq_ = entries.front().batch_seq;
  }
  std::uint64_t out_records = outstanding_records();
  std::uint64_t out_bytes = outstanding_bytes();
  std::size_t index = 0;
  while (index < entries.size() && entries[index].batch_seq < next_unsent_seq_) ++index;
  while (index < entries.size() && link_ready_) {
    const ReplayBuffer::Entry& entry = entries[index];
    const bool fits =
        out_records + entry.record_count <= window_records_ &&
        (window_bytes_ == 0 || out_bytes + entry.frame.size() <= window_bytes_);
    // Progress guarantee: a batch bigger than the whole window ships once
    // nothing is outstanding — a shrunk (even zero) window stalls the
    // stream, never deadlocks it.
    if (!fits && out_records > 0) {
      begin_stall();
      return Status::ok();
    }
    if (!fits && window_records_ == 0) {
      // Zero window with an empty pipe: the peer asked for silence; wait
      // for a replenishing grant rather than forcing the batch through.
      begin_stall();
      return Status::ok();
    }
    ByteBuffer copy;
    copy.append(entry.frame.view());
    const std::uint32_t seq = entry.batch_seq;
    const std::uint32_t records = entry.record_count;
    const std::size_t bytes = entry.frame.size();
    if (seq < send_high_water_) ++batches_replayed_;
    Status st = sink_(std::move(copy));
    if (!st) return st;
    out_records += records;
    out_bytes += bytes;
    next_unsent_seq_ = seq + 1;
    if (send_high_water_ < next_unsent_seq_) send_high_water_ = next_unsent_seq_;
    ++index;
  }
  if (index >= entries.size()) end_stall();
  return Status::ok();
}

void UpstreamLink::apply_credit(const std::optional<CreditGrant>& credit) {
  if (!credit) return;
  if (credit->incarnation != config_.incarnation) return;  // stale session's grant
  ++credit_grants_received_;
  if (!config_.pace || config_.replay_batches == 0) return;
  credit_active_ = true;
  window_records_ = credit->window_records;
  window_bytes_ = credit->window_bytes;
  if (window_observer_) window_observer_(window_records_, window_bytes_);
}

bool UpstreamLink::owns_frame(MsgType type) noexcept {
  switch (type) {
    case MsgType::hello_ack:
    case MsgType::batch_ack:
    case MsgType::heartbeat:
    case MsgType::bye:
      return true;
    default:
      return false;
  }
}

Status UpstreamLink::handle_frame(MsgType type, xdr::Decoder& decoder) {
  switch (type) {
    case MsgType::hello_ack: {
      auto ack = decode_hello_ack(decoder);
      if (!ack) return ack.status();
      ++acks_received_;
      apply_credit(ack.value().credit);
      if (config_.replay_batches == 0) return Status::ok();
      if (ack.value().incarnation != config_.incarnation) {
        // Ack for a previous session of this connection; a fresh one is on
        // its way.
        return Status::ok();
      }
      replay_.ack(ack.value().next_expected_seq);
      awaiting_ack_ = false;
      have_last_ack_ = true;
      last_batch_ack_expected_ = ack.value().next_expected_seq;
      return resend_unacked();
    }
    case MsgType::batch_ack: {
      auto ack = decode_batch_ack(decoder);
      if (!ack) return ack.status();
      ++acks_received_;
      apply_credit(ack.value().credit);
      if (config_.replay_batches == 0) return Status::ok();
      const std::uint32_t expected = ack.value().next_expected_seq;
      replay_.ack(expected);
      // Two consecutive acks naming the same cursor while we hold that very
      // batch means the peer lost it in flight (not merely lagging):
      // go-back-N resend from the cursor. A single stale ack is not enough —
      // acks race with batches legitimately in flight.
      const bool stuck = have_last_ack_ && expected == last_batch_ack_expected_;
      have_last_ack_ = true;
      last_batch_ack_expected_ = expected;
      if (stuck && !awaiting_ack_ && !replay_.empty() &&
          replay_.entries().front().batch_seq == expected) {
        return resend_unacked();
      }
      // Acked batches leave the outstanding set — the reopened window may
      // have room for batches a closed window parked in the replay buffer.
      if (credit_active_) return pump_sends();
      return Status::ok();
    }
    case MsgType::heartbeat:
      return Status::ok();  // liveness only; reception already refreshed rx time
    case MsgType::bye:
      saw_bye_ = true;
      return Status(Errc::closed, "peer said bye");
    default:
      return Status(Errc::malformed, "frame type not owned by the upstream link");
  }
}

void UpstreamLink::on_disconnect() noexcept {
  link_ready_ = false;
  awaiting_ack_ = false;
  have_last_ack_ = false;
  // Down-time is reconnect territory, not window pressure; don't let it
  // inflate the stall clock.
  end_stall();
}

Status UpstreamLink::on_reconnected() {
  link_ready_ = true;
  ++reconnects_;
  return send_hello();
}

LinkStats UpstreamLink::stats() const noexcept {
  LinkStats s;
  s.reconnects = reconnects_;
  s.batches_replayed = batches_replayed_;
  s.replay_evictions = replay_.evictions();
  s.heartbeats_sent = heartbeats_sent_;
  s.acks_received = acks_received_;
  s.replay_pending = replay_.size();
  s.credit_grants_received = credit_grants_received_;
  s.paced_batches = paced_batches_;
  s.credit_stalled_us = credit_stalled_us_;
  s.credit_active = credit_active_;
  if (credit_active_) {
    s.credit_window_records = window_records_;
    s.credit_window_bytes = window_bytes_;
  }
  return s;
}

// ---- reconnect schedule -----------------------------------------------------

TimeMicros ReconnectSchedule::backoff_delay() {
  TimeMicros delay = config_.backoff_base_us;
  for (std::uint32_t i = 1; i < failed_attempts_ && delay < config_.backoff_cap_us; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, config_.backoff_cap_us);
  if (config_.jitter > 0.0) {
    std::uniform_real_distribution<double> jitter(0.0, config_.jitter);
    delay += static_cast<TimeMicros>(static_cast<double>(delay) * jitter(jitter_rng_));
  }
  return delay;
}

bool ReconnectSchedule::record_failure(TimeMicros now) {
  ++failed_attempts_;
  if (config_.max_attempts > 0 && failed_attempts_ >= config_.max_attempts) return false;
  next_attempt_at_ = now + backoff_delay();
  return true;
}

}  // namespace brisk::tp
