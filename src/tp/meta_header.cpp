#include "tp/meta_header.hpp"

namespace brisk::tp {
namespace {

constexpr std::uint32_t kFlagExtended = 0x01;
constexpr std::uint32_t kFlagTrace = 0x02;

std::uint32_t pack_nibbles(const MetaHeader& meta, std::size_t first) noexcept {
  std::uint32_t word = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t index = first + i;
    std::uint32_t nibble = 0;
    if (index < meta.field_count) {
      nibble = static_cast<std::uint32_t>(meta.types[index]) & 0xf;
    }
    word |= nibble << (28 - 4 * i);
  }
  return word;
}

void unpack_nibbles(std::uint32_t word, std::size_t first, std::size_t count,
                    MetaHeader& meta) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    const auto nibble = static_cast<std::uint8_t>((word >> (28 - 4 * i)) & 0xf);
    meta.types[first + i] = static_cast<sensors::FieldType>(nibble);
  }
}

}  // namespace

void encode_meta(const MetaHeader& meta, xdr::Encoder& encoder) {
  std::uint32_t word0 = std::uint32_t{meta.sensor_id} << 16;
  word0 |= std::uint32_t{meta.field_count} << 8;
  if (meta.extended()) word0 |= kFlagExtended;
  if (meta.trace) word0 |= kFlagTrace;
  encoder.put_u32(word0);
  encoder.put_u32(pack_nibbles(meta, 0));
  if (meta.extended()) encoder.put_u32(pack_nibbles(meta, 8));
}

Result<MetaHeader> decode_meta(xdr::Decoder& decoder) {
  auto word0 = decoder.get_u32();
  if (!word0) return word0.status();

  MetaHeader meta;
  meta.sensor_id = static_cast<std::uint16_t>(word0.value() >> 16);
  meta.field_count = static_cast<std::uint8_t>((word0.value() >> 8) & 0xff);
  const bool extended_flag = (word0.value() & kFlagExtended) != 0;
  meta.trace = (word0.value() & kFlagTrace) != 0;

  if ((word0.value() & 0xff & ~(kFlagExtended | kFlagTrace)) != 0) {
    return Status(Errc::malformed, "meta flags unknown bit");
  }
  if (meta.field_count > sensors::kMaxFieldsPerRecord) {
    return Status(Errc::malformed, "meta field count > 16");
  }
  if (extended_flag != meta.extended()) {
    return Status(Errc::malformed, "meta extended flag inconsistent with field count");
  }

  auto word1 = decoder.get_u32();
  if (!word1) return word1.status();
  const std::size_t first_word_fields = meta.field_count < 8 ? meta.field_count : 8;
  unpack_nibbles(word1.value(), 0, first_word_fields, meta);

  if (meta.extended()) {
    auto word2 = decoder.get_u32();
    if (!word2) return word2.status();
    unpack_nibbles(word2.value(), 8, meta.field_count - 8u, meta);
  }

  for (std::size_t i = 0; i < meta.field_count; ++i) {
    if (!sensors::field_type_valid(static_cast<std::uint8_t>(meta.types[i]))) {
      return Status(Errc::malformed, "meta type nibble invalid");
    }
  }
  return meta;
}

}  // namespace brisk::tp
