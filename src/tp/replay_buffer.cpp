#include "tp/replay_buffer.hpp"

namespace brisk::tp {
namespace {

constexpr std::size_t kSeqOffset = 8;     // u32 type | u32 node | u32 batch_seq
constexpr std::size_t kCountOffset = 12;  // ... | u32 record_count

std::uint32_t read_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

Status ReplayBuffer::retain(ByteSpan frame) {
  if (max_batches_ == 0) return Status::ok();  // replay disabled
  if (frame.size() < kCountOffset + 4) {
    return Status(Errc::invalid_argument, "frame too short for a batch header");
  }
  while (entries_.size() >= max_batches_) {
    bytes_ -= entries_.front().frame.size();
    entries_.pop_front();
    ++evictions_;
  }
  // Byte cap: make room for the incoming frame by evicting oldest-first.
  // A frame larger than the whole cap still gets in (with an empty buffer):
  // the newest batch is the one in flight and must remain replayable.
  if (max_bytes_ > 0) {
    while (!entries_.empty() && bytes_ + frame.size() > max_bytes_) {
      bytes_ -= entries_.front().frame.size();
      entries_.pop_front();
      ++evictions_;
    }
  }
  Entry entry;
  entry.batch_seq = read_be32(frame.data() + kSeqOffset);
  entry.record_count = read_be32(frame.data() + kCountOffset);
  entry.frame.append(frame);
  bytes_ += entry.frame.size();
  entries_.push_back(std::move(entry));
  return Status::ok();
}

void ReplayBuffer::ack(std::uint32_t next_expected) {
  while (!entries_.empty() && entries_.front().batch_seq < next_expected) {
    bytes_ -= entries_.front().frame.size();
    entries_.pop_front();
  }
}

}  // namespace brisk::tp
