// Bounded in-flight batch replay buffer (client side of session
// resilience; owned by tp::UpstreamLink on behalf of both the EXS and a
// relay ISM's egress).
//
// Every batch frame the sender ships is retained here until the receiver's
// cumulative BATCH_ACK cursor passes its sequence number. On reconnect the
// sender replays everything not yet acknowledged (the receiver dedupes by
// batch_seq, so an ack lost in the crash cannot duplicate records). The
// buffer is bounded two ways — by batch count (`max_batches`) and
// optionally by total payload bytes (`max_bytes`): when either cap is hit,
// the oldest entries are evicted and counted — a *declared* loss, reported
// in ExsStats. The byte cap is what an operator actually provisions
// (memory), so it evicts as many old batches as the newest one needs; a
// single jumbo batch larger than the whole cap still displaces everything
// else rather than being dropped, because the newest batch is the one in
// flight.
#pragma once

#include <cstdint>
#include <deque>

#include "common/byte_buffer.hpp"
#include "common/error.hpp"

namespace brisk::tp {

class ReplayBuffer {
 public:
  struct Entry {
    std::uint32_t batch_seq = 0;
    /// Records in the batch (from the header); the pacer charges these
    /// against the granted flow-control window.
    std::uint32_t record_count = 0;
    ByteBuffer frame;  // full data_batch frame payload, ready to re-send
  };

  /// `max_bytes` == 0 disables the byte cap.
  explicit ReplayBuffer(std::size_t max_batches, std::size_t max_bytes = 0)
      : max_batches_(max_batches), max_bytes_(max_bytes) {}

  /// Retains a copy of a finished data_batch frame payload. The batch
  /// sequence number is read from the frame itself (u32 at byte offset 8:
  /// type, node, batch_seq). Frames too short to carry a header are
  /// rejected.
  Status retain(ByteSpan frame);

  /// Drops every entry with batch_seq < next_expected (the ISM has them).
  void ack(std::uint32_t next_expected);

  /// Entries still buffered, oldest first.
  [[nodiscard]] const std::deque<Entry>& entries() const noexcept { return entries_; }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  /// Batches evicted because the buffer was full: data declared lost.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  std::size_t max_batches_;
  std::size_t max_bytes_;
  std::deque<Entry> entries_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace brisk::tp
