#include "tp/wire.hpp"

#include <cstring>

#include "sensors/record_codec.hpp"
#include "tp/meta_header.hpp"

namespace brisk::tp {

using sensors::Field;
using sensors::FieldType;
using sensors::Record;
using sensors::TraceAnnotation;
using sensors::TraceStamp;
using sensors::TraceStage;

namespace {

/// Wire size of a trace annotation: u64 id + u32 count + count stamps.
std::size_t trace_wire_size(std::size_t nstamps) noexcept { return 12 + nstamps * 12; }

void encode_trace(const TraceAnnotation& annotation, xdr::Encoder& encoder) {
  encoder.put_u64(annotation.trace_id);
  encoder.put_u32(static_cast<std::uint32_t>(annotation.stamps.size()));
  for (const TraceStamp& s : annotation.stamps) {
    encoder.put_u32(static_cast<std::uint32_t>(s.stage));
    encoder.put_i64(s.at);
  }
}

Result<TraceAnnotation> decode_trace(xdr::Decoder& decoder) {
  TraceAnnotation annotation;
  auto id = decoder.get_u64();
  if (!id) return id.status();
  annotation.trace_id = id.value();
  auto count = decoder.get_u32();
  if (!count) return count.status();
  if (count.value() > sensors::kMaxTraceStamps) {
    return Status(Errc::malformed, "trace stamp count");
  }
  annotation.stamps.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto stage = decoder.get_u32();
    if (!stage) return stage.status();
    if (stage.value() >= sensors::kTraceStageCount) {
      return Status(Errc::malformed, "trace stage");
    }
    auto at = decoder.get_i64();
    if (!at) return at.status();
    annotation.stamps.push_back(TraceStamp{static_cast<TraceStage>(stage.value()), at.value()});
  }
  return annotation;
}

}  // namespace

std::size_t record_wire_size(const Record& record) {
  MetaHeader meta;
  meta.field_count = static_cast<std::uint8_t>(record.fields.size());
  std::size_t size = 8 + meta.wire_size();
  if (record.trace) size += trace_wire_size(record.trace->stamps.size());
  for (const Field& f : record.fields) {
    if (f.type() == FieldType::x_string) {
      size += xdr::Encoder::opaque_wire_size(f.as_string().size());
    } else {
      size += sensors::xdr_payload_size(f.type());
    }
  }
  return size;
}

Status encode_record(const Record& record, xdr::Encoder& encoder) {
  if (record.fields.size() > sensors::kMaxFieldsPerRecord) {
    return Status(Errc::invalid_argument, "too many fields");
  }
  if (record.sensor > 0xffff) {
    return Status(Errc::invalid_argument, "sensor id exceeds 16-bit wire limit");
  }
  encoder.put_i64(record.timestamp);

  if (record.trace && record.trace->stamps.size() > sensors::kMaxTraceStamps) {
    return Status(Errc::invalid_argument, "too many trace stamps");
  }

  MetaHeader meta;
  meta.sensor_id = static_cast<std::uint16_t>(record.sensor);
  meta.field_count = static_cast<std::uint8_t>(record.fields.size());
  meta.trace = record.trace.has_value();
  for (std::size_t i = 0; i < record.fields.size(); ++i) {
    meta.types[i] = record.fields[i].type();
  }
  encode_meta(meta, encoder);
  if (record.trace) encode_trace(*record.trace, encoder);

  for (const Field& f : record.fields) {
    switch (f.type()) {
      case FieldType::x_i8:
      case FieldType::x_i16:
      case FieldType::x_i32:
      case FieldType::x_char:
        encoder.put_i32(static_cast<std::int32_t>(f.as_signed()));
        break;
      case FieldType::x_u8:
      case FieldType::x_u16:
      case FieldType::x_u32:
      case FieldType::x_reason:
      case FieldType::x_conseq:
        encoder.put_u32(static_cast<std::uint32_t>(f.as_unsigned()));
        break;
      case FieldType::x_i64:
      case FieldType::x_ts:
        encoder.put_i64(f.as_signed());
        break;
      case FieldType::x_u64:
        encoder.put_u64(f.as_unsigned());
        break;
      case FieldType::x_f32:
        encoder.put_f32(static_cast<float>(f.as_double()));
        break;
      case FieldType::x_f64:
        encoder.put_f64(f.as_double());
        break;
      case FieldType::x_string:
        encoder.put_string(f.as_string());
        break;
    }
  }
  return Status::ok();
}

Result<Record> decode_record(xdr::Decoder& decoder, NodeId node) {
  Record record;
  record.node = node;

  auto ts = decoder.get_i64();
  if (!ts) return ts.status();
  record.timestamp = ts.value();

  auto meta = decode_meta(decoder);
  if (!meta) return meta.status();
  record.sensor = meta.value().sensor_id;
  if (meta.value().trace) {
    auto annotation = decode_trace(decoder);
    if (!annotation) return annotation.status();
    record.trace = std::move(annotation.value());
  }
  record.fields.reserve(meta.value().field_count);

  for (std::size_t i = 0; i < meta.value().field_count; ++i) {
    const FieldType type = meta.value().types[i];
    switch (type) {
      case FieldType::x_i8: {
        auto v = decoder.get_i32();
        if (!v) return v.status();
        record.fields.push_back(Field::i8(static_cast<std::int8_t>(v.value())));
        break;
      }
      case FieldType::x_u8: {
        auto v = decoder.get_u32();
        if (!v) return v.status();
        record.fields.push_back(Field::u8(static_cast<std::uint8_t>(v.value())));
        break;
      }
      case FieldType::x_i16: {
        auto v = decoder.get_i32();
        if (!v) return v.status();
        record.fields.push_back(Field::i16(static_cast<std::int16_t>(v.value())));
        break;
      }
      case FieldType::x_u16: {
        auto v = decoder.get_u32();
        if (!v) return v.status();
        record.fields.push_back(Field::u16(static_cast<std::uint16_t>(v.value())));
        break;
      }
      case FieldType::x_i32: {
        auto v = decoder.get_i32();
        if (!v) return v.status();
        record.fields.push_back(Field::i32(v.value()));
        break;
      }
      case FieldType::x_u32: {
        auto v = decoder.get_u32();
        if (!v) return v.status();
        record.fields.push_back(Field::u32(v.value()));
        break;
      }
      case FieldType::x_i64: {
        auto v = decoder.get_i64();
        if (!v) return v.status();
        record.fields.push_back(Field::i64(v.value()));
        break;
      }
      case FieldType::x_u64: {
        auto v = decoder.get_u64();
        if (!v) return v.status();
        record.fields.push_back(Field::u64(v.value()));
        break;
      }
      case FieldType::x_f32: {
        auto v = decoder.get_f32();
        if (!v) return v.status();
        record.fields.push_back(Field::f32(v.value()));
        break;
      }
      case FieldType::x_f64: {
        auto v = decoder.get_f64();
        if (!v) return v.status();
        record.fields.push_back(Field::f64(v.value()));
        break;
      }
      case FieldType::x_char: {
        auto v = decoder.get_i32();
        if (!v) return v.status();
        record.fields.push_back(Field::ch(static_cast<char>(v.value())));
        break;
      }
      case FieldType::x_string: {
        auto v = decoder.get_string(sensors::kMaxStringFieldBytes);
        if (!v) return v.status();
        record.fields.push_back(Field::str(v.value()));
        break;
      }
      case FieldType::x_ts: {
        auto v = decoder.get_i64();
        if (!v) return v.status();
        record.fields.push_back(Field::ts(v.value()));
        break;
      }
      case FieldType::x_reason: {
        auto v = decoder.get_u32();
        if (!v) return v.status();
        record.fields.push_back(Field::reason(v.value()));
        break;
      }
      case FieldType::x_conseq: {
        auto v = decoder.get_u32();
        if (!v) return v.status();
        record.fields.push_back(Field::conseq(v.value()));
        break;
      }
    }
  }
  return record;
}

Status transcode_native_record(ByteSpan native, xdr::Encoder& encoder, TimeMicros ts_delta,
                               TraceStampSlots* slots) {
  // Decoding to a Record here would allocate per record on the EXS hot
  // path; instead walk the native bytes directly.
  if (slots != nullptr) *slots = TraceStampSlots{};
  if (native.size() < sensors::kNativeHeaderBytes) {
    return Status(Errc::truncated, "native header");
  }
  std::uint32_t sensor_id = 0;
  std::memcpy(&sensor_id, native.data(), 4);
  if (sensor_id > 0xffff) return Status(Errc::invalid_argument, "sensor id > 16 bit");
  std::int64_t ts = 0;
  std::memcpy(&ts, native.data() + sensors::kNativeTimestampOffset, 8);
  const std::uint8_t nfields = native[20];
  if (nfields > sensors::kMaxFieldsPerRecord) return Status(Errc::malformed, "field count");
  const std::uint8_t flags = native[sensors::kNativeFlagsOffset];
  if ((flags & ~sensors::kNativeFlagTrace) != 0) {
    return Status(Errc::malformed, "record flags");
  }

  // First pass: collect field types and payload offsets.
  MetaHeader meta;
  meta.sensor_id = static_cast<std::uint16_t>(sensor_id);
  meta.field_count = nfields;
  std::size_t offsets[sensors::kMaxFieldsPerRecord];
  std::size_t pos = sensors::kNativeHeaderBytes;
  for (std::uint8_t i = 0; i < nfields; ++i) {
    if (pos >= native.size()) return Status(Errc::truncated, "field type");
    const std::uint8_t raw = native[pos++];
    if (!sensors::field_type_valid(raw)) return Status(Errc::malformed, "field type tag");
    const auto type = static_cast<FieldType>(raw);
    meta.types[i] = type;
    offsets[i] = pos;
    if (type == FieldType::x_string) {
      if (pos >= native.size()) return Status(Errc::truncated, "string length");
      pos += 1 + native[pos];
    } else {
      pos += sensors::native_payload_size(type);
    }
    if (pos > native.size()) return Status(Errc::truncated, "field body");
  }

  // The trace tail, when present, follows the fields: u64 id | u8 n | stamps.
  std::uint64_t trace_id = 0;
  std::uint8_t nstamps = 0;
  std::size_t stamps_pos = 0;
  const bool traced = (flags & sensors::kNativeFlagTrace) != 0;
  if (traced) {
    if (pos + 8 + 1 > native.size()) return Status(Errc::truncated, "trace tail");
    std::memcpy(&trace_id, native.data() + pos, 8);
    nstamps = native[pos + 8];
    stamps_pos = pos + 9;
    if (nstamps > sensors::kMaxTraceStamps ||
        stamps_pos + nstamps * sensors::kNativeTraceStampBytes > native.size()) {
      return Status(Errc::malformed, "trace stamp count");
    }
    meta.trace = true;
  }

  encoder.put_i64(ts + ts_delta);
  encode_meta(meta, encoder);

  if (traced) {
    // Re-stamp node-side entries into the synchronized timebase and reserve
    // two placeholder stamps for the stages only the batcher can time.
    const bool add_slots = nstamps + 2u <= sensors::kMaxTraceStamps;
    encoder.put_u64(trace_id);
    encoder.put_u32(static_cast<std::uint32_t>(nstamps + (add_slots ? 2 : 0)));
    for (std::uint8_t i = 0; i < nstamps; ++i) {
      const std::uint8_t* sp = native.data() + stamps_pos + i * sensors::kNativeTraceStampBytes;
      if (*sp >= sensors::kTraceStageCount) return Status(Errc::malformed, "trace stage");
      std::int64_t at = 0;
      std::memcpy(&at, sp + 1, 8);
      encoder.put_u32(*sp);
      encoder.put_i64(at + ts_delta);
    }
    if (add_slots) {
      encoder.put_u32(static_cast<std::uint32_t>(TraceStage::batch_seal));
      const std::size_t seal_at = encoder.bytes_written();
      encoder.put_i64(0);
      encoder.put_u32(static_cast<std::uint32_t>(TraceStage::tp_send));
      const std::size_t send_at = encoder.bytes_written();
      encoder.put_i64(0);
      if (slots != nullptr) {
        slots->traced = true;
        slots->seal_at_offset = seal_at;
        slots->send_at_offset = send_at;
      }
    }
  }

  for (std::uint8_t i = 0; i < nfields; ++i) {
    const std::uint8_t* p = native.data() + offsets[i];
    switch (meta.types[i]) {
      case FieldType::x_i8: {
        std::int8_t v;
        std::memcpy(&v, p, 1);
        encoder.put_i32(v);
        break;
      }
      case FieldType::x_u8:
        encoder.put_u32(*p);
        break;
      case FieldType::x_i16: {
        std::int16_t v;
        std::memcpy(&v, p, 2);
        encoder.put_i32(v);
        break;
      }
      case FieldType::x_u16: {
        std::uint16_t v;
        std::memcpy(&v, p, 2);
        encoder.put_u32(v);
        break;
      }
      case FieldType::x_i32: {
        std::int32_t v;
        std::memcpy(&v, p, 4);
        encoder.put_i32(v);
        break;
      }
      case FieldType::x_u32:
      case FieldType::x_reason:
      case FieldType::x_conseq: {
        std::uint32_t v;
        std::memcpy(&v, p, 4);
        encoder.put_u32(v);
        break;
      }
      case FieldType::x_i64: {
        std::int64_t v;
        std::memcpy(&v, p, 8);
        encoder.put_i64(v);
        break;
      }
      case FieldType::x_u64: {
        std::uint64_t v;
        std::memcpy(&v, p, 8);
        encoder.put_u64(v);
        break;
      }
      case FieldType::x_f32: {
        float v;
        std::memcpy(&v, p, 4);
        encoder.put_f32(v);
        break;
      }
      case FieldType::x_f64: {
        double v;
        std::memcpy(&v, p, 8);
        encoder.put_f64(v);
        break;
      }
      case FieldType::x_char: {
        char v;
        std::memcpy(&v, p, 1);
        encoder.put_i32(v);
        break;
      }
      case FieldType::x_string: {
        const std::uint8_t len = *p;
        encoder.put_string({reinterpret_cast<const char*>(p + 1), len});
        break;
      }
      case FieldType::x_ts: {
        std::int64_t v;
        std::memcpy(&v, p, 8);
        encoder.put_i64(v + ts_delta);
        break;
      }
    }
  }
  return Status::ok();
}

// ---- control messages -------------------------------------------------------

void encode_hello(const Hello& msg, xdr::Encoder& encoder) {
  encoder.put_u32(msg.node);
  encoder.put_u32(msg.version);
  encoder.put_u64(msg.incarnation);
  // The capability word is a length-delimited trailing extension, like the
  // ack credit tail: a capability-free HELLO ends after the incarnation and
  // stays byte-identical to the pre-federation form.
  if (msg.capabilities != 0) encoder.put_u32(msg.capabilities);
}

Result<Hello> decode_hello(xdr::Decoder& decoder) {
  Hello msg;
  auto node = decoder.get_u32();
  if (!node) return node.status();
  auto version = decoder.get_u32();
  if (!version) return version.status();
  auto incarnation = decoder.get_u64();
  if (!incarnation) return incarnation.status();
  msg.node = node.value();
  msg.version = version.value();
  msg.incarnation = incarnation.value();
  if (!decoder.exhausted()) {
    auto capabilities = decoder.get_u32();
    if (!capabilities) return Status(Errc::truncated, "hello capability word");
    if ((capabilities.value() & ~kKnownCapabilities) != 0) {
      // Unknown bits change how the stream must be treated; a peer that
      // silently ignored them would mis-handle the stream.
      return Status(Errc::malformed, "unknown hello capability bits");
    }
    msg.capabilities = capabilities.value();
  }
  return msg;
}

namespace {

void encode_credit(const CreditGrant& grant, xdr::Encoder& encoder) {
  encoder.put_u64(grant.incarnation);
  encoder.put_u32(grant.window_records);
  encoder.put_u64(grant.window_bytes);
}

/// Decodes the optional trailing credit extension of an ack frame. An ack
/// that ends after its base fields has no grant (v2 peer, or credits off);
/// once any extension bytes are present the grant must be complete — a
/// truncated grant is a malformed frame, not an absent one.
Result<std::optional<CreditGrant>> decode_credit_tail(xdr::Decoder& decoder) {
  if (decoder.exhausted()) return std::optional<CreditGrant>{};
  CreditGrant grant;
  auto incarnation = decoder.get_u64();
  if (!incarnation) return Status(Errc::truncated, "credit grant incarnation");
  auto records = decoder.get_u32();
  if (!records) return Status(Errc::truncated, "credit grant record window");
  auto bytes = decoder.get_u64();
  if (!bytes) return Status(Errc::truncated, "credit grant byte window");
  grant.incarnation = incarnation.value();
  grant.window_records = records.value();
  grant.window_bytes = bytes.value();
  return std::optional<CreditGrant>{grant};
}

}  // namespace

void encode_hello_ack(const HelloAck& msg, xdr::Encoder& encoder) {
  encoder.put_u64(msg.incarnation);
  encoder.put_u32(msg.next_expected_seq);
  if (msg.credit) encode_credit(*msg.credit, encoder);
}

Result<HelloAck> decode_hello_ack(xdr::Decoder& decoder) {
  HelloAck msg;
  auto incarnation = decoder.get_u64();
  if (!incarnation) return incarnation.status();
  auto seq = decoder.get_u32();
  if (!seq) return seq.status();
  msg.incarnation = incarnation.value();
  msg.next_expected_seq = seq.value();
  auto credit = decode_credit_tail(decoder);
  if (!credit) return credit.status();
  msg.credit = credit.value();
  return msg;
}

void encode_batch_ack(const BatchAck& msg, xdr::Encoder& encoder) {
  encoder.put_u32(msg.next_expected_seq);
  if (msg.credit) encode_credit(*msg.credit, encoder);
}

Result<BatchAck> decode_batch_ack(xdr::Decoder& decoder) {
  BatchAck msg;
  auto seq = decoder.get_u32();
  if (!seq) return seq.status();
  msg.next_expected_seq = seq.value();
  auto credit = decode_credit_tail(decoder);
  if (!credit) return credit.status();
  msg.credit = credit.value();
  return msg;
}

void encode_time_req(const TimeReq& msg, xdr::Encoder& encoder) {
  encoder.put_u32(msg.request_id);
}

Result<TimeReq> decode_time_req(xdr::Decoder& decoder) {
  auto id = decoder.get_u32();
  if (!id) return id.status();
  return TimeReq{id.value()};
}

void encode_time_resp(const TimeResp& msg, xdr::Encoder& encoder) {
  encoder.put_u32(msg.request_id);
  encoder.put_i64(msg.slave_time);
}

Result<TimeResp> decode_time_resp(xdr::Decoder& decoder) {
  TimeResp msg;
  auto id = decoder.get_u32();
  if (!id) return id.status();
  auto t = decoder.get_i64();
  if (!t) return t.status();
  msg.request_id = id.value();
  msg.slave_time = t.value();
  return msg;
}

void encode_adjust(const Adjust& msg, xdr::Encoder& encoder) { encoder.put_i64(msg.delta); }

Result<Adjust> decode_adjust(xdr::Decoder& decoder) {
  auto delta = decoder.get_i64();
  if (!delta) return delta.status();
  return Adjust{delta.value()};
}

void encode_subscribe(const SubscribeRequest& msg, xdr::Encoder& encoder) {
  encoder.put_string(msg.name);
  encoder.put_string(msg.filter);
  encoder.put_u32(static_cast<std::uint32_t>(msg.kind));
  encoder.put_u32(msg.queue_records);
  encoder.put_u64(msg.agg_window_us);
}

Result<SubscribeRequest> decode_subscribe(xdr::Decoder& decoder) {
  SubscribeRequest msg;
  auto name = decoder.get_string(1 << 10);
  if (!name) return name.status();
  msg.name = std::move(name).value();
  auto filter = decoder.get_string(1 << 16);
  if (!filter) return filter.status();
  msg.filter = std::move(filter).value();
  auto kind = decoder.get_u32();
  if (!kind) return kind.status();
  if (kind.value() > static_cast<std::uint32_t>(SubscriptionKind::aggregate)) {
    return Status(Errc::malformed, "unknown subscription kind");
  }
  msg.kind = static_cast<SubscriptionKind>(kind.value());
  auto queue = decoder.get_u32();
  if (!queue) return queue.status();
  msg.queue_records = queue.value();
  auto window = decoder.get_u64();
  if (!window) return window.status();
  msg.agg_window_us = window.value();
  return msg;
}

void encode_subscribe_ack(const SubscribeAck& msg, xdr::Encoder& encoder) {
  encoder.put_bool(msg.accepted);
  encoder.put_u32(msg.subscription_id);
  encoder.put_string(msg.message);
}

Result<SubscribeAck> decode_subscribe_ack(xdr::Decoder& decoder) {
  SubscribeAck msg;
  auto accepted = decoder.get_bool();
  if (!accepted) return accepted.status();
  msg.accepted = accepted.value();
  auto id = decoder.get_u32();
  if (!id) return id.status();
  msg.subscription_id = id.value();
  auto message = decoder.get_string(1 << 12);
  if (!message) return message.status();
  msg.message = std::move(message).value();
  return msg;
}

void encode_unsubscribe(const Unsubscribe& msg, xdr::Encoder& encoder) {
  encoder.put_u32(msg.subscription_id);
}

Result<Unsubscribe> decode_unsubscribe(xdr::Decoder& decoder) {
  auto id = decoder.get_u32();
  if (!id) return id.status();
  return Unsubscribe{id.value()};
}

void encode_agg_window(const AggWindow& msg, xdr::Encoder& encoder) {
  encoder.put_i64(msg.window_start);
  encoder.put_i64(msg.window_end);
  encoder.put_u32(static_cast<std::uint32_t>(msg.keys.size()));
  for (const AggWindow::Key& key : msg.keys) {
    encoder.put_u32(key.node);
    encoder.put_u32(key.sensor);
    encoder.put_u64(key.count);
    encoder.put_u32(static_cast<std::uint32_t>(key.gap_buckets.size()));
    for (const auto& [bound, count] : key.gap_buckets) {
      encoder.put_u64(bound);
      encoder.put_u64(count);
    }
  }
}

Result<AggWindow> decode_agg_window(xdr::Decoder& decoder) {
  AggWindow msg;
  auto start = decoder.get_i64();
  if (!start) return start.status();
  msg.window_start = start.value();
  auto end = decoder.get_i64();
  if (!end) return end.status();
  msg.window_end = end.value();
  auto key_count = decoder.get_u32();
  if (!key_count) return key_count.status();
  if (key_count.value() > 1u << 20) return Status(Errc::malformed, "agg key count");
  msg.keys.reserve(key_count.value());
  for (std::uint32_t i = 0; i < key_count.value(); ++i) {
    AggWindow::Key key;
    auto node = decoder.get_u32();
    if (!node) return node.status();
    key.node = node.value();
    auto sensor = decoder.get_u32();
    if (!sensor) return sensor.status();
    key.sensor = sensor.value();
    auto count = decoder.get_u64();
    if (!count) return count.status();
    key.count = count.value();
    auto buckets = decoder.get_u32();
    if (!buckets) return buckets.status();
    if (buckets.value() > 1u << 12) return Status(Errc::malformed, "agg bucket count");
    key.gap_buckets.reserve(buckets.value());
    for (std::uint32_t b = 0; b < buckets.value(); ++b) {
      auto bound = decoder.get_u64();
      if (!bound) return bound.status();
      auto bucket_count = decoder.get_u64();
      if (!bucket_count) return bucket_count.status();
      key.gap_buckets.emplace_back(bound.value(), bucket_count.value());
    }
    msg.keys.push_back(std::move(key));
  }
  return msg;
}

void encode_relay_watermark(const RelayWatermark& msg, xdr::Encoder& encoder) {
  encoder.put_u32(msg.relay_node);
  encoder.put_i64(msg.watermark);
}

Result<RelayWatermark> decode_relay_watermark(xdr::Decoder& decoder) {
  RelayWatermark msg;
  auto node = decoder.get_u32();
  if (!node) return node.status();
  auto watermark = decoder.get_i64();
  if (!watermark) return watermark.status();
  msg.relay_node = node.value();
  msg.watermark = watermark.value();
  return msg;
}

Result<MsgType> peek_type(xdr::Decoder& decoder) {
  auto raw = decoder.get_u32();
  if (!raw) return raw.status();
  if (raw.value() < 1 || raw.value() > 16) {
    return Status(Errc::malformed, "unknown message type");
  }
  return static_cast<MsgType>(raw.value());
}

void put_type(MsgType type, xdr::Encoder& encoder) {
  encoder.put_u32(static_cast<std::uint32_t>(type));
}

}  // namespace brisk::tp
