// The upstream half of a TP client: everything a peer needs to ship ordered
// batches to an ISM and survive the link.
//
// Extracted from lis::ExternalSensor so the machinery has exactly one
// implementation with two users:
//  * the EXS daemon (lis::ExsCore wires its batcher's output here), and
//  * a relay ISM's egress (ism::RelayEgress re-batches its post-merge
//    stream onto the same link, making the relay "EXS-shaped" to its
//    parent).
//
// The link owns: the HELLO/HELLO_ACK session handshake (including the
// capability word), the bounded go-back-N ReplayBuffer, cumulative
// BATCH_ACK processing with stuck-cursor resend detection, and the
// credit-window pacer (protocol v3). It is socket-free: frames leave
// through a FrameSink callback and arrive through handle_frame(), so the
// same code runs under a select() loop, a dedicated egress thread, or a
// test harness. Clock concerns (TIME_REQ/ADJUST) deliberately stay with
// the caller — the EXS and a relay fold corrections differently.
#pragma once

#include <cstdint>
#include <functional>
#include <random>

#include "clock/clock.hpp"
#include "common/byte_buffer.hpp"
#include "common/error.hpp"
#include "tp/replay_buffer.hpp"
#include "tp/wire.hpp"
#include "xdr/xdr_decoder.hpp"

namespace brisk::tp {

struct LinkConfig {
  NodeId node = 0;
  /// Session identity; see tp::Hello. Must be non-zero for crash detection.
  std::uint64_t incarnation = 0;
  /// Capability word carried by HELLO (0 = plain EXS-shaped peer).
  std::uint32_t capabilities = 0;
  /// Replay depth in batches; 0 disables replay (and therefore pacing).
  std::size_t replay_batches = 256;
  /// Replay depth in bytes; 0 disables the byte cap.
  std::size_t replay_bytes = 0;
  /// Honor credit grants (protocol v3 pacing). Requires replay.
  bool pace = true;
};

struct LinkStats {
  std::uint64_t reconnects = 0;
  std::uint64_t batches_replayed = 0;
  std::uint64_t replay_evictions = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t replay_pending = 0;
  std::uint64_t credit_grants_received = 0;
  std::uint64_t paced_batches = 0;
  TimeMicros credit_stalled_us = 0;
  bool credit_active = false;
  std::uint32_t credit_window_records = 0;  // meaningful when credit_active
  std::uint64_t credit_window_bytes = 0;
};

class UpstreamLink {
 public:
  /// Carries a finished frame payload toward the peer. Transport loss must
  /// not surface here as an error — the daemon layer reports it through
  /// on_disconnect() and the replay buffer covers the gap.
  using FrameSink = std::function<Status(ByteBuffer payload)>;
  /// Observes credit-window changes (the EXS caps its batch size to the
  /// granted window so no batch is built that the window cannot take whole).
  using WindowObserver = std::function<void(std::uint32_t window_records,
                                            std::uint64_t window_bytes)>;

  /// `clock` times credit stalls; `sink` carries frames to the peer.
  UpstreamLink(const LinkConfig& config, clk::Clock& clock, FrameSink sink);

  void set_window_observer(WindowObserver observer) { window_observer_ = std::move(observer); }

  /// Sends the HELLO that opens (or re-opens) the session. With replay
  /// enabled, outbound batches are deferred into the replay buffer until
  /// the peer's HELLO_ACK names the resume cursor — this keeps the batch
  /// sequence the peer observes contiguous across a reconnect.
  Status send_hello();

  /// Sends a liveness heartbeat (empty body).
  Status send_heartbeat();

  /// Ships one finished batch frame (data_batch or relay_batch — the link
  /// only reads the shared header prefix). The frame is retained for replay
  /// and, under pacing, released through the credit window in sequence
  /// order.
  Status ship_batch(ByteBuffer payload);

  /// True for message types the link consumes (acks, heartbeat, bye).
  [[nodiscard]] static bool owns_frame(MsgType type) noexcept;
  /// Handles one link-owned frame body (type word already consumed).
  /// Returns Errc::closed for BYE.
  Status handle_frame(MsgType type, xdr::Decoder& decoder);

  /// Transport notifications from the daemon layer: while the link is
  /// down, batches accumulate in the replay buffer instead of being handed
  /// to the sink; re-establishing it replays everything unacked.
  void on_disconnect() noexcept;
  Status on_reconnected();

  /// True once the peer sent BYE (clean shutdown, not a link failure).
  [[nodiscard]] bool saw_bye() const noexcept { return saw_bye_; }
  /// True while batches are gated on a pending HELLO_ACK.
  [[nodiscard]] bool awaiting_ack() const noexcept { return awaiting_ack_; }
  [[nodiscard]] const ReplayBuffer& replay() const noexcept { return replay_; }

  /// True once a credit grant governs this session's sends (pacing on,
  /// replay enabled, and a grant for this incarnation has arrived).
  [[nodiscard]] bool pacing() const noexcept { return credit_active_; }
  /// Sent-but-unacknowledged records/bytes charged against the window.
  [[nodiscard]] std::uint64_t outstanding_records() const noexcept;
  [[nodiscard]] std::uint64_t outstanding_bytes() const noexcept;

  [[nodiscard]] LinkStats stats() const noexcept;
  [[nodiscard]] const LinkConfig& config() const noexcept { return config_; }

 private:
  /// Re-sends every retained batch, oldest first (the peer dedupes).
  Status resend_unacked();
  /// Folds an ack's credit grant (if any) into the pacer window. Grants for
  /// a foreign incarnation are ignored — never a session error.
  void apply_credit(const std::optional<CreditGrant>& credit);
  /// The paced send path: ships retained batches in sequence order from
  /// `next_unsent_seq_` while the granted window has room. A batch larger
  /// than the whole window is sent once nothing is outstanding (progress
  /// guarantee — a zero or shrunken window can never deadlock the stream).
  Status pump_sends();
  /// Marks everything unacked as unsent (go-back-N under pacing).
  void rewind_unsent() noexcept;
  void begin_stall() noexcept;
  void end_stall() noexcept;

  LinkConfig config_;
  clk::Clock& clock_;
  FrameSink sink_;
  WindowObserver window_observer_;
  ReplayBuffer replay_;
  bool link_ready_ = true;
  bool awaiting_ack_ = false;
  bool saw_bye_ = false;
  bool have_last_ack_ = false;
  std::uint32_t last_batch_ack_expected_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t batches_replayed_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  // --- credit-based flow control ---------------------------------------------
  /// True once a grant for this incarnation arrived and pacing applies.
  bool credit_active_ = false;
  std::uint32_t window_records_ = 0;  // last granted record window
  std::uint64_t window_bytes_ = 0;    // last granted byte window (0 = uncapped)
  /// Replay entries with batch_seq below this have been handed to the sink
  /// and are charged against the window; at or above are still queued.
  std::uint32_t next_unsent_seq_ = 0;
  /// Highest batch_seq ever handed to the sink (+1); re-sends below it
  /// count as replays.
  std::uint32_t send_high_water_ = 0;
  std::uint64_t credit_grants_received_ = 0;
  std::uint64_t paced_batches_ = 0;
  TimeMicros credit_stalled_us_ = 0;
  TimeMicros stall_started_at_ = 0;  // node-clock time, 0 = not stalled
};

// ---- reconnect schedule -----------------------------------------------------

struct ReconnectConfig {
  TimeMicros backoff_base_us = 50'000;
  TimeMicros backoff_cap_us = 5'000'000;
  /// Uniform jitter fraction added on top of the exponential delay.
  double jitter = 0.2;
  /// Consecutive failures before giving up; 0 = retry forever.
  std::uint32_t max_attempts = 0;
};

/// Exponential-backoff reconnect pacing with deterministic jitter, shared
/// by the EXS daemon loop and the relay egress thread. The schedule only
/// decides *when* to try; the caller owns the actual connect.
class ReconnectSchedule {
 public:
  ReconnectSchedule(const ReconnectConfig& config, std::uint64_t seed)
      : config_(config), jitter_rng_(seed ^ 0x9e3779b97f4a7c15ull) {}

  /// True when a connect attempt is due (monotonic time).
  [[nodiscard]] bool due(TimeMicros now) const noexcept { return now >= next_attempt_at_; }

  /// Arms an immediate retry (call when the link drops).
  void arm(TimeMicros now) noexcept {
    next_attempt_at_ = now;
    failed_attempts_ = 0;
  }

  void record_success() noexcept { failed_attempts_ = 0; }

  /// Records a failed attempt and schedules the next one. Returns false
  /// once the attempt budget is exhausted — the caller should give up.
  bool record_failure(TimeMicros now);

  [[nodiscard]] std::uint32_t failed_attempts() const noexcept { return failed_attempts_; }

 private:
  [[nodiscard]] TimeMicros backoff_delay();

  ReconnectConfig config_;
  std::uint32_t failed_attempts_ = 0;
  TimeMicros next_attempt_at_ = 0;  // monotonic
  std::mt19937_64 jitter_rng_;
};

}  // namespace brisk::tp
