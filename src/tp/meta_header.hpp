// The compressed meta-information header of the transfer protocol.
//
// BRISK "does not use XDR in the typical way, with rpcgen and static
// typing... Instead, each dynamically typed instrumentation data record is
// sent with a meta-information header needed for it to be correctly
// received", and the external sensor sends it "with the meta-information
// header compressed" because "minimizing the slack in instrumentation data
// messages is important".
//
// Compression scheme: field type tags are 4-bit nibbles (15 types < 16)
// packed into whole XDR words, instead of one 4-byte XDR word per field
// that a naive dynamic encoding would spend:
//
//   word 0:  bits 31..16  sensor id (16 bits)
//            bits 15..8   field count (0..16)
//            bits  7..0   flags (bit 0: extended nibble word present;
//                                bit 1: trace annotation follows the header)
//   word 1:  type nibbles for fields 0..7  (field 0 in bits 31..28)
//   word 2:  (only when field count > 8) nibbles for fields 8..15
//
// The trace flag (bit 1) marks a sampled-tracing annotation encoded between
// the meta header and the field payloads:
//   u64 trace_id | u32 nstamps | nstamps x (u32 stage | i64 at_us)
// Untraced records carry neither the flag nor the extension, so the wire
// format is byte-compatible with pre-tracing peers for unsampled traffic.
//
// A six-int-field record thus costs 8 bytes of meta + 8 bytes timestamp +
// 24 bytes payload = 40 bytes — the paper's measured record size.
#pragma once

#include <array>
#include <cstdint>

#include "common/error.hpp"
#include "sensors/field.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::tp {

struct MetaHeader {
  std::uint16_t sensor_id = 0;
  std::uint8_t field_count = 0;
  /// Set when a trace annotation is encoded after the header.
  bool trace = false;
  std::array<sensors::FieldType, sensors::kMaxFieldsPerRecord> types{};

  [[nodiscard]] bool extended() const noexcept { return field_count > 8; }
  /// Wire size in bytes: 8, or 12 with the extended nibble word.
  [[nodiscard]] std::size_t wire_size() const noexcept { return extended() ? 12 : 8; }
};

/// Encodes the header (2 or 3 XDR words).
void encode_meta(const MetaHeader& meta, xdr::Encoder& encoder);

/// Decodes and validates a header (field count bound, type tags).
Result<MetaHeader> decode_meta(xdr::Decoder& decoder);

}  // namespace brisk::tp
