#include "tp/batch.hpp"

namespace brisk::tp {
namespace {

constexpr std::size_t kCountOffset = 12;      // record_count u32
constexpr std::size_t kDroppedOffset = 16;    // data_batch: ring_dropped u64
constexpr std::size_t kWatermarkOffset = 16;  // relay_batch: watermark i64

void put_be32_at(ByteBuffer& buf, std::size_t offset, std::uint32_t value) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(value >> 24),
      static_cast<std::uint8_t>(value >> 16),
      static_cast<std::uint8_t>(value >> 8),
      static_cast<std::uint8_t>(value),
  };
  (void)buf.overwrite(offset, ByteSpan{bytes, 4});
}

void put_be64_at(ByteBuffer& buf, std::size_t offset, std::uint64_t value) {
  put_be32_at(buf, offset, static_cast<std::uint32_t>(value >> 32));
  put_be32_at(buf, offset + 4, static_cast<std::uint32_t>(value));
}

}  // namespace

void BatchBuilder::reset_payload() {
  payload_.clear();
  record_count_ = 0;
  trace_slots_.clear();
  xdr::Encoder enc(payload_);
  put_type(MsgType::data_batch, enc);
  enc.put_u32(node_);
  enc.put_u32(next_batch_seq_);
  enc.put_u32(0);  // record_count, patched in finish()
  enc.put_u64(0);  // ring_dropped_total, patched in finish()
}

Status BatchBuilder::add_native_record(ByteSpan native, TimeMicros ts_delta) {
  const std::size_t base = payload_.size();
  xdr::Encoder enc(payload_);
  TraceStampSlots slots;
  Status st = transcode_native_record(native, enc, ts_delta, &slots);
  if (st) {
    ++record_count_;
    if (slots.traced) {
      trace_slots_.emplace_back(base + slots.seal_at_offset, base + slots.send_at_offset);
    }
  }
  return st;
}

Status BatchBuilder::add_record(const sensors::Record& record) {
  xdr::Encoder enc(payload_);
  Status st = encode_record(record, enc);
  if (st) ++record_count_;
  return st;
}

void BatchBuilder::patch_trace_stamps(TimeMicros seal_at, TimeMicros send_at) {
  for (const auto& [seal_offset, send_offset] : trace_slots_) {
    put_be64_at(payload_, seal_offset, static_cast<std::uint64_t>(seal_at));
    put_be64_at(payload_, send_offset, static_cast<std::uint64_t>(send_at));
  }
  trace_slots_.clear();
}

ByteBuffer BatchBuilder::finish() {
  put_be32_at(payload_, kCountOffset, record_count_);
  put_be64_at(payload_, kDroppedOffset, ring_dropped_total_);
  ByteBuffer out = std::move(payload_);
  ++next_batch_seq_;
  reset_payload();
  return out;
}

Result<Batch> decode_batch(xdr::Decoder& decoder) {
  Batch batch;
  auto node = decoder.get_u32();
  if (!node) return node.status();
  auto seq = decoder.get_u32();
  if (!seq) return seq.status();
  auto count = decoder.get_u32();
  if (!count) return count.status();
  auto dropped = decoder.get_u64();
  if (!dropped) return dropped.status();

  batch.header.node = node.value();
  batch.header.batch_seq = seq.value();
  batch.header.record_count = count.value();
  batch.header.ring_dropped_total = dropped.value();

  // A record is at least 16 bytes on the wire; reject absurd counts early.
  if (std::size_t{count.value()} * 16 > decoder.remaining() + 16) {
    return Status(Errc::malformed, "record count exceeds payload");
  }
  batch.records.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto record = decode_record(decoder, batch.header.node);
    if (!record) return record.status();
    batch.records.push_back(std::move(record).value());
  }
  if (!decoder.exhausted()) return Status(Errc::malformed, "trailing bytes after batch");
  return batch;
}

// ---- relay batches ----------------------------------------------------------

void RelayBatchBuilder::reset_payload() {
  payload_.clear();
  record_count_ = 0;
  watermark_ = 0;
  xdr::Encoder enc(payload_);
  put_type(MsgType::relay_batch, enc);
  enc.put_u32(relay_node_);
  enc.put_u32(next_batch_seq_);
  enc.put_u32(0);  // record_count, patched in finish()
  enc.put_i64(0);  // watermark, patched in finish()
}

Status RelayBatchBuilder::add_record(const sensors::Record& record) {
  xdr::Encoder enc(payload_);
  enc.put_u32(record.node);
  Status st = encode_record(record, enc);
  if (st) ++record_count_;
  return st;
}

ByteBuffer RelayBatchBuilder::finish() {
  put_be32_at(payload_, kCountOffset, record_count_);
  put_be64_at(payload_, kWatermarkOffset, static_cast<std::uint64_t>(watermark_));
  ByteBuffer out = std::move(payload_);
  ++next_batch_seq_;
  reset_payload();
  return out;
}

Result<RelayBatch> decode_relay_batch(xdr::Decoder& decoder) {
  RelayBatch batch;
  auto node = decoder.get_u32();
  if (!node) return node.status();
  auto seq = decoder.get_u32();
  if (!seq) return seq.status();
  auto count = decoder.get_u32();
  if (!count) return count.status();
  auto watermark = decoder.get_i64();
  if (!watermark) return watermark.status();

  batch.header.relay_node = node.value();
  batch.header.batch_seq = seq.value();
  batch.header.record_count = count.value();
  batch.header.watermark = watermark.value();

  // Origin-node prefix (4) + minimum record (16); reject absurd counts early.
  if (std::size_t{count.value()} * 20 > decoder.remaining() + 20) {
    return Status(Errc::malformed, "record count exceeds payload");
  }
  batch.records.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto origin = decoder.get_u32();
    if (!origin) return origin.status();
    auto record = decode_record(decoder, origin.value());
    if (!record) return record.status();
    batch.records.push_back(std::move(record).value());
  }
  if (!decoder.exhausted()) return Status(Errc::malformed, "trailing bytes after batch");
  return batch;
}

}  // namespace brisk::tp
