// Data batches: the unit the EXS ships to the ISM.
//
// "batching, latency control" is the EXS box in the paper's Fig. 1 — the
// EXS accumulates records and sends a batch when it is full or too old,
// trading throughput against latency. A batch frame is:
//     u32 type=data_batch | u32 node | u32 batch_seq | u32 record_count |
//     u64 ring_dropped_total | records...
// `ring_dropped_total` carries the node's cumulative drop counter so the
// ISM can account for event dropping without per-record sequence numbers.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sensors/record.hpp"
#include "tp/wire.hpp"

namespace brisk::tp {

struct BatchHeader {
  NodeId node = 0;
  std::uint32_t batch_seq = 0;
  std::uint32_t record_count = 0;
  std::uint64_t ring_dropped_total = 0;
};

struct Batch {
  BatchHeader header;
  std::vector<sensors::Record> records;
};

/// Incremental batch builder: records are appended pre-encoded (the EXS
/// transcodes straight from ring bytes), and the frame payload is produced
/// without re-copying record bodies.
class BatchBuilder {
 public:
  explicit BatchBuilder(NodeId node) : node_(node) { reset_payload(); }

  /// Appends one native-encoded record, applying the clock correction.
  Status add_native_record(ByteSpan native, TimeMicros ts_delta);
  /// Appends one decoded record (tools/tests path).
  Status add_record(const sensors::Record& record);

  [[nodiscard]] std::uint32_t record_count() const noexcept { return record_count_; }
  [[nodiscard]] bool empty() const noexcept { return record_count_ == 0; }
  /// Current frame payload size if finished now.
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload_.size(); }

  void set_ring_dropped_total(std::uint64_t total) noexcept { ring_dropped_total_ = total; }

  /// Back-patches the batch_seal / tp_send stamp slots of every traced
  /// record in the pending batch. Call (at most once) right before
  /// finish(); the batcher supplies times already in the synchronized
  /// timebase.
  void patch_trace_stamps(TimeMicros seal_at, TimeMicros send_at);

  /// Finishes the batch: back-patches the header and returns the frame
  /// payload. The builder is reset for the next batch (batch_seq advances).
  ByteBuffer finish();

 private:
  void reset_payload();

  NodeId node_;
  std::uint32_t next_batch_seq_ = 0;
  std::uint32_t record_count_ = 0;
  std::uint64_t ring_dropped_total_ = 0;
  ByteBuffer payload_;
  /// Absolute payload offsets of (batch_seal, tp_send) i64 stamp slots.
  std::vector<std::pair<std::size_t, std::size_t>> trace_slots_;
};

/// Parses a full data-batch frame payload (after the type word has already
/// been consumed by peek_type).
Result<Batch> decode_batch(xdr::Decoder& decoder);

// ---- relay batches (federation) --------------------------------------------
// The unit a relay ISM ships to its parent:
//     u32 type=relay_batch | u32 relay_node | u32 batch_seq |
//     u32 record_count | i64 watermark | (u32 origin_node | record)...
// The first four words match the data_batch layout on purpose — the shared
// replay/ack machinery in tp::UpstreamLink reads batch_seq and record_count
// at fixed offsets and never looks past them. The watermark replaces
// ring_dropped_total: it is the relay's merge-release watermark (already
// shifted into the parent's timebase), promising every record the relay
// will ever send is >= it. Records carry an origin-node prefix because one
// relay connection multiplexes all the nodes behind it.

struct RelayBatchHeader {
  NodeId relay_node = 0;
  std::uint32_t batch_seq = 0;
  std::uint32_t record_count = 0;
  TimeMicros watermark = 0;
};

struct RelayBatch {
  RelayBatchHeader header;
  /// Records in relay release order, each stamped with its origin node.
  std::vector<sensors::Record> records;
};

/// Incremental relay-batch builder; mirrors BatchBuilder but takes decoded
/// records (the relay re-encodes its pipeline's post-merge output) and
/// patches the watermark instead of the ring-drop counter.
class RelayBatchBuilder {
 public:
  explicit RelayBatchBuilder(NodeId relay_node) : relay_node_(relay_node) { reset_payload(); }

  /// Appends one ordered record; `record.node` is the origin node.
  Status add_record(const sensors::Record& record);

  void set_watermark(TimeMicros watermark) noexcept { watermark_ = watermark; }

  [[nodiscard]] std::uint32_t record_count() const noexcept { return record_count_; }
  [[nodiscard]] bool empty() const noexcept { return record_count_ == 0; }
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload_.size(); }

  /// Finishes the batch: back-patches count + watermark and returns the
  /// frame payload. The builder resets and batch_seq advances.
  ByteBuffer finish();

 private:
  void reset_payload();

  NodeId relay_node_;
  std::uint32_t next_batch_seq_ = 0;
  std::uint32_t record_count_ = 0;
  TimeMicros watermark_ = 0;
  ByteBuffer payload_;
};

/// Parses a full relay-batch frame payload (type word already consumed).
Result<RelayBatch> decode_relay_batch(xdr::Decoder& decoder);

}  // namespace brisk::tp
