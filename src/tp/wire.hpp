// Record-level wire codec and control messages of the transfer protocol.
//
// Frame payloads exchanged between an EXS and the ISM are XDR-encoded
// messages: a u32 message type followed by a type-specific body. DATA
// batches carry records encoded as
//     i64 timestamp | compressed meta header | field payloads
// (field payloads carry no per-field tags — types come from the meta
// header; that is the header compression).
//
// The clock-sync messages implement the master(ISM)/slave(EXS) protocol:
// the ISM polls with TIME_REQ, the EXS answers TIME_RESP with its corrected
// clock, and the ISM pushes ADJUST deltas that the EXS folds into the
// correction value it applies to every outgoing timestamp.
//
// The session-resilience messages (protocol v2) make the EXS⇄ISM link
// survivable: HELLO carries an `incarnation` so the ISM can tell a
// reconnect of the same EXS process (batch sequence numbers continue,
// replayed batches are deduped) from a restarted one (sequence tracking
// resets); HELLO_ACK tells the rejoining EXS which batch to resume from;
// BATCH_ACK carries the ISM's cumulative receive cursor so the EXS can trim
// its replay buffer and re-send batches lost to a faulty link; HEARTBEAT
// keeps idle sessions distinguishable from dead ones.
//
// Credit-based flow control (protocol v3) rides the same ack frames: a
// HELLO_ACK or BATCH_ACK may carry a trailing CreditGrant naming how many
// records and bytes the EXS may keep in flight (sent but unacknowledged)
// beyond the ack's cursor. The extension is length-delimited by the frame:
// a v2 ack simply ends after its base fields, so v2 peers interoperate
// unchanged — the ISM only appends grants for peers that said hello with
// version >= 3, and an EXS that never receives one paces nothing.
//
// Federation (relay tier): a relay ISM presents itself to its parent as an
// EXS-shaped peer whose HELLO carries a trailing capability word with the
// ordered-stream bit set. Its data travels as RELAY_BATCH frames — the
// same header shape as DATA_BATCH (so replay/ack machinery is shared) but
// with a release watermark instead of the ring-drop counter and a per-record
// origin-node prefix, since one relay connection multiplexes many origin
// nodes. RELAY_WATERMARK frames advance the watermark while the relay is
// idle so an empty relay never stalls the parent's merge.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sensors/record.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::tp {

inline constexpr std::uint32_t kProtocolVersion = 3;
/// Oldest peer version the ISM still accepts (v2: resilience without
/// credit-based flow control).
inline constexpr std::uint32_t kMinProtocolVersion = 2;
/// First version whose acks may carry a credit grant.
inline constexpr std::uint32_t kCreditProtocolVersion = 3;

enum class MsgType : std::uint32_t {
  hello = 1,       // EXS → ISM: node id, version, incarnation
  data_batch = 2,  // EXS → ISM: a batch of records
  time_req = 3,    // ISM → EXS: clock poll
  time_resp = 4,   // EXS → ISM: clock answer
  adjust = 5,      // ISM → EXS: clock correction delta
  bye = 6,         // either direction: orderly shutdown
  heartbeat = 7,   // either direction: liveness signal (empty body)
  hello_ack = 8,   // ISM → EXS: session accepted, resume cursor
  batch_ack = 9,   // ISM → EXS: cumulative receive cursor
  // --- consumer-gateway protocol (brisk_ism --consumer-port) -----------------
  subscribe = 10,      // consumer → ISM: filter spec, kind, queue depth
  subscribe_ack = 11,  // ISM → consumer: accepted/rejected + subscription id
  unsubscribe = 12,    // consumer → ISM: stop the stream, keep the connection
  sub_data = 13,       // ISM → consumer: one sorted record (output encoding)
  sub_agg = 14,        // ISM → consumer: one closed aggregation window
  // --- federation (relay → parent ISM) ----------------------------------------
  relay_batch = 15,      // relay → parent: ordered multi-node batch + watermark
  relay_watermark = 16,  // relay → parent: idle watermark advance
};

/// HELLO capability bits (the trailing capability word). The stream behind
/// this connection is already ordered — records arrive in (timestamp, node)
/// order and carry watermarks, so the receiver may bypass its sorter shards
/// and feed the k-way merge directly.
inline constexpr std::uint32_t kCapabilityOrderedStream = 1u << 0;
/// Every capability bit this build understands. A HELLO carrying unknown
/// bits is malformed: capabilities change how the peer must treat the
/// stream, so they cannot be ignored safely.
inline constexpr std::uint32_t kKnownCapabilities = kCapabilityOrderedStream;

struct Hello {
  NodeId node = 0;
  std::uint32_t version = kProtocolVersion;
  /// Distinguishes a reconnect of the same EXS process (incarnation
  /// matches the ISM's session record, batch sequence numbers continue)
  /// from a restarted process (fresh incarnation, sequence tracking
  /// resets). 0 is legal but defeats crash detection; daemons derive a
  /// unique value at startup.
  std::uint64_t incarnation = 0;
  /// Optional trailing capability word. Encoded only when non-zero, so a
  /// capability-free HELLO is byte-identical to the v2/v3 form; absent on
  /// the wire decodes as 0.
  std::uint32_t capabilities = 0;
};

/// Flow-control window granted by the ISM, piggybacked on ack frames.
/// Semantics are a sliding window anchored at the ack's cursor: the EXS may
/// hold at most `window_records` records / `window_bytes` frame bytes in
/// sent-but-unacknowledged batches. Grants are not cumulative — each one
/// replaces the previous window, so a lost ack costs nothing and a shrunk
/// window takes effect on the next send decision.
struct CreditGrant {
  /// Session the grant belongs to; the EXS ignores grants for an
  /// incarnation it is not running (stale acks across a restart).
  std::uint64_t incarnation = 0;
  /// Records the EXS may have in flight. 0 = window closed (send nothing
  /// new until a replenishing grant arrives).
  std::uint32_t window_records = 0;
  /// Frame payload bytes the EXS may have in flight. 0 = no byte cap.
  std::uint64_t window_bytes = 0;
};

struct HelloAck {
  std::uint64_t incarnation = 0;        // echo of the accepted HELLO
  std::uint32_t next_expected_seq = 0;  // first batch_seq the ISM wants
  /// v3 flow control; absent from/for v2 peers and when credits are off.
  std::optional<CreditGrant> credit;
};

struct BatchAck {
  /// All batches with batch_seq < next_expected_seq have been accepted;
  /// anything at or above it is still outstanding from the ISM's view.
  std::uint32_t next_expected_seq = 0;
  /// v3 flow control; absent from/for v2 peers and when credits are off.
  std::optional<CreditGrant> credit;
};

// ---- consumer-gateway protocol ---------------------------------------------
// The read path's mirror image of the EXS protocol: a consumer connects to
// the ISM's --consumer-port, sends SUBSCRIBE naming a filter, and receives
// SUB_DATA frames (each one output-encoded record that passed the filter)
// or, for an aggregate subscription, SUB_AGG frames (one per closed
// window). One subscription per connection; a second SUBSCRIBE replaces
// the first. The filter travels as its textual spec (see ism/filter.hpp)
// so the wire format never chases the predicate grammar.

enum class SubscriptionKind : std::uint32_t {
  stream = 0,     // every matching record, in sorted order
  aggregate = 1,  // per-(node, sensor) count/rate/histogram windows
};

struct SubscribeRequest {
  /// Subscriber label for per-subscriber gateway metrics ("" = generated).
  std::string name;
  /// Textual filter spec; "" = every record.
  std::string filter;
  SubscriptionKind kind = SubscriptionKind::stream;
  /// Requested per-subscriber queue depth in records; 0 = gateway default.
  /// The gateway clamps to its configured maximum.
  std::uint32_t queue_records = 0;
  /// Aggregation window in microseconds; 0 = gateway default.
  std::uint64_t agg_window_us = 0;
};

struct SubscribeAck {
  bool accepted = false;
  std::uint32_t subscription_id = 0;  // valid when accepted
  std::string message;                // rejection reason when !accepted
};

struct Unsubscribe {
  std::uint32_t subscription_id = 0;
};

/// One closed aggregation window: per-(node, sensor) record counts plus a
/// histogram of inter-arrival gaps (microseconds between consecutive
/// matching records of that key, by sorted-stream timestamps). Keys are
/// sorted by (node, sensor), so identical inputs produce identical frames.
struct AggWindow {
  struct Key {
    NodeId node = 0;
    SensorId sensor = 0;
    std::uint64_t count = 0;
    /// Non-empty buckets of the inter-arrival histogram as (inclusive
    /// upper bound, count) pairs, ascending by bound.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> gap_buckets;

    bool operator==(const Key&) const noexcept = default;
  };

  TimeMicros window_start = 0;  // inclusive
  TimeMicros window_end = 0;    // exclusive
  std::vector<Key> keys;

  bool operator==(const AggWindow&) const noexcept = default;
};

struct TimeReq {
  std::uint32_t request_id = 0;
};

struct TimeResp {
  std::uint32_t request_id = 0;
  TimeMicros slave_time = 0;
};

struct Adjust {
  TimeMicros delta = 0;
};

/// Standalone watermark advance from an idle relay: "everything I will ever
/// send is >= watermark". Data-carrying RELAY_BATCH frames carry the same
/// promise in their header; this frame exists so an idle relay keeps the
/// parent's merge moving.
struct RelayWatermark {
  NodeId relay_node = 0;
  TimeMicros watermark = 0;
};

// ---- record codec ----------------------------------------------------------

/// XDR wire size of a record, given its decoded form.
std::size_t record_wire_size(const sensors::Record& record);

/// Encodes a decoded record (node id travels in the batch header, sequence
/// numbers do not cross the wire — see DESIGN.md).
Status encode_record(const sensors::Record& record, xdr::Encoder& encoder);

/// Decodes one record; `node` comes from the enclosing batch.
Result<sensors::Record> decode_record(xdr::Decoder& decoder, NodeId node);

/// Encoder-relative offsets of the trace-stamp slots a transcode reserved
/// for the stages only the batcher knows (batch seal, TP send). The batch
/// builder turns them into absolute payload offsets and the batcher patches
/// the i64 timestamps in place just before the batch ships.
struct TraceStampSlots {
  bool traced = false;
  std::size_t seal_at_offset = 0;  // offset of the batch_seal stamp's i64
  std::size_t send_at_offset = 0;  // offset of the tp_send stamp's i64
};

/// Fast path used by the EXS: transcodes a native-encoded record (as read
/// from the ring) straight into wire form, adding `ts_delta` (the clock
/// correction) to the header timestamp, every X_TS field, and every trace
/// stamp, without materializing a Record. A traced record gets two extra
/// zero-valued stamps (batch_seal, tp_send) whose slot offsets are reported
/// through `slots` when non-null.
Status transcode_native_record(ByteSpan native, xdr::Encoder& encoder, TimeMicros ts_delta,
                               TraceStampSlots* slots = nullptr);

// ---- control message codec --------------------------------------------------

void encode_hello(const Hello& msg, xdr::Encoder& encoder);
Result<Hello> decode_hello(xdr::Decoder& decoder);

void encode_time_req(const TimeReq& msg, xdr::Encoder& encoder);
Result<TimeReq> decode_time_req(xdr::Decoder& decoder);

void encode_time_resp(const TimeResp& msg, xdr::Encoder& encoder);
Result<TimeResp> decode_time_resp(xdr::Decoder& decoder);

void encode_adjust(const Adjust& msg, xdr::Encoder& encoder);
Result<Adjust> decode_adjust(xdr::Decoder& decoder);

void encode_hello_ack(const HelloAck& msg, xdr::Encoder& encoder);
Result<HelloAck> decode_hello_ack(xdr::Decoder& decoder);

void encode_batch_ack(const BatchAck& msg, xdr::Encoder& encoder);
Result<BatchAck> decode_batch_ack(xdr::Decoder& decoder);

void encode_subscribe(const SubscribeRequest& msg, xdr::Encoder& encoder);
Result<SubscribeRequest> decode_subscribe(xdr::Decoder& decoder);

void encode_subscribe_ack(const SubscribeAck& msg, xdr::Encoder& encoder);
Result<SubscribeAck> decode_subscribe_ack(xdr::Decoder& decoder);

void encode_unsubscribe(const Unsubscribe& msg, xdr::Encoder& encoder);
Result<Unsubscribe> decode_unsubscribe(xdr::Decoder& decoder);

void encode_agg_window(const AggWindow& msg, xdr::Encoder& encoder);
Result<AggWindow> decode_agg_window(xdr::Decoder& decoder);

void encode_relay_watermark(const RelayWatermark& msg, xdr::Encoder& encoder);
Result<RelayWatermark> decode_relay_watermark(xdr::Decoder& decoder);

/// Reads the leading message type of a frame payload.
Result<MsgType> peek_type(xdr::Decoder& decoder);
/// Writes the leading message type.
void put_type(MsgType type, xdr::Encoder& encoder);

}  // namespace brisk::tp
