// brisk_consume: an instrumentation-data consumer tool. Attaches to the
// ISM's named shared-memory output buffer ("which is then read by
// instrumentation data consumer tools") and either streams PICL lines to
// stdout or accumulates summary statistics.
//
// Usage:
//   brisk_consume --shm /brisk-out [--mode picl|stats] [--max-records N]
//                 [--idle-exit-ms 2000] [--picl-utc]
//
// Exits after --max-records records, or when no record arrived for
// --idle-exit-ms (0 = run until SIGINT).
#include <csignal>
#include <cstdio>

#include "apps/flag_parser.hpp"
#include "common/time_util.hpp"
#include "clock/clock.hpp"
#include "consumers/shm_consumer.hpp"
#include "consumers/trace_stats.hpp"
#include "core/version.hpp"
#include "shm/shared_region.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

brisk::apps::FlagRegistry make_registry() {
  brisk::apps::FlagRegistry flags("brisk_consume", "BRISK shared-memory trace consumer");
  flags.add_string("shm", "", "named shared-memory output ring to attach (required)")
      .add_string("mode", "picl", "output mode: picl (stream lines) or stats (summary)")
      .add_int("max-records", 0, "exit after this many records (0 = unlimited)")
      .add_int("idle-exit-ms", 2'000, "exit after this long with no records (0 = never)")
      .add_bool("picl-utc", true, "stamp PICL lines with UTC micros");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brisk;  // NOLINT
  apps::FlagRegistry flags = make_registry();
  flags.parse(argc, argv);
  const std::string shm_name = flags.str("shm");
  const std::string mode = flags.str("mode");
  const long long max_records = flags.num("max-records");
  const long long idle_exit_ms = flags.num("idle-exit-ms");
  picl::PiclOptions picl_options;
  if (flags.flag("picl-utc")) {
    picl_options.mode = picl::TimestampMode::utc_micros;
  } else {
    picl_options.mode = picl::TimestampMode::seconds_from_epoch;
    picl_options.epoch_us = clk::SystemClock::instance().now();
  }

  if (shm_name.empty()) {
    std::fprintf(stderr, "brisk_consume: --shm /name is required\n");
    return 2;
  }
  if (mode != "picl" && mode != "stats") {
    std::fprintf(stderr, "brisk_consume: --mode must be picl or stats\n");
    return 2;
  }

  auto region = shm::SharedRegion::open_named(shm_name);
  if (!region) {
    std::fprintf(stderr, "brisk_consume: %s\n", region.status().to_string().c_str());
    return 1;
  }
  auto ring = shm::RingBuffer::attach(region.value().data(), region.value().size());
  if (!ring) {
    std::fprintf(stderr, "brisk_consume: %s\n", ring.status().to_string().c_str());
    return 1;
  }
  consumers::ShmConsumer consumer(ring.value());
  consumers::TraceStats stats;

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::fprintf(stderr, "brisk_consume %s attached to %s (%s mode)\n", version_string(),
               shm_name.c_str(), mode.c_str());

  long long received = 0;
  TimeMicros last_record_at = monotonic_micros();
  while (g_stop == 0) {
    auto record = consumer.poll();
    if (!record) {
      std::fprintf(stderr, "brisk_consume: %s\n", record.status().to_string().c_str());
      return 1;
    }
    if (!record.value().has_value()) {
      if (idle_exit_ms > 0 &&
          monotonic_micros() - last_record_at > idle_exit_ms * 1'000) {
        break;
      }
      sleep_micros(1'000);
      continue;
    }
    last_record_at = monotonic_micros();
    ++received;
    if (mode == "picl") {
      std::printf("%s\n", picl::to_picl_line(*record.value(), picl_options).c_str());
    }
    stats.add(*record.value());
    if (max_records > 0 && received >= max_records) break;
  }

  std::fprintf(stderr, "--- summary ---\n%s", stats.report().c_str());
  return 0;
}
