// brisk_consume: an instrumentation-data consumer tool. Attaches to the
// ISM's named shared-memory output buffer ("which is then read by
// instrumentation data consumer tools") — or follows a PICL trace file —
// and streams PICL lines, accumulates summary statistics, or tabulates the
// IS's own self-instrumentation metrics.
//
// Usage:
//   brisk_consume --shm /brisk-out [--mode picl|stats|metrics] [--metrics]
//                 [--max-records N] [--idle-exit-ms 2000] [--picl-utc]
//   brisk_consume --picl-file trace.picl --mode metrics
//
// --metrics is shorthand for --mode metrics: a live tabulated view of the
// named counters and gauges the daemons emit as reserved-sensor-id records
// (refreshed about once a second, and once more at exit).
//
// Exits after --max-records records, or when no record arrived for
// --idle-exit-ms (0 = run until SIGINT).
#include <csignal>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "apps/flag_parser.hpp"
#include "common/time_util.hpp"
#include "clock/clock.hpp"
#include "consumers/shm_consumer.hpp"
#include "consumers/trace_stats.hpp"
#include "core/version.hpp"
#include "picl/picl_reader.hpp"
#include "sensors/metrics_record.hpp"
#include "shm/shared_region.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

brisk::apps::FlagRegistry make_registry() {
  brisk::apps::FlagRegistry flags("brisk_consume", "BRISK shared-memory trace consumer");
  flags.add_string("shm", "", "named shared-memory output ring to attach")
      .add_string("picl-file", "", "follow a PICL trace file instead of --shm")
      .add_string("mode", "picl", "output mode: picl (stream lines), stats, or metrics")
      .add_bool("metrics", false, "shorthand for --mode metrics")
      .add_int("max-records", 0, "exit after this many records (0 = unlimited)")
      .add_int("idle-exit-ms", 2'000, "exit after this long with no records (0 = never)")
      .add_bool("picl-utc", true, "stamp PICL lines with UTC micros");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brisk;  // NOLINT
  apps::FlagRegistry flags = make_registry();
  flags.parse(argc, argv);
  const std::string shm_name = flags.str("shm");
  const std::string picl_path = flags.str("picl-file");
  const std::string mode = flags.flag("metrics") ? "metrics" : flags.str("mode");
  const long long max_records = flags.num("max-records");
  const long long idle_exit_ms = flags.num("idle-exit-ms");
  picl::PiclOptions picl_options;
  if (flags.flag("picl-utc")) {
    picl_options.mode = picl::TimestampMode::utc_micros;
  } else {
    picl_options.mode = picl::TimestampMode::seconds_from_epoch;
    picl_options.epoch_us = clk::SystemClock::instance().now();
  }

  if (shm_name.empty() && picl_path.empty()) {
    std::fprintf(stderr, "brisk_consume: --shm /name or --picl-file path is required\n");
    return 2;
  }
  if (mode != "picl" && mode != "stats" && mode != "metrics") {
    std::fprintf(stderr, "brisk_consume: --mode must be picl, stats, or metrics\n");
    return 2;
  }

  // Input source: the ISM's shm output ring, or a PICL trace file followed
  // tail -f style (PiclReader treats a half-written final line as
  // end-of-stream and rewinds, so polling next() is safe mid-write).
  std::optional<shm::SharedRegion> region;
  std::optional<consumers::ShmConsumer> consumer;
  std::optional<picl::PiclReader> reader;
  if (!picl_path.empty()) {
    auto opened = picl::PiclReader::open(picl_path, picl_options);
    if (!opened) {
      std::fprintf(stderr, "brisk_consume: %s\n", opened.status().to_string().c_str());
      return 1;
    }
    reader.emplace(std::move(opened).value());
  } else {
    auto opened = shm::SharedRegion::open_named(shm_name);
    if (!opened) {
      std::fprintf(stderr, "brisk_consume: %s\n", opened.status().to_string().c_str());
      return 1;
    }
    region.emplace(std::move(opened).value());
    auto ring = shm::RingBuffer::attach(region->data(), region->size());
    if (!ring) {
      std::fprintf(stderr, "brisk_consume: %s\n", ring.status().to_string().c_str());
      return 1;
    }
    consumer.emplace(ring.value());
  }
  consumers::TraceStats stats;

  auto poll_record = [&]() -> Result<std::optional<sensors::Record>> {
    if (reader.has_value()) return reader->next();
    return consumer->poll();
  };

  // Live metrics table: (node, metric name) -> latest sample. Counters and
  // gauges alike show their most recent value — the records are snapshots.
  struct MetricRow {
    std::uint64_t value = 0;
    sensors::MetricKind kind = sensors::MetricKind::counter;
  };
  std::map<std::pair<NodeId, std::string>, MetricRow> metric_table;
  std::uint64_t metric_records = 0;
  auto print_metrics = [&] {
    std::printf("=== metrics: %zu series, %llu records ===\n", metric_table.size(),
                static_cast<unsigned long long>(metric_records));
    for (const auto& [key, row] : metric_table) {
      std::printf("node %10u  %-44s %20llu  %s\n", key.first, key.second.c_str(),
                  static_cast<unsigned long long>(row.value),
                  row.kind == sensors::MetricKind::gauge ? "gauge" : "counter");
    }
    std::fflush(stdout);
  };

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::fprintf(stderr, "brisk_consume %s attached to %s (%s mode)\n", version_string(),
               picl_path.empty() ? shm_name.c_str() : picl_path.c_str(), mode.c_str());

  long long received = 0;
  TimeMicros last_record_at = monotonic_micros();
  TimeMicros last_table_at = monotonic_micros();
  while (g_stop == 0) {
    auto record = poll_record();
    if (!record) {
      std::fprintf(stderr, "brisk_consume: %s\n", record.status().to_string().c_str());
      return 1;
    }
    const TimeMicros now = monotonic_micros();
    if (mode == "metrics" && !metric_table.empty() && now - last_table_at >= 1'000'000) {
      last_table_at = now;
      print_metrics();
    }
    if (!record.value().has_value()) {
      if (idle_exit_ms > 0 && now - last_record_at > idle_exit_ms * 1'000) break;
      sleep_micros(1'000);
      continue;
    }
    last_record_at = now;
    ++received;
    if (mode == "picl") {
      std::printf("%s\n", picl::to_picl_line(*record.value(), picl_options).c_str());
    } else if (mode == "metrics" && sensors::is_metrics_record(*record.value())) {
      auto point = sensors::decode_metrics_record(*record.value());
      if (point) {
        ++metric_records;
        metric_table[{record.value()->node, point.value().name}] =
            MetricRow{point.value().value, point.value().kind};
      }
    }
    stats.add(*record.value());
    if (max_records > 0 && received >= max_records) break;
  }

  if (mode == "metrics") print_metrics();
  std::fprintf(stderr, "--- summary ---\n%s", stats.report().c_str());
  return 0;
}
