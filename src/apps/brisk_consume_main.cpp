// brisk_consume: an instrumentation-data consumer tool. Attaches to the
// ISM's named shared-memory output buffer ("which is then read by
// instrumentation data consumer tools") — or follows a PICL trace file —
// and streams PICL lines, accumulates summary statistics, or tabulates the
// IS's own self-instrumentation metrics.
//
// Usage:
//   brisk_consume --shm /brisk-out [--mode picl|stats|metrics|latency]
//                 [--metrics] [--max-records N] [--idle-exit-ms 2000]
//                 [--stale-ms 10000] [--trace-out chrome.json] [--picl-utc]
//   brisk_consume --picl-file trace.picl --mode metrics
//   brisk_consume --connect 127.0.0.1:7412 --filter node=1,sensor=100-199
//   brisk_consume --connect 127.0.0.1:7412 --mode agg --agg-window-us 1000000
//
// --connect subscribes over the ISM's TCP consumer gateway instead of
// attaching to shared memory; --filter pushes the predicate down to the ISM
// (syntax: node=1,2,5-8,sensor=100-199,sample=16), so only matching records
// cross the wire. All record modes work over either source; --mode agg
// (gateway only) streams closed per-(node, sensor) aggregation windows.
//
// --metrics is shorthand for --mode metrics: a live tabulated view of the
// named counters and gauges the daemons emit as reserved-sensor-id records
// (refreshed about once a second, and once more at exit).
//
// --mode latency renders the stage-pair latency histograms (lat.* series,
// emitted by the ISM when records carry trace annotations) as a live
// count/p50/p90/p99/max table. --trace-out writes every trace-span record
// seen (reserved sensor 0xFF02) as Chrome trace_event JSON on exit — load
// it in chrome://tracing or Perfetto. Table rows from a node that stopped
// reporting are evicted after --stale-ms (0 = keep forever).
//
// --mode health folds the 0xFF01 metrics and 0xFF03 flight-recorder event
// streams into a per-node live/stale/departed table with pressure columns
// (drops, stalls, zero-window grants, reconnects); --health-stale-ms sets
// the staleness threshold (departed at 3x). --json switches the metrics,
// latency, and health tables to one JSON object per refresh on stdout.
//
// Exits after --max-records records, or when no record arrived for
// --idle-exit-ms (0 = run until SIGINT).
#include <csignal>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/flag_parser.hpp"
#include "common/time_util.hpp"
#include "clock/clock.hpp"
#include "consumers/gateway_client.hpp"
#include "consumers/health.hpp"
#include "consumers/shm_consumer.hpp"
#include "consumers/trace_stats.hpp"
#include "core/version.hpp"
#include "metrics/metrics.hpp"
#include "picl/picl_reader.hpp"
#include "sensors/metrics_record.hpp"
#include "sensors/trace_record.hpp"
#include "shm/shared_region.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

brisk::apps::FlagRegistry make_registry() {
  brisk::apps::FlagRegistry flags("brisk_consume", "BRISK shared-memory trace consumer");
  flags.add_string("shm", "", "named shared-memory output ring to attach")
      .add_string("picl-file", "", "follow a PICL trace file instead of --shm")
      .add_string("connect", "", "subscribe to an ISM consumer gateway at host:port")
      .add_string("filter", "", "pushdown filter spec (node=...,sensor=...,sample=N)")
      .add_string("sub-name", "", "subscriber label for gateway metrics (empty = generated)")
      .add_int("sub-queue-records", 0, "requested gateway queue depth (0 = gateway default)")
      .add_int("agg-window-us", 0, "aggregation window for --mode agg (0 = gateway default)")
      .add_string("mode", "picl",
                  "output mode: picl (stream lines), stats, metrics, latency, health, or agg")
      .add_bool("metrics", false, "shorthand for --mode metrics")
      .add_bool("json", false,
                "emit the metrics/latency/health tables as one JSON object per refresh")
      .add_int("health-stale-ms", 3'000,
               "health mode: nodes silent this long are stale, 3x departed (0 = never)")
      .add_string("trace-out", "", "write trace spans as Chrome trace_event JSON to this file")
      .add_int("max-records", 0, "exit after this many records (0 = unlimited)")
      .add_int("idle-exit-ms", 2'000, "exit after this long with no records (0 = never)")
      .add_int("stale-ms", 10'000, "evict table rows idle this long (0 = never)")
      .add_bool("picl-utc", true, "stamp PICL lines with UTC micros");
  return flags;
}

/// One Chrome trace_event JSON object (a complete "X" slice, or metadata).
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brisk;  // NOLINT
  apps::FlagRegistry flags = make_registry();
  flags.parse(argc, argv);
  const std::string shm_name = flags.str("shm");
  const std::string picl_path = flags.str("picl-file");
  const std::string mode = flags.flag("metrics") ? "metrics" : flags.str("mode");
  const std::string trace_out = flags.str("trace-out");
  const long long max_records = flags.num("max-records");
  const long long idle_exit_ms = flags.num("idle-exit-ms");
  const long long stale_ms = flags.num("stale-ms");
  const bool json = flags.flag("json");
  const long long health_stale_ms = flags.num("health-stale-ms");
  picl::PiclOptions picl_options;
  if (flags.flag("picl-utc")) {
    picl_options.mode = picl::TimestampMode::utc_micros;
  } else {
    picl_options.mode = picl::TimestampMode::seconds_from_epoch;
    picl_options.epoch_us = clk::SystemClock::instance().now();
  }

  const std::string connect_to = flags.str("connect");
  if (shm_name.empty() && picl_path.empty() && connect_to.empty()) {
    std::fprintf(stderr,
                 "brisk_consume: --shm /name, --picl-file path, or --connect host:port "
                 "is required\n");
    return 2;
  }
  if (mode != "picl" && mode != "stats" && mode != "metrics" && mode != "latency" &&
      mode != "health" && mode != "agg") {
    std::fprintf(stderr,
                 "brisk_consume: --mode must be picl, stats, metrics, latency, health, "
                 "or agg\n");
    return 2;
  }
  if (mode == "agg" && connect_to.empty()) {
    std::fprintf(stderr, "brisk_consume: --mode agg requires --connect\n");
    return 2;
  }

  // Input source: the ISM's shm output ring, or a PICL trace file followed
  // tail -f style (PiclReader treats a half-written final line as
  // end-of-stream and rewinds, so polling next() is safe mid-write).
  std::optional<shm::SharedRegion> region;
  std::optional<consumers::ShmConsumer> consumer;
  std::optional<picl::PiclReader> reader;
  std::optional<consumers::GatewayClient> gateway;
  if (!connect_to.empty()) {
    const std::size_t colon = connect_to.rfind(':');
    if (colon == std::string::npos || colon + 1 >= connect_to.size()) {
      std::fprintf(stderr, "brisk_consume: --connect expects host:port\n");
      return 2;
    }
    const std::string host = connect_to.substr(0, colon);
    const int port = std::atoi(connect_to.c_str() + colon + 1);
    if (port <= 0 || port > 65535) {
      std::fprintf(stderr, "brisk_consume: bad --connect port\n");
      return 2;
    }
    consumers::GatewayClient::Options options;
    options.name = flags.str("sub-name");
    options.filter = flags.str("filter");
    options.kind = mode == "agg" ? tp::SubscriptionKind::aggregate : tp::SubscriptionKind::stream;
    options.queue_records = static_cast<std::uint32_t>(flags.num("sub-queue-records"));
    options.agg_window_us = static_cast<std::uint64_t>(flags.num("agg-window-us"));
    auto connected =
        consumers::GatewayClient::connect(host, static_cast<std::uint16_t>(port), options);
    if (!connected) {
      std::fprintf(stderr, "brisk_consume: %s\n", connected.status().to_string().c_str());
      return 1;
    }
    gateway.emplace(std::move(connected).value());
  } else if (!picl_path.empty()) {
    auto opened = picl::PiclReader::open(picl_path, picl_options);
    if (!opened) {
      std::fprintf(stderr, "brisk_consume: %s\n", opened.status().to_string().c_str());
      return 1;
    }
    reader.emplace(std::move(opened).value());
  } else {
    auto opened = shm::SharedRegion::open_named(shm_name);
    if (!opened) {
      std::fprintf(stderr, "brisk_consume: %s\n", opened.status().to_string().c_str());
      return 1;
    }
    region.emplace(std::move(opened).value());
    auto ring = shm::RingBuffer::attach(region->data(), region->size());
    if (!ring) {
      std::fprintf(stderr, "brisk_consume: %s\n", ring.status().to_string().c_str());
      return 1;
    }
    consumer.emplace(ring.value());
  }
  consumers::TraceStats stats;

  auto poll_record = [&]() -> Result<std::optional<sensors::Record>> {
    if (gateway.has_value()) return gateway->poll();
    if (reader.has_value()) return reader->next();
    return consumer->poll();
  };

  // Live metrics table: (node, metric name) -> latest sample. Counters and
  // gauges alike show their most recent value — the records are snapshots.
  // Histogram bucket samples go to the latency table instead.
  struct MetricRow {
    std::uint64_t value = 0;
    sensors::MetricKind kind = sensors::MetricKind::counter;
    TimeMicros updated_at = 0;
  };
  std::map<std::pair<NodeId, std::string>, MetricRow> metric_table;
  std::uint64_t metric_records = 0;

  // Latency table: (node, histogram base name) -> cumulative bucket counts
  // keyed by upper bound. Each snapshot replaces the bucket's count (the
  // exported values are cumulative since daemon start).
  struct LatencyRow {
    std::map<std::uint64_t, std::uint64_t> buckets;  // bound -> count
    TimeMicros updated_at = 0;
  };
  std::map<std::pair<NodeId, std::string>, LatencyRow> latency_table;

  consumers::HealthRollup::Options health_options;
  health_options.stale_after_us = static_cast<TimeMicros>(health_stale_ms) * 1'000;
  health_options.departed_after_us = health_options.stale_after_us * 3;
  consumers::HealthRollup health(health_options);

  auto evict_stale = [&](TimeMicros now) {
    if (stale_ms <= 0) return;
    const TimeMicros horizon = static_cast<TimeMicros>(stale_ms) * 1'000;
    for (auto it = metric_table.begin(); it != metric_table.end();) {
      if (now - it->second.updated_at > horizon) {
        it = metric_table.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = latency_table.begin(); it != latency_table.end();) {
      if (now - it->second.updated_at > horizon) {
        it = latency_table.erase(it);
      } else {
        ++it;
      }
    }
  };

  auto print_metrics = [&] {
    std::printf("=== metrics: %zu series, %llu records ===\n", metric_table.size(),
                static_cast<unsigned long long>(metric_records));
    for (const auto& [key, row] : metric_table) {
      std::printf("node %10u  %-44s %20llu  %s\n", key.first, key.second.c_str(),
                  static_cast<unsigned long long>(row.value),
                  row.kind == sensors::MetricKind::gauge ? "gauge" : "counter");
    }
    std::fflush(stdout);
  };

  auto print_latency = [&] {
    std::printf("=== latency: %zu stage pairs (microseconds) ===\n", latency_table.size());
    std::printf("node %10s  %-24s %12s %10s %10s %10s %10s\n", "", "stage pair", "count",
                "p50", "p90", "p99", "max");
    for (const auto& [key, row] : latency_table) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets(row.buckets.begin(),
                                                                   row.buckets.end());
      std::uint64_t total = 0;
      for (const auto& [bound, count] : buckets) total += count;
      if (total == 0) continue;
      const std::uint64_t p50 = metrics::histogram_percentile(buckets, 0.50);
      const std::uint64_t p90 = metrics::histogram_percentile(buckets, 0.90);
      const std::uint64_t p99 = metrics::histogram_percentile(buckets, 0.99);
      const std::uint64_t max = metrics::histogram_percentile(buckets, 1.00);
      std::printf("node %10u  %-24s %12llu %10llu %10llu %10llu %10llu\n", key.first,
                  key.second.c_str(), static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(p50), static_cast<unsigned long long>(p90),
                  static_cast<unsigned long long>(p99), static_cast<unsigned long long>(max));
    }
    std::fflush(stdout);
  };

  auto print_metrics_json = [&] {
    std::printf("{\"mode\":\"metrics\",\"records\":%llu,\"series\":[",
                static_cast<unsigned long long>(metric_records));
    bool first = true;
    for (const auto& [key, row] : metric_table) {
      std::printf("%s{\"node\":%u,\"name\":\"%s\",\"kind\":\"%s\",\"value\":%llu}",
                  first ? "" : ",", key.first, json_escape(key.second).c_str(),
                  row.kind == sensors::MetricKind::gauge ? "gauge" : "counter",
                  static_cast<unsigned long long>(row.value));
      first = false;
    }
    std::printf("]}\n");
    std::fflush(stdout);
  };

  auto print_latency_json = [&] {
    std::printf("{\"mode\":\"latency\",\"rows\":[");
    bool first = true;
    for (const auto& [key, row] : latency_table) {
      std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets(row.buckets.begin(),
                                                                   row.buckets.end());
      std::uint64_t total = 0;
      for (const auto& [bound, count] : buckets) total += count;
      if (total == 0) continue;
      std::printf("%s{\"node\":%u,\"name\":\"%s\",\"count\":%llu,\"p50\":%llu,"
                  "\"p90\":%llu,\"p99\":%llu,\"max\":%llu}",
                  first ? "" : ",", key.first, json_escape(key.second).c_str(),
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(metrics::histogram_percentile(buckets, 0.50)),
                  static_cast<unsigned long long>(metrics::histogram_percentile(buckets, 0.90)),
                  static_cast<unsigned long long>(metrics::histogram_percentile(buckets, 0.99)),
                  static_cast<unsigned long long>(metrics::histogram_percentile(buckets, 1.00)));
      first = false;
    }
    std::printf("]}\n");
    std::fflush(stdout);
  };

  // Chrome trace_event slices collected from trace-span records; written as
  // one JSON document at exit. Metadata rows name the pid/tid lanes.
  std::vector<std::string> trace_events;
  std::map<NodeId, bool> trace_pids_named;
  std::uint64_t trace_spans = 0;
  auto collect_trace = [&](const sensors::Record& record) {
    auto annotation = sensors::decode_trace_record(record);
    if (!annotation) return;
    const auto& stamps = annotation.value().stamps;
    if (stamps.size() < 2) return;
    char buf[256];
    if (!trace_pids_named[record.node]) {
      trace_pids_named[record.node] = true;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"args\":{\"name\":\"node-%u\"}}",
                    record.node, record.node);
      trace_events.emplace_back(buf);
      for (std::size_t s = 0; s + 1 < sensors::kTraceStageCount; ++s) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%zu,"
                      "\"args\":{\"name\":\"%s_to_%s\"}}",
                      record.node, s,
                      json_escape(sensors::trace_stage_token(
                                      static_cast<sensors::TraceStage>(s)))
                          .c_str(),
                      json_escape(sensors::trace_stage_token(
                                      static_cast<sensors::TraceStage>(s + 1)))
                          .c_str());
        trace_events.emplace_back(buf);
      }
    }
    for (std::size_t i = 0; i + 1 < stamps.size(); ++i) {
      const auto& from = stamps[i];
      const auto& to = stamps[i + 1];
      const long long dur = to.at >= from.at ? to.at - from.at : 0;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"%s_to_%s\",\"cat\":\"brisk\",\"ph\":\"X\","
                    "\"ts\":%lld,\"dur\":%lld,\"pid\":%u,\"tid\":%d,"
                    "\"args\":{\"trace_id\":\"0x%llx\"}}",
                    sensors::trace_stage_token(from.stage), sensors::trace_stage_token(to.stage),
                    static_cast<long long>(from.at), dur, record.node,
                    static_cast<int>(from.stage),
                    static_cast<unsigned long long>(annotation.value().trace_id));
      trace_events.emplace_back(buf);
      ++trace_spans;
    }
  };

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  const std::string source =
      !connect_to.empty() ? connect_to : (picl_path.empty() ? shm_name : picl_path);
  std::fprintf(stderr, "brisk_consume %s attached to %s (%s mode)\n", version_string(),
               source.c_str(), mode.c_str());

  // Aggregation mode: stream closed windows instead of records.
  if (mode == "agg") {
    long long windows = 0;
    TimeMicros last_window_at = monotonic_micros();
    while (g_stop == 0) {
      auto window = gateway->poll_agg();
      if (!window) {
        if (window.status().code() == Errc::closed) break;
        std::fprintf(stderr, "brisk_consume: %s\n", window.status().to_string().c_str());
        return 1;
      }
      const TimeMicros now = monotonic_micros();
      if (!window.value().has_value()) {
        if (idle_exit_ms > 0 && now - last_window_at > idle_exit_ms * 1'000) break;
        sleep_micros(1'000);
        continue;
      }
      last_window_at = now;
      ++windows;
      const tp::AggWindow& w = *window.value();
      std::printf("=== window [%lld, %lld) us: %zu keys ===\n",
                  static_cast<long long>(w.window_start), static_cast<long long>(w.window_end),
                  w.keys.size());
      for (const auto& key : w.keys) {
        const std::uint64_t p50 = metrics::histogram_percentile(key.gap_buckets, 0.50);
        const std::uint64_t p99 = metrics::histogram_percentile(key.gap_buckets, 0.99);
        std::printf("node %10u sensor %10u  count %12llu  gap_p50 %8llu  gap_p99 %8llu\n",
                    key.node, key.sensor, static_cast<unsigned long long>(key.count),
                    static_cast<unsigned long long>(p50), static_cast<unsigned long long>(p99));
      }
      std::fflush(stdout);
      if (max_records > 0 && windows >= max_records) break;
    }
    std::fprintf(stderr, "brisk_consume: %lld windows received\n", windows);
    return 0;
  }

  long long received = 0;
  TimeMicros last_record_at = monotonic_micros();
  TimeMicros last_table_at = monotonic_micros();
  while (g_stop == 0) {
    auto record = poll_record();
    if (!record) {
      if (record.status().code() == Errc::closed) break;  // gateway hung up: summarize
      std::fprintf(stderr, "brisk_consume: %s\n", record.status().to_string().c_str());
      return 1;
    }
    const TimeMicros now = monotonic_micros();
    if (now - last_table_at >= 1'000'000) {
      last_table_at = now;
      evict_stale(now);
      if (mode == "metrics" && !metric_table.empty()) {
        json ? print_metrics_json() : print_metrics();
      }
      if (mode == "latency" && !latency_table.empty()) {
        json ? print_latency_json() : print_latency();
      }
      // Health refreshes unconditionally: a silent fleet going stale IS the
      // signal this table exists for.
      if (mode == "health") {
        json ? health.print_json(stdout, now) : health.print_table(stdout, now);
      }
    }
    if (!record.value().has_value()) {
      if (idle_exit_ms > 0 && now - last_record_at > idle_exit_ms * 1'000) break;
      sleep_micros(1'000);
      continue;
    }
    last_record_at = now;
    ++received;
    const sensors::Record& rec = *record.value();
    if (!trace_out.empty() && sensors::is_trace_record(rec)) collect_trace(rec);
    if (mode == "health") health.observe(rec, now);
    if (mode == "picl") {
      std::printf("%s\n", picl::to_picl_line(rec, picl_options).c_str());
    } else if ((mode == "metrics" || mode == "latency") && sensors::is_metrics_record(rec)) {
      auto point = sensors::decode_metrics_record(rec);
      if (point) {
        ++metric_records;
        if (point.value().kind == sensors::MetricKind::histogram_bucket) {
          std::string base;
          std::uint64_t bound = 0;
          if (metrics::parse_histogram_bucket_name(point.value().name, base, bound)) {
            LatencyRow& row = latency_table[{rec.node, base}];
            row.buckets[bound] = point.value().value;
            row.updated_at = now;
          }
        } else {
          metric_table[{rec.node, point.value().name}] =
              MetricRow{point.value().value, point.value().kind, now};
        }
      }
    }
    stats.add(rec);
    if (max_records > 0 && received >= max_records) break;
  }

  if (mode == "metrics") json ? print_metrics_json() : print_metrics();
  if (mode == "latency") json ? print_latency_json() : print_latency();
  if (mode == "health") {
    const TimeMicros now = monotonic_micros();
    json ? health.print_json(stdout, now) : health.print_table(stdout, now);
  }
  if (!trace_out.empty()) {
    std::FILE* out = std::fopen(trace_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "brisk_consume: cannot open %s\n", trace_out.c_str());
      return 1;
    }
    std::fprintf(out, "{\"traceEvents\":[");
    for (std::size_t i = 0; i < trace_events.size(); ++i) {
      std::fprintf(out, "%s%s", i == 0 ? "" : ",\n", trace_events[i].c_str());
    }
    std::fprintf(out, "],\"displayTimeUnit\":\"ms\"}\n");
    std::fclose(out);
    std::fprintf(stderr, "brisk_consume: wrote %llu spans to %s\n",
                 static_cast<unsigned long long>(trace_spans), trace_out.c_str());
  }
  std::fprintf(stderr, "--- summary ---\n%s", stats.report().c_str());
  return 0;
}
