// brisk_exs: the external sensor executable (the other of the paper's "two
// executables").
//
// Creates (or attaches to) the node's named shared-memory ring directory,
// connects to the ISM, and runs the drain/batch/sync loop — "another
// process on the same node [that] may be assigned a lower priority" (see
// --nice).
//
// Usage:
//   brisk_exs --node 1 --shm /brisk-node1 --ism-host 127.0.0.1 --ism-port 7411
//             --slots 8 --ring-bytes 1048576 --nice 10
#include <sys/resource.h>

#include <csignal>
#include <cstdio>

#include "apps/flag_parser.hpp"
#include "common/logging.hpp"
#include "core/brisk_node.hpp"
#include "core/version.hpp"
#include "sim/fault_injector.hpp"

namespace {

brisk::lis::ExternalSensor* g_exs = nullptr;

void handle_signal(int) {
  if (g_exs != nullptr) g_exs->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brisk;
  apps::FlagParser flags(argc, argv);

  NodeConfig config;
  config.node = static_cast<NodeId>(flags.get_int("node", 0));
  config.shm_name = flags.get_string("shm", "");
  config.sensor_slots = static_cast<std::uint32_t>(flags.get_int("slots", 8));
  config.ring_capacity = static_cast<std::uint32_t>(flags.get_int("ring-bytes", 1 << 20));
  config.exs.batch_max_records =
      static_cast<std::uint32_t>(flags.get_int("batch-records", 256));
  config.exs.batch_max_bytes = static_cast<std::uint32_t>(flags.get_int("batch-bytes", 32768));
  config.exs.batch_max_age_us = flags.get_int("batch-age-us", 20'000);
  config.exs.select_timeout_us = flags.get_int("select-timeout-us", 40'000);
  config.exs.replay_buffer_batches =
      static_cast<std::uint32_t>(flags.get_int("replay-batches", 256));
  config.exs.reconnect_backoff_base_us = flags.get_int("backoff-base-us", 50'000);
  config.exs.reconnect_backoff_cap_us = flags.get_int("backoff-cap-us", 5'000'000);
  config.exs.reconnect_jitter = flags.get_double("backoff-jitter", 0.2);
  config.exs.max_reconnect_attempts =
      static_cast<std::uint32_t>(flags.get_int("max-reconnects", 0));
  config.exs.heartbeat_period_us = flags.get_int("heartbeat-us", 1'000'000);
  config.exs.ism_silence_timeout_us = flags.get_int("ism-silence-us", 0);
  sim::FaultPlan fault_plan;
  fault_plan.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  fault_plan.drop_probability = flags.get_double("fault-drop", 0.0);
  fault_plan.duplicate_probability = flags.get_double("fault-dup", 0.0);
  fault_plan.truncate_probability = flags.get_double("fault-trunc", 0.0);
  fault_plan.stall_probability = flags.get_double("fault-stall", 0.0);
  fault_plan.stall_us = flags.get_int("fault-stall-us", 0);
  fault_plan.stall_every = static_cast<std::uint32_t>(flags.get_int("fault-stall-every", 0));
  const std::string ism_host = flags.get_string("ism-host", "127.0.0.1");
  const auto ism_port = static_cast<std::uint16_t>(flags.get_int("ism-port", 0));
  const int nice_delta = static_cast<int>(flags.get_int("nice", 0));
  const bool attach = flags.get_bool("attach", false);
  if (flags.get_bool("verbose", false)) Logging::set_level(LogLevel::info);
  flags.reject_unknown();

  if (config.shm_name.empty()) {
    std::fprintf(stderr, "brisk_exs: --shm /name is required\n");
    return 2;
  }
  if (ism_port == 0) {
    std::fprintf(stderr, "brisk_exs: --ism-port is required\n");
    return 2;
  }
  if (nice_delta != 0 && ::setpriority(PRIO_PROCESS, 0, nice_delta) != 0) {
    std::fprintf(stderr, "brisk_exs: warning: setpriority failed\n");
  }

  auto node = attach ? BriskNode::attach(config) : BriskNode::create(config);
  if (!node) {
    std::fprintf(stderr, "brisk_exs: %s\n", node.status().to_string().c_str());
    return 1;
  }
  Status plan_ok = fault_plan.validate();
  if (!plan_ok) {
    std::fprintf(stderr, "brisk_exs: %s\n", plan_ok.to_string().c_str());
    return 2;
  }
  auto exs = node.value()->connect_exs(ism_host, ism_port);
  if (!exs) {
    std::fprintf(stderr, "brisk_exs: %s\n", exs.status().to_string().c_str());
    return 1;
  }
  const bool faults_enabled =
      fault_plan.drop_probability > 0 || fault_plan.duplicate_probability > 0 ||
      fault_plan.truncate_probability > 0 || fault_plan.stall_probability > 0 ||
      fault_plan.stall_every > 0;
  sim::FaultInjector fault_injector(fault_plan);
  if (faults_enabled) exs.value()->set_fault_policy(fault_injector.policy());
  g_exs = exs.value().get();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("brisk_exs %s node %u, rings at %s, ISM %s:%u\n", version_string(), config.node,
              config.shm_name.c_str(), ism_host.c_str(), ism_port);
  std::fflush(stdout);

  Status st = exs.value()->run();
  (void)exs.value()->core().flush();
  if (!st && st.code() != Errc::closed) {
    std::fprintf(stderr, "brisk_exs: %s\n", st.to_string().c_str());
    return 1;
  }
  const auto stats = exs.value()->core().stats();
  std::printf("forwarded %llu records in %llu batches (%llu ring drops)\n",
              static_cast<unsigned long long>(stats.records_forwarded),
              static_cast<unsigned long long>(stats.batches_sent),
              static_cast<unsigned long long>(stats.ring_drops_seen));
  std::printf("resilience: %llu reconnects, %llu replayed, %llu evicted, %llu pending\n",
              static_cast<unsigned long long>(stats.reconnects),
              static_cast<unsigned long long>(stats.batches_replayed),
              static_cast<unsigned long long>(stats.replay_evictions),
              static_cast<unsigned long long>(stats.replay_pending));
  return 0;
}
