// brisk_exs: the external sensor executable (the other of the paper's "two
// executables").
//
// Creates (or attaches to) the node's named shared-memory ring directory,
// connects to the ISM, and runs the drain/batch/sync loop — "another
// process on the same node [that] may be assigned a lower priority" (see
// --nice).
//
// Usage:
//   brisk_exs --node 1 --shm /brisk-node1 --ism-host 127.0.0.1 --ism-port 7411
//             --slots 8 --ring-bytes 1048576 --nice 10
//
// --workload-rate N runs an in-process synthetic producer (one claimed
// sensor slot emitting N records/second) so a smoke pipeline needs no
// separate instrumented application. --trace-sample-rate enables the
// end-to-end trace annotations on that fraction of records.
#include <sys/resource.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <thread>

#include "apps/flag_parser.hpp"
#include "common/time_util.hpp"
#include "common/logging.hpp"
#include "core/brisk_node.hpp"
#include "core/version.hpp"
#include "metrics/flight_recorder.hpp"
#include "sim/fault_injector.hpp"

namespace {

brisk::lis::ExternalSensor* g_exs = nullptr;

void handle_signal(int) {
  if (g_exs != nullptr) g_exs->stop();
}

void handle_dump_signal(int) {
  brisk::metrics::request_flight_dump();  // drained on the next loop cycle
}

brisk::apps::FlagRegistry make_registry() {
  brisk::apps::FlagRegistry flags("brisk_exs", "BRISK external sensor daemon");
  flags.add_int("node", 0, "node id reported to the ISM")
      .add_string("shm", "", "named shared-memory ring directory (required)")
      .add_bool("attach", false, "attach to an existing ring instead of creating it")
      .add_int("slots", 8, "sensor ring slots")
      .add_int("ring-bytes", 1 << 20, "per-ring capacity in bytes")
      .add_string("ism-host", "127.0.0.1", "ISM host to connect to")
      .add_int("ism-port", 0, "ISM port to connect to (required)")
      .add_string("poller", "select",
                  "readiness backend: select, epoll, or uring (falls back to "
                  "epoll without io_uring)")
      .add_int("batch-records", 256, "flush a batch after this many records")
      .add_int("batch-bytes", 32768, "flush a batch after this many bytes")
      .add_int("batch-age-us", 20'000, "flush a batch older than this")
      .add_int("select-timeout-us", 40'000, "poll cycle timeout in microseconds")
      .add_int("replay-batches", 256, "replay buffer cap in batches")
      .add_int("replay-bytes", 0, "replay buffer cap in bytes (0 = unlimited)")
      .add_bool("exs-pace", true, "honour ISM credit grants (pace sends to the granted window)")
      .add_int("backoff-base-us", 50'000, "reconnect backoff base")
      .add_int("backoff-cap-us", 5'000'000, "reconnect backoff ceiling")
      .add_double("backoff-jitter", 0.2, "reconnect backoff jitter fraction")
      .add_int("max-reconnects", 0, "give up after this many reconnects (0 = forever)")
      .add_int("heartbeat-us", 1'000'000, "heartbeat period while idle")
      .add_int("ism-silence-us", 0, "reconnect if the ISM is silent this long (0 = off)")
      .add_int("metrics-interval", 0,
               "emit self-instrumentation metrics records every N seconds (0 = off)")
      .add_double("trace-sample-rate", 0.0,
                  "fraction of records carrying end-to-end trace annotations (0..1)")
      .add_int("workload-rate", 0,
               "emit synthetic records at this rate per second (0 = off)")
      .add_int("fault-seed", 1, "RNG seed for outbound fault injection")
      .add_double("fault-drop", 0.0, "probability of dropping an outbound frame")
      .add_double("fault-dup", 0.0, "probability of duplicating an outbound frame")
      .add_double("fault-trunc", 0.0, "probability of truncating an outbound frame")
      .add_double("fault-stall", 0.0, "probability of stalling before an outbound frame")
      .add_int("fault-stall-us", 0, "stall duration in microseconds")
      .add_int("fault-stall-every", 0, "stall deterministically every N frames (0 = off)")
      .add_int("nice", 0, "setpriority() delta for this process")
      .add_bool("verbose", false, "log at info level");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brisk;
  apps::FlagRegistry flags = make_registry();
  flags.parse(argc, argv);

  NodeConfig config;
  config.node = static_cast<NodeId>(flags.num("node"));
  config.shm_name = flags.str("shm");
  config.sensor_slots = static_cast<std::uint32_t>(flags.num("slots"));
  config.ring_capacity = static_cast<std::uint32_t>(flags.num("ring-bytes"));
  config.exs.batch_max_records = static_cast<std::uint32_t>(flags.num("batch-records"));
  config.exs.batch_max_bytes = static_cast<std::uint32_t>(flags.num("batch-bytes"));
  config.exs.batch_max_age_us = flags.num("batch-age-us");
  config.exs.select_timeout_us = flags.num("select-timeout-us");
  auto backend = net::parse_poller_backend(flags.str("poller"));
  if (!backend) {
    std::fprintf(stderr, "brisk_exs: --poller: %s\n", backend.status().to_string().c_str());
    return 2;
  }
  config.exs.poller = backend.value();
  config.exs.replay_buffer_batches = static_cast<std::uint32_t>(flags.num("replay-batches"));
  config.exs.replay_buffer_bytes = static_cast<std::size_t>(flags.num("replay-bytes"));
  config.exs.pace = flags.flag("exs-pace");
  config.exs.reconnect_backoff_base_us = flags.num("backoff-base-us");
  config.exs.reconnect_backoff_cap_us = flags.num("backoff-cap-us");
  config.exs.reconnect_jitter = flags.real("backoff-jitter");
  config.exs.max_reconnect_attempts = static_cast<std::uint32_t>(flags.num("max-reconnects"));
  config.exs.heartbeat_period_us = flags.num("heartbeat-us");
  config.exs.ism_silence_timeout_us = flags.num("ism-silence-us");
  config.exs.metrics_interval_us = flags.num("metrics-interval") * 1'000'000;
  config.trace_sample_rate = flags.real("trace-sample-rate");
  const long long workload_rate = flags.num("workload-rate");
  sim::FaultPlan fault_plan;
  fault_plan.seed = static_cast<std::uint64_t>(flags.num("fault-seed"));
  fault_plan.drop_probability = flags.real("fault-drop");
  fault_plan.duplicate_probability = flags.real("fault-dup");
  fault_plan.truncate_probability = flags.real("fault-trunc");
  fault_plan.stall_probability = flags.real("fault-stall");
  fault_plan.stall_us = flags.num("fault-stall-us");
  fault_plan.stall_every = static_cast<std::uint32_t>(flags.num("fault-stall-every"));
  const std::string ism_host = flags.str("ism-host");
  const auto ism_port = static_cast<std::uint16_t>(flags.num("ism-port"));
  const int nice_delta = static_cast<int>(flags.num("nice"));
  const bool attach = flags.flag("attach");
  if (flags.flag("verbose")) Logging::set_level(LogLevel::info);

  if (config.shm_name.empty()) {
    std::fprintf(stderr, "brisk_exs: --shm /name is required\n");
    return 2;
  }
  if (ism_port == 0) {
    std::fprintf(stderr, "brisk_exs: --ism-port is required\n");
    return 2;
  }
  if (nice_delta != 0 && ::setpriority(PRIO_PROCESS, 0, nice_delta) != 0) {
    std::fprintf(stderr, "brisk_exs: warning: setpriority failed\n");
  }

  auto node = attach ? BriskNode::attach(config) : BriskNode::create(config);
  if (!node) {
    std::fprintf(stderr, "brisk_exs: %s\n", node.status().to_string().c_str());
    return 1;
  }
  Status plan_ok = fault_plan.validate();
  if (!plan_ok) {
    std::fprintf(stderr, "brisk_exs: %s\n", plan_ok.to_string().c_str());
    return 2;
  }
  auto exs = node.value()->connect_exs(ism_host, ism_port);
  if (!exs) {
    std::fprintf(stderr, "brisk_exs: %s\n", exs.status().to_string().c_str());
    return 1;
  }
  const bool faults_enabled =
      fault_plan.drop_probability > 0 || fault_plan.duplicate_probability > 0 ||
      fault_plan.truncate_probability > 0 || fault_plan.stall_probability > 0 ||
      fault_plan.stall_every > 0;
  sim::FaultInjector fault_injector(fault_plan);
  if (faults_enabled) exs.value()->set_fault_policy(fault_injector.policy());
  g_exs = exs.value().get();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_dump_signal);

  // Synthetic workload: one claimed sensor slot, paced at --workload-rate
  // records/second, so a smoke pipeline is self-contained.
  std::atomic<bool> workload_stop{false};
  std::thread workload;
  if (workload_rate > 0) {
    auto sensor = node.value()->make_sensor();
    if (!sensor) {
      std::fprintf(stderr, "brisk_exs: workload sensor: %s\n",
                   sensor.status().to_string().c_str());
      return 1;
    }
    workload = std::thread([rate = workload_rate, &workload_stop,
                            s = std::move(sensor).value()]() mutable {
      // Deficit pacing: emit whatever the target rate says is due since the
      // last wakeup, then nap. Sleeping per record would cap the real rate
      // at the scheduler's wakeup cost (~15k/s), far below what the flag
      // can ask for.
      std::uint64_t emitted = 0;
      const TimeMicros start = monotonic_micros();
      while (!workload_stop.load(std::memory_order_acquire)) {
        using namespace brisk::sensors;  // NOLINT
        const TimeMicros elapsed = monotonic_micros() - start;
        const std::uint64_t due = static_cast<std::uint64_t>(
            static_cast<double>(rate) * static_cast<double>(elapsed) / 1e6);
        if (emitted >= due) {
          sleep_micros(500);
          continue;
        }
        std::uint64_t burst = due - emitted;
        if (burst > 4096) burst = 4096;
        for (std::uint64_t i = 0; i < burst; ++i) {
          BRISK_NOTICE(s, 1, x_u64(emitted), x_i32(static_cast<std::int32_t>(emitted & 0xff)));
          ++emitted;
        }
      }
    });
  }

  std::printf("brisk_exs %s node %u, rings at %s, ISM %s:%u\n", version_string(), config.node,
              config.shm_name.c_str(), ism_host.c_str(), ism_port);
  std::fflush(stdout);

  Status st = exs.value()->run();
  workload_stop.store(true, std::memory_order_release);
  if (workload.joinable()) workload.join();
  (void)exs.value()->core().flush();
  if (!st && st.code() != Errc::closed) {
    std::fprintf(stderr, "brisk_exs: %s\n", st.to_string().c_str());
    metrics::dump_flight_recorders(stderr);
    return 1;
  }
  const auto stats = exs.value()->core().stats();
  std::printf("forwarded %llu records in %llu batches (%llu ring drops)\n",
              static_cast<unsigned long long>(stats.records_forwarded),
              static_cast<unsigned long long>(stats.batches_sent),
              static_cast<unsigned long long>(stats.ring_drops_seen));
  std::printf("resilience: %llu reconnects, %llu replayed, %llu evicted, %llu pending\n",
              static_cast<unsigned long long>(stats.reconnects),
              static_cast<unsigned long long>(stats.batches_replayed),
              static_cast<unsigned long long>(stats.replay_evictions),
              static_cast<unsigned long long>(stats.replay_pending));
  if (faults_enabled) {
    const net::FaultStats& faults = exs.value()->fault_stats();
    std::printf("faults injected: %llu/%llu frames dropped, %llu stalled, %llu truncated, "
                "%llu duplicated\n",
                static_cast<unsigned long long>(faults.dropped),
                static_cast<unsigned long long>(faults.frames),
                static_cast<unsigned long long>(faults.stalled),
                static_cast<unsigned long long>(faults.truncated),
                static_cast<unsigned long long>(faults.duplicated));
  }
  return 0;
}
