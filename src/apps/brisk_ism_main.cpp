// brisk_ism: the instrumentation system manager executable (one of the
// paper's "two executables").
//
// Usage:
//   brisk_ism --port 7411 --shm /brisk-out --picl trace.picl
//             --poller epoll --ism-reader-threads 4 --ism-sorter-shards 4
//             --frame-us 10000 --sync-algorithm brisk
//
// Runs until SIGINT/SIGTERM, then drains the sorter and exits. See --help
// for the full knob list (generated from the flag registry).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/flag_parser.hpp"
#include "common/logging.hpp"
#include "core/brisk_manager.hpp"
#include "core/version.hpp"
#include "metrics/flight_recorder.hpp"
#include "sim/fault_injector.hpp"

namespace {

brisk::BriskManager* g_manager = nullptr;

void handle_signal(int) {
  if (g_manager != nullptr) g_manager->stop();
}

void handle_dump_signal(int) { brisk::metrics::request_flight_dump(); }

brisk::apps::FlagRegistry make_registry() {
  brisk::apps::FlagRegistry flags("brisk_ism", "BRISK instrumentation system manager");
  flags.add_int("port", 0, "TCP port to listen on (0 = ephemeral)")
      .add_string("shm", "", "named shared-memory output ring (empty = anonymous)")
      .add_int("output-ring-bytes", 1 << 20, "output ring capacity in bytes")
      .add_string("picl", "", "write a PICL trace file to this path")
      .add_bool("picl-utc", false, "stamp PICL lines with UTC micros")
      .add_string("poller", "select",
                  "readiness backend: select, epoll, or uring (falls back to "
                  "epoll without io_uring)")
      .add_bool("readiness-pump", true,
                "pump connection outboxes on writable readiness instead of "
                "walking every connection each cycle")
      .add_int("ism-reader-threads", 0, "ingest reader threads (0 = single-threaded)")
      .add_int("ingest-queue-frames", 1024, "per-connection ingest queue depth (frames)")
      .add_int("ism-sorter-shards", 1, "ordering shards with a k-way merge (1 = inline)")
      .add_int("shard-queue-records", 4096, "per-shard ordering lane depth (records)")
      .add_int("stats-interval", 0, "log a one-line stats summary every N seconds (0 = off)")
      .add_int("metrics-interval", 0,
               "emit self-instrumentation metrics records every N seconds (0 = off)")
      .add_int("select-timeout-us", 40'000, "poll cycle timeout in microseconds")
      .add_int("frame-us", 10'000, "initial sorter frame window")
      .add_int("min-frame-us", 1'000, "adaptive sorter frame floor")
      .add_int("max-frame-us", 10'000'000, "adaptive sorter frame ceiling")
      .add_double("decay-half-life-s", 1.0, "sorter delay-estimate decay half-life")
      .add_bool("adaptive", true, "adapt the sorter frame to observed delays")
      .add_int("cre-timeout-us", 1'000'000, "causal-relation hold timeout")
      .add_int("peer-idle-us", 30'000'000, "disconnect peers idle longer than this")
      .add_int("quarantine-us", 5'000'000, "session quarantine after unclean close")
      .add_int("ack-period-us", 200'000, "batch acknowledgement period")
      .add_int("gap-skip-us", 1'000'000, "give up on a batch-sequence gap after this")
      .add_int("ism-credit-records", 0,
               "per-connection credit window in records (0 = no credit grants)")
      .add_int("ism-credit-bytes", 0, "per-connection credit window in bytes (0 = uncapped)")
      .add_int("credit-replenish-us", 20'000,
               "ack cadence while a session's window is below the full grant")
      .add_int("consumer-port", -1,
               "TCP consumer gateway port (-1 = disabled, 0 = ephemeral)")
      .add_int("consumer-queue-records", 1024,
               "default per-subscriber gateway queue depth (records)")
      .add_int("consumer-max-queue-records", 65536,
               "cap on the per-subscriber queue depth a SUBSCRIBE may request")
      .add_int("consumer-lane-records", 8192, "pipeline -> gateway fan-out lane depth")
      .add_int("consumer-outbox-bytes", 1 << 20, "per-subscriber socket send buffer cap")
      .add_int("consumer-overrun-grace-us", 2'000'000,
               "evict a subscriber continuously overrunning its queue for this long")
      .add_int("consumer-agg-window-us", 1'000'000,
               "default aggregation-subscription window")
      .add_int("consumer-max-subscribers", 64, "max concurrent gateway connections")
      .add_string("relay-to", "",
                  "run as a relay tier: forward the ordered output to a parent ISM "
                  "at host:port (empty = standalone root)")
      .add_int("relay-node", 0, "this relay's node identity toward its parent")
      .add_int("relay-queue-records", 8192, "pipeline -> relay egress queue depth")
      .add_int("relay-batch-records", 512, "relay batch seal threshold (records)")
      .add_int("relay-batch-age-us", 5'000, "relay batch seal threshold (age)")
      .add_int("relay-idle-wm-us", 50'000,
               "idle RELAY_WATERMARK cadence toward the parent (0 = off)")
      .add_bool("relay-aggregate-metrics", false,
                "merge the subtree's metrics snapshots at this relay and forward "
                "one agg.* snapshot per --metrics-interval instead of every record")
      .add_bool("sync", true, "run the clock synchronisation service")
      .add_int("sync-period-us", 5'000'000, "clock sync round period")
      .add_string("sync-algorithm", "brisk", "clock sync algorithm: brisk or cristian")
      .add_int("fault-seed", 1, "RNG seed for outbound fault injection")
      .add_double("fault-drop", 0.0, "probability of dropping an outbound frame")
      .add_double("fault-dup", 0.0, "probability of duplicating an outbound frame")
      .add_double("fault-trunc", 0.0, "probability of truncating an outbound frame")
      .add_double("fault-stall", 0.0, "probability of stalling before an outbound frame")
      .add_int("fault-stall-us", 0, "stall duration in microseconds")
      .add_int("fault-stall-every", 0, "stall deterministically every N frames (0 = off)")
      .add_bool("verbose", false, "log at info level");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brisk;
  apps::FlagRegistry flags = make_registry();
  flags.parse(argc, argv);

  ManagerConfig config;
  config.ism.port = static_cast<std::uint16_t>(flags.num("port"));
  config.ism.select_timeout_us = flags.num("select-timeout-us");
  auto backend = net::parse_poller_backend(flags.str("poller"));
  if (!backend) {
    std::fprintf(stderr, "brisk_ism: --poller: %s\n", backend.status().to_string().c_str());
    return 2;
  }
  config.ism.poller = backend.value();
  config.ism.readiness_pump = flags.flag("readiness-pump");
  config.ism.reader_threads = static_cast<std::size_t>(flags.num("ism-reader-threads"));
  config.ism.ingest_queue_frames = static_cast<std::size_t>(flags.num("ingest-queue-frames"));
  config.ism.sorter_shards = static_cast<std::size_t>(flags.num("ism-sorter-shards"));
  config.ism.shard_queue_records = static_cast<std::size_t>(flags.num("shard-queue-records"));
  config.ism.stats_interval_us = flags.num("stats-interval") * 1'000'000;
  config.ism.metrics_interval_us = flags.num("metrics-interval") * 1'000'000;
  config.ism.sorter.initial_frame_us = flags.num("frame-us");
  config.ism.sorter.min_frame_us = flags.num("min-frame-us");
  config.ism.sorter.max_frame_us = flags.num("max-frame-us");
  config.ism.sorter.decay_half_life_s = flags.real("decay-half-life-s");
  config.ism.sorter.adaptive = flags.flag("adaptive");
  config.ism.cre.hold_timeout_us = flags.num("cre-timeout-us");
  config.ism.peer_idle_timeout_us = flags.num("peer-idle-us");
  config.ism.quarantine_timeout_us = flags.num("quarantine-us");
  config.ism.ack_period_us = flags.num("ack-period-us");
  config.ism.gap_skip_timeout_us = flags.num("gap-skip-us");
  config.ism.credit_window_records = static_cast<std::uint32_t>(flags.num("ism-credit-records"));
  config.ism.credit_window_bytes = static_cast<std::uint64_t>(flags.num("ism-credit-bytes"));
  config.ism.credit_replenish_us = flags.num("credit-replenish-us");
  const std::string relay_to = flags.str("relay-to");
  if (!relay_to.empty()) {
    const auto colon = relay_to.rfind(':');
    const unsigned long parent_port =
        colon == std::string::npos ? 0 : std::strtoul(relay_to.c_str() + colon + 1, nullptr, 10);
    if (colon == std::string::npos || colon == 0 || parent_port == 0 || parent_port > 65535) {
      std::fprintf(stderr, "brisk_ism: --relay-to expects host:port, got '%s'\n",
                   relay_to.c_str());
      return 2;
    }
    config.relay_enabled = true;
    config.relay.parent_host = relay_to.substr(0, colon);
    config.relay.parent_port = static_cast<std::uint16_t>(parent_port);
    config.relay.relay_node = static_cast<NodeId>(flags.num("relay-node"));
    config.relay.poller = backend.value();
    config.relay.queue_records = static_cast<std::size_t>(flags.num("relay-queue-records"));
    config.relay.batch_max_records = static_cast<std::size_t>(flags.num("relay-batch-records"));
    config.relay.batch_max_age_us = flags.num("relay-batch-age-us");
    config.relay.idle_watermark_period_us = flags.num("relay-idle-wm-us");
    config.relay.aggregate_metrics = flags.flag("relay-aggregate-metrics");
    if (flags.num("metrics-interval") > 0) {
      config.relay.metrics_flush_period_us = flags.num("metrics-interval") * 1'000'000;
    }
  }
  config.ism.enable_sync = flags.flag("sync");
  config.ism.sync.period_us = flags.num("sync-period-us");
  const std::string algorithm = flags.str("sync-algorithm");
  config.ism.sync.algorithm =
      algorithm == "cristian" ? clk::SyncAlgorithm::cristian : clk::SyncAlgorithm::brisk;
  const long long consumer_port = flags.num("consumer-port");
  config.gateway.tcp_enabled = consumer_port >= 0;
  config.gateway.consumer_port = static_cast<std::uint16_t>(consumer_port < 0 ? 0 : consumer_port);
  config.gateway.poller = backend.value();
  config.gateway.queue_records = static_cast<std::size_t>(flags.num("consumer-queue-records"));
  config.gateway.max_queue_records =
      static_cast<std::size_t>(flags.num("consumer-max-queue-records"));
  config.gateway.lane_records = static_cast<std::size_t>(flags.num("consumer-lane-records"));
  config.gateway.outbox_bytes = static_cast<std::size_t>(flags.num("consumer-outbox-bytes"));
  config.gateway.overrun_grace_us = flags.num("consumer-overrun-grace-us");
  config.gateway.agg_window_us = flags.num("consumer-agg-window-us");
  config.gateway.max_subscribers = static_cast<std::size_t>(flags.num("consumer-max-subscribers"));
  config.output_ring_capacity = static_cast<std::uint32_t>(flags.num("output-ring-bytes"));
  config.output_shm_name = flags.str("shm");
  config.picl_trace_path = flags.str("picl");
  if (flags.flag("picl-utc")) {
    config.picl_options.mode = picl::TimestampMode::utc_micros;
  } else {
    config.picl_options.epoch_us = clk::SystemClock::instance().now();
  }
  sim::FaultPlan fault_plan;
  fault_plan.seed = static_cast<std::uint64_t>(flags.num("fault-seed"));
  fault_plan.drop_probability = flags.real("fault-drop");
  fault_plan.duplicate_probability = flags.real("fault-dup");
  fault_plan.truncate_probability = flags.real("fault-trunc");
  fault_plan.stall_probability = flags.real("fault-stall");
  fault_plan.stall_us = flags.num("fault-stall-us");
  fault_plan.stall_every = static_cast<std::uint32_t>(flags.num("fault-stall-every"));
  // The ISM's outbound traffic is all control frames (acks, sync, bye) —
  // sparing them would make every --fault-* flag a no-op here. Ack loss is
  // exactly what ISM-side drills exist to exercise.
  fault_plan.spare_control_frames = false;
  if (flags.flag("verbose")) Logging::set_level(LogLevel::info);

  Status plan_ok = fault_plan.validate();
  if (!plan_ok) {
    std::fprintf(stderr, "brisk_ism: %s\n", plan_ok.to_string().c_str());
    return 2;
  }

  auto manager = BriskManager::create(config);
  if (!manager) {
    std::fprintf(stderr, "brisk_ism: %s\n", manager.status().to_string().c_str());
    return 1;
  }
  const bool faults_enabled =
      fault_plan.drop_probability > 0 || fault_plan.duplicate_probability > 0 ||
      fault_plan.truncate_probability > 0 || fault_plan.stall_probability > 0 ||
      fault_plan.stall_every > 0;
  sim::FaultInjector fault_injector(fault_plan);
  if (faults_enabled) manager.value()->ism().set_fault_policy(fault_injector.policy());
  g_manager = manager.value().get();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_dump_signal);

  std::printf("brisk_ism %s listening on 127.0.0.1:%u\n", version_string(),
              manager.value()->port());
  if (config.gateway.tcp_enabled) {
    std::printf("consumer gateway listening on 127.0.0.1:%u\n",
                manager.value()->consumer_port());
  }
  if (config.relay_enabled) {
    std::printf("relaying ordered output to %s:%u as node %u\n",
                config.relay.parent_host.c_str(), config.relay.parent_port,
                static_cast<unsigned>(config.relay.relay_node));
  }
  std::printf("%s", describe(config).c_str());
  std::fflush(stdout);

  Status st = manager.value()->run();
  if (!st) {
    std::fprintf(stderr, "brisk_ism: %s\n", st.to_string().c_str());
    metrics::dump_flight_recorders(stderr);
    return 1;
  }
  st = manager.value()->drain();
  if (!st) {
    std::fprintf(stderr, "brisk_ism: drain: %s\n", st.to_string().c_str());
    metrics::dump_flight_recorders(stderr);
    return 1;
  }
  const auto& stats = manager.value()->ism().stats();
  std::printf("received %llu records in %llu batches from %llu connections\n",
              static_cast<unsigned long long>(stats.records_received),
              static_cast<unsigned long long>(stats.batches_received),
              static_cast<unsigned long long>(stats.connections_accepted));
  std::printf("resilience: %llu rejoins, %llu dup batches dropped, %llu gaps, "
              "%llu idle disconnects, %llu sessions expired\n",
              static_cast<unsigned long long>(stats.rejoins),
              static_cast<unsigned long long>(stats.duplicate_batches_dropped),
              static_cast<unsigned long long>(stats.batch_seq_gaps),
              static_cast<unsigned long long>(stats.idle_disconnects),
              static_cast<unsigned long long>(stats.sessions_expired));
  if (faults_enabled) {
    const net::FaultStats& faults = manager.value()->ism().fault_stats();
    std::printf("faults injected: %llu/%llu frames dropped, %llu stalled, %llu truncated, "
                "%llu duplicated\n",
                static_cast<unsigned long long>(faults.dropped),
                static_cast<unsigned long long>(faults.frames),
                static_cast<unsigned long long>(faults.stalled),
                static_cast<unsigned long long>(faults.truncated),
                static_cast<unsigned long long>(faults.duplicated));
  }
  return 0;
}
