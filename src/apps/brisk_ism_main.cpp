// brisk_ism: the instrumentation system manager executable (one of the
// paper's "two executables").
//
// Usage:
//   brisk_ism --port 7411 --shm /brisk-out --picl trace.picl
//             --select-timeout-us 40000 --sync-period-us 5000000
//             --frame-us 10000 --sync-algorithm brisk
//
// Runs until SIGINT/SIGTERM, then drains the sorter and exits.
#include <csignal>
#include <cstdio>

#include "apps/flag_parser.hpp"
#include "common/logging.hpp"
#include "core/brisk_manager.hpp"
#include "core/version.hpp"

namespace {

brisk::BriskManager* g_manager = nullptr;

void handle_signal(int) {
  if (g_manager != nullptr) g_manager->stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace brisk;
  apps::FlagParser flags(argc, argv);

  ManagerConfig config;
  config.ism.port = static_cast<std::uint16_t>(flags.get_int("port", 0));
  config.ism.select_timeout_us = flags.get_int("select-timeout-us", 40'000);
  config.ism.sorter.initial_frame_us = flags.get_int("frame-us", 10'000);
  config.ism.sorter.min_frame_us = flags.get_int("min-frame-us", 1'000);
  config.ism.sorter.max_frame_us = flags.get_int("max-frame-us", 10'000'000);
  config.ism.sorter.decay_half_life_s = flags.get_double("decay-half-life-s", 1.0);
  config.ism.sorter.adaptive = flags.get_bool("adaptive", true);
  config.ism.cre.hold_timeout_us = flags.get_int("cre-timeout-us", 1'000'000);
  config.ism.peer_idle_timeout_us = flags.get_int("peer-idle-us", 30'000'000);
  config.ism.quarantine_timeout_us = flags.get_int("quarantine-us", 5'000'000);
  config.ism.ack_period_us = flags.get_int("ack-period-us", 200'000);
  config.ism.gap_skip_timeout_us = flags.get_int("gap-skip-us", 1'000'000);
  config.ism.enable_sync = flags.get_bool("sync", true);
  config.ism.sync.period_us = flags.get_int("sync-period-us", 5'000'000);
  const std::string algorithm = flags.get_string("sync-algorithm", "brisk");
  config.ism.sync.algorithm =
      algorithm == "cristian" ? clk::SyncAlgorithm::cristian : clk::SyncAlgorithm::brisk;
  config.output_ring_capacity =
      static_cast<std::uint32_t>(flags.get_int("output-ring-bytes", 1 << 20));
  config.output_shm_name = flags.get_string("shm", "");
  config.picl_trace_path = flags.get_string("picl", "");
  if (flags.get_bool("picl-utc", false)) {
    config.picl_options.mode = picl::TimestampMode::utc_micros;
  } else {
    config.picl_options.epoch_us = clk::SystemClock::instance().now();
  }
  if (flags.get_bool("verbose", false)) Logging::set_level(LogLevel::info);
  flags.reject_unknown();

  auto manager = BriskManager::create(config);
  if (!manager) {
    std::fprintf(stderr, "brisk_ism: %s\n", manager.status().to_string().c_str());
    return 1;
  }
  g_manager = manager.value().get();
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  std::printf("brisk_ism %s listening on 127.0.0.1:%u\n", version_string(),
              manager.value()->port());
  std::printf("%s", describe(config).c_str());
  std::fflush(stdout);

  Status st = manager.value()->run();
  if (!st) {
    std::fprintf(stderr, "brisk_ism: %s\n", st.to_string().c_str());
    return 1;
  }
  st = manager.value()->drain();
  if (!st) {
    std::fprintf(stderr, "brisk_ism: drain: %s\n", st.to_string().c_str());
    return 1;
  }
  const auto& stats = manager.value()->ism().stats();
  std::printf("received %llu records in %llu batches from %llu connections\n",
              static_cast<unsigned long long>(stats.records_received),
              static_cast<unsigned long long>(stats.batches_received),
              static_cast<unsigned long long>(stats.connections_accepted));
  std::printf("resilience: %llu rejoins, %llu dup batches dropped, %llu gaps, "
              "%llu idle disconnects, %llu sessions expired\n",
              static_cast<unsigned long long>(stats.rejoins),
              static_cast<unsigned long long>(stats.duplicate_batches_dropped),
              static_cast<unsigned long long>(stats.batch_seq_gaps),
              static_cast<unsigned long long>(stats.idle_disconnects),
              static_cast<unsigned long long>(stats.sessions_expired));
  return 0;
}
