// Command-line flag handling shared by the BRISK executables.
//
// Two layers:
//  * FlagParser — the minimal --key=value / --key value tokenizer. No
//    external dependencies, fails loudly on unknown flags.
//  * FlagRegistry — a declarative registry on top of it: each flag is
//    declared once with (name, type, default, help), --help output is
//    generated from the declarations, unknown flags and type errors are
//    rejected against them. The daemon mains declare their knobs and read
//    typed values; nothing is stringly-typed twice.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/string_util.hpp"

namespace brisk::apps {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // bare boolean flag
      }
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    consumed_.insert({key, true});
    return it->second;
  }

  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) {
    auto v = get(key);
    return v.has_value() ? *v : fallback;
  }

  [[nodiscard]] long long get_int(const std::string& key, long long fallback) {
    auto v = get(key);
    if (!v.has_value()) return fallback;
    auto parsed = parse_int(*v);
    if (!parsed) {
      std::fprintf(stderr, "flag --%s expects an integer, got '%s'\n", key.c_str(), v->c_str());
      std::exit(2);
    }
    return *parsed;
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) {
    auto v = get(key);
    if (!v.has_value()) return fallback;
    auto parsed = parse_double(*v);
    if (!parsed) {
      std::fprintf(stderr, "flag --%s expects a number, got '%s'\n", key.c_str(), v->c_str());
      std::exit(2);
    }
    return *parsed;
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) {
    auto v = get(key);
    if (!v.has_value()) return fallback;
    return *v == "true" || *v == "1" || *v == "yes";
  }

  /// Exits with an error if any provided flag was never consumed.
  void reject_unknown() {
    for (const auto& [key, value] : values_) {
      if (consumed_.find(key) == consumed_.end()) {
        std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
};

/// Declarative flag table: declare every flag once, parse against the
/// declarations, read typed values by name. `--help` prints the generated
/// usage text and exits 0; unknown flags, missing declarations, and type
/// mismatches exit 2.
class FlagRegistry {
 public:
  enum class Type { string, integer, real, boolean };

  FlagRegistry(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  FlagRegistry& add_string(const std::string& name, const std::string& fallback,
                           const std::string& help) {
    return declare(name, Type::string, fallback, help);
  }
  FlagRegistry& add_int(const std::string& name, long long fallback, const std::string& help) {
    return declare(name, Type::integer, std::to_string(fallback), help);
  }
  FlagRegistry& add_double(const std::string& name, double fallback, const std::string& help) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", fallback);
    return declare(name, Type::real, buf, help);
  }
  FlagRegistry& add_bool(const std::string& name, bool fallback, const std::string& help) {
    return declare(name, Type::boolean, fallback ? "true" : "false", help);
  }

  /// Tokenizes argv, handles --help, and type-checks every provided value
  /// against its declaration (even values the program never reads).
  void parse(int argc, char** argv) {
    FlagParser parser(argc, argv);
    if (parser.get("help").has_value()) {
      std::printf("%s", help_text().c_str());
      std::exit(0);
    }
    for (auto& spec : specs_) {
      auto v = parser.get(spec.name);
      if (!v.has_value()) continue;
      spec.value = *v;
      spec.provided = true;
      check_type(spec);
    }
    parser.reject_unknown();
  }

  [[nodiscard]] std::string str(const std::string& name) const {
    return find(name, Type::string).value;
  }
  [[nodiscard]] long long num(const std::string& name) const {
    return *parse_int(find(name, Type::integer).value);
  }
  [[nodiscard]] double real(const std::string& name) const {
    return *parse_double(find(name, Type::real).value);
  }
  [[nodiscard]] bool flag(const std::string& name) const {
    const std::string& v = find(name, Type::boolean).value;
    return v == "true" || v == "1" || v == "yes";
  }
  [[nodiscard]] bool provided(const std::string& name) const {
    for (const auto& spec : specs_) {
      if (spec.name == name) return spec.provided;
    }
    return false;
  }

  [[nodiscard]] std::string help_text() const {
    std::string out = "usage: " + program_ + " [--flag[=value] ...]\n  " + summary_ + "\n\n";
    for (const auto& spec : specs_) {
      char head[96];
      std::snprintf(head, sizeof head, "  --%-24s", spec.name.c_str());
      out += head;
      out += spec.help;
      out += " [";
      out += type_name(spec.type);
      out += ", default: ";
      out += spec.type == Type::string ? ("\"" + spec.fallback + "\"") : spec.fallback;
      out += "]\n";
    }
    out += "  --help                     print this help and exit\n";
    return out;
  }

 private:
  struct Spec {
    std::string name;
    Type type = Type::string;
    std::string fallback;
    std::string help;
    std::string value;     // fallback until parse() overwrites it
    bool provided = false;
  };

  FlagRegistry& declare(const std::string& name, Type type, const std::string& fallback,
                        const std::string& help) {
    for (const auto& spec : specs_) {
      if (spec.name == name) {
        std::fprintf(stderr, "%s: flag --%s declared twice\n", program_.c_str(), name.c_str());
        std::exit(2);
      }
    }
    specs_.push_back(Spec{name, type, fallback, help, fallback, false});
    return *this;
  }

  void check_type(const Spec& spec) const {
    switch (spec.type) {
      case Type::string:
        return;
      case Type::integer:
        if (!parse_int(spec.value)) fail_type(spec, "an integer");
        return;
      case Type::real:
        if (!parse_double(spec.value)) fail_type(spec, "a number");
        return;
      case Type::boolean:
        if (spec.value != "true" && spec.value != "false" && spec.value != "1" &&
            spec.value != "0" && spec.value != "yes" && spec.value != "no") {
          fail_type(spec, "a boolean (true/false/1/0/yes/no)");
        }
        return;
    }
  }

  [[noreturn]] void fail_type(const Spec& spec, const char* expected) const {
    std::fprintf(stderr, "%s: flag --%s expects %s, got '%s'\n", program_.c_str(),
                 spec.name.c_str(), expected, spec.value.c_str());
    std::exit(2);
  }

  [[nodiscard]] const Spec& find(const std::string& name, Type type) const {
    for (const auto& spec : specs_) {
      if (spec.name != name) continue;
      if (spec.type != type) {
        std::fprintf(stderr, "%s: flag --%s read with the wrong type\n", program_.c_str(),
                     name.c_str());
        std::exit(2);
      }
      return spec;
    }
    std::fprintf(stderr, "%s: flag --%s read but never declared\n", program_.c_str(),
                 name.c_str());
    std::exit(2);
  }

  static const char* type_name(Type type) noexcept {
    switch (type) {
      case Type::string: return "string";
      case Type::integer: return "int";
      case Type::real: return "float";
      case Type::boolean: return "bool";
    }
    return "?";
  }

  std::string program_;
  std::string summary_;
  std::vector<Spec> specs_;
};

}  // namespace brisk::apps
