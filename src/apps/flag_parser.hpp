// Minimal --key=value / --key value flag parser shared by the BRISK
// executables. No external dependencies, fails loudly on unknown flags.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>

#include "common/string_util.hpp"

namespace brisk::apps {

class FlagParser {
 public:
  FlagParser(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // bare boolean flag
      }
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    consumed_.insert({key, true});
    return it->second;
  }

  [[nodiscard]] std::string get_string(const std::string& key, const std::string& fallback) {
    auto v = get(key);
    return v.has_value() ? *v : fallback;
  }

  [[nodiscard]] long long get_int(const std::string& key, long long fallback) {
    auto v = get(key);
    if (!v.has_value()) return fallback;
    auto parsed = parse_int(*v);
    if (!parsed) {
      std::fprintf(stderr, "flag --%s expects an integer, got '%s'\n", key.c_str(), v->c_str());
      std::exit(2);
    }
    return *parsed;
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) {
    auto v = get(key);
    if (!v.has_value()) return fallback;
    auto parsed = parse_double(*v);
    if (!parsed) {
      std::fprintf(stderr, "flag --%s expects a number, got '%s'\n", key.c_str(), v->c_str());
      std::exit(2);
    }
    return *parsed;
  }

  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) {
    auto v = get(key);
    if (!v.has_value()) return fallback;
    return *v == "true" || *v == "1" || *v == "yes";
  }

  /// Exits with an error if any provided flag was never consumed.
  void reject_unknown() {
    for (const auto& [key, value] : values_) {
      if (consumed_.find(key) == consumed_.end()) {
        std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
};

}  // namespace brisk::apps
