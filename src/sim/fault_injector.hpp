// Seeded frame-fault plans for the EXS⇄ISM link.
//
// A FaultInjector turns a FaultPlan (probabilities + a periodic stall) into
// the net::FaultPolicy that net::FaultySocket consumes. All randomness
// comes from one mt19937_64 seeded by the plan, and every frame consumes
// exactly one draw, so a given (seed, frame sequence) always produces the
// same fault pattern — crash/churn tests are replayable from their seed.
#pragma once

#include <cstdint>
#include <random>

#include "common/types.hpp"
#include "net/faulty_socket.hpp"

namespace brisk::sim {

struct FaultPlan {
  std::uint64_t seed = 1;
  /// Per-frame probabilities, evaluated in this order from a single draw;
  /// their sum must be <= 1 (the remainder passes clean).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double truncate_probability = 0.0;
  double stall_probability = 0.0;
  /// Stall duration (both for random and periodic stalls).
  TimeMicros stall_us = 0;
  /// Every Nth frame stalls (deterministic periodic stall, e.g. the
  /// "periodic 500 ms stall" scenario). 0 disables.
  std::uint32_t stall_every = 0;
  /// Fault only DATA_BATCH frames, letting HELLO/acks/sync through. The
  /// data path is where loss is recoverable by replay; control frames are
  /// tiny and faulting the handshake mostly tests TCP, not BRISK.
  bool spare_control_frames = true;

  [[nodiscard]] Status validate() const;
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// One decision per frame; consumes exactly one RNG draw.
  net::FaultDecision decide(std::uint64_t frame_index, ByteSpan payload);

  /// The policy to install on a FaultySocket. Captures `this`: the injector
  /// must outlive the socket wrapper.
  [[nodiscard]] net::FaultPolicy policy();

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  std::mt19937_64 rng_;
};

}  // namespace brisk::sim
