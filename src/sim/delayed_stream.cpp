#include "sim/delayed_stream.hpp"

#include <algorithm>

namespace brisk::sim {

const char* lateness_distribution_name(LatenessDistribution d) noexcept {
  switch (d) {
    case LatenessDistribution::none: return "none";
    case LatenessDistribution::uniform: return "uniform";
    case LatenessDistribution::exponential: return "exponential";
    case LatenessDistribution::bursty: return "bursty";
  }
  return "?";
}

std::vector<Arrival> generate_delayed_stream(const DelayedStreamConfig& config) {
  std::vector<Arrival> stream;
  const auto expected =
      static_cast<std::size_t>(config.events_per_sec_per_node *
                               static_cast<double>(config.duration_us) / 1e6 *
                               config.nodes);
  stream.reserve(expected + config.nodes);

  for (std::uint32_t node = 0; node < config.nodes; ++node) {
    std::mt19937_64 rng(config.seed + node * 7919u);
    std::exponential_distribution<double> inter_arrival(config.events_per_sec_per_node / 1e6);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    std::uniform_int_distribution<TimeMicros> uniform_delay(0, config.spread_us);
    std::exponential_distribution<double> exp_delay(
        1.0 / static_cast<double>(config.spread_us > 0 ? config.spread_us : 1));

    double creation = 0.0;
    TimeMicros prev_arrival = 0;
    SequenceNo seq = 0;
    std::uint32_t burst_remaining = 0;

    for (;;) {
      creation += inter_arrival(rng);
      const auto creation_us = static_cast<TimeMicros>(creation);
      if (creation_us >= config.duration_us) break;

      TimeMicros delay = config.base_delay_us;
      switch (config.distribution) {
        case LatenessDistribution::none:
          break;
        case LatenessDistribution::uniform:
          delay += uniform_delay(rng);
          break;
        case LatenessDistribution::exponential:
          delay += static_cast<TimeMicros>(exp_delay(rng));
          break;
        case LatenessDistribution::bursty:
          if (burst_remaining == 0 && coin(rng) < config.burst_probability) {
            burst_remaining = config.burst_length;
          }
          if (burst_remaining > 0) {
            delay += config.burst_extra_us;
            --burst_remaining;
          }
          break;
      }

      Arrival arrival;
      arrival.record.node = node;
      arrival.record.sensor = config.sensor;
      arrival.record.sequence = seq++;
      arrival.record.timestamp = creation_us;
      arrival.record.fields = {
          sensors::Field::i32(static_cast<std::int32_t>(node)),
          sensors::Field::i32(static_cast<std::int32_t>(seq)),
          sensors::Field::i32(0), sensors::Field::i32(1),
          sensors::Field::i32(2), sensors::Field::i32(3),
      };
      // FIFO channel per node: a record cannot overtake its predecessor.
      arrival.arrival_us = std::max(prev_arrival, creation_us + delay);
      prev_arrival = arrival.arrival_us;
      stream.push_back(std::move(arrival));
    }
  }

  std::stable_sort(stream.begin(), stream.end(), [](const Arrival& a, const Arrival& b) {
    if (a.arrival_us != b.arrival_us) return a.arrival_us < b.arrival_us;
    if (a.record.node != b.record.node) return a.record.node < b.record.node;
    return a.record.sequence < b.record.sequence;
  });
  return stream;
}

TimeMicros max_cross_node_lateness(const std::vector<Arrival>& stream) {
  TimeMicros max_seen_ts = 0;
  bool any = false;
  TimeMicros max_lateness = 0;
  for (const Arrival& a : stream) {
    if (any && a.record.timestamp < max_seen_ts) {
      const TimeMicros lateness = max_seen_ts - a.record.timestamp;
      if (lateness > max_lateness) max_lateness = lateness;
    }
    if (!any || a.record.timestamp > max_seen_ts) max_seen_ts = a.record.timestamp;
    any = true;
  }
  return max_lateness;
}

}  // namespace brisk::sim
