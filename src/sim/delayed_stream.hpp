// Artificially delayed event streams — the workload of the on-line sorting
// evaluation. "The on-line sorting algorithm was evaluated using streams of
// artificially delayed event records, and by varying four quantitative and
// qualitative parameters."
//
// The generator produces per-node event records whose *timestamps* are the
// true creation times, but whose *arrival times* at the ISM are creation +
// transport delay drawn from a configurable lateness distribution. Feeding
// them to the OnlineSorter in arrival order reproduces exactly the
// conditions the sorter's adaptive time frame must cope with.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sensors/record.hpp"

namespace brisk::sim {

enum class LatenessDistribution {
  none,         // arrival = creation + base (in-order streams)
  uniform,      // base + U[0, spread]
  exponential,  // base + Exp(mean = spread)
  bursty,       // mostly base, but bursts add a large common delay
};

const char* lateness_distribution_name(LatenessDistribution d) noexcept;

struct DelayedStreamConfig {
  std::uint32_t nodes = 4;
  double events_per_sec_per_node = 1000.0;
  TimeMicros duration_us = 1'000'000;
  LatenessDistribution distribution = LatenessDistribution::exponential;
  TimeMicros base_delay_us = 500;   // minimum transport delay
  TimeMicros spread_us = 2'000;     // distribution scale
  double burst_probability = 0.01;  // bursty only: chance a burst starts
  TimeMicros burst_extra_us = 20'000;
  std::uint32_t burst_length = 50;  // events a burst spans
  std::uint64_t seed = 7;
  SensorId sensor = 1;
};

struct Arrival {
  sensors::Record record;
  TimeMicros arrival_us = 0;  // when the ISM sees it
};

/// Generates the full stream, sorted by arrival time. Within one node,
/// arrival order always matches creation order (the stream-socket
/// guarantee); disorder only exists *across* nodes, as in the real system.
std::vector<Arrival> generate_delayed_stream(const DelayedStreamConfig& config);

/// True max lateness of a generated stream: max over records of
/// (arrival − creation) − min over records of the same — an oracle for the
/// "T as large as the latest lateness" strategy.
TimeMicros max_cross_node_lateness(const std::vector<Arrival>& stream);

}  // namespace brisk::sim
