#include "sim/workload.hpp"

#include "common/time_util.hpp"

namespace brisk::sim {

WorkloadResult run_looping_workload(sensors::Sensor& sensor, const WorkloadConfig& config) {
  using sensors::x_i32;
  WorkloadResult result;
  const TimeMicros start = monotonic_micros();
  const TimeMicros cpu_start = thread_cpu_micros();
  const TimeMicros deadline = start + config.duration_us;

  // Pacing: issue events so that by elapsed time t we have issued
  // rate * t events, sleeping in short naps when ahead of schedule.
  const double rate = config.events_per_sec;
  std::int32_t i = 0;
  for (;;) {
    const TimeMicros now = monotonic_micros();
    if (now >= deadline) break;
    if (rate > 0.0) {
      const auto due = static_cast<std::uint64_t>(rate * static_cast<double>(now - start) / 1e6);
      if (result.notices_issued >= due) {
        sleep_micros(100);
        continue;
      }
    }
    const bool ok = BRISK_NOTICE(sensor, config.sensor, x_i32(i), x_i32(i + 1), x_i32(i + 2),
                                 x_i32(i + 3), x_i32(i + 4), x_i32(i + 5));
    ++result.notices_issued;
    if (ok) ++result.notices_accepted;
    ++i;
  }
  result.elapsed_us = monotonic_micros() - start;
  result.cpu_us = thread_cpu_micros() - cpu_start;
  return result;
}

}  // namespace brisk::sim
