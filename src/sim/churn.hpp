// Seeded EXS churn scripts: a deterministic schedule of node joins, leaves
// (crash or clean), and timestamped record emissions, for driving the ISM
// merge/sort path through randomized connect/disconnect storms. The
// property test replays a script against the OnlineSorter and checks the
// ordering invariants; the same seed always yields the same script.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace brisk::sim {

struct ChurnConfig {
  std::uint64_t seed = 1;
  std::uint32_t nodes = 4;
  std::uint32_t steps = 2000;
  /// Simulated time between consecutive steps.
  TimeMicros step_us = 1'000;
  /// Per step and node: probability a live node leaves / a dead one joins.
  double toggle_probability = 0.01;
  /// Per step and live node: probability it emits a record.
  double record_probability = 0.7;
  /// Record timestamps lag the simulated now by up to this much (models
  /// network + batching delay; creates genuine cross-node reordering while
  /// each node's own timestamps stay monotonic, as a real node clock is).
  TimeMicros max_lag_us = 5'000;

  [[nodiscard]] Status validate() const;
};

struct ChurnEvent {
  enum class Kind : std::uint8_t { join, leave, record };
  Kind kind = Kind::record;
  NodeId node = 0;
  TimeMicros at = 0;         // simulated wall time of the event
  TimeMicros timestamp = 0;  // record timestamp (kind == record only)
};

/// Generates the full event schedule for a config. All nodes start joined
/// at time 0 (join events are emitted for them first).
std::vector<ChurnEvent> generate_churn(const ChurnConfig& config);

}  // namespace brisk::sim
