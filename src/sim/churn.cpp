#include "sim/churn.hpp"

namespace brisk::sim {

Status ChurnConfig::validate() const {
  if (nodes == 0) return Status(Errc::invalid_argument, "nodes == 0");
  if (step_us <= 0) return Status(Errc::invalid_argument, "step_us <= 0");
  if (toggle_probability < 0 || toggle_probability > 1) {
    return Status(Errc::invalid_argument, "toggle_probability outside [0, 1]");
  }
  if (record_probability < 0 || record_probability > 1) {
    return Status(Errc::invalid_argument, "record_probability outside [0, 1]");
  }
  if (max_lag_us < 0) return Status(Errc::invalid_argument, "negative max_lag_us");
  return Status::ok();
}

std::vector<ChurnEvent> generate_churn(const ChurnConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<ChurnEvent> events;
  events.reserve(static_cast<std::size_t>(config.steps) * config.nodes / 2);

  std::vector<bool> live(config.nodes, true);
  std::vector<TimeMicros> last_ts(config.nodes, 0);
  for (std::uint32_t n = 0; n < config.nodes; ++n) {
    events.push_back({ChurnEvent::Kind::join, static_cast<NodeId>(n + 1), 0, 0});
  }

  for (std::uint32_t step = 0; step < config.steps; ++step) {
    const TimeMicros now = static_cast<TimeMicros>(step + 1) * config.step_us;
    for (std::uint32_t n = 0; n < config.nodes; ++n) {
      const NodeId node = static_cast<NodeId>(n + 1);
      if (uniform(rng) < config.toggle_probability) {
        live[n] = !live[n];
        events.push_back(
            {live[n] ? ChurnEvent::Kind::join : ChurnEvent::Kind::leave, node, now, 0});
        continue;
      }
      if (live[n] && uniform(rng) < config.record_probability) {
        const auto lag = static_cast<TimeMicros>(
            uniform(rng) * static_cast<double>(config.max_lag_us));
        // Per-node timestamps stay monotonic: a node's clock is. The lag
        // models transport + batching delay, which shifts the arrival (the
        // event's `at`) relative to creation — it cannot reorder a single
        // node's own creation sequence, only interleavings across nodes.
        TimeMicros ts = now > lag ? now - lag : 0;
        if (ts <= last_ts[n]) ts = last_ts[n] + 1;
        last_ts[n] = ts;
        events.push_back({ChurnEvent::Kind::record, node, now, ts});
      }
    }
  }
  return events;
}

}  // namespace brisk::sim
