// Simulated master/slave synchronization channel.
//
// SimSyncTransport implements clk::SyncTransport over a set of SimClocks
// and a LatencyModel, with time driven by a ManualClock — the whole
// clock-synchronization evaluation (E6) runs deterministically in
// microseconds of simulated time instead of 10 real minutes on 8 real
// workstations.
#pragma once

#include <memory>
#include <vector>

#include "clock/clock.hpp"
#include "clock/sim_clock.hpp"
#include "clock/skew_estimator.hpp"
#include "sim/latency_model.hpp"

namespace brisk::sim {

class SimSyncTransport final : public clk::SyncTransport {
 public:
  /// `reference` is true time (advanced by polls in-flight); `master` is
  /// the ISM clock (may be the reference itself or its own SimClock);
  /// `model` supplies per-message delays.
  SimSyncTransport(clk::ManualClock& reference, clk::Clock& master, LatencyModel& model)
      : reference_(reference), master_(master), model_(model) {}

  /// Adds a slave clock; returns its index. The clock must outlive the
  /// transport.
  std::size_t add_slave(clk::SimClock* slave) {
    slaves_.push_back(slave);
    return slaves_.size() - 1;
  }

  [[nodiscard]] std::size_t slave_count() const noexcept override { return slaves_.size(); }

  Result<clk::PollSample> poll(std::size_t index) override {
    if (index >= slaves_.size()) return Status(Errc::out_of_range, "no such slave");
    clk::PollSample sample;
    sample.local_send = master_.now();
    reference_.advance(model_.forward());   // request in flight
    sample.remote_time = slaves_[index]->now();
    reference_.advance(model_.reverse());   // reply in flight
    sample.local_recv = master_.now();
    return sample;
  }

  Status adjust(std::size_t index, TimeMicros delta) override {
    if (index >= slaves_.size()) return Status(Errc::out_of_range, "no such slave");
    reference_.advance(model_.forward());   // adjust message in flight
    slaves_[index]->adjust(delta);
    return Status::ok();
  }

  [[nodiscard]] clk::SimClock* slave(std::size_t index) noexcept { return slaves_[index]; }

  /// Ground-truth ensemble dispersion: max |skew_i − skew_j| over all slave
  /// pairs — the metric the paper reports ("EXS clocks within N µs").
  [[nodiscard]] TimeMicros max_pairwise_skew() noexcept;

 private:
  clk::ManualClock& reference_;
  clk::Clock& master_;
  LatencyModel& model_;
  std::vector<clk::SimClock*> slaves_;
};

}  // namespace brisk::sim
