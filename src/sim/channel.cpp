#include "sim/channel.hpp"

namespace brisk::sim {

TimeMicros SimSyncTransport::max_pairwise_skew() noexcept {
  if (slaves_.size() < 2) return 0;
  TimeMicros min_skew = 0;
  TimeMicros max_skew = 0;
  bool first = true;
  for (clk::SimClock* slave : slaves_) {
    const TimeMicros skew = slave->true_skew();
    if (first) {
      min_skew = max_skew = skew;
      first = false;
    } else {
      if (skew < min_skew) min_skew = skew;
      if (skew > max_skew) max_skew = skew;
    }
  }
  return max_skew - min_skew;
}

}  // namespace brisk::sim
