#include "sim/fault_injector.hpp"

namespace brisk::sim {

Status FaultPlan::validate() const {
  const double sum =
      drop_probability + duplicate_probability + truncate_probability + stall_probability;
  if (drop_probability < 0 || duplicate_probability < 0 || truncate_probability < 0 ||
      stall_probability < 0) {
    return Status(Errc::invalid_argument, "negative fault probability");
  }
  if (sum > 1.0) return Status(Errc::invalid_argument, "fault probabilities sum above 1");
  if (stall_us < 0) return Status(Errc::invalid_argument, "negative stall_us");
  return Status::ok();
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan), rng_(plan.seed) {}

net::FaultDecision FaultInjector::decide(std::uint64_t frame_index, ByteSpan payload) {
  // One draw per frame, before any branching, so the random sequence stays
  // aligned with the frame sequence no matter which faults are enabled.
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const double draw = uniform(rng_);

  // The message type is a big-endian u32 at offset 0; all defined types fit
  // in the low byte.
  const bool is_data =
      payload.size() >= 4 && payload[0] == 0 && payload[1] == 0 && payload[2] == 0 &&
      payload[3] == 2 /* MsgType::data_batch */;
  if (plan_.spare_control_frames && !is_data) return {};

  if (plan_.stall_every > 0 && (frame_index + 1) % plan_.stall_every == 0) {
    return {net::FaultAction::stall, 0, plan_.stall_us};
  }

  double threshold = plan_.drop_probability;
  if (draw < threshold) return {net::FaultAction::drop, 0, 0};
  threshold += plan_.duplicate_probability;
  if (draw < threshold) return {net::FaultAction::duplicate, 0, 0};
  threshold += plan_.truncate_probability;
  if (draw < threshold) return {net::FaultAction::truncate, payload.size() / 2, 0};
  threshold += plan_.stall_probability;
  if (draw < threshold) return {net::FaultAction::stall, 0, plan_.stall_us};
  return {};
}

net::FaultPolicy FaultInjector::policy() {
  return [this](std::uint64_t frame_index, ByteSpan payload) {
    return decide(frame_index, payload);
  };
}

}  // namespace brisk::sim
