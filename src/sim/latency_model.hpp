// One-way network latency models for the simulated channel.
//
// The paper's clock-sync evaluation ran on a real ATM LAN where sync
// quality was "within [tens of] microseconds under light working
// conditions, and most of the time under 200 microseconds at times when
// disturbances of various sources in the LAN interfered". The latency
// model reproduces both regimes: a base one-way delay with uniform jitter,
// plus occasional spikes (the disturbances), plus an optional constant
// asymmetry — the component that genuinely defeats Cristian's rtt/2
// assumption.
#pragma once

#include <cstdint>
#include <random>

#include "common/types.hpp"

namespace brisk::sim {

struct LatencyModelConfig {
  TimeMicros base_us = 150;     // one-way base latency
  TimeMicros jitter_us = 50;    // uniform [0, jitter] added per message
  double spike_probability = 0.0;  // chance a message hits a disturbance
  TimeMicros spike_us = 5'000;     // extra delay when it does
  TimeMicros asymmetry_us = 0;  // added to *reverse* (slave→master) trips only
  std::uint64_t seed = 42;
};

class LatencyModel {
 public:
  explicit LatencyModel(const LatencyModelConfig& config)
      : config_(config), rng_(config.seed) {}

  /// Master → slave one-way delay.
  TimeMicros forward() { return sample_base(); }
  /// Slave → master one-way delay (includes asymmetry).
  TimeMicros reverse() { return sample_base() + config_.asymmetry_us; }

  /// Switches between quiet and disturbed phases at runtime (the clock-sync
  /// experiment alternates them).
  void set_spike_probability(double p) noexcept { config_.spike_probability = p; }

  [[nodiscard]] const LatencyModelConfig& config() const noexcept { return config_; }

 private:
  TimeMicros sample_base() {
    TimeMicros d = config_.base_us;
    if (config_.jitter_us > 0) {
      std::uniform_int_distribution<TimeMicros> jitter(0, config_.jitter_us);
      d += jitter(rng_);
    }
    if (config_.spike_probability > 0.0) {
      std::uniform_real_distribution<double> coin(0.0, 1.0);
      if (coin(rng_) < config_.spike_probability) d += config_.spike_us;
    }
    return d;
  }

  LatencyModelConfig config_;
  std::mt19937_64 rng_;
};

}  // namespace brisk::sim
