// LatencyModel is header-only; see latency_model.hpp.
#include "sim/latency_model.hpp"
