// Target-application workload drivers for the evaluation harness.
//
// "In both configurations, we use simple looping applications using NOTICE
// macros having six fields of type integer." run_looping_workload is that
// application: a tight loop issuing 6-int NOTICEs, optionally paced to a
// target event rate (for the utilization sweep) or unpaced (for the
// throughput ceiling).
#pragma once

#include <cstdint>

#include "sensors/sensor.hpp"

namespace brisk::sim {

struct WorkloadConfig {
  SensorId sensor = 1;
  /// Target NOTICE rate; 0 = as fast as possible.
  double events_per_sec = 0.0;
  /// Wall-clock duration of the loop (monotonic).
  TimeMicros duration_us = 1'000'000;
};

struct WorkloadResult {
  std::uint64_t notices_issued = 0;
  std::uint64_t notices_accepted = 0;  // not dropped at the ring
  TimeMicros elapsed_us = 0;
  TimeMicros cpu_us = 0;  // thread CPU time spent in the loop

  [[nodiscard]] double achieved_rate_per_sec() const noexcept {
    return elapsed_us <= 0 ? 0.0
                           : static_cast<double>(notices_issued) * 1e6 /
                                 static_cast<double>(elapsed_us);
  }
};

/// Runs the paper's looping application against `sensor`.
WorkloadResult run_looping_workload(sensors::Sensor& sensor, const WorkloadConfig& config);

}  // namespace brisk::sim
