#include "net/wakeup.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace brisk::net {

Result<WakeupPipe> WakeupPipe::create() {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status(Errc::io_error, std::string("pipe: ") + std::strerror(errno));
  }
  for (int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return Status(Errc::io_error, std::string("fcntl: ") + std::strerror(errno));
    }
  }
  return WakeupPipe(FdHandle(fds[0]), FdHandle(fds[1]));
}

void WakeupPipe::signal() noexcept {
  const std::uint8_t byte = 1;
  // EAGAIN means the pipe already holds a pending wakeup — success.
  (void)::write(write_end_.get(), &byte, 1);
}

void WakeupPipe::drain() noexcept {
  std::uint8_t sink[256];
  while (::read(read_end_.get(), sink, sizeof sink) > 0) {
  }
}

}  // namespace brisk::net
