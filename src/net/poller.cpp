#include "net/poller.hpp"

#include <sys/epoll.h>
#include <sys/select.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "common/time_util.hpp"

namespace brisk::net {

Status Poller::run(TimeMicros cycle_timeout) {
  // Deliberately no reset of stop_ here: a stop() that raced ahead of this
  // thread entering run() must win, or the caller's join() deadlocks.
  while (!stopped()) {
    auto result = poll_once(cycle_timeout);
    if (!result) return result.status();
  }
  return Status::ok();
}

// ---- SelectPoller -----------------------------------------------------------

Status SelectPoller::watch(int fd, Readiness interest, Callback callback) {
  if (fd < 0 || fd >= FD_SETSIZE) return Status(Errc::invalid_argument, "fd out of select range");
  if (!callback) return Status(Errc::invalid_argument, "null callback");
  if (!any(interest)) return Status(Errc::invalid_argument, "empty readiness interest");
  entries_[fd] = Entry{interest, std::make_shared<Callback>(std::move(callback))};
  return Status::ok();
}

Status SelectPoller::unwatch(int fd) {
  if (entries_.erase(fd) == 0) return Status(Errc::not_found, "fd not watched");
  return Status::ok();
}

Result<int> SelectPoller::poll_once(TimeMicros timeout) {
  if (timeout < 0) timeout = 0;
  const TimeMicros deadline = monotonic_micros() + timeout;
  fd_set read_set;
  fd_set write_set;
  int ready;
  for (;;) {
    // Rebuilt every attempt: select leaves the sets undefined on failure.
    FD_ZERO(&read_set);
    FD_ZERO(&write_set);
    int max_fd = -1;
    for (const auto& [fd, entry] : entries_) {
      if (any(entry.interest & Readiness::readable)) FD_SET(fd, &read_set);
      if (any(entry.interest & Readiness::writable)) FD_SET(fd, &write_set);
      if (fd > max_fd) max_fd = fd;
    }
    timeval tv{};
    tv.tv_sec = timeout / 1'000'000;
    tv.tv_usec = timeout % 1'000'000;
    ready = ::select(max_fd + 1, &read_set, &write_set, nullptr, &tv);
    if (ready >= 0) break;
    if (errno != EINTR)
      return Status(Errc::io_error, std::string("select: ") + std::strerror(errno));
    // A stray signal must not turn a timed wait into an early return:
    // re-wait for whatever slice of the timeout remains.
    timeout = deadline - monotonic_micros();
    if (timeout <= 0) {
      ready = 0;
      break;
    }
  }

  int handled = 0;
  if (ready > 0) {
    // Snapshot fds first: callbacks may watch/unwatch.
    std::vector<std::pair<int, Readiness>> ready_fds;
    ready_fds.reserve(static_cast<std::size_t>(ready));
    for (const auto& [fd, entry] : entries_) {
      Readiness mask = Readiness::none;
      if (FD_ISSET(fd, &read_set)) mask = mask | Readiness::readable;
      if (FD_ISSET(fd, &write_set)) mask = mask | Readiness::writable;
      if (any(mask)) ready_fds.emplace_back(fd, mask);
    }
    for (const auto& [fd, mask] : ready_fds) {
      auto it = entries_.find(fd);
      if (it == entries_.end()) continue;  // unwatched by a prior callback
      // Pin the shared handle: the callback may unwatch its own fd (e.g. on
      // a lost connection), which would otherwise destroy it mid-call. The
      // refcount bump replaces the old per-dispatch std::function copy.
      auto cb = it->second.callback;
      (*cb)(fd, mask);
      ++handled;
    }
  }
  if (idle_) idle_();
  return handled;
}

// ---- EpollPoller ------------------------------------------------------------

namespace {

std::uint32_t to_epoll_events(Readiness interest) noexcept {
  std::uint32_t events = 0;
  if (any(interest & Readiness::readable)) events |= EPOLLIN;
  if (any(interest & Readiness::writable)) events |= EPOLLOUT;
  return events;
}

Readiness from_epoll_events(std::uint32_t events, Readiness interest) noexcept {
  Readiness mask = Readiness::none;
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) mask = mask | Readiness::readable;
  if ((events & EPOLLOUT) != 0) mask = mask | Readiness::writable;
  // EPOLLHUP/EPOLLERR fire regardless of interest; report them through the
  // side the caller asked for so a write-only watcher still wakes up.
  if (!any(mask & interest)) mask = interest;
  return mask & interest;
}

}  // namespace

EpollPoller::EpollPoller() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

EpollPoller::~EpollPoller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EpollPoller::watch(int fd, Readiness interest, Callback callback) {
  if (fd < 0) return Status(Errc::invalid_argument, "negative fd");
  if (!callback) return Status(Errc::invalid_argument, "null callback");
  if (!any(interest)) return Status(Errc::invalid_argument, "empty readiness interest");
  if (epoll_fd_ < 0) return Status(Errc::io_error, "epoll instance unavailable");

  epoll_event event{};
  event.events = to_epoll_events(interest);
  event.data.fd = fd;
  const bool known = entries_.count(fd) != 0;
  const int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(epoll_fd_, op, fd, &event) != 0) {
    return Status(Errc::io_error, std::string("epoll_ctl: ") + std::strerror(errno));
  }
  entries_[fd] = Entry{interest, std::make_shared<Callback>(std::move(callback))};
  return Status::ok();
}

Status EpollPoller::unwatch(int fd) {
  auto it = entries_.find(fd);
  if (it == entries_.end()) return Status(Errc::not_found, "fd not watched");
  // Kernel first, bookkeeping second: a genuine ctl failure must leave the
  // entry registered so our view and the kernel's stay consistent. The fd
  // may already be closed (kernel auto-deregisters); EBADF/ENOENT are the
  // expected shapes of that and still count as a successful unwatch.
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0 && errno != EBADF &&
      errno != ENOENT) {
    return Status(Errc::io_error, std::string("epoll_ctl del: ") + std::strerror(errno));
  }
  entries_.erase(it);
  return Status::ok();
}

Result<int> EpollPoller::poll_once(TimeMicros timeout) {
  if (epoll_fd_ < 0) return Status(Errc::io_error, "epoll instance unavailable");
  if (timeout < 0) timeout = 0;
  // epoll_wait has millisecond granularity; round sub-millisecond timeouts
  // up so a positive timeout never degenerates into a busy spin.
  int timeout_ms = static_cast<int>(timeout / 1'000);
  if (timeout > 0 && timeout_ms == 0) timeout_ms = 1;

  const TimeMicros deadline = monotonic_micros() + timeout;
  epoll_event events[256];
  int ready;
  for (;;) {
    ready = ::epoll_wait(epoll_fd_, events, 256, timeout_ms);
    if (ready >= 0) break;
    if (errno != EINTR)
      return Status(Errc::io_error, std::string("epoll_wait: ") + std::strerror(errno));
    // Same EINTR discipline as SelectPoller: re-wait for the remainder.
    const TimeMicros remaining = deadline - monotonic_micros();
    if (remaining <= 0) {
      ready = 0;
      break;
    }
    timeout_ms = static_cast<int>(remaining / 1'000);
    if (timeout_ms == 0) timeout_ms = 1;
  }

  int handled = 0;
  for (int i = 0; i < ready; ++i) {
    const int fd = events[i].data.fd;
    auto it = entries_.find(fd);
    if (it == entries_.end()) continue;  // unwatched by a prior callback
    const Readiness mask = from_epoll_events(events[i].events, it->second.interest);
    if (!any(mask)) continue;
    // Same pin-then-call discipline as SelectPoller (see above).
    auto cb = it->second.callback;
    (*cb)(fd, mask);
    ++handled;
  }
  if (idle_) idle_();
  return handled;
}

// ---- factory ---------------------------------------------------------------

Result<PollerBackend> parse_poller_backend(std::string_view name) {
  if (name == "select") return PollerBackend::select;
  if (name == "epoll") return PollerBackend::epoll;
  if (name == "uring") return PollerBackend::uring;
  return Status(Errc::invalid_argument, "unknown poller backend '" + std::string(name) +
                                            "' (select|epoll|uring)");
}

const char* to_string(PollerBackend backend) noexcept {
  switch (backend) {
    case PollerBackend::epoll: return "epoll";
    case PollerBackend::uring: return "uring";
    case PollerBackend::select: break;
  }
  return "select";
}

std::unique_ptr<Poller> make_poller(PollerBackend backend) {
  if (backend == PollerBackend::uring) {
    // Graceful degradation: requesting uring on a kernel without it (or
    // under a seccomp policy that denies the syscalls) silently runs epoll
    // instead, so one deployment config works across mixed fleets. Logged
    // once so operators can tell which backend actually serves.
    if (auto poller = make_uring_poller()) return poller;
    static const bool logged = [] {
      BRISK_LOG(warn) << "io_uring unavailable (ENOSYS/EPERM or missing features); "
                         "--poller uring falling back to epoll";
      return true;
    }();
    (void)logged;
    return std::make_unique<EpollPoller>();
  }
  if (backend == PollerBackend::epoll) return std::make_unique<EpollPoller>();
  return std::make_unique<SelectPoller>();
}

}  // namespace brisk::net
