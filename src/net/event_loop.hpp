// select()-based readiness loop.
//
// The paper is explicit that its latency floor comes from "waiting select
// system calls, which can delay an event record for up to 40 ms" — the EXS
// and ISM both sit in select() with a timeout. We reproduce exactly that
// structure (and expose the timeout as a tuning knob so the latency
// experiment can sweep it).
#pragma once

#include <atomic>
#include <functional>
#include <map>

#include "common/error.hpp"
#include "common/types.hpp"

namespace brisk::net {

enum class Readiness { readable };

/// One select() cycle over a set of registered fds. Not thread-safe; one
/// loop per daemon thread.
class EventLoop {
 public:
  using Callback = std::function<void(int fd)>;
  using IdleCallback = std::function<void()>;

  /// Watches `fd` for readability; `callback` fires once per ready cycle.
  Status watch(int fd, Callback callback);
  Status unwatch(int fd);

  /// Called after every select() return (ready or timeout). This is where
  /// EXS/ISM do their periodic work: flushing aged batches, running clock
  /// sync rounds, releasing sorted records.
  void set_idle(IdleCallback callback) { idle_ = std::move(callback); }

  /// Runs one select() with the given timeout. Returns the number of ready
  /// fds handled (0 on pure timeout).
  Result<int> poll_once(TimeMicros timeout);

  /// Runs until `stop()` is called (from a callback, or from another thread
  /// — the flag is atomic and checked once per select() cycle).
  Status run(TimeMicros cycle_timeout);
  void stop() noexcept { stop_.store(true, std::memory_order_release); }
  [[nodiscard]] bool stopped() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t watched_count() const noexcept { return callbacks_.size(); }

 private:
  std::map<int, Callback> callbacks_;
  IdleCallback idle_;
  std::atomic<bool> stop_{false};
};

}  // namespace brisk::net
