#include "net/faulty_socket.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "net/frame.hpp"

namespace brisk::net {
namespace {

void put_be32(std::uint8_t* out, std::uint32_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

}  // namespace

Status FaultySocket::write_frame(TcpSocket& socket, ByteSpan payload) {
  const std::uint64_t index = stats_.frames++;
  if (!policy_) return net::write_frame(socket, payload);

  const FaultDecision decision = policy_(index, payload);
  switch (decision.action) {
    case FaultAction::pass:
      return net::write_frame(socket, payload);
    case FaultAction::drop:
      ++stats_.dropped;
      return Status::ok();
    case FaultAction::stall: {
      ++stats_.stalled;
      stats_.stalled_us_total += decision.stall_us;
      if (decision.stall_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(decision.stall_us));
      }
      return net::write_frame(socket, payload);
    }
    case FaultAction::truncate: {
      // Declare the full length, deliver only part of the body: what the
      // peer sees when the sender dies mid-write. Its FrameReader will wait
      // for bytes that never come (or misparse what follows), so the
      // connection is poisoned from here on — intentionally.
      ++stats_.truncated;
      std::uint8_t header[4];
      put_be32(header, static_cast<std::uint32_t>(payload.size()));
      Status st = socket.write_all(ByteSpan{header, 4});
      if (!st) return st;
      const std::size_t keep = std::min(decision.truncate_to, payload.size());
      if (keep > 0) return socket.write_all(payload.subspan(0, keep));
      return Status::ok();
    }
    case FaultAction::duplicate: {
      ++stats_.duplicated;
      Status st = net::write_frame(socket, payload);
      if (!st) return st;
      return net::write_frame(socket, payload);
    }
  }
  return Status(Errc::invalid_argument, "unknown fault action");
}

Status FaultySocket::write_frame(TcpSocket& socket, FrameSendBuffer& outbox,
                                 ByteSpan payload) {
  const std::uint64_t index = stats_.frames++;
  Status st = Status::ok();
  if (!policy_) {
    st = outbox.enqueue_frame(payload);
  } else {
    const FaultDecision decision = policy_(index, payload);
    switch (decision.action) {
      case FaultAction::pass:
        st = outbox.enqueue_frame(payload);
        break;
      case FaultAction::drop:
        ++stats_.dropped;
        break;
      case FaultAction::stall:
        ++stats_.stalled;
        stats_.stalled_us_total += decision.stall_us;
        if (decision.stall_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(decision.stall_us));
        }
        st = outbox.enqueue_frame(payload);
        break;
      case FaultAction::truncate: {
        // Same torn frame as the blocking path: full declared length, partial
        // body — the peer's stream is poisoned from here on, intentionally.
        ++stats_.truncated;
        std::uint8_t header[4];
        put_be32(header, static_cast<std::uint32_t>(payload.size()));
        st = outbox.enqueue_raw(ByteSpan{header, 4});
        const std::size_t keep = std::min(decision.truncate_to, payload.size());
        if (st && keep > 0) st = outbox.enqueue_raw(payload.subspan(0, keep));
        break;
      }
      case FaultAction::duplicate:
        ++stats_.duplicated;
        st = outbox.enqueue_frame(payload);
        if (st) st = outbox.enqueue_frame(payload);
        break;
    }
  }
  if (!st) return st;
  return outbox.pump(socket);
}

}  // namespace brisk::net
