// Deterministic frame-level fault injection on the outbound framed-write
// path. The wrapper sits between a daemon and net::write_frame and can
// drop, stall, truncate, or duplicate individual frames according to a
// pluggable policy. Policies live above this layer (sim::FaultInjector
// provides a seeded one); net/ only defines the decision vocabulary so it
// stays independent of the simulation code.
//
// Truncation writes the full declared length prefix but only part of the
// frame body — exactly what a peer observes when a sender dies mid-write —
// which desynchronizes the stream and forces the receiver to drop the
// connection. That makes it the sharpest tool here: it exercises the whole
// reconnect + replay path, not just a lost message.
#pragma once

#include <cstdint>
#include <functional>

#include "common/byte_buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"

namespace brisk::net {

enum class FaultAction {
  pass,       // deliver normally
  drop,       // silently discard the frame
  stall,      // sleep stall_us, then deliver
  truncate,   // send the length prefix + only truncate_to body bytes
  duplicate,  // deliver the frame twice
};

struct FaultDecision {
  FaultAction action = FaultAction::pass;
  std::size_t truncate_to = 0;  // body bytes kept when action == truncate
  TimeMicros stall_us = 0;      // sleep before delivery when action == stall
};

/// Decides the fate of outbound frame number `frame_index` (0-based,
/// counting every frame offered for send). Must be deterministic for a
/// given index/payload if the test wants reproducibility.
using FaultPolicy = std::function<FaultDecision(std::uint64_t frame_index, ByteSpan payload)>;

struct FaultStats {
  std::uint64_t frames = 0;  // frames offered for send
  std::uint64_t dropped = 0;
  std::uint64_t stalled = 0;
  std::uint64_t truncated = 0;
  std::uint64_t duplicated = 0;
  TimeMicros stalled_us_total = 0;
};

class FaultySocket {
 public:
  FaultySocket() = default;
  explicit FaultySocket(FaultPolicy policy) : policy_(std::move(policy)) {}

  void set_policy(FaultPolicy policy) { policy_ = std::move(policy); }
  [[nodiscard]] bool active() const noexcept { return static_cast<bool>(policy_); }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// Framed write through the policy. With no policy installed this is
  /// exactly net::write_frame(socket, payload).
  Status write_frame(TcpSocket& socket, ByteSpan payload);

  /// Buffered variant: the frame (after the policy's verdict) goes through
  /// `outbox` instead of blocking write_all calls, so a full kernel send
  /// buffer defers cleanly instead of tearing the frame. Errors are the
  /// outbox's (Errc::buffer_full when the peer stopped reading).
  Status write_frame(TcpSocket& socket, FrameSendBuffer& outbox, ByteSpan payload);

 private:
  FaultPolicy policy_;
  FaultStats stats_;
};

}  // namespace brisk::net
