// Thin RAII wrappers over TCP stream sockets.
//
// The paper's transfer protocol runs "over a TCP stream socket"; everything
// here is loopback/LAN TCP with optional non-blocking mode for use under
// the select()-based event loop.
#pragma once

#include <cstdint>
#include <string>

#include "common/byte_buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace brisk::net {

/// Owned file descriptor with move-only semantics.
class FdHandle {
 public:
  FdHandle() noexcept = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  ~FdHandle();
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept;
  FdHandle& operator=(FdHandle&& other) noexcept;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept;
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(FdHandle fd) noexcept : fd_(std::move(fd)) {}

  /// Blocking connect to host:port (IPv4 dotted quad or "localhost").
  static Result<TcpSocket> connect(const std::string& host, std::uint16_t port);

  Status set_nonblocking(bool enabled);
  Status set_nodelay(bool enabled);

  /// write(2): returns bytes written (may be short in non-blocking mode),
  /// Errc::would_block, or an error.
  Result<std::size_t> write_some(ByteSpan bytes);
  /// Writes the whole span. On a non-blocking socket, waits (select) for
  /// writability between partial writes; gives up with Errc::timeout after
  /// `timeout_us` of no progress (a peer that stopped reading must not
  /// wedge the caller forever).
  Status write_all(ByteSpan bytes, TimeMicros timeout_us = 10'000'000);
  /// read(2): returns bytes read, 0 on orderly peer close, Errc::would_block.
  Result<std::size_t> read_some(MutableByteSpan out);

  void close() noexcept { fd_.reset(); }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

 private:
  FdHandle fd_;
};

class TcpListener {
 public:
  TcpListener() = default;

  /// Binds to 127.0.0.1:`port` (0 = ephemeral) and listens.
  static Result<TcpListener> listen(std::uint16_t port, int backlog = 16);

  /// Accepts one connection (blocking unless the listener is non-blocking).
  Result<TcpSocket> accept();

  Status set_nonblocking(bool enabled);
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return fd_.get(); }
  [[nodiscard]] bool valid() const noexcept { return fd_.valid(); }

 private:
  TcpListener(FdHandle fd, std::uint16_t port) : fd_(std::move(fd)), port_(port) {}

  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// Connected socketpair (for in-process tests of stream code paths).
Result<std::pair<TcpSocket, TcpSocket>> socket_pair();

}  // namespace brisk::net
