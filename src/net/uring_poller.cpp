// io_uring Poller backend, implemented over raw syscalls.
//
// The container toolchain has the kernel uapi header (<linux/io_uring.h>)
// but no liburing, so the ring management lives here: io_uring_setup(2),
// the two ring mmaps, SQE/CQE index arithmetic with acquire/release fences,
// and io_uring_enter(2) for combined submit+wait.
//
// Design notes, mapped to the Poller contract:
//  * watch() does not touch the kernel directly — it queues an
//    IORING_OP_POLL_ADD SQE and the next poll_once() submits every pending
//    registration in ONE io_uring_enter call alongside the wait. A cycle
//    that (re)watches N fds costs one syscall, not N epoll_ctl calls.
//  * Registrations are single-shot with a batched re-arm, NOT
//    IORING_POLL_ADD_MULTI. Multishot poll only completes on fresh
//    waitqueue wakeups — effectively edge-triggered — so a callback that
//    leaves data unread would never be re-notified, breaking parity with
//    the level-triggered select/epoll backends. Re-arming instead re-runs
//    vfs_poll at submission, which reports still-pending readiness
//    immediately; the re-arm SQEs ride the next cycle's enter, so the
//    syscall count per cycle stays at one either way. (Multishot
//    accept/recv are completion ops, not readiness ops, and don't fit the
//    Poller contract.) Kernels that retire a registration early are handled
//    the same way: any CQE without IORING_CQE_F_MORE marks the entry
//    un-armed and dispatch re-queues the POLL_ADD.
//  * user_data carries (generation << 32) | fd. unwatch()/re-watch() bump
//    the generation, so CQEs from a cancelled registration are recognised
//    as stale and dropped — the poller never dispatches to a callback the
//    caller already replaced. Cancellations ride on IORING_OP_POLL_REMOVE
//    SQEs tagged with a high bit so their completions are discarded.
//  * Timed waits use IORING_ENTER_EXT_ARG + io_uring_getevents_arg, the
//    same mechanism liburing uses; the constructor requires
//    IORING_FEAT_EXT_ARG and make_uring_poller() returns nullptr without
//    it (make_poller then falls back to epoll).
//  * Readiness mapping mirrors EpollPoller: POLLHUP/POLLERR are reported
//    through the interest the caller declared, so a write-only watcher
//    still wakes on hangup.

#include "net/poller.hpp"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define BRISK_URING_SUPPORTED 1
#endif

#ifdef BRISK_URING_SUPPORTED

#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "common/time_util.hpp"

namespace brisk::net {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete, unsigned flags,
                       const void* arg, std::size_t arg_size) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete, flags, arg, arg_size));
}

std::uint32_t to_poll_events(Readiness interest) noexcept {
  std::uint32_t events = 0;
  if (any(interest & Readiness::readable)) events |= POLLIN;
  if (any(interest & Readiness::writable)) events |= POLLOUT;
  return events;
}

Readiness from_poll_events(std::uint32_t events, Readiness interest) noexcept {
  Readiness mask = Readiness::none;
  if ((events & (POLLIN | POLLHUP | POLLERR)) != 0) mask = mask | Readiness::readable;
  if ((events & POLLOUT) != 0) mask = mask | Readiness::writable;
  // Like epoll: HUP/ERR fire regardless of interest; route them through the
  // side the caller subscribed to so a write-only watcher still wakes.
  if (!any(mask & interest)) mask = interest;
  return mask & interest;
}

// user_data layout: bit 63 tags internal ops (poll-remove) whose completions
// carry no readiness; bits 32..62 are the registration generation; low 32
// bits are the fd.
constexpr std::uint64_t kInternalTag = 1ull << 63;

constexpr std::uint64_t make_user_data(int fd, std::uint32_t generation) noexcept {
  return (static_cast<std::uint64_t>(generation) << 32) |
         static_cast<std::uint32_t>(fd);
}

class UringPoller final : public Poller {
 public:
  UringPoller() = default;
  ~UringPoller() override {
    if (sq_ring_ != MAP_FAILED) ::munmap(sq_ring_, sq_ring_bytes_);
    if (cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_bytes_);
    if (sqes_ != MAP_FAILED) ::munmap(sqes_, sqe_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }
  UringPoller(const UringPoller&) = delete;
  UringPoller& operator=(const UringPoller&) = delete;

  /// Sets up the ring; false means the kernel can't serve this backend and
  /// the caller should fall back (never partially-constructed: the
  /// destructor cleans whatever did get mapped).
  bool init() {
    io_uring_params params{};
    // Registration churn produces two CQEs per watch/unwatch pair (the
    // cancel ack plus the -ECANCELED poll completion), so the CQ ring is
    // sized well above the SQ ring to keep overflow a rare path rather
    // than a steady-state one.
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = kCqEntries;
    ring_fd_ = sys_io_uring_setup(kRingEntries, &params);
    if (ring_fd_ < 0) return false;
    if ((params.features & IORING_FEAT_EXT_ARG) == 0) return false;

    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
    cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap && cq_ring_bytes_ > sq_ring_bytes_) sq_ring_bytes_ = cq_ring_bytes_;

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                      ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    if (single_mmap) {
      cq_ring_ = sq_ring_;
      cq_ring_bytes_ = sq_ring_bytes_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) return false;
    }
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    void* sqe_map = ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
    if (sqe_map == MAP_FAILED) return false;
    sqes_ = static_cast<io_uring_sqe*>(sqe_map);

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<std::atomic<std::uint32_t>*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<std::uint32_t>*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<std::uint32_t*>(sq + params.sq_off.ring_mask);
    sq_entries_ = *reinterpret_cast<std::uint32_t*>(sq + params.sq_off.ring_entries);
    sq_flags_ = reinterpret_cast<std::atomic<std::uint32_t>*>(sq + params.sq_off.flags);
    sq_array_ = reinterpret_cast<std::uint32_t*>(sq + params.sq_off.array);

    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<std::uint32_t>*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<std::uint32_t>*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<std::uint32_t*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);

    sq_tail_local_ = sq_tail_->load(std::memory_order_relaxed);
    return true;
  }

  using Poller::watch;

  Status watch(int fd, Readiness interest, Callback callback) override {
    if (fd < 0) return Status(Errc::invalid_argument, "negative fd");
    if (!callback) return Status(Errc::invalid_argument, "null callback");
    if (!any(interest)) return Status(Errc::invalid_argument, "empty readiness interest");

    auto it = entries_.find(fd);
    if (it != entries_.end()) {
      // Upsert: cancel the old registration; its generation goes stale so
      // any CQE already in flight for it is dropped at dispatch.
      queue_poll_remove(make_user_data(fd, it->second.generation));
    }
    const std::uint32_t generation = next_generation_;
    // 31-bit wrap keeps the generation clear of the kInternalTag bit.
    next_generation_ = (next_generation_ + 1) & 0x7fffffffu;
    if (next_generation_ == 0) next_generation_ = 1;
    entries_[fd] =
        Entry{interest, std::make_shared<Callback>(std::move(callback)), generation};
    queue_poll_add(fd, interest, generation);
    return Status::ok();
  }

  Status unwatch(int fd) override {
    auto it = entries_.find(fd);
    if (it == entries_.end()) return Status(Errc::not_found, "fd not watched");
    queue_poll_remove(make_user_data(fd, it->second.generation));
    entries_.erase(it);
    return Status::ok();
  }

  Result<int> poll_once(TimeMicros timeout) override {
    if (timeout < 0) timeout = 0;

    // One syscall submits every registration queued since the last cycle
    // AND waits for completions. Skip the wait when completions are already
    // sitting in the CQ ring.
    const TimeMicros deadline = monotonic_micros() + timeout;
    TimeMicros remaining = timeout;
    for (;;) {
      const unsigned to_submit = pending_submit_;
      const bool cq_empty = cq_head_->load(std::memory_order_acquire) ==
                            cq_tail_->load(std::memory_order_acquire);
      if (to_submit == 0 && !cq_empty) break;
      __kernel_timespec ts{};
      ts.tv_sec = remaining / 1'000'000;
      ts.tv_nsec = (remaining % 1'000'000) * 1'000;
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      unsigned flags = 0;
      unsigned min_complete = 0;
      const void* argp = nullptr;
      std::size_t argsz = 0;
      if (cq_empty) {
        // EXT_ARG is only interpreted while waiting, so it rides with
        // GETEVENTS; a submit-only enter passes no arg.
        flags = IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG;
        min_complete = 1;
        argp = &arg;
        argsz = sizeof(arg);
      }
      int rc = sys_io_uring_enter(ring_fd_, to_submit, min_complete, flags, argp, argsz);
      if (rc >= 0) {
        pending_submit_ -= std::min(static_cast<unsigned>(rc), pending_submit_);
        break;
      }
      if (errno == EINTR) {
        // Same EINTR discipline as the other backends: a stray signal must
        // not turn a timed wait into an early return. Nothing was consumed
        // from the SQ, so the retry re-submits and waits the remainder.
        remaining = deadline - monotonic_micros();
        if (remaining <= 0) break;
        continue;
      }
      if (errno != ETIME && errno != EBUSY) {
        return Status(Errc::io_error, std::string("io_uring_enter: ") + std::strerror(errno));
      }
      break;
      // On ETIME nothing was consumed from the SQ (the kernel reports the
      // submitted count instead when it took SQEs), so pending_submit_
      // stays and the next cycle retries. EBUSY means the CQ overflowed and
      // the kernel wants it drained before accepting submissions — the
      // harvest below makes room and the overflow loop retries.
    }

    int handled = 0;
    harvest_cq();
    dispatch_completions(handled);
    // CQ overflow: the kernel stashed completions in a backlog because the
    // ring was full. Drain in rounds — each GETEVENTS enter flushes as much
    // backlog as fits in the space the previous harvest made.
    while ((sq_flags_->load(std::memory_order_acquire) & IORING_SQ_CQ_OVERFLOW) != 0) {
      int rc = sys_io_uring_enter(ring_fd_, 0, 0, IORING_ENTER_GETEVENTS, nullptr, 0);
      if (rc < 0 && errno != EINTR && errno != EBUSY && errno != ETIME) break;
      harvest_cq();
      if (completions_.empty()) break;  // no progress; avoid spinning
      dispatch_completions(handled);
    }
    if (idle_) idle_();
    return handled;
  }

  [[nodiscard]] std::size_t watched_count() const noexcept override { return entries_.size(); }
  [[nodiscard]] const char* backend_name() const noexcept override { return "uring"; }

 private:
  struct Entry {
    Readiness interest = Readiness::readable;
    std::shared_ptr<Callback> callback;
    std::uint32_t generation = 0;
    bool armed = true;
  };
  struct Completion {
    std::uint64_t user_data;
    std::int32_t res;
    std::uint32_t flags;
  };

  static constexpr unsigned kRingEntries = 256;
  static constexpr unsigned kCqEntries = 4096;

  /// Copies every pending CQE into completions_ and releases the ring
  /// slots. Separated from dispatch so SQ-pressure paths (acquire_sqe) can
  /// free CQ space without re-entering user callbacks.
  void harvest_cq() {
    std::uint32_t head = cq_head_->load(std::memory_order_relaxed);
    const std::uint32_t tail = cq_tail_->load(std::memory_order_acquire);
    for (; head != tail; ++head) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      completions_.push_back(Completion{cqe.user_data, cqe.res, cqe.flags});
    }
    cq_head_->store(head, std::memory_order_release);
  }

  void dispatch_completions(int& handled) {
    // Swap out the batch: callbacks may watch/unwatch, and acquire_sqe may
    // harvest MORE completions mid-dispatch; those belong to the next round.
    std::vector<Completion> batch;
    batch.swap(completions_);
    for (const Completion& c : batch) {
      if ((c.user_data & kInternalTag) != 0) continue;  // poll-remove ack
      const int fd = static_cast<int>(c.user_data & 0xffffffffu);
      const auto generation = static_cast<std::uint32_t>(c.user_data >> 32);
      auto it = entries_.find(fd);
      if (it == entries_.end() || it->second.generation != generation) {
        // Stale registration. If the kernel still holds it armed (a remove
        // raced ahead of its add), cancel it so it stops generating CQEs.
        if ((c.flags & IORING_CQE_F_MORE) != 0) {
          queue_poll_remove(make_user_data(fd, generation));
        }
        continue;
      }

      if ((c.flags & IORING_CQE_F_MORE) == 0) it->second.armed = false;
      if (c.res == -ECANCELED) continue;  // raced with our own remove

      Readiness mask;
      if (c.res < 0) {
        // Poll errors surface like epoll's EPOLLERR: wake the watcher on
        // its declared interest and let the read/write path see the errno.
        mask = it->second.interest;
      } else {
        mask = from_poll_events(static_cast<std::uint32_t>(c.res), it->second.interest);
      }
      if (!any(mask)) continue;
      auto cb = it->second.callback;  // pin across self-unwatch
      (*cb)(fd, mask);
      ++handled;

      // Re-arm if the registration survived the callback un-armed (the
      // callback may have unwatched, or re-watched with a new generation —
      // both make this lookup miss or mismatch).
      auto again = entries_.find(fd);
      if (again != entries_.end() && again->second.generation == generation &&
          !again->second.armed) {
        queue_poll_add(fd, again->second.interest, generation);
        again->second.armed = true;
      }
    }
  }

  io_uring_sqe* acquire_sqe() {
    // SQ full: flush what's queued so far with a submit-only enter. If the
    // kernel refuses because the CQ overflowed (EBUSY), harvest to make
    // room (dispatch stays deferred to poll_once), flush the backlog with a
    // GETEVENTS enter, and retry.
    int rounds = 0;
    while (sq_tail_local_ - sq_head_->load(std::memory_order_acquire) >= sq_entries_) {
      flush_submissions();
      if (sq_tail_local_ - sq_head_->load(std::memory_order_acquire) < sq_entries_) break;
      harvest_cq();
      (void)sys_io_uring_enter(ring_fd_, 0, 0, IORING_ENTER_GETEVENTS, nullptr, 0);
      if (++rounds > 64) break;  // pathological; overwriting is the lesser evil
    }
    const std::uint32_t index = sq_tail_local_ & sq_mask_;
    io_uring_sqe* sqe = &sqes_[index];
    std::memset(sqe, 0, sizeof(*sqe));
    sq_array_[index] = index;
    ++sq_tail_local_;
    sq_tail_->store(sq_tail_local_, std::memory_order_release);
    ++pending_submit_;
    return sqe;
  }

  void flush_submissions() {
    while (pending_submit_ > 0) {
      int rc = sys_io_uring_enter(ring_fd_, pending_submit_, 0, 0, nullptr, 0);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return;  // poll_once surfaces persistent enter failures
      }
      if (rc == 0) return;
      pending_submit_ -= std::min(static_cast<unsigned>(rc), pending_submit_);
    }
  }

  void queue_poll_add(int fd, Readiness interest, std::uint32_t generation) {
    io_uring_sqe* sqe = acquire_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    sqe->poll32_events = to_poll_events(interest);
    sqe->user_data = make_user_data(fd, generation);
  }

  void queue_poll_remove(std::uint64_t target_user_data) {
    io_uring_sqe* sqe = acquire_sqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->fd = -1;
    sqe->addr = target_user_data;
    sqe->user_data = kInternalTag | target_user_data;
  }

  int ring_fd_ = -1;
  void* sq_ring_ = MAP_FAILED;
  void* cq_ring_ = MAP_FAILED;
  io_uring_sqe* sqes_ = static_cast<io_uring_sqe*>(MAP_FAILED);
  std::size_t sq_ring_bytes_ = 0;
  std::size_t cq_ring_bytes_ = 0;
  std::size_t sqe_bytes_ = 0;

  std::atomic<std::uint32_t>* sq_head_ = nullptr;
  std::atomic<std::uint32_t>* sq_tail_ = nullptr;
  std::uint32_t sq_mask_ = 0;
  std::uint32_t sq_entries_ = 0;
  std::atomic<std::uint32_t>* sq_flags_ = nullptr;
  std::uint32_t* sq_array_ = nullptr;
  std::uint32_t sq_tail_local_ = 0;
  unsigned pending_submit_ = 0;

  std::atomic<std::uint32_t>* cq_head_ = nullptr;
  std::atomic<std::uint32_t>* cq_tail_ = nullptr;
  std::uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
  std::vector<Completion> completions_;  // harvested, not yet dispatched

  std::map<int, Entry> entries_;
  std::uint32_t next_generation_ = 1;
};

}  // namespace

std::unique_ptr<Poller> make_uring_poller() {
  auto poller = std::make_unique<UringPoller>();
  if (!poller->init()) return nullptr;
  return poller;
}

bool uring_available() noexcept {
  static const bool available = [] {
    auto probe = make_uring_poller();
    return probe != nullptr;
  }();
  return available;
}

}  // namespace brisk::net

#else  // !BRISK_URING_SUPPORTED

namespace brisk::net {

std::unique_ptr<Poller> make_uring_poller() { return nullptr; }
bool uring_available() noexcept { return false; }

}  // namespace brisk::net

#endif
