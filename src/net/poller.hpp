// Backend-neutral readiness polling.
//
// The paper is explicit that its latency floor comes from "waiting select
// system calls, which can delay an event record for up to 40 ms" — the EXS
// and ISM both sit in a readiness wait with a timeout. Poller reproduces
// exactly that structure behind a backend-neutral interface so deployments
// can choose:
//  * SelectPoller — the paper-faithful select(2) backend (default). Keeps
//    the 1024-fd FD_SETSIZE cap and the linear rescan, which is what the
//    latency experiments model.
//  * EpollPoller — a level-triggered epoll(7) backend with no fd cap and
//    O(ready) dispatch, the backend for "hundreds of EXS nodes" at one ISM.
//  * UringPoller — an io_uring backend (raw syscalls, no liburing) that
//    batches all pending registrations into one submit+wait syscall per
//    cycle and uses multishot poll so quiet fds cost nothing to re-arm.
//    Falls back to epoll at make_poller() time on kernels without io_uring.
// All backends dispatch the same way (snapshot ready fds, invoke the
// callbacks through a stable shared handle so a callback may unwatch any
// fd, including its own), so the daemons behave identically regardless of
// backend.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace brisk::net {

/// Readiness interest/result mask. `readable` matches the historical
/// event-loop behaviour; `writable` lets senders wait out a full socket
/// buffer instead of spinning.
enum class Readiness : std::uint32_t {
  none = 0,
  readable = 1u << 0,
  writable = 1u << 1,
};

constexpr Readiness operator|(Readiness a, Readiness b) noexcept {
  return static_cast<Readiness>(static_cast<std::uint32_t>(a) | static_cast<std::uint32_t>(b));
}
constexpr Readiness operator&(Readiness a, Readiness b) noexcept {
  return static_cast<Readiness>(static_cast<std::uint32_t>(a) & static_cast<std::uint32_t>(b));
}
constexpr bool any(Readiness mask) noexcept { return mask != Readiness::none; }

/// One poll cycle over a set of registered fds. Not thread-safe; one poller
/// per daemon thread (stop() alone may be called from another thread).
class Poller {
 public:
  using Callback = std::function<void(int fd, Readiness ready)>;
  using IdleCallback = std::function<void()>;

  virtual ~Poller() = default;

  /// Watches `fd` for the readiness in `interest`; `callback` fires once
  /// per ready cycle with the subset that is actually ready. Watching an
  /// already-watched fd replaces its interest and callback.
  virtual Status watch(int fd, Readiness interest, Callback callback) = 0;
  /// Readable-only convenience (the common daemon case).
  Status watch(int fd, Callback callback) {
    return watch(fd, Readiness::readable, std::move(callback));
  }
  virtual Status unwatch(int fd) = 0;

  /// Called after every poll return (ready or timeout). This is where
  /// EXS/ISM do their periodic work: flushing aged batches, running clock
  /// sync rounds, releasing sorted records.
  void set_idle(IdleCallback callback) { idle_ = std::move(callback); }

  /// Runs one wait with the given timeout. Returns the number of ready fd
  /// events handled (0 on pure timeout).
  virtual Result<int> poll_once(TimeMicros timeout) = 0;

  /// Runs until `stop()` is called (from a callback, or from another thread
  /// — the flag is atomic and checked once per poll cycle).
  Status run(TimeMicros cycle_timeout);
  void stop() noexcept { stop_.store(true, std::memory_order_release); }
  [[nodiscard]] bool stopped() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

  [[nodiscard]] virtual std::size_t watched_count() const noexcept = 0;
  [[nodiscard]] virtual const char* backend_name() const noexcept = 0;

 protected:
  IdleCallback idle_;
  std::atomic<bool> stop_{false};
};

/// The paper-faithful select(2) backend: FD_SETSIZE cap, linear rescans.
class SelectPoller final : public Poller {
 public:
  using Poller::watch;
  Status watch(int fd, Readiness interest, Callback callback) override;
  Status unwatch(int fd) override;
  Result<int> poll_once(TimeMicros timeout) override;
  [[nodiscard]] std::size_t watched_count() const noexcept override {
    return entries_.size();
  }
  [[nodiscard]] const char* backend_name() const noexcept override { return "select"; }

 private:
  struct Entry {
    Readiness interest = Readiness::readable;
    // Held behind a shared handle so dispatch can pin the callback alive
    // across a self-unwatch without copying the std::function per event.
    std::shared_ptr<Callback> callback;
  };
  std::map<int, Entry> entries_;
};

/// Level-triggered epoll(7) backend: no fd cap, O(ready) dispatch.
class EpollPoller final : public Poller {
 public:
  EpollPoller();
  ~EpollPoller() override;
  EpollPoller(const EpollPoller&) = delete;
  EpollPoller& operator=(const EpollPoller&) = delete;

  using Poller::watch;
  Status watch(int fd, Readiness interest, Callback callback) override;
  Status unwatch(int fd) override;
  Result<int> poll_once(TimeMicros timeout) override;
  [[nodiscard]] std::size_t watched_count() const noexcept override {
    return entries_.size();
  }
  [[nodiscard]] const char* backend_name() const noexcept override { return "epoll"; }

 private:
  struct Entry {
    Readiness interest = Readiness::readable;
    std::shared_ptr<Callback> callback;  // stable dispatch handle (see SelectPoller)
  };
  int epoll_fd_ = -1;
  std::map<int, Entry> entries_;
};

enum class PollerBackend { select, epoll, uring };

/// Parses a --poller / knob value ("select", "epoll", or "uring").
Result<PollerBackend> parse_poller_backend(std::string_view name);
const char* to_string(PollerBackend backend) noexcept;

/// True when this kernel can create an io_uring instance with the features
/// the UringPoller needs (probed once, cached). Used by tests and ci.sh to
/// decide whether `--poller uring` runs natively or falls back.
bool uring_available() noexcept;

/// Constructs the io_uring backend directly; returns nullptr when the kernel
/// lacks io_uring (ENOSYS), seccomp denies it (EPERM), or required features
/// are missing. Most callers want make_poller(), which falls back to epoll.
std::unique_ptr<Poller> make_uring_poller();

std::unique_ptr<Poller> make_poller(PollerBackend backend);

}  // namespace brisk::net
