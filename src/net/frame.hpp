// Message framing over a TCP stream: each message is a 4-byte big-endian
// length followed by the payload. "The in-order arrival of these batches is
// guaranteed by the socket stream protocol" — framing turns the stream back
// into the discrete batch messages the ISM queues.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/byte_buffer.hpp"
#include "net/socket.hpp"

namespace brisk::net {

inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // defensive bound

/// Default byte cap of a FrameSendBuffer (pending, unflushed bytes).
inline constexpr std::size_t kDefaultSendBufferBytes = 4u << 20;

/// Writes one framed message (blocking).
Status write_frame(TcpSocket& socket, ByteSpan payload);

/// Per-connection outbound frame buffer for non-blocking senders. Frames
/// are enqueued whole (header + payload) and drained with write_some(),
/// so a full kernel send buffer can never tear a frame on the wire — the
/// unwritten remainder stays here until the socket accepts it. This is the
/// ISM-side answer to short writes (the EXS retries via its replay buffer;
/// the ISM's acks and sync frames have no such second source of truth).
class FrameSendBuffer {
 public:
  explicit FrameSendBuffer(std::size_t max_pending_bytes = kDefaultSendBufferBytes)
      : max_pending_(max_pending_bytes) {}

  /// Appends one length-prefixed frame. Errc::buffer_full when the pending
  /// bytes would exceed the cap (the peer has stopped reading; the caller
  /// should drop the connection rather than buffer without bound).
  Status enqueue_frame(ByteSpan payload);

  /// Appends raw bytes with no framing (fault injection uses this to place
  /// deliberately torn frames on the wire).
  Status enqueue_raw(ByteSpan bytes);

  /// Writes as much pending data as the socket accepts right now. Returns
  /// ok when everything was flushed *or* the socket would block (check
  /// pending_bytes() to tell); real I/O errors propagate.
  Status pump(TcpSocket& socket);

  [[nodiscard]] bool empty() const noexcept { return buffer_.size() == consumed_; }
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::size_t max_pending_;
};

/// Reads exactly one framed message (blocking).
Result<ByteBuffer> read_frame(TcpSocket& socket);

/// Incremental frame decoder for non-blocking sockets: feed raw stream
/// bytes, pop complete frames.
class FrameReader {
 public:
  /// Appends raw bytes received from the stream.
  void feed(ByteSpan bytes);

  /// Pops the next complete frame, if any. Returns Errc::malformed if the
  /// peer declared an oversized frame (connection should be dropped).
  Result<std::optional<ByteBuffer>> next();

  [[nodiscard]] std::size_t buffered_bytes() const noexcept { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace brisk::net
