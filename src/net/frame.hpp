// Message framing over a TCP stream: each message is a 4-byte big-endian
// length followed by the payload. "The in-order arrival of these batches is
// guaranteed by the socket stream protocol" — framing turns the stream back
// into the discrete batch messages the ISM queues.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/byte_buffer.hpp"
#include "net/socket.hpp"

namespace brisk::net {

inline constexpr std::size_t kMaxFrameBytes = 16u << 20;  // defensive bound

/// Writes one framed message (blocking).
Status write_frame(TcpSocket& socket, ByteSpan payload);

/// Reads exactly one framed message (blocking).
Result<ByteBuffer> read_frame(TcpSocket& socket);

/// Incremental frame decoder for non-blocking sockets: feed raw stream
/// bytes, pop complete frames.
class FrameReader {
 public:
  /// Appends raw bytes received from the stream.
  void feed(ByteSpan bytes);

  /// Pops the next complete frame, if any. Returns Errc::malformed if the
  /// peer declared an oversized frame (connection should be dropped).
  Result<std::optional<ByteBuffer>> next();

  [[nodiscard]] std::size_t buffered_bytes() const noexcept { return buffer_.size() - consumed_; }

 private:
  void compact();

  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace brisk::net
