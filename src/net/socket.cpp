#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace brisk::net {
namespace {

Status errno_status(const char* what) {
  return Status(Errc::io_error, std::string(what) + ": " + std::strerror(errno));
}

Status fd_set_nonblocking(int fd, bool enabled) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status("fcntl(F_GETFL)");
  flags = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) != 0) return errno_status("fcntl(F_SETFL)");
  return Status::ok();
}

}  // namespace

FdHandle::~FdHandle() { reset(); }

FdHandle::FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset(std::exchange(other.fd_, -1));
  }
  return *this;
}

int FdHandle::release() noexcept { return std::exchange(fd_, -1); }

void FdHandle::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Result<TcpSocket> TcpSocket::connect(const std::string& host, std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = (host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status(Errc::invalid_argument, "bad IPv4 address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_status("connect");
  }
  return TcpSocket(std::move(fd));
}

Status TcpSocket::set_nonblocking(bool enabled) { return fd_set_nonblocking(fd_.get(), enabled); }

Status TcpSocket::set_nodelay(bool enabled) {
  int flag = enabled ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &flag, sizeof flag) != 0) {
    return errno_status("setsockopt(TCP_NODELAY)");
  }
  return Status::ok();
}

Result<std::size_t> TcpSocket::write_some(ByteSpan bytes) {
  for (;;) {
    const ssize_t n = ::send(fd_.get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status(Errc::would_block);
    if (errno == EPIPE || errno == ECONNRESET) return Status(Errc::closed, "peer closed");
    return errno_status("send");
  }
}

Status TcpSocket::write_all(ByteSpan bytes, TimeMicros timeout_us) {
  std::size_t sent = 0;
  TimeMicros waited = 0;
  while (sent < bytes.size()) {
    auto n = write_some(bytes.subspan(sent));
    if (!n) {
      if (n.status().code() != Errc::would_block) return n.status();
      // Kernel buffer full: wait for writability instead of spinning.
      if (waited >= timeout_us) {
        return Status(Errc::timeout, "peer not draining; write_all gave up");
      }
      fd_set write_set;
      FD_ZERO(&write_set);
      FD_SET(fd_.get(), &write_set);
      timeval tv{};
      const TimeMicros slice = 100'000 < timeout_us - waited ? 100'000 : timeout_us - waited;
      tv.tv_sec = slice / 1'000'000;
      tv.tv_usec = slice % 1'000'000;
      const int ready = ::select(fd_.get() + 1, nullptr, &write_set, nullptr, &tv);
      if (ready < 0 && errno != EINTR) return errno_status("select(write)");
      if (ready == 0) waited += slice;
      continue;
    }
    sent += n.value();
    waited = 0;  // progress resets the stall clock
  }
  return Status::ok();
}

Result<std::size_t> TcpSocket::read_some(MutableByteSpan out) {
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), out.data(), out.size(), 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return std::size_t{0};  // orderly close
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status(Errc::would_block);
    if (errno == ECONNRESET) return Status(Errc::closed, "connection reset");
    return errno_status("recv");
  }
}

Result<TcpListener> TcpListener::listen(std::uint16_t port, int backlog) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_status("socket");
  int reuse = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return errno_status("bind");
  }
  if (::listen(fd.get(), backlog) != 0) return errno_status("listen");

  socklen_t len = sizeof addr;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_status("getsockname");
  }
  return TcpListener(std::move(fd), ntohs(addr.sin_port));
}

Result<TcpSocket> TcpListener::accept() {
  for (;;) {
    const int client = ::accept(fd_.get(), nullptr, nullptr);
    if (client >= 0) return TcpSocket(FdHandle(client));
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status(Errc::would_block);
    return errno_status("accept");
  }
}

Status TcpListener::set_nonblocking(bool enabled) { return fd_set_nonblocking(fd_.get(), enabled); }

Result<std::pair<TcpSocket, TcpSocket>> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return errno_status("socketpair");
  return std::make_pair(TcpSocket(FdHandle(fds[0])), TcpSocket(FdHandle(fds[1])));
}

}  // namespace brisk::net
