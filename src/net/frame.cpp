#include "net/frame.hpp"

#include <cstring>

namespace brisk::net {
namespace {

void put_be32(std::uint8_t* out, std::uint32_t value) noexcept {
  out[0] = static_cast<std::uint8_t>(value >> 24);
  out[1] = static_cast<std::uint8_t>(value >> 16);
  out[2] = static_cast<std::uint8_t>(value >> 8);
  out[3] = static_cast<std::uint8_t>(value);
}

std::uint32_t get_be32(const std::uint8_t* in) noexcept {
  return (std::uint32_t{in[0]} << 24) | (std::uint32_t{in[1]} << 16) |
         (std::uint32_t{in[2]} << 8) | std::uint32_t{in[3]};
}

}  // namespace

Status write_frame(TcpSocket& socket, ByteSpan payload) {
  if (payload.size() > kMaxFrameBytes) return Status(Errc::invalid_argument, "frame too large");
  std::uint8_t header[4];
  put_be32(header, static_cast<std::uint32_t>(payload.size()));
  Status st = socket.write_all(ByteSpan{header, 4});
  if (!st) return st;
  return socket.write_all(payload);
}

Result<ByteBuffer> read_frame(TcpSocket& socket) {
  std::uint8_t header[4];
  std::size_t got = 0;
  while (got < 4) {
    auto n = socket.read_some(MutableByteSpan{header + got, 4 - got});
    if (!n) return n.status();
    if (n.value() == 0) return Status(Errc::closed, "eof in frame header");
    got += n.value();
  }
  const std::uint32_t len = get_be32(header);
  if (len > kMaxFrameBytes) return Status(Errc::malformed, "oversized frame");

  ByteBuffer payload;
  std::vector<std::uint8_t> body(len);
  got = 0;
  while (got < len) {
    auto n = socket.read_some(MutableByteSpan{body.data() + got, len - got});
    if (!n) return n.status();
    if (n.value() == 0) return Status(Errc::closed, "eof in frame body");
    got += n.value();
  }
  payload.append(ByteSpan{body.data(), body.size()});
  return payload;
}

Status FrameSendBuffer::enqueue_frame(ByteSpan payload) {
  if (payload.size() > kMaxFrameBytes) return Status(Errc::invalid_argument, "frame too large");
  if (pending_bytes() + 4 + payload.size() > max_pending_) {
    return Status(Errc::buffer_full, "send buffer full");
  }
  compact();
  std::uint8_t header[4];
  put_be32(header, static_cast<std::uint32_t>(payload.size()));
  buffer_.insert(buffer_.end(), header, header + 4);
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  return Status::ok();
}

Status FrameSendBuffer::enqueue_raw(ByteSpan bytes) {
  if (pending_bytes() + bytes.size() > max_pending_) {
    return Status(Errc::buffer_full, "send buffer full");
  }
  compact();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  return Status::ok();
}

Status FrameSendBuffer::pump(TcpSocket& socket) {
  while (consumed_ < buffer_.size()) {
    auto n = socket.write_some(ByteSpan{buffer_.data() + consumed_, buffer_.size() - consumed_});
    if (!n) {
      if (n.status().code() == Errc::would_block) return Status::ok();
      return n.status();
    }
    if (n.value() == 0) return Status::ok();  // kernel accepted nothing; retry later
    consumed_ += n.value();
  }
  compact();
  return Status::ok();
}

void FrameSendBuffer::compact() {
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

void FrameReader::feed(ByteSpan bytes) {
  compact();
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<ByteBuffer>> FrameReader::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < 4) return std::optional<ByteBuffer>{};
  const std::uint32_t len = get_be32(buffer_.data() + consumed_);
  if (len > kMaxFrameBytes) return Status(Errc::malformed, "oversized frame");
  if (available < 4 + std::size_t{len}) return std::optional<ByteBuffer>{};
  ByteBuffer frame;
  frame.append(ByteSpan{buffer_.data() + consumed_ + 4, len});
  consumed_ += 4 + len;
  return std::optional<ByteBuffer>{std::move(frame)};
}

void FrameReader::compact() {
  if (consumed_ == 0) return;
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
  consumed_ = 0;
}

}  // namespace brisk::net
