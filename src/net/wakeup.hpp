// Self-pipe wakeup: lets one thread interrupt another thread's poll wait.
// The waiting side watches `fd()` for readability in its Poller; the waking
// side calls signal(). Non-blocking on both ends — a full pipe simply means
// a wakeup is already pending, which is all the receiver needs to know.
#pragma once

#include "common/error.hpp"
#include "net/socket.hpp"

namespace brisk::net {

class WakeupPipe {
 public:
  static Result<WakeupPipe> create();

  WakeupPipe() = default;

  /// Any-thread side: makes the read end readable. Idempotent while a
  /// wakeup is pending.
  void signal() noexcept;

  /// Waiting-thread side: consumes all pending wakeup bytes.
  void drain() noexcept;

  [[nodiscard]] int fd() const noexcept { return read_end_.get(); }
  [[nodiscard]] bool valid() const noexcept { return read_end_.valid(); }

 private:
  WakeupPipe(FdHandle read_end, FdHandle write_end)
      : read_end_(std::move(read_end)), write_end_(std::move(write_end)) {}

  FdHandle read_end_;
  FdHandle write_end_;
};

}  // namespace brisk::net
