#include "net/event_loop.hpp"

#include <sys/select.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace brisk::net {

Status EventLoop::watch(int fd, Callback callback) {
  if (fd < 0 || fd >= FD_SETSIZE) return Status(Errc::invalid_argument, "fd out of select range");
  if (!callback) return Status(Errc::invalid_argument, "null callback");
  callbacks_[fd] = std::move(callback);
  return Status::ok();
}

Status EventLoop::unwatch(int fd) {
  if (callbacks_.erase(fd) == 0) return Status(Errc::not_found, "fd not watched");
  return Status::ok();
}

Result<int> EventLoop::poll_once(TimeMicros timeout) {
  fd_set read_set;
  FD_ZERO(&read_set);
  int max_fd = -1;
  for (const auto& [fd, cb] : callbacks_) {
    FD_SET(fd, &read_set);
    if (fd > max_fd) max_fd = fd;
  }

  timeval tv{};
  if (timeout < 0) timeout = 0;
  tv.tv_sec = timeout / 1'000'000;
  tv.tv_usec = timeout % 1'000'000;

  int ready = ::select(max_fd + 1, &read_set, nullptr, nullptr, &tv);
  if (ready < 0) {
    if (errno == EINTR) ready = 0;
    else return Status(Errc::io_error, std::string("select: ") + std::strerror(errno));
  }

  int handled = 0;
  if (ready > 0) {
    // Snapshot fds first: callbacks may watch/unwatch.
    std::vector<int> ready_fds;
    ready_fds.reserve(static_cast<std::size_t>(ready));
    for (const auto& [fd, cb] : callbacks_) {
      if (FD_ISSET(fd, &read_set)) ready_fds.push_back(fd);
    }
    for (int fd : ready_fds) {
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;  // unwatched by a prior callback
      // Invoke a copy: the callback may unwatch its own fd (e.g. on a lost
      // connection), which would otherwise destroy it mid-call.
      Callback cb = it->second;
      cb(fd);
      ++handled;
    }
  }
  if (idle_) idle_();
  return handled;
}

Status EventLoop::run(TimeMicros cycle_timeout) {
  // Deliberately no reset of stop_ here: a stop() that raced ahead of this
  // thread entering run() must win, or the caller's join() deadlocks.
  while (!stopped()) {
    auto result = poll_once(cycle_timeout);
    if (!result) return result.status();
  }
  return Status::ok();
}

}  // namespace brisk::net
