#include "consumers/trace_stats.hpp"

#include <cinttypes>
#include <cstdio>

namespace brisk::consumers {

void TraceStats::add(const sensors::Record& record) {
  TraceSummary& s = summary_;
  ++s.records;
  ++s.per_node[record.node];
  ++s.per_sensor[record.sensor];
  if (!any_) {
    s.first_ts = record.timestamp;
    s.last_ts = record.timestamp;
    any_ = true;
  } else {
    if (record.timestamp < prev_ts_) {
      ++s.out_of_order;
      const TimeMicros backstep = prev_ts_ - record.timestamp;
      if (backstep > s.max_backstep_us) s.max_backstep_us = backstep;
    }
    if (record.timestamp > s.last_ts) s.last_ts = record.timestamp;
    if (record.timestamp < s.first_ts) s.first_ts = record.timestamp;
  }
  prev_ts_ = record.timestamp;
}

std::string TraceStats::report() const {
  const TraceSummary& s = summary_;
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "records: %" PRIu64 "\nduration: %.6f s\nrate: %.1f ev/s\n"
                "out-of-order: %" PRIu64 " (%.4f%%)\nmax backstep: %" PRId64 " us\n",
                s.records, s.duration_seconds(), s.event_rate_per_sec(), s.out_of_order,
                100.0 * s.out_of_order_fraction(), s.max_backstep_us);
  out += buf;
  out += "per-node:";
  for (const auto& [node, count] : s.per_node) {
    std::snprintf(buf, sizeof buf, " %u=%" PRIu64, node, count);
    out += buf;
  }
  out += "\nper-sensor:";
  for (const auto& [sensor, count] : s.per_sensor) {
    std::snprintf(buf, sizeof buf, " %u=%" PRIu64, sensor, count);
    out += buf;
  }
  out += '\n';
  return out;
}

}  // namespace brisk::consumers
