#include "consumers/gateway_client.hpp"

#include "ism/output.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::consumers {

Result<GatewayClient> GatewayClient::connect(const std::string& host, std::uint16_t port,
                                             const Options& options) {
  auto socket = net::TcpSocket::connect(host, port);
  if (!socket) return socket.status();
  GatewayClient client;
  client.socket_ = std::move(socket).value();
  (void)client.socket_.set_nodelay(true);

  tp::SubscribeRequest req;
  req.name = options.name;
  req.filter = options.filter;
  req.kind = options.kind;
  req.queue_records = options.queue_records;
  req.agg_window_us = options.agg_window_us;
  ByteBuffer frame;
  xdr::Encoder enc(frame);
  tp::put_type(tp::MsgType::subscribe, enc);
  tp::encode_subscribe(req, enc);
  Status sent = net::write_frame(client.socket_, frame.view());
  if (!sent) return sent;

  // Blocking ack read — the socket goes non-blocking only after this.
  auto ack_frame = net::read_frame(client.socket_);
  if (!ack_frame) return ack_frame.status();
  xdr::Decoder dec(ack_frame.value().view());
  auto type = tp::peek_type(dec);
  if (!type) return type.status();
  if (type.value() != tp::MsgType::subscribe_ack) {
    return Status(Errc::malformed, "expected subscribe_ack");
  }
  auto ack = tp::decode_subscribe_ack(dec);
  if (!ack) return ack.status();
  if (!ack.value().accepted) {
    return Status(Errc::invalid_argument, "subscription rejected: " + ack.value().message);
  }
  client.id_ = ack.value().subscription_id;

  Status nb = client.socket_.set_nonblocking(true);
  if (!nb) return nb;
  return client;
}

Status GatewayClient::pump() {
  if (closed_) return Status(Errc::closed, "gateway connection closed");
  std::uint8_t chunk[16 << 10];
  for (;;) {
    auto got = socket_.read_some(MutableByteSpan(chunk, sizeof(chunk)));
    if (!got) {
      if (got.status().code() == Errc::would_block) break;
      closed_ = true;
      return got.status();
    }
    if (got.value() == 0) {
      closed_ = true;
      break;  // orderly close: drain what we buffered, then report closed
    }
    reader_.feed(ByteSpan(chunk, got.value()));
    if (got.value() < sizeof(chunk)) break;
  }
  for (;;) {
    auto frame = reader_.next();
    if (!frame) return frame.status();
    if (!frame.value().has_value()) break;
    xdr::Decoder dec(frame.value()->view());
    auto type = tp::peek_type(dec);
    if (!type) return type.status();
    switch (type.value()) {
      case tp::MsgType::sub_data: {
        auto payload = dec.get_opaque(net::kMaxFrameBytes);
        if (!payload) return payload.status();
        auto record = ism::decode_output_record(payload.value());
        if (!record) return record.status();
        records_.push_back(std::move(record).value());
        break;
      }
      case tp::MsgType::sub_agg: {
        auto window = tp::decode_agg_window(dec);
        if (!window) return window.status();
        windows_.push_back(std::move(window).value());
        break;
      }
      default:
        break;  // late ack from a re-subscribe, future frame kinds: skip
    }
  }
  return Status::ok();
}

Result<std::optional<sensors::Record>> GatewayClient::poll() {
  if (records_.empty()) {
    Status st = pump();
    if (!st && records_.empty()) return st;
  }
  if (records_.empty()) {
    if (closed_ && reader_.buffered_bytes() == 0) {
      return Status(Errc::closed, "gateway connection closed");
    }
    return std::optional<sensors::Record>{};
  }
  std::optional<sensors::Record> out = std::move(records_.front());
  records_.pop_front();
  consumed_++;
  return out;
}

Result<std::optional<tp::AggWindow>> GatewayClient::poll_agg() {
  if (windows_.empty()) {
    Status st = pump();
    if (!st && windows_.empty()) return st;
  }
  if (windows_.empty()) {
    if (closed_ && reader_.buffered_bytes() == 0) {
      return Status(Errc::closed, "gateway connection closed");
    }
    return std::optional<tp::AggWindow>{};
  }
  std::optional<tp::AggWindow> out = std::move(windows_.front());
  windows_.pop_front();
  consumed_++;
  return out;
}

Status GatewayClient::unsubscribe() {
  tp::Unsubscribe msg;
  msg.subscription_id = id_;
  ByteBuffer frame;
  xdr::Encoder enc(frame);
  tp::put_type(tp::MsgType::unsubscribe, enc);
  tp::encode_unsubscribe(msg, enc);
  return net::write_frame(socket_, frame.view());
}

}  // namespace brisk::consumers
