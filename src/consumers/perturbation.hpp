// Perturbation (degree-of-intrusion) analysis.
//
// The paper's first design objective: "The overhead should be predictable
// and must not change the order and timing of critical events ... so that
// perturbation analyses can be performed to investigate the degree of
// intrusion." This module does the accounting: calibrate the per-NOTICE
// cost on the target machine, then combine it with the sensor counters the
// fast path already maintains to estimate how much CPU time instrumentation
// stole from the application.
#pragma once

#include <string>

#include "clock/clock.hpp"
#include "sensors/sensor.hpp"

namespace brisk::consumers {

struct NoticeCalibration {
  /// Measured CPU cost of one accepted NOTICE (ring push included).
  double per_notice_us = 0.0;
  /// Measured CPU cost of a NOTICE that is dropped at a full ring (cheaper:
  /// no payload copy survives, but the formatting still happened).
  double per_dropped_us = 0.0;
  std::uint64_t calibration_iterations = 0;
};

/// Measures NOTICE cost on a scratch ring with the paper's 6-int workload
/// record. Runs `iterations` notices twice (accepted and ring-full) under
/// the thread CPU clock.
NoticeCalibration calibrate_notice_cost(std::uint64_t iterations = 200'000);

struct PerturbationReport {
  std::uint64_t notices = 0;
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  double estimated_overhead_us = 0.0;

  /// Overhead as a fraction of the application CPU time it perturbs.
  [[nodiscard]] double overhead_fraction(TimeMicros app_cpu_us) const noexcept {
    return app_cpu_us <= 0 ? 0.0
                           : estimated_overhead_us / static_cast<double>(app_cpu_us);
  }

  [[nodiscard]] std::string to_string() const;
};

/// Applies a calibration to the counters of one sensor.
PerturbationReport estimate_perturbation(const sensors::SensorStats& stats,
                                         const NoticeCalibration& calibration);

}  // namespace brisk::consumers
