#include "consumers/shm_consumer.hpp"

#include "ism/output.hpp"

namespace brisk::consumers {

Result<std::optional<sensors::Record>> ShmConsumer::poll() {
  scratch_.clear();
  if (!ring_.try_pop(scratch_)) return std::optional<sensors::Record>{};
  auto record = ism::decode_output_record(ByteSpan{scratch_.data(), scratch_.size()});
  if (!record) return record.status();
  ++consumed_;
  return std::optional<sensors::Record>{std::move(record).value()};
}

Result<std::vector<sensors::Record>> ShmConsumer::poll_all() {
  std::vector<sensors::Record> out;
  for (;;) {
    auto record = poll();
    if (!record) return record.status();
    if (!record.value().has_value()) return out;
    out.push_back(std::move(*record.value()));
  }
}

Result<std::optional<std::string>> ShmConsumer::poll_picl(const picl::PiclOptions& options) {
  auto record = poll();
  if (!record) return record.status();
  if (!record.value().has_value()) return std::optional<std::string>{};
  return std::optional<std::string>{picl::to_picl_line(*record.value(), options)};
}

}  // namespace brisk::consumers
