// Trace analysis: summary statistics over a stream of records — what a
// downstream performance-analysis tool computes first, and what the
// evaluation harness uses to score ordering quality.
#pragma once

#include <cstdint>
#include <map>

#include "sensors/record.hpp"

namespace brisk::consumers {

struct TraceSummary {
  std::uint64_t records = 0;
  std::map<NodeId, std::uint64_t> per_node;
  std::map<SensorId, std::uint64_t> per_sensor;
  TimeMicros first_ts = 0;
  TimeMicros last_ts = 0;
  /// Records whose timestamp was smaller than the previous record's — the
  /// out-of-order fraction is the on-line sorter's quality metric.
  std::uint64_t out_of_order = 0;
  TimeMicros max_backstep_us = 0;  // largest observed timestamp regression

  [[nodiscard]] double duration_seconds() const noexcept {
    return records < 2 ? 0.0 : static_cast<double>(last_ts - first_ts) / 1e6;
  }
  [[nodiscard]] double event_rate_per_sec() const noexcept {
    const double d = duration_seconds();
    return d <= 0 ? 0.0 : static_cast<double>(records) / d;
  }
  [[nodiscard]] double out_of_order_fraction() const noexcept {
    return records == 0 ? 0.0
                        : static_cast<double>(out_of_order) / static_cast<double>(records);
  }
};

/// Streaming accumulator: feed records in delivery order.
class TraceStats {
 public:
  void add(const sensors::Record& record);

  [[nodiscard]] const TraceSummary& summary() const noexcept { return summary_; }
  /// Multi-line human-readable report.
  [[nodiscard]] std::string report() const;

 private:
  TraceSummary summary_;
  TimeMicros prev_ts_ = 0;
  bool any_ = false;
};

}  // namespace brisk::consumers
