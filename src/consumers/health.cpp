#include "consumers/health.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdlib>

namespace brisk::consumers {

namespace {

/// Parses "agg.node.<id>.watermark_us"; false for any other series.
bool parse_agg_node_watermark(const std::string& name, NodeId& node) {
  constexpr const char* kPrefix = "agg.node.";
  constexpr const char* kSuffix = ".watermark_us";
  const std::size_t prefix_len = 9;
  const std::size_t suffix_len = 13;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) return false;
  const std::string digits = name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return false;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  node = static_cast<NodeId>(parsed);
  return true;
}

bool is_drop_series(const std::string& name) {
  return name.find("drop") != std::string::npos;
}

}  // namespace

const char* node_health_token(NodeHealth state) noexcept {
  switch (state) {
    case NodeHealth::live: return "live";
    case NodeHealth::stale: return "stale";
    case NodeHealth::departed: return "departed";
  }
  return "unknown";
}

HealthRollup::NodeState& HealthRollup::touch(NodeId node, TimeMicros now_monotonic) {
  NodeState& state = nodes_[node];
  state.last_seen = now_monotonic;
  state.seen = true;
  return state;
}

void HealthRollup::observe(const sensors::Record& record, TimeMicros now_monotonic) {
  if (sensors::is_metrics_record(record)) {
    observe_metrics(record, now_monotonic);
    return;
  }
  if (sensors::is_event_record(record)) {
    observe_event(record, now_monotonic);
    return;
  }
  // Ordinary sensor traffic is liveness evidence too: a node whose
  // application records keep flowing is not stale even if its metrics
  // interval is long (or off).
  NodeState& state = touch(record.node, now_monotonic);
  state.departed = false;
  state.via_aggregate = false;
  state.watermark = std::max(state.watermark, record.timestamp);
  frontier_ = std::max(frontier_, record.timestamp);
}

void HealthRollup::observe_metrics(const sensors::Record& record, TimeMicros now_monotonic) {
  auto point = sensors::decode_metrics_record(record);
  if (!point) return;
  ++metric_records_;
  frontier_ = std::max(frontier_, record.timestamp);

  NodeId subtree_node = 0;
  if (parse_agg_node_watermark(point.value().name, subtree_node)) {
    // The relay that emitted the gauge is alive...
    NodeState& relay = touch(record.node, now_monotonic);
    relay.departed = false;
    relay.via_aggregate = false;
    relay.watermark = std::max(relay.watermark, record.timestamp);
    // ...and it vouches for this subtree node: the node's per-node
    // snapshots were absorbed upstream, so the gauge is its liveness
    // signal here.
    NodeState& state = touch(subtree_node, now_monotonic);
    state.departed = false;
    state.via_aggregate = true;
    state.watermark =
        std::max(state.watermark, static_cast<TimeMicros>(point.value().value));
    return;
  }

  NodeState& state = touch(record.node, now_monotonic);
  state.departed = false;
  state.via_aggregate = false;
  state.watermark = std::max(state.watermark, record.timestamp);
  if (is_drop_series(point.value().name)) {
    // Latest-value per series: the exported counters are cumulative, so
    // replacing (not adding) keeps the total honest across snapshots.
    state.drop_series[point.value().name] = point.value().value;
  }
}

void HealthRollup::observe_event(const sensors::Record& record, TimeMicros now_monotonic) {
  auto point = sensors::decode_event_record(record);
  if (!point) return;
  ++event_records_;
  frontier_ = std::max(frontier_, record.timestamp);
  // The emitter is alive — it just shipped us an event.
  touch(record.node, now_monotonic);

  // Most kinds are *about* the subject node (0 = unattributed: charge the
  // emitter so the pressure still shows somewhere).
  const NodeId about = point.value().subject != 0
                           ? static_cast<NodeId>(point.value().subject)
                           : record.node;
  NodeState& state = nodes_[about];
  state.seen = true;
  ++state.events;
  switch (point.value().kind) {
    case sensors::EventKind::session_reaped:
    case sensors::EventKind::session_expired:
      if (point.value().subject != 0) state.departed = true;
      break;
    case sensors::EventKind::session_rejoined:
      state.departed = false;
      state.last_seen = now_monotonic;
      break;
    case sensors::EventKind::session_quarantined:
      break;  // parked, not gone: staleness takes over from here
    case sensors::EventKind::zero_window_grant:
      ++state.zero_windows;
      break;
    case sensors::EventKind::lane_drop:
    case sensors::EventKind::queue_drop:
    case sensors::EventKind::batch_gap:
      ++state.event_drops;
      break;
    case sensors::EventKind::subscriber_evicted:
      ++state.event_drops;
      break;
    case sensors::EventKind::reader_migration:
      break;
    case sensors::EventKind::watermark_stall:
      ++state.stalls;
      break;
    case sensors::EventKind::reconnect:
      ++state.reconnects;
      state.last_seen = now_monotonic;
      break;
  }
}

std::vector<HealthRow> HealthRollup::rows(TimeMicros now_monotonic) const {
  std::vector<HealthRow> out;
  out.reserve(nodes_.size());
  for (const auto& [node, state] : nodes_) {
    if (!state.seen) continue;
    HealthRow row;
    row.node = node;
    row.age_us = state.last_seen <= now_monotonic ? now_monotonic - state.last_seen : 0;
    if (state.watermark != std::numeric_limits<TimeMicros>::min() &&
        frontier_ > state.watermark) {
      row.watermark_lag_us = frontier_ - state.watermark;
    }
    // An aggregating relay re-flushes its cumulative agg.node gauges even
    // for a node that died, so for aggregate-vouched nodes the gauge's
    // *arrival* cannot count as liveness — only its value can. Their
    // staleness clock is the frozen watermark falling behind the frontier.
    const TimeMicros liveness_age =
        state.via_aggregate ? std::max(row.age_us, row.watermark_lag_us) : row.age_us;
    if (state.departed ||
        (options_.departed_after_us > 0 && liveness_age > options_.departed_after_us)) {
      row.state = NodeHealth::departed;
    } else if (options_.stale_after_us > 0 && liveness_age > options_.stale_after_us) {
      row.state = NodeHealth::stale;
    } else {
      row.state = NodeHealth::live;
    }
    row.drops = state.event_drops;
    for (const auto& [name, value] : state.drop_series) row.drops += value;
    row.stalls = state.stalls;
    row.zero_windows = state.zero_windows;
    row.reconnects = state.reconnects;
    row.events = state.events;
    row.via_aggregate = state.via_aggregate;
    out.push_back(row);
  }
  return out;
}

void HealthRollup::print_table(std::FILE* out, TimeMicros now_monotonic) const {
  const auto table = rows(now_monotonic);
  std::fprintf(out, "=== health: %zu nodes (%" PRIu64 " metric records, %" PRIu64
                    " events) ===\n",
               table.size(), metric_records_, event_records_);
  std::fprintf(out, "%10s %-9s %10s %12s %8s %7s %9s %10s %s\n", "node", "state",
               "age_ms", "wm_lag_ms", "drops", "stalls", "zero_win", "reconnects", "src");
  for (const HealthRow& row : table) {
    std::fprintf(out,
                 "%10u %-9s %10lld %12lld %8" PRIu64 " %7" PRIu64 " %9" PRIu64
                 " %10" PRIu64 " %s\n",
                 row.node, node_health_token(row.state),
                 static_cast<long long>(row.age_us / 1'000),
                 static_cast<long long>(row.watermark_lag_us / 1'000), row.drops,
                 row.stalls, row.zero_windows, row.reconnects,
                 row.via_aggregate ? "agg" : "direct");
  }
  std::fflush(out);
}

void HealthRollup::print_json(std::FILE* out, TimeMicros now_monotonic) const {
  const auto table = rows(now_monotonic);
  std::fprintf(out, "{\"mode\":\"health\",\"metric_records\":%" PRIu64
                    ",\"event_records\":%" PRIu64 ",\"nodes\":[",
               metric_records_, event_records_);
  for (std::size_t i = 0; i < table.size(); ++i) {
    const HealthRow& row = table[i];
    std::fprintf(out,
                 "%s{\"node\":%u,\"state\":\"%s\",\"age_us\":%lld,"
                 "\"watermark_lag_us\":%lld,\"drops\":%" PRIu64 ",\"stalls\":%" PRIu64
                 ",\"zero_windows\":%" PRIu64 ",\"reconnects\":%" PRIu64
                 ",\"events\":%" PRIu64 ",\"via_aggregate\":%s}",
                 i == 0 ? "" : ",", row.node, node_health_token(row.state),
                 static_cast<long long>(row.age_us),
                 static_cast<long long>(row.watermark_lag_us), row.drops, row.stalls,
                 row.zero_windows, row.reconnects, row.events,
                 row.via_aggregate ? "true" : "false");
  }
  std::fprintf(out, "]}\n");
  std::fflush(out);
}

}  // namespace brisk::consumers
