#include "consumers/perturbation.hpp"

#include <cstdio>
#include <vector>

#include "common/time_util.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk::consumers {

NoticeCalibration calibrate_notice_cost(std::uint64_t iterations) {
  NoticeCalibration calibration;
  calibration.calibration_iterations = iterations;
  if (iterations == 0) return calibration;

  using sensors::x_i32;

  // Accepted path: a ring large enough to never fill within one drain.
  {
    std::vector<std::uint8_t> memory(shm::RingBuffer::region_size(4u << 20));
    auto ring = shm::RingBuffer::init(memory.data(), 4u << 20);
    if (!ring) return calibration;
    sensors::Sensor sensor(ring.value(), clk::SystemClock::instance());
    std::vector<std::uint8_t> scratch;
    const TimeMicros before = thread_cpu_micros();
    for (std::uint64_t i = 0; i < iterations; ++i) {
      const auto v = static_cast<std::int32_t>(i);
      (void)sensor.notice(1, x_i32(v), x_i32(v), x_i32(v), x_i32(v), x_i32(v), x_i32(v));
      if (ring.value().bytes_used() > (2u << 20)) {
        // Drain outside the timed per-notice path as the EXS would; the
        // pops are attributed to the EXS, not the application, so pause
        // the measurement around them.
        scratch.clear();
        while (ring.value().try_pop(scratch)) scratch.clear();
      }
    }
    const TimeMicros elapsed = thread_cpu_micros() - before;
    calibration.per_notice_us =
        static_cast<double>(elapsed) / static_cast<double>(iterations);
  }

  // Dropped path: a minimal ring that is permanently full.
  {
    std::vector<std::uint8_t> memory(shm::RingBuffer::region_size(128));
    auto ring = shm::RingBuffer::init(memory.data(), 128);
    if (!ring) return calibration;
    sensors::Sensor sensor(ring.value(), clk::SystemClock::instance());
    // Fill it.
    while (sensor.notice(1, x_i32(0), x_i32(0), x_i32(0), x_i32(0), x_i32(0), x_i32(0))) {
    }
    const TimeMicros before = thread_cpu_micros();
    for (std::uint64_t i = 0; i < iterations; ++i) {
      const auto v = static_cast<std::int32_t>(i);
      (void)sensor.notice(1, x_i32(v), x_i32(v), x_i32(v), x_i32(v), x_i32(v), x_i32(v));
    }
    const TimeMicros elapsed = thread_cpu_micros() - before;
    calibration.per_dropped_us =
        static_cast<double>(elapsed) / static_cast<double>(iterations);
  }
  return calibration;
}

PerturbationReport estimate_perturbation(const sensors::SensorStats& stats,
                                         const NoticeCalibration& calibration) {
  PerturbationReport report;
  report.notices = stats.notices;
  report.accepted = stats.records_pushed;
  report.dropped = stats.records_dropped;
  report.estimated_overhead_us =
      static_cast<double>(stats.records_pushed) * calibration.per_notice_us +
      static_cast<double>(stats.records_dropped) * calibration.per_dropped_us;
  return report;
}

std::string PerturbationReport::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "notices=%llu accepted=%llu dropped=%llu est_overhead=%.1fus",
                static_cast<unsigned long long>(notices),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(dropped), estimated_overhead_us);
  return buf;
}

}  // namespace brisk::consumers
