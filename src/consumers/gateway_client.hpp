// Consumer-tool side of the ISM's TCP subscription gateway: connect, send
// one SUBSCRIBE (filter spec pushed down to the ISM), then poll sorted
// records — the network twin of ShmConsumer::poll(), so tools like
// brisk_consume treat "read the output ring" and "subscribe over TCP" as
// interchangeable record sources.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "sensors/record.hpp"
#include "tp/wire.hpp"

namespace brisk::consumers {

class GatewayClient {
 public:
  struct Options {
    /// Subscriber label for the ISM's per-subscriber metrics ("" = let the
    /// gateway generate one).
    std::string name;
    /// Textual filter spec (see ism/filter.hpp); "" = every record.
    std::string filter;
    tp::SubscriptionKind kind = tp::SubscriptionKind::stream;
    /// Per-subscriber gateway queue depth; 0 = gateway default.
    std::uint32_t queue_records = 0;
    /// Aggregation window (kind == aggregate); 0 = gateway default.
    std::uint64_t agg_window_us = 0;
  };

  /// Connects, subscribes, and waits for the gateway's ack (blocking).
  /// A rejected subscription surfaces as the ack's message. The socket is
  /// left non-blocking for poll().
  static Result<GatewayClient> connect(const std::string& host, std::uint16_t port,
                                       const Options& options);

  GatewayClient(GatewayClient&&) = default;
  GatewayClient& operator=(GatewayClient&&) = default;

  /// Next sorted record, or nullopt when nothing is currently available
  /// (non-blocking). Errc::closed once the gateway hangs up.
  Result<std::optional<sensors::Record>> poll();

  /// Next closed aggregation window (kind == aggregate subscriptions).
  Result<std::optional<tp::AggWindow>> poll_agg();

  /// Sends UNSUBSCRIBE; the connection stays open (records already queued
  /// by the gateway may still arrive and can be drained with poll()).
  Status unsubscribe();

  [[nodiscard]] std::uint32_t subscription_id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t records_consumed() const noexcept { return consumed_; }
  [[nodiscard]] bool valid() const noexcept { return socket_.valid(); }
  void close() noexcept { socket_.close(); }

 private:
  GatewayClient() = default;

  /// Non-blocking socket read; decoded frames land in the record/window
  /// queues. Returns Errc::closed on peer hangup.
  Status pump();

  net::TcpSocket socket_;
  net::FrameReader reader_;
  std::deque<sensors::Record> records_;
  std::deque<tp::AggWindow> windows_;
  std::uint32_t id_ = 0;
  std::uint64_t consumed_ = 0;
  bool closed_ = false;
};

}  // namespace brisk::consumers
