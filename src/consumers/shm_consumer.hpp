// Consumer-tool side of the ISM's default output: reads native records
// from the ISM's shared-memory output ring ("which is then read by
// instrumentation data consumer tools"), with an optional PICL-string
// adapter ("other consumers can read the ISM's memory buffer, e.g., using
// supplied code that creates PICL strings").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "picl/picl_record.hpp"
#include "sensors/record.hpp"
#include "shm/ring_buffer.hpp"

namespace brisk::consumers {

class ShmConsumer {
 public:
  /// `ring` is the ISM's output ring (attached from the consumer process).
  explicit ShmConsumer(shm::RingBuffer ring) : ring_(ring) {}

  /// Next record, or nullopt when the ring is currently empty.
  Result<std::optional<sensors::Record>> poll();

  /// Drains everything currently available.
  Result<std::vector<sensors::Record>> poll_all();

  /// Next record rendered as a PICL string (the supplied adapter code).
  Result<std::optional<std::string>> poll_picl(const picl::PiclOptions& options);

  [[nodiscard]] std::uint64_t records_consumed() const noexcept { return consumed_; }

 private:
  shm::RingBuffer ring_;
  std::vector<std::uint8_t> scratch_;
  std::uint64_t consumed_ = 0;
};

}  // namespace brisk::consumers
