// Fleet health rollup: folds the self-instrumentation streams — metrics
// snapshots (0xFF01) and flight-recorder events (0xFF03) — into a per-node
// liveness and pressure table.
//
// Evidence, per node:
//  * any record from the node refreshes its last-seen age and advances its
//    record-timestamp watermark;
//  * with relay aggregation on, the relay's agg.node.<id>.watermark_us
//    gauges stand in for the (absorbed) per-node snapshots, so subtree
//    nodes stay observable behind an aggregating relay;
//  * 0xFF03 events add the state transitions metrics cannot express:
//    session_expired / session_reaped mark a node departed, a rejoin
//    clears it, zero-window grants / stalls / drops / reconnects count as
//    pressure against the node they are about.
//
// State model: live while evidence is younger than the stale threshold,
// stale beyond it, departed on explicit 0xFF03 evidence or past the
// departed threshold (default 3x stale). For aggregate-vouched nodes the
// staleness clock is max(evidence age, watermark lag): the relay keeps
// re-flushing its cumulative gauges after a node dies, so only the gauge
// *value* advancing — not its arrival — proves the node alive.
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sensors/event_record.hpp"
#include "sensors/metrics_record.hpp"
#include "sensors/record.hpp"

namespace brisk::consumers {

enum class NodeHealth { live, stale, departed };

/// Short stable token ("live", "stale", "departed") for tables and JSON.
[[nodiscard]] const char* node_health_token(NodeHealth state) noexcept;

/// One rendered row of the health table.
struct HealthRow {
  NodeId node = 0;
  NodeHealth state = NodeHealth::live;
  /// Time since the last evidence for this node (monotonic micros).
  TimeMicros age_us = 0;
  /// How far this node's record watermark trails the fleet frontier.
  TimeMicros watermark_lag_us = 0;
  std::uint64_t drops = 0;        // drop-series totals + drop events
  std::uint64_t stalls = 0;       // watermark_stall events
  std::uint64_t zero_windows = 0; // zero_window_grant events
  std::uint64_t reconnects = 0;   // reconnect events
  std::uint64_t events = 0;       // all 0xFF03 events about this node
  /// Liveness inferred from a relay's agg.node.<id>.watermark_us gauge
  /// rather than the node's own records.
  bool via_aggregate = false;
};

class HealthRollup {
 public:
  struct Options {
    /// Evidence older than this marks a node stale (0 = never).
    TimeMicros stale_after_us = 3'000'000;
    /// Evidence older than this marks a node departed even without an
    /// explicit 0xFF03 expiry (0 = only explicit evidence departs a node).
    TimeMicros departed_after_us = 9'000'000;
  };

  HealthRollup() = default;
  explicit HealthRollup(Options options) : options_(options) {}

  /// Feeds one record; non-reserved records only refresh liveness.
  /// `now_monotonic` is the observation clock the age computation uses.
  void observe(const sensors::Record& record, TimeMicros now_monotonic);

  /// Renders the current table, sorted by node id.
  [[nodiscard]] std::vector<HealthRow> rows(TimeMicros now_monotonic) const;

  [[nodiscard]] std::uint64_t metric_records() const noexcept { return metric_records_; }
  [[nodiscard]] std::uint64_t event_records() const noexcept { return event_records_; }

  /// Text table / JSON object renderings (one call = one refresh).
  void print_table(std::FILE* out, TimeMicros now_monotonic) const;
  void print_json(std::FILE* out, TimeMicros now_monotonic) const;

 private:
  struct NodeState {
    TimeMicros last_seen = 0;  // monotonic observation time
    TimeMicros watermark = std::numeric_limits<TimeMicros>::min();
    bool seen = false;
    bool departed = false;      // explicit 0xFF03 evidence
    bool via_aggregate = false;
    std::map<std::string, std::uint64_t> drop_series;  // latest value per series
    std::uint64_t event_drops = 0;
    std::uint64_t stalls = 0;
    std::uint64_t zero_windows = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t events = 0;
  };

  NodeState& touch(NodeId node, TimeMicros now_monotonic);
  void observe_metrics(const sensors::Record& record, TimeMicros now_monotonic);
  void observe_event(const sensors::Record& record, TimeMicros now_monotonic);

  Options options_{};
  std::map<NodeId, NodeState> nodes_;
  TimeMicros frontier_ = std::numeric_limits<TimeMicros>::min();
  std::uint64_t metric_records_ = 0;
  std::uint64_t event_records_ = 0;
};

}  // namespace brisk::consumers
