// VisualObject is a pure interface; see visual_object.hpp.
#include "vo/visual_object.hpp"
