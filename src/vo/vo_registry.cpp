#include "vo/vo_registry.hpp"

#include "common/logging.hpp"
#include "common/time_util.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::vo {

Result<std::unique_ptr<VoRegistry>> VoRegistry::start(std::uint16_t port) {
  auto listener = net::TcpListener::listen(port);
  if (!listener) return listener.status();
  Status st = listener.value().set_nonblocking(true);
  if (!st) return st;
  auto registry = std::unique_ptr<VoRegistry>(new VoRegistry(std::move(listener).value()));
  VoRegistry* raw = registry.get();
  st = registry->loop_.watch(registry->listener_.fd(),
                             [raw](int, net::Readiness) { raw->on_listener_readable(); });
  if (!st) return st;
  return registry;
}

Status VoRegistry::add_object(std::shared_ptr<VisualObject> object) {
  if (!object) return Status(Errc::invalid_argument, "null object");
  std::lock_guard<std::mutex> lock(objects_mutex_);
  auto [it, inserted] = objects_.emplace(object->name(), object);
  if (!inserted) return Status(Errc::already_exists, "object name taken: " + object->name());
  return Status::ok();
}

Status VoRegistry::remove_object(const std::string& name) {
  std::lock_guard<std::mutex> lock(objects_mutex_);
  if (objects_.erase(name) == 0) return Status(Errc::not_found, name);
  return Status::ok();
}

void VoRegistry::on_listener_readable() {
  for (;;) {
    auto client = listener_.accept();
    if (!client) return;
    net::TcpSocket socket = std::move(client).value();
    if (!socket.set_nonblocking(true)) continue;
    const int fd = socket.fd();
    Connection conn;
    conn.socket = std::move(socket);
    connections_.emplace(fd, std::move(conn));
    if (!loop_.watch(fd, [this](int ready_fd, net::Readiness) { on_connection_readable(ready_fd); })) {
      connections_.erase(fd);
    }
  }
}

void VoRegistry::on_connection_readable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    auto n = conn.socket.read_some(MutableByteSpan{chunk, sizeof chunk});
    if (!n) {
      if (n.status().code() == Errc::would_block) break;
      close_connection(fd);
      return;
    }
    if (n.value() == 0) {
      close_connection(fd);
      return;
    }
    conn.reader.feed(ByteSpan{chunk, n.value()});
    for (;;) {
      auto frame = conn.reader.next();
      if (!frame) {
        ++stats_.protocol_errors;
        close_connection(fd);
        return;
      }
      if (!frame.value().has_value()) break;
      Status st = dispatch(conn, frame.value()->view());
      if (!st) {
        ++stats_.protocol_errors;
        close_connection(fd);
        return;
      }
    }
  }
}

Status VoRegistry::dispatch(Connection& conn, ByteSpan payload) {
  xdr::Decoder decoder(payload);
  auto method = decoder.get_u32();
  if (!method) return method.status();
  switch (static_cast<VoMethod>(method.value())) {
    case VoMethod::render: {
      auto name = decoder.get_string(256);
      if (!name) return name.status();
      auto line = decoder.get_string(1 << 16);
      if (!line) return line.status();
      std::shared_ptr<VisualObject> target;
      {
        std::lock_guard<std::mutex> lock(objects_mutex_);
        auto it = objects_.find(name.value());
        if (it != objects_.end()) target = it->second;
      }
      if (!target) {
        ++stats_.unknown_object_calls;
        return Status::ok();  // one-way call: unknown target is dropped
      }
      target->render(line.value());
      ++stats_.renders_dispatched;
      return Status::ok();
    }
    case VoMethod::ping: {
      auto token = decoder.get_u32();
      if (!token) return token.status();
      ByteBuffer reply;
      xdr::Encoder enc(reply);
      enc.put_u32(static_cast<std::uint32_t>(VoMethod::ping));
      enc.put_u32(token.value());
      ++stats_.pings_answered;
      return net::write_frame(conn.socket, reply.view());
    }
    default:
      return Status(Errc::malformed, "unknown VO method");
  }
}

void VoRegistry::close_connection(int fd) {
  (void)loop_.unwatch(fd);
  connections_.erase(fd);
}

Status VoRegistry::run(TimeMicros cycle_timeout_us) { return loop_.run(cycle_timeout_us); }

Status VoRegistry::run_for(TimeMicros duration, TimeMicros cycle_timeout_us) {
  const TimeMicros deadline = monotonic_micros() + duration;
  while (monotonic_micros() < deadline && !loop_.stopped()) {
    auto polled = loop_.poll_once(cycle_timeout_us);
    if (!polled) return polled.status();
  }
  return Status::ok();
}

}  // namespace brisk::vo
