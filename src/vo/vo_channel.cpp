#include "vo/vo_channel.hpp"

#include "net/frame.hpp"
#include "xdr/xdr_decoder.hpp"
#include "xdr/xdr_encoder.hpp"

namespace brisk::vo {

Result<VoChannel> VoChannel::connect(const std::string& host, std::uint16_t port) {
  auto socket = net::TcpSocket::connect(host, port);
  if (!socket) return socket.status();
  Status st = socket.value().set_nodelay(true);
  if (!st) return st;
  return VoChannel(std::move(socket).value());
}

Status VoChannel::render(const std::string& object_name, const std::string& picl_line) {
  ByteBuffer out;
  xdr::Encoder enc(out);
  enc.put_u32(static_cast<std::uint32_t>(VoMethod::render));
  enc.put_string(object_name);
  enc.put_string(picl_line);
  Status st = net::write_frame(socket_, out.view());
  if (st) ++calls_sent_;
  return st;
}

Result<std::uint32_t> VoChannel::ping(std::uint32_t token) {
  ByteBuffer out;
  xdr::Encoder enc(out);
  enc.put_u32(static_cast<std::uint32_t>(VoMethod::ping));
  enc.put_u32(token);
  Status st = net::write_frame(socket_, out.view());
  if (!st) return st;
  ++calls_sent_;

  auto reply = net::read_frame(socket_);
  if (!reply) return reply.status();
  xdr::Decoder decoder(reply.value().view());
  auto method = decoder.get_u32();
  if (!method) return method.status();
  if (method.value() != static_cast<std::uint32_t>(VoMethod::ping)) {
    return Status(Errc::malformed, "unexpected reply method");
  }
  auto echoed = decoder.get_u32();
  if (!echoed) return echoed.status();
  return echoed.value();
}

Status VoSink::accept(const sensors::Record& record) {
  return channel_->render(object_name_, picl::to_picl_line(record, options_));
}

Status subscribe_visual_objects(ism::ConsumerGateway& gateway,
                                std::shared_ptr<VoChannel> channel,
                                const std::vector<std::string>& object_names,
                                const picl::PiclOptions& options,
                                const ism::SubscriptionFilter& filter) {
  if (!channel) return Status(Errc::invalid_argument, "null vo channel");
  for (const std::string& object : object_names) {
    ism::SubscriptionOptions sub_options;
    sub_options.filter = filter;
    Status st = gateway.subscribe("vo:" + object,
                                  std::make_shared<VoSink>(channel, object, options),
                                  std::move(sub_options));
    if (!st) return st;
  }
  return Status::ok();
}

}  // namespace brisk::vo
