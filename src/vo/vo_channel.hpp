// Client side of the visual-object protocol: what the ISM links to reach
// remote visual objects. VoSink adapts the channel to the ISM output stage
// (records → PICL strings → render() calls on a list of object names).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ism/gateway.hpp"
#include "ism/output.hpp"
#include "net/socket.hpp"
#include "picl/picl_record.hpp"
#include "vo/visual_object.hpp"

namespace brisk::vo {

class VoChannel {
 public:
  /// Connects to a VoRegistry.
  static Result<VoChannel> connect(const std::string& host, std::uint16_t port);

  /// One-way remote render() call.
  Status render(const std::string& object_name, const std::string& picl_line);

  /// Round-trip liveness probe; returns the echoed token.
  Result<std::uint32_t> ping(std::uint32_t token);

  [[nodiscard]] std::uint64_t calls_sent() const noexcept { return calls_sent_; }

 private:
  explicit VoChannel(net::TcpSocket socket) : socket_(std::move(socket)) {}

  net::TcpSocket socket_;
  std::uint64_t calls_sent_ = 0;
};

/// ISM output sink that forwards each sorted record to ONE remote visual
/// object. Fan-out across objects is the consumer gateway's job now — one
/// VoSink per object, registered via subscribe_visual_objects(), replaced
/// the old internal render() loop over a name list (which duplicated the
/// gateway's fan-out and could not filter per object).
class VoSink final : public ism::Sink {
 public:
  /// `channel` may be shared by several VoSinks (one per object name); the
  /// VO protocol is one-way render() calls, so interleaving is safe on the
  /// single delivery thread.
  VoSink(std::shared_ptr<VoChannel> channel, std::string object_name,
         picl::PiclOptions options)
      : channel_(std::move(channel)),
        object_name_(std::move(object_name)),
        options_(options) {}

  Status accept(const sensors::Record& record) override;
  [[nodiscard]] const char* name() const noexcept override { return "vo"; }

  [[nodiscard]] VoChannel& channel() noexcept { return *channel_; }
  [[nodiscard]] const std::string& object_name() const noexcept { return object_name_; }

 private:
  std::shared_ptr<VoChannel> channel_;
  std::string object_name_;
  picl::PiclOptions options_;
};

/// Registers one gateway subscriber per visual object, all sharing one
/// channel: "vo:<object>" each carrying `filter` ("a list of CORBA-enabled
/// visual objects", now with per-object pushdown filtering for free).
Status subscribe_visual_objects(ism::ConsumerGateway& gateway,
                                std::shared_ptr<VoChannel> channel,
                                const std::vector<std::string>& object_names,
                                const picl::PiclOptions& options,
                                const ism::SubscriptionFilter& filter = {});

}  // namespace brisk::vo
