// Client side of the visual-object protocol: what the ISM links to reach
// remote visual objects. VoSink adapts the channel to the ISM output stage
// (records → PICL strings → render() calls on a list of object names).
#pragma once

#include <string>
#include <vector>

#include "ism/output.hpp"
#include "net/socket.hpp"
#include "picl/picl_record.hpp"
#include "vo/visual_object.hpp"

namespace brisk::vo {

class VoChannel {
 public:
  /// Connects to a VoRegistry.
  static Result<VoChannel> connect(const std::string& host, std::uint16_t port);

  /// One-way remote render() call.
  Status render(const std::string& object_name, const std::string& picl_line);

  /// Round-trip liveness probe; returns the echoed token.
  Result<std::uint32_t> ping(std::uint32_t token);

  [[nodiscard]] std::uint64_t calls_sent() const noexcept { return calls_sent_; }

 private:
  explicit VoChannel(net::TcpSocket socket) : socket_(std::move(socket)) {}

  net::TcpSocket socket_;
  std::uint64_t calls_sent_ = 0;
};

/// ISM output sink that forwards every sorted record to a list of remote
/// visual objects — "a list of CORBA-enabled visual objects" in the paper.
class VoSink final : public ism::Sink {
 public:
  VoSink(VoChannel channel, std::vector<std::string> object_names, picl::PiclOptions options)
      : channel_(std::move(channel)),
        object_names_(std::move(object_names)),
        options_(options) {}

  Status accept(const sensors::Record& record) override;
  [[nodiscard]] const char* name() const noexcept override { return "vo"; }

  [[nodiscard]] VoChannel& channel() noexcept { return channel_; }

 private:
  VoChannel channel_;
  std::vector<std::string> object_names_;
  picl::PiclOptions options_;
};

}  // namespace brisk::vo
