// Visual objects: BRISK's on-line visualization consumers.
//
// In the paper the ISM "may pass instrumentation data to a list of
// CORBA-enabled visual objects" (via MICO) — remote objects whose methods
// receive "instrumentation data records to be processed as PICL strings".
// A CORBA ORB is outside this reproduction's dependency budget (see
// DESIGN.md); the substitution keeps the architecture: named remote objects
// hosted in a registry process, invoked over TCP with one-way render()
// calls carrying PICL strings.
#pragma once

#include <cstdint>
#include <string>

namespace brisk::vo {

/// Server-side object interface. Implementations are displays, gauges,
/// log windows... anything that consumes a stream of PICL strings.
class VisualObject {
 public:
  virtual ~VisualObject() = default;
  /// One instrumentation data record, rendered as a PICL string.
  virtual void render(const std::string& picl_line) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Remote method selectors on the wire.
enum class VoMethod : std::uint32_t {
  render = 1,  // one-way: object name + PICL string
  ping = 2,    // round-trip: echoes a token (liveness / tests)
};

}  // namespace brisk::vo
